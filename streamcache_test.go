package streamcache

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"
)

// These tests exercise the repository exclusively through the public
// facade, the way a downstream user would.

func TestPublicCacheLifecycle(t *testing.T) {
	cache, err := NewCache(1<<20, NewPB())
	if err != nil {
		t.Fatal(err)
	}
	obj := Object{ID: 1, Size: 1 << 19, Duration: 60, Rate: float64(1<<19) / 60}
	res := cache.Access(obj, obj.Rate/2, 1)
	if res.CachedAfter == 0 {
		t.Error("PB cached nothing for an under-provisioned object")
	}
	if res.CachedAfter >= obj.Size {
		t.Error("PB cached the whole object")
	}
	if got := StartupDelay(obj, res.CachedAfter, obj.Rate/2); got != 0 {
		t.Errorf("delay with full deficit cached = %v, want 0", got)
	}
}

func TestPublicPolicyByName(t *testing.T) {
	for _, name := range []string{"IF", "PB", "IB", "PB-V", "IB-V", "LRU", "LFU"} {
		if _, err := PolicyByName(name, 0); err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
		}
	}
}

func TestPublicSimulation(t *testing.T) {
	m, err := RunSimulation(SimConfig{
		Workload:   WorkloadConfig{NumObjects: 100, NumRequests: 2000},
		CacheBytes: 1 << 30,
		Policy:     NewIB(),
		Variation:  MeasuredVariability(),
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.TrafficReductionRatio <= 0 {
		t.Errorf("simulation produced no useful metrics: %+v", m)
	}
}

func TestPublicWorkloadAndOptimal(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{NumObjects: 50, NumRequests: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]Object, len(w.Objects))
	lambda := make([]float64, len(w.Objects))
	bw := make([]float64, len(w.Objects))
	model := NLANRBandwidth()
	rng := rand.New(rand.NewSource(3))
	for i, o := range w.Objects {
		objs[i] = Object{ID: o.ID, Size: o.Size, Duration: o.Duration, Rate: o.Rate, Value: o.Value}
		lambda[i] = 1
		bw[i] = model.Sample(rng)
	}
	placement, err := OptimalPlacement(objs, lambda, bw, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	optDelay, err := ExpectedDelay(objs, lambda, bw, placement)
	if err != nil {
		t.Fatal(err)
	}
	emptyDelay, err := ExpectedDelay(objs, lambda, bw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if optDelay >= emptyDelay {
		t.Errorf("optimal placement delay %v, want below empty-cache %v", optDelay, emptyDelay)
	}
}

func TestPublicSmoothing(t *testing.T) {
	sched, err := Smooth([]float64{10, 50, 10, 30}, 40)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := MinimalPeakBound([]float64{10, 50, 10, 30}, 40)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.PeakRate(); got < bound-1e-9 || got > bound+1e-9 {
		t.Errorf("peak %v, want bound %v", got, bound)
	}
}

func TestPublicBandwidthTools(t *testing.T) {
	if got, err := MathisThroughput(1460, 100*time.Millisecond, 0.01); err != nil || got <= 0 {
		t.Errorf("MathisThroughput = (%v, %v)", got, err)
	}
	if got, err := PadhyeThroughput(1460, 100*time.Millisecond, 400*time.Millisecond, 0.01, 1); err != nil || got <= 0 {
		t.Errorf("PadhyeThroughput = (%v, %v)", got, err)
	}
	est, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	est.Observe(100)
	if est.Estimate() != 100 {
		t.Error("EWMA did not track the sample")
	}
}

func TestPublicTracePipeline(t *testing.T) {
	entries, err := GenerateTrace(TraceGenConfig{
		Entries:   2000,
		Servers:   40,
		Base:      NLANRBandwidth(),
		Variation: NLANRVariability(),
		Seed:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := AnalyzeTrace(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(analysis.Samples) == 0 {
		t.Error("no bandwidth samples extracted")
	}
	dist, err := BandwidthFromSamples(analysis.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Mean() <= 0 {
		t.Error("log-derived distribution has no mass")
	}
}

func TestPublicProxyPrototype(t *testing.T) {
	catalog, err := NewProxyCatalog([]ProxyMeta{{ID: 1, Size: 64 << 10, Rate: 256 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	origin, err := NewOriginServer(catalog, 0)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()
	cache, err := NewCache(1<<30, NewIB())
	if err != nil {
		t.Fatal(err)
	}
	px, err := NewAcceleratorProxy(catalog, cache, originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(px)
	defer proxySrv.Close()

	res, err := Fetch(proxySrv.URL + "/objects/1")
	if err != nil {
		t.Fatal(err)
	}
	if res.SHA256 != ObjectContentSHA256(1, 64<<10) {
		t.Error("public proxy round trip corrupted content")
	}
}

func TestPublicBandwidthSeries(t *testing.T) {
	cfg, err := PresetSeriesConfig(PathINRIA)
	if err != nil {
		t.Fatal(err)
	}
	series, err := GenerateBandwidthSeries(cfg, rand.New(rand.NewSource(1)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 10 {
		t.Errorf("series length %d, want 10", len(series))
	}
}

func TestPublicStreamMerging(t *testing.T) {
	obj := MergeObject{Size: 100000, Rate: 1000}
	times := []float64{0, 10, 20, 200}
	uni, err := MergeUnicast(times, obj)
	if err != nil {
		t.Fatal(err)
	}
	tStar, err := OptimalPatchThreshold(0.05, obj)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := MergePatch(times, obj, tStar, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pat.OriginBytes >= uni.OriginBytes {
		t.Errorf("patching bytes %v, want below unicast %v", pat.OriginBytes, uni.OriginBytes)
	}
	cached, err := MergePatch(times, obj, tStar, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if cached.OriginBytes >= pat.OriginBytes {
		t.Errorf("cached patching bytes %v, want below plain patching %v", cached.OriginBytes, pat.OriginBytes)
	}
	batch, err := MergeBatch(times, obj, 15)
	if err != nil {
		t.Fatal(err)
	}
	if batch.FullStreams >= uni.FullStreams {
		t.Errorf("batching streams %d, want below unicast %d", batch.FullStreams, uni.FullStreams)
	}
	groups, err := SplitRequestsByObject(times, []int{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Errorf("groups = %v", groups)
	}
}

func TestPublicActiveProbing(t *testing.T) {
	loss, err := PadhyeLossForRate(100<<10, 1460, 100*time.Millisecond, 400*time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 || loss >= 1 {
		t.Errorf("loss = %v outside (0,1)", loss)
	}
	m, err := RunSimulation(SimConfig{
		Workload:   WorkloadConfig{NumObjects: 100, NumRequests: 2000},
		CacheBytes: 1 << 30,
		Policy:     NewPB(),
		Estimators: ActiveProbeEstimator(0.1),
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TrafficReductionRatio <= 0 {
		t.Error("active probing simulation cached nothing")
	}
}

func TestPublicPartialViewing(t *testing.T) {
	w, err := GenerateWorkload(WorkloadConfig{
		NumObjects:      50,
		NumRequests:     1000,
		PartialViewProb: 0.5,
		Seed:            6,
	})
	if err != nil {
		t.Fatal(err)
	}
	partial := 0
	for _, r := range w.Requests {
		if r.Fraction < 1 {
			partial++
		}
	}
	if partial == 0 {
		t.Error("no partial-viewing sessions generated")
	}
}

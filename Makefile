GO ?= go
# bench-json pipes `go test` into benchjson; pipefail makes a failing
# benchmark run fail the target instead of shipping a truncated file.
SHELL := /bin/bash

# Benchmarks measured by bench-json. Covers the sweep engine (memoized
# workload arena vs the unmemoized A/B control), the run-level pool, the
# zero-allocation cache hot path, the sharded live proxy tier
# (serialized shards=1 vs sharded shards=8 throughput), and the
# shard-aware refinement scheduler (evals/shard must fall as total/N).
BENCH_PATTERN ?= BenchmarkSweepSequential|BenchmarkSweepParallel8|BenchmarkSweepUnmemoized|BenchmarkSimRunParallelism|BenchmarkCacheOpThroughput|BenchmarkAccess|BenchmarkWorkloadGeneration|BenchmarkProxyServe|BenchmarkRelayCoalesce|BenchmarkShardedRefinedSweep
# Override with BENCHTIME=1x for a CI smoke run; the default gives
# stable numbers locally.
BENCHTIME ?= 2s
BENCH_JSON ?= BENCH.json
BENCH_BASELINE ?=

.PHONY: all ci vet lint lint-check build test race bench bench-smoke bench-json bench-gate fuzz-smoke figures docs-check shard-check collector-check proxy-check load-check cluster-check clean

all: ci

## ci: everything the driver/CI gate runs, in order.
ci: vet lint build race bench-smoke

vet:
	$(GO) vet ./...

## lint: the mediavet multichecker (determinism, hotpath, shardlock,
## rowsink — see DESIGN.md "Machine-enforced invariants") over the
## whole module, then the pinned third-party pass (staticcheck,
## govulncheck; skipped with a warning offline unless LINT_STRICT=1).
## Facts are cached under .cache/mediavet keyed by export data, so
## unchanged packages are free on re-runs.
lint:
	$(GO) run ./cmd/mediavet -summary ./...
	bash scripts/lint-extra.sh

## lint-check: end-to-end proof that `go vet -vettool=mediavet` works —
## clean on the shipped tree, and injected violations in internal/sim
## and internal/proxy fail it naming the right analyzer.
lint-check:
	bash scripts/lint-check.sh

build:
	$(GO) build ./...

## test: the tier-1 gate (ROADMAP.md).
test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

## bench-smoke: one iteration of the perf-trajectory benchmarks
## (sequential vs parallel sweep, run-level pool, cache op throughput).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSweepSequential|BenchmarkSweepParallel8|BenchmarkSimRunParallelism|BenchmarkCacheOpThroughput' -benchtime 1x .

## bench: the full benchmark suite (regenerates every figure; slow).
bench:
	$(GO) test -run '^$$' -bench . .

## bench-json: run the perf-trajectory benchmarks and emit $(BENCH_JSON).
## CI runs `make bench-json BENCHTIME=1x` as a smoke and uploads the
## file as an artifact; locally the default BENCHTIME gives stable
## numbers. Set BENCH_BASELINE=BENCH_PR3.json to record speedups against
## a committed trajectory file.
bench-json:
	set -o pipefail; \
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime $(BENCHTIME) . ./internal/core/ ./internal/proxy/ \
		| $(GO) run ./cmd/benchjson -out $(BENCH_JSON) \
			$(if $(BENCH_BASELINE),-baseline $(BENCH_BASELINE)) \
			$(if $(BENCH_NOTE),-note '$(BENCH_NOTE)')

## bench-gate: the perf ratchet. Rerun the pinned data-plane benchmarks
## and fail if any regresses against the committed baseline: more than
## GATE_REGRESS fractional ns/op slowdown, or ANY allocs/op increase.
## Locally the default 15% tolerance catches real slowdowns; CI runs
## `make bench-gate GATE_REGRESS=1.0` because ns/op is machine-dependent
## across runners while allocs/op is not — the alloc ratchet is always
## strict. Regenerate the baseline with bench-json when a PR
## legitimately moves the numbers.
GATE_PATTERN ?= BenchmarkAccess|BenchmarkProxyServe|BenchmarkRelayCoalesce
GATE_BASELINE ?= BENCH_PR8.json
GATE_REGRESS ?= 0.15
GATE_BENCHTIME ?= 1s
bench-gate:
	set -o pipefail; \
	$(GO) test -run '^$$' -bench '$(GATE_PATTERN)' -benchtime $(GATE_BENCHTIME) ./internal/core/ ./internal/proxy/ \
		| $(GO) run ./cmd/benchjson -compare $(GATE_BASELINE) -max-regress $(GATE_REGRESS) -match '$(GATE_PATTERN)'

## fuzz-smoke: a short fuzz of the trace parser targets.
fuzz-smoke:
	$(GO) test ./internal/trace/ -fuzz FuzzParseMalformed -fuzztime 10s
	$(GO) test ./internal/trace/ -fuzz FuzzReadAll -fuzztime 10s

## figures: regenerate every table/figure CSV at small scale.
figures:
	$(GO) run ./cmd/figures -out results

## docs-check: every relative Markdown link in the docs set resolves.
docs-check:
	bash scripts/check-md-links.sh

## shard-check: end-to-end sharded sweep — run 2 shards with journals,
## merge, and diff against the single-process output (OPERATIONS.md §7).
SHARD_KEYS ?= figure5,refined-e
shard-check:
	rm -rf shard-check
	$(GO) run ./cmd/figures -out shard-check/sharded -only '$(SHARD_KEYS)' -shard 0/2 -journal shard-check/sharded/j0.jsonl
	$(GO) run ./cmd/figures -out shard-check/sharded -only '$(SHARD_KEYS)' -shard 1/2 -journal shard-check/sharded/j1.jsonl
	$(GO) run ./cmd/figures -out shard-check/sharded -merge -jsonl
	$(GO) run ./cmd/figures -out shard-check/single -only '$(SHARD_KEYS)' -jsonl
	@for f in shard-check/single/*.csv shard-check/single/*.jsonl; do \
		diff "$$f" "shard-check/sharded/$$(basename $$f)" || exit 1; \
	done
	@echo "shard-check: merged shard output is byte-identical to the single-process run"
	rm -rf shard-check

## collector-check: streaming-collector smoke — boot collectd, run the
## sweep as 2 concurrent shards pushing rows and metrics at it, and
## diff the collected CSVs against the single-process run
## byte-for-byte (OPERATIONS.md §12).
collector-check:
	bash scripts/collector-check.sh

## proxy-check: live-tier smoke — start a sharded proxyd, run loadgen
## against it, assert a nonzero prefix-hit ratio and a clean SIGTERM
## drain (OPERATIONS.md §8).
proxy-check:
	bash scripts/proxy-check.sh

## load-check: open-loop smoke — schedule determinism across two dry
## runs, a short ramp sweep against proxyd with nonzero goodput and a
## stable live-capacity row schema, then a clean SIGTERM drain
## (OPERATIONS.md §9).
load-check:
	bash scripts/load-check.sh

## cluster-check: multi-node smoke — the deterministic in-process
## 3-edge + parent cluster test, then a live 3-proxyd ring driven
## round-robin by loadgen with verified digests, a nonzero peer byte
## fraction, and clean SIGTERM drains on every node (OPERATIONS.md §10).
cluster-check:
	bash scripts/cluster-check.sh

clean:
	rm -rf results shard-check

GO ?= go

.PHONY: all ci vet build test race bench bench-smoke fuzz-smoke figures clean

all: ci

## ci: everything the driver/CI gate runs, in order.
ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

## test: the tier-1 gate (ROADMAP.md).
test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

## bench-smoke: one iteration of the perf-trajectory benchmarks
## (sequential vs parallel sweep, run-level pool, cache op throughput).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkSweepSequential|BenchmarkSweepParallel8|BenchmarkSimRunParallelism|BenchmarkCacheOpThroughput' -benchtime 1x .

## bench: the full benchmark suite (regenerates every figure; slow).
bench:
	$(GO) test -run '^$$' -bench . .

## fuzz-smoke: a short fuzz of the trace parser targets.
fuzz-smoke:
	$(GO) test ./internal/trace/ -fuzz FuzzParseMalformed -fuzztime 10s
	$(GO) test ./internal/trace/ -fuzz FuzzReadAll -fuzztime 10s

## figures: regenerate every table/figure CSV at small scale.
figures:
	$(GO) run ./cmd/figures -out results

clean:
	rm -rf results

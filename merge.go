package streamcache

import (
	"time"

	"streamcache/internal/bandwidth"
	"streamcache/internal/merge"
)

// Stream-merging types (Section 6: combining partial caching with
// patching and batching at caching proxies).
type (
	// MergeObject is the stream being merged (Size bytes at Rate bytes/s).
	MergeObject = merge.Object
	// MergeResult summarizes one merging simulation.
	MergeResult = merge.Result
	// PathConditions are the loss/RTT measurables an active prober sees.
	PathConditions = bandwidth.PathConditions
	// ActiveProber estimates bandwidth from probed loss and RTT via the
	// Padhye model.
	ActiveProber = bandwidth.ActiveProber
)

// MergeUnicast serves every request with a dedicated full origin stream
// (the merging baseline).
func MergeUnicast(times []float64, obj MergeObject) (MergeResult, error) {
	return merge.Unicast(times, obj)
}

// MergeBatch groups requests arriving within a window into one shared
// origin stream, trading startup delay for bandwidth.
func MergeBatch(times []float64, obj MergeObject, window float64) (MergeResult, error) {
	return merge.Batch(times, obj, window)
}

// MergePatch implements threshold-based patching with an optional cached
// prefix serving the head of every patch and full stream.
func MergePatch(times []float64, obj MergeObject, threshold float64, cachedBytes int64) (MergeResult, error) {
	return merge.Patch(times, obj, threshold, cachedBytes)
}

// OptimalPatchThreshold returns the bandwidth-minimizing patching
// threshold for Poisson arrivals of the given rate.
func OptimalPatchThreshold(lambda float64, obj MergeObject) (float64, error) {
	return merge.OptimalPatchThreshold(lambda, obj)
}

// SplitRequestsByObject groups a time-sorted request trace into
// per-object arrival-time slices for merge analysis.
func SplitRequestsByObject(times []float64, objectIDs []int) (map[int][]float64, error) {
	return merge.SplitByObject(times, objectIDs)
}

// PadhyeLossForRate inverts the Padhye throughput model, returning the
// loss rate at which a TCP-friendly transport achieves the target rate.
func PadhyeLossForRate(rate float64, mss int, rtt, rto time.Duration, ackedPerACK int) (float64, error) {
	return bandwidth.PadhyeLossForRate(rate, mss, rtt, rto, ackedPerACK)
}

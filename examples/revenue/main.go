// Revenue: the Section 2.6 scenario. Each stream has a dollar value that
// is earned only when cache + origin can jointly support immediate
// playout. The example compares the value-aware policies (PB-V, IB-V)
// against frequency-only caching under constant and variable bandwidth,
// and shows the static greedy optimum for calibration.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"streamcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "revenue:", err)
		os.Exit(1)
	}
}

func run() error {
	wcfg := streamcache.WorkloadConfig{NumObjects: 300, NumRequests: 8000}
	w, err := streamcache.GenerateWorkload(wcfg)
	if err != nil {
		return err
	}
	cacheBytes := w.TotalUniqueBytes() / 20 // 5%

	fmt.Println("Dynamic simulation (values $1-$10 per served stream):")
	fmt.Printf("%-28s %-6s %-18s %-12s\n", "bandwidth", "policy", "traffic_reduction", "total_value")
	for _, scenario := range []struct {
		label     string
		variation streamcache.Variability
	}{
		{"constant", streamcache.NoVariation{}},
		{"variable (measured paths)", streamcache.MeasuredVariability()},
	} {
		for _, policy := range []streamcache.Policy{
			streamcache.NewIF(), streamcache.NewPBV(), streamcache.NewIBV(),
		} {
			m, err := streamcache.RunSimulation(streamcache.SimConfig{
				Workload:   wcfg,
				CacheBytes: cacheBytes,
				Policy:     policy,
				Variation:  scenario.variation,
				Runs:       3,
				Seed:       1,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-28s %-6s %-18.3f $%-11.0f\n",
				scenario.label, policy.Name(), m.TrafficReductionRatio, m.TotalAddedValue)
		}
	}

	// Static greedy optimum of Section 2.6 for a known-rate snapshot.
	objs := make([]streamcache.Object, len(w.Objects))
	lambda := make([]float64, len(w.Objects))
	bw := make([]float64, len(w.Objects))
	counts := w.RequestCounts()
	model := streamcache.NLANRBandwidth()
	rng := rand.New(rand.NewSource(1))
	for i, o := range w.Objects {
		objs[i] = streamcache.Object{ID: o.ID, Size: o.Size, Duration: o.Duration, Rate: o.Rate, Value: o.Value}
		lambda[i] = float64(counts[i])
		bw[i] = model.Sample(rng)
	}
	placement, valueRate, err := streamcache.OptimalValuePlacement(objs, lambda, bw, cacheBytes)
	if err != nil {
		return err
	}
	var cached int64
	for _, bytes := range placement {
		cached += bytes
	}
	fmt.Printf("\nStatic greedy optimum (known rates): %d objects' deficits cached (%.1f GB), value rate %.0f\n",
		len(placement), float64(cached)/(1<<30), valueRate)
	fmt.Println("\nExpected shape (paper Figures 10-11): PB-V earns the most value under")
	fmt.Println("constant bandwidth; IB-V becomes the best choice once bandwidth varies.")
	return nil
}

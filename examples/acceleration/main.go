// Acceleration: the paper's Figure 1 running live on loopback HTTP.
// An origin server is throttled to half the stream's playback rate, so a
// cold client must wait before playout can start. After the proxy caches
// the prefix, the same request starts almost immediately while the
// remainder is prefetched from the origin behind the playout point -
// joint delivery in action.
package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"streamcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "acceleration:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		kb           = 1024
		objectSize   = 512 * kb // one 512 KB stream
		playbackRate = 512 * kb // plays at 512 KB/s (a 1-second stream)
		originRate   = 256 * kb // origin path limited to half the rate
	)
	catalog, err := streamcache.NewProxyCatalog([]streamcache.ProxyMeta{
		{ID: 1, Size: objectSize, Rate: playbackRate, Value: 5},
	})
	if err != nil {
		return err
	}
	origin, err := streamcache.NewOriginServer(catalog, originRate)
	if err != nil {
		return err
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	// IB policy: cache whole objects with the highest F/b utility.
	cache, err := streamcache.NewCache(64<<20, streamcache.NewIB())
	if err != nil {
		return err
	}
	px, err := streamcache.NewAcceleratorProxy(catalog, cache, originSrv.URL)
	if err != nil {
		return err
	}
	proxySrv := httptest.NewServer(px)
	defer proxySrv.Close()

	fmt.Printf("origin %s (limited to %d KB/s)\nproxy  %s\n\n", originSrv.URL, originRate/kb, proxySrv.URL)

	url := proxySrv.URL + "/objects/1"
	for _, label := range []string{"cold (cache empty)", "warm (prefix cached)"} {
		res, err := streamcache.Fetch(url)
		if err != nil {
			return err
		}
		if res.SHA256 != streamcache.ObjectContentSHA256(1, objectSize) {
			return fmt.Errorf("%s fetch corrupted the stream", label)
		}
		fmt.Printf("%-22s X-Cache=%-24q download=%7.0fms  startup_delay=%6.0fms\n",
			label, res.CacheState,
			res.Elapsed.Seconds()*1000,
			res.StartupDelay(playbackRate).Seconds()*1000)
	}

	var stats streamcache.ProxyStats
	if err := fetchJSON(proxySrv.URL+"/stats", &stats); err == nil {
		fmt.Printf("\nproxy stats: %d requests, %d prefix hits, %d bytes cached, origin estimate %d B/s\n",
			stats.Requests, stats.PrefixHits, stats.UsedBytes, stats.EstimateBps(""))
	}
	fmt.Println("\nThe warm fetch starts playback immediately: the cached prefix")
	fmt.Println("covers the bandwidth deficit while the rest streams from the origin.")
	return nil
}

func fetchJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return jsonDecode(resp, v)
}

package main

import (
	"encoding/json"
	"net/http"
)

// jsonDecode decodes an HTTP response body as JSON.
func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// Smoothing: the optimal smoothing substrate the paper assumes for VBR
// content (Section 2.2, citing Salehi et al.). A bursty MPEG-like frame
// trace is smoothed against increasing client buffers, showing the peak
// rate falling to the analytic lower bound and burstiness (rate CoV)
// collapsing - which is what justifies treating smoothed VBR objects as
// CBR in the caching model.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"streamcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smoothing:", err)
		os.Exit(1)
	}
}

func run() error {
	// A synthetic 40-second VBR trace at 24 frames/s: P-frames around
	// 2 KB with 12x I-frame spikes every 12 frames (GOP structure).
	rng := rand.New(rand.NewSource(7))
	frames := make([]float64, 960)
	for i := range frames {
		frames[i] = 1500 + rng.Float64()*1000
		// I-frame every 12 frames; the GOP is phase-shifted so the first
		// deadline is not itself a spike (a first-frame spike must be
		// delivered in slot 1 and would pin the peak at any buffer size).
		if i%12 == 6 {
			frames[i] = 18000 + rng.Float64()*6000
		}
	}
	mean, peak := stats(frames)
	fmt.Printf("raw trace: %d frames, mean %.0f B/frame, peak %.0f B/frame (%.1fx mean)\n\n",
		len(frames), mean, peak, peak/mean)

	fmt.Printf("%-12s %-10s %-16s %-10s %-9s\n", "buffer_KB", "segments", "peak_B_per_frame", "peak/mean", "rate_CoV")
	for _, bufferKB := range []float64{0, 16, 64, 256, 1024} {
		sched, err := streamcache.Smooth(frames, bufferKB*1024)
		if err != nil {
			return err
		}
		bound, err := streamcache.MinimalPeakBound(frames, bufferKB*1024)
		if err != nil {
			return err
		}
		if diff := sched.PeakRate() - bound; diff > 1e-6 || diff < -1e-6 {
			return fmt.Errorf("buffer %v KB: peak %v != analytic bound %v", bufferKB, sched.PeakRate(), bound)
		}
		fmt.Printf("%-12.0f %-10d %-16.0f %-10.2f %-9.3f\n",
			bufferKB, len(sched.Segments), sched.PeakRate(), sched.PeakRate()/sched.MeanRate(), sched.RateCoV())
	}
	fmt.Println("\nEvery schedule's peak equals the analytic minimum (taut-string optimality);")
	fmt.Println("with a megabyte of client buffer the stream is effectively CBR.")
	return nil
}

func stats(frames []float64) (mean, peak float64) {
	for _, f := range frames {
		mean += f
		if f > peak {
			peak = f
		}
	}
	return mean / float64(len(frames)), peak
}

// Quickstart: build a network-aware partial cache, feed it a Table 1
// workload, and compare the paper's three main policies on the three
// Section 3.3 metrics - the smallest useful tour of the library.
package main

import (
	"fmt"
	"os"

	"streamcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A scaled-down Table 1 workload: 300 objects (~47 GB), 8000
	// Zipf-distributed requests arriving as a Poisson process.
	wcfg := streamcache.WorkloadConfig{NumObjects: 300, NumRequests: 8000}
	w, err := streamcache.GenerateWorkload(wcfg)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d objects, %.1f GB unique bytes, %d requests\n",
		len(w.Objects), float64(w.TotalUniqueBytes())/(1<<30), len(w.Requests))

	// A cache worth 5% of the unique bytes, origin paths drawn from the
	// reconstructed NLANR bandwidth distribution (Figure 2).
	cacheBytes := w.TotalUniqueBytes() / 20
	fmt.Printf("cache: %.1f GB (5%% of unique bytes)\n\n", float64(cacheBytes)/(1<<30))
	fmt.Printf("%-4s  %-18s %-14s %-13s\n", "", "traffic_reduction", "avg_delay_s", "avg_quality")

	for _, policy := range []streamcache.Policy{
		streamcache.NewIF(), // frequency-only: whole hot objects
		streamcache.NewIB(), // network-aware, whole objects
		streamcache.NewPB(), // network-aware, partial (the paper's headline)
	} {
		m, err := streamcache.RunSimulation(streamcache.SimConfig{
			Workload:   wcfg,
			CacheBytes: cacheBytes,
			Policy:     policy,
			Runs:       3,
			Seed:       1,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-4s  %-18.3f %-14.1f %-13.3f\n",
			policy.Name(), m.TrafficReductionRatio, m.AvgServiceDelay, m.AvgStreamQuality)
	}
	fmt.Println("\nExpected shape (paper Figure 5): IF wins traffic reduction;")
	fmt.Println("PB wins service delay and stream quality; IB sits between.")
	return nil
}

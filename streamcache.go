// Package streamcache is a from-scratch reproduction of "Accelerating
// Internet Streaming Media Delivery using Network-Aware Partial Caching"
// (Jin, Bestavros, Iyengar; ICDCS 2002). It provides:
//
//   - the paper's cache-management algorithms (IF, PB, IB, the Hybrid
//     under-estimation spectrum, the value-based PB-V/IB-V variants, and
//     LRU/LFU baselines) over a byte-granular partial-caching cache;
//   - the offline optimal placements of Sections 2.3 and 2.6;
//   - GISMO-style workload synthesis (Table 1), NLANR-style bandwidth
//     models and estimators (Section 3.1, Figures 2-4), and the
//     simulation harness that reproduces Figures 5-12;
//   - a live HTTP streaming proxy prototype with joint cache+origin
//     delivery (Figure 1); and
//   - the optimal smoothing algorithm for VBR content the paper assumes.
//
// This file re-exports the stable public API; implementation lives under
// internal/. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-vs-measured results.
package streamcache

import (
	"math/rand"
	"time"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/proxy"
	"streamcache/internal/sim"
	"streamcache/internal/smoothing"
	"streamcache/internal/trace"
	"streamcache/internal/workload"
)

// Core cache types.
type (
	// Object describes one streaming media object as the cache sees it.
	Object = core.Object
	// AccessStats is the per-object frequency/recency bookkeeping.
	AccessStats = core.AccessStats
	// Policy decides utility and prefix targets for cached objects.
	Policy = core.Policy
	// Cache is the partial-caching proxy cache (Section 2.4 machinery).
	Cache = core.Cache
	// CacheOption configures optional cache behavior.
	CacheOption = core.Option
	// AccessResult reports what one cache access observed and caused.
	AccessResult = core.AccessResult
	// Victim records bytes evicted from one object during an access.
	Victim = core.Victim
	// CachePlacement is a snapshot of one cached object.
	CachePlacement = core.Placement
)

// Workload types.
type (
	// WorkloadConfig parameterizes synthetic workload generation
	// (zero values default to the paper's Table 1).
	WorkloadConfig = workload.Config
	// Workload is a generated object catalog plus request trace.
	Workload = workload.Workload
	// WorkloadObject is one object of a generated workload.
	WorkloadObject = workload.Object
	// WorkloadRequest is one client access of a generated workload.
	WorkloadRequest = workload.Request
)

// Bandwidth types.
type (
	// BandwidthModel draws per-path mean bandwidths.
	BandwidthModel = bandwidth.Model
	// ConstantBandwidth gives every path the same bandwidth.
	ConstantBandwidth = bandwidth.Constant
	// EmpiricalBandwidth is a piecewise-linear-CDF distribution.
	EmpiricalBandwidth = bandwidth.Empirical
	// CDFPoint is one control point of an empirical CDF.
	CDFPoint = bandwidth.CDFPoint
	// Variability draws sample-to-mean bandwidth ratios.
	Variability = bandwidth.Variability
	// NoVariation is the constant-bandwidth assumption (ratio 1).
	NoVariation = bandwidth.NoVariation
	// LognormalRatio draws mean-1 lognormal ratios.
	LognormalRatio = bandwidth.LognormalRatio
	// NetworkPath pairs a mean bandwidth with a variability process.
	NetworkPath = bandwidth.Path
	// BandwidthEstimator produces the b_i estimates policies consume.
	BandwidthEstimator = bandwidth.Estimator
	// EWMA is the passive bandwidth estimator of Section 2.7.
	EWMA = bandwidth.EWMA
	// StaticEstimator always reports a fixed bandwidth (oracle).
	StaticEstimator = bandwidth.Static
	// Underestimator scales another estimator by a factor e.
	Underestimator = bandwidth.Underestimator
	// SeriesConfig parameterizes a synthetic path time series (Fig 4).
	SeriesConfig = bandwidth.SeriesConfig
	// SeriesSample is one point of a bandwidth time series.
	SeriesSample = bandwidth.SeriesSample
	// PresetPath names one of the paper's measured paths.
	PresetPath = bandwidth.PresetPath
)

// The three measured paths of Figure 4.
const (
	PathINRIA    = bandwidth.PathINRIA
	PathTaiwan   = bandwidth.PathTaiwan
	PathHongKong = bandwidth.PathHongKong
)

// Simulation types.
type (
	// SimConfig parameterizes one simulation experiment.
	SimConfig = sim.Config
	// SimMetrics are the Section 3.3 performance measures.
	SimMetrics = sim.Metrics
	// EstimatorFactory builds per-path estimators for simulations.
	EstimatorFactory = sim.EstimatorFactory
	// SimArena memoizes workloads and path assignments across sweeps.
	SimArena = sim.Arena
)

// Smoothing types.
type (
	// SmoothingSchedule is a piecewise-CBR transmission plan.
	SmoothingSchedule = smoothing.Schedule
	// SmoothingSegment is one constant-rate run of a schedule.
	SmoothingSegment = smoothing.Segment
)

// Proxy prototype types.
type (
	// ProxyCatalog is the shared object directory of the prototype.
	ProxyCatalog = proxy.Catalog
	// ProxyMeta describes one object served by the origin.
	ProxyMeta = proxy.Meta
	// OriginServer is the rate-limited HTTP origin.
	OriginServer = proxy.Origin
	// AcceleratorProxy is the joint-delivery caching proxy.
	AcceleratorProxy = proxy.Proxy
	// ProxyStats counts proxy activity.
	ProxyStats = proxy.Stats
	// FetchResult captures one client download with its arrival curve.
	FetchResult = proxy.FetchResult
)

// Trace tooling types.
type (
	// TraceEntry is one Squid-format access log line.
	TraceEntry = trace.Entry
	// TraceGenConfig parameterizes synthetic log generation.
	TraceGenConfig = trace.GenConfig
	// TraceAnalysis holds bandwidth samples extracted from a log.
	TraceAnalysis = trace.Analysis
)

// NewCache builds a partial-caching cache with the given capacity in
// bytes and replacement policy.
func NewCache(capacity int64, policy Policy, opts ...CacheOption) (*Cache, error) {
	return core.New(capacity, policy, opts...)
}

// WithWholeObjectEviction switches eviction from byte-granular prefix
// shrinking to whole-object removal (ablation mode).
func WithWholeObjectEviction(on bool) CacheOption {
	return core.WithWholeObjectEviction(on)
}

// NewIF returns Integral Frequency-based caching (whole objects,
// hottest first).
func NewIF() Policy { return core.NewIF() }

// NewPB returns Partial Bandwidth-based caching (Sections 2.3-2.4).
func NewPB() Policy { return core.NewPB() }

// NewIB returns Integral Bandwidth-based caching (Section 2.5).
func NewIB() Policy { return core.NewIB() }

// NewHybrid returns the estimator-e policy spanning IB (e=0) to PB (e=1).
func NewHybrid(e float64) (Policy, error) { return core.NewHybrid(e) }

// NewPBV returns Partial Bandwidth-Value-based caching (Section 2.6).
func NewPBV() Policy { return core.NewPBV() }

// NewIBV returns Integral Bandwidth-Value-based caching (Section 2.6).
func NewIBV() Policy { return core.NewIBV() }

// NewHybridV returns the value-objective estimator-e policy (Figure 12).
func NewHybridV(e float64) (Policy, error) { return core.NewHybridV(e) }

// NewLRU returns the Least Recently Used baseline.
func NewLRU() Policy { return core.NewLRU() }

// NewLFU returns the Least Frequently Used baseline.
func NewLFU() Policy { return core.NewLFU() }

// NewGDS returns classic GreedyDual-Size with uniform retrieval cost.
// GDS-family policies carry aging state: build one per cache (use
// SimConfig.PolicyFactory in simulations).
func NewGDS() Policy { return core.NewGDS() }

// NewGDSBandwidth returns GreedyDual-Size with the network retrieval
// cost size/bandwidth.
func NewGDSBandwidth() Policy { return core.NewGDSBandwidth() }

// NewGDSP returns the popularity-aware GreedyDual-Size of Jin &
// Bestavros [17] with the network retrieval cost.
func NewGDSP() Policy { return core.NewGDSP() }

// PolicyByName constructs a policy from its short name (IF, PB, IB,
// PB-V, IB-V, LRU, LFU, HYBRID, HYBRID-V); hybrids take the estimator e.
func PolicyByName(name string, e float64) (Policy, error) {
	return core.PolicyByName(name, e)
}

// OptimalPlacement computes the Section 2.3 optimal static allocation
// (fractional knapsack on lambda_i/b_i) for known request rates.
func OptimalPlacement(objs []Object, lambda, bw []float64, capacity int64) (map[int]int64, error) {
	return core.OptimalPlacement(objs, lambda, bw, capacity)
}

// OptimalValuePlacement computes the Section 2.6 greedy value-maximizing
// placement and its achieved value rate.
func OptimalValuePlacement(objs []Object, lambda, bw []float64, capacity int64) (map[int]int64, float64, error) {
	return core.OptimalValuePlacement(objs, lambda, bw, capacity)
}

// ExpectedDelay returns the request-weighted mean startup delay of a
// placement under constant bandwidth (the Section 2.2 objective).
func ExpectedDelay(objs []Object, lambda, bw []float64, placement map[int]int64) (float64, error) {
	return core.ExpectedDelay(objs, lambda, bw, placement)
}

// StartupDelay returns the client-perceived delay before playout can
// begin: [S - T*b - x]+ / b (Section 2.2).
func StartupDelay(obj Object, cachedBytes int64, bw float64) float64 {
	return core.StartupDelay(obj, cachedBytes, bw)
}

// StreamQuality returns the fraction of the full stream immediate
// playout can sustain (Section 3.3).
func StreamQuality(obj Object, cachedBytes int64, bw float64) float64 {
	return core.StreamQuality(obj, cachedBytes, bw)
}

// ImmediatelyServable reports whether cache and origin jointly support
// immediate full-quality playout (Section 2.6).
func ImmediatelyServable(obj Object, cachedBytes int64, bw float64) bool {
	return core.ImmediatelyServable(obj, cachedBytes, bw)
}

// GenerateWorkload builds a synthetic workload; zero config fields take
// the paper's Table 1 defaults.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	return workload.Generate(cfg)
}

// NLANRBandwidth reconstructs the base bandwidth distribution of the
// NLANR proxy logs (Figure 2).
func NLANRBandwidth() *EmpiricalBandwidth { return bandwidth.NLANR() }

// NewEmpiricalBandwidth builds a distribution from CDF control points.
func NewEmpiricalBandwidth(points []CDFPoint) (*EmpiricalBandwidth, error) {
	return bandwidth.NewEmpirical(points)
}

// BandwidthFromSamples builds an empirical distribution from raw
// throughput samples (e.g. from an analyzed proxy log).
func BandwidthFromSamples(samples []float64) (*EmpiricalBandwidth, error) {
	return bandwidth.FromSamples(samples)
}

// NLANRVariability returns the high sample-to-mean variability of the
// NLANR logs (Figure 3).
func NLANRVariability() LognormalRatio { return bandwidth.NLANRVariability() }

// MeasuredVariability returns the lower variability of the measured
// Internet paths (Figure 4).
func MeasuredVariability() LognormalRatio { return bandwidth.MeasuredVariability() }

// NewLognormalRatio builds a mean-1 lognormal ratio model with the given
// sigma.
func NewLognormalRatio(sigma float64) (LognormalRatio, error) {
	return bandwidth.NewLognormalRatio(sigma)
}

// GenerateBandwidthSeries produces a synthetic path bandwidth time
// series (Figure 4 style).
func GenerateBandwidthSeries(cfg SeriesConfig, rng *rand.Rand, n int) ([]SeriesSample, error) {
	return bandwidth.GenerateSeries(cfg, rng, n)
}

// PresetSeriesConfig returns the series configuration modeled on one of
// the paper's measured paths.
func PresetSeriesConfig(p PresetPath) (SeriesConfig, error) {
	return bandwidth.PresetSeriesConfig(p)
}

// NewEWMA builds a passive EWMA bandwidth estimator (Section 2.7).
func NewEWMA(alpha float64) (*EWMA, error) { return bandwidth.NewEWMA(alpha) }

// PadhyeThroughput returns the TCP throughput predicted by the model of
// Padhye et al., the basis for active bandwidth measurement.
func PadhyeThroughput(mss int, rtt, rto time.Duration, loss float64, ackedPerACK int) (float64, error) {
	return bandwidth.PadhyeThroughput(mss, rtt, rto, loss, ackedPerACK)
}

// MathisThroughput returns the inverse-sqrt(loss) TCP throughput model.
func MathisThroughput(mss int, rtt time.Duration, loss float64) (float64, error) {
	return bandwidth.MathisThroughput(mss, rtt, loss)
}

// RunSimulation executes one experiment and returns metrics averaged
// over the configured seeded runs.
func RunSimulation(cfg SimConfig) (SimMetrics, error) { return sim.Run(cfg) }

// OracleEstimator models a cache that knows each path's mean bandwidth.
func OracleEstimator(path int, pathMean float64) BandwidthEstimator {
	return sim.OracleEstimator(path, pathMean)
}

// NewSimArena builds a workload/path memoization arena. Share one arena
// (via SimConfig.Arena) across the sweep points of an experiment so
// identical (workload config, seed) inputs are generated once; results
// are bit-identical with or without it.
func NewSimArena() *SimArena { return sim.NewArena() }

// UnderestimatingOracle scales the oracle estimate by e (Figures 9, 12).
func UnderestimatingOracle(e float64) EstimatorFactory {
	return sim.UnderestimatingOracle(e)
}

// EWMAEstimator builds passive per-path estimators for simulations.
func EWMAEstimator(alpha float64) EstimatorFactory { return sim.EWMAEstimator(alpha) }

// ActiveProbeEstimator builds active Padhye-model probers for
// simulations, with the given relative measurement noise (Section 6
// future work: active measurement integrated into proxy caches).
func ActiveProbeEstimator(jitter float64) EstimatorFactory {
	return sim.ActiveProbeEstimator(jitter)
}

// Smooth computes the optimal (minimum-peak, minimum-variability)
// transmission schedule for VBR frames and a client buffer.
func Smooth(frames []float64, buffer float64) (*SmoothingSchedule, error) {
	return smoothing.Smooth(frames, buffer)
}

// MinimalPeakBound returns the lower bound on the peak rate of any
// feasible schedule; Smooth always achieves it.
func MinimalPeakBound(frames []float64, buffer float64) (float64, error) {
	return smoothing.MinimalPeakBound(frames, buffer)
}

// NewProxyCatalog builds the shared object directory of the prototype.
func NewProxyCatalog(objects []ProxyMeta) (*ProxyCatalog, error) {
	return proxy.NewCatalog(objects)
}

// NewOriginServer builds a rate-limited HTTP origin over a catalog
// (pathRate in bytes/s; 0 = unlimited).
func NewOriginServer(catalog *ProxyCatalog, pathRate float64) (*OriginServer, error) {
	return proxy.NewOrigin(catalog, pathRate)
}

// NewAcceleratorProxy builds the joint-delivery caching proxy in front
// of the origin at originURL.
func NewAcceleratorProxy(catalog *ProxyCatalog, cache *Cache, originURL string) (*AcceleratorProxy, error) {
	return proxy.NewProxy(catalog, cache, originURL)
}

// Fetch downloads a URL recording the arrival curve, for startup-delay
// measurement.
func Fetch(url string) (*FetchResult, error) { return proxy.Fetch(url) }

// ObjectContent deterministically generates the bytes of prototype
// object id in [offset, offset+length).
func ObjectContent(id int, offset, length int64) []byte {
	return proxy.Content(id, offset, length)
}

// ObjectContentSHA256 returns the expected digest of a prototype object.
func ObjectContentSHA256(id int, size int64) string {
	return proxy.ContentSHA256(id, size)
}

// GenerateTrace synthesizes a Squid-format proxy log whose miss
// throughput follows the configured bandwidth model (Section 3.1
// substitution; see DESIGN.md).
func GenerateTrace(cfg TraceGenConfig) ([]TraceEntry, error) { return trace.Generate(cfg) }

// AnalyzeTrace extracts bandwidth samples from log entries following
// Section 3.1 (missed requests larger than minBytes; 0 means the
// paper's 200 KB threshold).
func AnalyzeTrace(entries []TraceEntry, minBytes int64) (*TraceAnalysis, error) {
	return trace.Analyze(entries, minBytes)
}

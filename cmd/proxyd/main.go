// Command proxyd runs the acceleration architecture of Figure 1 on two
// local HTTP ports: a rate-limited origin server and, in front of it,
// the partial-caching accelerator proxy. The catalog is generated from
// the Table 1 workload model (scaled down by default).
//
//	proxyd -origin-addr :8080 -proxy-addr :8081 -policy PB -cache-mb 256 &
//	curl -s http://localhost:8081/objects/0 | wc -c
//	curl -s http://localhost:8081/stats
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"streamcache/internal/core"
	"streamcache/internal/proxy"
	"streamcache/internal/units"
	"streamcache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxyd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		originAddr = flag.String("origin-addr", "127.0.0.1:8080", "origin listen address")
		proxyAddr  = flag.String("proxy-addr", "127.0.0.1:8081", "proxy listen address")
		policyName = flag.String("policy", "PB", "cache policy: IF, PB, IB, PB-V, IB-V, LRU, LFU")
		e          = flag.Float64("e", 0.5, "under-estimation factor for HYBRID policies")
		cacheMB    = flag.Int64("cache-mb", 256, "proxy cache capacity, MB")
		objects    = flag.Int("objects", 50, "catalog size")
		meanKB     = flag.Int64("mean-kb", 2048, "mean object size, KB")
		rateKBps   = flag.Float64("rate-kbps", 512, "object playback rate, KB/s")
		originKBps = flag.Float64("origin-kbps", 256, "origin path bandwidth limit, KB/s (0 = unlimited)")
		seed       = flag.Int64("seed", 1, "random seed for the catalog")
	)
	flag.Parse()

	catalog, err := buildCatalog(*objects, *meanKB, *rateKBps, *seed)
	if err != nil {
		return err
	}
	origin, err := proxy.NewOrigin(catalog, units.KBps(*originKBps))
	if err != nil {
		return err
	}
	policy, err := core.PolicyByName(*policyName, *e)
	if err != nil {
		return err
	}
	cache, err := core.New(*cacheMB*units.MB, policy)
	if err != nil {
		return err
	}
	px, err := proxy.NewProxy(catalog, cache, "http://"+*originAddr)
	if err != nil {
		return err
	}

	errc := make(chan error, 2)
	go func() {
		fmt.Printf("origin  listening on %s (path limit %.0f KB/s, %d objects)\n",
			*originAddr, *originKBps, catalog.Len())
		errc <- (&http.Server{Addr: *originAddr, Handler: origin, ReadHeaderTimeout: 5 * time.Second}).ListenAndServe()
	}()
	go func() {
		fmt.Printf("proxy   listening on %s (policy %s, cache %d MB)\n",
			*proxyAddr, policy.Name(), *cacheMB)
		errc <- (&http.Server{Addr: *proxyAddr, Handler: px, ReadHeaderTimeout: 5 * time.Second}).ListenAndServe()
	}()
	return <-errc
}

// buildCatalog derives object sizes from the Table 1 lognormal model,
// scaled so the mean object is meanKB.
func buildCatalog(n int, meanKB int64, rateKBps float64, seed int64) (*proxy.Catalog, error) {
	w, err := workload.Generate(workload.Config{NumObjects: n, NumRequests: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	meanBytes := float64(w.TotalUniqueBytes()) / float64(n)
	scale := float64(meanKB*units.KB) / meanBytes
	rate := units.KBps(rateKBps)
	metas := make([]proxy.Meta, n)
	for i, o := range w.Objects {
		size := int64(float64(o.Size) * scale)
		if size < 16*units.KB {
			size = 16 * units.KB
		}
		metas[i] = proxy.Meta{ID: o.ID, Size: size, Rate: rate, Value: o.Value}
	}
	return proxy.NewCatalog(metas)
}

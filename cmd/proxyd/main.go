// Command proxyd runs the acceleration architecture of Figure 1 on two
// local HTTP ports: a rate-limited origin server and, in front of it,
// the sharded partial-caching accelerator proxy. The catalog is
// generated from the Table 1 workload model (scaled down by default).
//
//	proxyd -origin-addr :8080 -proxy-addr :8081 -policy PB -cache-mb 256 -shards 8 &
//	curl -s http://localhost:8081/objects/0 | wc -c
//	curl -s http://localhost:8081/stats
//
// On SIGTERM or SIGINT proxyd drains gracefully: it stops accepting
// connections, waits for in-flight requests and origin transfers to
// finish, prints a final stats snapshot, and exits 0.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamcache/internal/cluster"
	"streamcache/internal/core"
	"streamcache/internal/proxy"
	"streamcache/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "proxyd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		originAddr = flag.String("origin-addr", "127.0.0.1:8080", "origin listen address")
		proxyAddr  = flag.String("proxy-addr", "127.0.0.1:8081", "proxy listen address")
		policyName = flag.String("policy", "PB", "cache policy: IF, PB, IB, PB-V, IB-V, LRU, LFU")
		e          = flag.Float64("e", 0.5, "under-estimation factor for HYBRID policies")
		cacheMB    = flag.Int64("cache-mb", 256, "proxy cache capacity, MB (split across shards)")
		shards     = flag.Int("shards", 1, "number of proxy shards (ID-hashed object partitions)")
		objects    = flag.Int("objects", 50, "catalog size")
		meanKB     = flag.Int64("mean-kb", 2048, "mean object size, KB")
		rateKBps   = flag.Float64("rate-kbps", 512, "object playback rate, KB/s")
		originKBps = flag.Float64("origin-kbps", 256, "origin path bandwidth limit, KB/s (0 = unlimited)")
		seed       = flag.Int64("seed", 1, "random seed for the catalog")
		drainSec   = flag.Float64("drain-timeout", 30, "graceful-drain timeout on SIGTERM, seconds")

		// Cluster flags: every node of one cluster must share the same
		// catalog flags (-objects, -mean-kb, -rate-kbps, -seed) and the
		// identical -peers list — object ownership is positional on the
		// consistent-hash ring.
		originURL = flag.String("origin-url", "", "external origin base URL (e.g. http://host:8080); skips starting the local origin")
		peers     = flag.String("peers", "", "comma-separated edge base URLs in ring order, self included (enables consistent-hash peering)")
		nodeIndex = flag.Int("node-index", 0, "this node's index in -peers")
		parentURL = flag.String("parent", "", "parent-tier proxy base URL (misses go edge -> peer owner -> parent -> origin)")
		tier      = flag.String("tier", "", "node tier label surfaced in /stats (e.g. edge, parent)")
		peerTmo   = flag.Duration("peer-timeout", 5*time.Second, "peer/parent response-header timeout before a fetch falls back to the origin")
	)
	flag.Parse()

	catalog, err := proxy.BuildCatalog(*objects, *meanKB, *rateKBps, *seed)
	if err != nil {
		return err
	}
	// Validate the policy spec once up front; each shard then builds its
	// own instance (stateful policies such as GDS must not be shared).
	if _, err := core.PolicyByName(*policyName, *e); err != nil {
		return err
	}

	// With -origin-url the node fronts an origin another process runs
	// (the multi-node deployment); otherwise it runs its own.
	defaultOrigin := *originURL
	startOrigin := defaultOrigin == ""
	if startOrigin {
		defaultOrigin = "http://" + *originAddr
	}

	pcfg := proxy.Config{
		Catalog:    catalog,
		OriginURL:  defaultOrigin,
		Shards:     *shards,
		CacheBytes: *cacheMB * units.MB,
		NewPolicy: func() core.Policy {
			p, err := core.PolicyByName(*policyName, *e)
			if err != nil {
				// Unreachable: the spec was validated above.
				panic(err)
			}
			return p
		},
		Tier: *tier,
	}
	if *peers != "" || *parentURL != "" {
		node := cluster.NodeConfig{
			Self:              *nodeIndex,
			Parent:            *parentURL,
			Origin:            defaultOrigin,
			PeerHeaderTimeout: *peerTmo,
		}
		if *peers != "" {
			node.Peers = strings.Split(*peers, ",")
		}
		ups, route, err := node.Router()
		if err != nil {
			return err
		}
		pcfg.Upstreams = ups
		pcfg.Router = route
	}
	px, err := proxy.New(pcfg)
	if err != nil {
		return err
	}

	proxyLn, err := net.Listen("tcp", *proxyAddr)
	if err != nil {
		return fmt.Errorf("proxy listen: %w", err)
	}
	proxySrv := &http.Server{Handler: px, ReadHeaderTimeout: 5 * time.Second}

	errc := make(chan error, 2)
	var originSrv *http.Server
	if startOrigin {
		origin, err := proxy.NewOrigin(catalog, units.KBps(*originKBps))
		if err != nil {
			proxyLn.Close()
			return err
		}
		originLn, err := net.Listen("tcp", *originAddr)
		if err != nil {
			proxyLn.Close()
			return fmt.Errorf("origin listen: %w", err)
		}
		originSrv = &http.Server{Handler: origin, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			fmt.Printf("origin  listening on %s (path limit %.0f KB/s, %d objects)\n",
				originLn.Addr(), *originKBps, catalog.Len())
			errc <- originSrv.Serve(originLn)
		}()
	} else {
		fmt.Printf("origin  external at %s\n", defaultOrigin)
	}
	go func() {
		fmt.Printf("proxy   listening on %s (policy %s, cache %d MB, %d shards, tier %q)\n",
			proxyLn.Addr(), *policyName, *cacheMB, px.Shards(), *tier)
		errc <- proxySrv.Serve(proxyLn)
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("proxyd: %v: draining...\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSec*float64(time.Second)))
		defer cancel()
		// Stop the proxy's client side first so no new joint deliveries
		// start, then the origin (in-flight relays finish through it),
		// then wait for relay reconciliation to settle.
		if err := proxySrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "proxyd: proxy shutdown:", err)
		}
		if originSrv != nil {
			if err := originSrv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "proxyd: origin shutdown:", err)
			}
		}
		// Quiesce within whatever remains of the drain window: the flag
		// bounds the whole drain, so a stalled transfer cannot hold the
		// process past it.
		quiesced := make(chan struct{})
		go func() {
			px.Quiesce()
			close(quiesced)
		}()
		select {
		case <-quiesced:
		case <-ctx.Done():
			return fmt.Errorf("drain timed out after %gs with transfers still in flight", *drainSec)
		}
		out, err := json.Marshal(px.Snapshot())
		if err != nil {
			return err
		}
		fmt.Printf("proxyd: drained; final stats: %s\n", out)
		return nil
	}
}

// Command traceanalyze reproduces the Section 3.1 log analysis: it takes
// a Squid-format access log, extracts a bandwidth sample from every
// missed request larger than 200 KB (object size / connection duration),
// and prints the bandwidth histogram/CDF of Figure 2 and the per-path
// sample-to-mean ratio distribution of Figure 3.
//
//	tracegen -entries 100000 | traceanalyze
//	traceanalyze -min-kb 200 access.log
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"streamcache/internal/metrics"
	"streamcache/internal/trace"
	"streamcache/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		minKB   = flag.Int64("min-kb", 200, "minimum object size for a bandwidth sample, KB")
		binKBps = flag.Float64("bin-kbps", 4, "histogram bin width, KB/s (paper: 4)")
		maxKBps = flag.Float64("max-kbps", 452, "histogram upper range, KB/s")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	entries, err := trace.ReadAll(in)
	if err != nil {
		return err
	}
	analysis, err := trace.Analyze(entries, *minKB*units.KB)
	if err != nil {
		return err
	}

	fmt.Printf("entries=%d qualifying_samples=%d servers=%d\n",
		len(entries), len(analysis.Samples), len(analysis.PerServer))

	hist, err := analysis.Histogram(units.KBps(*binKBps), units.KBps(*maxKBps))
	if err != nil {
		return err
	}
	fmt.Printf("\n# Figure 2: bandwidth distribution (%g KB/s bins)\n", *binKBps)
	fmt.Println("bw_KBps,samples,cdf")
	cdf := hist.CDF()
	for i := 0; i < hist.NumBins(); i++ {
		if hist.Bin(i) == 0 && i > 0 && cdf[i] == cdf[i-1] {
			continue // skip empty bins for readability
		}
		fmt.Printf("%.0f,%d,%.3f\n", units.ToKBps(hist.BinStart(i)), hist.Bin(i), cdf[i])
	}
	fmt.Printf("P[bw < 50 KB/s]  = %.3f (paper: 0.37)\n", hist.FractionBelow(units.KBps(50)))
	fmt.Printf("P[bw < 100 KB/s] = %.3f (paper: 0.56)\n", hist.FractionBelow(units.KBps(100)))

	ratios := analysis.SampleToMeanRatios()
	if len(ratios) == 0 {
		fmt.Println("\n# Figure 3: not enough repeat-path samples for ratio analysis")
		return nil
	}
	rh, err := metrics.NewHistogram(0, 0.1, 31)
	if err != nil {
		return err
	}
	var within int
	var w metrics.Welford
	for _, r := range ratios {
		rh.Add(r)
		w.Add(r)
		if r >= 0.5 && r <= 1.5 {
			within++
		}
	}
	fmt.Printf("\n# Figure 3: sample-to-mean ratio distribution (%d ratios)\n", len(ratios))
	fmt.Println("ratio,samples,cdf")
	rcdf := rh.CDF()
	for i := 0; i < rh.NumBins(); i++ {
		fmt.Printf("%.1f,%d,%.3f\n", rh.BinStart(i), rh.Bin(i), rcdf[i])
	}
	fmt.Printf("P[0.5 <= ratio <= 1.5] = %.3f (paper: ~0.70)\n", float64(within)/float64(len(ratios)))
	fmt.Printf("ratio CoV = %.3f\n", w.CoV())
	return nil
}

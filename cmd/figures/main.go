// Command figures regenerates every table and figure of the paper's
// evaluation as CSV files, one per experiment, plus an index.
//
//	figures -out results/            # fast small-scale run
//	figures -out results/ -scale paper -only figure5,figure9
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"streamcache/internal/experiments"
)

var builders = []struct {
	key   string
	file  string
	build func(experiments.Scale) (*experiments.Table, error)
}{
	{"table1", "table1_workload.csv", experiments.Table1},
	{"figure2", "figure2_bandwidth_distribution.csv", experiments.Figure2},
	{"figure3", "figure3_bandwidth_variability.csv", experiments.Figure3},
	{"figure4", "figure4_path_time_series.csv", experiments.Figure4},
	{"figure5", "figure5_constant_bandwidth.csv", experiments.Figure5},
	{"figure6", "figure6_zipf_alpha.csv", experiments.Figure6},
	{"figure7", "figure7_nlanr_variability.csv", experiments.Figure7},
	{"figure8", "figure8_measured_variability.csv", experiments.Figure8},
	{"figure9", "figure9_estimator_sweep.csv", experiments.Figure9},
	{"figure10", "figure10_value_constant.csv", experiments.Figure10},
	{"figure11", "figure11_value_variable.csv", experiments.Figure11},
	{"figure12", "figure12_value_estimator_sweep.csv", experiments.Figure12},
	{"ablation-eviction", "ablation_eviction_granularity.csv", experiments.AblationEvictionGranularity},
	{"ablation-estimators", "ablation_estimators.csv", experiments.AblationEstimators},
	{"ext-merging", "extension_stream_merging.csv", experiments.ExtensionStreamMerging},
	{"ext-partial-viewing", "extension_partial_viewing.csv", experiments.ExtensionPartialViewing},
	{"ext-active-probing", "extension_active_probing.csv", experiments.ExtensionActiveProbing},
	{"ext-baselines", "extension_baselines.csv", experiments.ExtensionBaselines},
	{"scenarios", "scenario_matrix.csv", experiments.ScenarioMatrix},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "results", "output directory")
		scale    = flag.String("scale", "small", "experiment scale: small or paper")
		only     = flag.String("only", "", "comma-separated experiment keys (default: all)")
		seed     = flag.Int64("seed", 1, "base random seed")
		parallel = flag.Int("parallel", 0, "worker goroutines per sweep (0 = GOMAXPROCS); tables are identical for any value")
	)
	flag.Parse()

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.SmallScale()
	case "paper":
		s = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (want small or paper)", *scale)
	}
	s.Seed = *seed
	s.Parallelism = *parallel

	known := map[string]bool{}
	keys := make([]string, 0, len(builders))
	for _, b := range builders {
		known[b.key] = true
		keys = append(keys, b.key)
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if k == "" { // tolerate trailing/doubled commas
				continue
			}
			if !known[k] {
				return fmt.Errorf("unknown experiment key %q (known: %s)", k, strings.Join(keys, ", "))
			}
			selected[k] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	var index strings.Builder
	fmt.Fprintf(&index, "# Regenerated %s at scale=%s seed=%d\n", time.Now().Format(time.RFC3339), *scale, *seed)
	for _, b := range builders {
		if len(selected) > 0 && !selected[b.key] {
			continue
		}
		start := time.Now()
		table, err := b.build(s)
		if err != nil {
			return fmt.Errorf("%s: %w", b.key, err)
		}
		path := filepath.Join(*out, b.file)
		if err := writeCSV(path, table); err != nil {
			return fmt.Errorf("%s: %w", b.key, err)
		}
		fmt.Printf("%-20s %-45s %5d rows  %v\n", b.key, b.file, len(table.Rows), time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(&index, "%s: %s (%d rows) - %s\n", b.key, b.file, len(table.Rows), table.Name)
	}
	return os.WriteFile(filepath.Join(*out, "INDEX.txt"), []byte(index.String()), 0o644)
}

func writeCSV(path string, t *experiments.Table) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintf(f, "# %s\n", t.Name)
	if t.Note != "" {
		fmt.Fprintf(f, "# %s\n", t.Note)
	}
	fmt.Fprintln(f, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(f, strings.Join(row, ","))
	}
	return f.Close()
}

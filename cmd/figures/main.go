// Command figures regenerates every table and figure of the paper's
// evaluation as CSV files, one per experiment, plus an index. Rows are
// streamed to disk as sweep points complete (flushed row by row, in
// deterministic order), so long paper-scale sweeps can be tailed and
// plotted while they run.
//
//	figures -out results/            # fast small-scale run
//	figures -out results/ -scale paper -only figure5,figure9
//	figures -out results/ -jsonl -refine 8
//
// Sweeps distribute across processes and survive interruption (see
// OPERATIONS.md): each shard writes index-keyed JSONL plus a checkpoint
// journal, and -merge reassembles the canonical files afterwards,
// byte-identical to a single-process run.
//
//	figures -out results/ -shard 0/2 -journal results/j0.jsonl   # machine A
//	figures -out results/ -shard 1/2 -journal results/j1.jsonl   # machine B
//	figures -out results/ -shard 1/2 -journal results/j1.jsonl -resume  # after a crash
//	figures -out results/ -merge                                 # combine
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"streamcache/internal/collect"
	"streamcache/internal/experiments"
	"streamcache/internal/sim"
)

// files maps experiment keys to their CSV file names; keys missing here
// (future experiments) fall back to <key>.csv.
var files = map[string]string{
	"table1":              "table1_workload.csv",
	"figure2":             "figure2_bandwidth_distribution.csv",
	"figure3":             "figure3_bandwidth_variability.csv",
	"figure4":             "figure4_path_time_series.csv",
	"figure5":             "figure5_constant_bandwidth.csv",
	"figure6":             "figure6_zipf_alpha.csv",
	"figure7":             "figure7_nlanr_variability.csv",
	"figure8":             "figure8_measured_variability.csv",
	"figure9":             "figure9_estimator_sweep.csv",
	"figure10":            "figure10_value_constant.csv",
	"figure11":            "figure11_value_variable.csv",
	"figure12":            "figure12_value_estimator_sweep.csv",
	"ablation-eviction":   "ablation_eviction_granularity.csv",
	"ablation-estimators": "ablation_estimators.csv",
	"ext-merging":         "extension_stream_merging.csv",
	"ext-partial-viewing": "extension_partial_viewing.csv",
	"ext-active-probing":  "extension_active_probing.csv",
	"ext-baselines":       "extension_baselines.csv",
	"scenarios":           "scenario_matrix.csv",
	"refined-e":           "refined_e_sweep.csv",
	"refined-sigma":       "refined_sigma_sweep.csv",
	"refined-cache":       "refined_cache_sweep.csv",
	"refined-esigma":      "refined_esigma_sweep.csv",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out         = flag.String("out", "results", "output directory")
		scale       = flag.String("scale", "small", "experiment scale: small or paper")
		only        = flag.String("only", "", "comma-separated experiment keys (default: all)")
		seed        = flag.Int64("seed", 1, "base random seed")
		parallel    = flag.Int("parallel", 0, "worker goroutines per sweep (0 = GOMAXPROCS); tables are identical for any value")
		refine      = flag.Int("refine", -1, "extra adaptive points per refined sweep (-1 = scale default)")
		jsonl       = flag.Bool("jsonl", false, "also stream each experiment as JSON Lines next to its CSV")
		shard       = flag.String("shard", "", "compute only this shard of every sweep, as index/count (e.g. 0/2); output becomes per-shard JSONL for -merge")
		journal     = flag.String("journal", "", "checkpoint completed rows to this JSONL journal")
		resume      = flag.Bool("resume", false, "skip rows already recorded in -journal (resume an interrupted run)")
		merge       = flag.Bool("merge", false, "merge the per-shard JSONL outputs in -out into canonical CSV (and -jsonl) files, then exit")
		compact     = flag.Bool("compact-journal", false, "rewrite -journal to its live state (one line per completed row, superseded records dropped), then exit; pass the run's own -scale/-seed/-shard flags")
		collectURL  = flag.String("collect", "", "push rows and refinement metrics to this collector URL (see cmd/collectd); sharded refinement then simulates only owned points per round")
		knee        = flag.String("knee", "", "locate the SLO knee in this live-capacity CSV (from loadgen -mode open), print it, then exit")
		kneeFrac    = flag.Float64("knee-threshold", 0.1, "SLO-violation fraction that defines the knee for -knee")
		overlayLive = flag.String("overlay-live", "", "live CSV (loadgen output) to overlay against -overlay-sim, then exit")
		overlaySim  = flag.String("overlay-sim", "", "sim sweep CSV to overlay against -overlay-live")
		overlayOut  = flag.String("overlay-out", "-", "overlay CSV destination ('-' = stdout)")
		cpuprof     = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof     = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures: mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "figures: mem profile:", err)
			}
		}()
	}

	if *knee != "" {
		return reportKnee(*knee, *kneeFrac)
	}
	if *overlayLive != "" || *overlaySim != "" {
		if *overlayLive == "" || *overlaySim == "" {
			return fmt.Errorf("-overlay-live and -overlay-sim go together")
		}
		return writeOverlay(*overlayLive, *overlaySim, *overlayOut)
	}
	if *merge {
		return mergeShardOutputs(*out, *jsonl)
	}
	if *resume && *journal == "" {
		return fmt.Errorf("-resume needs -journal to name the checkpoint file")
	}
	if *compact && *journal == "" {
		return fmt.Errorf("-compact-journal needs -journal to name the checkpoint file")
	}

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.SmallScale()
	case "paper":
		s = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (want small or paper)", *scale)
	}
	s.Seed = *seed
	s.Parallelism = *parallel
	if *refine >= 0 {
		s.RefineBudget = *refine
	}
	sh, err := experiments.ParseShard(*shard)
	if err != nil {
		return err
	}
	s.Shard = sh
	// One arena for the whole figure set: the sizing workload, Table 1
	// trace, and Figures 2-3 synthetic logs are shared across
	// experiments, so they are generated once per distinct config
	// instead of once per experiment. Rows are bit-identical either way.
	if !s.NoWorkloadReuse {
		s.Arena = sim.NewArena()
	}

	exps := experiments.Experiments()
	known := map[string]bool{}
	keys := make([]string, 0, len(exps))
	for _, e := range exps {
		known[e.Key] = true
		keys = append(keys, e.Key)
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if k == "" { // tolerate trailing/doubled commas
				continue
			}
			if !known[k] {
				return fmt.Errorf("unknown experiment key %q (known: %s)", k, strings.Join(keys, ", "))
			}
			selected[k] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	if *compact {
		// Standalone maintenance: rewrite the checkpoint to its live
		// state between runs of a long sweep. The fingerprint check makes
		// mismatched flags an error instead of a silent wipe.
		j, err := experiments.ResumeJournal(*journal, s.Fingerprint())
		if err != nil {
			return err
		}
		before, err := os.Stat(*journal)
		if err != nil {
			j.Close()
			return err
		}
		if err := j.Compact(); err != nil {
			j.Close()
			return err
		}
		if err := j.Close(); err != nil {
			return err
		}
		after, err := os.Stat(*journal)
		if err != nil {
			return err
		}
		fmt.Printf("compacted %s: %d -> %d bytes\n", *journal, before.Size(), after.Size())
		return nil
	}

	var collector *collect.Client
	if *collectURL != "" {
		collector = collect.NewClient(*collectURL, s.Shard, s.RunFingerprint())
		if collector.Down() {
			// Degraded but correct: every point evaluates locally and the
			// journal/merge workflow still reassembles the run.
			fmt.Fprintf(os.Stderr, "figures: collector %s unreachable; continuing without it (journal and -merge still work)\n", *collectURL)
			collector = nil
		} else {
			s.Exchange = collector
			defer func() {
				if err := collector.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "figures:", err)
				}
			}()
		}
	}

	var j *experiments.Journal
	if *journal != "" {
		if *resume {
			j, err = experiments.ResumeJournal(*journal, s.Fingerprint())
		} else {
			j, err = experiments.CreateJournal(*journal, s.Fingerprint())
		}
		if err != nil {
			return err
		}
		defer j.Close()
		if *resume {
			s.Resume = j
		}
	}

	var index strings.Builder
	fmt.Fprintf(&index, "# Regenerated %s at scale=%s seed=%d shard=%s\n",
		time.Now().Format(time.RFC3339), *scale, *seed, s.Shard)
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.Key] {
			continue
		}
		file := files[e.Key]
		if file == "" {
			file = e.Key + ".csv"
		}
		stem := strings.TrimSuffix(file, ".csv")
		if s.Shard.Count > 1 {
			// Sharded runs emit index-keyed JSONL only: CSV rows carry no
			// index, so a shard's CSV could not be merged.
			file = shardFileName(file, s.Shard)
		}
		start := time.Now()
		name, rows, err := streamExperiment(e, s, j, collector, stem, filepath.Join(*out, file), *jsonl)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Key, err)
		}
		fmt.Printf("%-20s %-45s %5d rows  %v\n", e.Key, file, rows, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(&index, "%s: %s (%d rows) - %s\n", e.Key, file, rows, name)
	}
	indexName := "INDEX.txt"
	if s.Shard.Count > 1 {
		indexName = fmt.Sprintf("INDEX.shard%d-of-%d.txt", s.Shard.Index, s.Shard.Count)
	}
	return os.WriteFile(filepath.Join(*out, indexName), []byte(index.String()), 0o644)
}

// reportKnee reads a live-capacity table (loadgen -mode open output)
// and prints the first ramp level whose SLO-violation fraction crosses
// the threshold — the proxy's measured capacity knee.
func reportKnee(path string, threshold float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := experiments.ReadCSVTable(f)
	if err != nil {
		return err
	}
	col := func(name string) int {
		for i, h := range t.Header {
			if h == name {
				return i
			}
		}
		return -1
	}
	offered, frac := col("offered_rps"), col("slo_violation_frac")
	if frac < 0 {
		return fmt.Errorf("%s: no slo_violation_frac column (not a live-capacity table?)", path)
	}
	knee := experiments.FindKnee(t, threshold)
	if knee < 0 {
		fmt.Printf("no knee: slo_violation_frac never exceeds %g across %d levels\n", threshold, len(t.Rows))
		return nil
	}
	row := t.Rows[knee]
	if offered >= 0 && offered < len(row) {
		fmt.Printf("knee at level %d: offered %s req/s, slo_violation_frac %s (threshold %g)\n",
			knee, row[offered], row[frac], threshold)
	} else {
		fmt.Printf("knee at level %d: slo_violation_frac %s (threshold %g)\n", knee, row[frac], threshold)
	}
	// The rows before and after the knee bracket the capacity estimate;
	// echo them so the operator sees the crossing context.
	for i := knee - 1; i <= knee+1 && i < len(t.Rows); i++ {
		if i < 0 {
			continue
		}
		fmt.Printf("  level %d: %s\n", i, strings.Join(t.Rows[i], ","))
	}
	return nil
}

// writeOverlay joins a live measurement CSV with a sim sweep CSV on
// their shared column names and renders the source-tagged overlay
// table — the one-file input for live-vs-sim cross-validation plots.
func writeOverlay(livePath, simPath, outPath string) error {
	readTable := func(path string) (*experiments.Table, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return experiments.ReadCSVTable(f)
	}
	live, err := readTable(livePath)
	if err != nil {
		return err
	}
	sim, err := readTable(simPath)
	if err != nil {
		return err
	}
	overlay, err := experiments.OverlayTables(live, sim)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if outPath != "-" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	sink := experiments.NewCSVSink(w)
	if err := sink.Begin(experiments.TableMeta{Name: overlay.Name, Note: overlay.Note, Header: overlay.Header}); err != nil {
		return err
	}
	for _, row := range overlay.Rows {
		if err := sink.Row(row); err != nil {
			return err
		}
	}
	return sink.End()
}

// shardFileName turns figure5_x.csv into figure5_x.shard0-of-2.jsonl.
func shardFileName(csvName string, sh experiments.Shard) string {
	stem := strings.TrimSuffix(csvName, ".csv")
	return fmt.Sprintf("%s.shard%d-of-%d.jsonl", stem, sh.Index, sh.Count)
}

// metaCapture records the table name flowing past it, for the index
// file. It rides inside the MultiSink (not around it), so the engine
// still sees the index-aware sinks beside it.
type metaCapture struct {
	name string
}

func (m *metaCapture) Begin(meta experiments.TableMeta) error {
	m.name = meta.Name
	return nil
}
func (m *metaCapture) Row([]string) error { return nil }
func (m *metaCapture) End() error         { return nil }

// countingSink counts rows without rendering them.
type countingSink struct {
	rows int
}

func (c *countingSink) Begin(experiments.TableMeta) error { return nil }
func (c *countingSink) Row([]string) error                { c.rows++; return nil }
func (c *countingSink) End() error                        { return nil }

// streamExperiment streams one experiment to path — canonical CSV (plus
// an optional sibling .jsonl) when unsharded, per-shard JSONL when
// sharded — journaling rows when j is non-nil and pushing them to the
// collector when one is connected, and returns the table name and the
// row count this process emitted.
func streamExperiment(e experiments.Experiment, s experiments.Scale, j *experiments.Journal,
	collector *collect.Client, stem, path string, jsonl bool) (string, int, error) {

	out, err := os.Create(path)
	if err != nil {
		return "", 0, err
	}
	defer out.Close()

	meta := &metaCapture{}
	count := &countingSink{}
	sink := experiments.MultiSink{meta, count}
	if s.Shard.Count > 1 {
		sink = append(sink, experiments.NewJSONLSink(out))
	} else {
		sink = append(sink, experiments.NewCSVSink(out))
		if jsonl {
			jsonlPath := strings.TrimSuffix(path, ".csv") + ".jsonl"
			jf, err := os.Create(jsonlPath)
			if err != nil {
				return "", 0, err
			}
			defer jf.Close()
			sink = append(sink, experiments.NewJSONLSink(jf))
		}
	}
	if j != nil {
		sink = append(sink, experiments.NewJournalSink(j))
	}
	if collector != nil {
		sink = append(sink, collector.Sink(stem))
	}

	if err := e.Stream(s, sink); err != nil {
		return "", 0, err
	}
	return meta.name, count.rows, out.Close()
}

// shardFilePattern matches per-shard outputs: <stem>.shard<i>-of-<n>.jsonl.
var shardFilePattern = regexp.MustCompile(`^(.+)\.shard(\d+)-of-(\d+)\.jsonl$`)

// mergeShardOutputs scans dir for per-shard JSONL groups, validates each
// group is complete, and merges every group into its canonical CSV
// (and, with jsonl, JSONL) file — byte-identical to an unsharded run.
func mergeShardOutputs(dir string, jsonl bool) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	type group struct {
		count int
		parts map[int]string // shard index -> file name
	}
	groups := map[string]*group{}
	for _, ent := range entries {
		m := shardFilePattern.FindStringSubmatch(ent.Name())
		if m == nil {
			continue
		}
		stem := m[1]
		var idx, count int
		fmt.Sscanf(m[2], "%d", &idx)
		fmt.Sscanf(m[3], "%d", &count)
		g := groups[stem]
		if g == nil {
			g = &group{count: count, parts: map[int]string{}}
			groups[stem] = g
		}
		if g.count != count {
			return fmt.Errorf("merge: %s has shards of both %d and %d", stem, g.count, count)
		}
		if prev, dup := g.parts[idx]; dup {
			return fmt.Errorf("merge: %s shard %d appears twice (%s, %s)", stem, idx, prev, ent.Name())
		}
		g.parts[idx] = ent.Name()
	}
	if len(groups) == 0 {
		return fmt.Errorf("merge: no *.shard<i>-of-<n>.jsonl files in %s", dir)
	}

	stems := make([]string, 0, len(groups))
	for stem := range groups {
		stems = append(stems, stem)
	}
	sort.Strings(stems)
	for _, stem := range stems {
		g := groups[stem]
		readers := make([]*os.File, 0, g.count)
		closeAll := func() {
			for _, f := range readers {
				f.Close()
			}
		}
		for idx := 0; idx < g.count; idx++ {
			name, ok := g.parts[idx]
			if !ok {
				closeAll()
				return fmt.Errorf("merge: %s is missing shard %d of %d", stem, idx, g.count)
			}
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				closeAll()
				return err
			}
			readers = append(readers, f)
		}

		if err := writeMerged(dir, stem, readers, jsonl); err != nil {
			closeAll()
			return fmt.Errorf("merge: %s: %w", stem, err)
		}
		closeAll()
		fmt.Printf("merged %-45s %d shards -> %s.csv\n", stem, g.count, stem)
	}
	return nil
}

// writeMerged merges one group of open shard files into canonical
// outputs under dir.
func writeMerged(dir, stem string, parts []*os.File, jsonl bool) error {
	csvFile, err := os.Create(filepath.Join(dir, stem+".csv"))
	if err != nil {
		return err
	}
	defer csvFile.Close()
	sink := experiments.MultiSink{experiments.NewCSVSink(csvFile)}
	if jsonl {
		jf, err := os.Create(filepath.Join(dir, stem+".jsonl"))
		if err != nil {
			return err
		}
		defer jf.Close()
		sink = append(sink, experiments.NewJSONLSink(jf))
	}
	in := make([]io.Reader, len(parts))
	for i, p := range parts {
		in[i] = p
	}
	if err := experiments.MergeShards(in, sink); err != nil {
		return err
	}
	return csvFile.Close()
}

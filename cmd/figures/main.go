// Command figures regenerates every table and figure of the paper's
// evaluation as CSV files, one per experiment, plus an index. Rows are
// streamed to disk as sweep points complete (flushed row by row, in
// deterministic order), so long paper-scale sweeps can be tailed and
// plotted while they run.
//
//	figures -out results/            # fast small-scale run
//	figures -out results/ -scale paper -only figure5,figure9
//	figures -out results/ -jsonl -refine 8
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"streamcache/internal/experiments"
)

// files maps experiment keys to their CSV file names; keys missing here
// (future experiments) fall back to <key>.csv.
var files = map[string]string{
	"table1":              "table1_workload.csv",
	"figure2":             "figure2_bandwidth_distribution.csv",
	"figure3":             "figure3_bandwidth_variability.csv",
	"figure4":             "figure4_path_time_series.csv",
	"figure5":             "figure5_constant_bandwidth.csv",
	"figure6":             "figure6_zipf_alpha.csv",
	"figure7":             "figure7_nlanr_variability.csv",
	"figure8":             "figure8_measured_variability.csv",
	"figure9":             "figure9_estimator_sweep.csv",
	"figure10":            "figure10_value_constant.csv",
	"figure11":            "figure11_value_variable.csv",
	"figure12":            "figure12_value_estimator_sweep.csv",
	"ablation-eviction":   "ablation_eviction_granularity.csv",
	"ablation-estimators": "ablation_estimators.csv",
	"ext-merging":         "extension_stream_merging.csv",
	"ext-partial-viewing": "extension_partial_viewing.csv",
	"ext-active-probing":  "extension_active_probing.csv",
	"ext-baselines":       "extension_baselines.csv",
	"scenarios":           "scenario_matrix.csv",
	"refined-e":           "refined_e_sweep.csv",
	"refined-sigma":       "refined_sigma_sweep.csv",
	"refined-cache":       "refined_cache_sweep.csv",
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "results", "output directory")
		scale    = flag.String("scale", "small", "experiment scale: small or paper")
		only     = flag.String("only", "", "comma-separated experiment keys (default: all)")
		seed     = flag.Int64("seed", 1, "base random seed")
		parallel = flag.Int("parallel", 0, "worker goroutines per sweep (0 = GOMAXPROCS); tables are identical for any value")
		refine   = flag.Int("refine", -1, "extra adaptive points per refined sweep (-1 = scale default)")
		jsonl    = flag.Bool("jsonl", false, "also stream each experiment as JSON Lines next to its CSV")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures: mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "figures: mem profile:", err)
			}
		}()
	}

	var s experiments.Scale
	switch *scale {
	case "small":
		s = experiments.SmallScale()
	case "paper":
		s = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (want small or paper)", *scale)
	}
	s.Seed = *seed
	s.Parallelism = *parallel
	if *refine >= 0 {
		s.RefineBudget = *refine
	}

	exps := experiments.Experiments()
	known := map[string]bool{}
	keys := make([]string, 0, len(exps))
	for _, e := range exps {
		known[e.Key] = true
		keys = append(keys, e.Key)
	}
	selected := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if k == "" { // tolerate trailing/doubled commas
				continue
			}
			if !known[k] {
				return fmt.Errorf("unknown experiment key %q (known: %s)", k, strings.Join(keys, ", "))
			}
			selected[k] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	var index strings.Builder
	fmt.Fprintf(&index, "# Regenerated %s at scale=%s seed=%d\n", time.Now().Format(time.RFC3339), *scale, *seed)
	for _, e := range exps {
		if len(selected) > 0 && !selected[e.Key] {
			continue
		}
		file := files[e.Key]
		if file == "" {
			file = e.Key + ".csv"
		}
		start := time.Now()
		name, rows, err := streamExperiment(e, s, filepath.Join(*out, file), *jsonl)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Key, err)
		}
		fmt.Printf("%-20s %-45s %5d rows  %v\n", e.Key, file, rows, time.Since(start).Round(time.Millisecond))
		fmt.Fprintf(&index, "%s: %s (%d rows) - %s\n", e.Key, file, rows, name)
	}
	return os.WriteFile(filepath.Join(*out, "INDEX.txt"), []byte(index.String()), 0o644)
}

// nameSink records the table name flowing past it, for the index file.
type nameSink struct {
	experiments.RowSink
	name string
}

func (n *nameSink) Begin(meta experiments.TableMeta) error {
	n.name = meta.Name
	return n.RowSink.Begin(meta)
}

// streamExperiment streams one experiment to csvPath (plus an optional
// sibling .jsonl), returning the table name and row count.
func streamExperiment(e experiments.Experiment, s experiments.Scale, csvPath string, jsonl bool) (string, int, error) {
	csvFile, err := os.Create(csvPath)
	if err != nil {
		return "", 0, err
	}
	defer csvFile.Close()
	csv := experiments.NewCSVSink(csvFile)
	sink := experiments.MultiSink{csv}

	if jsonl {
		jsonlPath := strings.TrimSuffix(csvPath, ".csv") + ".jsonl"
		jf, err := os.Create(jsonlPath)
		if err != nil {
			return "", 0, err
		}
		defer jf.Close()
		sink = append(sink, experiments.NewJSONLSink(jf))
	}

	named := &nameSink{RowSink: sink}
	if err := e.Stream(s, named); err != nil {
		return "", 0, err
	}
	return named.name, csv.Rows(), csvFile.Close()
}

package main

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"streamcache/internal/experiments"
	"streamcache/internal/load"
	"streamcache/internal/proxy"
	"streamcache/internal/sim"
	"streamcache/internal/workload"
)

// driveOpen runs the open-loop mode: build the workload spec, sweep the
// ramp levels, and emit the live-capacity table plus any per-class,
// per-request and schedule artifacts.
func driveOpen(o options) error {
	catalog, err := proxy.BuildCatalog(o.objects, o.meanKB, o.rateKBps, o.catalogSeed)
	if err != nil {
		return err
	}
	spec, err := openSpec(o)
	if err != nil {
		return err
	}
	trace, err := openTrace(o, spec)
	if err != nil {
		return err
	}
	levels, err := parseRamp(o.ramp)
	if err != nil {
		return err
	}

	if o.scheduleOut != "" || o.dryRun {
		if err := emitSchedules(o, spec, catalog, trace, levels); err != nil {
			return err
		}
	}
	if o.dryRun {
		return nil
	}

	if err := waitReachable(o.proxyURL, o.wait); err != nil {
		return err
	}

	summaryW, closeSummary, err := openOut(o.out)
	if err != nil {
		return err
	}
	defer closeSummary()
	summarySink := newSink(o, summaryW, "live_capacity")
	note := fmt.Sprintf("open-loop capacity sweep against %s: %d classes, horizon %gs, time-scale %g, max-inflight %d",
		o.proxyURL, len(spec.Classes), o.duration, o.timeScale, o.maxInflight)
	if err := summarySink.Begin(experiments.LiveCapacityMeta(note)); err != nil {
		return err
	}

	var classSink experiments.RowSink
	var closeClass func() error
	if o.perClass != "" {
		w, c, err := openOut(o.perClass)
		if err != nil {
			return err
		}
		closeClass = c
		defer closeClass()
		classSink = newSink(o, w, "live_capacity_classes")
		if err := classSink.Begin(experiments.LiveClassMeta(note)); err != nil {
			return err
		}
	}

	totalCompleted := 0
	for li, scale := range levels {
		outcomes, report, err := load.Run(load.Options{
			ProxyURL:    o.proxyURL,
			Catalog:     catalog,
			Spec:        spec,
			Trace:       trace,
			TimeScale:   o.timeScale,
			Seed:        sim.SplitSeed(o.traceSeed, int64(li)),
			MaxInflight: o.maxInflight,
			Horizon:     o.duration,
			MaxRequests: o.requests,
			RateScale:   scale,
			Verify:      o.verify,
		})
		if err != nil {
			return fmt.Errorf("level %d (x%g): %w", li, scale, err)
		}
		totalCompleted += report.Total.Completed
		if err := summarySink.Row(report.SummaryRow(li)); err != nil {
			return err
		}
		if classSink != nil {
			for _, row := range report.ClassRows(li) {
				if err := classSink.Row(row); err != nil {
					return err
				}
			}
		}
		if o.perRequest != "" {
			if err := emitOpenOutcomes(o, li, outcomes); err != nil {
				return err
			}
		}
	}
	if err := summarySink.End(); err != nil {
		return err
	}
	if err := closeSummary(); err != nil {
		return err
	}
	if classSink != nil {
		if err := classSink.End(); err != nil {
			return err
		}
		if err := closeClass(); err != nil {
			return err
		}
	}
	if totalCompleted == 0 {
		return fmt.Errorf("no requests completed across %d ramp levels", len(levels))
	}
	return nil
}

// openSpec resolves the workload spec: a spec file wins, else the
// single flag-driven class.
func openSpec(o options) (*load.Spec, error) {
	if o.spec != "" {
		return load.ParseSpecFile(o.spec)
	}
	spec := load.SingleClass(o.rate, o.sloMS)
	c := &spec.Classes[0]
	c.ZipfAlpha = o.zipfAlpha
	switch o.arrival {
	case "poisson":
	case "trace":
		c.Arrival = load.ArrivalSpec{Process: "trace"}
	case "onoff":
		// Ten sources with a 1s-on/4s-off duty cycle whose aggregate mean
		// matches -rate: peak = rate / (sources * 0.2).
		c.Arrival = load.ArrivalSpec{Process: "onoff", Sources: 10, PeakRate: o.rate / 2}
	default:
		return nil, fmt.Errorf("arrival=%q, want poisson, trace or onoff", o.arrival)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// openTrace generates the request trace for trace-replay classes: a
// Table 1 style trace over the proxyd catalog's objects at -rate
// requests per second, long enough to cover the horizon.
func openTrace(o options, spec *load.Spec) ([]workload.Request, error) {
	if !spec.UsesTrace() {
		return nil, nil
	}
	n := int(math.Ceil(o.rate*o.duration)) * 2
	if n < o.requests {
		n = o.requests
	}
	w, err := workload.Generate(workload.Config{
		NumObjects:  o.objects,
		NumRequests: n,
		ZipfAlpha:   o.zipfAlpha,
		RequestRate: o.rate,
		Seed:        o.traceSeed,
	})
	if err != nil {
		return nil, err
	}
	return w.Requests, nil
}

// parseRamp parses the -ramp multiplier list; empty means one level at 1.
func parseRamp(s string) ([]float64, error) {
	if s == "" {
		return []float64{1}, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 || math.IsInf(v, 0) {
			return nil, fmt.Errorf("ramp level %q, want finite > 0", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// emitSchedules writes the deterministic arrival schedule of every ramp
// level — the byte-identical-across-runs artifact.
func emitSchedules(o options, spec *load.Spec, catalog *proxy.Catalog, trace []workload.Request, levels []float64) error {
	path := o.scheduleOut
	if path == "" {
		path = "-"
	}
	w, closeOut, err := openOut(path)
	if err != nil {
		return err
	}
	defer closeOut()
	sink := newSink(o, w, "open_schedule")
	for li, scale := range levels {
		items, err := load.BuildSchedule(spec, catalog, trace, sim.SplitSeed(o.traceSeed, int64(li)), o.duration, o.requests, scale)
		if err != nil {
			return fmt.Errorf("level %d (x%g): %w", li, scale, err)
		}
		if err := load.WriteSchedule(sink, fmt.Sprintf("open-schedule-L%d", li), items); err != nil {
			return err
		}
	}
	return closeOut()
}

// emitOpenOutcomes appends one level's per-arrival outcome table to the
// -per-request destination (one table per level, shared file).
func emitOpenOutcomes(o options, level int, outcomes []load.Outcome) error {
	w, closeOut, err := openOutAppend(o.perRequest, level > 0)
	if err != nil {
		return err
	}
	defer closeOut()
	sink := newSink(o, w, "open_requests")
	return load.WriteOutcomes(sink, fmt.Sprintf("open-requests-L%d", level), outcomes)
}

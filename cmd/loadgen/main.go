// Command loadgen is the load harness for proxyd. It runs in two modes.
//
// Closed loop (-mode closed, the default): N concurrent clients, each
// issuing its next request as soon as the previous download completes —
// offered load is capped at the client count, so a saturated proxy
// silently throttles the workload. Reports the paper's live metrics
// (startup delay distribution, bandwidth-weighted hit ratio, origin
// bytes) as a RowSink-compatible table (CSV or JSONL).
//
// Open loop (-mode open): arrivals fire from a deterministic schedule
// regardless of how the proxy is keeping up; arrivals beyond the
// in-flight cap are shed, not queued. This is how to measure capacity:
// sweep -ramp levels of offered load and watch where the SLO-violation
// fraction knees. Workload classes come from a JSON spec (-spec) or the
// single-class -rate/-slo-ms flags, and -time-scale compresses workload
// time onto the wall clock.
//
//	proxyd -proxy-addr 127.0.0.1:8081 -objects 50 &
//	loadgen -proxy http://127.0.0.1:8081 -clients 8 -requests 500 -objects 50
//	loadgen -proxy http://127.0.0.1:8081 -mode open -rate 20 -duration 30 \
//	    -ramp 1,2,4,8 -slo-ms 1000 -objects 50
//
// Catalog flags (-objects, -mean-kb, -rate-kbps, -catalog-seed) must
// match the running proxyd so object sizes and playback rates agree.
//
// Against a cluster, -proxy takes a comma-separated list of edge base
// URLs in ring order; closed-loop request i goes to edge i%N — the
// same assignment the simulator's hierarchy runs use — and the summary
// gains the per-tier byte-fraction columns of the hierarchy experiment
// (edge/peer/parent/origin), summed across every listed node's /stats.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streamcache/internal/collect"
	"streamcache/internal/experiments"
	"streamcache/internal/proxy"
	"streamcache/internal/units"
	"streamcache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type options struct {
	proxyURL  string
	proxyURLs []string // proxyURL split on commas: the edge nodes in ring order

	mode        string
	clients     int
	requests    int
	objects     int
	meanKB      int64
	rateKBps    float64
	catalogSeed int64
	zipfAlpha   float64
	traceSeed   int64
	format      string
	out         string
	perRequest  string
	perClass    string
	wait        time.Duration
	minHitRatio float64
	verify      bool

	// Open-loop mode.
	spec        string
	rate        float64
	arrival     string
	timeScale   float64
	duration    float64
	maxInflight int
	ramp        string
	sloMS       float64
	scheduleOut string
	dryRun      bool

	// Streaming results collection (-collect).
	collect   string
	collector *collect.Client
}

func run() error {
	var o options
	flag.StringVar(&o.proxyURL, "proxy", "http://127.0.0.1:8081", "proxy base URL, or a comma-separated edge list in ring order (request i goes to edge i%N)")
	flag.IntVar(&o.clients, "clients", 4, "concurrent closed-loop clients")
	flag.IntVar(&o.requests, "requests", 200, "closed: total requests to issue; open: cap on scheduled arrivals per level (only when set explicitly)")
	flag.IntVar(&o.objects, "objects", 50, "catalog size (must match proxyd)")
	flag.Int64Var(&o.meanKB, "mean-kb", 2048, "mean object size, KB (must match proxyd)")
	flag.Float64Var(&o.rateKBps, "rate-kbps", 512, "object playback rate, KB/s (must match proxyd)")
	flag.Int64Var(&o.catalogSeed, "catalog-seed", 1, "catalog seed (must match proxyd -seed)")
	flag.Float64Var(&o.zipfAlpha, "zipf", 0.73, "request popularity skew")
	flag.Int64Var(&o.traceSeed, "trace-seed", 1, "request trace seed")
	flag.StringVar(&o.format, "format", "csv", "output format: csv or jsonl")
	flag.StringVar(&o.out, "out", "-", "summary table destination ('-' = stdout)")
	flag.StringVar(&o.perRequest, "per-request", "", "optional per-request table destination")
	flag.DurationVar(&o.wait, "wait", 10*time.Second, "wait up to this long for the proxy to become reachable")
	flag.Float64Var(&o.minHitRatio, "min-hit-ratio", -1, "exit nonzero unless the bandwidth-weighted hit ratio reaches this (-1 = no check)")
	flag.BoolVar(&o.verify, "verify", false, "verify every complete download against the expected content digest")
	flag.StringVar(&o.mode, "mode", "closed", "load mode: closed (fixed clients) or open (scheduled arrivals)")
	flag.StringVar(&o.spec, "spec", "", "open: JSON workload spec file (overrides -rate/-arrival/-slo-ms)")
	flag.Float64Var(&o.rate, "rate", 10, "open: offered arrival rate, requests per workload second")
	flag.StringVar(&o.arrival, "arrival", "poisson", "open: arrival process for the flag-driven class: poisson, trace or onoff")
	flag.Float64Var(&o.timeScale, "time-scale", 1, "open: workload seconds replayed per wall second")
	flag.Float64Var(&o.duration, "duration", 30, "open: workload horizon, workload seconds")
	flag.IntVar(&o.maxInflight, "max-inflight", 256, "open: concurrent downloads before arrivals are shed")
	flag.StringVar(&o.ramp, "ramp", "", "open: comma-separated offered-load multipliers, one level each (e.g. 1,2,4,8)")
	flag.Float64Var(&o.sloMS, "slo-ms", 1000, "open: startup-delay SLO budget, ms, for the flag-driven class")
	flag.StringVar(&o.scheduleOut, "schedule-out", "", "open: write the generated arrival schedule (JSONL/CSV per -format)")
	flag.StringVar(&o.perClass, "per-class", "", "open: optional per-class breakdown table destination")
	flag.BoolVar(&o.dryRun, "dry-run", false, "open: build and emit the schedule without issuing requests")
	flag.StringVar(&o.collect, "collect", "", "also push every emitted table to this collector URL (see cmd/collectd)")
	flag.Parse()
	for _, u := range strings.Split(o.proxyURL, ",") {
		if u = strings.TrimSpace(u); u != "" {
			o.proxyURLs = append(o.proxyURLs, u)
		}
	}
	if len(o.proxyURLs) == 0 {
		return errors.New("-proxy lists no URLs")
	}
	if o.collect != "" {
		// Live tables stream to the collector beside their local files; a
		// dead collector degrades to local files only, never blocks the
		// run. Live runs have no scale fingerprint — the empty string is
		// the collector's wildcard.
		o.collector = collect.NewClient(o.collect, experiments.Shard{}, "")
		if o.collector.Down() {
			fmt.Fprintf(os.Stderr, "loadgen: collector %s unreachable; writing local tables only\n", o.collect)
			o.collector = nil
		} else {
			defer func() {
				if err := o.collector.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "loadgen:", err)
				}
			}()
		}
	}
	switch o.mode {
	case "open":
		if len(o.proxyURLs) > 1 {
			return errors.New("open mode drives a single proxy; pass one -proxy URL")
		}
		// The closed-loop -requests default must not silently truncate an
		// open-loop schedule; the cap applies only when the flag was given.
		requestsSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "requests" {
				requestsSet = true
			}
		})
		if !requestsSet {
			o.requests = 0
		}
		return driveOpen(o)
	case "closed":
	default:
		return fmt.Errorf("mode=%q, want closed or open", o.mode)
	}
	if o.clients <= 0 || o.requests <= 0 {
		return fmt.Errorf("clients=%d requests=%d, want > 0", o.clients, o.requests)
	}
	return drive(o)
}

// result records one completed client fetch.
type result struct {
	objectID int
	bytes    int64
	hitBytes int64
	delay    time.Duration
	elapsed  time.Duration
	err      error
}

func drive(o options) error {
	catalog, err := proxy.BuildCatalog(o.objects, o.meanKB, o.rateKBps, o.catalogSeed)
	if err != nil {
		return err
	}
	trace, err := workload.Generate(workload.Config{
		NumObjects:  o.objects,
		NumRequests: o.requests,
		ZipfAlpha:   o.zipfAlpha,
		Seed:        o.traceSeed,
	})
	if err != nil {
		return err
	}
	for _, u := range o.proxyURLs {
		if err := waitReachable(u, o.wait); err != nil {
			return err
		}
	}
	before, err := fetchStatsAll(o.proxyURLs)
	if err != nil {
		return fmt.Errorf("stats before run: %w", err)
	}

	// Closed loop: each client pulls the next trace index the moment its
	// previous download finishes. Request i lands on edge i%N, matching
	// the simulator's hierarchy assignment.
	results := make([]result, o.requests)
	var next atomic.Int64
	var wg sync.WaitGroup
	wallStart := time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.requests {
					return
				}
				url := o.proxyURLs[i%len(o.proxyURLs)]
				results[i] = fetchOne(o, catalog, url, trace.Requests[i].ObjectID)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(wallStart)

	after, err := fetchStatsAll(o.proxyURLs)
	if err != nil {
		return fmt.Errorf("stats after run: %w", err)
	}
	sum := summarize(results, before, after, wall)

	if err := emitSummary(o, sum); err != nil {
		return err
	}
	if o.perRequest != "" {
		if err := emitPerRequest(o, results); err != nil {
			return err
		}
	}
	if sum.errors == o.requests {
		return errors.New("every request failed")
	}
	if o.minHitRatio >= 0 && sum.bwHitRatio < o.minHitRatio {
		return fmt.Errorf("bandwidth-weighted hit ratio %.4f below required %.4f", sum.bwHitRatio, o.minHitRatio)
	}
	return nil
}

func fetchOne(o options, catalog *proxy.Catalog, proxyURL string, id int) result {
	meta, ok := catalog.Get(id)
	if !ok {
		return result{objectID: id, err: fmt.Errorf("object %d not in catalog", id)}
	}
	res, err := proxy.Fetch(fmt.Sprintf("%s/objects/%d", proxyURL, id))
	if err != nil {
		return result{objectID: id, err: err}
	}
	r := result{
		objectID: id,
		bytes:    res.Bytes,
		hitBytes: res.HitBytes(),
		delay:    res.StartupDelay(meta.Rate),
		elapsed:  res.Elapsed,
	}
	if r.hitBytes > meta.Size {
		r.hitBytes = meta.Size
	}
	if res.Bytes != meta.Size {
		r.err = fmt.Errorf("object %d: %d bytes, want %d", id, res.Bytes, meta.Size)
	} else if o.verify {
		if want := proxy.ContentSHA256(id, meta.Size); res.SHA256 != want {
			r.err = fmt.Errorf("object %d: content digest mismatch", id)
		}
	}
	return r
}

// summary aggregates a run into the live metrics row.
type summary struct {
	errors         int
	prefixHitRatio float64
	bwHitRatio     float64
	originBytes    int64
	coalesced      int64
	delayMean      time.Duration
	delayP50       time.Duration
	delayP90       time.Duration
	delayP99       time.Duration
	meanKBps       float64
	wall           time.Duration

	// Per-tier first-hop byte fractions across all queried nodes, the
	// cmd-side counterpart of experiments.TierColumns: each delivered
	// byte is attributed to where the client's edge got it — its own
	// cache, a peer's cache, the parent tier, or the origin path.
	// Without peering the four fractions are exact; with peering a byte
	// served out of a peer's cache also counts as that peer's own cache
	// hit, so the edge share reads slightly high relative to the
	// simulator's exact decomposition.
	edgeFrac   float64
	peerFrac   float64
	parentFrac float64
	originFrac float64
}

func summarize(results []result, before, after []proxy.Stats, wall time.Duration) summary {
	var (
		s          = summary{wall: wall}
		delays     []time.Duration
		hits       int
		hitBytes   float64
		totalBytes float64
		bytes      int64
		delaySum   time.Duration
		elapsedSum time.Duration
	)
	for _, r := range results {
		if r.err != nil {
			s.errors++
			continue
		}
		if r.hitBytes > 0 {
			hits++
		}
		hitBytes += float64(r.hitBytes)
		totalBytes += float64(r.bytes)
		bytes += r.bytes
		delays = append(delays, r.delay)
		delaySum += r.delay
		elapsedSum += r.elapsed
	}
	ok := len(results) - s.errors
	if ok > 0 {
		s.prefixHitRatio = float64(hits) / float64(ok)
		s.delayMean = delaySum / time.Duration(ok)
	}
	if totalBytes > 0 {
		s.bwHitRatio = hitBytes / totalBytes
	}
	if elapsedSum > 0 {
		s.meanKBps = units.ToKBps(float64(bytes) / elapsedSum.Seconds())
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	s.delayP50 = percentile(delays, 0.50)
	s.delayP90 = percentile(delays, 0.90)
	s.delayP99 = percentile(delays, 0.99)

	tiers := map[string]int64{}
	var edgeB int64
	for i := range after {
		edgeB += after[i].BytesFromHit - before[i].BytesFromHit
		s.coalesced += after[i].CoalescedRequests - before[i].CoalescedRequests
		if len(after[i].TierBytes) == 0 {
			// A node predating tier accounting: all its upstream bytes
			// traveled the origin path.
			tiers["origin"] += after[i].BytesFetched - before[i].BytesFetched
			continue
		}
		for tier, b := range after[i].TierBytes {
			tiers[tier] += b - before[i].TierBytes[tier]
		}
	}
	s.originBytes = tiers["origin"]
	if tot := edgeB + tiers["peer"] + tiers["parent"] + tiers["origin"]; tot > 0 {
		t := float64(tot)
		s.edgeFrac = float64(edgeB) / t
		s.peerFrac = float64(tiers["peer"]) / t
		s.parentFrac = float64(tiers["parent"]) / t
		s.originFrac = float64(tiers["origin"]) / t
	}
	return s
}

// percentile returns the p-th percentile of sorted (nearest-rank: the
// smallest value with at least p*n values at or below it).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 2, 64)
}

// newSink renders to w in the -format encoding; with -collect, the
// table additionally streams to the collector under the stem (the
// collector writes <stem>.csv when the run reports done).
func newSink(o options, w io.Writer, stem string) experiments.RowSink {
	var sink experiments.RowSink
	if o.format == "jsonl" {
		sink = experiments.NewJSONLSink(w)
	} else {
		sink = experiments.NewCSVSink(w)
	}
	if o.collector != nil {
		return experiments.MultiSink{sink, o.collector.Sink(stem)}
	}
	return sink
}

func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// openOutAppend is openOut with optional append semantics, so per-level
// tables of a ramp sweep can share one destination file.
func openOutAppend(path string, appendTo bool) (io.Writer, func() error, error) {
	if path == "-" || !appendTo {
		return openOut(path)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func emitSummary(o options, s summary) error {
	w, closeOut, err := openOut(o.out)
	if err != nil {
		return err
	}
	defer closeOut()
	sink := newSink(o, w, "loadgen_live")
	meta := experiments.TableMeta{
		Name: "loadgen-live",
		Note: fmt.Sprintf("closed-loop live metrics: %d clients x %d requests against %d node(s) %s (objects=%d zipf=%.2f)",
			o.clients, o.requests, len(o.proxyURLs), o.proxyURL, o.objects, o.zipfAlpha),
		Header: append([]string{
			"clients", "requests", "errors",
			"prefix_hit_ratio", "bw_hit_ratio", "origin_bytes", "coalesced",
			"delay_mean_ms", "delay_p50_ms", "delay_p90_ms", "delay_p99_ms",
			"mean_throughput_kbps", "wall_seconds",
		}, experiments.TierColumns...),
	}
	if err := sink.Begin(meta); err != nil {
		return err
	}
	row := []string{
		strconv.Itoa(o.clients),
		strconv.Itoa(o.requests),
		strconv.Itoa(s.errors),
		strconv.FormatFloat(s.prefixHitRatio, 'f', 4, 64),
		strconv.FormatFloat(s.bwHitRatio, 'f', 4, 64),
		strconv.FormatInt(s.originBytes, 10),
		strconv.FormatInt(s.coalesced, 10),
		ms(s.delayMean), ms(s.delayP50), ms(s.delayP90), ms(s.delayP99),
		strconv.FormatFloat(s.meanKBps, 'f', 1, 64),
		strconv.FormatFloat(s.wall.Seconds(), 'f', 3, 64),
		strconv.FormatFloat(s.edgeFrac, 'f', 4, 64),
		strconv.FormatFloat(s.peerFrac, 'f', 4, 64),
		strconv.FormatFloat(s.parentFrac, 'f', 4, 64),
		strconv.FormatFloat(s.originFrac, 'f', 4, 64),
	}
	if err := sink.Row(row); err != nil {
		return err
	}
	if err := sink.End(); err != nil {
		return err
	}
	return closeOut()
}

func emitPerRequest(o options, results []result) error {
	w, closeOut, err := openOut(o.perRequest)
	if err != nil {
		return err
	}
	defer closeOut()
	sink := newSink(o, w, "loadgen_requests")
	meta := experiments.TableMeta{
		Name:   "loadgen-requests",
		Note:   "one row per completed request, in trace order",
		Header: []string{"index", "object", "bytes", "hit_bytes", "delay_ms", "elapsed_ms", "error"},
	}
	if err := sink.Begin(meta); err != nil {
		return err
	}
	for i, r := range results {
		errStr := ""
		if r.err != nil {
			errStr = r.err.Error()
		}
		row := []string{
			strconv.Itoa(i),
			strconv.Itoa(r.objectID),
			strconv.FormatInt(r.bytes, 10),
			strconv.FormatInt(r.hitBytes, 10),
			ms(r.delay), ms(r.elapsed),
			errStr,
		}
		if err := sink.Row(row); err != nil {
			return err
		}
	}
	if err := sink.End(); err != nil {
		return err
	}
	return closeOut()
}

// waitReachable polls the proxy's /stats endpoint until it answers.
func waitReachable(proxyURL string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		if _, err := fetchStats(proxyURL); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("proxy %s not reachable after %v: %w", proxyURL, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetchStatsAll snapshots /stats on every node, in list order.
func fetchStatsAll(urls []string) ([]proxy.Stats, error) {
	all := make([]proxy.Stats, len(urls))
	for i, u := range urls {
		s, err := fetchStats(u)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", u, err)
		}
		all[i] = s
	}
	return all, nil
}

// statsClient bounds every /stats probe so a wedged proxy cannot hang
// waitReachable past its deadline.
var statsClient = &http.Client{Timeout: 10 * time.Second}

// fetchStats reads and decodes the proxy's /stats snapshot.
func fetchStats(proxyURL string) (proxy.Stats, error) {
	resp, err := statsClient.Get(proxyURL + "/stats")
	if err != nil {
		return proxy.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return proxy.Stats{}, fmt.Errorf("stats: %s", resp.Status)
	}
	var s proxy.Stats
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		return proxy.Stats{}, err
	}
	return s, nil
}

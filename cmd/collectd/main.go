// Command collectd is the streaming results collector for distributed
// sweeps and live load runs: shards started with `figures -collect` (or
// `loadgen -collect`) push completed rows and refinement metrics here
// as they finish, and once every shard reports done the collector
// writes the canonical CSV files — byte-identical to a single-process
// run, with no offline merge step.
//
//	collectd -addr 127.0.0.1:9190 -out results/ -shards 2 -exit-when-done &
//	figures -out results/ -shard 0/2 -journal results/j0.jsonl -collect http://127.0.0.1:9190 &
//	figures -out results/ -shard 1/2 -journal results/j1.jsonl -collect http://127.0.0.1:9190 &
//	wait   # collectd exits after writing results/*.csv
//
// The collector also brokers the metric exchange that lets each shard
// simulate only its owned points of a refinement round (GET /v1/metric
// long-polls); a sweep runs correctly without it, just N times the
// simulation work. Progress is visible at GET /v1/status.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"streamcache/internal/collect"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "collectd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:9190", "listen address")
		out          = flag.String("out", "results", "directory for the canonical CSV files")
		shards       = flag.Int("shards", 0, "expected shard count (0 = adopt the first hello's count)")
		exitWhenDone = flag.Bool("exit-when-done", false, "exit after every shard reported done and the tables were written")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	srv := collect.NewServer(*shards)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("collectd: listening on %s, writing to %s\n", ln.Addr(), *out)
	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	for {
		select {
		case err := <-errc:
			return err
		case <-srv.Done():
			if err := srv.WriteTables(*out); err != nil {
				return err
			}
			fmt.Printf("collectd: all shards done, canonical tables written to %s\n", *out)
			if *exitWhenDone {
				return hs.Close()
			}
			// Keep serving /v1/status; a re-run needs a fresh collector.
			<-errc
			return nil
		}
	}
}

// Command mediavet runs the repo's custom static analyzers
// (determinism, hotpath, shardlock, rowsink — see internal/analysis).
//
// Standalone:
//
//	go run ./cmd/mediavet [-C dir] [-facts-dir dir] [-v] [packages...]
//
// As a vettool (go vet drives it once per package):
//
//	go build -o bin/mediavet ./cmd/mediavet
//	go vet -vettool=$PWD/bin/mediavet ./...
//
// Exit status: 0 clean, 1 operational error, 2 findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"streamcache/internal/analysis"
)

const version = "mediavet version v1.0.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// go vet interrogates the tool before use: `-V=full` for the
	// build-cache tool ID and `-flags` for the flags it may forward.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Println(version)
			return 0
		case "-flags", "--flags":
			fmt.Println("[]") // no forwardable flags
			return 0
		}
	}
	// A single *.cfg argument means cmd/go is driving us per-package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return analysis.Unitchecker(args[0], analysis.All(), os.Stderr)
	}

	fs := flag.NewFlagSet("mediavet", flag.ContinueOnError)
	dir := fs.String("C", "", "change to `dir` before analyzing (module root)")
	factsDir := fs.String("facts-dir", ".cache/mediavet", "analysis facts/findings cache directory; empty disables caching")
	verbose := fs.Bool("v", false, "log per-package progress to stderr")
	summary := fs.Bool("summary", true, "print the suppression/cache summary line")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	r := &analysis.Runner{
		Dir:       *dir,
		Patterns:  fs.Args(),
		Analyzers: analysis.All(),
		FactsDir:  *factsDir,
	}
	if *verbose {
		r.Log = os.Stderr
	}
	res, err := r.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mediavet: %v\n", err)
		return 1
	}
	for _, f := range res.Findings {
		fmt.Printf("%s\n", f)
	}
	if *summary {
		fmt.Fprintf(os.Stderr, "mediavet: %d packages (%d cached), %d findings, %d suppressed by //mediavet:ignore\n",
			res.Packages, res.CacheHits, len(res.Findings), res.Suppressed)
	}
	if len(res.Findings) > 0 {
		return 2
	}
	return 0
}

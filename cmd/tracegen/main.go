// Command tracegen synthesizes a Squid-format proxy access log whose
// missed-request throughput follows the reconstructed NLANR bandwidth
// model (see DESIGN.md, Substitutions). Feed the output to traceanalyze
// to reproduce the Figure 2-3 analysis pipeline.
//
//	tracegen -entries 100000 -servers 1000 -variability nlanr -o access.log
package main

import (
	"flag"
	"fmt"
	"os"

	"streamcache/internal/bandwidth"
	"streamcache/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		entries     = flag.Int("entries", 100000, "log lines to generate")
		servers     = flag.Int("servers", 1000, "distinct origin servers (paths)")
		variability = flag.String("variability", "nlanr", "per-request bandwidth variability: none, nlanr, measured")
		hitFrac     = flag.Float64("hit-fraction", 0.2, "fraction of TCP_HIT lines")
		smallFrac   = flag.Float64("small-fraction", 0.3, "fraction of sub-200KB objects")
		seed        = flag.Int64("seed", 1, "random seed")
		out         = flag.String("o", "-", "output file (- for stdout)")
	)
	flag.Parse()

	var variation bandwidth.Variability
	switch *variability {
	case "none":
		variation = bandwidth.NoVariation{}
	case "nlanr":
		variation = bandwidth.NLANRVariability()
	case "measured":
		variation = bandwidth.MeasuredVariability()
	default:
		return fmt.Errorf("unknown variability %q", *variability)
	}

	log, err := trace.Generate(trace.GenConfig{
		Entries:       *entries,
		Servers:       *servers,
		Base:          bandwidth.NLANR(),
		Variation:     variation,
		HitFraction:   *hitFrac,
		SmallFraction: *smallFrac,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.Write(w, log)
}

// Command mediasim runs one partial-caching simulation experiment and
// prints the Section 3.3 metrics.
//
// Example: reproduce one Figure 5 point at full paper scale:
//
//	mediasim -policy PB -cache-gb 40 -objects 5000 -requests 100000 -runs 10
//
// Or a Figure 9 point (estimator e = 0.5 under NLANR variability):
//
//	mediasim -policy HYBRID -e 0.5 -variability nlanr -cache-gb 40
package main

import (
	"flag"
	"fmt"
	"os"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/sim"
	"streamcache/internal/units"
	"streamcache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mediasim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		policyName  = flag.String("policy", "PB", "policy: IF, PB, IB, PB-V, IB-V, LRU, LFU, HYBRID, HYBRID-V")
		e           = flag.Float64("e", 0.5, "bandwidth under-estimation factor for HYBRID policies")
		cacheGB     = flag.Float64("cache-gb", 40, "cache capacity in GB")
		objects     = flag.Int("objects", 1000, "unique streaming objects")
		requests    = flag.Int("requests", 20000, "total requests")
		alpha       = flag.Float64("alpha", 0.73, "Zipf popularity skew")
		variability = flag.String("variability", "none", "bandwidth variability: none, nlanr, measured, inria, fareast")
		estimator   = flag.String("estimator", "oracle", "bandwidth estimator: oracle, ewma, underestimate")
		ewmaAlpha   = flag.Float64("ewma-alpha", 0.3, "EWMA smoothing factor")
		runs        = flag.Int("runs", 3, "independently seeded runs to average")
		seed        = flag.Int64("seed", 1, "base random seed")
		wholeEvict  = flag.Bool("whole-eviction", false, "evict whole objects instead of prefix bytes")
		parallel    = flag.Int("parallel", 0, "worker goroutines for runs (0 = GOMAXPROCS); metrics are identical for any value")
	)
	flag.Parse()

	policy, err := core.PolicyByName(*policyName, *e)
	if err != nil {
		return err
	}
	variation, err := variabilityByName(*variability)
	if err != nil {
		return err
	}
	estimators, err := estimatorByName(*estimator, *ewmaAlpha, *e)
	if err != nil {
		return err
	}
	var opts []core.Option
	if *wholeEvict {
		opts = append(opts, core.WithWholeObjectEviction(true))
	}
	cfg := sim.Config{
		Workload: workload.Config{
			NumObjects:  *objects,
			NumRequests: *requests,
			ZipfAlpha:   *alpha,
		},
		CacheBytes:   units.GBytes(*cacheGB),
		Policy:       policy,
		CacheOptions: opts,
		Variation:    variation,
		Estimators:   estimators,
		Runs:         *runs,
		Seed:         *seed,
		Parallelism:  *parallel,
	}
	m, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("policy=%s cache=%.1fGB objects=%d requests=%d alpha=%.2f variability=%s runs=%d\n",
		policy.Name(), *cacheGB, *objects, *requests, *alpha, *variability, *runs)
	fmt.Printf("traffic_reduction_ratio %8.4f\n", m.TrafficReductionRatio)
	fmt.Printf("avg_service_delay_s     %8.1f\n", m.AvgServiceDelay)
	fmt.Printf("avg_stream_quality      %8.4f\n", m.AvgStreamQuality)
	fmt.Printf("total_added_value       %8.1f\n", m.TotalAddedValue)
	fmt.Printf("hit_ratio               %8.4f\n", m.HitRatio)
	fmt.Printf("measured_requests       %8d\n", m.Requests)
	return nil
}

func variabilityByName(name string) (bandwidth.Variability, error) {
	switch name {
	case "none", "constant":
		return bandwidth.NoVariation{}, nil
	case "nlanr":
		return bandwidth.NLANRVariability(), nil
	case "measured":
		return bandwidth.MeasuredVariability(), nil
	case "inria":
		return bandwidth.INRIAVariability(), nil
	case "fareast":
		return bandwidth.FarEastVariability(), nil
	default:
		return nil, fmt.Errorf("unknown variability %q", name)
	}
}

func estimatorByName(name string, ewmaAlpha, e float64) (sim.EstimatorFactory, error) {
	switch name {
	case "oracle":
		return sim.OracleEstimator, nil
	case "ewma":
		if ewmaAlpha <= 0 || ewmaAlpha > 1 {
			return nil, fmt.Errorf("ewma-alpha %v outside (0,1]", ewmaAlpha)
		}
		return sim.EWMAEstimator(ewmaAlpha), nil
	case "underestimate":
		return sim.UnderestimatingOracle(e), nil
	default:
		return nil, fmt.Errorf("unknown estimator %q", name)
	}
}

// Command mediasim runs one partial-caching simulation experiment and
// prints the Section 3.3 metrics, or streams an adaptively refined
// single-axis sweep.
//
// Example: reproduce one Figure 5 point at full paper scale:
//
//	mediasim -policy PB -cache-gb 40 -objects 5000 -requests 100000 -runs 10
//
// Or a Figure 9 point (estimator e = 0.5 under NLANR variability):
//
//	mediasim -policy HYBRID -e 0.5 -variability nlanr -cache-gb 40
//
// Sweep mode streams rows (CSV or JSONL) to -out as each point
// completes, refining the axis where the metric gradient is steepest:
//
//	mediasim -sweep e -sweep-points 0,0.25,0.5,0.75,1 -refine 6 -format jsonl -out e.jsonl
//
// Sweeps shard across processes and resume after interruption (see
// OPERATIONS.md); shard outputs must be JSONL so experiments.MergeShards
// (or figures -merge) can reassemble them by global row index:
//
//	mediasim -sweep e -shard 0/2 -format jsonl -out e.0.jsonl -journal e.0.journal
//	mediasim -sweep e -shard 0/2 -format jsonl -out e.0.jsonl -journal e.0.journal -resume
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/experiments"
	"streamcache/internal/sim"
	"streamcache/internal/units"
	"streamcache/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mediasim:", err)
		os.Exit(1)
	}
}

// profileTo starts CPU profiling and arranges a heap snapshot, returning
// a stop function to defer. Empty paths disable the corresponding
// profile.
func profileTo(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}

func run() error {
	var (
		policyName  = flag.String("policy", "PB", "policy: IF, PB, IB, PB-V, IB-V, LRU, LFU, HYBRID, HYBRID-V")
		e           = flag.Float64("e", 0.5, "bandwidth under-estimation factor for HYBRID policies")
		cacheGB     = flag.Float64("cache-gb", 40, "cache capacity in GB")
		objects     = flag.Int("objects", 1000, "unique streaming objects")
		requests    = flag.Int("requests", 20000, "total requests")
		alpha       = flag.Float64("alpha", 0.73, "Zipf popularity skew")
		variability = flag.String("variability", "none", "bandwidth variability: none, nlanr, measured, inria, fareast")
		estimator   = flag.String("estimator", "oracle", "bandwidth estimator: oracle, ewma, underestimate")
		ewmaAlpha   = flag.Float64("ewma-alpha", 0.3, "EWMA smoothing factor")
		runs        = flag.Int("runs", 3, "independently seeded runs to average")
		seed        = flag.Int64("seed", 1, "base random seed")
		wholeEvict  = flag.Bool("whole-eviction", false, "evict whole objects instead of prefix bytes")
		parallel    = flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS); results are identical for any value")
		sweepAxis   = flag.String("sweep", "", "stream an adaptive sweep over an axis: e, sigma, or cache")
		sweepPoints = flag.String("sweep-points", "", "comma-separated coarse grid for -sweep (default: scale default)")
		refine      = flag.Int("refine", -1, "extra adaptive sweep points (-1 = scale default)")
		format      = flag.String("format", "csv", "sweep output format: csv or jsonl")
		outPath     = flag.String("out", "", "sweep output file (default stdout)")
		shard       = flag.String("shard", "", "emit only this shard of the sweep, as index/count (e.g. 0/2); requires -format jsonl")
		journalPath = flag.String("journal", "", "checkpoint completed sweep rows to this JSONL journal")
		resume      = flag.Bool("resume", false, "skip sweep rows already recorded in -journal")
		cpuprofile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	stopProfiles, err := profileTo(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	if *sweepAxis != "" {
		// Refined sweeps fix the policy, network model and cache size per
		// axis (see internal/experiments/refine.go); rejecting explicitly
		// set single-simulation flags beats silently ignoring them.
		var conflicting []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "policy", "e", "cache-gb", "alpha", "variability", "estimator", "ewma-alpha", "whole-eviction":
				conflicting = append(conflicting, "-"+f.Name)
			}
		})
		if len(conflicting) > 0 {
			return fmt.Errorf("sweep mode fixes the policy/network/cache per axis; drop %s",
				strings.Join(conflicting, ", "))
		}
		return runSweep(sweepConfig{
			axis: *sweepAxis, points: *sweepPoints,
			objects: *objects, requests: *requests, runs: *runs,
			refine: *refine, parallel: *parallel, seed: *seed,
			format: *format, outPath: *outPath,
			shard: *shard, journal: *journalPath, resume: *resume,
		})
	}
	if *shard != "" || *journalPath != "" || *resume {
		return fmt.Errorf("-shard/-journal/-resume apply to sweep mode; add -sweep")
	}

	policy, err := core.PolicyByName(*policyName, *e)
	if err != nil {
		return err
	}
	variation, err := variabilityByName(*variability)
	if err != nil {
		return err
	}
	estimators, err := estimatorByName(*estimator, *ewmaAlpha, *e)
	if err != nil {
		return err
	}
	var opts []core.Option
	if *wholeEvict {
		opts = append(opts, core.WithWholeObjectEviction(true))
	}
	cfg := sim.Config{
		Workload: workload.Config{
			NumObjects:  *objects,
			NumRequests: *requests,
			ZipfAlpha:   *alpha,
		},
		CacheBytes:   units.GBytes(*cacheGB),
		Policy:       policy,
		CacheOptions: opts,
		Variation:    variation,
		Estimators:   estimators,
		Runs:         *runs,
		Seed:         *seed,
		Parallelism:  *parallel,
	}
	m, err := sim.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("policy=%s cache=%.1fGB objects=%d requests=%d alpha=%.2f variability=%s runs=%d\n",
		policy.Name(), *cacheGB, *objects, *requests, *alpha, *variability, *runs)
	fmt.Printf("traffic_reduction_ratio %8.4f\n", m.TrafficReductionRatio)
	fmt.Printf("avg_service_delay_s     %8.1f\n", m.AvgServiceDelay)
	fmt.Printf("avg_stream_quality      %8.4f\n", m.AvgStreamQuality)
	fmt.Printf("total_added_value       %8.1f\n", m.TotalAddedValue)
	fmt.Printf("hit_ratio               %8.4f\n", m.HitRatio)
	fmt.Printf("measured_requests       %8d\n", m.Requests)
	return nil
}

// sweepConfig carries the sweep-mode flag set.
type sweepConfig struct {
	axis, points            string
	objects, requests, runs int
	refine, parallel        int
	seed                    int64
	format, outPath         string
	shard, journal          string
	resume                  bool
}

// runSweep streams one adaptively refined axis sweep to the chosen
// output, row by row as points complete, optionally sharded across
// processes and checkpointed for resume.
func runSweep(c sweepConfig) error {
	s := experiments.SmallScale()
	s.Objects = c.objects
	s.Requests = c.requests
	s.Runs = c.runs
	s.Seed = c.seed
	s.Parallelism = c.parallel
	if c.refine >= 0 {
		s.RefineBudget = c.refine
	}
	if c.points != "" {
		grid, err := parseGrid(c.points)
		if err != nil {
			return err
		}
		switch c.axis {
		case "e":
			s.ESweep = grid
		case "sigma":
			s.SigmaSweep = grid
		case "cache":
			s.CacheFractions = grid
		}
	}
	key, ok := map[string]string{
		"e":     "refined-e",
		"sigma": "refined-sigma",
		"cache": "refined-cache",
	}[c.axis]
	if !ok {
		return fmt.Errorf("unknown sweep axis %q (want e, sigma, or cache)", c.axis)
	}
	sh, err := experiments.ParseShard(c.shard)
	if err != nil {
		return err
	}
	s.Shard = sh
	if sh.Count > 1 && c.format != "jsonl" {
		return fmt.Errorf("sharded sweeps need -format jsonl (CSV rows carry no index to merge on)")
	}
	if c.resume && c.journal == "" {
		return fmt.Errorf("-resume needs -journal to name the checkpoint file")
	}

	var w io.Writer = os.Stdout
	if c.outPath != "" {
		f, err := os.Create(c.outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var sink experiments.RowSink
	switch c.format {
	case "csv":
		sink = experiments.NewCSVSink(w)
	case "jsonl":
		sink = experiments.NewJSONLSink(w)
	default:
		return fmt.Errorf("unknown sweep format %q (want csv or jsonl)", c.format)
	}
	if c.journal != "" {
		var j *experiments.Journal
		if c.resume {
			j, err = experiments.ResumeJournal(c.journal, s.Fingerprint())
		} else {
			j, err = experiments.CreateJournal(c.journal, s.Fingerprint())
		}
		if err != nil {
			return err
		}
		defer j.Close()
		if c.resume {
			s.Resume = j
		}
		sink = experiments.MultiSink{sink, experiments.NewJournalSink(j)}
	}
	return experiments.Stream(key, s, sink)
}

// parseGrid parses a comma-separated, strictly increasing float list.
func parseGrid(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	grid := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad sweep point %q: %w", p, err)
		}
		if len(grid) > 0 && v <= grid[len(grid)-1] {
			return nil, fmt.Errorf("sweep points must be strictly increasing, got %q", s)
		}
		grid = append(grid, v)
	}
	if len(grid) < 2 {
		return nil, fmt.Errorf("sweep needs at least 2 coarse points, got %q", s)
	}
	return grid, nil
}

func variabilityByName(name string) (bandwidth.Variability, error) {
	switch name {
	case "none", "constant":
		return bandwidth.NoVariation{}, nil
	case "nlanr":
		return bandwidth.NLANRVariability(), nil
	case "measured":
		return bandwidth.MeasuredVariability(), nil
	case "inria":
		return bandwidth.INRIAVariability(), nil
	case "fareast":
		return bandwidth.FarEastVariability(), nil
	default:
		return nil, fmt.Errorf("unknown variability %q", name)
	}
}

func estimatorByName(name string, ewmaAlpha, e float64) (sim.EstimatorFactory, error) {
	switch name {
	case "oracle":
		return sim.OracleEstimator, nil
	case "ewma":
		if ewmaAlpha <= 0 || ewmaAlpha > 1 {
			return nil, fmt.Errorf("ewma-alpha %v outside (0,1]", ewmaAlpha)
		}
		return sim.EWMAEstimator(ewmaAlpha), nil
	case "underestimate":
		return sim.UnderestimatingOracle(e), nil
	default:
		return nil, fmt.Errorf("unknown estimator %q", name)
	}
}

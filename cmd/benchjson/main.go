// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable perf-trajectory JSON file, optionally computing
// speedups against a baseline file produced by an earlier run. The
// Makefile's bench-json target pipes the benchmark suite through it and
// CI uploads the result as an artifact, so every PR leaves a comparable
// record of sweep throughput and hot-path allocation counts.
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -out BENCH.json
//	benchjson -baseline BENCH_PR2.json -out BENCH_PR3.json < bench.txt
//
// With -compare the tool becomes a regression gate instead of a
// recorder: the fresh run on stdin is diffed against the committed
// baseline and the exit status is nonzero when any pinned benchmark
// regresses — more than -max-regress ns/op slowdown, any allocs/op
// increase, or a benchmark missing from the fresh run. This is the
// ratchet behind `make bench-gate`: the trajectory can only move
// forward.
//
//	go test -run '^$' -bench . . | benchjson -compare BENCH_PR8.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds any custom b.ReportMetric columns (e.g. the
	// sharded-refinement scheduler's evals/shard), keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// BaselineNsPerOp and Speedup are filled when -baseline provides a
	// matching benchmark: speedup = baseline_ns / ns.
	BaselineNsPerOp *float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         *float64 `json:"speedup,omitempty"`
}

// File is the schema of the emitted JSON.
type File struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Note        string   `json:"note,omitempty"`
	Benchmarks  []Result `json:"benchmarks"`
}

// benchLine matches the fixed prefix of one benchmark result row.
// B/op and allocs/op are extracted separately because a variable set of
// columns (MB/s from SetBytes, custom ReportMetric units like laps/op)
// can sit between ns/op and the allocation columns.
var (
	benchLine = regexp.MustCompile(
		`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)
	bytesCol  = regexp.MustCompile(`([\d.]+) B/op`)
	allocsCol = regexp.MustCompile(`([\d.]+) allocs/op`)
	// metricCol matches every "value unit" column pair; the standard
	// columns are filtered out when collecting custom metrics.
	metricCol = regexp.MustCompile(`([\d.]+(?:e[+-]?\d+)?) ([^\s]+)`)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out        = flag.String("out", "", "output file (default stdout)")
		baseline   = flag.String("baseline", "", "baseline JSON to compute per-benchmark speedups against")
		note       = flag.String("note", "", "freeform note stored in the file (e.g. the PR or commit)")
		compare    = flag.String("compare", "", "gate mode: diff the fresh run against this baseline JSON and exit nonzero on regression")
		maxRegress = flag.Float64("max-regress", 0.15, "with -compare: tolerated fractional ns/op slowdown (0.15 = 15%); allocs/op tolerates none")
		match      = flag.String("match", "", "with -compare: gate only baseline benchmarks matching this regexp (the subset the fresh run re-ran); default all")
	)
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	if *compare != "" {
		return gate(results, *compare, *maxRegress, *match)
	}
	if *baseline != "" {
		if err := applyBaseline(results, *baseline); err != nil {
			return err
		}
	}
	f := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        *note,
		Benchmarks:  results,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// parse extracts benchmark rows from `go test -bench` output, echoing
// non-benchmark lines (figure tables, PASS/ok) to stderr so piping
// through benchjson loses nothing.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			if strings.TrimSpace(line) != "" {
				fmt.Fprintln(os.Stderr, line)
			}
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		res := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if bm := bytesCol.FindStringSubmatch(line); bm != nil {
			v, err := strconv.ParseFloat(bm[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
			res.BytesPerOp = &v
		}
		if am := allocsCol.FindStringSubmatch(line); am != nil {
			v, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			res.AllocsPerOp = &v
		}
		for _, mc := range metricCol.FindAllStringSubmatch(line, -1) {
			switch mc[2] {
			case "ns/op", "B/op", "allocs/op":
				continue
			}
			v, err := strconv.ParseFloat(mc[1], 64)
			if err != nil {
				continue // a non-numeric column, not a metric
			}
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[mc[2]] = v
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// gate diffs the fresh results against the committed baseline and
// fails on regression. Every gated baseline benchmark must be present
// in the fresh run (a silently dropped benchmark is not a speedup);
// when matchExpr is set, only baseline benchmarks matching it are
// gated, so a subset re-run (make bench-gate's pinned pattern) is not
// failed for trajectory entries it never attempted. Fresh-only
// benchmarks are reported but never fail, so new benchmarks can land
// in the same PR that later ratchets them into the baseline. ns/op
// tolerates maxRegress (machine-dependent), allocs/op tolerates
// nothing (machine-independent: an alloc is an alloc everywhere).
func gate(fresh []Result, path string, maxRegress float64, matchExpr string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	if matchExpr != "" {
		re, err := regexp.Compile(matchExpr)
		if err != nil {
			return fmt.Errorf("bad -match regexp: %w", err)
		}
		gated := base.Benchmarks[:0]
		for _, b := range base.Benchmarks {
			if re.MatchString(b.Name) {
				gated = append(gated, b)
			}
		}
		base.Benchmarks = gated
		if len(base.Benchmarks) == 0 {
			return fmt.Errorf("-match %q selects no benchmarks from %s", matchExpr, path)
		}
	}
	freshByName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		freshByName[r.Name] = r
	}

	var failures []string
	fmt.Printf("%-60s %12s %12s %8s\n", "benchmark", "base ns/op", "ns/op", "delta")
	for _, b := range base.Benchmarks {
		f, ok := freshByName[b.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from the fresh run", b.Name))
			continue
		}
		delta := 0.0
		if b.NsPerOp > 0 {
			delta = f.NsPerOp/b.NsPerOp - 1
		}
		fmt.Printf("%-60s %12.1f %12.1f %+7.1f%%\n", b.Name, b.NsPerOp, f.NsPerOp, delta*100)
		if f.NsPerOp > b.NsPerOp*(1+maxRegress) {
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f (+%.1f%%, tolerance %.0f%%)",
				b.Name, f.NsPerOp, b.NsPerOp, delta*100, maxRegress*100))
		}
		if b.AllocsPerOp != nil {
			switch {
			case f.AllocsPerOp == nil:
				failures = append(failures, fmt.Sprintf(
					"%s: baseline pins %.0f allocs/op but the fresh run reports none (ReportAllocs removed?)",
					b.Name, *b.AllocsPerOp))
			case *f.AllocsPerOp > *b.AllocsPerOp:
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f allocs/op vs baseline %.0f — the alloc ratchet only goes down",
					b.Name, *f.AllocsPerOp, *b.AllocsPerOp))
			}
		}
	}
	baseNames := make(map[string]bool, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseNames[b.Name] = true
	}
	for _, f := range fresh {
		if !baseNames[f.Name] {
			fmt.Printf("%-60s %12s %12.1f %8s\n", f.Name, "(new)", f.NsPerOp, "-")
		}
	}
	if len(failures) > 0 {
		for _, msg := range failures {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", msg)
		}
		return fmt.Errorf("%d benchmark regression(s) against %s", len(failures), path)
	}
	fmt.Printf("bench-gate OK: %d benchmarks within %.0f%% of %s, no alloc increases\n",
		len(base.Benchmarks), maxRegress*100, path)
	return nil
}

// applyBaseline fills BaselineNsPerOp/Speedup from a previous file.
func applyBaseline(results []Result, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	byName := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	for i := range results {
		b, ok := byName[results[i].Name]
		if !ok || results[i].NsPerOp == 0 {
			continue
		}
		ns := b.NsPerOp
		speedup := ns / results[i].NsPerOp
		results[i].BaselineNsPerOp = &ns
		results[i].Speedup = &speedup
	}
	return nil
}

// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable perf-trajectory JSON file, optionally computing
// speedups against a baseline file produced by an earlier run. The
// Makefile's bench-json target pipes the benchmark suite through it and
// CI uploads the result as an artifact, so every PR leaves a comparable
// record of sweep throughput and hot-path allocation counts.
//
//	go test -run '^$' -bench . -benchtime 1x . | benchjson -out BENCH.json
//	benchjson -baseline BENCH_PR2.json -out BENCH_PR3.json < bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string   `json:"name"`
	Iterations  int64    `json:"iterations"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// BaselineNsPerOp and Speedup are filled when -baseline provides a
	// matching benchmark: speedup = baseline_ns / ns.
	BaselineNsPerOp *float64 `json:"baseline_ns_per_op,omitempty"`
	Speedup         *float64 `json:"speedup,omitempty"`
}

// File is the schema of the emitted JSON.
type File struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	Note        string   `json:"note,omitempty"`
	Benchmarks  []Result `json:"benchmarks"`
}

// benchLine matches one benchmark result row. The optional B/op and
// allocs/op columns appear when the benchmark calls ReportAllocs (or
// -benchmem is set).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		out      = flag.String("out", "", "output file (default stdout)")
		baseline = flag.String("baseline", "", "baseline JSON to compute per-benchmark speedups against")
		note     = flag.String("note", "", "freeform note stored in the file (e.g. the PR or commit)")
	)
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	if *baseline != "" {
		if err := applyBaseline(results, *baseline); err != nil {
			return err
		}
	}
	f := File{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        *note,
		Benchmarks:  results,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// parse extracts benchmark rows from `go test -bench` output, echoing
// non-benchmark lines (figure tables, PASS/ok) to stderr so piping
// through benchjson loses nothing.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			if strings.TrimSpace(line) != "" {
				fmt.Fprintln(os.Stderr, line)
			}
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		res := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			v, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", line, err)
			}
			res.BytesPerOp = &v
		}
		if m[5] != "" {
			v, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			res.AllocsPerOp = &v
		}
		results = append(results, res)
	}
	return results, sc.Err()
}

// applyBaseline fills BaselineNsPerOp/Speedup from a previous file.
func applyBaseline(results []Result, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	byName := make(map[string]Result, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	for i := range results {
		b, ok := byName[results[i].Name]
		if !ok || results[i].NsPerOp == 0 {
			continue
		}
		ns := b.NsPerOp
		speedup := ns / results[i].NsPerOp
		results[i].BaselineNsPerOp = &ns
		results[i].Speedup = &speedup
	}
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseVariableColumns(t *testing.T) {
	// B/op and allocs/op must survive any mix of intermediate columns:
	// MB/s from SetBytes and custom ReportMetric units like laps/op.
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkPlain-8           	  100	  250.0 ns/op",
		"BenchmarkAllocs-8          	  100	  300.0 ns/op	   48 B/op	       2 allocs/op",
		"BenchmarkThroughput-8      	  100	  400.0 ns/op	81920.00 MB/s	       0 B/op	       0 allocs/op",
		"BenchmarkCustomMetric-8    	  100	  500.0 ns/op	14431.26 MB/s	         1.5 laps/op	     352 B/op	       3 allocs/op",
		"PASS",
	}, "\n")
	results, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("parsed %d results, want 4", len(results))
	}
	check := func(i int, name string, ns float64, allocs *float64) {
		t.Helper()
		r := results[i]
		if r.Name != name || r.NsPerOp != ns {
			t.Errorf("result %d = %q %.1f ns/op, want %q %.1f", i, r.Name, r.NsPerOp, name, ns)
		}
		switch {
		case allocs == nil && r.AllocsPerOp != nil:
			t.Errorf("%s: unexpected allocs/op %v", name, *r.AllocsPerOp)
		case allocs != nil && (r.AllocsPerOp == nil || *r.AllocsPerOp != *allocs):
			t.Errorf("%s: allocs/op = %v, want %v", name, r.AllocsPerOp, *allocs)
		}
	}
	f := func(v float64) *float64 { return &v }
	check(0, "BenchmarkPlain", 250, nil)
	check(1, "BenchmarkAllocs", 300, f(2))
	check(2, "BenchmarkThroughput", 400, f(0))
	check(3, "BenchmarkCustomMetric", 500, f(3))
	if results[3].BytesPerOp == nil || *results[3].BytesPerOp != 352 {
		t.Errorf("BenchmarkCustomMetric B/op = %v, want 352", results[3].BytesPerOp)
	}
}

func writeBaseline(t *testing.T, json string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(json), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const gateBaseline = `{
  "benchmarks": [
    {"name": "BenchmarkA", "iterations": 100, "ns_per_op": 100, "allocs_per_op": 2},
    {"name": "BenchmarkB", "iterations": 100, "ns_per_op": 1000}
  ]
}`

func TestGate(t *testing.T) {
	path := writeBaseline(t, gateBaseline)
	a := func(v float64) *float64 { return &v }

	cases := []struct {
		name    string
		fresh   []Result
		wantErr string
	}{
		{
			name: "within tolerance passes",
			fresh: []Result{
				{Name: "BenchmarkA", NsPerOp: 110, AllocsPerOp: a(2)},
				{Name: "BenchmarkB", NsPerOp: 900},
			},
		},
		{
			name: "alloc decrease passes",
			fresh: []Result{
				{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: a(0)},
				{Name: "BenchmarkB", NsPerOp: 1000},
			},
		},
		{
			name: "new benchmark passes",
			fresh: []Result{
				{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: a(2)},
				{Name: "BenchmarkB", NsPerOp: 1000},
				{Name: "BenchmarkNew", NsPerOp: 5},
			},
		},
		{
			name: "ns regression past tolerance fails",
			fresh: []Result{
				{Name: "BenchmarkA", NsPerOp: 120, AllocsPerOp: a(2)},
				{Name: "BenchmarkB", NsPerOp: 1000},
			},
			wantErr: "1 benchmark regression",
		},
		{
			name: "any alloc increase fails",
			fresh: []Result{
				{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: a(3)},
				{Name: "BenchmarkB", NsPerOp: 1000},
			},
			wantErr: "1 benchmark regression",
		},
		{
			name: "missing benchmark fails",
			fresh: []Result{
				{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: a(2)},
			},
			wantErr: "1 benchmark regression",
		},
		{
			name: "dropped ReportAllocs fails",
			fresh: []Result{
				{Name: "BenchmarkA", NsPerOp: 100},
				{Name: "BenchmarkB", NsPerOp: 1000},
			},
			wantErr: "1 benchmark regression",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := gate(tc.fresh, path, 0.15, "")
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("gate failed: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("gate error = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestGateMatchScopesBaseline(t *testing.T) {
	path := writeBaseline(t, gateBaseline)
	a := func(v float64) *float64 { return &v }
	// A subset re-run that only attempted BenchmarkA: without -match the
	// absent BenchmarkB fails the gate; scoped to ^BenchmarkA$ it passes.
	fresh := []Result{{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: a(2)}}
	if err := gate(fresh, path, 0.15, ""); err == nil {
		t.Fatal("unscoped gate ignored a missing baseline benchmark")
	}
	if err := gate(fresh, path, 0.15, "^BenchmarkA$"); err != nil {
		t.Fatalf("scoped gate failed: %v", err)
	}
	if err := gate(fresh, path, 0.15, "^BenchmarkZ$"); err == nil {
		t.Fatal("gate accepted a -match selecting nothing")
	}
}

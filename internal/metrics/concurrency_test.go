package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestWelfordConcurrentHammer drives one shared collector from many
// goroutines (readers interleaved with writers) and checks the exact
// aggregates afterwards. Run under -race this is the engine's proof
// that sharing collectors across sweep workers is sound.
func TestWelfordConcurrentHammer(t *testing.T) {
	const (
		goroutines = 16
		perG       = 5000
	)
	var w Welford
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Values 1..perG, same multiset from every goroutine.
				w.Add(float64(i + 1))
				if i%128 == 0 {
					// Interleave reads with writes.
					_ = w.Mean()
					_ = w.CoV()
					_ = w.Min()
				}
			}
		}(g)
	}
	wg.Wait()

	if got := w.N(); got != goroutines*perG {
		t.Errorf("N = %d, want %d (lost updates)", got, goroutines*perG)
	}
	if got := w.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := w.Max(); got != perG {
		t.Errorf("Max = %v, want %v", got, float64(perG))
	}
	wantMean := float64(perG+1) / 2
	if got := w.Mean(); math.Abs(got-wantMean)/wantMean > 1e-9 {
		t.Errorf("Mean = %v, want %v", got, wantMean)
	}
	// Uniform 1..n variance: (n^2 - 1) / 12. Welford's m2 update is
	// order-sensitive in floating point, so interleaving perturbs the
	// last digits; a loose relative bound still catches lost updates.
	wantVar := (float64(perG)*float64(perG) - 1) / 12
	if got := w.Var(); math.Abs(got-wantVar)/wantVar > 1e-3 {
		t.Errorf("Var = %v, want %v", got, wantVar)
	}
}

// TestHistogramConcurrentHammer checks that a histogram filled from
// many goroutines is bin-for-bin identical to a sequential fill:
// integer bin counts are exact regardless of interleaving.
func TestHistogramConcurrentHammer(t *testing.T) {
	const (
		goroutines = 16
		perG       = 5000
		bins       = 32
	)
	shared, err := NewHistogram(0, 1, bins)
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := NewHistogram(0, 1, bins)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				x := float64((g*perG + i) % (bins + 4)) // includes clamped overflow
				shared.Add(x)
				if i%256 == 0 {
					_ = shared.CDF()
					_ = shared.FractionBelow(float64(bins) / 2)
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			sequential.Add(float64((g*perG + i) % (bins + 4)))
		}
	}

	if shared.Count() != sequential.Count() {
		t.Fatalf("count %d != sequential %d", shared.Count(), sequential.Count())
	}
	for i := 0; i < bins; i++ {
		if shared.Bin(i) != sequential.Bin(i) {
			t.Errorf("bin %d: concurrent %d != sequential %d", i, shared.Bin(i), sequential.Bin(i))
		}
	}
	if shared.Mean() != sequential.Mean() {
		// Sum of the same multiset in different order can differ only by
		// float rounding; integer-valued samples keep it exact.
		t.Errorf("mean %v != sequential %v", shared.Mean(), sequential.Mean())
	}
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Var() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Errorf("zero Welford not all-zero: n=%d mean=%v var=%v", w.N(), w.Mean(), w.Var())
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if got := w.Mean(); got != 5 {
		t.Errorf("Mean() = %v, want 5", got)
	}
	// Unbiased variance of this classic dataset is 32/7.
	if got, want := w.Var(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Var() = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordSingleValue(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Var() != 0 || w.Std() != 0 {
		t.Errorf("single value: mean=%v var=%v", w.Mean(), w.Var())
	}
}

func TestWelfordCoV(t *testing.T) {
	var w Welford
	for _, x := range []float64{10, 20} {
		w.Add(x)
	}
	want := w.Std() / 15
	if got := w.CoV(); math.Abs(got-want) > 1e-12 {
		t.Errorf("CoV() = %v, want %v", got, want)
	}
	var zero Welford
	zero.Add(0)
	if got := zero.CoV(); got != 0 {
		t.Errorf("CoV of zero-mean = %v, want 0", got)
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		var w Welford
		sum := 0.0
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 50
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Var()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewHistogramRejectsBadParams(t *testing.T) {
	if _, err := NewHistogram(0, 0, 10); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewHistogram(0, -1, 10); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5) // [0,10), [10,20), ..., [40,50)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 5, 9.99, 10, 25, 49, 100, -3} {
		h.Add(x)
	}
	if h.Count() != 8 {
		t.Fatalf("Count() = %d, want 8", h.Count())
	}
	wantBins := []int64{4, 1, 1, 0, 2} // -3 clamps to bin 0, 100 clamps to bin 4
	for i, want := range wantBins {
		if got := h.Bin(i); got != want {
			t.Errorf("Bin(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramBinStart(t *testing.T) {
	h, err := NewHistogram(100, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{100, 104, 108} {
		if got := h.BinStart(i); got != want {
			t.Errorf("BinStart(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestHistogramCDF(t *testing.T) {
	h, err := NewHistogram(0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.5, 1.5, 1.6, 3.2} {
		h.Add(x)
	}
	cdf := h.CDF()
	want := []float64{0.25, 0.75, 0.75, 1}
	for i := range want {
		if math.Abs(cdf[i]-want[i]) > 1e-12 {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
}

func TestHistogramCDFEmptyAllZero(t *testing.T) {
	h, err := NewHistogram(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range h.CDF() {
		if v != 0 {
			t.Fatal("empty histogram CDF not all-zero")
		}
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(float64(i)) // uniform 0..99
	}
	if got := h.FractionBelow(50); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FractionBelow(50) = %v, want 0.5", got)
	}
	if got := h.FractionBelow(0); got != 0 {
		t.Errorf("FractionBelow(0) = %v, want 0", got)
	}
	if got := h.FractionBelow(1000); got != 1 {
		t.Errorf("FractionBelow(1000) = %v, want 1", got)
	}
}

func TestHistogramMean(t *testing.T) {
	h, err := NewHistogram(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{1, 2, 3} {
		h.Add(x)
	}
	if got := h.Mean(); got != 2 {
		t.Errorf("Mean() = %v, want 2", got)
	}
	empty, _ := NewHistogram(0, 1, 10)
	if got := empty.Mean(); got != 0 {
		t.Errorf("empty Mean() = %v, want 0", got)
	}
}

func TestHistogramCDFMonotonicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := NewHistogram(0, 1+rng.Float64()*10, 1+rng.Intn(50))
		if err != nil {
			return false
		}
		n := rng.Intn(200) + 1
		for i := 0; i < n; i++ {
			h.Add(rng.NormFloat64() * 30)
		}
		cdf := h.CDF()
		prev := 0.0
		for _, v := range cdf {
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return math.Abs(cdf[len(cdf)-1]-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("negative q accepted")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("q > 1 accepted")
	}
}

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{0.25, 1.75},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileSingleSample(t *testing.T) {
	got, err := Quantile([]float64{7}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("Quantile = %v, want 7", got)
	}
}

func TestNewECDFRejectsEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err == nil {
		t.Error("empty ECDF accepted")
	}
}

func TestECDFAt(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{2, 0.75},
		{2.5, 0.75},
		{3, 1},
		{99, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestECDFInverse(t *testing.T) {
	e, err := NewECDF([]float64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{0.25, 10},
		{0.26, 20},
		{0.5, 20},
		{0.75, 30},
		{1, 40},
	}
	for _, tt := range tests {
		if got := e.Inverse(tt.p); got != tt.want {
			t.Errorf("Inverse(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if e.Min() != 10 || e.Max() != 40 || e.N() != 4 {
		t.Errorf("Min/Max/N = %v/%v/%v", e.Min(), e.Max(), e.N())
	}
}

func TestECDFInverseAtRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			p := rng.Float64()
			x := e.Inverse(p)
			// At(Inverse(p)) >= p must hold for an ECDF.
			if e.At(x) < p-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGradients(t *testing.T) {
	xs := []float64{0, 1, 3}
	ys := []float64{2, 4, 3}
	got, err := Gradients(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0.5}
	if len(got) != len(want) {
		t.Fatalf("gradients = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("gradient %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGradientsRejectsBadInput(t *testing.T) {
	if _, err := Gradients([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Gradients([]float64{0}, []float64{0}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Gradients([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("non-increasing xs accepted")
	}
	if _, err := Gradients([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Error("decreasing xs accepted")
	}
}

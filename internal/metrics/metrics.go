// Package metrics provides the statistical primitives used throughout the
// evaluation harness: streaming mean/variance (Welford), fixed-width
// histograms, empirical CDFs, and quantiles. These back the bandwidth
// characterization experiments (paper Figures 2-4) and the per-run summary
// statistics of every simulation.
//
// The mutable collectors (Welford, Histogram) are safe for concurrent
// use, so callers may share one collector across goroutines without
// extra locking. Integer aggregates (counts, bins, extrema) are exact
// under any interleaving; float accumulators (mean/variance/sum) are
// order-insensitive only up to rounding, which is why the deterministic
// experiment pipelines fill each collector from a single goroutine and
// parallelize across collectors instead. ECDF is immutable after
// construction and Quantile is a pure function, so both are trivially
// safe.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
)

// ErrBadParam reports an invalid argument.
var ErrBadParam = errors.New("metrics: invalid parameter")

// Welford accumulates mean and variance in a single streaming pass.
// The zero value is ready to use. All methods are safe for concurrent
// use; note that Welford's update is order-insensitive only up to
// floating-point rounding, so deterministic pipelines add from a single
// goroutine while concurrent stress paths accept the rounding noise.
type Welford struct {
	mu   sync.Mutex
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.mean
}

func (w *Welford) varLocked() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Var returns the unbiased sample variance (0 with fewer than 2 points).
func (w *Welford) Var() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.varLocked()
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return math.Sqrt(w.varLocked())
}

// CoV returns the coefficient of variation Std/Mean (0 when Mean is 0).
func (w *Welford) CoV() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.mean == 0 {
		return 0
	}
	return math.Sqrt(w.varLocked()) / w.mean
}

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Histogram is a fixed-bin-width histogram over [Origin, Origin+Width*Bins).
// Samples outside the range are clamped into the first/last bin so that
// Count always equals the number of Add calls, mirroring how the paper's
// histograms bucket the NLANR bandwidth samples (4 KB/s slots, Figure 2).
// All methods are safe for concurrent use. Bin counts and Count are
// exact integer aggregates, so the bins of a histogram filled from many
// goroutines are identical to a sequential fill; the running sum behind
// Mean is a float64 and can differ in its last bits across schedules
// when sample magnitudes vary widely.
type Histogram struct {
	mu     sync.Mutex
	origin float64
	width  float64
	bins   []int64
	count  int64
	sum    float64
}

// NewHistogram builds a histogram with the given bin origin, bin width and
// bin count.
func NewHistogram(origin, width float64, bins int) (*Histogram, error) {
	if width <= 0 || math.IsNaN(width) {
		return nil, fmt.Errorf("%w: histogram width=%v, want > 0", ErrBadParam, width)
	}
	if bins <= 0 {
		return nil, fmt.Errorf("%w: histogram bins=%d, want > 0", ErrBadParam, bins)
	}
	return &Histogram{origin: origin, width: width, bins: make([]int64, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	i := int(math.Floor((x - h.origin) / h.width))
	if i < 0 {
		i = 0
	}
	if i >= len(h.bins) {
		i = len(h.bins) - 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.bins[i]++
	h.count++
	h.sum += x
}

// Count returns the total number of samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean of the raw samples (not bin midpoints).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bins[i]
}

// BinStart returns the lower edge of bin i.
func (h *Histogram) BinStart(i int) float64 { return h.origin + float64(i)*h.width }

// CDF returns the empirical CDF evaluated at each bin upper edge. The last
// value is always 1 for a non-empty histogram.
func (h *Histogram) CDF() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, len(h.bins))
	if h.count == 0 {
		return out
	}
	var cum int64
	for i, c := range h.bins {
		cum += c
		out[i] = float64(cum) / float64(h.count)
	}
	return out
}

// FractionBelow returns the fraction of samples strictly in bins whose
// upper edge is <= x (bin-resolution approximation of P[X < x]).
func (h *Histogram) FractionBelow(x float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	var cum int64
	for i, c := range h.bins {
		if h.BinStart(i)+h.width > x {
			break
		}
		cum += c
	}
	return float64(cum) / float64(h.count)
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sample slice using
// linear interpolation between order statistics. The input is not modified.
func Quantile(samples []float64, q float64) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("%w: quantile of empty sample", ErrBadParam)
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("%w: quantile q=%v, want in [0,1]", ErrBadParam, q)
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	slices.Sort(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Gradients returns the absolute finite-difference slope of each
// adjacent pair of a sampled curve: out[i] = |ys[i+1]-ys[i]| /
// (xs[i+1]-xs[i]). xs must be strictly increasing and at least two
// points long. The adaptive sweep refinement in internal/experiments
// ranks axis intervals by these slopes to decide where to bisect.
func Gradients(xs, ys []float64) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: gradients over %d xs but %d ys", ErrBadParam, len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, fmt.Errorf("%w: gradients need at least 2 points, got %d", ErrBadParam, len(xs))
	}
	out := make([]float64, len(xs)-1)
	for i := range out {
		dx := xs[i+1] - xs[i]
		if dx <= 0 || math.IsNaN(dx) {
			return nil, fmt.Errorf("%w: xs not strictly increasing at index %d (%v -> %v)",
				ErrBadParam, i, xs[i], xs[i+1])
		}
		out[i] = math.Abs(ys[i+1]-ys[i]) / dx
	}
	return out, nil
}

// ECDF is an empirical cumulative distribution function built from raw
// samples. It supports evaluation at arbitrary points and inverse
// (quantile) lookups, which the bandwidth package uses to turn measured
// throughput samples into a sampleable distribution.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied and sorted).
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("%w: ECDF needs at least one sample", ErrBadParam)
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	slices.Sort(s)
	return &ECDF{sorted: s}, nil
}

// At returns P[X <= x].
func (e *ECDF) At(x float64) float64 {
	i, _ := slices.BinarySearch(e.sorted, x)
	// Move past ties so that At is right-continuous.
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Inverse returns the smallest sample x with P[X <= x] >= p.
func (e *ECDF) Inverse(p float64) float64 {
	if p <= 0 {
		return e.sorted[0]
	}
	if p >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(math.Ceil(p*float64(len(e.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return e.sorted[i]
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.sorted) }

// Min returns the smallest sample.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest sample.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Package units centralizes the byte-size and rate conventions used across
// the repository. Sizes are int64 bytes; rates are float64 bytes per
// second. The paper reports rates in KB/s with KB = 1024 bytes (e.g. the
// 48 KB/s object bit-rate = 2 KB/frame x 24 frames/s).
package units

// Byte-size multipliers.
const (
	KB int64 = 1024
	MB       = 1024 * KB
	GB       = 1024 * MB
)

// KBps converts a KB/s figure to bytes/s.
func KBps(v float64) float64 { return v * float64(KB) }

// ToKBps converts bytes/s to KB/s for reporting.
func ToKBps(v float64) float64 { return v / float64(KB) }

// GBytes converts a GB figure to bytes.
func GBytes(v float64) int64 { return int64(v * float64(GB)) }

// ToGBytes converts bytes to GB for reporting.
func ToGBytes(v int64) float64 { return float64(v) / float64(GB) }

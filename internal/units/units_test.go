package units

import "testing"

func TestByteMultipliers(t *testing.T) {
	if KB != 1024 || MB != 1024*1024 || GB != 1024*1024*1024 {
		t.Errorf("KB/MB/GB = %d/%d/%d", KB, MB, GB)
	}
}

func TestRateConversions(t *testing.T) {
	if got := KBps(48); got != 48*1024 {
		t.Errorf("KBps(48) = %v, want 49152", got)
	}
	if got := ToKBps(49152); got != 48 {
		t.Errorf("ToKBps(49152) = %v, want 48", got)
	}
	// Round trip.
	if got := ToKBps(KBps(123.5)); got != 123.5 {
		t.Errorf("round trip = %v, want 123.5", got)
	}
}

func TestSizeConversions(t *testing.T) {
	if got := GBytes(2); got != 2*GB {
		t.Errorf("GBytes(2) = %d, want %d", got, 2*GB)
	}
	if got := ToGBytes(GB / 2); got != 0.5 {
		t.Errorf("ToGBytes(GB/2) = %v, want 0.5", got)
	}
	if got := GBytes(0.25); got != GB/4 {
		t.Errorf("GBytes(0.25) = %d, want %d", got, GB/4)
	}
}

package collect

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"streamcache/internal/experiments"
)

// tinyScale mirrors the experiments package's test scale: fast, but
// exercising every code path including adaptive refinement.
func tinyScale() experiments.Scale {
	return experiments.Scale{
		Objects:        100,
		Requests:       2000,
		Runs:           1,
		Seed:           1,
		CacheFractions: []float64{0.02, 0.1},
		AlphaSweep:     []float64{0.5, 1.0},
		ESweep:         []float64{0, 0.5, 1},
		TraceEntries:   3000,
		TraceServers:   50,
		RefineBudget:   3,
	}
}

// testKeys are the experiments the collector tests run: one fixed grid
// and one adaptive refinement (the case the exchange exists for).
var testKeys = []string{"figure5", "refined-e"}

// fileStem gives each test table a stable output stem.
func fileStem(key string) string { return "out_" + key }

// singleProcessCSV streams key unsharded and returns the canonical CSV
// bytes — the byte-identity reference for everything below.
func singleProcessCSV(t *testing.T, key string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := experiments.Stream(key, tinyScale(), experiments.NewCSVSink(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runShard streams every test experiment as one shard pushing to the
// collector at base, journaling to journalPath (resuming if asked), and
// returns the shard's evaluation counter. extraSink, when non-nil, is
// composed into every experiment's fan-out (tests inject crashes
// through it).
func runShard(t *testing.T, base string, shard experiments.Shard, journalPath string,
	resume bool, metricWait time.Duration, extraSink experiments.RowSink) (evals int64, runErr error) {
	t.Helper()
	s := tinyScale()
	s.Shard = shard
	s.Counters = &experiments.Counters{}
	client := NewClient(base, shard, s.RunFingerprint())
	client.MetricWait = metricWait
	s.Exchange = client

	var j *experiments.Journal
	var err error
	if resume {
		j, err = experiments.ResumeJournal(journalPath, s.Fingerprint())
	} else {
		j, err = experiments.CreateJournal(journalPath, s.Fingerprint())
	}
	if err != nil {
		t.Fatal(err)
	}
	if resume {
		s.Resume = j
	}
	for _, key := range testKeys {
		sink := experiments.MultiSink{client.Sink(fileStem(key)), experiments.NewJournalSink(j)}
		if extraSink != nil {
			sink = append(sink, extraSink)
		}
		if err := experiments.Stream(key, s, sink); err != nil {
			runErr = err
			break
		}
	}
	j.Close()
	if err := client.Close(); err != nil && runErr == nil {
		runErr = err
	}
	return s.Counters.Evaluations.Load(), runErr
}

// collectedCSV reads the CSV the collector wrote for key.
func collectedCSV(t *testing.T, dir, key string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(dir, fileStem(key)+".csv"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCollectedByteIdenticalAndSplitWork is the collector acceptance
// contract: two shards pushing to one collector produce canonical CSVs
// byte-identical to a single-process run, while each shard simulates
// only its owned points of the refinement rounds.
func TestCollectedByteIdenticalAndSplitWork(t *testing.T) {
	srv := NewServer(2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	evals := make([]int64, 2)
	for idx := 0; idx < 2; idx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			dir := t.TempDir()
			n, err := runShard(t, ts.URL, experiments.Shard{Index: idx, Count: 2},
				filepath.Join(dir, "j.jsonl"), false, 15*time.Second, nil)
			if err != nil {
				t.Errorf("shard %d: %v", idx, err)
			}
			evals[idx] = n
		}(idx)
	}
	wg.Wait()

	select {
	case <-srv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("collector never saw both shards done")
	}
	out := t.TempDir()
	if err := srv.WriteTables(out); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, key := range testKeys {
		want := singleProcessCSV(t, key)
		got := collectedCSV(t, out, key)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: collected CSV differs from single-process run:\n%s\nwant:\n%s", key, got, want)
		}
	}
	// Work-splitting: the two shards together simulate each point once;
	// round-robin keeps them within one point of half each.
	total = evals[0] + evals[1]
	if diff := evals[0] - evals[1]; diff < -1 || diff > 1 {
		t.Errorf("shards simulated %d and %d points; want an even split of %d", evals[0], evals[1], total)
	}

	// The unsharded reference count comes from a counter-equipped run.
	s := tinyScale()
	s.Counters = &experiments.Counters{}
	for _, key := range testKeys {
		var null bytes.Buffer
		if err := experiments.Stream(key, s, experiments.NewJSONLSink(&null)); err != nil {
			t.Fatal(err)
		}
	}
	if want := s.Counters.Evaluations.Load(); total != want {
		t.Errorf("sharded run simulated %d points in total, want exactly the unsharded %d", total, want)
	}
}

// TestCollectorDownAtStart: shards started against a dead collector run
// journal-only — the client goes down, every point is evaluated
// locally, and the per-shard journals still merge to the canonical
// stream.
func TestCollectorDownAtStart(t *testing.T) {
	// A port nothing listens on: a started-then-closed test server.
	dead := httptest.NewServer(http.NotFoundHandler())
	base := dead.URL
	dead.Close()

	key := "refined-e"
	var want bytes.Buffer
	if err := experiments.Stream(key, tinyScale(), experiments.NewCSVSink(&want)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	outs := make([]bytes.Buffer, 2)
	for idx := 0; idx < 2; idx++ {
		sh := experiments.Shard{Index: idx, Count: 2}
		s := tinyScale()
		s.Shard = sh
		client := NewClient(base, sh, s.RunFingerprint())
		if !client.Down() {
			t.Fatal("client connected to a dead collector")
		}
		s.Exchange = client
		j, err := experiments.CreateJournal(filepath.Join(dir, fmt.Sprintf("j%d.jsonl", idx)), s.Fingerprint())
		if err != nil {
			t.Fatal(err)
		}
		sink := experiments.MultiSink{client.Sink(fileStem(key)), experiments.NewJournalSink(j), experiments.NewJSONLSink(&outs[idx])}
		if err := experiments.Stream(key, s, sink); err != nil {
			t.Fatal(err)
		}
		j.Close()
		if err := client.Close(); err != nil {
			t.Errorf("down client Close: %v", err)
		}
	}

	var got bytes.Buffer
	if err := experiments.MergeShards(
		[]io.Reader{bytes.NewReader(outs[0].Bytes()), bytes.NewReader(outs[1].Bytes())},
		experiments.NewCSVSink(&got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("journal-only fallback merge differs from the unsharded stream")
	}
}

// crashSink injects a mid-sweep death: it fails the stream after
// letting a fixed number of rows through.
type crashSink struct {
	allow int
	seen  int
}

var errCrash = errors.New("injected crash")

func (c *crashSink) Begin(experiments.TableMeta) error { return nil }
func (c *crashSink) End() error                        { return nil }
func (c *crashSink) Row([]string) error {
	c.seen++
	if c.seen > c.allow {
		return errCrash
	}
	return nil
}

// TestShardDiesMidPushAndResumes: a shard killed mid-sweep (after some
// rows were already pushed) restarts, re-registers, and replays; the
// collector ends with every row exactly once and the CSVs stay
// byte-identical. The push-session reset plus (table, index) dedupe is
// what makes the whole-log replay safe.
func TestShardDiesMidPushAndResumes(t *testing.T) {
	srv := NewServer(2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	j0 := filepath.Join(dir, "j0.jsonl")

	// Shard 0 dies after 5 rows of the first experiment. The partial
	// push log drains on Close (which reports the aborted sweep's
	// remainder as the stream error we injected, not a client failure).
	// The shards here run sequentially, so foreign-metric polls against
	// the not-yet-run peer must time out fast and fall back locally.
	const wait = 300 * time.Millisecond
	if _, err := runShard(t, ts.URL, experiments.Shard{Index: 0, Count: 2}, j0, false,
		wait, &crashSink{allow: 5}); !errors.Is(err, errCrash) {
		t.Fatalf("crashed shard run returned %v, want the injected crash", err)
	}

	// Shard 1 runs to completion meanwhile.
	if _, err := runShard(t, ts.URL, experiments.Shard{Index: 1, Count: 2},
		filepath.Join(dir, "j1.jsonl"), false, wait, nil); err != nil {
		t.Fatalf("shard 1: %v", err)
	}

	// Shard 0 restarts with -resume: journal replay re-emits the
	// completed prefix through the sinks (repopulating the push log
	// from index zero), the fresh hello resets the push session, and
	// the dedupe absorbs the overlap.
	if _, err := runShard(t, ts.URL, experiments.Shard{Index: 0, Count: 2}, j0, true, wait, nil); err != nil {
		t.Fatalf("resumed shard 0: %v", err)
	}

	select {
	case <-srv.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("collector never saw both shards done")
	}
	out := t.TempDir()
	if err := srv.WriteTables(out); err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys {
		want := singleProcessCSV(t, key)
		got := collectedCSV(t, out, key)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: CSV after crash+resume differs from single-process run:\n%s\nwant:\n%s", key, got, want)
		}
	}
}

// TestSlowCollectorDoesNotBlockWorkers: with a collector that stalls on
// every push, sink appends must stay non-blocking — the bounded backlog
// sheds to the journal instead. WriteTables then refuses the gapped
// table rather than writing a silently truncated CSV.
func TestSlowCollectorDoesNotBlockWorkers(t *testing.T) {
	srv := NewServer(1)
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/push" {
			time.Sleep(300 * time.Millisecond)
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(slow)
	defer ts.Close()

	sh := experiments.Shard{Index: 0, Count: 1}
	client := NewClient(ts.URL, sh, "fp")
	client.MaxBacklog = 8
	client.DrainWait = 100 * time.Millisecond
	sink := client.Sink("slow")
	if err := sink.Begin(experiments.TableMeta{Name: "slow", Header: []string{"v"}}); err != nil {
		t.Fatal(err)
	}
	const rows = 500
	start := time.Now()
	for i := 0; i < rows; i++ {
		if err := sink.Row([]string{"x"}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 500 appends against a collector that takes 300ms per push: if
	// appends blocked on the network this would take minutes.
	if elapsed > 2*time.Second {
		t.Fatalf("appends took %v; the push path is blocking simulation workers", elapsed)
	}
	if client.Shed() == 0 {
		t.Error("bounded backlog never shed against a stalled collector")
	}
	if err := client.Close(); err == nil {
		t.Error("Close returned nil despite shed rows; the operator would trust an incomplete CSV")
	}
	if err := srv.WriteTables(t.TempDir()); err == nil {
		t.Error("WriteTables wrote a gapped table instead of refusing")
	}
}

// TestMetricLongPoll pins the exchange transport: a waiting metric
// request is answered the moment the owning shard's push lands, at full
// float64 precision.
func TestMetricLongPoll(t *testing.T) {
	srv := NewServer(2)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	owner := NewClient(ts.URL, experiments.Shard{Index: 0, Count: 2}, "fp")
	peer := NewClient(ts.URL, experiments.Shard{Index: 1, Count: 2}, "fp")
	peer.MetricWait = 5 * time.Second

	const exact = 0.1234567890123456789 // rounds to a non-terminating binary fraction
	go func() {
		time.Sleep(50 * time.Millisecond)
		sink := owner.Sink("t")
		sink.Begin(experiments.TableMeta{Name: "T", Header: []string{"v"}})
		sink.MetricRow(experiments.MetricRow{Index: 7, Row: []string{"x"}, Metric: exact, HasMetric: true})
		sink.End()
	}()
	m, ok := peer.ForeignMetric("T", 7)
	if !ok {
		t.Fatal("long-poll missed the pushed metric")
	}
	if m != exact {
		t.Errorf("metric %v crossed the wire as %v; refinement decisions would diverge", exact, m)
	}
	owner.Close()
	peer.Close()
}

package collect

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"streamcache/internal/experiments"
)

// Client is one shard's connection to the collector. It plays two roles
// wired into the sweep engine:
//
//   - As a sink (via Sink), it appends every emitted row to an
//     in-memory record log that a background pusher ships to the
//     collector. Appends never block on the network: the log is
//     bounded, and when the collector falls behind the cap, new rows
//     are shed — they are still safe in the run's journal, and the
//     operator falls back to the journal merge (WriteTables refuses
//     gapped tables rather than writing a truncated CSV).
//
//   - As a Scale.Exchange (via ForeignMetric), it long-polls the
//     collector for metrics of points other shards own. Any failure —
//     collector down, peer dead, timeout — returns ok=false and the
//     engine evaluates the point locally, so the collector is never a
//     correctness dependency.
//
// A client that cannot reach the collector at creation runs the whole
// sweep in this degraded-but-correct mode.
type Client struct {
	base        string
	shard       experiments.Shard
	fingerprint string
	hc          *http.Client

	// MetricWait bounds one ForeignMetric call; after it the engine
	// falls back to evaluating the point locally.
	MetricWait time.Duration
	// DrainWait bounds Close's wait for the pusher to empty the log.
	DrainWait time.Duration
	// MaxBacklog caps unconfirmed records in the log; beyond it new
	// rows are shed to the journal.
	MaxBacklog int

	mu     sync.Mutex
	log    []record
	pushed int // records confirmed by the collector this session
	shed   int
	closed bool
	down   bool

	kick    chan struct{}
	drained chan struct{}
}

// NewClient connects to the collector at base (e.g.
// "http://host:9190") as the given shard. A collector that cannot be
// reached leaves the client in the down state: sinks no-op, foreign
// metrics miss, the sweep still completes against its journal.
func NewClient(base string, shard experiments.Shard, fingerprint string) *Client {
	if shard.Count < 1 {
		shard = experiments.Shard{Index: 0, Count: 1}
	}
	c := &Client{
		base:        base,
		shard:       shard,
		fingerprint: fingerprint,
		hc:          &http.Client{Timeout: 60 * time.Second},
		MetricWait:  15 * time.Second,
		DrainWait:   30 * time.Second,
		MaxBacklog:  1 << 16,
		kick:        make(chan struct{}, 1),
		drained:     make(chan struct{}),
	}
	if err := c.hello(); err != nil {
		c.down = true
		close(c.drained)
		return c
	}
	go c.pusher()
	return c
}

// Down reports whether the collector was unreachable at creation.
func (c *Client) Down() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down
}

// Shed returns how many records were dropped from the push log because
// the collector could not keep up (they remain in the journal).
func (c *Client) Shed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shed
}

func (c *Client) hello() error {
	q := url.Values{
		"shard":       {strconv.Itoa(c.shard.Index)},
		"count":       {strconv.Itoa(c.shard.Count)},
		"fingerprint": {c.fingerprint},
	}
	resp, err := c.hc.Post(c.base+"/v1/hello?"+q.Encode(), "text/plain", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("collect: hello: %s", resp.Status)
	}
	return nil
}

// append queues one record for the pusher. Never blocks: a full
// backlog sheds row/metric records (table declarations always queue —
// they are tiny and dropping one would orphan every later row).
func (c *Client) append(rec record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down || c.closed {
		return
	}
	if rec.Type != "table" && len(c.log)-c.pushed >= c.MaxBacklog {
		c.shed++
		return
	}
	c.log = append(c.log, rec)
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// pusher ships log batches in the background until Close drains it.
func (c *Client) pusher() {
	defer close(c.drained)
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-c.kick:
		case <-time.After(100 * time.Millisecond):
		}
		c.mu.Lock()
		batch := c.log[c.pushed:]
		seq := c.pushed
		closed := c.closed
		c.mu.Unlock()
		if len(batch) == 0 {
			if closed {
				return
			}
			continue
		}
		switch err := c.push(seq, batch); {
		case err == nil:
			c.mu.Lock()
			if end := seq + len(batch); end > c.pushed {
				c.pushed = end
			}
			c.mu.Unlock()
			backoff = 50 * time.Millisecond
		case err == errSeqConflict:
			// The collector lost our session (restart, missed batch):
			// re-register and replay the whole log. Dedupe by
			// (table, index) makes the replay idempotent.
			if c.hello() == nil {
				c.mu.Lock()
				c.pushed = 0
				c.mu.Unlock()
			}
		default:
			if closed {
				return // draining against a dead collector: give up
			}
			time.Sleep(backoff)
			if backoff < 2*time.Second {
				backoff *= 2
			}
		}
	}
}

// errSeqConflict marks a 409 push response: session state mismatch,
// recoverable by hello + full replay.
var errSeqConflict = fmt.Errorf("collect: push sequence conflict")

// push ships one batch of records as JSONL at the given sequence.
func (c *Client) push(seq int, batch []record) error {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, rec := range batch {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	q := url.Values{
		"shard": {strconv.Itoa(c.shard.Index)},
		"seq":   {strconv.Itoa(seq)},
	}
	resp, err := c.hc.Post(c.base+"/v1/push?"+q.Encode(), "application/jsonl", &body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return errSeqConflict
	default:
		return fmt.Errorf("collect: push: %s", resp.Status)
	}
}

// ForeignMetric implements experiments.MetricExchange: it long-polls
// the collector for a point another shard owns. ok=false on any
// failure or timeout; the engine then evaluates the point locally.
func (c *Client) ForeignMetric(table string, index int) (float64, bool) {
	c.mu.Lock()
	down := c.down
	c.mu.Unlock()
	if down {
		return 0, false
	}
	// Nudge the pusher so our own freshly-emitted metrics reach the
	// collector while we wait on a peer's.
	select {
	case c.kick <- struct{}{}:
	default:
	}
	deadline := time.Now().Add(c.MetricWait)
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return 0, false
		}
		wait := 2 * time.Second
		if wait > remaining {
			wait = remaining
		}
		q := url.Values{
			"table":   {table},
			"index":   {strconv.Itoa(index)},
			"wait_ms": {strconv.Itoa(int(wait / time.Millisecond))},
		}
		resp, err := c.hc.Get(c.base + "/v1/metric?" + q.Encode())
		if err != nil {
			return 0, false
		}
		if resp.StatusCode == http.StatusOK {
			var out struct {
				Metric float64 `json:"metric"`
			}
			err := json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				return 0, false
			}
			return out.Metric, true
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			return 0, false
		}
	}
}

// Close drains the push log (bounded by DrainWait), reports this shard
// done to the collector, and stops the pusher. A down client closes
// immediately — the journal already holds everything.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	down := c.down
	remaining := len(c.log) - c.pushed
	c.mu.Unlock()
	if down {
		return nil
	}
	if remaining > 0 {
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
	select {
	case <-c.drained:
	case <-time.After(c.DrainWait):
	}
	c.mu.Lock()
	undelivered := len(c.log) - c.pushed
	shed := c.shed
	c.mu.Unlock()
	if undelivered > 0 || shed > 0 {
		return fmt.Errorf("collect: %d records undelivered and %d shed; the collector CSV will be incomplete — merge the shard journals instead",
			undelivered, shed)
	}
	q := url.Values{"shard": {strconv.Itoa(c.shard.Index)}}
	resp, err := c.hc.Post(c.base+"/v1/done?"+q.Encode(), "text/plain", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("collect: done: %s", resp.Status)
	}
	return nil
}

// Sink returns a RowSink streaming one table to the collector, tagging
// its declaration with the canonical output file stem (WriteTables
// writes <fileStem>.csv). Compose it into the experiment's MultiSink
// next to the CSV/JSONL/journal sinks.
func (c *Client) Sink(fileStem string) *Sink {
	return &Sink{c: c, file: fileStem}
}

// Sink streams one table's rows into the client's push log. It
// implements experiments.MetricSink, so engine-emitted rows arrive with
// their global index and refinement metric; rows pushed through plain
// Row (non-engine producers like loadgen) are numbered by a local
// counter, matching the JSONL sink's convention.
type Sink struct {
	c     *Client
	file  string
	table string
	next  int
}

// Begin declares the table (with its output file stem) to the collector.
func (s *Sink) Begin(meta experiments.TableMeta) error {
	s.table = meta.Name
	s.next = 0
	s.c.append(record{Type: "table", Name: meta.Name, Note: meta.Note, Header: meta.Header, File: s.file})
	return nil
}

// Row queues one row under the next locally counted index.
func (s *Sink) Row(row []string) error {
	s.c.append(record{Type: "row", Table: s.table, Index: s.next, Row: row})
	s.next++
	return nil
}

// MetricRow queues one engine-emitted row under its global index,
// carrying the full-precision refinement metric for peers to fetch.
func (s *Sink) MetricRow(m experiments.MetricRow) error {
	rec := record{Type: "row", Table: s.table, Index: m.Index, Row: m.Row}
	if m.HasMetric {
		v := m.Metric
		rec.Metric = &v
	}
	s.c.append(rec)
	return nil
}

// End nudges the pusher so the table's tail ships promptly.
func (s *Sink) End() error {
	select {
	case s.c.kick <- struct{}{}:
	default:
	}
	return nil
}

// Package collect is the streaming results plane of sharded sweeps: an
// HTTP collector service that shards push completed rows and refinement
// metrics to as they finish, replacing the per-shard-files-plus-offline-
// merge workflow with one process that holds the canonical result set
// live. It carries two kinds of traffic:
//
//   - Rows. Every engine-emitted row (global index, payload, optional
//     refinement metric) is appended to the shard's local record log and
//     pushed in the background; the collector dedupes by (table, index)
//     and writes the canonical CSV files once every shard reports done —
//     byte-identical to a single-process run.
//
//   - Metrics. A shard refining adaptively needs the metrics of points
//     other shards own. Client.ForeignMetric long-polls the collector,
//     which answers as soon as the owning shard's push lands, so each
//     shard simulates only its owned points per refinement round
//     (O(total/N) instead of O(total) simulations per shard).
//
// The transport is JSONL over HTTP with per-shard sequence numbers
// within a session: a reconnecting shard re-registers via /v1/hello and
// replays its whole log, which the dedupe makes idempotent — a shard
// killed mid-push resumes (engine journal replay repopulates its log)
// with no duplicated and no lost rows. Exactness note: metrics cross
// the wire as JSON float64 numbers, which Go round-trips bit-exactly
// (strconv shortest representation), so refinement decisions taken on
// fetched metrics are identical to local evaluation — the collector is
// purely a compute optimization, never a correctness dependency, and
// every failure mode degrades to local evaluation plus the journal.
package collect

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"sync"
	"time"

	"streamcache/internal/experiments"
)

// record is the wire grammar, one JSON object per line. It extends the
// JSONL sink/journal line grammar ("table" and "row" records, the
// latter with the journal's optional full-precision metric) with the
// journal's metric-only checkpoint and a per-table output file stem.
type record struct {
	Type string `json:"type"` // "table" | "row" | "metric"

	// "table" fields.
	Name   string   `json:"name,omitempty"`
	Note   string   `json:"note,omitempty"`
	Header []string `json:"header,omitempty"`
	File   string   `json:"file,omitempty"` // output stem, e.g. "figure5_constant_bandwidth"

	// "row" and "metric" fields.
	Table  string   `json:"table,omitempty"`
	Index  int      `json:"index,omitempty"`
	Row    []string `json:"row,omitempty"`
	Metric *float64 `json:"metric,omitempty"`
}

// tableState is the collector's live copy of one table.
type tableState struct {
	name, note, file string
	header           []string
	rows             map[int][]string
	metrics          map[int]float64 // from rows and metric-only records alike
}

// shardState tracks one shard's push session.
type shardState struct {
	accepted int // records accepted this session; the next expected seq
	done     bool
}

// Server is the collector: an http.Handler accumulating pushed records
// and answering metric long-polls. All state is in memory; the
// canonical files are written by WriteTables once every shard is done.
type Server struct {
	mu          sync.Mutex
	cond        *sync.Cond
	fingerprint string // stamped by the first hello; later hellos must match
	expected    int    // shard count; 0 until configured or first hello
	shards      map[int]*shardState
	tables      map[string]*tableState
	done        chan struct{}
}

// NewServer builds a collector expecting the given shard count
// (0 = adopt the count announced by the first hello).
func NewServer(expectedShards int) *Server {
	s := &Server{
		expected: expectedShards,
		shards:   map[int]*shardState{},
		tables:   map[string]*tableState{},
		done:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Done is closed once every expected shard has reported done.
func (s *Server) Done() <-chan struct{} { return s.done }

// Handler returns the collector's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/hello", s.handleHello)
	mux.HandleFunc("POST /v1/push", s.handlePush)
	mux.HandleFunc("POST /v1/done", s.handleDone)
	mux.HandleFunc("GET /v1/metric", s.handleMetric)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	return mux
}

func intParam(r *http.Request, name string) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing %s", name)
	}
	return strconv.Atoi(v)
}

// handleHello registers (or re-registers) a shard, resetting its push
// session so a reconnect replays its record log from sequence zero.
func (s *Server) handleHello(w http.ResponseWriter, r *http.Request) {
	shard, err := intParam(r, "shard")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	count, err := intParam(r, "count")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fp := r.URL.Query().Get("fingerprint")

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.expected == 0 {
		s.expected = count
	}
	if count != s.expected {
		http.Error(w, fmt.Sprintf("collector expects %d shards, shard announced %d", s.expected, count), http.StatusConflict)
		return
	}
	if shard < 0 || shard >= s.expected {
		http.Error(w, fmt.Sprintf("shard %d out of range 0..%d", shard, s.expected-1), http.StatusBadRequest)
		return
	}
	if s.fingerprint == "" {
		s.fingerprint = fp
	}
	// The empty fingerprint is a wildcard: live producers (loadgen) have
	// no sweep scale. Non-empty fingerprints must agree — mixing scales
	// would silently interleave incompatible sweeps.
	if fp != "" && fp != s.fingerprint {
		http.Error(w, fmt.Sprintf("collector holds fingerprint %q, shard sent %q", s.fingerprint, fp), http.StatusConflict)
		return
	}
	s.shards[shard] = &shardState{}
	w.WriteHeader(http.StatusOK)
}

// handlePush accepts a batch of JSONL records at the shard's next
// sequence number. Batches at or below the accepted sequence replay
// records the dedupe already holds (idempotent); a batch beyond it
// means lost traffic, answered with 409 so the client re-hellos and
// replays its whole log.
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	shard, err := intParam(r, "shard")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seq, err := intParam(r, "seq")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var recs []record
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			http.Error(w, fmt.Sprintf("corrupt record: %v", err), http.StatusBadRequest)
			return
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.shards[shard]
	if ss == nil {
		http.Error(w, "unknown shard: hello first", http.StatusConflict)
		return
	}
	if seq > ss.accepted {
		http.Error(w, fmt.Sprintf("sequence gap: got %d, accepted %d", seq, ss.accepted), http.StatusConflict)
		return
	}
	for _, rec := range recs {
		if err := s.apply(rec); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
	}
	if end := seq + len(recs); end > ss.accepted {
		ss.accepted = end
	}
	s.cond.Broadcast()
	w.WriteHeader(http.StatusOK)
}

// apply folds one record into the live table set. Callers hold s.mu.
// Replayed records are recognized by key and skipped, which is what
// makes whole-log replay after a reconnect safe.
func (s *Server) apply(rec record) error {
	switch rec.Type {
	case "table":
		t := s.tables[rec.Name]
		if t == nil {
			t = &tableState{name: rec.Name, rows: map[int][]string{}, metrics: map[int]float64{}}
			s.tables[rec.Name] = t
		}
		if t.header != nil && !slices.Equal(t.header, rec.Header) {
			return fmt.Errorf("table %q re-declared with a different header", rec.Name)
		}
		t.header, t.note = rec.Header, rec.Note
		if rec.File != "" {
			t.file = rec.File
		}
		return nil
	case "row":
		t := s.tables[rec.Table]
		if t == nil {
			return fmt.Errorf("row for undeclared table %q", rec.Table)
		}
		if _, ok := t.rows[rec.Index]; !ok {
			t.rows[rec.Index] = rec.Row
			if rec.Metric != nil {
				t.metrics[rec.Index] = *rec.Metric
			}
		}
		return nil
	case "metric":
		t := s.tables[rec.Table]
		if t == nil {
			return fmt.Errorf("metric for undeclared table %q", rec.Table)
		}
		if _, ok := t.metrics[rec.Index]; !ok {
			t.metrics[rec.Index] = *rec.Metric
		}
		return nil
	default:
		return fmt.Errorf("unknown record type %q", rec.Type)
	}
}

// handleDone marks a shard finished; when the last expected shard
// reports, Done() closes.
func (s *Server) handleDone(w http.ResponseWriter, r *http.Request) {
	shard, err := intParam(r, "shard")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ss := s.shards[shard]
	if ss == nil {
		http.Error(w, "unknown shard: hello first", http.StatusConflict)
		return
	}
	ss.done = true
	if s.expected > 0 && len(s.shards) == s.expected {
		all := true
		for _, st := range s.shards {
			all = all && st.done
		}
		if all {
			select {
			case <-s.done:
			default:
				close(s.done)
			}
		}
	}
	w.WriteHeader(http.StatusOK)
}

// handleMetric answers one metric long-poll: it blocks up to wait_ms
// for the keyed metric to arrive (from the owning shard's push),
// returning 204 on timeout. The requesting shard falls back to local
// evaluation on timeout, so a slow or dead peer costs time, never
// correctness.
func (s *Server) handleMetric(w http.ResponseWriter, r *http.Request) {
	table := r.URL.Query().Get("table")
	index, err := intParam(r, "index")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	waitMS, _ := strconv.Atoi(r.URL.Query().Get("wait_ms"))
	if waitMS < 0 {
		waitMS = 0
	}
	if waitMS > 30_000 {
		waitMS = 30_000
	}
	m, ok := s.waitMetric(table, index, time.Duration(waitMS)*time.Millisecond)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Metric float64 `json:"metric"`
	}{m})
}

// waitMetric blocks until the metric at (table, index) is known or wait
// elapses.
func (s *Server) waitMetric(table string, index int, wait time.Duration) (float64, bool) {
	deadline := time.Now().Add(wait)
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := s.tables[table]; t != nil {
			if m, ok := t.metrics[index]; ok {
				return m, true
			}
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return 0, false
		}
		timer := time.AfterFunc(remaining, s.cond.Broadcast)
		s.cond.Wait()
		timer.Stop()
	}
}

// statusTable is one table's live summary in /v1/status.
type statusTable struct {
	Name string `json:"name"`
	File string `json:"file,omitempty"`
	Rows int    `json:"rows"`
	Gaps int    `json:"gaps"` // indexes missing below the highest seen
}

// handleStatus reports shard sessions and per-table progress.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	type shardStatus struct {
		Shard    int  `json:"shard"`
		Accepted int  `json:"accepted"`
		Done     bool `json:"done"`
	}
	var out struct {
		Expected int           `json:"expected_shards"`
		Shards   []shardStatus `json:"shards"`
		Tables   []statusTable `json:"tables"`
	}
	out.Expected = s.expected
	for i, ss := range s.shards {
		out.Shards = append(out.Shards, shardStatus{Shard: i, Accepted: ss.accepted, Done: ss.done})
	}
	for _, t := range s.tables {
		st := statusTable{Name: t.name, File: t.file, Rows: len(t.rows)}
		max := -1
		for i := range t.rows {
			if i > max {
				max = i
			}
		}
		st.Gaps = max + 1 - len(t.rows)
		out.Tables = append(out.Tables, st)
	}
	s.mu.Unlock()
	slices.SortFunc(out.Shards, func(a, b shardStatus) int { return a.Shard - b.Shard })
	slices.SortFunc(out.Tables, func(a, b statusTable) int {
		if a.Name < b.Name {
			return -1
		}
		if a.Name > b.Name {
			return 1
		}
		return 0
	})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// WriteTables renders every collected table to dir as its canonical CSV
// — the same preamble, header, and index-ordered rows a single-process
// sweep streams, so the bytes are identical. A table with index gaps
// (a shard shed rows or never finished) is refused, not silently
// truncated: the caller falls back to the per-shard-journal merge.
func (s *Server) WriteTables(dir string) error {
	s.mu.Lock()
	ready := s.expected > 0 && len(s.shards) == s.expected
	for _, ss := range s.shards {
		ready = ready && ss.done
	}
	if !ready {
		// A shard that shed rows never reports done (its Close errors),
		// and its missing tail is a contiguous prefix cut — invisible to
		// the per-table gap check below — so done-ness is the gate.
		s.mu.Unlock()
		return fmt.Errorf("collect: not every shard has reported done; refusing to write partial tables")
	}
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	slices.Sort(names)
	s.mu.Unlock()

	for _, name := range names {
		s.mu.Lock()
		t := s.tables[name]
		idxs := make([]int, 0, len(t.rows))
		for i := range t.rows {
			idxs = append(idxs, i)
		}
		slices.Sort(idxs)
		for want, got := range idxs {
			if got != want {
				s.mu.Unlock()
				return fmt.Errorf("collect: table %q is missing row %d (holds %d rows): incomplete push, merge the shard journals instead",
					name, want, len(idxs))
			}
		}
		rows := make([][]string, len(idxs))
		for i, idx := range idxs {
			rows[i] = t.rows[idx]
		}
		meta := experiments.TableMeta{Name: t.name, Note: t.note, Header: t.header}
		file := t.file
		s.mu.Unlock()

		if file == "" {
			return fmt.Errorf("collect: table %q was declared without an output file stem", name)
		}
		f, err := os.Create(filepath.Join(dir, file+".csv"))
		if err != nil {
			return err
		}
		sink := experiments.NewCSVSink(f)
		if err := sink.Begin(meta); err != nil {
			f.Close()
			return err
		}
		for _, row := range rows {
			if err := sink.Row(row); err != nil {
				f.Close()
				return err
			}
		}
		if err := sink.End(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

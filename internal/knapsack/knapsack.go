// Package knapsack implements the optimization kernels behind the paper's
// cache-placement results. Section 2.3 shows that optimal static placement
// under known request rates is a fractional knapsack on the ratio
// lambda_i/b_i; Section 2.6's value-maximization variant is a 0/1 knapsack
// (NP-hard), for which the paper adopts a greedy density heuristic. An
// exact dynamic-programming solver over integer weights is included to
// validate the greedy on small instances.
package knapsack

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadInput reports an invalid problem instance.
var ErrBadInput = errors.New("knapsack: invalid input")

// Item is one candidate with a profit density Profit/Weight.
type Item struct {
	ID     int
	Profit float64 // total profit if fully taken
	Weight float64 // capacity consumed if fully taken
}

// Fractional solves the fractional knapsack exactly: items are taken in
// decreasing Profit/Weight order, splitting at most one item. It returns
// the fraction taken of each input item (aligned with the input slice)
// and the total profit. Items with non-positive weight and positive
// profit are taken for free; items with non-positive profit are skipped.
func Fractional(items []Item, capacity float64) ([]float64, float64, error) {
	if capacity < 0 || math.IsNaN(capacity) {
		return nil, 0, fmt.Errorf("%w: capacity=%v, want >= 0", ErrBadInput, capacity)
	}
	for _, it := range items {
		if math.IsNaN(it.Profit) || math.IsNaN(it.Weight) {
			return nil, 0, fmt.Errorf("%w: item %d has NaN field", ErrBadInput, it.ID)
		}
	}
	frac := make([]float64, len(items))
	order := make([]int, 0, len(items))
	total := 0.0
	for i, it := range items {
		if it.Profit <= 0 {
			continue
		}
		if it.Weight <= 0 {
			// Free profit: always take fully.
			frac[i] = 1
			total += it.Profit
			continue
		}
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		return ia.Profit/ia.Weight > ib.Profit/ib.Weight
	})
	remaining := capacity
	for _, i := range order {
		it := items[i]
		if remaining <= 0 {
			break
		}
		if it.Weight <= remaining {
			frac[i] = 1
			total += it.Profit
			remaining -= it.Weight
			continue
		}
		f := remaining / it.Weight
		frac[i] = f
		total += it.Profit * f
		remaining = 0
	}
	return frac, total, nil
}

// Greedy01 solves the 0/1 knapsack with the density heuristic the paper
// uses in Section 2.6: take items in decreasing Profit/Weight order,
// skipping any that no longer fit. To preserve the classic 1/2
// approximation bound it also considers the single most profitable
// fitting item and returns whichever solution is better. It returns the
// take decision per input item and the total profit.
func Greedy01(items []Item, capacity float64) ([]bool, float64, error) {
	if capacity < 0 || math.IsNaN(capacity) {
		return nil, 0, fmt.Errorf("%w: capacity=%v, want >= 0", ErrBadInput, capacity)
	}
	take := make([]bool, len(items))
	order := make([]int, 0, len(items))
	for i, it := range items {
		if math.IsNaN(it.Profit) || math.IsNaN(it.Weight) {
			return nil, 0, fmt.Errorf("%w: item %d has NaN field", ErrBadInput, it.ID)
		}
		if it.Profit <= 0 {
			continue
		}
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		da := density(ia)
		db := density(ib)
		return da > db
	})
	remaining := capacity
	total := 0.0
	for _, i := range order {
		w := items[i].Weight
		if w < 0 {
			w = 0
		}
		if w <= remaining {
			take[i] = true
			total += items[i].Profit
			remaining -= w
		}
	}
	// Compare against the best single fitting item (restores the 1/2 bound).
	bestSingle, bestProfit := -1, 0.0
	for i, it := range items {
		w := it.Weight
		if w < 0 {
			w = 0
		}
		if it.Profit > bestProfit && w <= capacity {
			bestSingle, bestProfit = i, it.Profit
		}
	}
	if bestSingle >= 0 && bestProfit > total {
		for i := range take {
			take[i] = false
		}
		take[bestSingle] = true
		return take, bestProfit, nil
	}
	return take, total, nil
}

func density(it Item) float64 {
	if it.Weight <= 0 {
		return math.Inf(1)
	}
	return it.Profit / it.Weight
}

// IntItem is an integer-weight item for the exact DP solver.
type IntItem struct {
	Profit float64
	Weight int
}

// Exact01 solves the 0/1 knapsack exactly by dynamic programming over
// integer weights. Intended for validating Greedy01 on small instances;
// the table has capacity+1 entries.
func Exact01(items []IntItem, capacity int) (float64, error) {
	if capacity < 0 {
		return 0, fmt.Errorf("%w: capacity=%d, want >= 0", ErrBadInput, capacity)
	}
	for i, it := range items {
		if it.Weight < 0 {
			return 0, fmt.Errorf("%w: item %d weight=%d, want >= 0", ErrBadInput, i, it.Weight)
		}
		if math.IsNaN(it.Profit) {
			return 0, fmt.Errorf("%w: item %d has NaN profit", ErrBadInput, i)
		}
	}
	best := make([]float64, capacity+1)
	for _, it := range items {
		if it.Profit <= 0 {
			continue
		}
		for w := capacity; w >= it.Weight; w-- {
			if cand := best[w-it.Weight] + it.Profit; cand > best[w] {
				best[w] = cand
			}
		}
	}
	return best[capacity], nil
}

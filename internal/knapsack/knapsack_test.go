package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFractionalRejectsBadInput(t *testing.T) {
	if _, _, err := Fractional(nil, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, _, err := Fractional([]Item{{Profit: math.NaN(), Weight: 1}}, 1); err == nil {
		t.Error("NaN profit accepted")
	}
	if _, _, err := Fractional(nil, math.NaN()); err == nil {
		t.Error("NaN capacity accepted")
	}
}

func TestFractionalKnownInstance(t *testing.T) {
	items := []Item{
		{ID: 0, Profit: 60, Weight: 10},  // density 6
		{ID: 1, Profit: 100, Weight: 20}, // density 5
		{ID: 2, Profit: 120, Weight: 30}, // density 4
	}
	frac, total, err := Fractional(items, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Classic instance: optimum 240 with item 2 taken 2/3.
	if math.Abs(total-240) > 1e-9 {
		t.Errorf("total = %v, want 240", total)
	}
	want := []float64{1, 1, 2.0 / 3.0}
	for i := range want {
		if math.Abs(frac[i]-want[i]) > 1e-9 {
			t.Errorf("frac[%d] = %v, want %v", i, frac[i], want[i])
		}
	}
}

func TestFractionalZeroCapacity(t *testing.T) {
	items := []Item{{Profit: 10, Weight: 5}}
	frac, total, err := Fractional(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 || frac[0] != 0 {
		t.Errorf("zero capacity: total=%v frac=%v, want 0", total, frac[0])
	}
}

func TestFractionalSkipsNonPositiveProfit(t *testing.T) {
	items := []Item{
		{Profit: -5, Weight: 1},
		{Profit: 0, Weight: 1},
		{Profit: 10, Weight: 1},
	}
	frac, total, err := Fractional(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Errorf("total = %v, want 10", total)
	}
	if frac[0] != 0 || frac[1] != 0 || frac[2] != 1 {
		t.Errorf("frac = %v, want [0 0 1]", frac)
	}
}

func TestFractionalFreeItems(t *testing.T) {
	items := []Item{{Profit: 7, Weight: 0}, {Profit: 3, Weight: 5}}
	frac, total, err := Fractional(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 || frac[0] != 1 || frac[1] != 0 {
		t.Errorf("free item: total=%v frac=%v", total, frac)
	}
}

func TestFractionalCapacityLargerThanAll(t *testing.T) {
	items := []Item{{Profit: 1, Weight: 1}, {Profit: 2, Weight: 2}}
	frac, total, err := Fractional(items, 100)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || frac[0] != 1 || frac[1] != 1 {
		t.Errorf("abundant capacity: total=%v frac=%v", total, frac)
	}
}

func TestGreedy01KnownInstance(t *testing.T) {
	items := []Item{
		{Profit: 60, Weight: 10},
		{Profit: 100, Weight: 20},
		{Profit: 120, Weight: 30},
	}
	take, total, err := Greedy01(items, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Density greedy takes items 0 and 1 (160); optimum is 1+2 (220).
	// The greedy answer must be at least half of the optimum.
	if total < 110 {
		t.Errorf("greedy total = %v, want >= 110 (half of 220)", total)
	}
	count := 0
	weight := 0.0
	for i, tk := range take {
		if tk {
			count++
			weight += items[i].Weight
		}
	}
	if weight > 50 {
		t.Errorf("greedy overfills: weight %v > 50", weight)
	}
	if count == 0 {
		t.Error("greedy took nothing")
	}
}

func TestGreedy01PrefersBigSingleItem(t *testing.T) {
	// Density greedy alone would take the small item and miss the big one.
	items := []Item{
		{Profit: 2, Weight: 1},    // density 2
		{Profit: 100, Weight: 99}, // density ~1.01
	}
	take, total, err := Greedy01(items, 99)
	if err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Errorf("total = %v, want 100 (single-item fallback)", total)
	}
	if !take[1] || take[0] {
		t.Errorf("take = %v, want [false true]", take)
	}
}

func TestGreedy01RejectsBadInput(t *testing.T) {
	if _, _, err := Greedy01(nil, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, _, err := Greedy01([]Item{{Profit: 1, Weight: math.NaN()}}, 1); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestExact01KnownInstance(t *testing.T) {
	items := []IntItem{
		{Profit: 60, Weight: 10},
		{Profit: 100, Weight: 20},
		{Profit: 120, Weight: 30},
	}
	got, err := Exact01(items, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 220 {
		t.Errorf("Exact01 = %v, want 220", got)
	}
}

func TestExact01Errors(t *testing.T) {
	if _, err := Exact01(nil, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := Exact01([]IntItem{{Profit: 1, Weight: -2}}, 5); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := Exact01([]IntItem{{Profit: math.NaN(), Weight: 2}}, 5); err == nil {
		t.Error("NaN profit accepted")
	}
}

func TestExact01EmptyAndZeroCapacity(t *testing.T) {
	got, err := Exact01(nil, 10)
	if err != nil || got != 0 {
		t.Errorf("empty: got %v err %v", got, err)
	}
	got, err = Exact01([]IntItem{{Profit: 5, Weight: 1}}, 0)
	if err != nil || got != 0 {
		t.Errorf("zero capacity: got %v err %v", got, err)
	}
	got, err = Exact01([]IntItem{{Profit: 5, Weight: 0}}, 0)
	if err != nil || got != 5 {
		t.Errorf("zero-weight item: got %v err %v", got, err)
	}
}

// randomInstance builds a random integer-weight instance usable by all
// three solvers.
func randomInstance(rng *rand.Rand) ([]Item, []IntItem, int) {
	n := rng.Intn(12) + 1
	items := make([]Item, n)
	intItems := make([]IntItem, n)
	for i := 0; i < n; i++ {
		w := rng.Intn(20) + 1
		p := float64(rng.Intn(100) + 1)
		items[i] = Item{ID: i, Profit: p, Weight: float64(w)}
		intItems[i] = IntItem{Profit: p, Weight: w}
	}
	capacity := rng.Intn(60) + 1
	return items, intItems, capacity
}

func TestFractionalDominatesExactProperty(t *testing.T) {
	// The fractional relaxation is always >= the 0/1 optimum.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items, intItems, capacity := randomInstance(rng)
		_, fracTotal, err := Fractional(items, float64(capacity))
		if err != nil {
			return false
		}
		exact, err := Exact01(intItems, capacity)
		if err != nil {
			return false
		}
		return fracTotal >= exact-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreedyWithinHalfOfExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items, intItems, capacity := randomInstance(rng)
		_, greedyTotal, err := Greedy01(items, float64(capacity))
		if err != nil {
			return false
		}
		exact, err := Exact01(intItems, capacity)
		if err != nil {
			return false
		}
		return greedyTotal >= exact/2-1e-9 && greedyTotal <= exact+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFractionalRespectsCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items, _, capacity := randomInstance(rng)
		frac, _, err := Fractional(items, float64(capacity))
		if err != nil {
			return false
		}
		used := 0.0
		for i, f := range frac {
			if f < 0 || f > 1+1e-12 {
				return false
			}
			used += f * items[i].Weight
		}
		return used <= float64(capacity)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreedyRespectsCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items, _, capacity := randomInstance(rng)
		take, _, err := Greedy01(items, float64(capacity))
		if err != nil {
			return false
		}
		used := 0.0
		for i, tk := range take {
			if tk {
				used += items[i].Weight
			}
		}
		return used <= float64(capacity)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFractionalAtMostOneSplitItemProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		items, _, capacity := randomInstance(rng)
		frac, _, err := Fractional(items, float64(capacity))
		if err != nil {
			return false
		}
		split := 0
		for _, f := range frac {
			if f > 1e-12 && f < 1-1e-12 {
				split++
			}
		}
		return split <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

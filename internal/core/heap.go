package core

// entry is the cache's bookkeeping for one (partially) cached object.
type entry struct {
	obj        Object
	bytes      int64   // cached prefix size
	utility    float64 // current priority key
	lastAccess float64 // tiebreaker: older entries evicted first
	heapIdx    int
}

// entryHeap is a min-heap on (utility, lastAccess) implementing
// container/heap.Interface; the cheapest-to-evict entry sits at the root.
// Heap maintenance is O(log n) per access, matching the cost stated in
// Section 2.4.
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }

func (h entryHeap) Less(i, j int) bool {
	if h[i].utility != h[j].utility {
		return h[i].utility < h[j].utility
	}
	return h[i].lastAccess < h[j].lastAccess
}

func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}

// Push appends x; used only through container/heap.
func (h *entryHeap) Push(x any) {
	e := x.(*entry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}

// Pop removes the last element; used only through container/heap.
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.heapIdx = -1
	*h = old[:n-1]
	return e
}

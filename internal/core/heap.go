package core

// entry is the cache's bookkeeping for one (partially) cached object,
// stored by value in the ID-indexed table (Cache.ents). bytes > 0 marks
// a cached object; the zero value is "never cached".
type entry struct {
	obj        Object
	bytes      int64   // cached prefix size; 0 = not cached
	utility    float64 // current priority key
	lastAccess float64 // tiebreaker: older entries evicted first
	heapIdx    int32   // position in Cache.heap while cached
}

// The eviction queue is a specialized min-heap of object IDs ordered by
// (utility, lastAccess): the cheapest-to-evict entry sits at the root,
// and maintenance is O(log n) per access, matching the cost stated in
// Section 2.4. Compared with container/heap this stores concrete int32
// IDs — no `any` boxing, no interface dispatch, no allocation per
// push/pop — and compares through the dense entry table.

// entryLess reports whether entry a evicts before entry b.
//mediavet:hotpath
func (c *Cache) entryLess(a, b int32) bool {
	ea, eb := &c.ents[a], &c.ents[b]
	if ea.utility != eb.utility {
		return ea.utility < eb.utility
	}
	return ea.lastAccess < eb.lastAccess
}

// heapSwap exchanges heap slots i and j, maintaining back-pointers.
//mediavet:hotpath
func (c *Cache) heapSwap(i, j int32) {
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.ents[c.heap[i]].heapIdx = i
	c.ents[c.heap[j]].heapIdx = j
}

// heapUp sifts the entry at heap index i toward the root.
//mediavet:hotpath
func (c *Cache) heapUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.entryLess(c.heap[i], c.heap[parent]) {
			break
		}
		c.heapSwap(i, parent)
		i = parent
	}
}

// heapDown sifts the entry at heap index i toward the leaves, returning
// whether it moved.
//mediavet:hotpath
func (c *Cache) heapDown(i int32) bool {
	start := i
	n := int32(len(c.heap))
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && c.entryLess(c.heap[right], c.heap[left]) {
			least = right
		}
		if !c.entryLess(c.heap[least], c.heap[i]) {
			break
		}
		c.heapSwap(i, least)
		i = least
	}
	return i > start
}

// heapPush appends object id to the heap and restores order.
//mediavet:hotpath
func (c *Cache) heapPush(id int) {
	i := int32(len(c.heap))
	c.ents[id].heapIdx = i
	c.heap = append(c.heap, int32(id))
	c.heapUp(i)
}

// heapFix restores order after the entry at heap index i changed keys.
//mediavet:hotpath
func (c *Cache) heapFix(i int32) {
	if !c.heapDown(i) {
		c.heapUp(i)
	}
}

// heapRemove deletes the entry at heap index i.
//mediavet:hotpath
func (c *Cache) heapRemove(i int32) {
	n := int32(len(c.heap)) - 1
	id := c.heap[i]
	if i != n {
		c.heapSwap(i, n)
	}
	c.heap = c.heap[:n]
	c.ents[id].heapIdx = -1
	if i != n {
		c.heapFix(i)
	}
}

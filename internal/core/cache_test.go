package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"streamcache/internal/units"
)

// smallObject returns an object with the given size in KB, 100s duration.
func smallObject(id int, sizeKB int64) Object {
	size := sizeKB * units.KB
	return Object{ID: id, Duration: 100, Rate: float64(size) / 100, Size: size, Value: 1}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, NewIF()); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(100, nil); err == nil {
		t.Error("nil policy accepted")
	}
	c, err := New(0, NewIF())
	if err != nil {
		t.Fatalf("zero capacity rejected: %v", err)
	}
	if c.Capacity() != 0 {
		t.Errorf("Capacity() = %d, want 0", c.Capacity())
	}
}

func TestAccessMissThenHit(t *testing.T) {
	c, err := New(1000*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	obj := smallObject(1, 100)
	res := c.Access(obj, 0, 1)
	if res.HitBytes != 0 {
		t.Errorf("first access HitBytes = %d, want 0", res.HitBytes)
	}
	if res.CachedAfter != obj.Size {
		t.Errorf("CachedAfter = %d, want %d (whole object fits)", res.CachedAfter, obj.Size)
	}
	res = c.Access(obj, 0, 2)
	if res.HitBytes != obj.Size {
		t.Errorf("second access HitBytes = %d, want %d", res.HitBytes, obj.Size)
	}
	if c.Stats(1).Freq != 2 {
		t.Errorf("Freq = %d, want 2", c.Stats(1).Freq)
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestZeroCapacityNeverCaches(t *testing.T) {
	c, err := New(0, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	obj := smallObject(1, 10)
	for i := 0; i < 5; i++ {
		res := c.Access(obj, 0, float64(i))
		if res.CachedAfter != 0 || res.HitBytes != 0 {
			t.Fatalf("zero-capacity cache stored bytes: %+v", res)
		}
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Errorf("Used/Len = %d/%d, want 0/0", c.Used(), c.Len())
	}
}

func TestUsedNeverExceedsCapacity(t *testing.T) {
	c, err := New(250*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		c.Access(smallObject(i, 100), 0, float64(i))
		if c.Used() > c.Capacity() {
			t.Fatalf("Used %d > Capacity %d", c.Used(), c.Capacity())
		}
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestEvictionPrefersLowUtility(t *testing.T) {
	// Capacity for one object only. Object A accessed 3 times, object B
	// once: B must not evict A.
	c, err := New(100*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	a, b := smallObject(1, 100), smallObject(2, 100)
	c.Access(a, 0, 1)
	c.Access(a, 0, 2)
	c.Access(a, 0, 3)
	res := c.Access(b, 0, 4)
	if res.CachedAfter != 0 {
		t.Errorf("cold object displaced hot object: CachedAfter = %d", res.CachedAfter)
	}
	if c.CachedBytes(1) != a.Size {
		t.Errorf("hot object lost bytes: %d", c.CachedBytes(1))
	}
	// After B becomes hotter (4 accesses total), it evicts A.
	for i := 5; i <= 8; i++ {
		c.Access(b, 0, float64(i))
	}
	if c.CachedBytes(2) == 0 {
		t.Error("hot object B never admitted")
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPartialEvictionShrinksVictim(t *testing.T) {
	// PB caching: victim loses only the bytes needed, not its whole
	// prefix.
	c, err := New(150*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	a := smallObject(1, 100)
	b := smallObject(2, 100)
	c.Access(a, 0, 1) // A fully cached (100 KB), 50 KB free
	c.Access(b, 0, 2)
	c.Access(b, 0, 3) // B hotter: wants 100 KB, needs 50 KB from A
	if got := c.CachedBytes(2); got != b.Size {
		t.Errorf("B cached %d, want %d", got, b.Size)
	}
	if got := c.CachedBytes(1); got != 50*units.KB {
		t.Errorf("A cached %d after partial eviction, want 50 KB", got)
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWholeObjectEvictionRemovesVictim(t *testing.T) {
	c, err := New(150*units.KB, NewIF(), WithWholeObjectEviction(true))
	if err != nil {
		t.Fatal(err)
	}
	a := smallObject(1, 100)
	b := smallObject(2, 100)
	c.Access(a, 0, 1)
	c.Access(b, 0, 2)
	c.Access(b, 0, 3)
	if got := c.CachedBytes(1); got != 0 {
		t.Errorf("A cached %d after whole-object eviction, want 0", got)
	}
	if got := c.CachedBytes(2); got != b.Size {
		t.Errorf("B cached %d, want %d", got, b.Size)
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPBShrinksWhenBandwidthImproves(t *testing.T) {
	c, err := New(1000*units.KB, NewPB())
	if err != nil {
		t.Fatal(err)
	}
	obj := smallObject(1, 100) // rate = 1 KB/s... actually size/duration
	lowBW := obj.Rate / 2
	c.Access(obj, lowBW, 1)
	wantLow := int64((obj.Rate - lowBW) * obj.Duration)
	if got := c.CachedBytes(1); got != wantLow {
		t.Fatalf("cached %d at low bw, want %d", got, wantLow)
	}
	// Bandwidth recovers: r <= b, PB's target drops to 0 and the prefix
	// is released.
	c.Access(obj, obj.Rate*2, 2)
	if got := c.CachedBytes(1); got != 0 {
		t.Errorf("cached %d after bandwidth recovery, want 0", got)
	}
	if c.Used() != 0 {
		t.Errorf("Used = %d, want 0", c.Used())
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestPBCachesOnlyDeficit(t *testing.T) {
	c, err := New(1000*units.KB, NewPB())
	if err != nil {
		t.Fatal(err)
	}
	obj := smallObject(1, 400)
	bw := obj.Rate * 0.75 // deficit = 25% of size
	c.Access(obj, bw, 1)
	want := int64((obj.Rate - bw) * obj.Duration)
	if got := c.CachedBytes(1); got != want {
		t.Errorf("PB cached %d, want deficit %d", got, want)
	}
	if got := c.CachedBytes(1); got >= obj.Size {
		t.Error("PB cached the whole object")
	}
}

func TestIBCachesWholeObject(t *testing.T) {
	c, err := New(1000*units.KB, NewIB())
	if err != nil {
		t.Fatal(err)
	}
	obj := smallObject(1, 400)
	c.Access(obj, obj.Rate*0.75, 1)
	if got := c.CachedBytes(1); got != obj.Size {
		t.Errorf("IB cached %d, want whole object %d", got, obj.Size)
	}
}

func TestLRUEvictsOldest(t *testing.T) {
	c, err := New(200*units.KB, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := smallObject(1, 100), smallObject(2, 100), smallObject(3, 100)
	c.Access(a, 0, 1)
	c.Access(b, 0, 2)
	c.Access(a, 0, 3) // refresh A
	c.Access(d, 0, 4) // must evict B (oldest)
	if c.CachedBytes(2) != 0 {
		t.Errorf("LRU kept the oldest entry B (%d bytes)", c.CachedBytes(2))
	}
	if c.CachedBytes(1) == 0 {
		t.Error("LRU evicted the recently used entry A")
	}
	if c.CachedBytes(3) == 0 {
		t.Error("LRU did not admit the new entry")
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestObjectLargerThanCache(t *testing.T) {
	c, err := New(50*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	obj := smallObject(1, 100)
	res := c.Access(obj, 0, 1)
	// The cache can hold only half the object; it caches what it can.
	if res.CachedAfter != 50*units.KB {
		t.Errorf("CachedAfter = %d, want 50 KB", res.CachedAfter)
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestContentsSortedByUtility(t *testing.T) {
	c, err := New(1000*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	a, b := smallObject(1, 10), smallObject(2, 10)
	c.Access(a, 0, 1)
	c.Access(b, 0, 2)
	c.Access(b, 0, 3)
	contents := c.Contents()
	if len(contents) != 2 {
		t.Fatalf("len(Contents) = %d, want 2", len(contents))
	}
	if contents[0].Object.ID != 2 {
		t.Errorf("hottest object = %d, want 2", contents[0].Object.ID)
	}
	if contents[0].Utility < contents[1].Utility {
		t.Error("Contents not sorted by descending utility")
	}
}

func TestStatsForUnknownObject(t *testing.T) {
	c, err := New(100, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(42); st.Freq != 0 || st.LastAccess != 0 {
		t.Errorf("Stats(unknown) = %+v, want zero", st)
	}
	if c.CachedBytes(42) != 0 {
		t.Error("CachedBytes(unknown) != 0")
	}
}

func TestPolicyAccessor(t *testing.T) {
	p := NewPB()
	c, err := New(100, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Policy() != p {
		t.Error("Policy() did not return the configured policy")
	}
}

func TestFrequencyTrackedForUncachedObjects(t *testing.T) {
	// Section 2.4's replacement needs frequency estimates even for
	// objects currently outside the cache.
	c, err := New(100*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := smallObject(1, 100), smallObject(2, 100)
	c.Access(hot, 0, 1)
	c.Access(hot, 0, 2)
	// cold rejected (utility 1 < 2) but its stats must accumulate.
	c.Access(cold, 0, 3)
	c.Access(cold, 0, 4)
	c.Access(cold, 0, 5)
	if got := c.Stats(2).Freq; got != 3 {
		t.Errorf("uncached object freq = %d, want 3", got)
	}
	// Now cold (freq 3) must displace hot (freq 2).
	if got := c.CachedBytes(2); got != cold.Size {
		t.Errorf("cold object cached %d, want %d after overtaking", got, cold.Size)
	}
}

func TestAccessInvariantsProperty(t *testing.T) {
	policies := []func() Policy{
		NewIF, NewPB, NewIB, NewPBV, NewIBV, NewLRU, NewLFU,
	}
	f := func(seed int64, policyIdx uint8, capKB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p := policies[int(policyIdx)%len(policies)]()
		c, err := New(int64(capKB)*units.KB, p)
		if err != nil {
			return false
		}
		objs := make([]Object, 20)
		for i := range objs {
			objs[i] = smallObject(i, int64(rng.Intn(200)+1))
		}
		for step := 0; step < 300; step++ {
			obj := objs[rng.Intn(len(objs))]
			bw := float64(rng.Intn(int(obj.Rate*2)) + 1)
			res := c.Access(obj, bw, float64(step))
			if res.HitBytes < 0 || res.CachedAfter < 0 || res.CachedAfter > obj.Size {
				return false
			}
			if res.Target < 0 || res.Target > obj.Size {
				return false
			}
		}
		return c.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHitBytesNeverExceedPriorState(t *testing.T) {
	// HitBytes must reflect the prefix before this access mutates state.
	c, err := New(500*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	obj := smallObject(1, 100)
	res1 := c.Access(obj, 0, 1)
	if res1.HitBytes != 0 {
		t.Errorf("first access HitBytes = %d, want 0", res1.HitBytes)
	}
	res2 := c.Access(obj, 0, 2)
	if res2.HitBytes != res1.CachedAfter {
		t.Errorf("second access HitBytes = %d, want %d", res2.HitBytes, res1.CachedAfter)
	}
}

func TestVictimsReported(t *testing.T) {
	c, err := New(150*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	a, b := smallObject(1, 100), smallObject(2, 100)
	c.Access(a, 0, 1)
	c.Access(b, 0, 2)
	res := c.Access(b, 0, 3) // B (freq 2) takes 50 KB from A (freq 1)
	if len(res.Victims) != 1 {
		t.Fatalf("Victims = %v, want one entry", res.Victims)
	}
	if res.Victims[0].ID != 1 || res.Victims[0].Bytes != 50*units.KB {
		t.Errorf("Victim = %+v, want {1, 50KB}", res.Victims[0])
	}
	if res.EvictedBytes != 50*units.KB {
		t.Errorf("EvictedBytes = %d, want 50KB", res.EvictedBytes)
	}
}

func TestVictimsEmptyWithoutEviction(t *testing.T) {
	c, err := New(500*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	res := c.Access(smallObject(1, 100), 0, 1)
	if len(res.Victims) != 0 || res.EvictedBytes != 0 {
		t.Errorf("unexpected evictions: %+v", res)
	}
}

func TestTruncate(t *testing.T) {
	c, err := New(500*units.KB, NewIF())
	if err != nil {
		t.Fatal(err)
	}
	obj := smallObject(1, 100)
	c.Access(obj, 0, 1)
	c.Truncate(1, 30*units.KB)
	if got := c.CachedBytes(1); got != 30*units.KB {
		t.Errorf("CachedBytes = %d, want 30KB", got)
	}
	if got := c.Used(); got != 30*units.KB {
		t.Errorf("Used = %d, want 30KB", got)
	}
	// Truncating to a larger size is a no-op.
	c.Truncate(1, 90*units.KB)
	if got := c.CachedBytes(1); got != 30*units.KB {
		t.Errorf("CachedBytes after grow-truncate = %d, want 30KB", got)
	}
	// Truncate to zero removes the entry.
	c.Truncate(1, 0)
	if c.Len() != 0 || c.Used() != 0 {
		t.Errorf("Len/Used = %d/%d after zero truncate, want 0/0", c.Len(), c.Used())
	}
	// Unknown object and negative size are harmless.
	c.Truncate(99, 10)
	c.Truncate(1, -5)
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

// TestResetMatchesFresh drives a pooled-and-Reset cache and a freshly
// constructed one through the same randomized access sequence and
// requires identical observable behavior — the contract that lets the
// sweep engine reuse cache tables across runs without perturbing
// results.
func TestResetMatchesFresh(t *testing.T) {
	const nObjects = 48
	objs := make([]Object, nObjects)
	for i := range objs {
		objs[i] = smallObject(i, int64(i%12+1)*16)
	}
	// Dirty a cache under one policy, then Reset it into the test config.
	pooled, err := New(512*units.KB, NewIB(), WithExpectedObjects(nObjects))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 300; i++ {
		o := objs[rng.Intn(nObjects)]
		pooled.Access(o, o.Rate/2, float64(i))
	}
	if err := pooled.Reset(256*units.KB, NewLRU(), WithExpectedObjects(nObjects)); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(256*units.KB, NewLRU(), WithExpectedObjects(nObjects))
	if err != nil {
		t.Fatal(err)
	}

	if pooled.Used() != 0 || pooled.Len() != 0 {
		t.Fatalf("after Reset: used=%d len=%d, want 0/0", pooled.Used(), pooled.Len())
	}
	rng = rand.New(rand.NewSource(22))
	for i := 0; i < 600; i++ {
		o := objs[rng.Intn(nObjects)]
		bw := o.Rate * (0.25 + rng.Float64())
		now := float64(i)
		a := pooled.Access(o, bw, now)
		b := fresh.Access(o, bw, now)
		if a.HitBytes != b.HitBytes || a.CachedAfter != b.CachedAfter ||
			a.Target != b.Target || a.EvictedBytes != b.EvictedBytes {
			t.Fatalf("access %d diverged: reset=%+v fresh=%+v", i, a, b)
		}
	}
	if pooled.Used() != fresh.Used() || pooled.Len() != fresh.Len() {
		t.Fatalf("final state diverged: reset used=%d len=%d, fresh used=%d len=%d",
			pooled.Used(), pooled.Len(), fresh.Used(), fresh.Len())
	}
	if err := pooled.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResetValidation(t *testing.T) {
	c, err := New(units.MB, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(-1, NewLRU()); err == nil {
		t.Error("negative capacity accepted")
	}
	if err := c.Reset(units.MB, nil); err == nil {
		t.Error("nil policy accepted")
	}
}

// TestResetClearsWholeEviction ensures option state does not leak from
// the pre-Reset configuration.
func TestResetClearsWholeEviction(t *testing.T) {
	c, err := New(96*units.KB, NewLRU(), WithWholeObjectEviction(true))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reset(96*units.KB, NewLRU()); err != nil {
		t.Fatal(err)
	}
	// With byte-granular (default) eviction, admitting a second object
	// shrinks the victim instead of removing it entirely.
	c.Access(smallObject(0, 64), 1, 0)
	c.Access(smallObject(1, 64), 1, 1)
	c.Access(smallObject(1, 64), 1, 2)
	if got := c.CachedBytes(0); got == 0 {
		t.Error("whole-object eviction leaked through Reset: victim fully removed")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

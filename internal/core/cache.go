package core

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
)

// ErrBadCache reports an invalid cache construction.
var ErrBadCache = errors.New("core: invalid cache")

// Option configures optional cache behavior.
type Option interface {
	apply(*Cache)
}

type wholeObjectEvictionOption bool

func (o wholeObjectEvictionOption) apply(c *Cache) { c.wholeEviction = bool(o) }

// WithWholeObjectEviction makes eviction remove entire victim objects
// instead of shrinking their cached prefix byte-by-byte. Partial (byte
// granular) eviction is the default because it tracks the fractional
// knapsack optimum; the whole-object mode exists for the ablation study
// in DESIGN.md section 6.
func WithWholeObjectEviction(on bool) Option { return wholeObjectEvictionOption(on) }

type expectedObjectsOption int

func (o expectedObjectsOption) apply(c *Cache) {
	if n := int(o); n > 0 {
		c.ensure(n - 1)
		// Keep an already-large-enough heap array (a Reset cache reuses
		// its backing storage); only a fresh or undersized cache allocates.
		if cap(c.heap) < n {
			c.heap = make([]int32, 0, n)
		} else {
			c.heap = c.heap[:0]
		}
	}
}

// WithExpectedObjects pre-sizes the cache's ID-indexed tables for n
// objects (IDs 0..n-1), so the simulation hot path never pays a table
// regrowth. Purely a capacity hint: the tables still grow on demand for
// larger IDs.
func WithExpectedObjects(n int) Option { return expectedObjectsOption(n) }

// Cache is a partial-caching proxy cache: each object may occupy any
// prefix of its full size, admission and eviction are driven by the
// configured Policy's utility, and replacement uses a priority queue
// (heap) keyed by utility as described in Section 2.4.
//
// Memory layout (DESIGN.md section on the hot path): object IDs index
// dense slice-backed tables (entries and access stats), so the per-access
// cost is two slice loads instead of two map lookups, and the eviction
// heap stores plain int32 IDs ordered by a specialized comparison — no
// boxed values, no interface dispatch. IDs must therefore be small,
// non-negative and densely assigned (the workload generator's 0..N-1
// scheme); table memory grows with the largest ID seen.
type Cache struct {
	capacity      int64
	used          int64
	policy        Policy
	evictObs      EvictionObserver // non-nil iff policy observes evictions
	ents          []entry          // indexed by object ID; bytes > 0 ⇔ cached
	stats         []AccessStats    // indexed by object ID
	heap          []int32          // cached object IDs, min-heap on (utility, lastAccess)
	victims       []Victim         // scratch reused across Access calls
	wholeEviction bool
}

// New builds a cache with the given capacity in bytes and policy.
func New(capacity int64, policy Policy, opts ...Option) (*Cache, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("%w: capacity=%d, want >= 0", ErrBadCache, capacity)
	}
	if policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrBadCache)
	}
	c := &Cache{
		capacity: capacity,
		policy:   policy,
	}
	if obs, ok := policy.(EvictionObserver); ok {
		c.evictObs = obs
	}
	for _, o := range opts {
		o.apply(c)
	}
	return c, nil
}

// Reset returns the cache to the state New(capacity, policy, opts...)
// would produce while retaining the backing arrays of the ID-indexed
// tables, the heap and the victim scratch buffer. A sweep that runs many
// simulations over one object population can therefore pool caches
// across runs instead of re-growing the tables every time; the
// steady-state Reset performs zero heap allocations (pinned by an
// AllocsPerRun regression test). Behavior after Reset is exactly that of
// a freshly constructed cache: every entry, stat and counter is cleared.
func (c *Cache) Reset(capacity int64, policy Policy, opts ...Option) error {
	if capacity < 0 {
		return fmt.Errorf("%w: capacity=%d, want >= 0", ErrBadCache, capacity)
	}
	if policy == nil {
		return fmt.Errorf("%w: nil policy", ErrBadCache)
	}
	clear(c.ents)
	clear(c.stats)
	c.heap = c.heap[:0]
	c.victims = c.victims[:0]
	c.used = 0
	c.capacity = capacity
	c.policy = policy
	c.evictObs = nil
	if obs, ok := policy.(EvictionObserver); ok {
		c.evictObs = obs
	}
	c.wholeEviction = false
	for _, o := range opts {
		o.apply(c)
	}
	return nil
}

// ensure grows the ID-indexed tables to cover id. IDs outside [0, 2^31)
// panic rather than corrupt the int32-indexed heap or silently exhaust
// memory; frontends that accept external IDs (proxy.NewCatalog)
// validate the range at construction time.
//mediavet:hotpath
func (c *Cache) ensure(id int) {
	if id < 0 || int64(id) > math.MaxInt32 {
		panic(fmt.Sprintf("core: object ID %d outside [0, 2^31); dense table layout requires small non-negative IDs", id))
	}
	if id < len(c.ents) {
		return
	}
	n := id + 1
	if n < 2*len(c.ents) {
		n = 2 * len(c.ents)
	}
	ents := make([]entry, n)
	copy(ents, c.ents)
	c.ents = ents
	stats := make([]AccessStats, n)
	copy(stats, c.stats)
	c.stats = stats
}

// Victim records bytes evicted from one object during an access.
type Victim struct {
	ID    int
	Bytes int64
}

// AccessResult reports what one request observed and caused.
type AccessResult struct {
	// HitBytes is the cached prefix size when the request arrived -
	// the bytes the client could stream from the cache.
	HitBytes int64
	// CachedAfter is the cached prefix size after admission/eviction.
	CachedAfter int64
	// Target is the policy's desired prefix size for this access.
	Target int64
	// EvictedBytes counts bytes evicted from other objects to admit
	// this one.
	EvictedBytes int64
	// Victims lists which objects lost bytes (one entry per object);
	// byte-store frontends use this to release the evicted data.
	//
	// The slice aliases a per-cache scratch buffer that the next Access
	// call on the same Cache overwrites: consume it before the next
	// access (as the proxy frontend does under its lock) or copy it.
	Victims []Victim
}

// Access records a request for obj with estimated path bandwidth bw at
// logical time now, updates the object's frequency and utility, and
// grows or shrinks its cached prefix toward the policy target, evicting
// strictly-lower-utility bytes if needed.
//
// The steady-state hot path (hits and byte-granular evictions) performs
// no heap allocations; see the AllocsPerRun regression tests.
//mediavet:hotpath
func (c *Cache) Access(obj Object, bw float64, now float64) AccessResult {
	id := obj.ID
	c.ensure(id)
	st := &c.stats[id]
	st.Freq++
	st.LastAccess = now

	e := &c.ents[id]
	cached := e.bytes > 0
	res := AccessResult{}
	if cached {
		res.HitBytes = e.bytes
	}

	target := c.policy.Target(obj, bw)
	if target > obj.Size {
		target = obj.Size
	}
	if target < 0 {
		target = 0
	}
	res.Target = target
	utility := c.policy.Utility(*st, obj, bw)

	// Refresh the existing entry's priority before any space decision.
	if cached {
		e.utility = utility
		e.lastAccess = now
		c.heapFix(e.heapIdx)
	}

	switch {
	case cached && target < e.bytes:
		// Policy wants less than we hold (e.g. bandwidth improved):
		// release the excess immediately.
		c.shrink(int32(id), e.bytes-target)
	case target > 0:
		need := target - e.bytes // e.bytes == 0 when not cached
		if need > 0 {
			res.EvictedBytes, res.Victims = c.makeRoom(need, utility, id)
			free := c.capacity - c.used
			grant := need
			if grant > free {
				grant = free
			}
			if grant > 0 {
				if e.bytes == 0 {
					e.obj = obj
					e.utility = utility
					e.lastAccess = now
					c.heapPush(id)
				}
				e.bytes += grant
				c.used += grant
			}
		}
	}
	res.CachedAfter = e.bytes
	return res
}

// makeRoom evicts bytes from strictly-lower-utility entries until need
// bytes are free or no eligible victim remains. The requesting object
// (selfID) is never victimized. It returns the total bytes evicted and
// the per-object breakdown (backed by the reusable scratch buffer).
//mediavet:hotpath
func (c *Cache) makeRoom(need int64, utility float64, selfID int) (int64, []Victim) {
	c.victims = c.victims[:0]
	var evicted int64
	for c.capacity-c.used < need && len(c.heap) > 0 {
		vid := c.heap[0]
		v := &c.ents[vid]
		if int(vid) == selfID || v.utility >= utility {
			break // nothing strictly cheaper than the requester remains
		}
		take := v.bytes
		if !c.wholeEviction {
			shortfall := need - (c.capacity - c.used)
			if take > shortfall {
				take = shortfall
			}
		}
		c.victims = append(c.victims, Victim{ID: int(vid), Bytes: take})
		if c.evictObs != nil {
			c.evictObs.OnEvict(v.utility)
		}
		c.shrink(vid, take)
		evicted += take
	}
	return evicted, c.victims
}

// Truncate shrinks object id's cached prefix to at most bytes, releasing
// the difference. Byte-store frontends call this when they fail to
// materialize bytes the cache has already accounted for (e.g. an origin
// fetch aborts mid-relay).
//mediavet:hotpath
func (c *Cache) Truncate(id int, bytes int64) {
	if id < 0 || id >= len(c.ents) || c.ents[id].bytes == 0 {
		return
	}
	if bytes < 0 {
		bytes = 0
	}
	if e := &c.ents[id]; e.bytes > bytes {
		c.shrink(int32(id), e.bytes-bytes)
	}
}

// shrink releases take bytes from the entry of object id, removing it
// from the heap when its prefix reaches zero.
//mediavet:hotpath
func (c *Cache) shrink(id int32, take int64) {
	e := &c.ents[id]
	if take <= 0 {
		return
	}
	if take > e.bytes {
		take = e.bytes
	}
	e.bytes -= take
	c.used -= take
	if e.bytes == 0 {
		c.heapRemove(e.heapIdx)
	}
}

// CachedBytes returns the cached prefix size of object id (0 if absent).
//mediavet:hotpath
func (c *Cache) CachedBytes(id int) int64 {
	if id < 0 || id >= len(c.ents) {
		return 0
	}
	return c.ents[id].bytes
}

// Stats returns a copy of the access statistics recorded for object id.
func (c *Cache) Stats(id int) AccessStats {
	if id < 0 || id >= len(c.stats) {
		return AccessStats{}
	}
	return c.stats[id]
}

// Used returns the total cached bytes.
func (c *Cache) Used() int64 { return c.used }

// Capacity returns the configured capacity in bytes.
func (c *Cache) Capacity() int64 { return c.capacity }

// Len returns the number of (partially) cached objects.
func (c *Cache) Len() int { return len(c.heap) }

// Policy returns the configured replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Placement is a snapshot of one cached object.
type Placement struct {
	Object  Object
	Bytes   int64
	Utility float64
}

// Contents returns a snapshot of all cached objects ordered by
// descending utility (hottest first).
func (c *Cache) Contents() []Placement {
	out := make([]Placement, 0, len(c.heap))
	for _, id := range c.heap {
		e := &c.ents[id]
		out = append(out, Placement{Object: e.obj, Bytes: e.bytes, Utility: e.utility})
	}
	slices.SortFunc(out, func(a, b Placement) int {
		if a.Utility != b.Utility {
			if a.Utility > b.Utility {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.Object.ID, b.Object.ID)
	})
	return out
}

// checkInvariants verifies internal consistency; tests call it after
// mutation sequences.
func (c *Cache) checkInvariants() error {
	if c.used < 0 || c.used > c.capacity {
		return fmt.Errorf("core: used %d outside [0, %d]", c.used, c.capacity)
	}
	if len(c.ents) != len(c.stats) {
		return fmt.Errorf("core: entry table %d != stats table %d", len(c.ents), len(c.stats))
	}
	var sum int64
	var live int
	for id := range c.ents {
		e := &c.ents[id]
		if e.bytes == 0 {
			continue
		}
		live++
		if e.obj.ID != id {
			return fmt.Errorf("core: entry slot %d holds object %d", id, e.obj.ID)
		}
		if e.bytes < 0 || e.bytes > e.obj.Size {
			return fmt.Errorf("core: object %d cached bytes %d outside (0, %d]", id, e.bytes, e.obj.Size)
		}
		sum += e.bytes
		if e.heapIdx < 0 || int(e.heapIdx) >= len(c.heap) || c.heap[e.heapIdx] != int32(id) {
			return fmt.Errorf("core: object %d heap index %d inconsistent", id, e.heapIdx)
		}
	}
	if sum != c.used {
		return fmt.Errorf("core: used %d != sum of entries %d", c.used, sum)
	}
	if len(c.heap) != live {
		return fmt.Errorf("core: heap len %d != cached entries %d", len(c.heap), live)
	}
	for i := 1; i < len(c.heap); i++ {
		if parent := (i - 1) / 2; c.entryLess(c.heap[i], c.heap[parent]) {
			return fmt.Errorf("core: heap order violated at index %d", i)
		}
	}
	return nil
}

package core

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
)

// ErrBadCache reports an invalid cache construction.
var ErrBadCache = errors.New("core: invalid cache")

// Option configures optional cache behavior.
type Option interface {
	apply(*Cache)
}

type wholeObjectEvictionOption bool

func (o wholeObjectEvictionOption) apply(c *Cache) { c.wholeEviction = bool(o) }

// WithWholeObjectEviction makes eviction remove entire victim objects
// instead of shrinking their cached prefix byte-by-byte. Partial (byte
// granular) eviction is the default because it tracks the fractional
// knapsack optimum; the whole-object mode exists for the ablation study
// in DESIGN.md section 6.
func WithWholeObjectEviction(on bool) Option { return wholeObjectEvictionOption(on) }

// Cache is a partial-caching proxy cache: each object may occupy any
// prefix of its full size, admission and eviction are driven by the
// configured Policy's utility, and replacement uses a priority queue
// (heap) keyed by utility as described in Section 2.4.
type Cache struct {
	capacity      int64
	used          int64
	policy        Policy
	entries       map[int]*entry
	h             entryHeap
	stats         map[int]*AccessStats
	wholeEviction bool
}

// New builds a cache with the given capacity in bytes and policy.
func New(capacity int64, policy Policy, opts ...Option) (*Cache, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("%w: capacity=%d, want >= 0", ErrBadCache, capacity)
	}
	if policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrBadCache)
	}
	c := &Cache{
		capacity: capacity,
		policy:   policy,
		entries:  make(map[int]*entry),
		stats:    make(map[int]*AccessStats),
	}
	for _, o := range opts {
		o.apply(c)
	}
	return c, nil
}

// Victim records bytes evicted from one object during an access.
type Victim struct {
	ID    int
	Bytes int64
}

// AccessResult reports what one request observed and caused.
type AccessResult struct {
	// HitBytes is the cached prefix size when the request arrived -
	// the bytes the client could stream from the cache.
	HitBytes int64
	// CachedAfter is the cached prefix size after admission/eviction.
	CachedAfter int64
	// Target is the policy's desired prefix size for this access.
	Target int64
	// EvictedBytes counts bytes evicted from other objects to admit
	// this one.
	EvictedBytes int64
	// Victims lists which objects lost bytes (one entry per object);
	// byte-store frontends use this to release the evicted data.
	Victims []Victim
}

// Access records a request for obj with estimated path bandwidth bw at
// logical time now, updates the object's frequency and utility, and
// grows or shrinks its cached prefix toward the policy target, evicting
// strictly-lower-utility bytes if needed.
func (c *Cache) Access(obj Object, bw float64, now float64) AccessResult {
	st := c.stats[obj.ID]
	if st == nil {
		st = &AccessStats{}
		c.stats[obj.ID] = st
	}
	st.Freq++
	st.LastAccess = now

	e := c.entries[obj.ID]
	res := AccessResult{}
	if e != nil {
		res.HitBytes = e.bytes
	}

	target := c.policy.Target(obj, bw)
	if target > obj.Size {
		target = obj.Size
	}
	if target < 0 {
		target = 0
	}
	res.Target = target
	utility := c.policy.Utility(*st, obj, bw)

	// Refresh the existing entry's priority before any space decision.
	if e != nil {
		e.utility = utility
		e.lastAccess = now
		heap.Fix(&c.h, e.heapIdx)
	}

	switch {
	case e != nil && target < e.bytes:
		// Policy wants less than we hold (e.g. bandwidth improved):
		// release the excess immediately.
		c.shrink(e, e.bytes-target)
	case target > 0:
		need := target
		if e != nil {
			need = target - e.bytes
		}
		if need > 0 {
			res.EvictedBytes, res.Victims = c.makeRoom(need, utility, obj.ID)
			free := c.capacity - c.used
			grant := need
			if grant > free {
				grant = free
			}
			if grant > 0 {
				if e == nil {
					e = &entry{obj: obj, utility: utility, lastAccess: now}
					c.entries[obj.ID] = e
					heap.Push(&c.h, e)
				}
				e.bytes += grant
				c.used += grant
			}
		}
	}
	if cur := c.entries[obj.ID]; cur != nil {
		res.CachedAfter = cur.bytes
	}
	return res
}

// makeRoom evicts bytes from strictly-lower-utility entries until need
// bytes are free or no eligible victim remains. The requesting object
// (selfID) is never victimized. It returns the total bytes evicted and
// the per-object breakdown.
func (c *Cache) makeRoom(need int64, utility float64, selfID int) (int64, []Victim) {
	var (
		evicted int64
		victims []Victim
	)
	for c.capacity-c.used < need && c.h.Len() > 0 {
		victim := c.h[0]
		if victim.obj.ID == selfID || victim.utility >= utility {
			break // nothing strictly cheaper than the requester remains
		}
		take := victim.bytes
		if !c.wholeEviction {
			shortfall := need - (c.capacity - c.used)
			if take > shortfall {
				take = shortfall
			}
		}
		victims = append(victims, Victim{ID: victim.obj.ID, Bytes: take})
		if obs, ok := c.policy.(EvictionObserver); ok {
			obs.OnEvict(victim.utility)
		}
		c.shrink(victim, take)
		evicted += take
	}
	return evicted, victims
}

// Truncate shrinks object id's cached prefix to at most bytes, releasing
// the difference. Byte-store frontends call this when they fail to
// materialize bytes the cache has already accounted for (e.g. an origin
// fetch aborts mid-relay).
func (c *Cache) Truncate(id int, bytes int64) {
	e := c.entries[id]
	if e == nil {
		return
	}
	if bytes < 0 {
		bytes = 0
	}
	if e.bytes > bytes {
		c.shrink(e, e.bytes-bytes)
	}
}

// shrink releases take bytes from e, removing the entry entirely when its
// prefix reaches zero.
func (c *Cache) shrink(e *entry, take int64) {
	if take <= 0 {
		return
	}
	if take > e.bytes {
		take = e.bytes
	}
	e.bytes -= take
	c.used -= take
	if e.bytes == 0 {
		heap.Remove(&c.h, e.heapIdx)
		delete(c.entries, e.obj.ID)
	}
}

// CachedBytes returns the cached prefix size of object id (0 if absent).
func (c *Cache) CachedBytes(id int) int64 {
	if e := c.entries[id]; e != nil {
		return e.bytes
	}
	return 0
}

// Stats returns a copy of the access statistics recorded for object id.
func (c *Cache) Stats(id int) AccessStats {
	if st := c.stats[id]; st != nil {
		return *st
	}
	return AccessStats{}
}

// Used returns the total cached bytes.
func (c *Cache) Used() int64 { return c.used }

// Capacity returns the configured capacity in bytes.
func (c *Cache) Capacity() int64 { return c.capacity }

// Len returns the number of (partially) cached objects.
func (c *Cache) Len() int { return len(c.entries) }

// Policy returns the configured replacement policy.
func (c *Cache) Policy() Policy { return c.policy }

// Placement is a snapshot of one cached object.
type Placement struct {
	Object  Object
	Bytes   int64
	Utility float64
}

// Contents returns a snapshot of all cached objects ordered by
// descending utility (hottest first).
func (c *Cache) Contents() []Placement {
	out := make([]Placement, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, Placement{Object: e.obj, Bytes: e.bytes, Utility: e.utility})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Utility != out[j].Utility {
			return out[i].Utility > out[j].Utility
		}
		return out[i].Object.ID < out[j].Object.ID
	})
	return out
}

// checkInvariants verifies internal consistency; tests call it after
// mutation sequences.
func (c *Cache) checkInvariants() error {
	if c.used < 0 || c.used > c.capacity {
		return fmt.Errorf("core: used %d outside [0, %d]", c.used, c.capacity)
	}
	var sum int64
	for id, e := range c.entries {
		if e.obj.ID != id {
			return fmt.Errorf("core: entry key %d holds object %d", id, e.obj.ID)
		}
		if e.bytes <= 0 || e.bytes > e.obj.Size {
			return fmt.Errorf("core: object %d cached bytes %d outside (0, %d]", id, e.bytes, e.obj.Size)
		}
		sum += e.bytes
		if e.heapIdx < 0 || e.heapIdx >= c.h.Len() || c.h[e.heapIdx] != e {
			return fmt.Errorf("core: object %d heap index %d inconsistent", id, e.heapIdx)
		}
	}
	if sum != c.used {
		return fmt.Errorf("core: used %d != sum of entries %d", c.used, sum)
	}
	if c.h.Len() != len(c.entries) {
		return fmt.Errorf("core: heap len %d != entries %d", c.h.Len(), len(c.entries))
	}
	return nil
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamcache/internal/units"
)

func optTestObjects() ([]Object, []float64, []float64) {
	// Three objects, all 100s at 100 KB/s (size 10240000 B).
	objs := []Object{testObject(0), testObject(1), testObject(2)}
	lambda := []float64{10, 5, 1}
	bw := []float64{units.KBps(50), units.KBps(20), units.KBps(90)}
	return objs, lambda, bw
}

func TestOptimalPlacementValidation(t *testing.T) {
	objs, lambda, bw := optTestObjects()
	if _, err := OptimalPlacement(objs, lambda[:1], bw, 100); err == nil {
		t.Error("mismatched lambda accepted")
	}
	if _, err := OptimalPlacement(objs, lambda, bw[:1], 100); err == nil {
		t.Error("mismatched bw accepted")
	}
	if _, err := OptimalPlacement(objs, lambda, bw, -1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := OptimalPlacement(objs, []float64{-1, 0, 0}, bw, 100); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestOptimalPlacementSkipsAbundantBandwidth(t *testing.T) {
	objs := []Object{testObject(0)}
	lambda := []float64{100}
	bw := []float64{units.KBps(150)} // r=100 KB/s < b
	placement, err := OptimalPlacement(objs, lambda, bw, units.GBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(placement) != 0 {
		t.Errorf("placement = %v, want empty (abundant bandwidth)", placement)
	}
}

func TestOptimalPlacementOrdersByLambdaOverB(t *testing.T) {
	objs, lambda, bw := optTestObjects()
	// lambda/b ranking: obj1 (5/20) > obj0 (10/50) > obj2 (1/90).
	// Deficits: obj0 = 50KB/s*100s = 5120000, obj1 = 80KB/s*100s = 8192000.
	// Capacity fits obj1's deficit plus half of obj0's.
	capacity := int64(8192000 + 2560000)
	placement, err := OptimalPlacement(objs, lambda, bw, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if got := placement[1]; got != 8192000 {
		t.Errorf("obj1 placement = %d, want full deficit 8192000", got)
	}
	if got := placement[0]; got != 2560000 {
		t.Errorf("obj0 placement = %d, want split 2560000", got)
	}
	if got := placement[2]; got != 0 {
		t.Errorf("obj2 placement = %d, want 0", got)
	}
}

func TestOptimalPlacementNeverExceedsDeficit(t *testing.T) {
	objs, lambda, bw := optTestObjects()
	placement, err := OptimalPlacement(objs, lambda, bw, units.GBytes(10))
	if err != nil {
		t.Fatal(err)
	}
	for i, obj := range objs {
		deficit := int64(math.Ceil((obj.Rate - bw[i]) * obj.Duration))
		if deficit < 0 {
			deficit = 0
		}
		if got := placement[obj.ID]; got > deficit {
			t.Errorf("obj%d placement %d > deficit %d", i, got, deficit)
		}
	}
}

func TestExpectedDelayZeroWithFullDeficits(t *testing.T) {
	objs, lambda, bw := optTestObjects()
	placement := make(map[int]int64)
	for i, obj := range objs {
		d := int64((obj.Rate - bw[i]) * obj.Duration)
		if d > 0 {
			placement[obj.ID] = d
		}
	}
	got, err := ExpectedDelay(objs, lambda, bw, placement)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-6 {
		t.Errorf("ExpectedDelay = %v, want ~0 with full deficits", got)
	}
}

func TestExpectedDelayEmptyPlacement(t *testing.T) {
	objs, lambda, bw := optTestObjects()
	got, err := ExpectedDelay(objs, lambda, bw, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: sum_i lambda_i * (S - T*b_i)/b_i / sum lambda.
	want := 0.0
	totalL := 0.0
	for i, obj := range objs {
		d := (float64(obj.Size) - obj.Duration*bw[i]) / bw[i]
		if d < 0 {
			d = 0
		}
		want += lambda[i] * d
		totalL += lambda[i]
	}
	want /= totalL
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ExpectedDelay = %v, want %v", got, want)
	}
}

func TestExpectedDelayValidation(t *testing.T) {
	objs, lambda, bw := optTestObjects()
	if _, err := ExpectedDelay(objs, lambda[:1], bw, nil); err == nil {
		t.Error("mismatched lambda accepted")
	}
	if _, err := ExpectedDelay(nil, nil, nil, nil); err != nil {
		t.Errorf("empty input rejected: %v", err)
	}
}

func TestOptimalPlacementBeatsRandomPlacementProperty(t *testing.T) {
	// The Section 2.3 optimum must never yield higher expected delay
	// than a random placement of the same capacity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(10) + 2
		objs := make([]Object, n)
		lambda := make([]float64, n)
		bw := make([]float64, n)
		for i := range objs {
			objs[i] = smallObject(i, int64(rng.Intn(500)+100))
			lambda[i] = float64(rng.Intn(20) + 1)
			bw[i] = objs[i].Rate * (0.2 + 1.3*rng.Float64())
		}
		capacity := int64(rng.Intn(400)+50) * units.KB

		optimal, err := OptimalPlacement(objs, lambda, bw, capacity)
		if err != nil {
			return false
		}
		optDelay, err := ExpectedDelay(objs, lambda, bw, optimal)
		if err != nil {
			return false
		}

		// Random feasible placement.
		random := make(map[int]int64)
		remaining := capacity
		for _, i := range rng.Perm(n) {
			if remaining <= 0 {
				break
			}
			amt := rng.Int63n(remaining + 1)
			if amt > objs[i].Size {
				amt = objs[i].Size
			}
			random[objs[i].ID] = amt
			remaining -= amt
		}
		randDelay, err := ExpectedDelay(objs, lambda, bw, random)
		if err != nil {
			return false
		}
		// Byte-granularity tolerance: the knapsack splits at most one
		// item, so the optimum can trail a continuous placement by up to
		// a handful of bytes' worth of delay.
		sumLambda, maxDensity := 0.0, 0.0
		for i := range objs {
			sumLambda += lambda[i]
			if d := lambda[i] / bw[i]; d > maxDensity {
				maxDensity = d
			}
		}
		tol := float64(n+1) * maxDensity / sumLambda
		return optDelay <= randDelay+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalPlacementRespectsCapacityProperty(t *testing.T) {
	f := func(seed int64, capKB uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		objs := make([]Object, n)
		lambda := make([]float64, n)
		bw := make([]float64, n)
		for i := range objs {
			objs[i] = smallObject(i, int64(rng.Intn(300)+10))
			lambda[i] = rng.Float64() * 10
			bw[i] = objs[i].Rate * rng.Float64() * 2
		}
		capacity := int64(capKB) * units.KB
		placement, err := OptimalPlacement(objs, lambda, bw, capacity)
		if err != nil {
			return false
		}
		var total int64
		for id, bytes := range placement {
			if bytes < 0 || bytes > objs[id].Size {
				return false
			}
			total += bytes
		}
		return total <= capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOptimalValuePlacement(t *testing.T) {
	objs, lambda, bw := optTestObjects()
	objs[0].Value = 10
	objs[1].Value = 1
	objs[2].Value = 5
	// Deficits: obj0 = 5120000 (lv=100), obj1 = 8192000 (lv=5), obj2 = 1024000 (lv=5).
	// Densities: obj0 = 100/5.12M, obj2 = 5/1.024M, obj1 = 5/8.19M.
	capacity := int64(6200000) // fits obj0 + obj2
	placement, total, err := OptimalValuePlacement(objs, lambda, bw, capacity)
	if err != nil {
		t.Fatal(err)
	}
	if placement[0] == 0 || placement[2] == 0 {
		t.Errorf("placement = %v, want obj0 and obj2 cached", placement)
	}
	if placement[1] != 0 {
		t.Errorf("obj1 cached (%d bytes), want 0", placement[1])
	}
	wantTotal := lambda[0]*objs[0].Value + lambda[2]*objs[2].Value
	if math.Abs(total-wantTotal) > 1e-9 {
		t.Errorf("total value = %v, want %v", total, wantTotal)
	}
}

func TestOptimalValuePlacementValidation(t *testing.T) {
	objs, lambda, bw := optTestObjects()
	if _, _, err := OptimalValuePlacement(objs, lambda[:1], bw, 100); err == nil {
		t.Error("mismatched lambda accepted")
	}
	if _, _, err := OptimalValuePlacement(objs, lambda, bw, -5); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, _, err := OptimalValuePlacement(objs, []float64{-1, 1, 1}, bw, 100); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestOptimalValuePlacementSkipsServableObjects(t *testing.T) {
	objs := []Object{testObject(0)}
	placement, total, err := OptimalValuePlacement(objs, []float64{5}, []float64{objs[0].Rate * 2}, units.GBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(placement) != 0 || total != 0 {
		t.Errorf("placement=%v total=%v, want empty (already servable)", placement, total)
	}
}

// Package core implements the paper's cache-management layer: the
// partial-caching policies of Section 2 (IF, PB, IB, their value-based
// variants and the Hybrid e-interpolation), the classical baselines
// (LRU, LFU, the GreedyDual-Size family), the byte-granular cache with
// its utility-ordered eviction, and the offline optimal placements the
// extensions compare against.
//
// # Determinism contract
//
// The cache and every policy are deterministic state machines: given
// the same sequence of Access calls (object metadata, bandwidth
// estimates, request order), they produce the same hits, evictions and
// cached-byte counts. No policy may consult wall-clock time, package
// randomness, or map iteration order on a result path — any randomness
// a policy needs must be injected by the caller from a seeded source.
// This is what lets the simulation above (internal/sim) promise
// bit-identical metrics at any parallelism, and the experiments layer
// above that promise byte-identical sweeps across processes.
//
// # Shared-input immutability
//
// Hot-path state lives in dense ID-indexed slice tables sized by
// WithExpectedObjects, and AccessResult.Victims aliases a reusable
// scratch buffer that is only valid until the next Access. Object
// slices handed to a cache or an optimal placement are read-only from
// core's perspective: the sim.Arena shares one []Object across
// concurrent runs and sweep points, so nothing in this package may
// write through them.
package core

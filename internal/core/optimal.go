package core

import (
	"fmt"
	"math"

	"streamcache/internal/knapsack"
)

// OptimalPlacement computes the optimal static cache allocation of
// Section 2.3, assuming known request rates lambda and known path
// bandwidths bw (both indexed like objs): a fractional knapsack that
// takes objects in decreasing lambda_i/b_i order, caching up to
// (r_i - b_i)T_i bytes of each, until the capacity is exhausted. Objects
// with r_i <= b_i are not cached. The result maps object ID to cached
// prefix bytes.
func OptimalPlacement(objs []Object, lambda, bw []float64, capacity int64) (map[int]int64, error) {
	if len(lambda) != len(objs) || len(bw) != len(objs) {
		return nil, fmt.Errorf("%w: objs/lambda/bw lengths %d/%d/%d differ",
			ErrBadCache, len(objs), len(lambda), len(bw))
	}
	if capacity < 0 {
		return nil, fmt.Errorf("%w: capacity=%d, want >= 0", ErrBadCache, capacity)
	}
	items := make([]knapsack.Item, len(objs))
	for i, obj := range objs {
		b := effBW(bw[i])
		if lambda[i] < 0 {
			return nil, fmt.Errorf("%w: lambda[%d]=%v, want >= 0", ErrBadCache, i, lambda[i])
		}
		if obj.Rate <= b {
			continue // abundant bandwidth: x_i = 0
		}
		// Round the deficit up to whole bytes so that fully-taken objects
		// reach exactly zero startup delay.
		amount := math.Ceil((obj.Rate - b) * obj.Duration)
		if amount > float64(obj.Size) {
			amount = float64(obj.Size)
		}
		// Delay reduction per cached byte is lambda_i/b_i, so the item
		// profit for caching `amount` bytes is lambda_i*amount/b_i.
		items[i] = knapsack.Item{
			ID:     obj.ID,
			Profit: lambda[i] * amount / b,
			Weight: amount,
		}
	}
	frac, _, err := knapsack.Fractional(items, float64(capacity))
	if err != nil {
		return nil, fmt.Errorf("core: optimal placement: %w", err)
	}
	placement := make(map[int]int64)
	for i, f := range frac {
		if f <= 0 {
			continue
		}
		var bytes int64
		if f >= 1-1e-12 {
			bytes = int64(items[i].Weight) // weights are integral
		} else {
			bytes = int64(f * items[i].Weight)
		}
		if bytes > 0 {
			placement[objs[i].ID] = bytes
		}
	}
	return placement, nil
}

// ExpectedDelay returns the request-weighted mean startup delay of a
// placement under constant bandwidth, the objective minimized in
// Section 2.2. It is the analytic counterpart of the simulator's delay
// metric and is used to verify optimality of OptimalPlacement.
func ExpectedDelay(objs []Object, lambda, bw []float64, placement map[int]int64) (float64, error) {
	if len(lambda) != len(objs) || len(bw) != len(objs) {
		return 0, fmt.Errorf("%w: objs/lambda/bw lengths %d/%d/%d differ",
			ErrBadCache, len(objs), len(lambda), len(bw))
	}
	totalRate := 0.0
	weighted := 0.0
	for i, obj := range objs {
		totalRate += lambda[i]
		weighted += lambda[i] * StartupDelay(obj, placement[obj.ID], effBW(bw[i]))
	}
	if totalRate == 0 {
		return 0, nil
	}
	return weighted / totalRate, nil
}

// OptimalValuePlacement computes the greedy solution to the Section 2.6
// value-maximization problem: choose a set of objects to cache the full
// deficit [T_i r_i - T_i b_i]+ of, maximizing total lambda_i*V_i, using
// the density heuristic lambda_i V_i / (T_i r_i - T_i b_i). The exact
// problem is an NP-hard 0/1 knapsack. The result maps object ID to
// cached bytes and reports the achieved total value rate.
func OptimalValuePlacement(objs []Object, lambda, bw []float64, capacity int64) (map[int]int64, float64, error) {
	if len(lambda) != len(objs) || len(bw) != len(objs) {
		return nil, 0, fmt.Errorf("%w: objs/lambda/bw lengths %d/%d/%d differ",
			ErrBadCache, len(objs), len(lambda), len(bw))
	}
	if capacity < 0 {
		return nil, 0, fmt.Errorf("%w: capacity=%d, want >= 0", ErrBadCache, capacity)
	}
	items := make([]knapsack.Item, len(objs))
	for i, obj := range objs {
		b := effBW(bw[i])
		if lambda[i] < 0 {
			return nil, 0, fmt.Errorf("%w: lambda[%d]=%v, want >= 0", ErrBadCache, i, lambda[i])
		}
		deficit := (obj.Rate - b) * obj.Duration
		if deficit <= 0 {
			// Immediately servable without caching: value earned for free,
			// so it never competes for space.
			continue
		}
		if deficit > float64(obj.Size) {
			deficit = float64(obj.Size)
		}
		items[i] = knapsack.Item{ID: obj.ID, Profit: lambda[i] * obj.Value, Weight: deficit}
	}
	take, total, err := knapsack.Greedy01(items, float64(capacity))
	if err != nil {
		return nil, 0, fmt.Errorf("core: optimal value placement: %w", err)
	}
	placement := make(map[int]int64)
	for i, tk := range take {
		if tk {
			placement[objs[i].ID] = int64(items[i].Weight)
		}
	}
	return placement, total, nil
}

package core

import (
	"math"
	"testing"

	"streamcache/internal/units"
)

// testObject returns a 100-second object at 100 KB/s (10,240,000 bytes).
func testObject(id int) Object {
	rate := units.KBps(100)
	return Object{ID: id, Duration: 100, Rate: rate, Size: int64(100 * rate), Value: 5}
}

func TestPolicyNames(t *testing.T) {
	tests := []struct {
		p    Policy
		want string
	}{
		{NewIF(), "IF"},
		{NewPB(), "PB"},
		{NewIB(), "IB"},
		{NewPBV(), "PB-V"},
		{NewIBV(), "IB-V"},
		{NewLRU(), "LRU"},
		{NewLFU(), "LFU"},
	}
	for _, tt := range tests {
		if got := tt.p.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestIFUtilityIsFrequency(t *testing.T) {
	p := NewIF()
	obj := testObject(1)
	u1 := p.Utility(AccessStats{Freq: 1}, obj, units.KBps(50))
	u9 := p.Utility(AccessStats{Freq: 9}, obj, units.KBps(50))
	if u1 != 1 || u9 != 9 {
		t.Errorf("IF utility = (%v, %v), want (1, 9)", u1, u9)
	}
	// IF ignores bandwidth entirely.
	if p.Utility(AccessStats{Freq: 3}, obj, 1) != p.Utility(AccessStats{Freq: 3}, obj, 1e9) {
		t.Error("IF utility must not depend on bandwidth")
	}
	if got := p.Target(obj, units.KBps(1)); got != obj.Size {
		t.Errorf("IF target = %d, want whole object %d", got, obj.Size)
	}
}

func TestPBTargetIsDeficit(t *testing.T) {
	p := NewPB()
	obj := testObject(1) // rate 100 KB/s, duration 100s
	bw := units.KBps(40)
	// Deficit = (r - b) * T = 60 KB/s * 100 s = 6000 KB.
	want := int64((obj.Rate - bw) * obj.Duration)
	if got := p.Target(obj, bw); got != want {
		t.Errorf("PB target = %d, want %d", got, want)
	}
}

func TestPBDoesNotCacheAbundantBandwidth(t *testing.T) {
	p := NewPB()
	obj := testObject(1)
	// Section 2.4: if r_i <= b_i the object is not cached.
	if got := p.Target(obj, units.KBps(100)); got != 0 {
		t.Errorf("PB target at r=b = %d, want 0", got)
	}
	if got := p.Target(obj, units.KBps(500)); got != 0 {
		t.Errorf("PB target at abundant bw = %d, want 0", got)
	}
}

func TestIBTargetIsWholeObject(t *testing.T) {
	p := NewIB()
	obj := testObject(1)
	for _, bw := range []float64{units.KBps(1), units.KBps(100), units.KBps(1000)} {
		if got := p.Target(obj, bw); got != obj.Size {
			t.Errorf("IB target at bw=%v = %d, want %d", bw, got, obj.Size)
		}
	}
}

func TestBandwidthUtilityPrefersSlowPaths(t *testing.T) {
	// Both PB and IB rank objects by F/b: same frequency, slower path
	// must mean higher utility.
	obj := testObject(1)
	st := AccessStats{Freq: 10}
	for _, p := range []Policy{NewPB(), NewIB()} {
		slow := p.Utility(st, obj, units.KBps(10))
		fast := p.Utility(st, obj, units.KBps(200))
		if slow <= fast {
			t.Errorf("%s: slow-path utility %v <= fast-path %v", p.Name(), slow, fast)
		}
	}
}

func TestNewHybridValidation(t *testing.T) {
	for _, e := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewHybrid(e); err == nil {
			t.Errorf("NewHybrid(%v) accepted", e)
		}
		if _, err := NewHybridV(e); err == nil {
			t.Errorf("NewHybridV(%v) accepted", e)
		}
	}
}

func TestHybridInterpolatesPBAndIB(t *testing.T) {
	obj := testObject(1)
	bw := units.KBps(40)
	h0, err := NewHybrid(0)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := NewHybrid(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := h0.Target(obj, bw), NewIB().Target(obj, bw); got != want {
		t.Errorf("Hybrid(0) target = %d, want IB's %d", got, want)
	}
	if got, want := h1.Target(obj, bw), NewPB().Target(obj, bw); got != want {
		t.Errorf("Hybrid(1) target = %d, want PB's %d", got, want)
	}
	// Targets are monotonically non-increasing in e.
	prev := int64(math.MaxInt64)
	for _, e := range []float64{0, 0.25, 0.5, 0.75, 1} {
		h, err := NewHybrid(e)
		if err != nil {
			t.Fatal(err)
		}
		got := h.Target(obj, bw)
		if got > prev {
			t.Errorf("Hybrid(%v) target %d > Hybrid target at smaller e (%d)", e, got, prev)
		}
		prev = got
	}
}

func TestPBVUtilityAndTarget(t *testing.T) {
	p := NewPBV()
	obj := testObject(1)
	bw := units.KBps(40)
	deficit := (obj.Rate - bw) * obj.Duration
	st := AccessStats{Freq: 4}
	wantU := 4 * obj.Value / deficit
	if got := p.Utility(st, obj, bw); math.Abs(got-wantU) > 1e-12 {
		t.Errorf("PB-V utility = %v, want %v", got, wantU)
	}
	if got := p.Target(obj, bw); got != int64(deficit) {
		t.Errorf("PB-V target = %d, want %d", got, int64(deficit))
	}
	// Abundant bandwidth: no caching, zero utility.
	if p.Target(obj, units.KBps(200)) != 0 {
		t.Error("PB-V target with abundant bandwidth != 0")
	}
	if p.Utility(st, obj, units.KBps(200)) != 0 {
		t.Error("PB-V utility with abundant bandwidth != 0")
	}
}

func TestIBVUtilityFavors(t *testing.T) {
	// IB-V prefers lower bandwidth, higher value, smaller size.
	p := NewIBV()
	st := AccessStats{Freq: 2}
	base := testObject(1)
	bw := units.KBps(50)
	u := p.Utility(st, base, bw)
	if u2 := p.Utility(st, base, bw/2); u2 <= u {
		t.Error("IB-V must prefer lower bandwidth")
	}
	richer := base
	richer.Value = 10
	if u2 := p.Utility(st, richer, bw); u2 <= u {
		t.Error("IB-V must prefer higher value")
	}
	smaller := base
	smaller.Size = base.Size / 2
	if u2 := p.Utility(st, smaller, bw); u2 <= u {
		t.Error("IB-V must prefer smaller objects")
	}
	if got := p.Target(base, bw); got != base.Size {
		t.Errorf("IB-V target = %d, want whole object", got)
	}
}

func TestHybridVInterpolates(t *testing.T) {
	obj := testObject(1)
	bw := units.KBps(40)
	h1, err := NewHybridV(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := h1.Target(obj, bw), NewPBV().Target(obj, bw); got != want {
		t.Errorf("HybridV(1) target = %d, want PB-V's %d", got, want)
	}
	h0, err := NewHybridV(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := h0.Target(obj, bw); got != obj.Size {
		t.Errorf("HybridV(0) target = %d, want whole object %d", got, obj.Size)
	}
}

func TestLRUUtilityIsRecency(t *testing.T) {
	p := NewLRU()
	obj := testObject(1)
	old := p.Utility(AccessStats{Freq: 100, LastAccess: 10}, obj, 1)
	fresh := p.Utility(AccessStats{Freq: 1, LastAccess: 99}, obj, 1)
	if fresh <= old {
		t.Error("LRU must rank recent accesses above frequent-but-old ones")
	}
}

func TestPoliciesHandleZeroBandwidth(t *testing.T) {
	// A zero/NaN estimate must not produce NaN/Inf utilities or negative
	// targets.
	obj := testObject(1)
	st := AccessStats{Freq: 5}
	for _, p := range []Policy{NewIF(), NewPB(), NewIB(), NewPBV(), NewIBV(), NewLRU(), NewLFU()} {
		for _, bw := range []float64{0, -1, math.NaN()} {
			u := p.Utility(st, obj, bw)
			if math.IsNaN(u) || math.IsInf(u, 0) {
				t.Errorf("%s: utility(%v) = %v", p.Name(), bw, u)
			}
			tgt := p.Target(obj, bw)
			if tgt < 0 || tgt > obj.Size {
				t.Errorf("%s: target(%v) = %d outside [0, %d]", p.Name(), bw, tgt, obj.Size)
			}
		}
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"IF", "PB", "IB", "PB-V", "IB-V", "LRU", "LFU", "HYBRID", "HYBRID-V"} {
		p, err := PolicyByName(name, 0.5)
		if err != nil {
			t.Errorf("PolicyByName(%q) error: %v", name, err)
			continue
		}
		if p == nil {
			t.Errorf("PolicyByName(%q) = nil", name)
		}
	}
	if _, err := PolicyByName("NOPE", 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := PolicyByName("HYBRID", 7); err == nil {
		t.Error("out-of-range e accepted via PolicyByName")
	}
}

func TestStartupDelayFormula(t *testing.T) {
	obj := testObject(1) // S = 10240000 bytes, T = 100 s, r = 102400 B/s
	bw := units.KBps(50) // 51200 B/s
	// No cache: D = (S - T*b)/b = (10240000 - 5120000)/51200 = 100 s.
	if got := StartupDelay(obj, 0, bw); math.Abs(got-100) > 1e-9 {
		t.Errorf("StartupDelay(no cache) = %v, want 100", got)
	}
	// Cache exactly the deficit: delay 0.
	deficit := int64(float64(obj.Size) - obj.Duration*bw)
	if got := StartupDelay(obj, deficit, bw); got != 0 {
		t.Errorf("StartupDelay(full deficit) = %v, want 0", got)
	}
	// Half the deficit: delay halves.
	if got := StartupDelay(obj, deficit/2, bw); math.Abs(got-50) > 1e-6 {
		t.Errorf("StartupDelay(half deficit) = %v, want 50", got)
	}
	// Abundant bandwidth: no delay regardless of cache.
	if got := StartupDelay(obj, 0, units.KBps(200)); got != 0 {
		t.Errorf("StartupDelay(abundant) = %v, want 0", got)
	}
}

func TestStreamQualityFormula(t *testing.T) {
	obj := testObject(1)
	half := units.KBps(50)
	if got := StreamQuality(obj, 0, half); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("StreamQuality(no cache, half bw) = %v, want 0.5", got)
	}
	if got := StreamQuality(obj, obj.Size, 0); got != 1 {
		t.Errorf("StreamQuality(fully cached) = %v, want 1", got)
	}
	if got := StreamQuality(obj, 0, units.KBps(300)); got != 1 {
		t.Errorf("StreamQuality(abundant) = %v, want 1 (capped)", got)
	}
	if got := StreamQuality(Object{Size: 0}, 0, 0); got != 1 {
		t.Errorf("StreamQuality(empty object) = %v, want 1", got)
	}
}

func TestImmediatelyServable(t *testing.T) {
	obj := testObject(1)
	bw := units.KBps(50)
	deficit := int64(float64(obj.Size) - obj.Duration*bw)
	if ImmediatelyServable(obj, deficit-1024, bw) {
		t.Error("servable with insufficient prefix")
	}
	if !ImmediatelyServable(obj, deficit, bw) {
		t.Error("not servable with exact deficit")
	}
	if !ImmediatelyServable(obj, 0, units.KBps(150)) {
		t.Error("not servable with abundant bandwidth")
	}
}

package core

// Snapshot is a point-in-time occupancy summary of one cache. Unlike
// Contents it costs O(1) and allocates nothing, so a sharded frontend
// can take one per shard under that shard's lock without ever needing
// exclusive access to the whole fleet — the concurrency seam the live
// proxy tier composes its /stats aggregation from.
type Snapshot struct {
	Used     int64 // total cached bytes
	Capacity int64 // configured capacity in bytes
	Objects  int   // number of (partially) cached objects
}

// Snapshot returns the current occupancy summary. The caller must hold
// whatever lock serializes Access on this cache (the Cache itself is not
// internally synchronized).
func (c *Cache) Snapshot() Snapshot {
	return Snapshot{Used: c.used, Capacity: c.capacity, Objects: len(c.heap)}
}

// SplitCapacity divides total bytes across n shards as evenly as
// possible: every shard gets total/n bytes and the first total%n shards
// one extra, so the slice always sums exactly to total. It is the
// capacity seam of the sharded proxy tier — each shard owns an
// independent Cache over its slice of the byte budget, so shard-local
// locks suffice for every placement decision. n <= 0 or a negative
// total returns nil.
func SplitCapacity(total int64, n int) []int64 {
	if n <= 0 || total < 0 {
		return nil
	}
	out := make([]int64, n)
	base := total / int64(n)
	rem := total % int64(n)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

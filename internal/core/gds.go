package core

// This file implements the GreedyDual-Size family of baselines. The
// paper's related-work section builds on Cao & Irani's cost-aware
// GreedyDual-Size and the authors' own popularity-aware variant (Jin &
// Bestavros, ICDCS 2000 [17]); they are the strongest classical
// whole-object baselines to compare the network-aware policies against.
//
// GreedyDual-Size keys each object with H = L + cost/size, where L is a
// global inflation value raised to the utility of each evicted entry, so
// stale entries age out. The popularity-aware variant weighs H by the
// observed frequency. With the network retrieval cost (size/bandwidth),
// the popularity-aware key becomes L + F/b - exactly the paper's
// bandwidth-based utility plus aging, which makes the comparison
// sharp.

// EvictionObserver is an optional Policy extension: the cache notifies
// it with the utility of every eviction victim, enabling aging schemes
// such as GreedyDual-Size. Policies implementing it carry mutable state
// and must not be shared across caches (see sim.Config.PolicyFactory).
type EvictionObserver interface {
	OnEvict(utility float64)
}

// GDSCost computes the retrieval cost of an object given the estimated
// path bandwidth.
type GDSCost func(obj Object, bw float64) float64

// gdsPolicy implements GreedyDual-Size with optional popularity
// weighting.
type gdsPolicy struct {
	name       string
	cost       GDSCost
	popularity bool
	inflation  float64 // L
}

var _ EvictionObserver = (*gdsPolicy)(nil)

// NewGDS returns classic GreedyDual-Size with uniform retrieval cost
// (H = L + 1/size): optimizes object hit ratio.
func NewGDS() Policy {
	return &gdsPolicy{
		name: "GDS",
		cost: func(Object, float64) float64 { return 1 },
	}
}

// NewGDSBandwidth returns GreedyDual-Size with the network retrieval
// cost size/bandwidth (H = L + 1/b): favors objects behind slow paths.
func NewGDSBandwidth() Policy {
	return &gdsPolicy{
		name: "GDS-BW",
		cost: func(obj Object, bw float64) float64 { return float64(obj.Size) / effBW(bw) },
	}
}

// NewGDSP returns the popularity-aware GreedyDual-Size of Jin &
// Bestavros [17] with the network retrieval cost (H = L + F/b).
func NewGDSP() Policy {
	return &gdsPolicy{
		name:       "GDSP-BW",
		cost:       func(obj Object, bw float64) float64 { return float64(obj.Size) / effBW(bw) },
		popularity: true,
	}
}

func (p *gdsPolicy) Name() string { return p.name }

func (p *gdsPolicy) Utility(st AccessStats, obj Object, bw float64) float64 {
	if obj.Size <= 0 {
		return p.inflation
	}
	h := p.cost(obj, bw) / float64(obj.Size)
	if p.popularity {
		h *= float64(st.Freq)
	}
	return p.inflation + h
}

// Target caches whole objects: GDS is an integral policy.
func (p *gdsPolicy) Target(obj Object, _ float64) int64 { return obj.Size }

// OnEvict raises the inflation value to the evicted entry's utility.
func (p *gdsPolicy) OnEvict(utility float64) {
	if utility > p.inflation {
		p.inflation = utility
	}
}

// Inflation exposes the current aging value L (diagnostics and tests).
func (p *gdsPolicy) Inflation() float64 { return p.inflation }

// Package core implements the paper's contribution: cache-management
// algorithms for edge proxies that may cache a prefix (partial object) of
// a streaming media object and jointly deliver content from cache and
// origin server. The algorithms are stream-aware (they know object
// bit-rates and durations) and network-aware (they weigh the measured
// bandwidth b_i of each cache-origin path).
//
// Policies implemented (Sections 2.3-2.6 and 4.1):
//
//   - IF:  integral frequency-based caching (whole objects, hottest first)
//   - PB:  partial bandwidth-based caching (prefix (r_i-b_i)T_i, utility F_i/b_i)
//   - IB:  integral bandwidth-based caching (whole objects, utility F_i/b_i)
//   - Hybrid(e): bandwidth under-estimation spectrum between PB (e=1) and IB (e=0)
//   - PB-V/IB-V: value-maximizing variants (Section 2.6)
//   - LRU/LFU: classical baselines (Section 3.3)
//
// The replacement machinery is a utility priority queue (Section 2.4)
// with byte-granular eviction: the lowest-utility entry loses suffix
// bytes first, mirroring the fractional-knapsack structure of the
// optimal placement.
package core

// Object describes one streaming media object as the cache sees it.
type Object struct {
	ID       int
	Size     int64   // total bytes (Duration * Rate for CBR objects)
	Duration float64 // playback duration, seconds
	Rate     float64 // CBR encoding rate, bytes/s
	Value    float64 // added value when served immediately (Section 2.6)
}

// AccessStats is the per-object bookkeeping the replacement algorithm
// maintains: "Our cache replacement algorithm estimates the request
// arrival rate of each object by recording the number (or frequency) of
// requests to each object" (Section 2.4).
type AccessStats struct {
	Freq       int64   // requests observed so far (F_i)
	LastAccess float64 // time of most recent request
}

// StartupDelay returns the client-perceived delay before playout can
// begin: [S - T*b - x]+ / b (Section 2.2), where x is the cached prefix
// size and b the instantaneous bandwidth from the origin.
//mediavet:hotpath
func StartupDelay(obj Object, cachedBytes int64, bw float64) float64 {
	if bw <= 0 {
		bw = 1
	}
	deficit := float64(obj.Size) - obj.Duration*bw - float64(cachedBytes)
	if deficit <= 0 {
		return 0
	}
	return deficit / bw
}

// StreamQuality returns the fraction of the full stream that immediate
// playout can sustain: min(1, (x + T*b)/S) (Section 3.3; e.g. 3 of 4
// layers = 0.75).
//mediavet:hotpath
func StreamQuality(obj Object, cachedBytes int64, bw float64) float64 {
	if obj.Size <= 0 {
		return 1
	}
	q := (float64(cachedBytes) + obj.Duration*bw) / float64(obj.Size)
	if q > 1 {
		return 1
	}
	if q < 0 {
		return 0
	}
	return q
}

// ImmediatelyServable reports whether cache and origin can jointly
// support immediate full-quality playout: x >= S - T*b (Section 2.6).
//mediavet:hotpath
func ImmediatelyServable(obj Object, cachedBytes int64, bw float64) bool {
	return float64(cachedBytes) >= float64(obj.Size)-obj.Duration*bw
}

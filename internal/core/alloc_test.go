package core

import (
	"testing"

	"streamcache/internal/units"
)

// The hot-path allocation contract (DESIGN.md): once the ID tables have
// grown to cover the object population, Access performs zero heap
// allocations on hits and at most the scratch-buffer growth on
// evictions. These tests pin that contract so a future change cannot
// silently reintroduce per-access garbage.

func TestAccessHitPathAllocFree(t *testing.T) {
	c, err := New(64*units.MB, NewPB(), WithExpectedObjects(64))
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]Object, 64)
	for i := range objs {
		size := int64(i%16+1) * 64 * units.KB
		objs[i] = Object{ID: i, Size: size, Duration: 60, Rate: float64(size) / 60, Value: 1}
	}
	// Warm: every object admitted, tables and heap at final size.
	for i, o := range objs {
		c.Access(o, o.Rate/2, float64(i))
	}
	now := float64(len(objs))
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		o := objs[i%len(objs)]
		c.Access(o, o.Rate/2, now)
		now++
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state hit Access allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAccessEvictionPathAllocFree(t *testing.T) {
	// Capacity for ~4 of 64 objects: most accesses evict. After the
	// victim scratch buffer has grown once, evicting accesses must not
	// allocate either.
	c, err := New(512*units.KB, NewLRU(), WithExpectedObjects(64))
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]Object, 64)
	for i := range objs {
		objs[i] = Object{ID: i, Size: 128 * units.KB, Duration: 60, Rate: float64(128*units.KB) / 60, Value: 1}
	}
	for i, o := range objs {
		c.Access(o, o.Rate/2, float64(i))
	}
	now := float64(len(objs))
	var i int
	allocs := testing.AllocsPerRun(1000, func() {
		o := objs[(i*7)%len(objs)]
		c.Access(o, o.Rate/2, now)
		now++
		i++
	})
	// Budget ≤ 2 allocs/op per the acceptance criteria; steady state
	// should in fact be 0 (the scratch buffer never regrows).
	if allocs > 2 {
		t.Errorf("steady-state evicting Access allocates %.1f objects/op, want <= 2", allocs)
	}
}

// BenchmarkAccess measures the raw Access cost on the two hot paths.
func BenchmarkAccess(b *testing.B) {
	const nObjects = 4096
	newObjs := func() []Object {
		objs := make([]Object, nObjects)
		for i := range objs {
			size := int64(i%64+1) * 64 * units.KB
			objs[i] = Object{ID: i, Size: size, Duration: 60, Rate: float64(size) / 60, Value: 1}
		}
		return objs
	}

	b.Run("hit", func(b *testing.B) {
		// Capacity for the whole population: every steady-state access
		// is a hit that only refreshes the entry's heap position.
		c, err := New(16*units.GB, NewPB(), WithExpectedObjects(nObjects))
		if err != nil {
			b.Fatal(err)
		}
		objs := newObjs()
		for i, o := range objs {
			c.Access(o, o.Rate/2, float64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := objs[i%nObjects]
			c.Access(o, o.Rate/2, float64(nObjects+i))
		}
	})

	b.Run("evict", func(b *testing.B) {
		// Capacity for ~1% of the population: admissions continuously
		// displace lower-utility prefixes through the heap.
		c, err := New(64*units.MB, NewLRU(), WithExpectedObjects(nObjects))
		if err != nil {
			b.Fatal(err)
		}
		objs := newObjs()
		for i, o := range objs {
			c.Access(o, o.Rate/2, float64(i))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := objs[(i*7919)%nObjects]
			c.Access(o, o.Rate/2, float64(nObjects+i))
		}
	})
}

// TestResetReuseAllocFree pins the cache-pooling contract: once a
// cache's tables, heap and scratch have grown to cover the population,
// Reset + a full re-run of accesses performs zero heap allocations.
func TestResetReuseAllocFree(t *testing.T) {
	const nObjects = 64
	c, err := New(64*units.MB, NewPB(), WithExpectedObjects(nObjects))
	if err != nil {
		t.Fatal(err)
	}
	objs := make([]Object, nObjects)
	for i := range objs {
		size := int64(i%16+1) * 64 * units.KB
		objs[i] = Object{ID: i, Size: size, Duration: 60, Rate: float64(size) / 60, Value: 1}
	}
	for i, o := range objs {
		c.Access(o, o.Rate/2, float64(i))
	}
	policy := NewPB() // stateless: safe to reuse across Resets
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.Reset(64*units.MB, policy, WithExpectedObjects(nObjects)); err != nil {
			t.Fatal(err)
		}
		for i, o := range objs {
			c.Access(o, o.Rate/2, float64(i))
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Reset+refill allocates %.1f objects/op, want 0", allocs)
	}
}

package core

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadPolicy reports an invalid policy construction.
var ErrBadPolicy = errors.New("core: invalid policy")

// Policy decides how valuable an object is to the cache and how many
// prefix bytes it should occupy, given the current access statistics and
// the estimated bandwidth b (bytes/s) of the path to the object's origin
// server.
type Policy interface {
	// Name identifies the policy (IF, PB, IB, ...).
	Name() string
	// Utility returns the eviction priority key; entries with the
	// lowest utility are evicted first.
	Utility(st AccessStats, obj Object, bw float64) float64
	// Target returns the desired cached prefix size in bytes; the cache
	// clamps it to [0, obj.Size]. A zero target means "do not cache".
	Target(obj Object, bw float64) int64
}

// minBW guards divisions by tiny or unknown bandwidth estimates (1 B/s).
const minBW = 1.0

func effBW(bw float64) float64 {
	if bw < minBW || math.IsNaN(bw) {
		return minBW
	}
	return bw
}

// frequencyPolicy implements IF and LFU: utility is the observed request
// frequency, and whole objects are cached. "The first algorithm caches
// those objects with the highest request arrival rates and only allows
// whole objects to be cached" (Section 4.1).
type frequencyPolicy struct {
	name string
}

// NewIF returns the Integral Frequency-based policy.
func NewIF() Policy { return &frequencyPolicy{name: "IF"} }

// NewLFU returns the Least Frequently Used baseline, operationally
// identical to IF (Section 3.3 groups LRU/LFU as frequency-only
// algorithms that ignore network bandwidth).
func NewLFU() Policy { return &frequencyPolicy{name: "LFU"} }

func (p *frequencyPolicy) Name() string { return p.name }

func (p *frequencyPolicy) Utility(st AccessStats, _ Object, _ float64) float64 {
	return float64(st.Freq)
}

func (p *frequencyPolicy) Target(obj Object, _ float64) int64 { return obj.Size }

// lruPolicy evicts the least recently used object and caches whole
// objects.
type lruPolicy struct{}

// NewLRU returns the Least Recently Used baseline.
func NewLRU() Policy { return lruPolicy{} }

func (lruPolicy) Name() string { return "LRU" }

func (lruPolicy) Utility(st AccessStats, _ Object, _ float64) float64 {
	return st.LastAccess
}

func (lruPolicy) Target(obj Object, _ float64) int64 { return obj.Size }

// hybridPolicy is the bandwidth-based family. The under-estimation
// factor E interpolates between the paper's PB (E=1) and IB (E=0)
// algorithms: caching decisions use the conservative bandwidth estimate
// E*b, so the prefix target is (r - E*b)*T clamped to [0, S]
// (Section 2.5, swept in Figures 9 and 12).
type hybridPolicy struct {
	name string
	e    float64
}

// NewPB returns the Partial Bandwidth-based policy of Sections 2.3-2.4:
// objects whose bit-rate is below the measured bandwidth are not cached;
// otherwise the prefix target is (r_i - b_i)T_i and the utility is
// F_i/b_i.
func NewPB() Policy { return &hybridPolicy{name: "PB", e: 1} }

// NewIB returns the Integral Bandwidth-based policy of Section 2.5: the
// most conservative heuristic, caching whole objects with the highest
// F_i/b_i ratio.
func NewIB() Policy { return &hybridPolicy{name: "IB", e: 0} }

// NewHybrid returns the estimator-e policy with e in [0, 1]; e=0 behaves
// as IB, e=1 as PB.
func NewHybrid(e float64) (Policy, error) {
	if e < 0 || e > 1 || math.IsNaN(e) {
		return nil, fmt.Errorf("%w: hybrid e=%v, want in [0,1]", ErrBadPolicy, e)
	}
	return &hybridPolicy{name: fmt.Sprintf("Hybrid(e=%.2f)", e), e: e}, nil
}

func (p *hybridPolicy) Name() string { return p.name }

func (p *hybridPolicy) Utility(st AccessStats, _ Object, bw float64) float64 {
	return float64(st.Freq) / effBW(bw)
}

func (p *hybridPolicy) Target(obj Object, bw float64) int64 {
	conservative := p.e * effBW(bw)
	if obj.Rate <= conservative {
		return 0 // abundant bandwidth: no need to cache (Section 2.4)
	}
	// Round up so the cached prefix fully covers the bandwidth deficit.
	target := int64(math.Ceil((obj.Rate - conservative) * obj.Duration))
	if target > obj.Size {
		target = obj.Size
	}
	if target < 0 {
		target = 0
	}
	return target
}

// pbvPolicy is Partial Bandwidth-Value-based caching (Section 2.6): cache
// the deficit [T_i r_i - T_i b_i]+ of objects with the highest
// F_i V_i / (T_i r_i - T_i b_i) ratio, so that requests can be served
// immediately and earn their value.
type pbvPolicy struct{}

// NewPBV returns the PB-V policy.
func NewPBV() Policy { return pbvPolicy{} }

func (pbvPolicy) Name() string { return "PB-V" }

func (pbvPolicy) Utility(st AccessStats, obj Object, bw float64) float64 {
	deficit := float64(obj.Size) - obj.Duration*effBW(bw)
	if deficit <= 0 {
		return 0 // nothing to cache; never competes for space
	}
	return float64(st.Freq) * obj.Value / deficit
}

func (pbvPolicy) Target(obj Object, bw float64) int64 {
	deficit := float64(obj.Size) - obj.Duration*effBW(bw)
	if deficit <= 0 {
		return 0
	}
	// Round up: a prefix even one byte short of the deficit earns no value.
	target := int64(math.Ceil(deficit))
	if target > obj.Size {
		target = obj.Size
	}
	return target
}

// ibvPolicy is Integral Bandwidth-Value-based caching (Section 2.6):
// whole objects with the highest F_i V_i / (T_i r_i b_i) ratio, giving
// preference to objects with lower bandwidth, higher value, and smaller
// size.
type ibvPolicy struct{}

// NewIBV returns the IB-V policy.
func NewIBV() Policy { return ibvPolicy{} }

func (ibvPolicy) Name() string { return "IB-V" }

func (ibvPolicy) Utility(st AccessStats, obj Object, bw float64) float64 {
	denom := float64(obj.Size) * effBW(bw)
	if denom <= 0 {
		return 0
	}
	return float64(st.Freq) * obj.Value / denom
}

func (ibvPolicy) Target(obj Object, _ float64) int64 { return obj.Size }

// hybridVPolicy interpolates PB-V and IB-V with the same
// under-estimation factor used by Hybrid; it backs Figure 12.
type hybridVPolicy struct {
	name string
	e    float64
}

// NewHybridV returns the value-objective estimator-e policy: caching
// decisions use the conservative bandwidth E*b in the PB-V target and
// utility. e=1 is exactly PB-V; e=0 caches whole objects.
func NewHybridV(e float64) (Policy, error) {
	if e < 0 || e > 1 || math.IsNaN(e) {
		return nil, fmt.Errorf("%w: hybrid-v e=%v, want in [0,1]", ErrBadPolicy, e)
	}
	return &hybridVPolicy{name: fmt.Sprintf("HybridV(e=%.2f)", e), e: e}, nil
}

func (p *hybridVPolicy) Name() string { return p.name }

func (p *hybridVPolicy) Utility(st AccessStats, obj Object, bw float64) float64 {
	deficit := float64(obj.Size) - obj.Duration*p.e*effBW(bw)
	if deficit <= 0 {
		return 0
	}
	return float64(st.Freq) * obj.Value / deficit
}

func (p *hybridVPolicy) Target(obj Object, bw float64) int64 {
	deficit := float64(obj.Size) - obj.Duration*p.e*effBW(bw)
	if deficit <= 0 {
		return 0
	}
	target := int64(math.Ceil(deficit))
	if target > obj.Size {
		target = obj.Size
	}
	return target
}

// PolicyByName constructs a policy from its short name; hybrid policies
// take the estimator through the e parameter (ignored by the others).
// Recognized names: IF, PB, IB, PB-V, IB-V, LRU, LFU, HYBRID, HYBRID-V.
func PolicyByName(name string, e float64) (Policy, error) {
	switch name {
	case "IF":
		return NewIF(), nil
	case "PB":
		return NewPB(), nil
	case "IB":
		return NewIB(), nil
	case "PB-V", "PBV":
		return NewPBV(), nil
	case "IB-V", "IBV":
		return NewIBV(), nil
	case "LRU":
		return NewLRU(), nil
	case "LFU":
		return NewLFU(), nil
	case "HYBRID", "Hybrid":
		return NewHybrid(e)
	case "HYBRID-V", "HybridV":
		return NewHybridV(e)
	case "GDS":
		return NewGDS(), nil
	case "GDS-BW", "GDSBW":
		return NewGDSBandwidth(), nil
	case "GDSP", "GDSP-BW":
		return NewGDSP(), nil
	default:
		return nil, fmt.Errorf("%w: unknown policy %q", ErrBadPolicy, name)
	}
}

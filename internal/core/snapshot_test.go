package core

import "testing"

func TestSnapshotTracksOccupancy(t *testing.T) {
	c, err := New(1000, NewLRU())
	if err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	if s.Used != 0 || s.Objects != 0 || s.Capacity != 1000 {
		t.Errorf("empty snapshot = %+v", s)
	}
	c.Access(Object{ID: 1, Size: 400, Duration: 10, Rate: 40}, 0, 1)
	c.Access(Object{ID: 2, Size: 300, Duration: 10, Rate: 30}, 0, 2)
	s = c.Snapshot()
	if s.Used != 700 || s.Objects != 2 || s.Capacity != 1000 {
		t.Errorf("snapshot = %+v, want Used=700 Objects=2 Capacity=1000", s)
	}
	if s.Used != c.Used() || s.Objects != c.Len() || s.Capacity != c.Capacity() {
		t.Error("snapshot disagrees with accessor methods")
	}
}

func TestSplitCapacity(t *testing.T) {
	tests := []struct {
		total int64
		n     int
		want  []int64
	}{
		{100, 4, []int64{25, 25, 25, 25}},
		{10, 3, []int64{4, 3, 3}},
		{2, 4, []int64{1, 1, 0, 0}},
		{0, 2, []int64{0, 0}},
		{7, 1, []int64{7}},
	}
	for _, tt := range tests {
		got := SplitCapacity(tt.total, tt.n)
		if len(got) != len(tt.want) {
			t.Errorf("SplitCapacity(%d, %d) = %v, want %v", tt.total, tt.n, got, tt.want)
			continue
		}
		var sum int64
		for i := range got {
			sum += got[i]
			if got[i] != tt.want[i] {
				t.Errorf("SplitCapacity(%d, %d) = %v, want %v", tt.total, tt.n, got, tt.want)
				break
			}
		}
		if sum != tt.total {
			t.Errorf("SplitCapacity(%d, %d) sums to %d", tt.total, tt.n, sum)
		}
	}
	if SplitCapacity(10, 0) != nil {
		t.Error("n=0 did not return nil")
	}
	if SplitCapacity(-1, 2) != nil {
		t.Error("negative total did not return nil")
	}
}

package core

import (
	"testing"

	"streamcache/internal/units"
)

func TestGDSNames(t *testing.T) {
	tests := []struct {
		p    Policy
		want string
	}{
		{NewGDS(), "GDS"},
		{NewGDSBandwidth(), "GDS-BW"},
		{NewGDSP(), "GDSP-BW"},
	}
	for _, tt := range tests {
		if got := tt.p.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestGDSPreferSmallObjects(t *testing.T) {
	// Classic GDS with uniform cost: H = L + 1/size, so smaller objects
	// have higher utility.
	p := NewGDS()
	st := AccessStats{Freq: 1}
	small := smallObject(1, 10)
	large := smallObject(2, 1000)
	if p.Utility(st, small, 0) <= p.Utility(st, large, 0) {
		t.Error("GDS must prefer smaller objects at equal inflation")
	}
}

func TestGDSBandwidthPrefersSlowPaths(t *testing.T) {
	p := NewGDSBandwidth()
	st := AccessStats{Freq: 1}
	obj := smallObject(1, 100)
	slow := p.Utility(st, obj, units.KBps(10))
	fast := p.Utility(st, obj, units.KBps(500))
	if slow <= fast {
		t.Errorf("GDS-BW slow-path utility %v <= fast-path %v", slow, fast)
	}
}

func TestGDSPWeighsPopularity(t *testing.T) {
	p := NewGDSP()
	obj := smallObject(1, 100)
	cold := p.Utility(AccessStats{Freq: 1}, obj, units.KBps(50))
	hot := p.Utility(AccessStats{Freq: 10}, obj, units.KBps(50))
	if hot <= cold {
		t.Errorf("GDSP hot utility %v <= cold %v", hot, cold)
	}
}

func TestGDSInflationRisesOnEviction(t *testing.T) {
	p := NewGDS().(*gdsPolicy)
	if p.Inflation() != 0 {
		t.Fatalf("initial inflation = %v, want 0", p.Inflation())
	}
	p.OnEvict(5)
	p.OnEvict(3) // lower than current L: no change
	if got := p.Inflation(); got != 5 {
		t.Errorf("inflation = %v, want 5", got)
	}
	p.OnEvict(9)
	if got := p.Inflation(); got != 9 {
		t.Errorf("inflation = %v, want 9", got)
	}
}

func TestCacheNotifiesEvictionObserver(t *testing.T) {
	p := NewGDS().(*gdsPolicy)
	c, err := New(100*units.KB, p)
	if err != nil {
		t.Fatal(err)
	}
	a := smallObject(1, 100) // fills the cache, H = L + 1/size
	c.Access(a, 0, 1)
	if p.Inflation() != 0 {
		t.Fatalf("inflation moved without eviction: %v", p.Inflation())
	}
	// A smaller object has higher H and evicts part of A, raising L to
	// A's utility.
	b := smallObject(2, 10)
	c.Access(b, 0, 2)
	if p.Inflation() <= 0 {
		t.Error("inflation did not rise after eviction")
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestGDSAgingAllowsNewContent(t *testing.T) {
	// The point of aging: after enough evictions, L rises so fresh
	// objects can displace once-popular stale ones. Run a phase change
	// and check the cache turns over.
	p := NewGDSP().(*gdsPolicy)
	c, err := New(300*units.KB, p)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 1: objects 0-2 become very hot.
	now := 0.0
	for round := 0; round < 20; round++ {
		for id := 0; id < 3; id++ {
			now++
			c.Access(smallObject(id, 100), units.KBps(20), now)
		}
	}
	// Phase 2: interest shifts entirely to objects 10-12.
	for round := 0; round < 60; round++ {
		for id := 10; id < 13; id++ {
			now++
			c.Access(smallObject(id, 100), units.KBps(20), now)
		}
	}
	newCached := 0
	for id := 10; id < 13; id++ {
		if c.CachedBytes(id) > 0 {
			newCached++
		}
	}
	if newCached == 0 {
		t.Error("GDSP aging failed: no phase-2 object ever entered the cache")
	}
	if err := c.checkInvariants(); err != nil {
		t.Error(err)
	}
}

func TestGDSZeroSizeObject(t *testing.T) {
	p := NewGDS().(*gdsPolicy)
	u := p.Utility(AccessStats{Freq: 1}, Object{ID: 1, Size: 0}, 0)
	if u != p.Inflation() {
		t.Errorf("zero-size utility = %v, want inflation %v", u, p.Inflation())
	}
}

func TestPolicyByNameGDSFamily(t *testing.T) {
	for _, name := range []string{"GDS", "GDS-BW", "GDSP"} {
		p, err := PolicyByName(name, 0)
		if err != nil || p == nil {
			t.Errorf("PolicyByName(%q) = (%v, %v)", name, p, err)
		}
	}
}

package bandwidth

import (
	"fmt"
	"math"
	"time"
)

// Estimator produces the bandwidth estimate b_i that the caching
// algorithms consume (Section 2.7). Implementations may be passive
// (observing completed transfers) or act as oracles in simulation.
type Estimator interface {
	// Estimate returns the current bandwidth estimate in bytes/s, or 0
	// if no estimate is available yet.
	Estimate() float64
	// Observe feeds one measured throughput sample (bytes/s).
	Observe(sample float64)
}

// Static is an oracle estimator that always reports a fixed rate; the
// simulator uses it to model "the cache knows the path's average
// bandwidth", which is the assumption behind the paper's Figures 5-12.
type Static struct {
	Rate float64
}

// Estimate returns the fixed rate.
func (s *Static) Estimate() float64 { return s.Rate }

// Observe is a no-op.
func (s *Static) Observe(float64) {}

// EWMA is the passive estimator of Section 2.7: it tracks an
// exponentially weighted moving average of observed transfer throughput.
// "Such approaches do not introduce additional network overhead, but may
// not be accurate as bandwidth may change drastically over time."
type EWMA struct {
	alpha float64
	est   float64
	seen  bool
}

// NewEWMA builds an EWMA estimator with smoothing factor alpha in (0, 1];
// larger alpha weights recent samples more.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 || math.IsNaN(alpha) {
		return nil, fmt.Errorf("%w: EWMA alpha=%v, want in (0,1]", ErrBadParam, alpha)
	}
	return &EWMA{alpha: alpha}, nil
}

// Estimate returns the smoothed estimate (0 before any observation).
func (e *EWMA) Estimate() float64 {
	if !e.seen {
		return 0
	}
	return e.est
}

// Observe folds one throughput sample into the average.
func (e *EWMA) Observe(sample float64) {
	if sample <= 0 || math.IsNaN(sample) {
		return
	}
	if !e.seen {
		e.est = sample
		e.seen = true
		return
	}
	e.est = e.alpha*sample + (1-e.alpha)*e.est
}

// Underestimator wraps another estimator and scales its output by a
// constant e in [0, 1] - the over-provisioning heuristic of Section 2.5
// and the knob swept in Figures 9 and 12 (e=1 behaves like PB, e=0 like
// IB).
type Underestimator struct {
	Inner  Estimator
	Factor float64
}

// Estimate returns Factor times the inner estimate.
func (u *Underestimator) Estimate() float64 { return u.Factor * u.Inner.Estimate() }

// Observe forwards to the inner estimator.
func (u *Underestimator) Observe(sample float64) { u.Inner.Observe(sample) }

// PadhyeThroughput returns the steady-state TCP throughput predicted by
// the model of Padhye et al. [22], which Section 2.7 cites as the basis
// for active bandwidth measurement of TCP-friendly streaming transports:
//
//	B = MSS / (RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p^2))
//
// with loss probability p, ACKed-packets-per-ACK b, and retransmission
// timeout T0. The result is bytes/s.
func PadhyeThroughput(mss int, rtt, rto time.Duration, loss float64, ackedPerACK int) (float64, error) {
	if mss <= 0 {
		return 0, fmt.Errorf("%w: mss=%d, want > 0", ErrBadParam, mss)
	}
	if rtt <= 0 || rto <= 0 {
		return 0, fmt.Errorf("%w: rtt=%v rto=%v, want > 0", ErrBadParam, rtt, rto)
	}
	if loss <= 0 || loss >= 1 || math.IsNaN(loss) {
		return 0, fmt.Errorf("%w: loss=%v, want in (0,1)", ErrBadParam, loss)
	}
	if ackedPerACK <= 0 {
		return 0, fmt.Errorf("%w: ackedPerACK=%d, want > 0", ErrBadParam, ackedPerACK)
	}
	b := float64(ackedPerACK)
	rttSec := rtt.Seconds()
	rtoSec := rto.Seconds()
	wait := rttSec * math.Sqrt(2*b*loss/3)
	toTerm := rtoSec * math.Min(1, 3*math.Sqrt(3*b*loss/8)) * loss * (1 + 32*loss*loss)
	return float64(mss) / (wait + toTerm), nil
}

// MathisThroughput returns the simpler inverse-sqrt(p) TCP throughput
// model ("inversely proportional to the square root of packet loss rate
// and round-trip time", Section 2.7): B = MSS/RTT * sqrt(3/2) / sqrt(p).
func MathisThroughput(mss int, rtt time.Duration, loss float64) (float64, error) {
	if mss <= 0 {
		return 0, fmt.Errorf("%w: mss=%d, want > 0", ErrBadParam, mss)
	}
	if rtt <= 0 {
		return 0, fmt.Errorf("%w: rtt=%v, want > 0", ErrBadParam, rtt)
	}
	if loss <= 0 || loss >= 1 || math.IsNaN(loss) {
		return 0, fmt.Errorf("%w: loss=%v, want in (0,1)", ErrBadParam, loss)
	}
	return float64(mss) / rtt.Seconds() * math.Sqrt(1.5) / math.Sqrt(loss), nil
}

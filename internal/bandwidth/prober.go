package bandwidth

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// PathConditions are the end-to-end measurables an active prober
// observes: round-trip time and packet loss rate (Section 2.7 - "both
// packet loss rates and round-trip times could be measured using
// end-to-end approaches").
type PathConditions struct {
	RTT  time.Duration
	Loss float64
}

// PadhyeLossForRate inverts the Padhye throughput model: it returns the
// loss rate at which a TCP-friendly transport with the given MSS, RTT
// and RTO achieves the target rate (bytes/s). Solved by bisection; the
// model is strictly decreasing in loss.
func PadhyeLossForRate(rate float64, mss int, rtt, rto time.Duration, ackedPerACK int) (float64, error) {
	if rate <= 0 || math.IsNaN(rate) {
		return 0, fmt.Errorf("%w: rate=%v, want > 0", ErrBadParam, rate)
	}
	const (
		lossLo = 1e-9
		lossHi = 0.99
	)
	atLo, err := PadhyeThroughput(mss, rtt, rto, lossLo, ackedPerACK)
	if err != nil {
		return 0, err
	}
	if rate >= atLo {
		return lossLo, nil // path is cleaner than the model can express
	}
	atHi, err := PadhyeThroughput(mss, rtt, rto, lossHi, ackedPerACK)
	if err != nil {
		return 0, err
	}
	if rate <= atHi {
		return lossHi, nil
	}
	lo, hi := lossLo, lossHi
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		got, err := PadhyeThroughput(mss, rtt, rto, mid, ackedPerACK)
		if err != nil {
			return 0, err
		}
		if got > rate {
			lo = mid // too fast: more loss needed
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// ConditionsForRate synthesizes path conditions (RTT fixed by the
// caller, loss solved from the Padhye model) under which a TCP-friendly
// transport achieves the given mean rate. Simulations use it to give
// each path physically consistent measurables.
func ConditionsForRate(rate float64, mss int, rtt, rto time.Duration, ackedPerACK int) (PathConditions, error) {
	loss, err := PadhyeLossForRate(rate, mss, rtt, rto, ackedPerACK)
	if err != nil {
		return PathConditions{}, err
	}
	return PathConditions{RTT: rtt, Loss: loss}, nil
}

// ActiveProber estimates path bandwidth by "sending a few probing
// packets" (Section 2.7): each Probe measures loss and RTT with relative
// noise Jitter and applies the Padhye model. It implements Estimator;
// passive Observe samples are ignored (this is the active alternative).
type ActiveProber struct {
	mss        int
	rto        time.Duration
	acked      int
	conditions PathConditions
	jitter     float64
	rng        *rand.Rand
	estimate   float64
}

// NewActiveProber builds a prober for a path with the given true
// conditions. jitter is the relative standard deviation of each
// measurement (e.g. 0.1 = 10% noise). The prober takes an initial probe
// so Estimate is immediately available.
func NewActiveProber(cond PathConditions, mss int, rto time.Duration, ackedPerACK int, jitter float64, seed int64) (*ActiveProber, error) {
	if cond.RTT <= 0 || cond.Loss <= 0 || cond.Loss >= 1 {
		return nil, fmt.Errorf("%w: conditions %+v", ErrBadParam, cond)
	}
	if mss <= 0 || rto <= 0 || ackedPerACK <= 0 {
		return nil, fmt.Errorf("%w: mss=%d rto=%v ackedPerACK=%d", ErrBadParam, mss, rto, ackedPerACK)
	}
	if jitter < 0 || jitter >= 1 || math.IsNaN(jitter) {
		return nil, fmt.Errorf("%w: jitter=%v, want in [0,1)", ErrBadParam, jitter)
	}
	p := &ActiveProber{
		mss:        mss,
		rto:        rto,
		acked:      ackedPerACK,
		conditions: cond,
		jitter:     jitter,
		rng:        rand.New(rand.NewSource(seed)),
	}
	if _, err := p.Probe(); err != nil {
		return nil, err
	}
	return p, nil
}

// Probe takes one noisy measurement and refreshes the estimate.
func (p *ActiveProber) Probe() (float64, error) {
	noisy := func(v float64) float64 {
		f := 1 + p.jitter*p.rng.NormFloat64()
		if f < 0.1 {
			f = 0.1
		}
		return v * f
	}
	rtt := time.Duration(noisy(float64(p.conditions.RTT)))
	loss := noisy(p.conditions.Loss)
	if loss >= 1 {
		loss = 0.99
	}
	est, err := PadhyeThroughput(p.mss, rtt, p.rto, loss, p.acked)
	if err != nil {
		return 0, fmt.Errorf("bandwidth: probe: %w", err)
	}
	p.estimate = est
	return est, nil
}

// Estimate returns the most recent probe result.
func (p *ActiveProber) Estimate() float64 { return p.estimate }

// Observe is a no-op: the prober measures actively.
func (p *ActiveProber) Observe(float64) {}

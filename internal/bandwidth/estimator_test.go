package bandwidth

import (
	"math"
	"testing"
	"time"
)

func TestStaticEstimator(t *testing.T) {
	s := &Static{Rate: 5000}
	if s.Estimate() != 5000 {
		t.Errorf("Estimate() = %v, want 5000", s.Estimate())
	}
	s.Observe(1) // must be a no-op
	if s.Estimate() != 5000 {
		t.Error("Observe changed a Static estimator")
	}
}

func TestNewEWMAValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := NewEWMA(alpha); err == nil {
			t.Errorf("alpha=%v accepted", alpha)
		}
	}
	if _, err := NewEWMA(1); err != nil {
		t.Errorf("alpha=1 rejected: %v", err)
	}
}

func TestEWMANoObservations(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Estimate() != 0 {
		t.Errorf("Estimate() before observations = %v, want 0", e.Estimate())
	}
}

func TestEWMAFirstObservationSeedsEstimate(t *testing.T) {
	e, err := NewEWMA(0.1)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(100)
	if e.Estimate() != 100 {
		t.Errorf("Estimate() after first sample = %v, want 100", e.Estimate())
	}
}

func TestEWMASmoothing(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(100)
	e.Observe(200)
	if got := e.Estimate(); got != 150 {
		t.Errorf("Estimate() = %v, want 150", got)
	}
	e.Observe(150)
	if got := e.Estimate(); got != 150 {
		t.Errorf("Estimate() = %v, want 150", got)
	}
}

func TestEWMAIgnoresBadSamples(t *testing.T) {
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(100)
	e.Observe(0)
	e.Observe(-5)
	e.Observe(math.NaN())
	if got := e.Estimate(); got != 100 {
		t.Errorf("Estimate() = %v, want 100 (bad samples ignored)", got)
	}
}

func TestEWMAConvergesToConstantSignal(t *testing.T) {
	e, err := NewEWMA(0.3)
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(10)
	for i := 0; i < 100; i++ {
		e.Observe(500)
	}
	if got := e.Estimate(); math.Abs(got-500) > 1 {
		t.Errorf("Estimate() = %v, want ~500", got)
	}
}

func TestUnderestimator(t *testing.T) {
	inner := &Static{Rate: 1000}
	u := &Underestimator{Inner: inner, Factor: 0.5}
	if got := u.Estimate(); got != 500 {
		t.Errorf("Estimate() = %v, want 500", got)
	}
	// Factor 0 turns PB into IB: the estimate is always 0.
	u.Factor = 0
	if got := u.Estimate(); got != 0 {
		t.Errorf("Estimate() = %v, want 0", got)
	}
}

func TestUnderestimatorForwardsObserve(t *testing.T) {
	inner, err := NewEWMA(1)
	if err != nil {
		t.Fatal(err)
	}
	u := &Underestimator{Inner: inner, Factor: 0.8}
	u.Observe(100)
	if got := u.Estimate(); math.Abs(got-80) > 1e-12 {
		t.Errorf("Estimate() = %v, want 80", got)
	}
}

func TestPadhyeThroughputValidation(t *testing.T) {
	valid := func() (int, time.Duration, time.Duration, float64, int) {
		return 1460, 100 * time.Millisecond, 400 * time.Millisecond, 0.01, 1
	}
	mss, rtt, rto, loss, b := valid()
	if _, err := PadhyeThroughput(mss, rtt, rto, loss, b); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	if _, err := PadhyeThroughput(0, rtt, rto, loss, b); err == nil {
		t.Error("mss=0 accepted")
	}
	if _, err := PadhyeThroughput(mss, 0, rto, loss, b); err == nil {
		t.Error("rtt=0 accepted")
	}
	if _, err := PadhyeThroughput(mss, rtt, 0, loss, b); err == nil {
		t.Error("rto=0 accepted")
	}
	if _, err := PadhyeThroughput(mss, rtt, rto, 0, b); err == nil {
		t.Error("loss=0 accepted")
	}
	if _, err := PadhyeThroughput(mss, rtt, rto, 1, b); err == nil {
		t.Error("loss=1 accepted")
	}
	if _, err := PadhyeThroughput(mss, rtt, rto, loss, 0); err == nil {
		t.Error("ackedPerACK=0 accepted")
	}
}

func TestPadhyeThroughputMonotonic(t *testing.T) {
	// Throughput decreases in loss rate and in RTT.
	at := func(rtt time.Duration, loss float64) float64 {
		v, err := PadhyeThroughput(1460, rtt, 4*rtt, loss, 1)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(at(100*time.Millisecond, 0.01) > at(100*time.Millisecond, 0.05)) {
		t.Error("throughput must decrease with loss")
	}
	if !(at(50*time.Millisecond, 0.02) > at(200*time.Millisecond, 0.02)) {
		t.Error("throughput must decrease with RTT")
	}
}

func TestPadhyeVsMathisLowLoss(t *testing.T) {
	// At low loss the timeout term vanishes and Padhye approaches the
	// Mathis inverse-sqrt model (with b=1 ACKed packet per ACK the
	// constant differs by sqrt(2/3)/sqrt(2/3) -- check within 2x).
	const mss = 1460
	rtt := 100 * time.Millisecond
	p, err := PadhyeThroughput(mss, rtt, 400*time.Millisecond, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MathisThroughput(mss, rtt, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if p > m || p < m/3 {
		t.Errorf("Padhye %v should be within [Mathis/3, Mathis] = [%v, %v]", p, m/3, m)
	}
}

func TestMathisThroughputKnownValue(t *testing.T) {
	// MSS=1460B, RTT=100ms, p=0.01: B = 1460/0.1 * sqrt(1.5)/0.1 = 178.8 KB/s.
	got, err := MathisThroughput(1460, 100*time.Millisecond, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := 1460.0 / 0.1 * math.Sqrt(1.5) / 0.1
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("MathisThroughput = %v, want %v", got, want)
	}
}

func TestMathisThroughputValidation(t *testing.T) {
	if _, err := MathisThroughput(0, time.Second, 0.1); err == nil {
		t.Error("mss=0 accepted")
	}
	if _, err := MathisThroughput(1460, 0, 0.1); err == nil {
		t.Error("rtt=0 accepted")
	}
	if _, err := MathisThroughput(1460, time.Second, 0); err == nil {
		t.Error("loss=0 accepted")
	}
	if _, err := MathisThroughput(1460, time.Second, math.NaN()); err == nil {
		t.Error("NaN loss accepted")
	}
}

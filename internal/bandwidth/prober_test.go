package bandwidth

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"streamcache/internal/units"
)

const (
	testMSS = 1460
	testRTO = 400 * time.Millisecond
)

var testRTT = 100 * time.Millisecond

func TestPadhyeLossForRateRoundTrip(t *testing.T) {
	for _, rateKBps := range []float64{10, 50, 100, 200} {
		rate := units.KBps(rateKBps)
		loss, err := PadhyeLossForRate(rate, testMSS, testRTT, testRTO, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PadhyeThroughput(testMSS, testRTT, testRTO, loss, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-rate)/rate > 0.01 {
			t.Errorf("rate %v KB/s: Padhye(inverse) = %v, want within 1%%", rateKBps, units.ToKBps(got))
		}
	}
}

func TestPadhyeLossForRateClamps(t *testing.T) {
	// An absurdly fast target clamps to the minimum loss.
	loss, err := PadhyeLossForRate(1e12, testMSS, testRTT, testRTO, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-8 {
		t.Errorf("loss for huge rate = %v, want ~1e-9", loss)
	}
	// An absurdly slow target clamps to the maximum loss.
	loss, err = PadhyeLossForRate(1, testMSS, testRTT, testRTO, 1)
	if err != nil {
		t.Fatal(err)
	}
	if loss < 0.9 {
		t.Errorf("loss for 1 B/s = %v, want ~0.99", loss)
	}
}

func TestPadhyeLossForRateValidation(t *testing.T) {
	if _, err := PadhyeLossForRate(0, testMSS, testRTT, testRTO, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := PadhyeLossForRate(math.NaN(), testMSS, testRTT, testRTO, 1); err == nil {
		t.Error("NaN rate accepted")
	}
	if _, err := PadhyeLossForRate(100, 0, testRTT, testRTO, 1); err == nil {
		t.Error("zero mss accepted")
	}
}

func TestConditionsForRate(t *testing.T) {
	rate := units.KBps(80)
	cond, err := ConditionsForRate(rate, testMSS, testRTT, testRTO, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cond.RTT != testRTT {
		t.Errorf("RTT = %v, want %v", cond.RTT, testRTT)
	}
	if cond.Loss <= 0 || cond.Loss >= 1 {
		t.Errorf("loss = %v outside (0,1)", cond.Loss)
	}
}

func TestNewActiveProberValidation(t *testing.T) {
	good := PathConditions{RTT: testRTT, Loss: 0.01}
	if _, err := NewActiveProber(PathConditions{RTT: 0, Loss: 0.01}, testMSS, testRTO, 1, 0.1, 1); err == nil {
		t.Error("zero RTT accepted")
	}
	if _, err := NewActiveProber(PathConditions{RTT: testRTT, Loss: 0}, testMSS, testRTO, 1, 0.1, 1); err == nil {
		t.Error("zero loss accepted")
	}
	if _, err := NewActiveProber(good, 0, testRTO, 1, 0.1, 1); err == nil {
		t.Error("zero mss accepted")
	}
	if _, err := NewActiveProber(good, testMSS, testRTO, 1, -0.1, 1); err == nil {
		t.Error("negative jitter accepted")
	}
	if _, err := NewActiveProber(good, testMSS, testRTO, 1, 1, 1); err == nil {
		t.Error("jitter=1 accepted")
	}
}

func TestActiveProberNoiselessMatchesModel(t *testing.T) {
	cond := PathConditions{RTT: testRTT, Loss: 0.02}
	p, err := NewActiveProber(cond, testMSS, testRTO, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PadhyeThroughput(testMSS, testRTT, testRTO, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Estimate(); math.Abs(got-want) > 1e-9 {
		t.Errorf("noiseless estimate = %v, want %v", got, want)
	}
	// Observe must not disturb an active prober.
	p.Observe(1)
	if got := p.Estimate(); math.Abs(got-want) > 1e-9 {
		t.Error("Observe changed the active estimate")
	}
}

func TestActiveProberNoisyEstimatesCenterOnTruth(t *testing.T) {
	rate := units.KBps(60)
	cond, err := ConditionsForRate(rate, testMSS, testRTT, testRTO, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewActiveProber(cond, testMSS, testRTO, 1, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	const probes = 2000
	for i := 0; i < probes; i++ {
		est, err := p.Probe()
		if err != nil {
			t.Fatal(err)
		}
		if est <= 0 {
			t.Fatalf("probe %d: estimate %v <= 0", i, est)
		}
		sum += est
	}
	mean := sum / probes
	if math.Abs(mean-rate)/rate > 0.15 {
		t.Errorf("mean noisy estimate %v KB/s, want ~%v (+-15%%)",
			units.ToKBps(mean), units.ToKBps(rate))
	}
}

func TestActiveProberDeterministicForSeed(t *testing.T) {
	cond := PathConditions{RTT: testRTT, Loss: 0.01}
	a, err := NewActiveProber(cond, testMSS, testRTO, 1, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewActiveProber(cond, testMSS, testRTO, 1, 0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ea, err := a.Probe()
		if err != nil {
			t.Fatal(err)
		}
		eb, err := b.Probe()
		if err != nil {
			t.Fatal(err)
		}
		if ea != eb {
			t.Fatalf("probe %d differs for identical seeds", i)
		}
	}
}

func TestInverseMonotoneProperty(t *testing.T) {
	// Higher target rates must require lower loss.
	f := func(r1Raw, r2Raw uint16) bool {
		r1 := units.KBps(float64(r1Raw%400) + 5)
		r2 := units.KBps(float64(r2Raw%400) + 5)
		if r1 == r2 {
			return true
		}
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		l1, err := PadhyeLossForRate(r1, testMSS, testRTT, testRTO, 1)
		if err != nil {
			return false
		}
		l2, err := PadhyeLossForRate(r2, testMSS, testRTT, testRTO, 1)
		if err != nil {
			return false
		}
		return l1 >= l2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

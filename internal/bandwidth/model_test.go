package bandwidth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"streamcache/internal/units"
)

func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestConstantModel(t *testing.T) {
	c := Constant{Rate: 12345}
	if c.Sample(newRNG(1)) != 12345 || c.Mean() != 12345 {
		t.Error("Constant model must return its rate")
	}
}

func TestNewEmpiricalValidation(t *testing.T) {
	tests := []struct {
		name string
		pts  []CDFPoint
	}{
		{name: "too few points", pts: []CDFPoint{{X: 1, P: 0}}},
		{name: "first P not 0", pts: []CDFPoint{{X: 1, P: 0.1}, {X: 2, P: 1}}},
		{name: "last P not 1", pts: []CDFPoint{{X: 1, P: 0}, {X: 2, P: 0.9}}},
		{name: "X not increasing", pts: []CDFPoint{{X: 2, P: 0}, {X: 2, P: 1}}},
		{name: "P decreasing", pts: []CDFPoint{{X: 1, P: 0}, {X: 2, P: 0.5}, {X: 3, P: 0.4}, {X: 4, P: 1}}},
		{name: "negative X", pts: []CDFPoint{{X: -1, P: 0}, {X: 2, P: 1}}},
		{name: "NaN", pts: []CDFPoint{{X: math.NaN(), P: 0}, {X: 2, P: 1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewEmpirical(tt.pts); err == nil {
				t.Errorf("NewEmpirical(%v) accepted invalid points", tt.pts)
			}
		})
	}
}

func TestEmpiricalMeanUniform(t *testing.T) {
	// Uniform on [0, 100]: mean 50.
	e, err := NewEmpirical([]CDFPoint{{X: 0, P: 0}, {X: 100, P: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Mean(); math.Abs(got-50) > 1e-12 {
		t.Errorf("Mean() = %v, want 50", got)
	}
}

func TestEmpiricalInverseEndpoints(t *testing.T) {
	e, err := NewEmpirical([]CDFPoint{{X: 10, P: 0}, {X: 20, P: 0.5}, {X: 40, P: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Inverse(0); got != 10 {
		t.Errorf("Inverse(0) = %v, want 10", got)
	}
	if got := e.Inverse(1); got != 40 {
		t.Errorf("Inverse(1) = %v, want 40", got)
	}
	if got := e.Inverse(0.5); got != 20 {
		t.Errorf("Inverse(0.5) = %v, want 20", got)
	}
	if got := e.Inverse(0.75); got != 30 {
		t.Errorf("Inverse(0.75) = %v, want 30", got)
	}
	if e.Min() != 10 || e.Max() != 40 {
		t.Errorf("Min/Max = %v/%v, want 10/40", e.Min(), e.Max())
	}
}

func TestEmpiricalCDFAtRoundTrip(t *testing.T) {
	e, err := NewEmpirical([]CDFPoint{{X: 0, P: 0}, {X: 50, P: 0.4}, {X: 100, P: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.01, 0.2, 0.4, 0.5, 0.99} {
		x := e.Inverse(p)
		if got := e.CDFAt(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDFAt(Inverse(%v)) = %v, want %v", p, got, p)
		}
	}
	if got := e.CDFAt(-5); got != 0 {
		t.Errorf("CDFAt(-5) = %v, want 0", got)
	}
	if got := e.CDFAt(1000); got != 1 {
		t.Errorf("CDFAt(1000) = %v, want 1", got)
	}
}

func TestEmpiricalSampleMatchesCDF(t *testing.T) {
	e := NLANR()
	rng := newRNG(17)
	const samples = 100000
	below50, below100 := 0, 0
	for i := 0; i < samples; i++ {
		v := e.Sample(rng)
		if v < units.KBps(50) {
			below50++
		}
		if v < units.KBps(100) {
			below100++
		}
	}
	// Section 3.1: 37% of requests below 50 KB/s, 56% below 100 KB/s.
	if got := float64(below50) / samples; math.Abs(got-0.37) > 0.01 {
		t.Errorf("P[bw < 50KB/s] = %v, want 0.37 (+-0.01)", got)
	}
	if got := float64(below100) / samples; math.Abs(got-0.56) > 0.01 {
		t.Errorf("P[bw < 100KB/s] = %v, want 0.56 (+-0.01)", got)
	}
}

func TestNLANRAnchorsExact(t *testing.T) {
	e := NLANR()
	if got := e.CDFAt(units.KBps(50)); math.Abs(got-0.37) > 1e-12 {
		t.Errorf("CDF(50KB/s) = %v, want 0.37", got)
	}
	if got := e.CDFAt(units.KBps(100)); math.Abs(got-0.56) > 1e-12 {
		t.Errorf("CDF(100KB/s) = %v, want 0.56", got)
	}
	if e.Max() != units.KBps(450) {
		t.Errorf("Max = %v, want 450 KB/s", units.ToKBps(e.Max()))
	}
}

func TestFromSamples(t *testing.T) {
	samples := []float64{10, 20, 30, 40, 50}
	e, err := FromSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	if e.Min() != 10 || e.Max() != 50 {
		t.Errorf("Min/Max = %v/%v, want 10/50", e.Min(), e.Max())
	}
	if got := e.Mean(); math.Abs(got-30) > 1e-9 {
		t.Errorf("Mean = %v, want 30", got)
	}
}

func TestFromSamplesWithTies(t *testing.T) {
	e, err := FromSamples([]float64{5, 5, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := newRNG(3)
	for i := 0; i < 100; i++ {
		v := e.Sample(rng)
		if v < 5 || v > 10 {
			t.Fatalf("sample %v outside [5,10]", v)
		}
	}
}

func TestFromSamplesAllIdentical(t *testing.T) {
	e, err := FromSamples([]float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	v := e.Sample(newRNG(4))
	if math.Abs(v-7) > 1e-6 {
		t.Errorf("sample of degenerate distribution = %v, want ~7", v)
	}
}

func TestFromSamplesErrors(t *testing.T) {
	if _, err := FromSamples(nil); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := FromSamples([]float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FromSamples([]float64{-1, 5}); err == nil {
		t.Error("negative sample accepted")
	}
}

func TestFromSamplesRoundTripProperty(t *testing.T) {
	// Building an Empirical from samples of another Empirical must
	// roughly preserve the mean.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := NLANR()
		samples := make([]float64, 2000)
		for i := range samples {
			samples[i] = src.Sample(rng)
		}
		e, err := FromSamples(samples)
		if err != nil {
			return false
		}
		return math.Abs(e.Mean()-src.Mean())/src.Mean() < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNoVariation(t *testing.T) {
	var v NoVariation
	if v.Ratio(newRNG(1)) != 1 || v.CoV() != 0 {
		t.Error("NoVariation must have ratio 1 and CoV 0")
	}
}

func TestNewLognormalRatioValidation(t *testing.T) {
	for _, sigma := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := NewLognormalRatio(sigma); err == nil {
			t.Errorf("sigma=%v accepted", sigma)
		}
	}
	if _, err := NewLognormalRatio(0); err != nil {
		t.Errorf("sigma=0 rejected: %v", err)
	}
}

func TestLognormalRatioMeanOne(t *testing.T) {
	for _, v := range []LognormalRatio{NLANRVariability(), MeasuredVariability(), INRIAVariability(), FarEastVariability()} {
		rng := newRNG(21)
		sum := 0.0
		const n = 100000
		for i := 0; i < n; i++ {
			sum += v.Ratio(rng)
		}
		if got := sum / n; math.Abs(got-1) > 0.02 {
			t.Errorf("sigma=%v: mean ratio %v, want 1 (+-0.02)", v.Sigma, got)
		}
	}
}

func TestNLANRVariabilityMatchesFigure3(t *testing.T) {
	// Figure 3: ~70% of samples are 0.5-1.5x the mean.
	v := NLANRVariability()
	rng := newRNG(22)
	const n = 100000
	within := 0
	over3 := 0
	for i := 0; i < n; i++ {
		r := v.Ratio(rng)
		if r >= 0.5 && r <= 1.5 {
			within++
		}
		if r > 3 {
			over3++
		}
	}
	frac := float64(within) / n
	if frac < 0.65 || frac > 0.75 {
		t.Errorf("P[0.5 <= ratio <= 1.5] = %v, want ~0.70", frac)
	}
	// The ratio tail must occasionally exceed 3x as in Figure 3(a).
	if over3 == 0 {
		t.Error("no ratio samples above 3x; Figure 3 shows a tail beyond 3")
	}
}

func TestVariabilityOrdering(t *testing.T) {
	// The paper's key observation: measured paths vary much less than
	// the NLANR-derived model. CoV must order NLANR > FarEast > Measured* > INRIA.
	nlanr := NLANRVariability().CoV()
	farEast := FarEastVariability().CoV()
	measured := MeasuredVariability().CoV()
	inria := INRIAVariability().CoV()
	if !(nlanr > farEast && farEast > measured && measured > inria && inria > 0) {
		t.Errorf("CoV ordering violated: nlanr=%v farEast=%v measured=%v inria=%v",
			nlanr, farEast, measured, inria)
	}
	if nlanr < 1.5*measured {
		t.Errorf("NLANR CoV (%v) should be well above measured CoV (%v)", nlanr, measured)
	}
}

func TestPathInstantFloor(t *testing.T) {
	p := Path{MeanRate: 10, Variation: NoVariation{}}
	if got := p.Instant(newRNG(1)); got != floorRate {
		t.Errorf("Instant() = %v, want floor %v", got, floorRate)
	}
	p2 := Path{MeanRate: 1e6, Variation: NoVariation{}}
	if got := p2.Instant(newRNG(1)); got != 1e6 {
		t.Errorf("Instant() = %v, want 1e6", got)
	}
}

func TestPathInstantPositiveProperty(t *testing.T) {
	f := func(seed int64, meanRaw uint32) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NLANRVariability()
		p := Path{MeanRate: float64(meanRaw), Variation: v}
		for i := 0; i < 50; i++ {
			if p.Instant(rng) < floorRate {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGenerateSeriesValidation(t *testing.T) {
	rng := newRNG(1)
	base := SeriesConfig{Mean: 1e5, Sigma: 0.2, Phi: 0.8, DiurnalAmp: 0.1, Step: time.Minute}
	tests := []struct {
		name   string
		mutate func(*SeriesConfig)
		n      int
	}{
		{name: "zero mean", mutate: func(c *SeriesConfig) { c.Mean = 0 }, n: 10},
		{name: "negative sigma", mutate: func(c *SeriesConfig) { c.Sigma = -1 }, n: 10},
		{name: "phi = 1", mutate: func(c *SeriesConfig) { c.Phi = 1 }, n: 10},
		{name: "diurnal >= 1", mutate: func(c *SeriesConfig) { c.DiurnalAmp = 1 }, n: 10},
		{name: "zero step", mutate: func(c *SeriesConfig) { c.Step = 0 }, n: 10},
		{name: "zero n", mutate: func(*SeriesConfig) {}, n: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := GenerateSeries(cfg, rng, tt.n); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGenerateSeriesShape(t *testing.T) {
	cfg, err := PresetSeriesConfig(PathINRIA)
	if err != nil {
		t.Fatal(err)
	}
	// 45 hours of 4-minute samples, as in Figure 4.
	n := int(45 * time.Hour / cfg.Step)
	series, err := GenerateSeries(cfg, newRNG(31), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != n {
		t.Fatalf("len(series) = %d, want %d", len(series), n)
	}
	sum := 0.0
	for i, s := range series {
		if s.Rate <= 0 {
			t.Fatalf("sample %d: rate %v <= 0", i, s.Rate)
		}
		if s.T != time.Duration(i)*cfg.Step {
			t.Fatalf("sample %d: T = %v, want %v", i, s.T, time.Duration(i)*cfg.Step)
		}
		sum += s.Rate
	}
	mean := sum / float64(n)
	if math.Abs(mean-cfg.Mean)/cfg.Mean > 0.15 {
		t.Errorf("series mean %v, want ~%v (+-15%%)", mean, cfg.Mean)
	}
}

func TestPresetSeriesVariabilityOrdering(t *testing.T) {
	// Figure 4: "the INRIA server appears to have much lower variability
	// than the other two servers".
	cov := func(p PresetPath) float64 {
		cfg, err := PresetSeriesConfig(p)
		if err != nil {
			t.Fatal(err)
		}
		series, err := GenerateSeries(cfg, newRNG(33), 600)
		if err != nil {
			t.Fatal(err)
		}
		sum, sumSq := 0.0, 0.0
		for _, s := range series {
			sum += s.Rate
		}
		mean := sum / float64(len(series))
		for _, s := range series {
			d := s.Rate - mean
			sumSq += d * d
		}
		return math.Sqrt(sumSq/float64(len(series)-1)) / mean
	}
	inria, taiwan := cov(PathINRIA), cov(PathTaiwan)
	if inria >= taiwan {
		t.Errorf("INRIA CoV (%v) should be below Taiwan CoV (%v)", inria, taiwan)
	}
}

func TestPresetSeriesConfigUnknown(t *testing.T) {
	if _, err := PresetSeriesConfig(PresetPath(99)); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestPresetPathString(t *testing.T) {
	tests := []struct {
		p    PresetPath
		want string
	}{
		{PathINRIA, "INRIA,France"},
		{PathTaiwan, "Taiwan"},
		{PathHongKong, "HongKong"},
		{PresetPath(42), "PresetPath(42)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

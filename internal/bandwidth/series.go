package bandwidth

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// SeriesConfig parameterizes a synthetic bandwidth time series for a
// single Internet path, reproducing the structure of the paper's Figure 4
// measurements (one sample every four minutes over 30-45 hours): an AR(1)
// process on log-bandwidth around the path mean plus a diurnal component.
type SeriesConfig struct {
	Mean        float64       // long-term mean bandwidth, bytes/s
	Sigma       float64       // stationary std dev of log-bandwidth
	Phi         float64       // AR(1) coefficient in [0, 1)
	DiurnalAmp  float64       // relative amplitude of the 24h cycle, in [0, 1)
	Step        time.Duration // sampling interval (paper: 4 minutes)
	DiurnalStep time.Duration // period of the diurnal cycle (default 24h)
}

// SeriesSample is one point of a bandwidth time series.
type SeriesSample struct {
	T    time.Duration
	Rate float64 // bytes/s
}

// GenerateSeries produces n samples of the path's bandwidth evolution.
func GenerateSeries(cfg SeriesConfig, rng *rand.Rand, n int) ([]SeriesSample, error) {
	if cfg.Mean <= 0 || math.IsNaN(cfg.Mean) {
		return nil, fmt.Errorf("%w: series mean=%v, want > 0", ErrBadParam, cfg.Mean)
	}
	if cfg.Sigma < 0 || math.IsNaN(cfg.Sigma) {
		return nil, fmt.Errorf("%w: series sigma=%v, want >= 0", ErrBadParam, cfg.Sigma)
	}
	if cfg.Phi < 0 || cfg.Phi >= 1 {
		return nil, fmt.Errorf("%w: series phi=%v, want in [0,1)", ErrBadParam, cfg.Phi)
	}
	if cfg.DiurnalAmp < 0 || cfg.DiurnalAmp >= 1 {
		return nil, fmt.Errorf("%w: series diurnal amplitude=%v, want in [0,1)", ErrBadParam, cfg.DiurnalAmp)
	}
	if cfg.Step <= 0 {
		return nil, fmt.Errorf("%w: series step=%v, want > 0", ErrBadParam, cfg.Step)
	}
	if n <= 0 {
		return nil, fmt.Errorf("%w: series n=%d, want > 0", ErrBadParam, n)
	}
	day := cfg.DiurnalStep
	if day == 0 {
		day = 24 * time.Hour
	}
	// Innovation std dev that yields stationary variance sigma^2.
	innov := cfg.Sigma * math.Sqrt(1-cfg.Phi*cfg.Phi)
	// Start the AR process at its stationary distribution.
	x := cfg.Sigma * rng.NormFloat64()
	out := make([]SeriesSample, n)
	for i := 0; i < n; i++ {
		t := time.Duration(i) * cfg.Step
		phase := 2 * math.Pi * float64(t) / float64(day)
		diurnal := 1 + cfg.DiurnalAmp*math.Sin(phase)
		// Mean-correct the lognormal factor so E[rate] ~= Mean*diurnal.
		rate := cfg.Mean * diurnal * math.Exp(x-cfg.Sigma*cfg.Sigma/2)
		if rate < floorRate {
			rate = floorRate
		}
		out[i] = SeriesSample{T: t, Rate: rate}
		x = cfg.Phi*x + innov*rng.NormFloat64()
	}
	return out, nil
}

// PresetPath identifies one of the three measured paths from Figure 4.
type PresetPath int

// The three measured paths of Figure 4.
const (
	PathINRIA    PresetPath = iota + 1 // BU -> INRIA, France: low variability
	PathTaiwan                         // BU -> Taiwan: moderate variability
	PathHongKong                       // BU -> Hong Kong: moderate variability
)

// String returns the path's label.
func (p PresetPath) String() string {
	switch p {
	case PathINRIA:
		return "INRIA,France"
	case PathTaiwan:
		return "Taiwan"
	case PathHongKong:
		return "HongKong"
	default:
		return fmt.Sprintf("PresetPath(%d)", int(p))
	}
}

// PresetSeriesConfig returns a series configuration modeled on one of the
// paper's measured paths: 4-minute samples, path-specific mean and
// variability (Figure 4 shows means of roughly 40-150 KB/s and clearly
// path-dependent spread).
func PresetSeriesConfig(p PresetPath) (SeriesConfig, error) {
	const fourMinutes = 4 * time.Minute
	switch p {
	case PathINRIA:
		return SeriesConfig{Mean: 150 * 1024, Sigma: sigmaINRIA, Phi: 0.8, DiurnalAmp: 0.05, Step: fourMinutes}, nil
	case PathTaiwan:
		return SeriesConfig{Mean: 60 * 1024, Sigma: sigmaFarEast, Phi: 0.7, DiurnalAmp: 0.25, Step: fourMinutes}, nil
	case PathHongKong:
		return SeriesConfig{Mean: 90 * 1024, Sigma: sigmaFarEast, Phi: 0.75, DiurnalAmp: 0.15, Step: fourMinutes}, nil
	default:
		return SeriesConfig{}, fmt.Errorf("%w: unknown preset path %d", ErrBadParam, int(p))
	}
}

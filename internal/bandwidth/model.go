// Package bandwidth models Internet path bandwidth the way the paper's
// evaluation does (Section 3.1): a base (long-term mean) bandwidth per
// cache-origin path drawn from an NLANR-log-like distribution, multiplied
// by a sample-to-mean variability ratio whose spread depends on whether
// the variability model comes from the NLANR logs (high, Figure 3) or
// from measured Internet paths (low, Figure 4). It also provides the
// bandwidth estimators of Section 2.7: passive EWMA observation of past
// transfers and the active TCP-throughput model.
//
// All rates are bytes per second.
package bandwidth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"sync"

	"streamcache/internal/dist"
	"streamcache/internal/units"
)

// ErrBadParam reports an invalid model parameter.
var ErrBadParam = errors.New("bandwidth: invalid parameter")

// Model draws the long-term mean bandwidth of a fresh cache-origin path.
type Model interface {
	// Sample draws one path's mean bandwidth in bytes/s.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution mean in bytes/s.
	Mean() float64
}

// Constant is a degenerate model: every path has the same bandwidth.
type Constant struct {
	Rate float64
}

// Sample returns the constant rate.
func (c Constant) Sample(*rand.Rand) float64 { return c.Rate }

// Mean returns the constant rate.
func (c Constant) Mean() float64 { return c.Rate }

// CDFPoint is one control point of a piecewise-linear CDF: P[X <= X] = P.
type CDFPoint struct {
	X float64 // bandwidth, bytes/s
	P float64 // cumulative probability
}

// Empirical is a piecewise-linear-CDF bandwidth distribution. It backs
// both the reconstructed NLANR distribution and distributions derived
// from analyzed proxy logs.
type Empirical struct {
	pts  []CDFPoint
	mean float64
}

// NewEmpirical builds a distribution from CDF control points. Points must
// be strictly increasing in X, non-decreasing in P, start at P=0 and end
// at P=1.
func NewEmpirical(points []CDFPoint) (*Empirical, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 CDF points, got %d", ErrBadParam, len(points))
	}
	for i, p := range points {
		if math.IsNaN(p.X) || math.IsNaN(p.P) || p.X < 0 {
			return nil, fmt.Errorf("%w: CDF point %d = %+v", ErrBadParam, i, p)
		}
		if i > 0 {
			if p.X <= points[i-1].X {
				return nil, fmt.Errorf("%w: CDF X not strictly increasing at %d", ErrBadParam, i)
			}
			if p.P < points[i-1].P {
				return nil, fmt.Errorf("%w: CDF P decreasing at %d", ErrBadParam, i)
			}
		}
	}
	if points[0].P != 0 {
		return nil, fmt.Errorf("%w: first CDF point P=%v, want 0", ErrBadParam, points[0].P)
	}
	if points[len(points)-1].P != 1 {
		return nil, fmt.Errorf("%w: last CDF point P=%v, want 1", ErrBadParam, points[len(points)-1].P)
	}
	pts := make([]CDFPoint, len(points))
	copy(pts, points)
	mean := 0.0
	for i := 1; i < len(pts); i++ {
		// Density is uniform within each linear segment.
		mean += (pts[i].P - pts[i-1].P) * (pts[i].X + pts[i-1].X) / 2
	}
	return &Empirical{pts: pts, mean: mean}, nil
}

// FromSamples builds an Empirical distribution from raw bandwidth samples
// (e.g. throughput samples extracted from a proxy log). The CDF is the
// piecewise-linear interpolation of the sorted samples.
func FromSamples(samples []float64) (*Empirical, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 samples, got %d", ErrBadParam, len(samples))
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	slices.Sort(s)
	if s[0] < 0 {
		return nil, fmt.Errorf("%w: negative bandwidth sample %v", ErrBadParam, s[0])
	}
	pts := make([]CDFPoint, 0, len(s))
	n := float64(len(s))
	for i, x := range s {
		p := float64(i) / (n - 1)
		if len(pts) > 0 && x <= pts[len(pts)-1].X {
			// Collapse ties, keeping the largest P.
			pts[len(pts)-1].P = p
			continue
		}
		pts = append(pts, CDFPoint{X: x, P: p})
	}
	if len(pts) < 2 {
		// All samples identical: widen into a degenerate two-point CDF.
		x := pts[0].X
		pts = []CDFPoint{{X: x, P: 0}, {X: x + 1e-9, P: 1}}
	}
	pts[0].P = 0
	pts[len(pts)-1].P = 1
	return NewEmpirical(pts)
}

// Sample draws a bandwidth by inverse-transform sampling with linear
// interpolation between control points.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	return e.Inverse(u)
}

// Inverse returns the bandwidth at cumulative probability p.
func (e *Empirical) Inverse(p float64) float64 {
	if p <= 0 {
		return e.pts[0].X
	}
	if p >= 1 {
		return e.pts[len(e.pts)-1].X
	}
	i := sort.Search(len(e.pts), func(i int) bool { return e.pts[i].P >= p })
	if i == 0 {
		return e.pts[0].X
	}
	lo, hi := e.pts[i-1], e.pts[i]
	if hi.P == lo.P {
		return hi.X
	}
	frac := (p - lo.P) / (hi.P - lo.P)
	return lo.X + frac*(hi.X-lo.X)
}

// CDFAt returns P[X <= x].
func (e *Empirical) CDFAt(x float64) float64 {
	if x <= e.pts[0].X {
		return e.pts[0].P
	}
	last := e.pts[len(e.pts)-1]
	if x >= last.X {
		return last.P
	}
	i := sort.Search(len(e.pts), func(i int) bool { return e.pts[i].X >= x })
	lo, hi := e.pts[i-1], e.pts[i]
	frac := (x - lo.X) / (hi.X - lo.X)
	return lo.P + frac*(hi.P-lo.P)
}

// Mean returns the distribution mean.
func (e *Empirical) Mean() float64 { return e.mean }

// Min returns the smallest representable bandwidth.
func (e *Empirical) Min() float64 { return e.pts[0].X }

// Max returns the largest representable bandwidth.
func (e *Empirical) Max() float64 { return e.pts[len(e.pts)-1].X }

// NLANR reconstructs the base bandwidth distribution the paper derived
// from the NLANR UC proxy-cache log (Figure 2). The control points anchor
// the two facts stated in Section 3.1 - 37% of requests below 50 KB/s and
// 56% below 100 KB/s - and spread the remaining mass over a tail reaching
// 450 KB/s as in the published histogram.
//
// The returned value is a shared, immutable package singleton: Empirical
// never mutates after construction, and a stable identity is what lets
// sim's workload/path arena key per-path bandwidth assignments on the
// model across sweep points.
func NLANR() *Empirical { return nlanrSingleton() }

var nlanrSingleton = sync.OnceValue(buildNLANR)

func buildNLANR() *Empirical {
	kb := func(v float64) float64 { return units.KBps(v) }
	pts := []CDFPoint{
		{X: kb(8), P: 0},
		{X: kb(15), P: 0.08},
		{X: kb(20), P: 0.16},
		{X: kb(30), P: 0.24},
		{X: kb(40), P: 0.31},
		{X: kb(50), P: 0.37},
		{X: kb(60), P: 0.42},
		{X: kb(75), P: 0.48},
		{X: kb(100), P: 0.56},
		{X: kb(125), P: 0.63},
		{X: kb(150), P: 0.68},
		{X: kb(200), P: 0.77},
		{X: kb(250), P: 0.84},
		{X: kb(300), P: 0.89},
		{X: kb(350), P: 0.93},
		{X: kb(400), P: 0.965},
		{X: kb(450), P: 1},
	}
	e, err := NewEmpirical(pts)
	if err != nil {
		// The points above are constants validated by tests; this cannot
		// fail at runtime.
		panic(fmt.Sprintf("bandwidth: NLANR control points invalid: %v", err))
	}
	return e
}

// Variability draws sample-to-mean bandwidth ratios: the instantaneous
// bandwidth of a path is its mean multiplied by Ratio().
type Variability interface {
	Ratio(rng *rand.Rand) float64
	// CoV returns the analytic coefficient of variation of the ratio.
	CoV() float64
}

// NoVariation always returns ratio 1 (the paper's constant-bandwidth
// assumption of Sections 2.2-2.4 and Figure 5).
type NoVariation struct{}

// Ratio returns 1.
func (NoVariation) Ratio(*rand.Rand) float64 { return 1 }

// CoV returns 0.
func (NoVariation) CoV() float64 { return 0 }

// LognormalRatio draws mean-1 lognormal ratios; Sigma controls the
// variability level.
type LognormalRatio struct {
	Sigma float64

	ln dist.Lognormal
}

// NewLognormalRatio builds a mean-1 lognormal ratio model.
func NewLognormalRatio(sigma float64) (LognormalRatio, error) {
	if sigma < 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return LognormalRatio{}, fmt.Errorf("%w: ratio sigma=%v, want >= 0", ErrBadParam, sigma)
	}
	return LognormalRatio{Sigma: sigma, ln: dist.MeanOne(sigma)}, nil
}

// Ratio draws one sample-to-mean ratio.
func (l LognormalRatio) Ratio(rng *rand.Rand) float64 { return l.ln.Sample(rng) }

// CoV returns sqrt(exp(sigma^2) - 1).
func (l LognormalRatio) CoV() float64 {
	return math.Sqrt(math.Exp(l.Sigma*l.Sigma) - 1)
}

// Sigma levels calibrated in DESIGN.md section 3: the NLANR level places
// ~70% of ratio samples within [0.5, 1.5] as Figure 3 reports; measured
// Internet paths (Figure 4) vary much less.
const (
	sigmaNLANR    = 0.55
	sigmaMeasured = 0.25
	sigmaINRIA    = 0.15
	sigmaFarEast  = 0.30
)

func mustRatio(sigma float64) LognormalRatio {
	l, err := NewLognormalRatio(sigma)
	if err != nil {
		panic(fmt.Sprintf("bandwidth: ratio sigma constant invalid: %v", err))
	}
	return l
}

// NLANRVariability returns the high-variability ratio model derived from
// the NLANR logs (Figure 3): about 70% of samples within 0.5-1.5x the
// mean, with a tail beyond 3x.
func NLANRVariability() LognormalRatio { return mustRatio(sigmaNLANR) }

// MeasuredVariability returns the lower-variability model matching the
// paper's measured Internet paths (Figure 4), used for Figures 8 and 11.
func MeasuredVariability() LognormalRatio { return mustRatio(sigmaMeasured) }

// INRIAVariability models the least-variable measured path (BU->INRIA).
func INRIAVariability() LognormalRatio { return mustRatio(sigmaINRIA) }

// FarEastVariability models the moderately variable measured paths
// (BU->Taiwan, BU->Hong Kong).
func FarEastVariability() LognormalRatio { return mustRatio(sigmaFarEast) }

// Path is a cache-origin path with a fixed mean bandwidth and a
// variability process.
type Path struct {
	MeanRate  float64
	Variation Variability
}

// floorRate is the minimum instantaneous bandwidth, preventing division
// by ~zero in delay formulas (1 KB/s).
const floorRate = 1024.0

// Instant draws the path's instantaneous bandwidth.
//mediavet:hotpath
func (p Path) Instant(rng *rand.Rand) float64 {
	r := p.MeanRate * p.Variation.Ratio(rng)
	if r < floorRate {
		r = floorRate
	}
	return r
}

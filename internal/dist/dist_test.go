package dist

import (
	"math"
	"math/rand"
	"testing"
)

const samples = 200000

func TestLognormalSampleMean(t *testing.T) {
	// Table 1 duration distribution: Lognormal(3.85, 0.56) in minutes.
	l := Lognormal{Mu: 3.85, Sigma: 0.56}
	rng := rand.New(rand.NewSource(1))
	sum := 0.0
	for i := 0; i < samples; i++ {
		sum += l.Sample(rng)
	}
	got := sum / samples
	want := l.Mean()
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("sample mean %v, analytic mean %v (>2%% off)", got, want)
	}
}

func TestLognormalSampleCoV(t *testing.T) {
	l := Lognormal{Mu: 0, Sigma: 0.56}
	rng := rand.New(rand.NewSource(2))
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		x := l.Sample(rng)
		sum += x
		sumSq += x * x
	}
	mean := sum / samples
	variance := sumSq/samples - mean*mean
	got := math.Sqrt(variance) / mean
	want := l.CoV()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("sample CoV %v, analytic CoV %v (>5%% off)", got, want)
	}
}

func TestMeanOneProperty(t *testing.T) {
	for _, sigma := range []float64{0, 0.15, 0.25, 0.55, 1.0} {
		l := MeanOne(sigma)
		if got := l.Mean(); math.Abs(got-1) > 1e-12 {
			t.Errorf("MeanOne(%v).Mean() = %v, want 1", sigma, got)
		}
		rng := rand.New(rand.NewSource(3))
		sum := 0.0
		for i := 0; i < samples; i++ {
			sum += l.Sample(rng)
		}
		got := sum / samples
		// Tolerance widens with sigma: the estimator variance is CoV^2/n.
		tol := 0.01 + 3*l.CoV()/math.Sqrt(samples)
		if math.Abs(got-1) > tol {
			t.Errorf("MeanOne(%v) sample mean %v, want 1 (+-%v)", sigma, got, tol)
		}
	}
}

func TestMeanOneZeroSigmaIsDegenerate(t *testing.T) {
	l := MeanOne(0)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		if got := l.Sample(rng); got != 1 {
			t.Fatalf("MeanOne(0).Sample = %v, want exactly 1", got)
		}
	}
}

func TestUniformRangeAndMean(t *testing.T) {
	u := Uniform{Min: 1, Max: 10}
	rng := rand.New(rand.NewSource(5))
	sum := 0.0
	for i := 0; i < samples; i++ {
		x := u.Sample(rng)
		if x < 1 || x >= 10 {
			t.Fatalf("sample %v outside [1, 10)", x)
		}
		sum += x
	}
	got := sum / samples
	if math.Abs(got-u.Mean()) > 0.05 {
		t.Errorf("sample mean %v, want %v", got, u.Mean())
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(0, 0.73); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(-5, 0.73); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewZipf(10, -0.1); err == nil {
		t.Error("negative alpha accepted")
	}
	if _, err := NewZipf(10, math.NaN()); err == nil {
		t.Error("NaN alpha accepted")
	}
	if _, err := NewZipf(10, math.Inf(1)); err == nil {
		t.Error("Inf alpha accepted")
	}
}

func TestZipfRankProbabilityMonotone(t *testing.T) {
	z, err := NewZipf(1000, 0.73)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for r := 1; r <= z.N(); r++ {
		p := z.P(r)
		if p <= 0 {
			t.Fatalf("P(%d) = %v, want > 0", r, p)
		}
		if r > 1 && p >= z.P(r-1) {
			t.Fatalf("P(%d)=%v >= P(%d)=%v; rank probabilities must strictly decrease", r, p, r-1, z.P(r-1))
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("probabilities sum to %v, want 1", total)
	}
	// The defining Zipf property: P(r)/P(2r) = 2^alpha.
	got := z.P(1) / z.P(2)
	want := math.Pow(2, 0.73)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("P(1)/P(2) = %v, want %v", got, want)
	}
}

func TestZipfSampleBoundsAndSkew(t *testing.T) {
	const n = 100
	z, err := NewZipf(n, 0.73)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	counts := make([]int, n+1)
	for i := 0; i < samples; i++ {
		r := z.Sample(rng)
		if r < 1 || r > n {
			t.Fatalf("sample %d outside 1..%d", r, n)
		}
		counts[r]++
	}
	// Empirical frequencies must track the analytic PMF at head ranks.
	for r := 1; r <= 3; r++ {
		got := float64(counts[r]) / samples
		want := z.P(r)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("empirical P(%d) = %v, analytic %v", r, got, want)
		}
	}
	if counts[1] <= counts[n] {
		t.Errorf("rank 1 count %d not above rank %d count %d", counts[1], n, counts[n])
	}
}

func TestZipfUniformWhenAlphaZero(t *testing.T) {
	z, err := NewZipf(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r <= 50; r++ {
		if math.Abs(z.P(r)-0.02) > 1e-12 {
			t.Fatalf("alpha=0: P(%d) = %v, want 0.02", r, z.P(r))
		}
	}
}

func TestParetoValidation(t *testing.T) {
	bad := []struct{ shape, scale float64 }{
		{0, 1}, {-1, 1}, {math.NaN(), 1}, {math.Inf(1), 1},
		{1.5, 0}, {1.5, -2}, {1.5, math.NaN()}, {1.5, math.Inf(1)},
	}
	for _, b := range bad {
		if _, err := NewPareto(b.shape, b.scale); err == nil {
			t.Errorf("NewPareto(%v, %v) accepted", b.shape, b.scale)
		}
	}
	// A finite mean needs shape > 1.
	for _, shape := range []float64{0.5, 1} {
		if _, err := ParetoWithMean(shape, 2); err == nil {
			t.Errorf("ParetoWithMean(shape=%v) accepted", shape)
		}
	}
}

func TestParetoSampleBoundsAndMean(t *testing.T) {
	for _, tc := range []struct{ shape, mean float64 }{
		{1.5, 2.0},
		{2.5, 0.5},
	} {
		p, err := ParetoWithMean(tc.shape, tc.mean)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Mean(); math.Abs(got-tc.mean)/tc.mean > 1e-12 {
			t.Errorf("ParetoWithMean(%v, %v).Mean() = %v", tc.shape, tc.mean, got)
		}
		rng := rand.New(rand.NewSource(8))
		sum := 0.0
		for i := 0; i < samples; i++ {
			x := p.Sample(rng)
			if x < p.Scale {
				t.Fatalf("sample %v below scale %v", x, p.Scale)
			}
			sum += x
		}
		got := sum / samples
		// Heavy tails make the sample-mean estimator noisy; 15% covers the
		// shape=1.5 (infinite variance) case at this sample count and seed.
		if math.Abs(got-tc.mean)/tc.mean > 0.15 {
			t.Errorf("shape %v: sample mean %v, want ~%v", tc.shape, got, tc.mean)
		}
	}
}

func TestParetoInfiniteMeanReported(t *testing.T) {
	p, err := NewPareto(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Mean(), 1) {
		t.Errorf("shape=1 mean %v, want +Inf", p.Mean())
	}
}

func TestPoissonProcessValidation(t *testing.T) {
	for _, rate := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewPoissonProcess(rate); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}

func TestPoissonProcessRateAndCoV(t *testing.T) {
	const rate = 2.5
	p, err := NewPoissonProcess(rate)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	prev := 0.0
	var sum, sumSq float64
	for i := 0; i < samples; i++ {
		now := p.Next(rng)
		if now <= prev {
			t.Fatalf("arrival %d: time %v not strictly increasing past %v", i, now, prev)
		}
		gap := now - prev
		sum += gap
		sumSq += gap * gap
		prev = now
	}
	meanGap := sum / samples
	if math.Abs(meanGap-1/rate)*rate > 0.02 {
		t.Errorf("mean inter-arrival %v, want %v (+-2%%)", meanGap, 1/rate)
	}
	variance := sumSq/samples - meanGap*meanGap
	cov := math.Sqrt(variance) / meanGap
	// Exponential gaps have CoV exactly 1.
	if math.Abs(cov-1) > 0.03 {
		t.Errorf("inter-arrival CoV %v, want ~1", cov)
	}
}

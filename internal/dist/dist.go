// Package dist provides the random distributions the workload and
// bandwidth models are built from: lognormal object durations (GISMO /
// Table 1), uniform object values (Section 2.6), Zipf-like popularity
// with arbitrary skew alpha (the paper uses alpha = 0.73, below the
// range Go's stdlib Zipf accepts), and homogeneous Poisson arrival
// processes.
//
// Every sampler takes the *rand.Rand explicitly so callers control the
// random stream; none keeps hidden global state. This is what makes the
// parallel experiment engine deterministic: each simulation run owns a
// private rand.Rand and the distributions never share entropy across
// runs.
package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// ErrBadParam reports an invalid distribution parameter.
var ErrBadParam = errors.New("dist: invalid parameter")

// Lognormal is the distribution of exp(N(Mu, Sigma^2)).
type Lognormal struct {
	Mu    float64
	Sigma float64
}

// Sample draws one lognormal variate.
func (l Lognormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns the analytic mean exp(Mu + Sigma^2/2).
func (l Lognormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// CoV returns the analytic coefficient of variation
// sqrt(exp(Sigma^2) - 1), which depends on Sigma only.
func (l Lognormal) CoV() float64 {
	return math.Sqrt(math.Exp(l.Sigma*l.Sigma) - 1)
}

// MeanOne returns the lognormal with the given sigma whose mean is
// exactly 1 (Mu = -sigma^2/2). The bandwidth package uses it for
// sample-to-mean variability ratios, so that variability never changes
// a path's long-term mean rate.
func MeanOne(sigma float64) Lognormal {
	return Lognormal{Mu: -sigma * sigma / 2, Sigma: sigma}
}

// Uniform is the continuous uniform distribution on [Min, Max).
type Uniform struct {
	Min float64
	Max float64
}

// Sample draws one uniform variate.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	return u.Min + rng.Float64()*(u.Max-u.Min)
}

// Mean returns (Min + Max) / 2.
func (u Uniform) Mean() float64 { return (u.Min + u.Max) / 2 }

// Zipf is a Zipf-like popularity distribution over ranks 1..N with
// P(rank = r) proportional to r^-alpha. Unlike math/rand.Zipf it
// accepts any alpha >= 0, in particular the paper's 0.73.
type Zipf struct {
	n     int
	alpha float64
	cdf   []float64 // cdf[i] = P(rank <= i+1); cdf[n-1] == 1
}

// NewZipf builds the distribution over ranks 1..n with skew alpha.
func NewZipf(n int, alpha float64) (*Zipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: zipf n=%d, want > 0", ErrBadParam, n)
	}
	if alpha < 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		return nil, fmt.Errorf("%w: zipf alpha=%v, want finite >= 0", ErrBadParam, alpha)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for r := 1; r <= n; r++ {
		sum += math.Pow(float64(r), -alpha)
		cdf[r-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding leaving it at 1-eps
	return &Zipf{n: n, alpha: alpha, cdf: cdf}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// Alpha returns the skew parameter.
func (z *Zipf) Alpha() float64 { return z.alpha }

// P returns the probability of rank r (0 outside 1..N).
func (z *Zipf) P(r int) float64 {
	if r < 1 || r > z.n {
		return 0
	}
	if r == 1 {
		return z.cdf[0]
	}
	return z.cdf[r-1] - z.cdf[r-2]
}

// Sample draws one rank in 1..N by inverse-transform over the
// precomputed CDF (O(log N)).
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	i, _ := slices.BinarySearch(z.cdf, u)
	return i + 1
}

// Pareto is the Pareto (power-law) distribution with minimum Scale and
// tail index Shape: P(X > x) = (Scale/x)^Shape for x >= Scale. Shapes
// in (1, 2) have a finite mean but infinite variance — the heavy-tailed
// on/off periods whose superposition produces self-similar arrival
// streams (Willinger et al.), used by the open-loop load generator's
// bursty arrival process.
type Pareto struct {
	Shape float64 // tail index, > 0
	Scale float64 // minimum value, > 0
}

// NewPareto validates the parameters.
func NewPareto(shape, scale float64) (Pareto, error) {
	if shape <= 0 || math.IsNaN(shape) || math.IsInf(shape, 0) {
		return Pareto{}, fmt.Errorf("%w: pareto shape=%v, want finite > 0", ErrBadParam, shape)
	}
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		return Pareto{}, fmt.Errorf("%w: pareto scale=%v, want finite > 0", ErrBadParam, scale)
	}
	return Pareto{Shape: shape, Scale: scale}, nil
}

// ParetoWithMean returns the Pareto with the given tail index whose mean
// is exactly mean (requires shape > 1, where the mean is finite).
func ParetoWithMean(shape, mean float64) (Pareto, error) {
	if shape <= 1 || math.IsNaN(shape) || math.IsInf(shape, 0) {
		return Pareto{}, fmt.Errorf("%w: pareto shape=%v, want finite > 1 for a finite mean", ErrBadParam, shape)
	}
	if mean <= 0 || math.IsNaN(mean) || math.IsInf(mean, 0) {
		return Pareto{}, fmt.Errorf("%w: pareto mean=%v, want finite > 0", ErrBadParam, mean)
	}
	return NewPareto(shape, mean*(shape-1)/shape)
}

// Sample draws one Pareto variate by inverse transform.
func (p Pareto) Sample(rng *rand.Rand) float64 {
	// 1-U avoids U==0, which would send the variate to +Inf.
	return p.Scale / math.Pow(1-rng.Float64(), 1/p.Shape)
}

// Mean returns Shape*Scale/(Shape-1), or +Inf for Shape <= 1.
func (p Pareto) Mean() float64 {
	if p.Shape <= 1 {
		return math.Inf(1)
	}
	return p.Shape * p.Scale / (p.Shape - 1)
}

// PoissonProcess generates the arrival times of a homogeneous Poisson
// process: successive Next calls return strictly increasing timestamps
// whose inter-arrival gaps are Exp(rate). The zero time origin is 0.
type PoissonProcess struct {
	rate float64
	now  float64
}

// NewPoissonProcess builds a process with the given arrival rate
// (events per second).
func NewPoissonProcess(rate float64) (*PoissonProcess, error) {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return nil, fmt.Errorf("%w: poisson rate=%v, want finite > 0", ErrBadParam, rate)
	}
	return &PoissonProcess{rate: rate}, nil
}

// Rate returns the arrival rate.
func (p *PoissonProcess) Rate() float64 { return p.rate }

// Next advances the process by one exponential inter-arrival gap and
// returns the new absolute arrival time.
func (p *PoissonProcess) Next(rng *rand.Rand) float64 {
	p.now += rng.ExpFloat64() / p.rate
	return p.now
}

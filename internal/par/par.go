package par

import (
	"sync"
	"sync/atomic"
)

// For runs fn(0..n-1) over at most workers goroutines and returns when
// all calls have finished. workers values below 1 are treated as 1; fn
// must be safe to call concurrently from distinct goroutines with
// distinct indices.
func For(workers, n int, fn func(i int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForOrdered runs fn(0..n-1) over at most workers goroutines and hands
// each result to emit in strict index order, as soon as every lower
// index has been emitted — a reorder buffer over For. Workers finish
// out of order; consumers observe a deterministic stream. emit is never
// called concurrently with itself. Returning false from emit stops the
// loop: results already buffered are dropped and tasks that have not
// started are skipped (tasks already running finish but never emit).
//
// The buffer holds at most the in-flight window (roughly `workers`
// results), since For dispenses indices in ascending order.
func ForOrdered[T any](workers, n int, fn func(i int) T, emit func(i int, v T) bool) {
	var (
		mu      sync.Mutex
		pending = make(map[int]T)
		next    int
		stopped bool
	)
	For(workers, n, func(i int) {
		mu.Lock()
		skip := stopped
		mu.Unlock()
		if skip {
			return
		}
		v := fn(i)
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return
		}
		pending[i] = v
		for {
			v, ok := pending[next]
			if !ok {
				return
			}
			delete(pending, next)
			if !emit(next, v) {
				stopped = true
				return
			}
			next++
		}
	})
}

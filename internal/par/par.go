// Package par provides the bounded fan-out primitive shared by the
// simulation engine (parallel replications in sim.Run) and the
// experiment engine (parallel sweep points in internal/experiments).
// Determinism is the caller's contract: fn writes only to its own
// index-addressed slot, and callers aggregate slots in index order
// afterwards, so results never depend on worker count or schedule.
package par

import (
	"sync"
	"sync/atomic"
)

// For runs fn(0..n-1) over at most workers goroutines and returns when
// all calls have finished. workers values below 1 are treated as 1; fn
// must be safe to call concurrently from distinct goroutines with
// distinct indices.
func For(workers, n int, fn func(i int)) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

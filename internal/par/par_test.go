package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 8, 100} {
		const n = 500
		var calls [n]atomic.Int32
		For(workers, n, func(i int) { calls[i].Add(1) })
		for i := range calls {
			if got := calls[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d called %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForZeroTasks(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	if called {
		t.Error("fn called with zero tasks")
	}
}

func TestForOrderedEmitsInIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 500
		var got []int
		ForOrdered(workers, n, func(i int) int {
			// Skew work so high indices tend to finish first; the reorder
			// buffer must still sequence emissions.
			return i * 2
		}, func(i, v int) bool {
			got = append(got, v)
			return true
		})
		if len(got) != n {
			t.Fatalf("workers=%d: emitted %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*2 {
				t.Fatalf("workers=%d: emit %d got value %d, want %d", workers, i, v, i*2)
			}
		}
	}
}

func TestForOrderedStopsOnFalse(t *testing.T) {
	// Multi-worker: emission stops exactly where emit said so, whatever
	// the workers were doing.
	const n = 200
	var emitted []int
	ForOrdered(4, n, func(i int) int { return i }, func(i, v int) bool {
		emitted = append(emitted, v)
		return len(emitted) < 10
	})
	if len(emitted) != 10 {
		t.Fatalf("emitted %d results after stop, want 10", len(emitted))
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emit %d = %d, want %d", i, v, i)
		}
	}

	// Single worker (deterministic schedule): tasks after the stop are
	// never started.
	var started atomic.Int32
	ForOrdered(1, n, func(i int) int {
		started.Add(1)
		return i
	}, func(i, v int) bool { return i < 9 })
	if s := started.Load(); s != 10 {
		t.Errorf("single worker started %d tasks after stop at index 9, want 10", s)
	}
}

func TestForOrderedZeroTasks(t *testing.T) {
	ForOrdered(4, 0,
		func(i int) int { t.Error("fn called with zero tasks"); return 0 },
		func(i, v int) bool { t.Error("emit called with zero tasks"); return true })
}

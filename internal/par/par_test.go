package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 8, 100} {
		const n = 500
		var calls [n]atomic.Int32
		For(workers, n, func(i int) { calls[i].Add(1) })
		for i := range calls {
			if got := calls[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d called %d times, want 1", workers, i, got)
			}
		}
	}
}

func TestForZeroTasks(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	if called {
		t.Error("fn called with zero tasks")
	}
}

// Package par provides the bounded fan-out primitives shared by the
// simulation engine (parallel replications in sim.Run) and the
// experiment engine (parallel sweep points in internal/experiments).
//
// # Determinism contract
//
// The primitives schedule work; they never decide results. Determinism
// is the caller's contract, and the two primitives support it in
// complementary ways:
//
//   - With For, fn writes only to its own index-addressed slot and
//     callers aggregate slots in index order afterwards, so the
//     aggregate is independent of which worker ran which index.
//   - With ForOrdered, a reorder buffer delivers results to the emit
//     callback in strict index order as workers finish out of order, so
//     a streamed consumer observes the same sequence at any worker
//     count. emit is never called concurrently with itself.
//
// Either way results never depend on worker count or schedule — the
// property the experiments layer amplifies into byte-identical sweeps
// at any Parallelism, and (via stable global row indices) into
// byte-identical unions across sweep shards. Callers must keep fn free
// of cross-index shared mutable state; anything fn reads concurrently
// (for example a sim.Arena) must hand out immutable values only.
package par

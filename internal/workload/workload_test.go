package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamcache/internal/units"
)

func TestNormalizeAppliesTable1Defaults(t *testing.T) {
	cfg, err := Config{}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumObjects != 5000 {
		t.Errorf("NumObjects = %d, want 5000", cfg.NumObjects)
	}
	if cfg.NumRequests != 100000 {
		t.Errorf("NumRequests = %d, want 100000", cfg.NumRequests)
	}
	if cfg.ZipfAlpha != 0.73 {
		t.Errorf("ZipfAlpha = %v, want 0.73", cfg.ZipfAlpha)
	}
	if cfg.DurationMu != 3.85 || cfg.DurationSigma != 0.56 {
		t.Errorf("Duration = (%v, %v), want (3.85, 0.56)", cfg.DurationMu, cfg.DurationSigma)
	}
	if cfg.BytesPerFrame != 2*units.KB || cfg.FramesPerSec != 24 {
		t.Errorf("frame config = (%d, %v), want (2KB, 24)", cfg.BytesPerFrame, cfg.FramesPerSec)
	}
	if got := cfg.Rate(); got != units.KBps(48) {
		t.Errorf("Rate() = %v, want 48 KB/s", got)
	}
	if cfg.ValueMin != 1 || cfg.ValueMax != 10 {
		t.Errorf("Value range = [%v, %v], want [1, 10]", cfg.ValueMin, cfg.ValueMax)
	}
}

func TestNormalizeRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "negative objects", cfg: Config{NumObjects: -1}},
		{name: "negative requests", cfg: Config{NumRequests: -1}},
		{name: "negative alpha", cfg: Config{ZipfAlpha: -0.5}},
		{name: "NaN alpha", cfg: Config{ZipfAlpha: math.NaN()}},
		{name: "negative sigma", cfg: Config{DurationSigma: -1}},
		{name: "negative frame bytes", cfg: Config{BytesPerFrame: -2}},
		{name: "negative fps", cfg: Config{FramesPerSec: -24}},
		{name: "negative rate", cfg: Config{RequestRate: -1}},
		{name: "value max below min", cfg: Config{ValueMin: 5, ValueMax: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.cfg.Normalize(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func smallConfig() Config {
	return Config{NumObjects: 200, NumRequests: 5000, Seed: 1}
}

func TestGenerateShape(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Objects) != 200 {
		t.Fatalf("objects = %d, want 200", len(w.Objects))
	}
	if len(w.Requests) != 5000 {
		t.Fatalf("requests = %d, want 5000", len(w.Requests))
	}
	for i, o := range w.Objects {
		if o.ID != i || o.Rank != i+1 {
			t.Fatalf("object %d: ID=%d Rank=%d", i, o.ID, o.Rank)
		}
		if o.Duration <= 0 || o.Size <= 0 || o.Rate != units.KBps(48) {
			t.Fatalf("object %d: bad fields %+v", i, o)
		}
		if o.Value < 1 || o.Value >= 10 {
			t.Fatalf("object %d: value %v outside [1,10)", i, o.Value)
		}
		wantSize := int64(o.Duration * o.Rate)
		if o.Size != wantSize {
			t.Fatalf("object %d: size %d, want %d", i, o.Size, wantSize)
		}
	}
	prev := 0.0
	for i, r := range w.Requests {
		if r.Time <= prev {
			t.Fatalf("request %d: time %v not increasing", i, r.Time)
		}
		prev = r.Time
		if r.ObjectID < 0 || r.ObjectID >= 200 {
			t.Fatalf("request %d: object %d out of range", i, r.ObjectID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			t.Fatalf("object %d differs across identical seeds", i)
		}
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs across identical seeds", i)
		}
	}
}

func TestGenerateDifferentSeedsDiffer(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Requests {
		if a.Requests[i].ObjectID == b.Requests[i].ObjectID {
			same++
		}
	}
	if same == len(a.Requests) {
		t.Error("different seeds produced identical request streams")
	}
}

func TestTable1TotalStorage(t *testing.T) {
	// Full-scale default workload: ~790 GB of unique objects and ~55
	// minute mean duration, per Table 1.
	w, err := Generate(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	totalGB := units.ToGBytes(w.TotalUniqueBytes())
	if totalGB < 700 || totalGB > 880 {
		t.Errorf("total unique size = %.0f GB, want ~790 GB", totalGB)
	}
	meanMinutes := w.MeanDurationSeconds() / 60
	if meanMinutes < 50 || meanMinutes > 60 {
		t.Errorf("mean duration = %.1f min, want ~55 min", meanMinutes)
	}
}

func TestPopularityFollowsZipf(t *testing.T) {
	cfg := Config{NumObjects: 500, NumRequests: 200000, Seed: 3}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := w.RequestCounts()
	// Object 0 (rank 1) must be the most requested.
	for id := 1; id < len(counts); id++ {
		if counts[id] > counts[0] {
			t.Fatalf("object %d requested %d times > rank-1 object (%d)", id, counts[id], counts[0])
		}
	}
	// Frequency ratio of rank 1 to rank 2 should approximate 2^0.73.
	got := float64(counts[0]) / float64(counts[1])
	want := math.Pow(2, 0.73)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("count(1)/count(2) = %v, want ~%v", got, want)
	}
}

func TestPoissonArrivalRate(t *testing.T) {
	cfg := Config{NumObjects: 10, NumRequests: 50000, RequestRate: 2.5, Seed: 4}
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotRate := float64(len(w.Requests)) / w.Span()
	if math.Abs(gotRate-2.5)/2.5 > 0.03 {
		t.Errorf("empirical arrival rate %v, want 2.5 (+-3%%)", gotRate)
	}
}

func TestSpanEmptyWorkload(t *testing.T) {
	w := &Workload{}
	if w.Span() != 0 {
		t.Errorf("Span of empty workload = %v, want 0", w.Span())
	}
	if w.MeanDurationSeconds() != 0 {
		t.Errorf("MeanDuration of empty workload = %v, want 0", w.MeanDurationSeconds())
	}
}

func TestHigherAlphaConcentratesRequests(t *testing.T) {
	// Section 4.2: larger alpha means stronger temporal locality; the
	// top-10 objects must absorb a larger share of requests.
	share := func(alpha float64) float64 {
		w, err := Generate(Config{NumObjects: 1000, NumRequests: 50000, ZipfAlpha: alpha, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		counts := w.RequestCounts()
		top := int64(0)
		for id := 0; id < 10; id++ {
			top += counts[id]
		}
		return float64(top) / float64(len(w.Requests))
	}
	low, high := share(0.5), share(1.2)
	if high <= low {
		t.Errorf("top-10 share: alpha=1.2 gives %v, alpha=0.5 gives %v; want increase", high, low)
	}
}

func TestGenerateRequestsInRangeProperty(t *testing.T) {
	f := func(seed int64, nObjRaw, nReqRaw uint8) bool {
		cfg := Config{
			NumObjects:  int(nObjRaw)%50 + 1,
			NumRequests: int(nReqRaw)%200 + 1,
			Seed:        seed,
		}
		w, err := Generate(cfg)
		if err != nil {
			return false
		}
		for _, r := range w.Requests {
			if r.ObjectID < 0 || r.ObjectID >= cfg.NumObjects || r.Time <= 0 {
				return false
			}
		}
		for _, o := range w.Objects {
			if o.Size <= 0 || o.Duration <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPartialViewingDefaultsToFullSessions(t *testing.T) {
	w, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range w.Requests {
		if r.Fraction != 1 {
			t.Fatalf("request %d: fraction %v, want 1 without partial viewing", i, r.Fraction)
		}
	}
}

func TestPartialViewingValidation(t *testing.T) {
	bad := smallConfig()
	bad.PartialViewProb = 1.5
	if _, err := Generate(bad); err == nil {
		t.Error("PartialViewProb > 1 accepted")
	}
	bad = smallConfig()
	bad.PartialViewProb = -0.1
	if _, err := Generate(bad); err == nil {
		t.Error("negative PartialViewProb accepted")
	}
	bad = smallConfig()
	bad.MinViewFraction = 2
	if _, err := Generate(bad); err == nil {
		t.Error("MinViewFraction > 1 accepted")
	}
}

func TestPartialViewingFractions(t *testing.T) {
	cfg := smallConfig()
	cfg.PartialViewProb = 0.4
	cfg.NumRequests = 20000
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	partial := 0
	for i, r := range w.Requests {
		if r.Fraction <= 0 || r.Fraction > 1 {
			t.Fatalf("request %d: fraction %v outside (0,1]", i, r.Fraction)
		}
		if r.Fraction < 1 {
			partial++
			if r.Fraction < 0.05 {
				t.Fatalf("request %d: fraction %v below MinViewFraction", i, r.Fraction)
			}
		}
	}
	got := float64(partial) / float64(len(w.Requests))
	if math.Abs(got-0.4) > 0.02 {
		t.Errorf("partial-session fraction %v, want ~0.4", got)
	}
}

func TestViewingValidate(t *testing.T) {
	cases := []struct {
		name string
		v    Viewing
		ok   bool
	}{
		{"zero value is full", Viewing{}, true},
		{"full", Viewing{Kind: ViewFull}, true},
		{"uniform defaults", Viewing{Kind: ViewUniform}, true},
		{"uniform explicit", Viewing{Kind: ViewUniform, MinFraction: 0.3}, true},
		{"uniform negative min", Viewing{Kind: ViewUniform, MinFraction: -0.1}, false},
		{"uniform min above 1", Viewing{Kind: ViewUniform, MinFraction: 1.5}, false},
		{"lognormal", Viewing{Kind: ViewLognormal, Mu: 4, Sigma: 0.5}, true},
		{"lognormal NaN mu", Viewing{Kind: ViewLognormal, Mu: math.NaN()}, false},
		{"lognormal negative sigma", Viewing{Kind: ViewLognormal, Sigma: -1}, false},
		{"unknown kind", Viewing{Kind: "zipf"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.v.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() accepted invalid distribution")
			}
		})
	}
	// Uniform default fills in MinFraction.
	v, err := Viewing{Kind: ViewUniform}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if v.MinFraction != 0.05 {
		t.Errorf("uniform default MinFraction = %v, want 0.05", v.MinFraction)
	}
}

func TestViewingFractionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dists := []Viewing{
		{},
		{Kind: ViewUniform, MinFraction: 0.2},
		{Kind: ViewLognormal, Mu: 3.0, Sigma: 1.0},
	}
	for _, v := range dists {
		v, err := v.Validate()
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			f := v.Fraction(rng, 120)
			if f <= 0 || f > 1 {
				t.Fatalf("%+v: fraction %v outside (0, 1]", v, f)
			}
			if v.Kind == ViewUniform && f < v.MinFraction {
				t.Fatalf("uniform fraction %v below MinFraction %v", f, v.MinFraction)
			}
		}
	}
	// Full always watches to the end.
	if f := (Viewing{}).Fraction(rng, 60); f != 1 {
		t.Errorf("full viewing fraction = %v, want 1", f)
	}
	// A lognormal watching far longer than the object runs to the end.
	long := Viewing{Kind: ViewLognormal, Mu: 10, Sigma: 0.1}
	if f := long.Fraction(rng, 1); f != 1 {
		t.Errorf("oversized lognormal fraction = %v, want 1", f)
	}
}

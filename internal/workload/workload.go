// Package workload synthesizes streaming-media access workloads in the
// style of the GISMO toolset [18], configured exactly as the paper's
// Table 1: N=5000 unique objects with Zipf-like popularity (alpha=0.73),
// 100,000 Poisson-arriving requests, Lognormal(3.85, 0.56) object
// durations in minutes, and a 48 KB/s constant bit-rate (2 KB/frame x 24
// frames/s), giving ~790 GB of unique object data. Object values for the
// revenue experiments (Section 2.6) are uniform on [$1, $10].
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"streamcache/internal/dist"
	"streamcache/internal/units"
)

// ErrBadConfig reports an invalid workload configuration.
var ErrBadConfig = errors.New("workload: invalid configuration")

// Object is one streaming media object.
type Object struct {
	ID       int
	Rank     int     // popularity rank, 1 = hottest
	Duration float64 // playback duration, seconds
	Rate     float64 // CBR encoding rate, bytes/s
	Size     int64   // Duration * Rate, bytes
	Value    float64 // added value when served immediately (Section 2.6)
}

// Request is one client access. Fraction models GISMO-style user
// interactivity: a partial-viewing session watches only the leading
// Fraction of the stream (1 = watches to the end).
type Request struct {
	Time     float64 // seconds since workload start
	ObjectID int
	Fraction float64 // watched fraction of the stream, in (0, 1]
}

// Config parameterizes workload generation. Zero fields take the Table 1
// defaults via Normalize.
type Config struct {
	NumObjects    int     // unique objects (default 5000)
	NumRequests   int     // total requests (default 100000)
	ZipfAlpha     float64 // popularity skew (default 0.73)
	DurationMu    float64 // lognormal mu of duration in minutes (default 3.85)
	DurationSigma float64 // lognormal sigma (default 0.56)
	BytesPerFrame int64   // default 2 KB
	FramesPerSec  float64 // default 24
	RequestRate   float64 // Poisson arrival rate, requests/s (default 1)
	ValueMin      float64 // default $1
	ValueMax      float64 // default $10
	// PartialViewProb is the probability a session stops early (GISMO
	// user interactivity; default 0 = everyone watches to the end).
	PartialViewProb float64
	// MinViewFraction bounds how early a partial viewer may stop; the
	// watched fraction is uniform on [MinViewFraction, 1) (default 0.05).
	MinViewFraction float64
	Seed            int64
}

// Normalize fills zero fields with the paper's Table 1 defaults and
// validates the result.
func (c Config) Normalize() (Config, error) {
	if c.NumObjects == 0 {
		c.NumObjects = 5000
	}
	if c.NumRequests == 0 {
		c.NumRequests = 100000
	}
	if c.ZipfAlpha == 0 {
		c.ZipfAlpha = 0.73
	}
	if c.DurationMu == 0 {
		c.DurationMu = 3.85
	}
	if c.DurationSigma == 0 {
		c.DurationSigma = 0.56
	}
	if c.BytesPerFrame == 0 {
		c.BytesPerFrame = 2 * units.KB
	}
	if c.FramesPerSec == 0 {
		c.FramesPerSec = 24
	}
	if c.RequestRate == 0 {
		c.RequestRate = 1
	}
	if c.ValueMin == 0 && c.ValueMax == 0 {
		c.ValueMin, c.ValueMax = 1, 10
	}
	if c.MinViewFraction == 0 {
		c.MinViewFraction = 0.05
	}
	switch {
	case c.PartialViewProb < 0 || c.PartialViewProb > 1 || math.IsNaN(c.PartialViewProb):
		return c, fmt.Errorf("%w: PartialViewProb=%v", ErrBadConfig, c.PartialViewProb)
	case c.MinViewFraction < 0 || c.MinViewFraction > 1 || math.IsNaN(c.MinViewFraction):
		return c, fmt.Errorf("%w: MinViewFraction=%v", ErrBadConfig, c.MinViewFraction)
	}
	switch {
	case c.NumObjects < 0:
		return c, fmt.Errorf("%w: NumObjects=%d", ErrBadConfig, c.NumObjects)
	case c.NumRequests < 0:
		return c, fmt.Errorf("%w: NumRequests=%d", ErrBadConfig, c.NumRequests)
	case c.ZipfAlpha < 0 || math.IsNaN(c.ZipfAlpha):
		return c, fmt.Errorf("%w: ZipfAlpha=%v", ErrBadConfig, c.ZipfAlpha)
	case c.DurationSigma < 0:
		return c, fmt.Errorf("%w: DurationSigma=%v", ErrBadConfig, c.DurationSigma)
	case c.BytesPerFrame < 0:
		return c, fmt.Errorf("%w: BytesPerFrame=%d", ErrBadConfig, c.BytesPerFrame)
	case c.FramesPerSec < 0 || math.IsNaN(c.FramesPerSec):
		return c, fmt.Errorf("%w: FramesPerSec=%v", ErrBadConfig, c.FramesPerSec)
	case c.RequestRate < 0 || math.IsNaN(c.RequestRate):
		return c, fmt.Errorf("%w: RequestRate=%v", ErrBadConfig, c.RequestRate)
	case c.ValueMax < c.ValueMin:
		return c, fmt.Errorf("%w: ValueMax=%v < ValueMin=%v", ErrBadConfig, c.ValueMax, c.ValueMin)
	}
	return c, nil
}

// Rate returns the CBR object rate in bytes/s.
func (c Config) Rate() float64 { return float64(c.BytesPerFrame) * c.FramesPerSec }

// Workload is a generated object catalog plus request trace. A
// generated workload is immutable: Generate never hands out a value it
// retains, and nothing in this package mutates one afterwards, so a
// single Workload may be shared freely across goroutines (the sim
// arena's memoization relies on this).
type Workload struct {
	Config   Config
	Objects  []Object // indexed by ID
	Requests []Request
}

// zipfKey identifies one precomputed popularity CDF.
type zipfKey struct {
	n     int
	alpha float64
}

// zipfTables caches Zipf CDFs across generations: every run of a sweep
// rebuilds the identical (N, alpha) table, which costs an O(N) pass of
// math.Pow. A *dist.Zipf is immutable after construction, so sharing
// one across concurrent generations is safe and changes no output.
var zipfTables sync.Map // zipfKey -> *dist.Zipf

func cachedZipf(n int, alpha float64) (*dist.Zipf, error) {
	key := zipfKey{n: n, alpha: alpha}
	if z, ok := zipfTables.Load(key); ok {
		return z.(*dist.Zipf), nil
	}
	z, err := dist.NewZipf(n, alpha)
	if err != nil {
		return nil, err
	}
	actual, _ := zipfTables.LoadOrStore(key, z)
	return actual.(*dist.Zipf), nil
}

// Generate builds a workload from cfg (zero fields default to Table 1).
func Generate(cfg Config) (*Workload, error) {
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if cfg.NumObjects == 0 {
		return nil, fmt.Errorf("%w: no objects", ErrBadConfig)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	durations := dist.Lognormal{Mu: cfg.DurationMu, Sigma: cfg.DurationSigma}
	values := dist.Uniform{Min: cfg.ValueMin, Max: cfg.ValueMax}
	rate := cfg.Rate()

	objects := make([]Object, cfg.NumObjects)
	for i := range objects {
		durSeconds := durations.Sample(rng) * 60
		objects[i] = Object{
			ID:       i,
			Rank:     i + 1, // IDs are assigned in popularity order
			Duration: durSeconds,
			Rate:     rate,
			Size:     int64(durSeconds * rate),
			Value:    values.Sample(rng),
		}
	}

	zipf, err := cachedZipf(cfg.NumObjects, cfg.ZipfAlpha)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	proc, err := dist.NewPoissonProcess(cfg.RequestRate)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	requests := make([]Request, cfg.NumRequests)
	for i := range requests {
		frac := 1.0
		if cfg.PartialViewProb > 0 && rng.Float64() < cfg.PartialViewProb {
			frac = cfg.MinViewFraction + rng.Float64()*(1-cfg.MinViewFraction)
		}
		requests[i] = Request{
			Time:     proc.Next(rng),
			ObjectID: zipf.Sample(rng) - 1, // rank r -> object ID r-1
			Fraction: frac,
		}
	}
	return &Workload{Config: cfg, Objects: objects, Requests: requests}, nil
}

// ViewingKind names a viewing-duration distribution for one workload
// class (the open-loop load generator's per-class "how long does a
// session watch" model; the GISMO user-interactivity knob generalized
// from a probability to a distribution).
type ViewingKind string

// The supported viewing-duration distributions.
const (
	// ViewFull watches every stream to the end (fraction 1).
	ViewFull ViewingKind = "full"
	// ViewUniform watches a uniform fraction on [MinFraction, 1).
	ViewUniform ViewingKind = "uniform"
	// ViewLognormal watches Lognormal(Mu, Sigma) seconds of the stream,
	// truncated to the object's duration.
	ViewLognormal ViewingKind = "lognormal"
)

// Viewing is a viewing-duration distribution: it samples the fraction
// of a stream one session watches. The zero value is ViewFull.
type Viewing struct {
	Kind ViewingKind
	// MinFraction bounds how early a ViewUniform session may stop
	// (default 0.05, matching Config.MinViewFraction).
	MinFraction float64
	// Mu, Sigma parameterize the ViewLognormal watched duration in
	// seconds: exp(N(Mu, Sigma^2)).
	Mu, Sigma float64
}

// Validate normalizes and checks the distribution parameters.
func (v Viewing) Validate() (Viewing, error) {
	if v.Kind == "" {
		v.Kind = ViewFull
	}
	switch v.Kind {
	case ViewFull:
	case ViewUniform:
		if v.MinFraction == 0 {
			v.MinFraction = 0.05
		}
		if v.MinFraction < 0 || v.MinFraction > 1 || math.IsNaN(v.MinFraction) {
			return v, fmt.Errorf("%w: viewing MinFraction=%v, want in [0, 1]", ErrBadConfig, v.MinFraction)
		}
	case ViewLognormal:
		if math.IsNaN(v.Mu) || math.IsInf(v.Mu, 0) {
			return v, fmt.Errorf("%w: viewing Mu=%v, want finite", ErrBadConfig, v.Mu)
		}
		if v.Sigma < 0 || math.IsNaN(v.Sigma) || math.IsInf(v.Sigma, 0) {
			return v, fmt.Errorf("%w: viewing Sigma=%v, want finite >= 0", ErrBadConfig, v.Sigma)
		}
	default:
		return v, fmt.Errorf("%w: viewing Kind=%q, want full, uniform or lognormal", ErrBadConfig, v.Kind)
	}
	return v, nil
}

// Fraction samples the watched fraction of a stream with the given
// playback duration in seconds. The result is always in (0, 1].
func (v Viewing) Fraction(rng *rand.Rand, objDuration float64) float64 {
	switch v.Kind {
	case ViewUniform:
		return v.MinFraction + rng.Float64()*(1-v.MinFraction)
	case ViewLognormal:
		if objDuration <= 0 {
			return 1
		}
		watched := dist.Lognormal{Mu: v.Mu, Sigma: v.Sigma}.Sample(rng)
		frac := watched / objDuration
		if frac >= 1 {
			return 1
		}
		// Never hand back a zero-byte session: the open-loop client
		// still fetches at least the leading sliver of the stream.
		if frac < 1e-3 {
			return 1e-3
		}
		return frac
	default:
		return 1
	}
}

// TotalUniqueBytes returns the summed size of all unique objects (the
// paper's "Total Storage", ~790 GB with defaults).
func (w *Workload) TotalUniqueBytes() int64 {
	var total int64
	for _, o := range w.Objects {
		total += o.Size
	}
	return total
}

// Span returns the time of the last request (0 for empty workloads).
func (w *Workload) Span() float64 {
	if len(w.Requests) == 0 {
		return 0
	}
	return w.Requests[len(w.Requests)-1].Time
}

// RequestCounts returns how many times each object is requested.
func (w *Workload) RequestCounts() []int64 {
	counts := make([]int64, len(w.Objects))
	for _, r := range w.Requests {
		counts[r.ObjectID]++
	}
	return counts
}

// MeanDurationSeconds returns the average object duration.
func (w *Workload) MeanDurationSeconds() float64 {
	if len(w.Objects) == 0 {
		return 0
	}
	sum := 0.0
	for _, o := range w.Objects {
		sum += o.Duration
	}
	return sum / float64(len(w.Objects))
}

package sim

import (
	"math"
	"testing"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/units"
	"streamcache/internal/workload"
)

// testWorkload is a scaled-down Table 1 workload (~79 GB unique bytes)
// that keeps the unit tests fast while preserving the Zipf/Poisson/
// Lognormal structure.
func testWorkload() workload.Config {
	return workload.Config{NumObjects: 500, NumRequests: 10000}
}

// cachePct returns a cache size that is the given percentage of the
// expected unique-object volume of testWorkload (~79 GB).
func cachePct(pct float64) int64 {
	return int64(pct / 100 * 79 * float64(units.GB))
}

func runWith(t *testing.T, policy core.Policy, variation bandwidth.Variability, cacheBytes int64) Metrics {
	t.Helper()
	m, err := Run(Config{
		Workload:   testWorkload(),
		CacheBytes: cacheBytes,
		Policy:     policy,
		Variation:  variation,
		Runs:       2,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunValidation(t *testing.T) {
	base := Config{Workload: testWorkload(), CacheBytes: 1, Policy: core.NewIF()}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{name: "negative cache", mutate: func(c *Config) { c.CacheBytes = -1 }},
		{name: "nil policy", mutate: func(c *Config) { c.Policy = nil }},
		{name: "warm fraction 1", mutate: func(c *Config) { c.WarmFraction = 1 }},
		{name: "negative warm", mutate: func(c *Config) { c.WarmFraction = -0.5 }},
		{name: "negative runs", mutate: func(c *Config) { c.Runs = -2 }},
		{name: "bad workload", mutate: func(c *Config) { c.Workload.NumObjects = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	cfg := Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(2),
		Policy:     core.NewPB(),
		Runs:       2,
		Seed:       7,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed, different metrics:\n%+v\n%+v", a, b)
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	cfg := Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(2),
		Policy:     core.NewPB(),
		Seed:       1,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different seeds produced identical metrics")
	}
}

func TestMetricsInValidRanges(t *testing.T) {
	for _, p := range []core.Policy{core.NewIF(), core.NewPB(), core.NewIB(), core.NewPBV(), core.NewIBV(), core.NewLRU()} {
		m := runWith(t, p, bandwidth.NLANRVariability(), cachePct(5))
		if m.TrafficReductionRatio < 0 || m.TrafficReductionRatio > 1 {
			t.Errorf("%s: traffic reduction %v outside [0,1]", p.Name(), m.TrafficReductionRatio)
		}
		if m.AvgStreamQuality < 0 || m.AvgStreamQuality > 1 {
			t.Errorf("%s: quality %v outside [0,1]", p.Name(), m.AvgStreamQuality)
		}
		if m.HitRatio < 0 || m.HitRatio > 1 {
			t.Errorf("%s: hit ratio %v outside [0,1]", p.Name(), m.HitRatio)
		}
		if m.AvgServiceDelay < 0 || math.IsNaN(m.AvgServiceDelay) {
			t.Errorf("%s: delay %v invalid", p.Name(), m.AvgServiceDelay)
		}
		if m.TotalAddedValue < 0 {
			t.Errorf("%s: value %v negative", p.Name(), m.TotalAddedValue)
		}
		if m.Requests != 5000 {
			t.Errorf("%s: measured requests %d, want 5000 (half of workload)", p.Name(), m.Requests)
		}
	}
}

func TestZeroCapacityBaseline(t *testing.T) {
	m := runWith(t, core.NewIF(), bandwidth.NoVariation{}, 0)
	if m.TrafficReductionRatio != 0 || m.HitRatio != 0 {
		t.Errorf("zero cache: traffic=%v hits=%v, want 0", m.TrafficReductionRatio, m.HitRatio)
	}
	// Even without caching some requests are served immediately
	// (abundant-bandwidth paths), so value must be positive.
	if m.TotalAddedValue <= 0 {
		t.Errorf("zero cache: value %v, want > 0 (free value from fast paths)", m.TotalAddedValue)
	}
	if m.AvgServiceDelay <= 0 {
		t.Errorf("zero cache: delay %v, want > 0", m.AvgServiceDelay)
	}
}

func TestWarmFractionControlsMeasurement(t *testing.T) {
	cfg := Config{
		Workload:     testWorkload(),
		CacheBytes:   cachePct(2),
		Policy:       core.NewIF(),
		WarmFraction: 0.8,
		Seed:         3,
	}
	m, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 2000 {
		t.Errorf("measured requests = %d, want 2000 (20%% of 10000)", m.Requests)
	}
}

func TestLargerCacheImprovesMetrics(t *testing.T) {
	for _, p := range []core.Policy{core.NewIF(), core.NewIB()} {
		small := runWith(t, p, bandwidth.NoVariation{}, cachePct(1))
		large := runWith(t, p, bandwidth.NoVariation{}, cachePct(10))
		if large.TrafficReductionRatio <= small.TrafficReductionRatio {
			t.Errorf("%s: traffic reduction did not grow with cache (%v -> %v)",
				p.Name(), small.TrafficReductionRatio, large.TrafficReductionRatio)
		}
		if large.AvgServiceDelay >= small.AvgServiceDelay {
			t.Errorf("%s: delay did not fall with cache (%v -> %v)",
				p.Name(), small.AvgServiceDelay, large.AvgServiceDelay)
		}
	}
}

// --- Shape assertions mirroring the paper's findings ---

func TestFigure5Shapes(t *testing.T) {
	// Constant bandwidth (Figure 5): IF achieves the highest traffic
	// reduction, PB the least; PB the lowest delay and highest quality,
	// IF the worst; IB in between on all three.
	ifM := runWith(t, core.NewIF(), bandwidth.NoVariation{}, cachePct(5))
	pbM := runWith(t, core.NewPB(), bandwidth.NoVariation{}, cachePct(5))
	ibM := runWith(t, core.NewIB(), bandwidth.NoVariation{}, cachePct(5))

	if !(ifM.TrafficReductionRatio > ibM.TrafficReductionRatio &&
		ibM.TrafficReductionRatio > pbM.TrafficReductionRatio) {
		t.Errorf("traffic reduction ordering IF > IB > PB violated: IF=%v IB=%v PB=%v",
			ifM.TrafficReductionRatio, ibM.TrafficReductionRatio, pbM.TrafficReductionRatio)
	}
	if !(pbM.AvgServiceDelay < ibM.AvgServiceDelay && ibM.AvgServiceDelay < ifM.AvgServiceDelay) {
		t.Errorf("delay ordering PB < IB < IF violated: PB=%v IB=%v IF=%v",
			pbM.AvgServiceDelay, ibM.AvgServiceDelay, ifM.AvgServiceDelay)
	}
	if !(pbM.AvgStreamQuality > ibM.AvgStreamQuality && ibM.AvgStreamQuality > ifM.AvgStreamQuality) {
		t.Errorf("quality ordering PB > IB > IF violated: PB=%v IB=%v IF=%v",
			pbM.AvgStreamQuality, ibM.AvgStreamQuality, ifM.AvgStreamQuality)
	}
}

func TestFigure6AlphaShapes(t *testing.T) {
	// Intensifying temporal locality (larger Zipf alpha) improves both
	// IB and PB, and preserves their relative ordering (Section 4.2).
	run := func(p core.Policy, alpha float64) Metrics {
		m, err := Run(Config{
			Workload:   workload.Config{NumObjects: 500, NumRequests: 10000, ZipfAlpha: alpha},
			CacheBytes: cachePct(5),
			Policy:     p,
			Runs:       2,
			Seed:       11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, mk := range []func() core.Policy{core.NewIB, core.NewPB} {
		p := mk()
		low, high := run(p, 0.5), run(p, 1.2)
		if high.TrafficReductionRatio <= low.TrafficReductionRatio {
			t.Errorf("%s: traffic reduction fell with alpha (%v -> %v)",
				p.Name(), low.TrafficReductionRatio, high.TrafficReductionRatio)
		}
		if high.AvgServiceDelay >= low.AvgServiceDelay {
			t.Errorf("%s: delay rose with alpha (%v -> %v)",
				p.Name(), low.AvgServiceDelay, high.AvgServiceDelay)
		}
	}
	ibHigh, pbHigh := run(core.NewIB(), 1.2), run(core.NewPB(), 1.2)
	if ibHigh.TrafficReductionRatio <= pbHigh.TrafficReductionRatio {
		t.Error("IB must keep its traffic-reduction lead at high alpha")
	}
	if pbHigh.AvgServiceDelay >= ibHigh.AvgServiceDelay {
		t.Error("PB must keep its delay lead at high alpha under constant bandwidth")
	}
}

func TestFigure7NLANRVariabilityShapes(t *testing.T) {
	// Under NLANR-level variability (Figure 7): delays rise and quality
	// falls for every algorithm versus constant bandwidth, and IB is no
	// worse than PB on delay.
	for _, mk := range []func() core.Policy{core.NewIF, core.NewPB, core.NewIB} {
		p := mk()
		constant := runWith(t, p, bandwidth.NoVariation{}, cachePct(5))
		variable := runWith(t, mk(), bandwidth.NLANRVariability(), cachePct(5))
		if variable.AvgServiceDelay <= constant.AvgServiceDelay {
			t.Errorf("%s: variability did not increase delay (%v -> %v)",
				p.Name(), constant.AvgServiceDelay, variable.AvgServiceDelay)
		}
		if variable.AvgStreamQuality >= constant.AvgStreamQuality {
			t.Errorf("%s: variability did not degrade quality (%v -> %v)",
				p.Name(), constant.AvgStreamQuality, variable.AvgStreamQuality)
		}
		// Traffic reduction is essentially unaffected (Figure 7a).
		diff := math.Abs(variable.TrafficReductionRatio - constant.TrafficReductionRatio)
		if diff > 0.05 {
			t.Errorf("%s: traffic reduction moved by %v under variability, want ~unchanged", p.Name(), diff)
		}
	}
	pbM := runWith(t, core.NewPB(), bandwidth.NLANRVariability(), cachePct(5))
	ibM := runWith(t, core.NewIB(), bandwidth.NLANRVariability(), cachePct(5))
	if ibM.AvgServiceDelay > pbM.AvgServiceDelay*1.1 {
		t.Errorf("IB delay (%v) should be no worse than PB's (%v) under high variability",
			ibM.AvgServiceDelay, pbM.AvgServiceDelay)
	}
}

func TestFigure8MeasuredVariabilityShapes(t *testing.T) {
	// Under realistic (lower) variability (Figure 8), PB again beats the
	// integral algorithms on delay and quality.
	ifM := runWith(t, core.NewIF(), bandwidth.MeasuredVariability(), cachePct(5))
	pbM := runWith(t, core.NewPB(), bandwidth.MeasuredVariability(), cachePct(5))
	ibM := runWith(t, core.NewIB(), bandwidth.MeasuredVariability(), cachePct(5))
	if !(pbM.AvgServiceDelay < ibM.AvgServiceDelay && pbM.AvgServiceDelay < ifM.AvgServiceDelay) {
		t.Errorf("PB delay (%v) should beat IB (%v) and IF (%v) under measured variability",
			pbM.AvgServiceDelay, ibM.AvgServiceDelay, ifM.AvgServiceDelay)
	}
	if !(pbM.AvgStreamQuality > ibM.AvgStreamQuality && pbM.AvgStreamQuality > ifM.AvgStreamQuality) {
		t.Errorf("PB quality (%v) should beat IB (%v) and IF (%v) under measured variability",
			pbM.AvgStreamQuality, ibM.AvgStreamQuality, ifM.AvgStreamQuality)
	}
}

func TestFigure9EstimatorShapes(t *testing.T) {
	// Hybrid estimator sweep (Figure 9): traffic reduction decreases
	// monotonically in e; a moderate e gives lower delay than either
	// endpoint under NLANR variability.
	at := func(e float64) Metrics {
		h, err := core.NewHybrid(e)
		if err != nil {
			t.Fatal(err)
		}
		return runWith(t, h, bandwidth.NLANRVariability(), cachePct(5))
	}
	m0, mHalf, m1 := at(0), at(0.5), at(1)
	if !(m0.TrafficReductionRatio > mHalf.TrafficReductionRatio &&
		mHalf.TrafficReductionRatio > m1.TrafficReductionRatio) {
		t.Errorf("traffic reduction not decreasing in e: %v, %v, %v",
			m0.TrafficReductionRatio, mHalf.TrafficReductionRatio, m1.TrafficReductionRatio)
	}
	if !(mHalf.AvgServiceDelay < m0.AvgServiceDelay && mHalf.AvgServiceDelay < m1.AvgServiceDelay) {
		t.Errorf("moderate e should minimize delay: e=0 %v, e=0.5 %v, e=1 %v",
			m0.AvgServiceDelay, mHalf.AvgServiceDelay, m1.AvgServiceDelay)
	}
}

func TestFigure10ValueShapesConstant(t *testing.T) {
	// Constant bandwidth (Figure 10): IF best traffic reduction but
	// worst value; PB-V best value but worst traffic; IB-V in between.
	ifM := runWith(t, core.NewIF(), bandwidth.NoVariation{}, cachePct(5))
	pbvM := runWith(t, core.NewPBV(), bandwidth.NoVariation{}, cachePct(5))
	ibvM := runWith(t, core.NewIBV(), bandwidth.NoVariation{}, cachePct(5))
	if !(ifM.TrafficReductionRatio > ibvM.TrafficReductionRatio &&
		ibvM.TrafficReductionRatio > pbvM.TrafficReductionRatio) {
		t.Errorf("traffic ordering IF > IB-V > PB-V violated: %v, %v, %v",
			ifM.TrafficReductionRatio, ibvM.TrafficReductionRatio, pbvM.TrafficReductionRatio)
	}
	if !(pbvM.TotalAddedValue > ibvM.TotalAddedValue && ibvM.TotalAddedValue > ifM.TotalAddedValue) {
		t.Errorf("value ordering PB-V > IB-V > IF violated: %v, %v, %v",
			pbvM.TotalAddedValue, ibvM.TotalAddedValue, ifM.TotalAddedValue)
	}
}

func TestFigure11ValueShapesVariable(t *testing.T) {
	// Measured variability (Figure 11): IB-V yields the best value
	// (PB-V's edge evaporates when bandwidth varies).
	ifM := runWith(t, core.NewIF(), bandwidth.MeasuredVariability(), cachePct(5))
	pbvM := runWith(t, core.NewPBV(), bandwidth.MeasuredVariability(), cachePct(5))
	ibvM := runWith(t, core.NewIBV(), bandwidth.MeasuredVariability(), cachePct(5))
	if !(ibvM.TotalAddedValue > ifM.TotalAddedValue && ibvM.TotalAddedValue > pbvM.TotalAddedValue) {
		t.Errorf("IB-V value (%v) should beat IF (%v) and PB-V (%v) under variability",
			ibvM.TotalAddedValue, ifM.TotalAddedValue, pbvM.TotalAddedValue)
	}
}

func TestFigure12ValueEstimatorShapes(t *testing.T) {
	// Value-objective estimator sweep (Figure 12): a moderate e earns
	// more value than either extreme under NLANR variability.
	at := func(e float64) Metrics {
		h, err := core.NewHybridV(e)
		if err != nil {
			t.Fatal(err)
		}
		return runWith(t, h, bandwidth.NLANRVariability(), cachePct(5))
	}
	m0, mMid, m1 := at(0), at(0.35), at(1)
	if !(mMid.TotalAddedValue > m0.TotalAddedValue && mMid.TotalAddedValue > m1.TotalAddedValue) {
		t.Errorf("moderate e should maximize value: e=0 %v, e=0.35 %v, e=1 %v",
			m0.TotalAddedValue, mMid.TotalAddedValue, m1.TotalAddedValue)
	}
}

func TestEWMAEstimatorRuns(t *testing.T) {
	m, err := Run(Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(5),
		Policy:     core.NewPB(),
		Variation:  bandwidth.MeasuredVariability(),
		Estimators: EWMAEstimator(0.3),
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TrafficReductionRatio <= 0 {
		t.Errorf("EWMA run: traffic reduction %v, want > 0", m.TrafficReductionRatio)
	}
}

func TestUnderestimatingOracleMatchesHybridDirection(t *testing.T) {
	// PB + UnderestimatingOracle(0) must cache whole objects like IB:
	// its traffic reduction should exceed plain PB's.
	pb := runWith(t, core.NewPB(), bandwidth.NoVariation{}, cachePct(5))
	m, err := Run(Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(5),
		Policy:     core.NewPB(),
		Estimators: UnderestimatingOracle(0),
		Runs:       2,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TrafficReductionRatio <= pb.TrafficReductionRatio {
		t.Errorf("underestimating oracle traffic %v should exceed plain PB %v",
			m.TrafficReductionRatio, pb.TrafficReductionRatio)
	}
}

func TestWholeObjectEvictionOption(t *testing.T) {
	m, err := Run(Config{
		Workload:     testWorkload(),
		CacheBytes:   cachePct(5),
		Policy:       core.NewIF(),
		CacheOptions: []core.Option{core.WithWholeObjectEviction(true)},
		Seed:         17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TrafficReductionRatio <= 0 {
		t.Errorf("whole-object eviction run: traffic %v, want > 0", m.TrafficReductionRatio)
	}
}

func TestPartialViewingReducesMeasuredTraffic(t *testing.T) {
	base := Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(5),
		Policy:     core.NewIF(),
		Runs:       2,
		Seed:       23,
	}
	full, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	partial := base
	partial.Workload.PartialViewProb = 0.6
	got, err := Run(partial)
	if err != nil {
		t.Fatal(err)
	}
	// With 60% of sessions stopping early the absolute transferred
	// volume shrinks; the reduction *ratio* should stay in a sane range.
	if got.TrafficReductionRatio <= 0 || got.TrafficReductionRatio > 1 {
		t.Errorf("partial-viewing traffic ratio %v invalid", got.TrafficReductionRatio)
	}
	// Prefix caching is relatively more effective for partial viewers
	// (they only ever want the head of the stream), so the reduction
	// ratio must not collapse versus full sessions.
	if got.TrafficReductionRatio < full.TrafficReductionRatio*0.8 {
		t.Errorf("partial viewing ratio %v collapsed vs full %v",
			got.TrafficReductionRatio, full.TrafficReductionRatio)
	}
}

func TestActiveProbeEstimatorRuns(t *testing.T) {
	m, err := Run(Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(5),
		Policy:     core.NewPB(),
		Variation:  bandwidth.MeasuredVariability(),
		Estimators: ActiveProbeEstimator(0.1),
		Runs:       2,
		Seed:       29,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TrafficReductionRatio <= 0 {
		t.Errorf("active probing run cached nothing: %+v", m)
	}
	if m.AvgStreamQuality <= 0.5 {
		t.Errorf("active probing run degenerate quality %v", m.AvgStreamQuality)
	}
}

func TestActiveProbeDeterministic(t *testing.T) {
	cfg := Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(2),
		Policy:     core.NewPB(),
		Estimators: ActiveProbeEstimator(0.2),
		Seed:       31,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("active probing not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestPolicyFactoryPerRun(t *testing.T) {
	// Stateful GDSP must work across parallel runs via the factory.
	m, err := Run(Config{
		Workload:      testWorkload(),
		CacheBytes:    cachePct(5),
		PolicyFactory: core.NewGDSP,
		Runs:          3,
		Seed:          37,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TrafficReductionRatio <= 0 {
		t.Errorf("GDSP factory run cached nothing: %+v", m)
	}
	// Determinism must hold with factories too.
	m2, err := Run(Config{
		Workload:      testWorkload(),
		CacheBytes:    cachePct(5),
		PolicyFactory: core.NewGDSP,
		Runs:          3,
		Seed:          37,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m != m2 {
		t.Errorf("factory runs not deterministic:\n%+v\n%+v", m, m2)
	}
}

func TestGDSPBehavesLikeNetworkAwarePolicy(t *testing.T) {
	// GDSP with the bandwidth cost should beat frequency-only IF on
	// delay (it shares the F/b core with IB, plus aging).
	ifM := runWith(t, core.NewIF(), bandwidth.NoVariation{}, cachePct(5))
	gdsp, err := Run(Config{
		Workload:      testWorkload(),
		CacheBytes:    cachePct(5),
		PolicyFactory: core.NewGDSP,
		Runs:          2,
		Seed:          42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gdsp.AvgServiceDelay >= ifM.AvgServiceDelay {
		t.Errorf("GDSP delay %v, want below IF's %v", gdsp.AvgServiceDelay, ifM.AvgServiceDelay)
	}
}

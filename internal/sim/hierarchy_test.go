package sim

import (
	"math"
	"testing"

	"streamcache/internal/core"
)

func hierarchyBase() HierarchyConfig {
	return HierarchyConfig{
		Config: Config{
			Workload:   testWorkload(),
			CacheBytes: cachePct(2),
			Policy:     core.NewPB(),
			Runs:       2,
			Seed:       42,
		},
	}
}

func TestHierarchyValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*HierarchyConfig)
	}{
		{name: "estimators set", mutate: func(c *HierarchyConfig) { c.Estimators = EWMAEstimator(0.3) }},
		{name: "negative edges", mutate: func(c *HierarchyConfig) { c.Edges = -2 }},
		{name: "three levels", mutate: func(c *HierarchyConfig) { c.Levels = 3 }},
		{name: "parent fraction one", mutate: func(c *HierarchyConfig) { c.Levels = 2; c.ParentFraction = 1 }},
		{name: "parent fraction without parent", mutate: func(c *HierarchyConfig) { c.Levels = 1; c.ParentFraction = 0.5 }},
		{name: "unknown peering", mutate: func(c *HierarchyConfig) { c.Peering = "gossip" }},
		{name: "bad base config", mutate: func(c *HierarchyConfig) { c.Policy = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := hierarchyBase()
			tt.mutate(&cfg)
			if _, err := RunHierarchy(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

// TestHierarchySingleNodeMatchesRun pins the hierarchy model to the
// flat simulator: one edge, one level is the same system, so the
// traffic reduction ratio must agree bit for bit, not just within
// tolerance. This is the sim side of the sim-vs-live cross-validation
// triangle (the live side is cluster's TestClusterHitRatioMatchesSimulator).
func TestHierarchySingleNodeMatchesRun(t *testing.T) {
	cfg := hierarchyBase()
	flat, err := Run(cfg.Config)
	if err != nil {
		t.Fatal(err)
	}
	h, err := RunHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if h.TrafficReductionRatio != flat.TrafficReductionRatio {
		t.Errorf("hierarchy TRR %v != flat TRR %v (must be exact at 1 edge, 1 level)",
			h.TrafficReductionRatio, flat.TrafficReductionRatio)
	}
	if h.Requests != flat.Requests {
		t.Errorf("hierarchy measured %d requests, flat %d", h.Requests, flat.Requests)
	}
	if h.PeerByteFrac != 0 || h.ParentByteFrac != 0 {
		t.Errorf("single node served peer=%v parent=%v bytes, want 0", h.PeerByteFrac, h.ParentByteFrac)
	}
	if got := h.EdgeByteFrac + h.OriginByteFrac; math.Abs(got-1) > 1e-9 {
		t.Errorf("edge+origin fractions = %v, want 1", got)
	}
}

// TestHierarchyTierFractionsPartition checks the byte accounting of a
// full 2-level peered cluster: the four tier fractions partition the
// watched bytes, every tier of the chain actually serves something,
// and the traffic reduction ratio is 1 minus the origin share.
func TestHierarchyTierFractionsPartition(t *testing.T) {
	cfg := hierarchyBase()
	cfg.Edges = 4
	cfg.Levels = 2
	cfg.ParentFraction = 0.5
	cfg.Peering = PeeringOwner
	m, err := RunHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := m.EdgeByteFrac + m.PeerByteFrac + m.ParentByteFrac + m.OriginByteFrac
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("tier fractions sum to %v, want 1", sum)
	}
	for name, f := range map[string]float64{
		"edge": m.EdgeByteFrac, "peer": m.PeerByteFrac,
		"parent": m.ParentByteFrac, "origin": m.OriginByteFrac,
	} {
		if f < 0 || f > 1 {
			t.Errorf("%s fraction %v outside [0,1]", name, f)
		}
	}
	if m.PeerByteFrac == 0 {
		t.Error("owner peering served no peer bytes")
	}
	if m.ParentByteFrac == 0 {
		t.Error("parent tier served no bytes")
	}
	if got := 1 - m.OriginByteFrac; math.Abs(got-m.TrafficReductionRatio) > 1e-9 {
		t.Errorf("TRR %v != 1 - origin frac %v", m.TrafficReductionRatio, got)
	}
}

// TestHierarchyPeeringConsolidatesCopies: with the cluster budget split
// across 4 edges, owner peering must beat isolated edges — isolated
// edges hold ~4 duplicate copies of every popular prefix, peering holds
// ~one copy cluster-wide, so more unique bytes fit and fewer bytes
// travel the origin path.
func TestHierarchyPeeringConsolidatesCopies(t *testing.T) {
	iso := hierarchyBase()
	iso.Edges = 4
	peered := iso
	peered.Peering = PeeringOwner
	mi, err := RunHierarchy(iso)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := RunHierarchy(peered)
	if err != nil {
		t.Fatal(err)
	}
	if mp.TrafficReductionRatio <= mi.TrafficReductionRatio {
		t.Errorf("peered TRR %v <= isolated TRR %v, want consolidation to win",
			mp.TrafficReductionRatio, mi.TrafficReductionRatio)
	}
}

// TestHierarchyDeterministic pins bit-identical metrics across repeat
// runs and across Parallelism values, like the flat simulator's suite.
func TestHierarchyDeterministic(t *testing.T) {
	cfg := hierarchyBase()
	cfg.Edges = 3
	cfg.Levels = 2
	cfg.ParentFraction = 0.3
	cfg.Peering = PeeringOwner
	cfg.Runs = 3
	var got []HierarchyMetrics
	for _, par := range []int{1, 1, 4} {
		cfg.Parallelism = par
		m, err := RunHierarchy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, m)
	}
	if got[0] != got[1] || got[0] != got[2] {
		t.Errorf("hierarchy metrics differ across runs/parallelism: %+v vs %+v vs %+v", got[0], got[1], got[2])
	}
}

// TestHierarchyHopPricing: pricing the peer and parent links should
// change placement decisions for bandwidth-aware policies without
// breaking the accounting partition.
func TestHierarchyHopPricing(t *testing.T) {
	cfg := hierarchyBase()
	cfg.Edges = 4
	cfg.Levels = 2
	cfg.ParentFraction = 0.4
	cfg.Peering = PeeringOwner
	cfg.PeerBps = 10e6
	cfg.ParentBps = 2e6
	m, err := RunHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := m.EdgeByteFrac + m.PeerByteFrac + m.ParentByteFrac + m.OriginByteFrac
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("tier fractions sum to %v, want 1", sum)
	}
	if m.TrafficReductionRatio <= 0 || m.TrafficReductionRatio >= 1 {
		t.Errorf("degenerate TRR %v under hop pricing", m.TrafficReductionRatio)
	}
}

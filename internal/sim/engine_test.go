package sim

import (
	"testing"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
)

// TestMetricsIdenticalAcrossParallelism is the engine's core contract:
// the same seed produces bit-identical Metrics whether the runs execute
// on 1, 2 or 8 workers.
func TestMetricsIdenticalAcrossParallelism(t *testing.T) {
	base := Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(5),
		Policy:     core.NewPB(),
		Variation:  bandwidth.NLANRVariability(),
		Runs:       4,
		Seed:       42,
	}
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		cfg := base
		cfg.Parallelism = par
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("Parallelism=%d changed metrics:\n%+v\nwant\n%+v", par, got, ref)
		}
	}
}

// Stateful policies built per run via PolicyFactory must also be
// schedule-independent.
func TestFactoryMetricsIdenticalAcrossParallelism(t *testing.T) {
	var ref Metrics
	for i, par := range []int{1, 2, 8} {
		m, err := Run(Config{
			Workload:      testWorkload(),
			CacheBytes:    cachePct(5),
			PolicyFactory: core.NewGDSP,
			Runs:          3,
			Seed:          37,
			Parallelism:   par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = m
			continue
		}
		if m != ref {
			t.Errorf("Parallelism=%d changed factory metrics:\n%+v\nwant\n%+v", par, m, ref)
		}
	}
}

func TestParallelismValidation(t *testing.T) {
	_, err := Run(Config{
		Workload:    testWorkload(),
		CacheBytes:  1,
		Policy:      core.NewIF(),
		Parallelism: -1,
	})
	if err == nil {
		t.Error("negative Parallelism accepted")
	}
}

func TestSplitSeedProperties(t *testing.T) {
	// Distinct (base, stream) pairs must map to distinct seeds, and in
	// particular the naive base+run overlap (run r+1 of base b equals
	// run r of base b+1) must not exist.
	seen := make(map[int64][2]int64)
	for base := int64(0); base < 50; base++ {
		for stream := int64(0); stream < 50; stream++ {
			s := SplitSeed(base, stream)
			if prev, dup := seen[s]; dup {
				t.Fatalf("SplitSeed collision: (%d,%d) and (%d,%d) -> %d",
					base, stream, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, stream}
		}
	}
	if SplitSeed(1, 1) == SplitSeed(2, 0) {
		t.Error("adjacent base seeds share run seeds (base+run overlap)")
	}
	if SplitSeed(5, 3) != SplitSeed(5, 3) {
		t.Error("SplitSeed is not deterministic")
	}
}

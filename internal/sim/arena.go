// Workload/path arena: sweep-wide memoization of the immutable inputs
// every run re-derives from its seed.
//
// A sweep (cache size x policy x scenario axis) re-runs the same
// (workload.Config, seed) pairs at every sweep point: without reuse,
// workload.Generate dominates small-scale sweep time. The arena caches
// the generated workload, its core.Object conversion, and the per-path
// mean-bandwidth assignment, keyed strictly by the inputs that determine
// them — so a memoized run is bit-identical to a fresh one, and a sweep
// that shares one arena across all points (and refinement iterations)
// generates each distinct (config, seed) exactly once.
//
// Sharing contract (DESIGN.md): everything the arena hands out is
// immutable and shared across goroutines. Callers (and policies they
// configure) must not mutate the returned Workload, []core.Object or
// []float64, and must not retain them past the arena's lifetime if they
// need them to be collectable.
package sim

import (
	"math/rand"
	"reflect"
	"sync"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/trace"
	"streamcache/internal/workload"
)

// Arena memoizes workloads and path-mean assignments across the runs and
// sweep points of one experiment. The zero value is not usable; call
// NewArena. All methods are safe for concurrent use, and every value is
// a pure function of its key, so results never depend on which goroutine
// populated an entry first.
type Arena struct {
	mu     sync.Mutex
	wls    map[workload.Config]*workloadEntry
	paths  map[pathKey]*pathEntry
	traces map[trace.GenConfig]*traceEntry
}

// NewArena builds an empty arena. Use one arena per experiment (or per
// sweep) and drop it afterwards to release the cached workloads.
func NewArena() *Arena {
	return &Arena{
		wls:    make(map[workload.Config]*workloadEntry),
		paths:  make(map[pathKey]*pathEntry),
		traces: make(map[trace.GenConfig]*traceEntry),
	}
}

type workloadEntry struct {
	once sync.Once
	wl   *workload.Workload
	objs []core.Object
	err  error
}

// pathKey identifies one per-path mean-bandwidth assignment. The model
// is part of the key by interface identity: models used across sweep
// points must therefore be shared values (bandwidth.NLANR returns a
// package singleton for exactly this reason).
type pathKey struct {
	base bandwidth.Model
	seed int64
	n    int
}

type pathEntry struct {
	once  sync.Once
	means []float64
}

type traceEntry struct {
	once    sync.Once
	entries []trace.Entry
	err     error
}

// dynComparable reports whether v's dynamic value can be used inside a
// map key without panicking. Nil interface values compare fine.
func dynComparable(v any) bool {
	if v == nil {
		return true
	}
	return reflect.TypeOf(v).Comparable()
}

// coreObjects converts a generated catalog to the cache's object type.
func coreObjects(wl *workload.Workload) []core.Object {
	objs := make([]core.Object, len(wl.Objects))
	for i, o := range wl.Objects {
		objs[i] = core.Object{
			ID:       o.ID,
			Size:     o.Size,
			Duration: o.Duration,
			Rate:     o.Rate,
			Value:    o.Value,
		}
	}
	return objs
}

// samplePathMeans draws one mean bandwidth per object path, exactly as
// an unmemoized run does.
func samplePathMeans(base bandwidth.Model, seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, n)
	for i := range means {
		means[i] = base.Sample(rng)
	}
	return means
}

// Workload returns the (possibly cached) workload for cfg plus its
// core.Object conversion. cfg is normalized before keying, so two
// configurations that normalize identically share one generation. A nil
// arena generates fresh.
func (a *Arena) Workload(cfg workload.Config) (*workload.Workload, []core.Object, error) {
	if a == nil {
		wl, err := workload.Generate(cfg)
		if err != nil {
			return nil, nil, err
		}
		return wl, coreObjects(wl), nil
	}
	cfg, err := cfg.Normalize()
	if err != nil {
		return nil, nil, err
	}
	a.mu.Lock()
	e := a.wls[cfg]
	if e == nil {
		e = &workloadEntry{}
		a.wls[cfg] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		e.wl, e.err = workload.Generate(cfg)
		if e.err == nil {
			e.objs = coreObjects(e.wl)
		}
	})
	return e.wl, e.objs, e.err
}

// PathMeans returns the (possibly cached) per-path mean bandwidths drawn
// from base with the given RNG seed for n paths. Memoization requires a
// comparable model value; non-comparable models (and nil arenas) sample
// fresh, with identical results either way.
func (a *Arena) PathMeans(base bandwidth.Model, seed int64, n int) []float64 {
	if a == nil || !reflect.TypeOf(base).Comparable() {
		return samplePathMeans(base, seed, n)
	}
	key := pathKey{base: base, seed: seed, n: n}
	a.mu.Lock()
	e := a.paths[key]
	if e == nil {
		e = &pathEntry{}
		a.paths[key] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		e.means = samplePathMeans(base, seed, n)
	})
	return e.means
}

// Trace returns the (possibly cached) synthetic access log generated
// from cfg. Figures 2 and 3 analyze the same log shape at two
// variability settings, and a sweep-shared arena generates each
// distinct GenConfig exactly once. Memoization requires a comparable
// config (Base/Variation are interface fields: share model singletons
// like bandwidth.NLANR()); non-comparable configs and nil arenas
// generate fresh, with identical entries either way. The returned
// slice is shared and must not be mutated.
func (a *Arena) Trace(cfg trace.GenConfig) ([]trace.Entry, error) {
	if a == nil || !dynComparable(cfg.Base) || !dynComparable(cfg.Variation) {
		return trace.Generate(cfg)
	}
	a.mu.Lock()
	e := a.traces[cfg]
	if e == nil {
		e = &traceEntry{}
		a.traces[cfg] = e
	}
	a.mu.Unlock()
	e.once.Do(func() {
		e.entries, e.err = trace.Generate(cfg)
	})
	return e.entries, e.err
}

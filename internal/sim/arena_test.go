package sim

import (
	"testing"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
)

// TestArenaMetricsBitIdentical is the memoization contract: a shared
// arena must not change Metrics by a single bit relative to fresh
// generation, at any worker count.
func TestArenaMetricsBitIdentical(t *testing.T) {
	base := Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(5),
		Policy:     core.NewPB(),
		Variation:  bandwidth.NLANRVariability(),
		Runs:       4,
		Seed:       42,
	}
	fresh, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	arena := NewArena()
	for _, par := range []int{1, 2, 8} {
		cfg := base
		cfg.Arena = arena
		cfg.Parallelism = par
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != fresh {
			t.Errorf("Arena+Parallelism=%d changed metrics:\n%+v\nwant\n%+v", par, got, fresh)
		}
	}
}

// The contract must also hold for stateful estimators (EWMA observes
// per-request draws) and a second sweep point sharing the same arena.
func TestArenaSharedAcrossConfigsBitIdentical(t *testing.T) {
	arena := NewArena()
	for _, cacheBytes := range []int64{cachePct(2), cachePct(10)} {
		base := Config{
			Workload:   testWorkload(),
			CacheBytes: cacheBytes,
			Policy:     core.NewPB(),
			Variation:  bandwidth.MeasuredVariability(),
			Estimators: EWMAEstimator(0.3),
			Runs:       2,
			Seed:       7,
		}
		fresh, err := Run(base)
		if err != nil {
			t.Fatal(err)
		}
		memo := base
		memo.Arena = arena
		got, err := Run(memo)
		if err != nil {
			t.Fatal(err)
		}
		if got != fresh {
			t.Errorf("cache=%d: memoized metrics differ:\n%+v\nwant\n%+v", cacheBytes, got, fresh)
		}
	}
}

// TestArenaReusesWorkloads pins that the arena actually dedupes: two
// runs with the same (config, seed) must observe the same backing
// slices.
func TestArenaReusesWorkloads(t *testing.T) {
	arena := NewArena()
	cfg := testWorkload()
	cfg.Seed = 99
	a, objsA, err := arena.Workload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, objsB, err := arena.Workload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same workload config generated twice despite arena")
	}
	if &objsA[0] != &objsB[0] {
		t.Error("core.Object conversion not shared")
	}
	meansA := arena.PathMeans(bandwidth.NLANR(), 123, 50)
	meansB := arena.PathMeans(bandwidth.NLANR(), 123, 50)
	if &meansA[0] != &meansB[0] {
		t.Error("path means not shared for the NLANR singleton")
	}
}

// TestRunOnceSteadyStateAllocs pins the per-request allocation budget of
// the simulation hot path: with a warm arena and the default oracle
// estimator, a full run performs only its fixed per-run setup
// allocations (cache tables, RNG), i.e. well under 0.01 allocs per
// request.
func TestRunOnceSteadyStateAllocs(t *testing.T) {
	cfg := Config{
		Workload:   testWorkload(),
		CacheBytes: cachePct(5),
		Policy:     core.NewPB(),
		Runs:       1,
		Seed:       5,
		Arena:      NewArena(),
	}
	cfg, err := cfg.normalize()
	if err != nil {
		t.Fatal(err)
	}
	seed := SplitSeed(cfg.Seed, 0)
	if _, err := runOnce(cfg, seed); err != nil { // warm the arena
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := runOnce(cfg, seed); err != nil {
			t.Fatal(err)
		}
	})
	perRequest := allocs / float64(cfg.Workload.NumRequests)
	if perRequest > 0.01 {
		t.Errorf("steady-state runOnce allocates %.4f objects/request (%.0f total), want <= 0.01",
			perRequest, allocs)
	}
}

// The active prober must draw independent noise streams for paths that
// share a mean bandwidth (the factory seed mixes in the path index).
func TestActiveProberSeedsDifferPerPath(t *testing.T) {
	factory := ActiveProbeEstimator(0.3)
	const mean = 256 * 1024.0
	a := factory(0, mean)
	b := factory(1, mean)
	a.Observe(0) // trigger a probe
	b.Observe(0)
	if a.Estimate() == b.Estimate() {
		t.Errorf("two paths with equal means share a probe stream: both estimate %v", a.Estimate())
	}
}

package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/par"
	"streamcache/internal/workload"
)

// ErrBadConfig reports an invalid simulation configuration.
var ErrBadConfig = errors.New("sim: invalid configuration")

// EstimatorFactory builds the per-path bandwidth estimator the cache
// consults; path is the origin path's index (== object ID) and pathMean
// its true long-term mean bandwidth. Factories that seed private
// randomness must derive it from the path index (two paths can share a
// mean, but never an index).
type EstimatorFactory func(path int, pathMean float64) bandwidth.Estimator

// OracleEstimator models a cache that knows each path's average
// bandwidth - the assumption behind the paper's main experiments. It is
// also the default: a nil Config.Estimators takes an allocation-free
// fast path with identical estimates.
func OracleEstimator(_ int, pathMean float64) bandwidth.Estimator {
	return &bandwidth.Static{Rate: pathMean}
}

// UnderestimatingOracle returns an oracle scaled by the factor e - the
// over-provisioning heuristic swept in Figures 9 and 12.
func UnderestimatingOracle(e float64) EstimatorFactory {
	return func(_ int, pathMean float64) bandwidth.Estimator {
		return &bandwidth.Underestimator{Inner: &bandwidth.Static{Rate: pathMean}, Factor: e}
	}
}

// EWMAEstimator returns a passive estimator (Section 2.7) that averages
// the throughput of completed transfers with the given smoothing factor.
func EWMAEstimator(alpha float64) EstimatorFactory {
	return func(int, float64) bandwidth.Estimator {
		e, err := bandwidth.NewEWMA(alpha)
		if err != nil {
			// alpha is validated by Config.normalize before any call.
			panic(fmt.Sprintf("sim: EWMA factory: %v", err))
		}
		return e
	}
}

// Default transport parameters for the active-probing model.
const (
	probeMSS = 1460
	probeRTT = 100 * time.Millisecond
	probeRTO = 400 * time.Millisecond
)

// ActiveProbeEstimator returns the active-measurement alternative of
// Section 2.7: each path gets loss/RTT conditions consistent (via the
// Padhye model) with its true mean bandwidth, and the cache re-probes
// the path with the given relative measurement noise after every
// transfer. This is the Section 6 "integrate active bandwidth
// measurement into proxy caches" direction.
func ActiveProbeEstimator(jitter float64) EstimatorFactory {
	return func(path int, pathMean float64) bandwidth.Estimator {
		if pathMean < 1024 {
			pathMean = 1024
		}
		cond, err := bandwidth.ConditionsForRate(pathMean, probeMSS, probeRTT, probeRTO, 1)
		if err != nil {
			panic(fmt.Sprintf("sim: active probe conditions: %v", err))
		}
		// The probe seed mixes the path index with the mean, so two
		// paths that happen to share a mean bandwidth still draw
		// independent measurement-noise streams.
		seed := SplitSeed(int64(math.Float64bits(pathMean))^0x41C64E6D, int64(path))
		p, err := bandwidth.NewActiveProber(cond, probeMSS, probeRTO, 1, jitter, seed)
		if err != nil {
			panic(fmt.Sprintf("sim: active prober: %v", err))
		}
		return &reprobingEstimator{prober: p}
	}
}

// reprobingEstimator re-probes the path whenever a transfer completes,
// so each access sees a fresh active measurement.
type reprobingEstimator struct {
	prober *bandwidth.ActiveProber
}

func (r *reprobingEstimator) Estimate() float64 { return r.prober.Estimate() }

func (r *reprobingEstimator) Observe(float64) {
	// A failed probe keeps the previous estimate; active measurement is
	// best-effort.
	_, _ = r.prober.Probe()
}

// Config parameterizes one experiment.
type Config struct {
	// Workload configures the synthetic access trace (defaults: Table 1).
	Workload workload.Config
	// CacheBytes is the proxy cache capacity.
	CacheBytes int64
	// Policy is the replacement policy under test. With Runs > 1 the
	// same instance drives parallel runs, so implementations must be
	// stateless or safe for concurrent use (all built-in policies are
	// stateless except the GreedyDual-Size family).
	Policy core.Policy
	// PolicyFactory, when set, builds a fresh policy per run and takes
	// precedence over Policy. Required for stateful policies such as
	// GDS/GDSP, whose aging value must not be shared across runs.
	PolicyFactory func() core.Policy
	// CacheOptions tweak cache mechanics (e.g. whole-object eviction).
	CacheOptions []core.Option
	// Base draws each path's mean bandwidth (default: NLANR, Figure 2).
	Base bandwidth.Model
	// Variation draws per-request sample-to-mean ratios (default: none).
	Variation bandwidth.Variability
	// Estimators builds the per-path estimator. Nil means the oracle
	// mean (the paper's default assumption), served by an
	// allocation-free fast path numerically identical to
	// OracleEstimator.
	Estimators EstimatorFactory
	// WarmFraction of requests warms the cache before metrics are
	// recorded (default 0.5, as in Section 4.1).
	WarmFraction float64
	// Runs averages this many independently seeded runs (default 1).
	Runs int
	// Seed is the base seed; run r uses SplitSeed(Seed, r).
	Seed int64
	// Parallelism bounds the worker goroutines executing runs (default
	// runtime.GOMAXPROCS(0)). Because every run derives its own random
	// streams from SplitSeed(Seed, run) and results aggregate in run
	// order, Metrics are bit-identical for every Parallelism value.
	Parallelism int
	// Arena, when set, memoizes generated workloads and per-path mean
	// bandwidths across runs — share one arena across all the sweep
	// points of an experiment so identical (config, seed) inputs are
	// derived once instead of at every point. Every arena value is a
	// pure function of its key, so Metrics are bit-identical with or
	// without an arena (regression-tested). Nil disables memoization.
	Arena *Arena
}

func (c Config) normalize() (Config, error) {
	if c.CacheBytes < 0 {
		return c, fmt.Errorf("%w: CacheBytes=%d", ErrBadConfig, c.CacheBytes)
	}
	if c.Policy == nil && c.PolicyFactory == nil {
		return c, fmt.Errorf("%w: nil Policy and no PolicyFactory", ErrBadConfig)
	}
	if c.Base == nil {
		c.Base = bandwidth.NLANR()
	}
	if c.Variation == nil {
		c.Variation = bandwidth.NoVariation{}
	}
	if c.WarmFraction == 0 {
		c.WarmFraction = 0.5
	}
	if c.WarmFraction < 0 || c.WarmFraction >= 1 {
		return c, fmt.Errorf("%w: WarmFraction=%v, want in [0,1)", ErrBadConfig, c.WarmFraction)
	}
	if c.Runs == 0 {
		c.Runs = 1
	}
	if c.Runs < 0 {
		return c, fmt.Errorf("%w: Runs=%d", ErrBadConfig, c.Runs)
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Parallelism < 0 {
		return c, fmt.Errorf("%w: Parallelism=%d", ErrBadConfig, c.Parallelism)
	}
	return c, nil
}

// Metrics are the Section 3.3 performance measures, averaged over the
// measurement phase of all runs.
type Metrics struct {
	Requests              int     // measured requests per run
	TrafficReductionRatio float64 // bytes served from cache / total requested bytes
	AvgServiceDelay       float64 // seconds
	AvgStreamQuality      float64 // fraction in [0, 1]
	TotalAddedValue       float64 // dollars earned from immediately-servable requests
	HitRatio              float64 // fraction of requests finding any cached prefix
	EvictedBytes          int64   // eviction churn during measurement
}

// Run executes the experiment and returns metrics averaged over
// cfg.Runs seeded runs. Runs are independent and fan out over a worker
// pool bounded by cfg.Parallelism; each run's random streams derive
// from SplitSeed(cfg.Seed, run) and results are aggregated in run
// order, so Run returns bit-identical Metrics for a given configuration
// regardless of worker count or goroutine scheduling.
func Run(cfg Config) (Metrics, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return Metrics{}, err
	}
	results := make([]Metrics, cfg.Runs)
	errs := make([]error, cfg.Runs)
	par.For(cfg.Parallelism, cfg.Runs, func(r int) {
		results[r], errs[r] = runOnce(cfg, SplitSeed(cfg.Seed, int64(r)))
	})
	var agg Metrics
	for r := 0; r < cfg.Runs; r++ {
		if errs[r] != nil {
			return Metrics{}, fmt.Errorf("sim: run %d: %w", r, errs[r])
		}
		m := results[r]
		agg.Requests += m.Requests
		agg.TrafficReductionRatio += m.TrafficReductionRatio
		agg.AvgServiceDelay += m.AvgServiceDelay
		agg.AvgStreamQuality += m.AvgStreamQuality
		agg.TotalAddedValue += m.TotalAddedValue
		agg.HitRatio += m.HitRatio
		agg.EvictedBytes += m.EvictedBytes
	}
	n := float64(cfg.Runs)
	agg.Requests /= cfg.Runs
	agg.TrafficReductionRatio /= n
	agg.AvgServiceDelay /= n
	agg.AvgStreamQuality /= n
	agg.TotalAddedValue /= n
	agg.HitRatio /= n
	agg.EvictedBytes /= int64(cfg.Runs)
	return agg, nil
}

// netSeedSalt separates the network random streams from the workload
// stream of the same run (the workload generator seeds rand with the
// run seed directly).
const netSeedSalt = 0x5DEECE66D

// runScratch holds per-run state reused across runs via scratchPool.
// Only backing storage survives a run: estimator slice elements are
// rewritten before use and the pooled cache is Reset to its
// freshly-constructed state, so pooled state can never leak between
// runs (and results stay bit-identical whether or not a pooled buffer
// was reused — the Parallelism 1/2/8 determinism suite exercises both).
type runScratch struct {
	estimators []bandwidth.Estimator
	cache      *core.Cache
}

func (s *runScratch) estSlice(n int) []bandwidth.Estimator {
	if cap(s.estimators) < n {
		s.estimators = make([]bandwidth.Estimator, n)
	}
	return s.estimators[:n]
}

// cacheFor returns a cache configured exactly as core.New(capacity,
// policy, opts...) would build it, reusing the pooled cache's table
// storage when one is available.
func (s *runScratch) cacheFor(capacity int64, policy core.Policy, opts ...core.Option) (*core.Cache, error) {
	if s.cache == nil {
		c, err := core.New(capacity, policy, opts...)
		if err != nil {
			return nil, err
		}
		s.cache = c
		return c, nil
	}
	if err := s.cache.Reset(capacity, policy, opts...); err != nil {
		return nil, err
	}
	return s.cache, nil
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

//mediavet:hotpath
func runOnce(cfg Config, seed int64) (Metrics, error) {
	wcfg := cfg.Workload
	wcfg.Seed = seed
	//mediavet:ignore hotpath per-run setup: the arena memoizes generation, so this is a map lookup amortized over NumRequests accesses
	wl, objs, err := cfg.Arena.Workload(wcfg)
	if err != nil {
		return Metrics{}, err
	}
	policy := cfg.Policy
	if cfg.PolicyFactory != nil {
		policy = cfg.PolicyFactory()
	}
	scratch := scratchPool.Get().(*runScratch)
	defer scratchPool.Put(scratch)
	opts := make([]core.Option, 0, len(cfg.CacheOptions)+1)
	//mediavet:ignore hotpath per-run setup: option construction happens once per run, before the request loop
	opts = append(opts, core.WithExpectedObjects(len(objs)))
	opts = append(opts, cfg.CacheOptions...)
	//mediavet:ignore hotpath per-run setup: the pooled scratch reuses cache storage across runs; see BenchmarkSimRunParallelism allocs
	cache, err := scratch.cacheFor(cfg.CacheBytes, policy, opts...)
	if err != nil {
		return Metrics{}, err
	}

	// Independent streams for network conditions so that workload and
	// bandwidth randomness do not interfere. Path-mean assignment and
	// per-request variability draw from separate streams, which is what
	// lets the arena reuse the (deterministic) mean assignment without
	// perturbing per-request draws.
	pathSeed := seed ^ netSeedSalt
	//mediavet:ignore hotpath per-run setup: memoized path-mean assignment, shared read-only across runs
	means := cfg.Arena.PathMeans(cfg.Base, pathSeed, len(objs))
	instRNG := rand.New(rand.NewSource(SplitSeed(pathSeed, 1)))

	// Build the per-path estimators; a nil factory is the oracle mean,
	// read straight from the memoized assignment.
	oracle := cfg.Estimators == nil
	var estimators []bandwidth.Estimator
	if !oracle {
		//mediavet:ignore hotpath per-run setup: estimator slice comes from the pooled scratch, reused across runs
		estimators = scratch.estSlice(len(objs))
		for i := range estimators {
			estimators[i] = cfg.Estimators(i, means[i])
		}
	}

	warm := int(cfg.WarmFraction * float64(len(wl.Requests)))
	var (
		m          Metrics
		delaySum   float64
		qualitySum float64
		cacheBytes float64
		totalBytes float64
		hits       int
	)
	for i := range wl.Requests {
		req := &wl.Requests[i]
		obj := objs[req.ObjectID]
		inst := bandwidth.Path{MeanRate: means[obj.ID], Variation: cfg.Variation}.Instant(instRNG)
		est := means[obj.ID]
		if !oracle {
			est = estimators[obj.ID].Estimate()
		}
		res := cache.Access(obj, est, req.Time)
		if !oracle {
			estimators[obj.ID].Observe(inst)
		}
		if i < warm {
			continue
		}
		m.Requests++
		delaySum += core.StartupDelay(obj, res.HitBytes, inst)
		qualitySum += core.StreamQuality(obj, res.HitBytes, inst)
		if core.ImmediatelyServable(obj, res.HitBytes, inst) {
			m.TotalAddedValue += obj.Value
		}
		// Traffic accounting honors partial viewing: a session that
		// stops early only ever transfers the watched prefix.
		watched := obj.Size
		if req.Fraction > 0 && req.Fraction < 1 {
			watched = int64(req.Fraction * float64(obj.Size))
		}
		served := res.HitBytes
		if served > watched {
			served = watched
		}
		cacheBytes += float64(served)
		totalBytes += float64(watched)
		if res.HitBytes > 0 {
			hits++
		}
		m.EvictedBytes += res.EvictedBytes
	}
	if m.Requests > 0 {
		m.AvgServiceDelay = delaySum / float64(m.Requests)
		m.AvgStreamQuality = qualitySum / float64(m.Requests)
		m.HitRatio = float64(hits) / float64(m.Requests)
	}
	if totalBytes > 0 {
		m.TrafficReductionRatio = cacheBytes / totalBytes
	}
	return m, nil
}

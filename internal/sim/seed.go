package sim

// Splittable seeding (SplitMix64). Every run of an experiment draws its
// private seed as SplitSeed(base, run), so:
//
//   - runs never share or re-derive each other's random streams,
//   - two base seeds that differ by 1 do not produce overlapping run
//     sequences (the flaw of the naive base+run scheme, where run 1 of
//     seed 1 equals run 0 of seed 2), and
//   - the seed of run r is a pure function of (base, r), independent of
//     which worker executes the run or in what order — the foundation of
//     the engine's bit-identical-results-at-any-parallelism contract.

// splitmix64 is the finalizer of the SplitMix64 generator (Steele,
// Lea & Flood, OOPSLA 2014); it bijectively scrambles its input.
//mediavet:hotpath
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SplitSeed derives the seed of independent stream `stream` from a base
// seed. It is deterministic and collision-resistant across both
// arguments.
//mediavet:hotpath
func SplitSeed(base, stream int64) int64 {
	return int64(splitmix64(splitmix64(uint64(base)) ^ uint64(stream)))
}

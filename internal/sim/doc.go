// Package sim drives the partial-caching algorithms with synthetic
// workloads and bandwidth models, reproducing the evaluation methodology
// of Sections 3-4: each run warms the cache with the first half of the
// workload and computes metrics over the second half; reported results
// average several independently seeded runs (the paper uses ten).
//
// Metrics follow Section 3.3:
//
//   - traffic reduction ratio: fraction of requested bytes served by the cache
//   - average service delay: mean client wait before playout can begin
//   - average stream quality: mean fraction of the stream immediate playout sustains
//   - total added value: summed object values of immediately-servable requests
//
// # Determinism contract
//
// Run results are a pure function of Config minus Parallelism. Every
// source of randomness in a run — the workload, the path-mean
// assignment, per-request bandwidth samples, estimator jitter — derives
// from Config.Seed through SplitSeed (a SplitMix64 expansion), with one
// independent stream per replicated run, so Metrics are bit-identical
// for every Config.Parallelism value and goroutine schedule. This is
// what lets the experiments layer key a row by nothing more than its
// position in the sweep grid: re-running the config at that position —
// on any machine, any worker count, any sweep shard — regenerates the
// identical row, which is the foundation of the sharding, journaling
// and resume subsystems in internal/experiments.
//
// # Arena immutability contract
//
// An Arena memoizes workloads, their core.Object conversions, and
// per-path mean-bandwidth assignments across the runs and sweep points
// of one experiment, keyed strictly by the inputs that determine them —
// a memoized run is bit-identical to a fresh one. Everything the arena
// hands out is immutable and shared across goroutines: callers (and
// policies they configure) must not mutate a returned Workload,
// []core.Object or []float64, and must not retain them past the arena's
// lifetime if they need them to be collectable. Use one arena per
// experiment and drop it afterwards.
package sim

package sim

import (
	"fmt"

	"streamcache/internal/cluster"
	"streamcache/internal/core"
	"streamcache/internal/par"
)

// PeeringPolicy selects how edge nodes cooperate in a hierarchy run.
type PeeringPolicy string

const (
	// PeeringNone sends every edge miss straight up (parent, then
	// origin) — edges are isolated caches.
	PeeringNone PeeringPolicy = "none"
	// PeeringOwner forwards an edge miss to the object's
	// consistent-hash owner before the parent tier, so the cluster
	// holds ~one copy of each object across edges.
	PeeringOwner PeeringPolicy = "owner"
)

// HierarchyConfig parameterizes a multi-node hierarchy run: the
// embedded Config's CacheBytes is the cluster-wide budget, split
// between the parent tier (ParentFraction, when Levels is 2) and the
// edges (evenly, via core.SplitCapacity). Request i goes to edge
// i % Edges — the same assignment cmd/loadgen uses against a live
// cluster, which is what lets TestClusterHitRatioMatchesSimulator pin
// the two against each other.
//
// Only the oracle estimator is supported (Estimators must be nil):
// hop pricing is structural — PeerBps/ParentBps price the peer and
// parent links, the path means price the origin hop — not measured.
type HierarchyConfig struct {
	Config

	// Edges is the number of edge nodes (0 means 1).
	Edges int
	// Levels is the tier depth: 1 = edges -> origin, 2 = edges ->
	// parent -> origin (0 means 1).
	Levels int
	// ParentFraction is the share of CacheBytes given to the parent
	// tier when Levels is 2.
	ParentFraction float64
	// Peering selects edge cooperation ("" means PeeringNone).
	Peering PeeringPolicy
	// VirtualNodes is the ownership-ring granularity (0 means
	// cluster.DefaultVirtualNodes).
	VirtualNodes int
	// PeerBps prices the edge-to-owner link for the utility model
	// (bytes/s; 0 means price the object's origin path instead).
	PeerBps float64
	// ParentBps prices the edge-to-parent link likewise.
	ParentBps float64
}

// HierarchyMetrics report where each watched byte was served from,
// averaged over the measurement phase of all runs. The four byte
// fractions partition 1: every byte a client watched came out of its
// edge's cache, a peer owner's cache, the parent's cache, or over the
// origin path.
type HierarchyMetrics struct {
	Requests int
	// TrafficReductionRatio is the cluster-wide figure of merit:
	// 1 - origin bytes / watched bytes (at one edge and one level it
	// coincides exactly with Metrics.TrafficReductionRatio).
	TrafficReductionRatio float64
	EdgeByteFrac          float64
	PeerByteFrac          float64
	ParentByteFrac        float64
	OriginByteFrac        float64
}

func (c HierarchyConfig) normalize() (HierarchyConfig, error) {
	if c.Estimators != nil {
		return c, fmt.Errorf("%w: hierarchy runs support only the oracle estimator (Estimators must be nil)", ErrBadConfig)
	}
	if c.Edges == 0 {
		c.Edges = 1
	}
	if c.Edges < 0 {
		return c, fmt.Errorf("%w: Edges=%d", ErrBadConfig, c.Edges)
	}
	if c.Levels == 0 {
		c.Levels = 1
	}
	if c.Levels != 1 && c.Levels != 2 {
		return c, fmt.Errorf("%w: Levels=%d, want 1 or 2", ErrBadConfig, c.Levels)
	}
	if c.ParentFraction < 0 || c.ParentFraction >= 1 {
		return c, fmt.Errorf("%w: ParentFraction=%v, want in [0,1)", ErrBadConfig, c.ParentFraction)
	}
	if c.Levels == 1 && c.ParentFraction != 0 {
		return c, fmt.Errorf("%w: ParentFraction=%v with Levels=1", ErrBadConfig, c.ParentFraction)
	}
	switch c.Peering {
	case "", PeeringNone:
		c.Peering = PeeringNone
	case PeeringOwner:
	default:
		return c, fmt.Errorf("%w: Peering=%q", ErrBadConfig, c.Peering)
	}
	base, err := c.Config.normalize()
	if err != nil {
		return c, err
	}
	c.Config = base
	return c, nil
}

// RunHierarchy executes the hierarchy experiment, averaging over
// cfg.Runs seeded runs exactly like Run (bit-identical at any
// Parallelism).
func RunHierarchy(cfg HierarchyConfig) (HierarchyMetrics, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return HierarchyMetrics{}, err
	}
	results := make([]HierarchyMetrics, cfg.Runs)
	errs := make([]error, cfg.Runs)
	par.For(cfg.Parallelism, cfg.Runs, func(r int) {
		results[r], errs[r] = hierarchyRunOnce(cfg, SplitSeed(cfg.Seed, int64(r)))
	})
	var agg HierarchyMetrics
	for r := 0; r < cfg.Runs; r++ {
		if errs[r] != nil {
			return HierarchyMetrics{}, fmt.Errorf("sim: hierarchy run %d: %w", r, errs[r])
		}
		m := results[r]
		agg.Requests += m.Requests
		agg.TrafficReductionRatio += m.TrafficReductionRatio
		agg.EdgeByteFrac += m.EdgeByteFrac
		agg.PeerByteFrac += m.PeerByteFrac
		agg.ParentByteFrac += m.ParentByteFrac
		agg.OriginByteFrac += m.OriginByteFrac
	}
	n := float64(cfg.Runs)
	agg.Requests /= cfg.Runs
	agg.TrafficReductionRatio /= n
	agg.EdgeByteFrac /= n
	agg.PeerByteFrac /= n
	agg.ParentByteFrac /= n
	agg.OriginByteFrac /= n
	return agg, nil
}

// hierarchyRunOnce replays one seeded trace through the modeled
// cluster. The fetch chain mirrors the live tier byte for byte:
//
//	edge cache -> (owner's cache, if peering and remote) ->
//	(parent cache, if two levels) -> origin
//
// with each tier serving what it holds past the resume offset and the
// remainder descending a level. A ranged relay cannot extend a cache
// past a gap (the live PrefixStore drops non-contiguous appends and
// post-relay reconciliation truncates the grant), which the model
// mirrors by undoing an owner's or parent's prefix growth whenever the
// resume offset lies beyond its stored prefix.
func hierarchyRunOnce(cfg HierarchyConfig, seed int64) (HierarchyMetrics, error) {
	wcfg := cfg.Workload
	wcfg.Seed = seed
	wl, objs, err := cfg.Arena.Workload(wcfg)
	if err != nil {
		return HierarchyMetrics{}, err
	}

	newPolicy := func() core.Policy {
		if cfg.PolicyFactory != nil {
			return cfg.PolicyFactory()
		}
		return cfg.Policy
	}
	opts := make([]core.Option, 0, len(cfg.CacheOptions)+1)
	opts = append(opts, core.WithExpectedObjects(len(objs)))
	opts = append(opts, cfg.CacheOptions...)

	// Capacity split: the parent takes its fraction off the top, the
	// edges split the rest evenly.
	var parentBytes int64
	if cfg.Levels == 2 {
		parentBytes = int64(cfg.ParentFraction * float64(cfg.CacheBytes))
	}
	edgeCaps := core.SplitCapacity(cfg.CacheBytes-parentBytes, cfg.Edges)
	if edgeCaps == nil {
		return HierarchyMetrics{}, fmt.Errorf("%w: edge budget %d over %d edges", ErrBadConfig, cfg.CacheBytes-parentBytes, cfg.Edges)
	}
	edges := make([]*core.Cache, cfg.Edges)
	for e := range edges {
		c, err := core.New(edgeCaps[e], newPolicy(), opts...)
		if err != nil {
			return HierarchyMetrics{}, err
		}
		edges[e] = c
	}
	var parent *core.Cache
	if cfg.Levels == 2 {
		parent, err = core.New(parentBytes, newPolicy(), opts...)
		if err != nil {
			return HierarchyMetrics{}, err
		}
	}
	var ring *cluster.Ring
	if cfg.Peering == PeeringOwner && cfg.Edges > 1 {
		ring, err = cluster.NewRing(cfg.Edges, cfg.VirtualNodes)
		if err != nil {
			return HierarchyMetrics{}, err
		}
	}

	pathSeed := seed ^ netSeedSalt
	means := cfg.Arena.PathMeans(cfg.Base, pathSeed, len(objs))

	warm := int(cfg.WarmFraction * float64(len(wl.Requests)))
	var (
		m                                    HierarchyMetrics
		edgeB, peerB, parentB, originB, totB int64
	)
	for i := range wl.Requests {
		req := &wl.Requests[i]
		obj := objs[req.ObjectID]
		e := i % cfg.Edges
		owner := e
		if ring != nil {
			owner = ring.Owner(obj.ID)
		}

		watched := obj.Size
		if req.Fraction > 0 && req.Fraction < 1 {
			watched = int64(req.Fraction * float64(obj.Size))
		}

		// Hop pricing: each cache's utility sees the bandwidth of the
		// link its misses would actually travel (zero knobs fall back to
		// the origin path mean).
		originMean := means[obj.ID]
		edgeEst := originMean
		switch {
		case owner != e && cfg.PeerBps > 0:
			edgeEst = cfg.PeerBps
		case cfg.Levels == 2 && cfg.ParentBps > 0:
			edgeEst = cfg.ParentBps
		}
		ownerEst := originMean
		if cfg.Levels == 2 && cfg.ParentBps > 0 {
			ownerEst = cfg.ParentBps
		}

		// Edge hop. Local clients always resume from byte 0, so the
		// edge's granted prefix growth always materializes.
		res := edges[e].Access(obj, edgeEst, req.Time)
		served := res.HitBytes
		if served > watched {
			served = watched
		}
		off := served
		reqEdge := served

		// Owner hop.
		var reqPeer, reqParent int64
		if off < watched && owner != e {
			reqPeer = tierServe(edges[owner], obj, ownerEst, req.Time, off, watched)
			off += reqPeer
		}
		// Parent hop.
		if off < watched && cfg.Levels == 2 {
			reqParent = tierServe(parent, obj, originMean, req.Time, off, watched)
			off += reqParent
		}

		if i < warm {
			continue
		}
		m.Requests++
		edgeB += reqEdge
		peerB += reqPeer
		parentB += reqParent
		originB += watched - off
		totB += watched
	}
	if totB > 0 {
		t := float64(totB)
		m.TrafficReductionRatio = float64(totB-originB) / t
		m.EdgeByteFrac = float64(edgeB) / t
		m.PeerByteFrac = float64(peerB) / t
		m.ParentByteFrac = float64(parentB) / t
		m.OriginByteFrac = float64(originB) / t
	}
	return m, nil
}

// tierServe models one upper-tier cache serving a ranged resume at
// offset off: the tier grants its policy decision, serves what it
// holds past off (clamped to watched), and — when off lies beyond its
// stored prefix — has its growth undone, because the live tier's
// ranged relay starts past the gap and the PrefixStore refuses
// non-contiguous appends (post-relay reconciliation then truncates the
// accounting back to what was stored).
func tierServe(c *core.Cache, obj core.Object, est, now float64, off, watched int64) int64 {
	r := c.Access(obj, est, now)
	if off > r.HitBytes {
		keep := r.HitBytes
		if r.CachedAfter < keep {
			keep = r.CachedAfter // the policy shrank it regardless
		}
		c.Truncate(obj.ID, keep)
		return 0
	}
	top := r.HitBytes
	if top > watched {
		top = watched
	}
	if top <= off {
		return 0
	}
	return top - off
}

package load

import (
	"math"
	"net/http/httptest"
	"strconv"
	"testing"

	"streamcache/internal/core"
	"streamcache/internal/experiments"
	"streamcache/internal/proxy"
	"streamcache/internal/units"
)

// startStack brings up an in-process origin + proxy pair and returns
// the catalog and the proxy's base URL.
func startStack(t *testing.T, objects int, meanKB int64, originKBps float64, cacheBytes int64) (*proxy.Catalog, string) {
	t.Helper()
	catalog, err := proxy.BuildCatalog(objects, meanKB, 512, 1)
	if err != nil {
		t.Fatalf("BuildCatalog: %v", err)
	}
	origin, err := proxy.NewOrigin(catalog, units.KBps(originKBps))
	if err != nil {
		t.Fatalf("NewOrigin: %v", err)
	}
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)
	px, err := proxy.New(proxy.Config{
		Catalog:    catalog,
		OriginURL:  originSrv.URL,
		CacheBytes: cacheBytes,
		NewPolicy: func() core.Policy {
			p, err := core.PolicyByName("LRU", 0.5)
			if err != nil {
				panic(err)
			}
			return p
		},
	})
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	proxySrv := httptest.NewServer(px)
	t.Cleanup(proxySrv.Close)
	return catalog, proxySrv.URL
}

// checkAccounting asserts the open-loop invariant on a report: every
// scheduled arrival ends in exactly one of the three fates.
func checkAccounting(t *testing.T, r *Report) {
	t.Helper()
	tot := &r.Total
	if tot.Issued != tot.Completed+tot.Shed+tot.Failed {
		t.Fatalf("accounting broken: issued %d != completed %d + shed %d + failed %d",
			tot.Issued, tot.Completed, tot.Shed, tot.Failed)
	}
	var sum ClassSummary
	for _, c := range r.Classes {
		sum.Issued += c.Issued
		sum.Completed += c.Completed
		sum.Shed += c.Shed
		sum.Failed += c.Failed
	}
	if sum != (ClassSummary{Issued: tot.Issued, Completed: tot.Completed, Shed: tot.Shed, Failed: tot.Failed}) {
		t.Fatalf("per-class totals %+v disagree with aggregate %+v", sum, tot)
	}
}

func TestOpenLoopAchievedRateMatchesConfigured(t *testing.T) {
	// An unloaded proxy at low offered rate must deliver the configured
	// rate: nothing shed, nothing failed, achieved within tolerance.
	// Time scale 10 compresses the 20-workload-second horizon to ~2s of
	// wall clock, which also exercises the compression path.
	catalog, proxyURL := startStack(t, 10, 64, 0, 64*units.MB)
	const configured = 10.0
	outcomes, report, err := Run(Options{
		ProxyURL:  proxyURL,
		Catalog:   catalog,
		Spec:      SingleClass(configured, 60_000),
		TimeScale: 10,
		Seed:      11,
		Horizon:   20,
		Verify:    true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkAccounting(t, report)
	if report.Total.Shed != 0 {
		t.Errorf("unloaded run shed %d arrivals", report.Total.Shed)
	}
	if report.Total.Failed != 0 {
		for _, o := range outcomes {
			if o.State == Failed {
				t.Errorf("failure: %s", o.Err)
				break
			}
		}
		t.Fatalf("unloaded run failed %d arrivals", report.Total.Failed)
	}
	if report.Total.Issued < 100 {
		t.Fatalf("only %d arrivals issued, want ~200", report.Total.Issued)
	}
	// Achieved rate is reported in workload req/s, directly comparable
	// to the configured Poisson rate. The wall clock includes the drain
	// tail after the last arrival, so allow a generous band — and a
	// wider one under the race detector, whose instrumentation slows
	// the dispatch loop and stretches wall time on 1-core machines.
	tol := 0.35
	if raceEnabled {
		tol = 0.7
	}
	if a := report.Total.AchievedRPS; math.Abs(a-configured) > tol*configured {
		t.Errorf("achieved %.2f workload-rps, configured %.2f, want within %d%%", a, configured, int(tol*100))
	}
}

func TestOpenLoopOverdriveShedsAndAccounts(t *testing.T) {
	// Overdrive a tiny proxy: a slow origin path plus a tiny in-flight
	// cap means most arrivals find the engine saturated. They must be
	// shed — not queued — and the books must still balance.
	catalog, proxyURL := startStack(t, 5, 256, 128, units.MB)
	_, report, err := Run(Options{
		ProxyURL:    proxyURL,
		Catalog:     catalog,
		Spec:        SingleClass(100, 250),
		TimeScale:   1,
		Seed:        12,
		Horizon:     1.5,
		MaxInflight: 2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkAccounting(t, report)
	if report.Total.Shed == 0 {
		t.Fatal("overdriven run shed nothing; the engine is queueing (closed-loop relapse)")
	}
	if frac := report.Total.SLOViolationFrac; frac < 0.5 {
		t.Errorf("overdriven SLO violation fraction %.3f, want >= 0.5", frac)
	}

	// Same stack, gentle load: the violation fraction must sit clearly
	// below the overdriven one — this is the signal the ramp sweep knees on.
	_, calm, err := Run(Options{
		ProxyURL:    proxyURL,
		Catalog:     catalog,
		Spec:        SingleClass(2, 60_000),
		TimeScale:   1,
		Seed:        13,
		Horizon:     1.5,
		MaxInflight: 64,
	})
	if err != nil {
		t.Fatalf("Run (calm): %v", err)
	}
	checkAccounting(t, calm)
	if calm.Total.SLOViolationFrac >= report.Total.SLOViolationFrac {
		t.Errorf("calm violation frac %.3f not below overdriven %.3f",
			calm.Total.SLOViolationFrac, report.Total.SLOViolationFrac)
	}
}

func TestRampSweepFindsKnee(t *testing.T) {
	// Sweep offered load across ramp levels against one warm proxy and
	// check the emitted live-capacity table: the offered-load column is
	// monotone and the SLO-violation fraction crosses the knee threshold
	// at some level.
	catalog, proxyURL := startStack(t, 5, 256, 256, units.MB)
	levels := []float64{1, 20, 200}
	sink := &experiments.TableSink{}
	if err := sink.Begin(experiments.LiveCapacityMeta("test ramp")); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	for li, scale := range levels {
		_, report, err := Run(Options{
			ProxyURL:    proxyURL,
			Catalog:     catalog,
			Spec:        SingleClass(1.5, 500),
			Seed:        21,
			Horizon:     1.5,
			MaxInflight: 4,
			RateScale:   scale,
		})
		if err != nil {
			t.Fatalf("Run level %d: %v", li, err)
		}
		checkAccounting(t, report)
		if err := sink.Row(report.SummaryRow(li)); err != nil {
			t.Fatalf("Row: %v", err)
		}
	}
	if err := sink.End(); err != nil {
		t.Fatalf("End: %v", err)
	}
	table := sink.Table()
	if got, want := len(table.Header), len(experiments.LiveCapacityHeader); got != want {
		t.Fatalf("summary row width %d, want %d", got, want)
	}

	offeredCol := -1
	for i, h := range table.Header {
		if h == "offered_rps" {
			offeredCol = i
		}
	}
	prev := -1.0
	for li, row := range table.Rows {
		offered, err := strconv.ParseFloat(row[offeredCol], 64)
		if err != nil {
			t.Fatalf("level %d: bad offered_rps %q", li, row[offeredCol])
		}
		if offered < prev {
			t.Fatalf("offered_rps not monotone at level %d: %v after %v", li, offered, prev)
		}
		prev = offered
	}

	knee := experiments.FindKnee(table, 0.3)
	if knee <= 0 {
		t.Fatalf("FindKnee = %d, want a crossing after the first (unloaded) level", knee)
	}
	if experiments.FindKnee(table, 1.1) != -1 {
		t.Error("FindKnee crossed an impossible threshold > 1")
	}
}

package load

import (
	"bytes"
	"strings"
	"testing"

	"streamcache/internal/experiments"
	"streamcache/internal/proxy"
	"streamcache/internal/workload"
)

// scheduleBytes builds the schedule for (spec, seed) and renders it the
// way `loadgen -schedule-out` does, returning the emitted bytes.
func scheduleBytes(t *testing.T, spec *Spec, catalog *proxy.Catalog, trace []workload.Request, seed int64) []byte {
	t.Helper()
	items, err := BuildSchedule(spec, catalog, trace, seed, 60, 0, 1)
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteSchedule(experiments.NewJSONLSink(&buf), "schedule", items); err != nil {
		t.Fatalf("WriteSchedule: %v", err)
	}
	return buf.Bytes()
}

func TestScheduleByteIdenticalAcrossRuns(t *testing.T) {
	// The determinism regression: identical (seed, spec, trace) inputs
	// must produce byte-identical schedule artifacts run over run. This
	// is the contract `scripts/load-check.sh` re-checks end to end
	// through the loadgen binary.
	catalog, err := proxy.BuildCatalog(20, 64, 512, 1)
	if err != nil {
		t.Fatalf("BuildCatalog: %v", err)
	}
	w, err := workload.Generate(workload.Config{NumObjects: 20, NumRequests: 300, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	spec, err := ParseSpec(strings.NewReader(`{
	  "classes": [
	    {"name": "vod", "arrival": {"process": "poisson", "rate": 8},
	     "viewing": {"dist": "uniform"}, "slo": {"class": "standard"}},
	    {"name": "burst", "arrival": {"process": "onoff", "sources": 10, "peak_rate": 3},
	     "slo": {"class": "interactive"}},
	    {"name": "replay", "arrival": {"process": "trace"}, "slo": {"class": "relaxed"}}
	  ]
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}

	first := scheduleBytes(t, spec, catalog, w.Requests, 42)
	second := scheduleBytes(t, spec, catalog, w.Requests, 42)
	if !bytes.Equal(first, second) {
		t.Fatal("same seed produced different schedule bytes")
	}
	if len(first) == 0 || bytes.Count(first, []byte("\n")) < 100 {
		t.Fatalf("suspiciously small schedule: %d bytes", len(first))
	}
	other := scheduleBytes(t, spec, catalog, w.Requests, 43)
	if bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical schedule bytes")
	}
}

func TestBuildScheduleShape(t *testing.T) {
	catalog, err := proxy.BuildCatalog(10, 64, 512, 1)
	if err != nil {
		t.Fatalf("BuildCatalog: %v", err)
	}
	spec := SingleClass(20, 1000)
	items, err := BuildSchedule(spec, catalog, nil, 5, 30, 0, 1)
	if err != nil {
		t.Fatalf("BuildSchedule: %v", err)
	}
	if len(items) < 300 {
		t.Fatalf("%d items for 20 rps x 30 s, want ~600", len(items))
	}
	for i, it := range items {
		if it.Index != i {
			t.Fatalf("item %d has Index %d", i, it.Index)
		}
		if i > 0 && it.Time < items[i-1].Time {
			t.Fatalf("schedule out of order at %d", i)
		}
		if it.Fraction <= 0 || it.Fraction > 1 {
			t.Fatalf("item %d fraction %v outside (0, 1]", i, it.Fraction)
		}
		if _, ok := catalog.Get(it.ObjectID); !ok {
			t.Fatalf("item %d references unknown object %d", i, it.ObjectID)
		}
	}

	// maxRequests truncates; rateScale multiplies the offered volume.
	capped, err := BuildSchedule(spec, catalog, nil, 5, 30, 50, 1)
	if err != nil {
		t.Fatalf("BuildSchedule capped: %v", err)
	}
	if len(capped) != 50 {
		t.Fatalf("capped schedule has %d items, want 50", len(capped))
	}
	doubled, err := BuildSchedule(spec, catalog, nil, 5, 30, 0, 2)
	if err != nil {
		t.Fatalf("BuildSchedule x2: %v", err)
	}
	if ratio := float64(len(doubled)) / float64(len(items)); ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("rate scale 2 produced %dx the arrivals, want ~2x", int(ratio*100)/100)
	}

	// A trace class with no trace supplied is a configuration error.
	traceSpec, err := ParseSpec(strings.NewReader(`{"classes": [
	  {"name": "r", "arrival": {"process": "trace"}, "slo": {"class": "standard"}}]}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if _, err := BuildSchedule(traceSpec, catalog, nil, 5, 30, 0, 1); err == nil {
		t.Fatal("BuildSchedule accepted a trace class without a trace")
	}
}

package load

import (
	"math"
	"math/rand"
	"testing"
)

// vmr returns the variance-to-mean ratio of per-window arrival counts:
// the standard burstiness index (1 for a Poisson process, > 1 for
// bursty/self-similar streams).
func vmr(times []float64, horizon, window float64) float64 {
	n := int(horizon / window)
	counts := make([]float64, n)
	for _, t := range times {
		w := int(t / window)
		if w >= 0 && w < n {
			counts[w]++
		}
	}
	var sum, sumSq float64
	for _, c := range counts {
		sum += c
		sumSq += c * c
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	variance := sumSq/float64(n) - mean*mean
	return variance / mean
}

func TestPoissonInterArrivalStats(t *testing.T) {
	// Goodness of fit for the exponential inter-arrival law: the gap
	// sequence must match the exponential's signature mean 1/rate and
	// coefficient of variation 1.
	for _, tc := range []struct {
		rate    float64
		horizon float64
		seed    int64
	}{
		{rate: 5, horizon: 4000, seed: 1},
		{rate: 50, horizon: 400, seed: 2},
		{rate: 200, horizon: 100, seed: 3},
	} {
		p := Poisson{RateHz: tc.rate}
		if got := p.Rate(); got != tc.rate {
			t.Errorf("rate %v: Rate() = %v", tc.rate, got)
		}
		rng := rand.New(rand.NewSource(tc.seed))
		times := p.Times(rng, tc.horizon)
		if len(times) < 10000 {
			t.Fatalf("rate %v: only %d events, want >= 10000 for stable statistics", tc.rate, len(times))
		}
		var gaps []float64
		prev := 0.0
		for _, ts := range times {
			if ts <= prev {
				t.Fatalf("rate %v: times not strictly increasing at %v", tc.rate, ts)
			}
			if ts > tc.horizon {
				t.Fatalf("rate %v: time %v beyond horizon %v", tc.rate, ts, tc.horizon)
			}
			gaps = append(gaps, ts-prev)
			prev = ts
		}
		var sum, sumSq float64
		for _, g := range gaps {
			sum += g
			sumSq += g * g
		}
		n := float64(len(gaps))
		mean := sum / n
		sd := math.Sqrt(sumSq/n - mean*mean)
		wantMean := 1 / tc.rate
		if math.Abs(mean-wantMean) > 0.05*wantMean {
			t.Errorf("rate %v: mean gap %v, want %v within 5%%", tc.rate, mean, wantMean)
		}
		// Exponential gaps have CoV exactly 1; deterministic (CoV ~ 0) or
		// heavy-tailed (CoV >> 1) gaps would both flunk this.
		if cov := sd / mean; math.Abs(cov-1) > 0.05 {
			t.Errorf("rate %v: gap CoV %v, want 1 within 5%%", tc.rate, cov)
		}
		if r := vmr(times, tc.horizon, 1); math.Abs(r-1) > 0.4 {
			t.Errorf("rate %v: count VMR %v, want ~1", tc.rate, r)
		}
	}
}

func TestTraceReplayExactTimestamps(t *testing.T) {
	// At rate scale 1 (and any time scale — the schedule is in workload
	// seconds), replay must reproduce the recorded timestamps exactly,
	// bit for bit, dropping only nonpositive times and those beyond the
	// horizon.
	stamps := []float64{-1, 0, 0.5, 1.25, 2.75, 9.875, 12}
	tr := TraceReplay{Timestamps: stamps}
	got := tr.Times(nil, 10)
	want := []float64{0.5, 1.25, 2.75, 9.875}
	if len(got) != len(want) {
		t.Fatalf("Times = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Times[%d] = %v, want exactly %v", i, got[i], want[i])
		}
	}
	if r := tr.Rate(); math.Abs(r-7.0/12) > 1e-12 {
		t.Errorf("Rate = %v, want %v", r, 7.0/12)
	}
	if got := (TraceReplay{}).Rate(); got != 0 {
		t.Errorf("empty trace Rate = %v, want 0", got)
	}
}

func TestOnOffBurstierThanPoisson(t *testing.T) {
	// The self-similar check: at the same long-run rate, the superposed
	// on-off stream's windowed counts must be overdispersed (VMR well
	// above 1) while the Poisson stream's sit at 1.
	const horizon = 600.0
	onoff := OnOff{Sources: 20, PeakHz: 5, OnShape: 1.5, OffShape: 1.5, MeanOn: 1, MeanOff: 4}
	wantRate := 20.0 // 20 sources x 5 Hz x 1/(1+4) duty cycle
	if got := onoff.Rate(); math.Abs(got-wantRate) > 1e-9 {
		t.Fatalf("OnOff.Rate = %v, want %v", got, wantRate)
	}
	poisson := Poisson{RateHz: wantRate}

	for seed := int64(1); seed <= 3; seed++ {
		bursty := onoff.Times(rand.New(rand.NewSource(seed)), horizon)
		smooth := poisson.Times(rand.New(rand.NewSource(seed)), horizon)
		// Sanity: comparable volume, strictly increasing, in range.
		if len(bursty) < 1000 {
			t.Fatalf("seed %d: only %d on-off events", seed, len(bursty))
		}
		for i := 1; i < len(bursty); i++ {
			if bursty[i] <= bursty[i-1] {
				t.Fatalf("seed %d: on-off times not strictly increasing at %d", seed, i)
			}
		}
		burstyVMR := vmr(bursty, horizon, 1)
		smoothVMR := vmr(smooth, horizon, 1)
		if smoothVMR > 1.5 {
			t.Errorf("seed %d: Poisson VMR %v, want ~1", seed, smoothVMR)
		}
		if burstyVMR < 2.5 {
			t.Errorf("seed %d: on-off VMR %v, want >= 2.5 (bursty)", seed, burstyVMR)
		}
		if burstyVMR < 2*smoothVMR {
			t.Errorf("seed %d: on-off VMR %v not clearly above Poisson VMR %v", seed, burstyVMR, smoothVMR)
		}
	}
}

func TestProcessesDeterministicPerSeed(t *testing.T) {
	// Same seed -> identical stream; different seed -> different stream.
	procs := []Process{
		Poisson{RateHz: 10},
		OnOff{Sources: 4, PeakHz: 10, OnShape: 1.5, OffShape: 1.5, MeanOn: 1, MeanOff: 2},
	}
	for _, p := range procs {
		a := p.Times(rand.New(rand.NewSource(42)), 50)
		b := p.Times(rand.New(rand.NewSource(42)), 50)
		if len(a) != len(b) {
			t.Fatalf("%s: same seed lengths differ: %d vs %d", p.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverges at %d: %v vs %v", p.Name(), i, a[i], b[i])
			}
		}
		c := p.Times(rand.New(rand.NewSource(43)), 50)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical streams", p.Name())
		}
	}
}

package load

import (
	"math"
	"sort"
	"strconv"
	"time"

	"streamcache/internal/experiments"
)

// ClassSummary aggregates one class's outcomes (or, for Report.Total,
// all of them). Rates are in requests per *workload* second — the same
// unit the spec's arrival rates use — so achieved vs configured rates
// compare directly at any time scale.
type ClassSummary struct {
	Name  string
	SLOms float64 // startup-delay budget, ms (0 for the aggregate row)

	Issued    int // scheduled arrivals that reached the dispatcher
	Completed int
	Shed      int
	Failed    int

	// Violations counts arrivals that missed their SLO: every shed or
	// failed arrival (the user got nothing) plus completions whose
	// startup delay exceeded the class budget.
	Violations int
	// GoodCompleted and GoodBytes cover SLO-compliant completions only.
	GoodCompleted int
	GoodBytes     int64

	OfferedRPS  float64 // Issued per workload second
	AchievedRPS float64 // Completed per workload second
	GoodputRPS  float64 // GoodCompleted per workload second

	SLOViolationFrac float64 // Violations / Issued

	DelayP50 time.Duration // startup-delay percentiles over completions
	DelayP90 time.Duration
	DelayP99 time.Duration

	Bytes      int64 // bytes downloaded by completions
	HitBytes   int64 // of those, bytes served from the cached prefix
	PrefixHits int   // completions with any prefix hit
}

// Report is the result of one open-loop run (one ramp level).
type Report struct {
	Wall      time.Duration
	TimeScale float64
	RateScale float64
	Classes   []ClassSummary // in spec order
	Total     ClassSummary   // aggregate over all classes
}

// Summarize aggregates per-arrival outcomes into a Report. The SLO
// budget is judged against measured wall-clock startup delay; at high
// time scales operators should scale budgets to match (see
// OPERATIONS.md).
func Summarize(spec *Spec, outcomes []Outcome, wall time.Duration, timeScale, rateScale float64) *Report {
	r := &Report{Wall: wall, TimeScale: timeScale, RateScale: rateScale}
	r.Classes = make([]ClassSummary, len(spec.Classes))
	perClass := make([][]time.Duration, len(spec.Classes))
	for ci := range spec.Classes {
		r.Classes[ci].Name = spec.Classes[ci].Name
		r.Classes[ci].SLOms = float64(spec.Classes[ci].SLO.Threshold()) / float64(time.Millisecond)
	}
	var allDelays []time.Duration
	for _, o := range outcomes {
		ci := o.Item.ClassIdx
		if ci < 0 || ci >= len(r.Classes) {
			continue
		}
		c := &r.Classes[ci]
		budget := spec.Classes[ci].SLO.Threshold()
		c.Issued++
		switch o.State {
		case Shed:
			c.Shed++
			c.Violations++
		case Failed:
			c.Failed++
			c.Violations++
		case Completed:
			c.Completed++
			c.Bytes += o.Bytes
			c.HitBytes += o.HitBytes
			if o.HitBytes > 0 {
				c.PrefixHits++
			}
			perClass[ci] = append(perClass[ci], o.Startup)
			allDelays = append(allDelays, o.Startup)
			if o.Startup > budget {
				c.Violations++
			} else {
				c.GoodCompleted++
				c.GoodBytes += o.Bytes
			}
		}
	}

	// Workload seconds elapsed: the denominator that makes achieved rates
	// comparable to the spec's configured (workload-time) rates.
	wsec := wall.Seconds() * timeScale
	for ci := range r.Classes {
		finishClass(&r.Classes[ci], perClass[ci], wsec)
		accumulate(&r.Total, &r.Classes[ci])
	}
	r.Total.Name = "all"
	finishClass(&r.Total, allDelays, wsec)
	return r
}

func finishClass(c *ClassSummary, delays []time.Duration, workloadSeconds float64) {
	if workloadSeconds > 0 {
		c.OfferedRPS = float64(c.Issued) / workloadSeconds
		c.AchievedRPS = float64(c.Completed) / workloadSeconds
		c.GoodputRPS = float64(c.GoodCompleted) / workloadSeconds
	}
	if c.Issued > 0 {
		c.SLOViolationFrac = float64(c.Violations) / float64(c.Issued)
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	c.DelayP50 = percentileDur(delays, 0.50)
	c.DelayP90 = percentileDur(delays, 0.90)
	c.DelayP99 = percentileDur(delays, 0.99)
}

func accumulate(total, c *ClassSummary) {
	total.Issued += c.Issued
	total.Completed += c.Completed
	total.Shed += c.Shed
	total.Failed += c.Failed
	total.Violations += c.Violations
	total.GoodCompleted += c.GoodCompleted
	total.GoodBytes += c.GoodBytes
	total.Bytes += c.Bytes
	total.HitBytes += c.HitBytes
	total.PrefixHits += c.PrefixHits
}

// percentileDur returns the nearest-rank p-th percentile of sorted.
func percentileDur(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func msCell(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 2, 64)
}

func f4(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// SummaryRow renders the report as one experiments.LiveCapacityHeader
// row for ramp level `level`.
func (r *Report) SummaryRow(level int) []string {
	t := &r.Total
	prefixRatio, bwRatio, goodKBps := 0.0, 0.0, 0.0
	if t.Completed > 0 {
		prefixRatio = float64(t.PrefixHits) / float64(t.Completed)
	}
	if t.Bytes > 0 {
		bwRatio = float64(t.HitBytes) / float64(t.Bytes)
	}
	if wsec := r.Wall.Seconds() * r.TimeScale; wsec > 0 {
		goodKBps = float64(t.GoodBytes) / wsec / 1024
	}
	return []string{
		strconv.Itoa(level),
		f4(r.RateScale),
		f4(r.TimeScale),
		f4(t.OfferedRPS),
		f4(t.AchievedRPS),
		f4(t.GoodputRPS),
		strconv.FormatFloat(goodKBps, 'f', 1, 64),
		strconv.Itoa(t.Issued),
		strconv.Itoa(t.Completed),
		strconv.Itoa(t.Shed),
		strconv.Itoa(t.Failed),
		f4(t.SLOViolationFrac),
		msCell(t.DelayP50),
		msCell(t.DelayP90),
		msCell(t.DelayP99),
		f4(prefixRatio),
		f4(bwRatio),
		strconv.FormatFloat(r.Wall.Seconds(), 'f', 3, 64),
	}
}

// ClassRows renders one experiments.LiveClassHeader row per class.
func (r *Report) ClassRows(level int) [][]string {
	rows := make([][]string, 0, len(r.Classes))
	for i := range r.Classes {
		c := &r.Classes[i]
		rows = append(rows, []string{
			strconv.Itoa(level),
			c.Name,
			strconv.FormatFloat(c.SLOms, 'f', 0, 64),
			f4(c.OfferedRPS),
			f4(c.AchievedRPS),
			strconv.Itoa(c.Issued),
			strconv.Itoa(c.Completed),
			strconv.Itoa(c.Shed),
			strconv.Itoa(c.Failed),
			f4(c.SLOViolationFrac),
			msCell(c.DelayP50),
			msCell(c.DelayP90),
			msCell(c.DelayP99),
		})
	}
	return rows
}

// OutcomeHeader is the row schema of a per-arrival outcome table.
var OutcomeHeader = []string{
	"index", "time_s", "class", "object", "state",
	"bytes", "hit_bytes", "startup_ms", "ttfb_ms", "elapsed_ms", "error",
}

// WriteOutcomes streams one row per scheduled arrival, in schedule
// order, through a RowSink.
func WriteOutcomes(sink experiments.RowSink, name string, outcomes []Outcome) error {
	meta := experiments.TableMeta{
		Name:   name,
		Note:   "one row per scheduled arrival, in schedule order",
		Header: OutcomeHeader,
	}
	if err := sink.Begin(meta); err != nil {
		return err
	}
	for _, o := range outcomes {
		row := []string{
			strconv.Itoa(o.Item.Index),
			strconv.FormatFloat(o.Item.Time, 'g', -1, 64),
			o.Item.Class,
			strconv.Itoa(o.Item.ObjectID),
			o.State.String(),
			strconv.FormatInt(o.Bytes, 10),
			strconv.FormatInt(o.HitBytes, 10),
			msCell(o.Startup),
			msCell(o.TTFB),
			msCell(o.Elapsed),
			o.Err,
		}
		if err := sink.Row(row); err != nil {
			return err
		}
	}
	return sink.End()
}

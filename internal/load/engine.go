package load

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"streamcache/internal/dist"
	"streamcache/internal/experiments"
	"streamcache/internal/proxy"
	"streamcache/internal/sim"
	"streamcache/internal/workload"
)

// ErrBadRun reports an invalid engine configuration.
var ErrBadRun = errors.New("load: invalid run")

// Item is one scheduled arrival: the request the engine will fire at
// Time workload seconds, already bound to an object and a watched
// prefix so the schedule is a complete, replayable artifact.
type Item struct {
	Index    int     // position in the merged schedule
	Time     float64 // workload seconds from run start, strictly positive
	Class    string
	ClassIdx int     // index into Spec.Classes
	ObjectID int
	Fraction float64 // watched fraction of the stream, in (0, 1]
	// WatchBytes is the byte budget handed to proxy.FetchN: 0 means
	// download everything (Fraction == 1).
	WatchBytes int64
}

// BuildSchedule expands a spec into the merged arrival schedule for one
// ramp level. Each class draws from its own rng seeded with
// sim.SplitSeed(seed, classIdx), so the schedule is a pure function of
// (spec, seed, horizon, maxRequests, rateScale) — byte-identical across
// runs and independent of anything the engine later measures. Trace
// classes replay trace's request sequence (timestamps compressed by
// rateScale); synthetic classes sample objects from the catalog with
// the class's Zipf skew. maxRequests > 0 truncates the merged schedule.
func BuildSchedule(spec *Spec, catalog *proxy.Catalog, trace []workload.Request, seed int64, horizon float64, maxRequests int, rateScale float64) ([]Item, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if catalog == nil || catalog.Len() == 0 {
		return nil, fmt.Errorf("%w: empty catalog", ErrBadRun)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon = %v, want > 0", ErrBadRun, horizon)
	}
	if rateScale <= 0 {
		return nil, fmt.Errorf("%w: rate scale = %v, want > 0", ErrBadRun, rateScale)
	}
	if spec.UsesTrace() && len(trace) == 0 {
		return nil, fmt.Errorf("%w: spec has a trace class but no trace was supplied", ErrBadRun)
	}

	ids := catalog.IDs()
	var items []Item
	for ci := range spec.Classes {
		c := &spec.Classes[ci]
		rng := rand.New(rand.NewSource(sim.SplitSeed(seed, int64(ci))))
		if c.Arrival.Process == "trace" {
			items = append(items, replayItems(c, ci, catalog, trace, horizon, rateScale)...)
			continue
		}
		classItems, err := syntheticItems(c, ci, catalog, ids, rng, horizon, rateScale)
		if err != nil {
			return nil, err
		}
		items = append(items, classItems...)
	}

	// Merge the per-class streams into one arrival order. The stable sort
	// preserves each class's internal sequence, and (Time, ClassIdx)
	// breaks cross-class ties deterministically.
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].Time != items[j].Time {
			return items[i].Time < items[j].Time
		}
		return items[i].ClassIdx < items[j].ClassIdx
	})
	if maxRequests > 0 && len(items) > maxRequests {
		items = items[:maxRequests]
	}
	for i := range items {
		items[i].Index = i
	}
	return items, nil
}

// replayItems converts the trace's own request sequence into schedule
// items, compressing timestamps by rateScale to scale offered load.
func replayItems(c *Class, ci int, catalog *proxy.Catalog, trace []workload.Request, horizon, rateScale float64) []Item {
	var out []Item
	for _, req := range trace {
		if req.Time <= 0 {
			continue
		}
		t := req.Time / rateScale
		if t > horizon {
			break
		}
		meta, ok := catalog.Get(req.ObjectID)
		if !ok {
			continue
		}
		out = append(out, Item{
			Time:       t,
			Class:      c.Name,
			ClassIdx:   ci,
			ObjectID:   req.ObjectID,
			Fraction:   req.Fraction,
			WatchBytes: watchBytes(meta.Size, req.Fraction),
		})
	}
	return out
}

// syntheticItems generates one synthetic class's arrivals and binds each
// to a sampled object and watched fraction.
func syntheticItems(c *Class, ci int, catalog *proxy.Catalog, ids []int, rng *rand.Rand, horizon, rateScale float64) ([]Item, error) {
	zipf, err := dist.NewZipf(len(ids), c.ZipfAlpha)
	if err != nil {
		return nil, fmt.Errorf("load: class %q: %w", c.Name, err)
	}
	viewing, err := c.ViewingDist().Validate()
	if err != nil {
		return nil, fmt.Errorf("load: class %q: %w", c.Name, err)
	}
	times := c.process(nil, rateScale).Times(rng, horizon)
	out := make([]Item, 0, len(times))
	for _, t := range times {
		id := ids[zipf.Sample(rng)-1] // rank r -> r-th hottest catalog object
		meta, _ := catalog.Get(id)
		frac := viewing.Fraction(rng, meta.Duration)
		out = append(out, Item{
			Time:       t,
			Class:      c.Name,
			ClassIdx:   ci,
			ObjectID:   id,
			Fraction:   frac,
			WatchBytes: watchBytes(meta.Size, frac),
		})
	}
	return out, nil
}

// watchBytes converts a watched fraction into a FetchN byte budget:
// full sessions get 0 (download everything, digest verifiable), partial
// sessions at least one byte.
func watchBytes(size int64, fraction float64) int64 {
	if fraction >= 1 {
		return 0
	}
	n := int64(fraction * float64(size))
	if n < 1 {
		n = 1
	}
	return n
}

// ScheduleHeader is the row schema of a serialized schedule.
var ScheduleHeader = []string{"index", "time_s", "class", "object_id", "fraction", "watch_bytes"}

// WriteSchedule streams a schedule through a RowSink. The rendering is
// fixed-format ('g' floats, no locale), so for a deterministic schedule
// the emitted bytes are deterministic too — this is the artifact the
// determinism regression test diffs.
func WriteSchedule(sink experiments.RowSink, name string, items []Item) error {
	meta := experiments.TableMeta{
		Name:   name,
		Note:   "open-loop arrival schedule; times in workload seconds",
		Header: ScheduleHeader,
	}
	if err := sink.Begin(meta); err != nil {
		return err
	}
	for _, it := range items {
		row := []string{
			strconv.Itoa(it.Index),
			strconv.FormatFloat(it.Time, 'g', -1, 64),
			it.Class,
			strconv.Itoa(it.ObjectID),
			strconv.FormatFloat(it.Fraction, 'g', -1, 64),
			strconv.FormatInt(it.WatchBytes, 10),
		}
		if err := sink.Row(row); err != nil {
			return err
		}
	}
	return sink.End()
}

// State classifies the fate of one scheduled arrival.
type State uint8

// The possible fates. Every scheduled arrival ends in exactly one:
// issued == completed + shed + failed.
const (
	// Completed: the download finished (for the watched prefix).
	Completed State = iota
	// Shed: the arrival fired while the in-flight cap was saturated and
	// was dropped without issuing a request. Shedding — rather than
	// queueing — is what keeps the generator open-loop: a queued arrival
	// would wait for capacity and silently turn the experiment back into
	// a closed loop.
	Shed
	// Failed: the request was issued but errored (connection refused,
	// non-200, read error, digest mismatch).
	Failed
)

// String returns the state's report label.
func (s State) String() string {
	switch s {
	case Completed:
		return "completed"
	case Shed:
		return "shed"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Outcome is the measured fate of one scheduled arrival.
type Outcome struct {
	Item     Item
	State    State
	Startup  time.Duration // startup delay at the object's playback rate
	TTFB     time.Duration
	Elapsed  time.Duration
	Bytes    int64
	HitBytes int64
	Err      string // non-empty iff State == Failed
}

// Options configures one open-loop run.
type Options struct {
	// ProxyURL is the base URL of the proxy under test (required).
	ProxyURL string
	// Catalog is the object directory (required).
	Catalog *proxy.Catalog
	// Spec is the validated workload spec (required).
	Spec *Spec
	// Trace supplies timestamps and object IDs for trace-replay classes.
	Trace []workload.Request
	// TimeScale compresses workload time: a scheduled arrival at
	// workload second t fires at wall second t/TimeScale, so TimeScale 60
	// replays an hour of workload per wall minute (default 1).
	TimeScale float64
	// Seed drives schedule generation (see BuildSchedule).
	Seed int64
	// MaxInflight bounds concurrent downloads; arrivals beyond it are
	// shed (default 256).
	MaxInflight int
	// Horizon is the workload-seconds span to generate (required > 0).
	Horizon float64
	// MaxRequests truncates the schedule (0 = no cap).
	MaxRequests int
	// RateScale multiplies every class's offered rate — the ramp-sweep
	// level (default 1).
	RateScale float64
	// Verify checks full-download digests against the catalog content.
	Verify bool
}

func (o Options) normalize() (Options, error) {
	if o.ProxyURL == "" {
		return o, fmt.Errorf("%w: no proxy URL", ErrBadRun)
	}
	if o.Spec == nil {
		return o, fmt.Errorf("%w: no spec", ErrBadRun)
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	if o.TimeScale < 0 {
		return o, fmt.Errorf("%w: time scale = %v, want > 0", ErrBadRun, o.TimeScale)
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 256
	}
	if o.MaxInflight < 0 {
		return o, fmt.Errorf("%w: max inflight = %d, want > 0", ErrBadRun, o.MaxInflight)
	}
	if o.RateScale == 0 {
		o.RateScale = 1
	}
	return o, nil
}

// Run executes one open-loop run: it builds the schedule, fires each
// arrival at its compressed wall time regardless of how the proxy is
// keeping up, sheds arrivals that exceed the in-flight cap, and returns
// the per-arrival outcomes plus a summary report. The schedule is
// deterministic; the measured outcomes of course are not.
func Run(opts Options) ([]Outcome, *Report, error) {
	opts, err := opts.normalize()
	if err != nil {
		return nil, nil, err
	}
	items, err := BuildSchedule(opts.Spec, opts.Catalog, opts.Trace, opts.Seed, opts.Horizon, opts.MaxRequests, opts.RateScale)
	if err != nil {
		return nil, nil, err
	}

	outcomes := make([]Outcome, len(items))
	sem := make(chan struct{}, opts.MaxInflight)
	var wg sync.WaitGroup
	start := time.Now()
	for i, it := range items {
		due := time.Duration(it.Time / opts.TimeScale * float64(time.Second))
		if sleep := due - time.Since(start); sleep > 0 {
			time.Sleep(sleep)
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(i int, it Item) {
				defer wg.Done()
				defer func() { <-sem }()
				outcomes[i] = fetchOne(opts, it)
			}(i, it)
		default:
			// Saturated: drop the arrival on the floor and account for it.
			outcomes[i] = Outcome{Item: it, State: Shed}
		}
	}
	wg.Wait()
	wall := time.Since(start)

	report := Summarize(opts.Spec, outcomes, wall, opts.TimeScale, opts.RateScale)
	return outcomes, report, nil
}

// fetchOne issues one request and classifies the result.
func fetchOne(opts Options, it Item) Outcome {
	out := Outcome{Item: it}
	res, err := proxy.FetchN(fmt.Sprintf("%s/objects/%d", opts.ProxyURL, it.ObjectID), it.WatchBytes)
	if err != nil {
		out.State = Failed
		out.Err = err.Error()
		return out
	}
	meta, ok := opts.Catalog.Get(it.ObjectID)
	if opts.Verify && ok && it.WatchBytes == 0 {
		if want := proxy.ContentSHA256(it.ObjectID, meta.Size); res.SHA256 != want {
			out.State = Failed
			out.Err = "digest mismatch"
			return out
		}
	}
	out.State = Completed
	out.TTFB = res.TTFB
	out.Elapsed = res.Elapsed
	out.Bytes = res.Bytes
	out.HitBytes = res.HitBytes()
	if ok {
		// Startup delay is judged at the compressed playback rate: when
		// TimeScale compresses workload time, the client must also drain
		// the stream proportionally faster for the delay to mean the same
		// thing it does at full scale.
		out.Startup = res.StartupDelay(meta.Rate * opts.TimeScale)
	}
	return out
}

// Package load is the open-loop, time-compressed load engine for the
// live proxy tier. Where cmd/loadgen's original closed-loop harness
// caps offered load at the client count (each client issues its next
// request only after the previous download finishes, so a saturated
// proxy silently throttles the workload), this package generates
// arrivals from a clock: requests fire at scheduled times regardless of
// how the proxy is doing, which is the only way to observe queueing
// collapse and locate the knee where startup-delay SLOs break.
//
// The pieces:
//
//   - Arrival processes (Process): Poisson, exact trace-timestamp
//     replay, and a self-similar/bursty process built from superposed
//     on-off sources with heavy-tailed (Pareto) period lengths.
//   - Multi-class workload specs (Spec, ParseSpec): each class binds an
//     arrival process, a viewing-duration distribution
//     (workload.Viewing), an object-popularity skew, and an SLO class
//     (startup-delay budget), loaded from a JSON file.
//   - A deterministic schedule builder (BuildSchedule): arrival streams
//     are seed-split per class with sim.SplitSeed, so identical
//     (seed, spec) inputs produce byte-identical schedules — the live
//     analog of the simulator's bit-identical-at-any-parallelism
//     contract.
//   - The open-loop engine (Run): replays a schedule against a live
//     proxy under a -time-scale compression factor (replay a simulated
//     day in minutes), bounding concurrency with an in-flight cap and
//     shedding arrivals that exceed it instead of queueing them (which
//     would silently converge back to closed-loop behavior). Every
//     scheduled arrival is accounted for: issued == completed + shed +
//     failed.
//
// Results flow through the experiments.RowSink seam using the
// live-capacity row schema (experiments.LiveCapacityHeader), so ramp
// sweeps plot with the same tooling as the simulator's tables and
// experiments.FindKnee can locate the SLO knee.
package load

package load

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseSpecRoundTrip(t *testing.T) {
	const text = `{
	  "classes": [
	    {
	      "name": "vod",
	      "arrival": {"process": "poisson", "rate": 12.5},
	      "viewing": {"dist": "lognormal", "mu": 4.0, "sigma": 0.6},
	      "slo": {"class": "standard"}
	    },
	    {
	      "name": "flash-crowd",
	      "arrival": {"process": "onoff", "sources": 30, "peak_rate": 4},
	      "slo": {"startup_ms": 750},
	      "zipf_alpha": 1.1
	    },
	    {
	      "name": "replay",
	      "arrival": {"process": "trace"},
	      "slo": {"class": "relaxed"}
	    }
	  ]
	}`
	spec, err := ParseSpec(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(spec.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(spec.Classes))
	}
	vod := spec.Classes[0]
	if vod.Arrival.Rate != 12.5 || vod.Viewing.Dist != "lognormal" || vod.Viewing.Mu != 4.0 {
		t.Errorf("vod class mangled: %+v", vod)
	}
	if vod.ZipfAlpha != 0.73 {
		t.Errorf("vod zipf_alpha = %v, want default 0.73", vod.ZipfAlpha)
	}
	if got := vod.SLO.Threshold(); got != time.Second {
		t.Errorf("standard SLO threshold = %v, want 1s", got)
	}
	fc := spec.Classes[1]
	if fc.Arrival.OnShape != 1.5 || fc.Arrival.OffShape != 1.5 || fc.Arrival.MeanOn != 1 || fc.Arrival.MeanOff != 4 {
		t.Errorf("onoff defaults not applied: %+v", fc.Arrival)
	}
	if got := fc.SLO.Threshold(); got != 750*time.Millisecond {
		t.Errorf("explicit SLO threshold = %v, want 750ms", got)
	}
	if fc.ZipfAlpha != 1.1 {
		t.Errorf("explicit zipf_alpha = %v, want 1.1", fc.ZipfAlpha)
	}
	if !spec.UsesTrace() {
		t.Error("UsesTrace = false, want true (replay class present)")
	}
}

func TestParseSpecErrors(t *testing.T) {
	// Malformed specs must come back as errors naming the offending
	// field, never as panics or silent defaults.
	cases := []struct {
		name string
		text string
		want string // substring the error must carry
	}{
		{
			name: "unknown top-level field",
			text: `{"classes": [], "clases": []}`,
			want: "clases",
		},
		{
			name: "no classes",
			text: `{"classes": []}`,
			want: "no classes",
		},
		{
			name: "missing class name",
			text: `{"classes": [{"arrival": {"process": "poisson", "rate": 1}, "slo": {"class": "standard"}}]}`,
			want: "name: missing",
		},
		{
			name: "duplicate class name",
			text: `{"classes": [
			  {"name": "a", "arrival": {"process": "poisson", "rate": 1}, "slo": {"class": "standard"}},
			  {"name": "a", "arrival": {"process": "poisson", "rate": 1}, "slo": {"class": "standard"}}
			]}`,
			want: `class "a": name: duplicate`,
		},
		{
			name: "unknown arrival process",
			text: `{"classes": [{"name": "x", "arrival": {"process": "bursty", "rate": 1}, "slo": {"class": "standard"}}]}`,
			want: `arrival.process = "bursty"`,
		},
		{
			name: "missing arrival process",
			text: `{"classes": [{"name": "x", "arrival": {"rate": 1}, "slo": {"class": "standard"}}]}`,
			want: "arrival.process: missing",
		},
		{
			name: "negative poisson rate",
			text: `{"classes": [{"name": "x", "arrival": {"process": "poisson", "rate": -5}, "slo": {"class": "standard"}}]}`,
			want: "arrival.rate = -5",
		},
		{
			name: "onoff without sources",
			text: `{"classes": [{"name": "x", "arrival": {"process": "onoff", "peak_rate": 2}, "slo": {"class": "standard"}}]}`,
			want: "arrival.sources = 0",
		},
		{
			name: "onoff infinite-mean on period",
			text: `{"classes": [{"name": "x", "arrival": {"process": "onoff", "sources": 5, "peak_rate": 2, "on_shape": 0.9}, "slo": {"class": "standard"}}]}`,
			want: "arrival.on_shape = 0.9",
		},
		{
			name: "missing SLO",
			text: `{"classes": [{"name": "x", "arrival": {"process": "poisson", "rate": 1}}]}`,
			want: "slo: missing",
		},
		{
			name: "unknown SLO class",
			text: `{"classes": [{"name": "x", "arrival": {"process": "poisson", "rate": 1}, "slo": {"class": "instant"}}]}`,
			want: `slo.class = "instant"`,
		},
		{
			name: "negative SLO budget",
			text: `{"classes": [{"name": "x", "arrival": {"process": "poisson", "rate": 1}, "slo": {"startup_ms": -10}}]}`,
			want: "slo.startup_ms = -10",
		},
		{
			name: "unknown viewing dist",
			text: `{"classes": [{"name": "x", "arrival": {"process": "poisson", "rate": 1}, "viewing": {"dist": "beta"}, "slo": {"class": "standard"}}]}`,
			want: `Kind="beta"`,
		},
		{
			name: "negative zipf alpha",
			text: `{"classes": [{"name": "x", "arrival": {"process": "poisson", "rate": 1}, "slo": {"class": "standard"}, "zipf_alpha": -1}]}`,
			want: "zipf_alpha = -1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseSpec(strings.NewReader(tc.text))
			if err == nil {
				t.Fatalf("ParseSpec accepted malformed spec: %+v", spec)
			}
			if !errors.Is(err, ErrBadSpec) {
				t.Errorf("error %v does not wrap ErrBadSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offending field (want substring %q)", err, tc.want)
			}
		})
	}
}

func TestSLOThresholdPresets(t *testing.T) {
	for name, wantMS := range map[string]time.Duration{
		"interactive": 250 * time.Millisecond,
		"standard":    time.Second,
		"relaxed":     4 * time.Second,
	} {
		if got := (SLOSpec{Class: name}).Threshold(); got != wantMS {
			t.Errorf("preset %q threshold = %v, want %v", name, got, wantMS)
		}
	}
	// An explicit budget wins over the preset.
	if got := (SLOSpec{Class: "standard", StartupMS: 300}).Threshold(); got != 300*time.Millisecond {
		t.Errorf("explicit budget = %v, want 300ms", got)
	}
}

func TestSingleClass(t *testing.T) {
	spec := SingleClass(25, 500)
	if err := spec.Validate(); err != nil {
		t.Fatalf("SingleClass spec invalid: %v", err)
	}
	c := spec.Classes[0]
	if c.Arrival.Process != "poisson" || c.Arrival.Rate != 25 {
		t.Errorf("arrival = %+v, want poisson @ 25", c.Arrival)
	}
	if got := c.SLO.Threshold(); got != 500*time.Millisecond {
		t.Errorf("threshold = %v, want 500ms", got)
	}
}

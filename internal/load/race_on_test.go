//go:build race

package load

// raceEnabled widens timing tolerances in tests that compare achieved
// arrival rates against the configured schedule: the race detector's
// instrumentation slows the dispatch loop enough to stretch wall time
// on small machines.
const raceEnabled = true

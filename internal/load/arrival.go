package load

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"streamcache/internal/dist"
)

// Process generates the arrival times of one workload class. Times
// returns strictly increasing timestamps in workload seconds on
// (0, horizon]; the sequence must be a pure function of the rng state,
// which is what makes schedules seed-deterministic. Rate reports the
// long-run arrival rate in events per workload second.
type Process interface {
	Times(rng *rand.Rand, horizon float64) []float64
	Rate() float64
	Name() string
}

// Poisson is a homogeneous Poisson arrival process: independent
// exponential inter-arrival gaps at RateHz events per second.
type Poisson struct {
	RateHz float64
}

// Name implements Process.
func (p Poisson) Name() string { return "poisson" }

// Rate implements Process.
func (p Poisson) Rate() float64 { return p.RateHz }

// Times implements Process.
func (p Poisson) Times(rng *rand.Rand, horizon float64) []float64 {
	proc, err := dist.NewPoissonProcess(p.RateHz)
	if err != nil {
		// Specs are validated before a Process is built; an invalid rate
		// cannot reach here through the public constructors.
		panic(fmt.Sprintf("load: poisson: %v", err))
	}
	var out []float64
	if horizon > 0 {
		out = make([]float64, 0, int(p.RateHz*horizon)+1)
	}
	for {
		t := proc.Next(rng)
		if t > horizon {
			return out
		}
		out = append(out, t)
	}
}

// TraceReplay replays a recorded timestamp sequence exactly: at time
// scale 1 the generated arrivals are the trace's own timestamps. The
// rng is unused; replay is trivially deterministic.
type TraceReplay struct {
	// Timestamps are the recorded arrival times in seconds, sorted
	// ascending (the workload generator's Request.Time sequence).
	Timestamps []float64
}

// Name implements Process.
func (t TraceReplay) Name() string { return "trace" }

// Rate implements Process.
func (t TraceReplay) Rate() float64 {
	if len(t.Timestamps) == 0 {
		return 0
	}
	span := t.Timestamps[len(t.Timestamps)-1]
	if span <= 0 {
		return 0
	}
	return float64(len(t.Timestamps)) / span
}

// Times implements Process.
func (t TraceReplay) Times(_ *rand.Rand, horizon float64) []float64 {
	out := make([]float64, 0, len(t.Timestamps))
	for _, ts := range t.Timestamps {
		if ts <= 0 {
			continue
		}
		if ts > horizon {
			break
		}
		out = append(out, ts)
	}
	return out
}

// OnOff is a self-similar (bursty) arrival process: the superposition
// of Sources independent on-off sources, each alternating heavy-tailed
// Pareto ON periods (during which it emits Poisson arrivals at PeakHz)
// with Pareto OFF silences. With tail indices in (1, 2) the period
// lengths have infinite variance, and the superposed stream exhibits
// burstiness across time scales (Willinger et al.) — its
// variance-to-mean ratio of interval counts sits well above the
// Poisson process's 1.
type OnOff struct {
	Sources int     // number of superposed sources, > 0
	PeakHz  float64 // per-source arrival rate while ON, > 0
	OnShape float64 // Pareto tail index of ON durations (default 1.5)
	OffShape float64 // Pareto tail index of OFF durations (default 1.5)
	MeanOn  float64 // mean ON duration, seconds (default 1)
	MeanOff float64 // mean OFF duration, seconds (default 4)
}

// Name implements Process.
func (o OnOff) Name() string { return "onoff" }

// Rate implements Process.
func (o OnOff) Rate() float64 {
	cycle := o.MeanOn + o.MeanOff
	if cycle <= 0 {
		return 0
	}
	return float64(o.Sources) * o.PeakHz * o.MeanOn / cycle
}

// Times implements Process. Each source's timeline is generated
// sequentially from the shared rng (source 0 fully, then source 1, ...)
// and the union is sorted, so the merged stream is a pure function of
// the rng state.
func (o OnOff) Times(rng *rand.Rand, horizon float64) []float64 {
	onDist, err := dist.ParetoWithMean(o.OnShape, o.MeanOn)
	if err != nil {
		panic(fmt.Sprintf("load: onoff on-period: %v", err))
	}
	offDist, err := dist.ParetoWithMean(o.OffShape, o.MeanOff)
	if err != nil {
		panic(fmt.Sprintf("load: onoff off-period: %v", err))
	}
	pOn := o.MeanOn / (o.MeanOn + o.MeanOff)
	var out []float64
	for s := 0; s < o.Sources; s++ {
		// Random initial phase: starting every source in OFF at t=0 would
		// synchronize the first bursts.
		on := rng.Float64() < pOn
		now := 0.0
		for now < horizon {
			if on {
				end := now + onDist.Sample(rng)
				if end > horizon {
					end = horizon
				}
				// Poisson arrivals within [now, end).
				t := now
				for {
					t += rng.ExpFloat64() / o.PeakHz
					if t >= end {
						break
					}
					out = append(out, t)
				}
				now = end
			} else {
				now += offDist.Sample(rng)
			}
			on = !on
		}
	}
	slices.Sort(out)
	// Arrival times must be strictly increasing for the schedule merge's
	// tie-breaking to be well defined; nudge exact collisions apart by
	// the smallest representable step.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			out[i] = math.Nextafter(out[i-1], math.Inf(1))
		}
	}
	return out
}

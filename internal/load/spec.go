package load

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"streamcache/internal/workload"
)

// ErrBadSpec reports an invalid workload specification.
var ErrBadSpec = errors.New("load: invalid spec")

// Spec is a multi-class open-loop workload: each class contributes an
// independent arrival stream with its own viewing behavior, popularity
// skew and SLO budget. Loaded from JSON with ParseSpec.
type Spec struct {
	Classes []Class `json:"classes"`
}

// Class is one workload class.
type Class struct {
	// Name labels the class in reports (required, unique).
	Name string `json:"name"`
	// Arrival configures the class's arrival process (required).
	Arrival ArrivalSpec `json:"arrival"`
	// Viewing configures how much of each stream a session watches
	// (default: watch to the end).
	Viewing ViewingSpec `json:"viewing"`
	// SLO is the class's startup-delay budget (required: a named class
	// or an explicit startup_ms).
	SLO SLOSpec `json:"slo"`
	// ZipfAlpha skews the class's object popularity (default 0.73,
	// Table 1). Ignored by trace-replay classes, which reuse the
	// trace's own object sequence.
	ZipfAlpha float64 `json:"zipf_alpha"`
}

// ArrivalSpec selects and parameterizes an arrival process.
type ArrivalSpec struct {
	// Process is "poisson", "trace" or "onoff".
	Process string `json:"process"`
	// Rate is the Poisson arrival rate in requests per workload second.
	Rate float64 `json:"rate"`
	// Sources, PeakRate, OnShape, OffShape, MeanOn, MeanOff
	// parameterize the self-similar on-off superposition (see OnOff).
	Sources  int     `json:"sources"`
	PeakRate float64 `json:"peak_rate"`
	OnShape  float64 `json:"on_shape"`
	OffShape float64 `json:"off_shape"`
	MeanOn   float64 `json:"mean_on"`
	MeanOff  float64 `json:"mean_off"`
}

// ViewingSpec selects a viewing-duration distribution; it mirrors
// workload.Viewing.
type ViewingSpec struct {
	// Dist is "full" (default), "uniform" or "lognormal".
	Dist string `json:"dist"`
	// MinFraction bounds the uniform watched fraction (default 0.05).
	MinFraction float64 `json:"min_fraction"`
	// Mu, Sigma parameterize the lognormal watched duration in seconds.
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma"`
}

// SLOSpec is a startup-delay budget: a named class, an explicit
// threshold, or both (the explicit threshold wins).
type SLOSpec struct {
	// Class names a preset budget: "interactive" (250 ms), "standard"
	// (1000 ms) or "relaxed" (4000 ms).
	Class string `json:"class"`
	// StartupMS is an explicit startup-delay budget in milliseconds.
	StartupMS float64 `json:"startup_ms"`
}

// The named SLO classes and their startup-delay budgets.
var sloClasses = map[string]float64{
	"interactive": 250,
	"standard":    1000,
	"relaxed":     4000,
}

// Threshold returns the class's startup-delay budget.
func (s SLOSpec) Threshold() time.Duration {
	ms := s.StartupMS
	if ms == 0 {
		ms = sloClasses[s.Class]
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// ParseSpec reads and validates a JSON workload spec. Unknown fields
// are rejected, so typos fail loudly instead of silently defaulting.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseSpecFile reads and validates a JSON workload spec from a file.
func ParseSpecFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load: spec: %w", err)
	}
	defer f.Close()
	return ParseSpec(f)
}

// Validate checks the spec and fills defaults in place. Errors name the
// offending class and field.
func (s *Spec) Validate() error {
	if len(s.Classes) == 0 {
		return fmt.Errorf("%w: no classes", ErrBadSpec)
	}
	seen := make(map[string]bool, len(s.Classes))
	for i := range s.Classes {
		c := &s.Classes[i]
		label := fmt.Sprintf("class[%d]", i)
		if c.Name != "" {
			label = fmt.Sprintf("class %q", c.Name)
		}
		if c.Name == "" {
			return fmt.Errorf("%w: %s: name: missing", ErrBadSpec, label)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: %s: name: duplicate", ErrBadSpec, label)
		}
		seen[c.Name] = true
		if err := c.Arrival.validate(); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrBadSpec, label, err)
		}
		if _, err := c.ViewingDist().Validate(); err != nil {
			return fmt.Errorf("%w: %s: viewing: %v", ErrBadSpec, label, err)
		}
		if err := c.SLO.validate(); err != nil {
			return fmt.Errorf("%w: %s: %v", ErrBadSpec, label, err)
		}
		if c.ZipfAlpha == 0 {
			c.ZipfAlpha = 0.73
		}
		if c.ZipfAlpha < 0 || math.IsNaN(c.ZipfAlpha) || math.IsInf(c.ZipfAlpha, 0) {
			return fmt.Errorf("%w: %s: zipf_alpha = %v, want finite >= 0", ErrBadSpec, label, c.ZipfAlpha)
		}
	}
	return nil
}

func (a *ArrivalSpec) validate() error {
	switch a.Process {
	case "poisson":
		if a.Rate <= 0 || math.IsNaN(a.Rate) || math.IsInf(a.Rate, 0) {
			return fmt.Errorf("arrival.rate = %v, want finite > 0", a.Rate)
		}
	case "trace":
		// Times come from the replayed trace; no parameters to check.
	case "onoff":
		if a.Sources <= 0 {
			return fmt.Errorf("arrival.sources = %d, want > 0", a.Sources)
		}
		if a.PeakRate <= 0 || math.IsNaN(a.PeakRate) || math.IsInf(a.PeakRate, 0) {
			return fmt.Errorf("arrival.peak_rate = %v, want finite > 0", a.PeakRate)
		}
		if a.OnShape == 0 {
			a.OnShape = 1.5
		}
		if a.OffShape == 0 {
			a.OffShape = 1.5
		}
		if a.MeanOn == 0 {
			a.MeanOn = 1
		}
		if a.MeanOff == 0 {
			a.MeanOff = 4
		}
		if a.OnShape <= 1 {
			return fmt.Errorf("arrival.on_shape = %v, want > 1 (finite mean)", a.OnShape)
		}
		if a.OffShape <= 1 {
			return fmt.Errorf("arrival.off_shape = %v, want > 1 (finite mean)", a.OffShape)
		}
		if a.MeanOn <= 0 || math.IsNaN(a.MeanOn) {
			return fmt.Errorf("arrival.mean_on = %v, want > 0", a.MeanOn)
		}
		if a.MeanOff <= 0 || math.IsNaN(a.MeanOff) {
			return fmt.Errorf("arrival.mean_off = %v, want > 0", a.MeanOff)
		}
	case "":
		return fmt.Errorf("arrival.process: missing (want poisson, trace or onoff)")
	default:
		return fmt.Errorf("arrival.process = %q, want poisson, trace or onoff", a.Process)
	}
	return nil
}

func (s *SLOSpec) validate() error {
	if s.Class == "" && s.StartupMS == 0 {
		return fmt.Errorf("slo: missing (set slo.class or slo.startup_ms)")
	}
	if s.Class != "" {
		if _, ok := sloClasses[s.Class]; !ok {
			return fmt.Errorf("slo.class = %q, want interactive, standard or relaxed", s.Class)
		}
	}
	if s.StartupMS < 0 || math.IsNaN(s.StartupMS) || math.IsInf(s.StartupMS, 0) {
		return fmt.Errorf("slo.startup_ms = %v, want finite >= 0", s.StartupMS)
	}
	return nil
}

// ViewingDist converts the spec's viewing block into the workload
// package's distribution type.
func (c *Class) ViewingDist() workload.Viewing {
	return workload.Viewing{
		Kind:        workload.ViewingKind(defaultStr(c.Viewing.Dist, string(workload.ViewFull))),
		MinFraction: c.Viewing.MinFraction,
		Mu:          c.Viewing.Mu,
		Sigma:       c.Viewing.Sigma,
	}
}

func defaultStr(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// process builds the class's arrival Process with every rate scaled by
// rateScale (the ramp-sweep offered-load multiplier). Trace classes
// scale by compressing the recorded timestamps instead.
func (c *Class) process(traceTimes []float64, rateScale float64) Process {
	switch c.Arrival.Process {
	case "trace":
		times := traceTimes
		if rateScale != 1 {
			times = make([]float64, len(traceTimes))
			for i, t := range traceTimes {
				times[i] = t / rateScale
			}
		}
		return TraceReplay{Timestamps: times}
	case "onoff":
		return OnOff{
			Sources:  c.Arrival.Sources,
			PeakHz:   c.Arrival.PeakRate * rateScale,
			OnShape:  c.Arrival.OnShape,
			OffShape: c.Arrival.OffShape,
			MeanOn:   c.Arrival.MeanOn,
			MeanOff:  c.Arrival.MeanOff,
		}
	default:
		return Poisson{RateHz: c.Arrival.Rate * rateScale}
	}
}

// UsesTrace reports whether any class replays trace timestamps (the
// schedule builder then requires a trace).
func (s *Spec) UsesTrace() bool {
	for i := range s.Classes {
		if s.Classes[i].Arrival.Process == "trace" {
			return true
		}
	}
	return false
}

// SingleClass returns the spec a flag-driven loadgen invocation implies:
// one "default" class with a Poisson arrival at rateHz, full viewing,
// Table 1 popularity skew, and an explicit startup-delay budget.
func SingleClass(rateHz, sloMS float64) *Spec {
	return &Spec{Classes: []Class{{
		Name:    "default",
		Arrival: ArrivalSpec{Process: "poisson", Rate: rateHz},
		SLO:     SLOSpec{StartupMS: sloMS},
	}}}
}

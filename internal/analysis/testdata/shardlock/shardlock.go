// Test fixture for the shardlock analyzer, type-checked as
// streamcache/internal/proxy (the only package it guards).
package proxy

import (
	"net/http"
	"sync"
)

type shard struct {
	mu       sync.Mutex
	inflight map[int]int
}

func fetchIndirect(url string) error {
	_, err := http.Get(url)
	return err
}

func blockUnderLock(sh *shard, url string) {
	sh.mu.Lock()
	http.Get(url) // want "blocking call .calls into net/http. while holding sh.mu"
	sh.mu.Unlock()
}

func transitiveBlockUnderLock(sh *shard, url string) {
	sh.mu.Lock()
	fetchIndirect(url) // want "call to fetchIndirect, which calls into net/http, while holding sh.mu"
	sh.mu.Unlock()
}

func chanRecvUnderLock(sh *shard, ch chan int) {
	sh.mu.Lock()
	<-ch // want "channel receive while holding sh.mu"
	sh.mu.Unlock()
}

func fetchAfterUnlockOK(sh *shard, url string) int {
	sh.mu.Lock()
	v := sh.inflight[1]
	sh.mu.Unlock()
	http.Get(url) // negative: lock released before blocking
	return v
}

func missingUnlock(sh *shard) {
	sh.mu.Lock() // want "no matching Unlock"
	sh.inflight[1] = 2
}

func deferUnlockOK(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.inflight[1] = 5 // negative: guarded write under the deferred lock
}

func unguardedWrite(sh *shard) {
	sh.inflight[3] = 4 // want "write to sh.inflight without holding sh.mu"
}

func newShard() *shard {
	sh := &shard{}
	sh.inflight = map[int]int{} // negative: constructor initialization
	return sh
}

func goroutineOwnTimelineOK(sh *shard, ch chan int) {
	sh.mu.Lock()
	go func() {
		ch <- 1 // negative: the spawned goroutine has its own timeline
	}()
	sh.mu.Unlock()
}

type relay struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func newRelay() *relay {
	r := &relay{}
	r.cond = sync.NewCond(&r.mu) // negative: constructor initialization
	return r
}

func (r *relay) waitTurnOK() {
	r.mu.Lock()
	for r.n == 0 {
		r.cond.Wait() // negative: Cond.Wait releases the lock while parked
	}
	r.n--
	r.mu.Unlock()
}

func branchReleaseOK(sh *shard, url string, fast bool) {
	sh.mu.Lock()
	if fast {
		sh.mu.Unlock()
		http.Get(url) // negative: this branch released the lock
		return
	}
	sh.inflight[2] = 1
	sh.mu.Unlock()
}

func suppressedBlock(sh *shard, url string) {
	sh.mu.Lock()
	//mediavet:ignore shardlock fixture exercising the suppression path
	http.Get(url)
	sh.mu.Unlock()
}

// Test fixture for the determinism analyzer, type-checked as
// streamcache/internal/sim so the deterministic-package scoping
// applies. Positive cases carry // want comments; the rest are
// negatives that must stay silent.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func sleeper() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func durationMathOK(d time.Duration) float64 {
	return d.Seconds() // negative: duration arithmetic never touches the clock
}

func globalRand() float64 {
	return rand.Float64() // want "process-global source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global source"
}

func seededRandOK(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // negative: seeded constructor chain
	return rng.Float64()
}

func goroutineLaunch(ch chan int) {
	go func() { ch <- 1 }() // want "goroutine launched in deterministic code"
}

func mapFloatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "order-sensitive accumulation into sum"
	}
	return sum
}

func mapIntAccumOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // negative: integer addition is commutative and exact
	}
	return n
}

func mapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map"
	}
	return keys
}

func mapAppendSortedOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // negative: collect-then-sort idiom
	}
	sort.Strings(keys)
	return keys
}

func sliceRangeOK(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v // negative: slice iteration order is fixed
	}
	return sum
}

type sink struct{}

func (sink) Row(cells []string) {}

func mapRowEmit(s sink, m map[string]string) {
	for k, v := range m {
		s.Row([]string{k, v}) // want "Row called inside range over map"
	}
}

func suppressedWallClock() int64 {
	//mediavet:ignore determinism fixture exercising the suppression path
	return time.Now().UnixNano()
}

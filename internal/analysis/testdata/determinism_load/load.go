// Test fixture for the determinism analyzer's internal/load scoping:
// only BuildSchedule's call graph is deterministic; Run's wall-clock
// pacing is out of scope by construction.
package load

import "time"

type spec struct{ n int }

// process is an interface dispatched from inside the call graph; the
// analyzer's conservative constructed-type rule must still reach the
// concrete method.
type process interface{ next() int64 }

type poisson struct{ rate float64 }

func (p poisson) next() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func BuildSchedule(s spec) int64 {
	p := buildProcess(s)
	return p.next() + helper(s)
}

func buildProcess(s spec) process {
	return poisson{rate: float64(s.n)}
}

func helper(s spec) int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func Run(s spec) int64 {
	// Open-loop pacing is wall-clock by design and outside the
	// BuildSchedule call graph: no findings here.
	start := time.Now()
	time.Sleep(time.Millisecond)
	return int64(time.Since(start))
}

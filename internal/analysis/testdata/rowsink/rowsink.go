// Test fixture for the rowsink analyzer, type-checked as
// streamcache/internal/experiments.
package experiments

import "fmt"

type TableMeta struct {
	Name   string
	Header []string
}

type staticTable struct {
	meta TableMeta
	rows [][]string
}

func matchedColumnsOK() *staticTable {
	t := &staticTable{meta: TableMeta{
		Header: []string{"technique", "origin_GB", "savings"},
	}}
	t.rows = append(t.rows, []string{"unicast", "1.0", "0.0"}) // negative: 3 columns vs 3
	return t
}

func shortRow() *staticTable {
	t := &staticTable{meta: TableMeta{
		Header: []string{"technique", "origin_GB", "savings"},
	}}
	t.rows = append(t.rows, []string{"unicast", "1.0"}) // want "2 columns but the table header declares 3"
	return t
}

func tableLiteralMismatch() *staticTable {
	return &staticTable{
		meta: TableMeta{Header: []string{"a", "b"}},
		rows: [][]string{
			{"1", "2"},      // negative
			{"1", "2", "3"}, // want "3 columns but the table header declares 2"
		},
	}
}

type rowSpec struct {
	Header []string
	Render func(i int) []string
}

func rendererMismatch() rowSpec {
	return rowSpec{
		Header: []string{"x", "y"},
		Render: func(i int) []string {
			return []string{"only"} // want "1 columns but the table header declares 2"
		},
	}
}

// Package-level headers pair with rows through the identifier, and
// their cells are schema constants.
var scheduleHeader = []string{"t_s", "object", "bytes"}

func headerByIdentMismatch(sink interface{ Row([]string) }) {
	_ = TableMeta{Header: scheduleHeader}
	sink.Row([]string{"0.1", "7"}) // want "2 columns but the table header declares 3"
}

var headerSuffix = computedSuffix()

func computedSuffix() string { return "_v2" }

var liveHeader = []string{"goodput", "slo" + headerSuffix} // want "header cell is not a compile-time constant"

type journalRecord struct {
	Type string
	Seq  int
}

func recordTags(dynamic string) []journalRecord {
	return []journalRecord{
		{Type: "header", Seq: 1}, // negative: constant tag
		{Type: dynamic, Seq: 2},  // want "journalRecord.Type is not a compile-time constant"
	}
}

type Scale struct{ Objects int }

func (s Scale) Fingerprint() string {
	format := "v1|objects=%d"
	if s.Objects > 10 {
		format = "v2|objects=%d"
	}
	return fmt.Sprintf(format, s.Objects) // want "Fingerprint format string is not a constant"
}

type Stable struct{ Objects int }

func (s Stable) Fingerprint() string {
	return fmt.Sprintf("v1|objects=%d", s.Objects) // negative: constant format
}

// Test fixture for the hotpath analyzer, type-checked as
// streamcache/internal/core so module-internal call edges resolve.
// Only //mediavet:hotpath-annotated functions are checked.
package core

import (
	"fmt"
	"strconv"
)

//mediavet:hotpath
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt.Sprintf formats through reflection" "conversion of int to any boxes"
}

//mediavet:hotpath
func hotStrconvOK(x int) string {
	return strconv.Itoa(x) // negative: strconv is the sanctioned path
}

//mediavet:hotpath
func hotConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//mediavet:hotpath
func hotConstConcatOK() string {
	return "prefix-" + "suffix" // negative: constant-folded at compile time
}

//mediavet:hotpath
func hotBox(x int) any {
	return x // want "boxes the value on the heap"
}

//mediavet:hotpath
func hotPointerBoxOK(p *int) any {
	return p // negative: pointers box without allocating
}

//mediavet:hotpath
func hotGrowingAppend(n int) int {
	var s []int
	for i := 0; i < n; i++ {
		s = append(s, i) // want "not pre-sized with a 3-arg make"
	}
	return len(s)
}

//mediavet:hotpath
func hotPresizedAppendOK(n int) int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i) // negative: capacity budgeted up front
	}
	return len(s)
}

//mediavet:hotpath
func hotClosure(n int) func() int {
	return func() int { return n } // want "closure captures n"
}

func coldHelper(x int) int { return x + 1 }

//mediavet:hotpath
func hotAnnotatedHelper(x int) int { return x * 2 }

//mediavet:hotpath
func hotCallsCold(x int) int {
	return coldHelper(x) // want "coldHelper which is not //mediavet:hotpath-annotated"
}

//mediavet:hotpath
func hotCallsHotOK(x int) int {
	return hotAnnotatedHelper(x) // negative: annotated callee
}

//mediavet:hotpath
func hotPanicOK(x int) int {
	if x < 0 {
		panic(fmt.Sprintf("negative input %d", x)) // negative: panic args are the cold path
	}
	return x
}

//mediavet:hotpath
func hotSuppressed(x int) string {
	//mediavet:ignore hotpath fixture exercising the suppression path
	return fmt.Sprintf("%d", x)
}

func coldFmtOK(x int) string {
	return fmt.Sprintf("%d", x) // negative: unannotated functions are unchecked
}

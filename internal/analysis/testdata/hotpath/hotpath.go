// Test fixture for the hotpath analyzer, type-checked as
// streamcache/internal/core so module-internal call edges resolve.
// Only //mediavet:hotpath-annotated functions are checked.
package core

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

//mediavet:hotpath
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt.Sprintf formats through reflection" "conversion of int to any boxes"
}

//mediavet:hotpath
func hotStrconvOK(x int) string {
	return strconv.Itoa(x) // negative: strconv is the sanctioned path
}

//mediavet:hotpath
func hotConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//mediavet:hotpath
func hotConstConcatOK() string {
	return "prefix-" + "suffix" // negative: constant-folded at compile time
}

//mediavet:hotpath
func hotBox(x int) any {
	return x // want "boxes the value on the heap"
}

//mediavet:hotpath
func hotPointerBoxOK(p *int) any {
	return p // negative: pointers box without allocating
}

//mediavet:hotpath
func hotGrowingAppend(n int) int {
	var s []int
	for i := 0; i < n; i++ {
		s = append(s, i) // want "not pre-sized with a 3-arg make"
	}
	return len(s)
}

//mediavet:hotpath
func hotPresizedAppendOK(n int) int {
	s := make([]int, 0, n)
	for i := 0; i < n; i++ {
		s = append(s, i) // negative: capacity budgeted up front
	}
	return len(s)
}

//mediavet:hotpath
func hotClosure(n int) func() int {
	return func() int { return n } // want "closure captures n"
}

func coldHelper(x int) int { return x + 1 }

//mediavet:hotpath
func hotAnnotatedHelper(x int) int { return x * 2 }

//mediavet:hotpath
func hotCallsCold(x int) int {
	return coldHelper(x) // want "coldHelper which is not //mediavet:hotpath-annotated"
}

//mediavet:hotpath
func hotCallsHotOK(x int) int {
	return hotAnnotatedHelper(x) // negative: annotated callee
}

//mediavet:hotpath
func hotPanicOK(x int) int {
	if x < 0 {
		panic(fmt.Sprintf("negative input %d", x)) // negative: panic args are the cold path
	}
	return x
}

//mediavet:hotpath
func hotSuppressed(x int) string {
	//mediavet:ignore hotpath fixture exercising the suppression path
	return fmt.Sprintf("%d", x)
}

func coldFmtOK(x int) string {
	return fmt.Sprintf("%d", x) // negative: unannotated functions are unchecked
}

// The fixtures below pin the patterns the proxy data plane relies on:
// sync.Pool round-trips, prerendered header-slice assignment, and
// writes that alias pooled segment memory must all pass, while passing
// a non-pointer value to an interface-typed parameter must not.

//mediavet:hotpath
func sinkAny(v any) any { return v }

//mediavet:hotpath
func hotIfaceArg(x int) any {
	return sinkAny(x) // want "boxes the value on the heap"
}

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, 16*1024)
	return &b
}}

//mediavet:hotpath
func hotPoolGetOK(r io.Reader) int {
	bp := bufPool.Get().(*[]byte) // negative: pool round-trip of a pointer
	defer bufPool.Put(bp)
	n, _ := r.Read(*bp)
	return n
}

var cachedHeader = []string{"HIT-PREFIX"}

//mediavet:hotpath
func hotHeaderAssignOK(h map[string][]string) {
	h["X-Cache"] = cachedHeader // negative: assigning a shared slice allocates nothing
}

//mediavet:hotpath
func hotSegmentWriteOK(w io.Writer, seg *[65536]byte, n int) (int, error) {
	return w.Write(seg[:n]) // negative: zero-copy write over aliased segment bytes
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the byte-identical-sweeps contract: in the
// packages whose output the experiment fingerprints cover, nothing may
// read the wall clock, draw from the process-global rand source,
// launch goroutines outside the internal/par seam, or let map
// iteration order leak into emitted results.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall clocks, global math/rand, ad-hoc goroutines, and " +
		"map-iteration-ordered output in deterministic packages",
	Run: runDeterminism,
}

// deterministicPackages are fully checked: every function in them must
// be replayable from a seed. internal/load is special-cased below —
// only BuildSchedule's call graph is deterministic there; Run does
// real-time pacing by design.
var deterministicPackages = map[string]bool{
	ModulePath + "/internal/core":        true,
	ModulePath + "/internal/sim":         true,
	ModulePath + "/internal/experiments": true,
	ModulePath + "/internal/workload":    true,
	ModulePath + "/internal/dist":        true,
	ModulePath + "/internal/merge":       true,
	ModulePath + "/internal/trace":       true,
	ModulePath + "/internal/bandwidth":   true,
}

const (
	loadPkgPath  = ModulePath + "/internal/load"
	loadRootFunc = "BuildSchedule"
	parPkgPath   = ModulePath + "/internal/par"
)

// Wall-clock entry points in package time. time.Duration arithmetic
// and constants are fine; reading or waiting on the real clock is not.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// Package-level math/rand functions that do NOT touch the global
// source and stay allowed.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDeterminism(pass *Pass) error {
	var checkAll bool
	var reachable map[*ast.FuncDecl]bool
	switch {
	case deterministicPackages[pass.PkgPath]:
		checkAll = true
	case pass.PkgPath == loadPkgPath:
		reachable = reachableFrom(pass, loadRootFunc)
	default:
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if !checkAll && !reachable[fd] {
				continue
			}
			checkFuncDeterminism(pass, fd)
		}
	}
	return nil
}

func checkFuncDeterminism(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(x.Pos(),
				"goroutine launched in deterministic code; route concurrency through internal/par so results merge in a fixed order")
		case *ast.CallExpr:
			checkDeterministicCall(pass, x)
		}
		return true
	})
	// Map-order analysis needs statement context (the "sorted after"
	// exemption), so it walks blocks rather than using Inspect.
	checkBlockMapOrder(pass, fd.Body.List)
}

func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := staticCallee(pass.Info, call)
	if fn == nil {
		return
	}
	switch calleePkgPath(fn) {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; deterministic code must derive timing from the seed or an injected clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			return // method on a seeded *rand.Rand / Source / Zipf
		}
		if seededRandConstructors[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(),
			"%s.%s draws from the process-global source; use a *rand.Rand seeded via sim.SplitSeed", calleePkgPath(fn), fn.Name())
	}
}

// --- map iteration order -------------------------------------------------

// checkBlockMapOrder scans a statement list; for each `for range m`
// over a map it checks the body for order-sensitive effects, with
// access to the statements that follow the loop (a sort of the
// collected keys/rows immediately after the loop is the sanctioned
// collect-then-sort idiom).
func checkBlockMapOrder(pass *Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		switch x := s.(type) {
		case *ast.RangeStmt:
			if isMapType(pass.Info.TypeOf(x.X)) {
				checkMapRangeBody(pass, x, stmts[i+1:])
			}
			checkBlockMapOrder(pass, x.Body.List)
		case *ast.ForStmt:
			checkBlockMapOrder(pass, x.Body.List)
		case *ast.IfStmt:
			checkBlockMapOrder(pass, x.Body.List)
			if alt, ok := x.Else.(*ast.BlockStmt); ok {
				checkBlockMapOrder(pass, alt.List)
			} else if alt, ok := x.Else.(*ast.IfStmt); ok {
				checkBlockMapOrder(pass, []ast.Stmt{alt})
			}
		case *ast.BlockStmt:
			checkBlockMapOrder(pass, x.List)
		case *ast.SwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkBlockMapOrder(pass, cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkBlockMapOrder(pass, cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					checkBlockMapOrder(pass, cc.Body)
				}
			}
		case *ast.LabeledStmt:
			checkBlockMapOrder(pass, []ast.Stmt{x.Stmt})
		}
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody flags three order-sensitive effects inside a map
// range body:
//
//  1. appending to a slice declared outside the loop, unless the slice
//     is sorted (sort.* / slices.Sort*) before its next use after the
//     loop — the collect-then-sort idiom;
//  2. non-commutative accumulation (+= / -= on float or string
//     lvalues rooted outside the loop; float addition is not
//     associative, so iteration order changes the sum bit pattern);
//  3. direct emission into a row sink (Row / IndexedRow / Emit calls).
//
// Integer accumulation and pure lookups are commutative and pass.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, after []ast.Stmt) {
	type appendTarget struct {
		obj types.Object
		pos token.Pos
	}
	var appends []appendTarget
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ASSIGN, token.DEFINE:
				for i, rhs := range x.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || i >= len(x.Lhs) {
						continue
					}
					id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Defs[id]
					if obj == nil {
						obj = pass.Info.Uses[id]
					}
					if obj != nil && declaredOutside(obj, rs) {
						appends = append(appends, appendTarget{obj, x.Pos()})
					}
				}
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := x.Lhs[0]
				if !orderSensitiveAccumType(pass.Info.TypeOf(lhs)) {
					return true
				}
				root := rootIdent(lhs)
				if root == nil {
					return true
				}
				obj := pass.Info.Uses[root]
				if obj == nil {
					obj = pass.Info.Defs[root]
				}
				if obj != nil && declaredOutside(obj, rs) {
					pass.Reportf(x.Pos(),
						"order-sensitive accumulation into %s inside range over map: float/string accumulation depends on iteration order; iterate sorted keys", root.Name)
				}
			}
		case *ast.CallExpr:
			if name := rowSinkCallName(pass, x); name != "" {
				pass.Reportf(x.Pos(),
					"%s called inside range over map: row emission order follows map iteration order; iterate sorted keys", name)
			}
		case *ast.FuncLit:
			return true // still scan closure bodies: they run per-iteration when called inline
		}
		return true
	})

	for _, ap := range appends {
		if sortedBeforeUse(pass, ap.obj, after) {
			continue
		}
		pass.Reportf(ap.pos,
			"append to %s inside range over map feeds output in iteration order; sort %s after the loop or iterate sorted keys", ap.obj.Name(), ap.obj.Name())
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside reports whether obj's declaration lies outside the
// range statement (so mutations inside the loop escape it).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

func orderSensitiveAccumType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0 || b.Info()&types.IsString != 0 ||
		b.Info()&types.IsComplex != 0
}

// rowSinkCallName recognizes emission calls whose order is
// user-visible: methods named Row/IndexedRow/Emit (the RowSink and
// engine sink surface) and functions named emit*.
func rowSinkCallName(pass *Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Row", "IndexedRow", "Emit":
			return fun.Sel.Name
		}
	}
	return ""
}

// sortedBeforeUse scans the statements after the loop: if the first
// statement mentioning obj is a sort.*/slices.Sort* call over it, the
// collect-then-sort idiom applies.
func sortedBeforeUse(pass *Pass, obj types.Object, after []ast.Stmt) bool {
	for _, s := range after {
		mentioned := false
		ast.Inspect(s, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				mentioned = true
			}
			return true
		})
		if !mentioned {
			continue
		}
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok && isSortCall(pass, call, obj) {
				return true
			}
		}
		return false
	}
	return false
}

func isSortCall(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	fn := staticCallee(pass.Info, call)
	if fn == nil {
		return false
	}
	switch calleePkgPath(fn) {
	case "sort", "slices":
	default:
		return false
	}
	for _, arg := range call.Args {
		found := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// --- load.BuildSchedule call graph ---------------------------------------

// reachableFrom computes the set of function declarations reachable
// from the named top-level function via (a) static calls and function
// references within the package and (b) conservative class-hierarchy
// edges: constructing a composite literal of a package-local named
// type pulls in all of that type's methods, which resolves interface
// dispatch like arrival-process Times() without whole-program
// analysis. This is the "BuildSchedule call graph" the determinism
// contract names; load.Run's wall-clock pacing sits outside it.
func reachableFrom(pass *Pass, rootName string) map[*ast.FuncDecl]bool {
	declOf := map[types.Object]*ast.FuncDecl{}
	var root *ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pass.Info.Defs[fd.Name]; obj != nil {
				declOf[obj] = fd
			}
			if fd.Recv == nil && fd.Name.Name == rootName && !pass.InTestFile(fd.Pos()) {
				root = fd
			}
		}
	}
	reach := map[*ast.FuncDecl]bool{}
	if root == nil {
		return reach
	}
	var frontier []*ast.FuncDecl
	push := func(fd *ast.FuncDecl) {
		if fd != nil && !reach[fd] {
			reach[fd] = true
			frontier = append(frontier, fd)
		}
	}
	pushMethods := func(t types.Type) {
		for {
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() != pass.Pkg {
			return
		}
		for i := 0; i < named.NumMethods(); i++ {
			push(declOf[named.Method(i)])
		}
	}
	push(root)
	for len(frontier) > 0 {
		fd := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if fn, ok := pass.Info.Uses[x].(*types.Func); ok && fn.Pkg() == pass.Pkg {
					push(declOf[fn])
				}
			case *ast.SelectorExpr:
				if fn, ok := pass.Info.Uses[x.Sel].(*types.Func); ok && fn.Pkg() == pass.Pkg {
					push(declOf[fn])
				}
			case *ast.CompositeLit:
				pushMethods(pass.Info.TypeOf(x))
			}
			return true
		})
	}
	return reach
}

// Package analysis implements mediavet, the repo's in-house static
// analyzer suite. It machine-enforces the three load-bearing contracts
// that regression tests only catch after the fact:
//
//   - determinism: sweep output must be byte-identical for a given seed
//     (no wall clock, no global rand, no map-order-dependent output,
//     no ad-hoc goroutines outside internal/par),
//   - hotpath: functions annotated //mediavet:hotpath must stay
//     allocation-free (the AllocsPerRun budget from the perf work),
//   - shardlock: internal/proxy keeps shard locks short and never
//     blocks while holding one; cross-shard state goes through atomics,
//   - rowsink: header/row emitters agree on column count and schema
//     strings stay constant so sweep fingerprints are stable.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) but is self-contained on the
// standard library: packages are loaded via `go list -export` and type
// checked with the gc export-data importer, so the module keeps its
// zero-dependency property. cmd/mediavet drives the analyzers both
// standalone and through the `go vet -vettool` protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ModulePath is the import-path prefix of this repository. Analyzers
// use it to scope package checks and to distinguish module-internal
// calls from standard-library ones.
const ModulePath = "streamcache"

// Version participates in the facts-dir cache key: bumping it (or
// changing any analyzer, which changes the binary) invalidates cached
// results.
const Version = "mediavet-1"

// An Analyzer is one named check. Run inspects a fully type-checked
// package via the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is a single finding at a position, before suppression
// (//mediavet:ignore) has been applied.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	PkgPath  string
	Info     *types.Info

	// Facts holds hotpath annotations accumulated from this package
	// and everything it (transitively) imports.
	Facts *Facts

	diags []Diagnostic
}

// Reportf records a finding. The driver applies //mediavet:ignore
// suppression afterwards, so analyzers report unconditionally.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. The
// invariants govern production code; tests may use wall clocks,
// fmt, and ad-hoc goroutines freely.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Facts is the cross-package information analyzers exchange: the set
// of //mediavet:hotpath-annotated functions, keyed by FuncKey. In
// standalone mode the driver accumulates facts in dependency order;
// in vettool mode they travel through go vet's .vetx fact files.
type Facts struct {
	Hotpath map[string]bool `json:"hotpath,omitempty"`
}

// NewFacts returns an empty fact set.
func NewFacts() *Facts {
	return &Facts{Hotpath: map[string]bool{}}
}

// Merge folds other into f.
func (f *Facts) Merge(other *Facts) {
	if other == nil {
		return
	}
	for k := range other.Hotpath {
		f.Hotpath[k] = true
	}
}

// FuncKey renders a stable identity for a function or method:
// "pkgpath.Func" or "pkgpath.Recv.Method" with pointer receivers
// stripped, matching the keys produced by declKey for annotations.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return fn.Pkg().Path() + ".?." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// declKey is FuncKey computed syntactically from a declaration, used
// when registering //mediavet:hotpath annotations (which may happen in
// parse-only mode, before type information exists).
func declKey(pkgPath string, d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return pkgPath + "." + d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.ParenExpr:
			t = tt.X
		case *ast.Ident:
			return pkgPath + "." + tt.Name + "." + d.Name.Name
		default:
			return pkgPath + ".?." + d.Name.Name
		}
	}
}

// staticCallee resolves a call expression to the *types.Func it
// statically invokes: a package-level function, a method called on a
// concrete receiver, or nil for func values, interface dispatch, type
// conversions, and builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if types.IsInterface(sel.Recv()) {
				return nil // dynamic dispatch
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleePkgPath returns the defining package path of fn, or "" for
// builtins and universe-scope functions.
func calleePkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isModulePath reports whether path belongs to this module.
func isModulePath(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// pkgPathSuffix reports whether pkgPath is exactly ModulePath+"/"+suffix.
// Testdata suites type-check synthetic packages under the real module
// paths so the scoping rules apply unchanged.
func pkgPathSuffix(pkgPath, suffix string) bool {
	return pkgPath == ModulePath+"/"+suffix
}

// rootIdent walks a selector/index/star chain (a.b[c].d, *p.q) down to
// its base identifier, or nil if the base is not an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

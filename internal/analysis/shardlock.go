package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shardlock enforces the proxy tier's lock discipline from the
// sharded-concurrency work:
//
//  1. no blocking operation (origin/http call, channel op, sleep,
//     WaitGroup.Wait — transitively through package-local calls) while
//     a shard mutex is held;
//  2. every Lock has a matching Unlock or defer Unlock in the same
//     function;
//  3. fields of mutex-guarded structs are written only with the lock
//     held (outside constructors), so cross-shard state is forced
//     through atomics.
//
// sync.Cond.Wait is deliberately NOT in the blocking set: it releases
// the lock while parked, which is exactly the relay fan-out pattern.
var Shardlock = &Analyzer{
	Name: "shardlock",
	Doc: "in internal/proxy: no blocking calls under a shard mutex, " +
		"every Lock dominated by an Unlock, guarded fields written " +
		"only under their lock",
	Run: runShardlock,
}

// Packages whose calls block (network, subprocess) — holding a shard
// lock across any of these serializes the shard behind I/O.
var blockingPkgs = map[string]bool{
	"net":          true,
	"net/http":     true,
	"net/rpc":      true,
	"os/exec":      true,
	"database/sql": true,
}

func runShardlock(pass *Pass) error {
	if !pkgPathSuffix(pass.PkgPath, "internal/proxy") {
		return nil
	}
	sl := &shardlockChecker{
		pass:     pass,
		blocking: map[*types.Func]string{},
	}
	sl.buildBlockingSet()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			sl.checkFunc(fd)
		}
	}
	return nil
}

type shardlockChecker struct {
	pass *Pass
	// blocking maps package-local functions to the reason they block,
	// computed as a fixed point over the intra-package call graph.
	blocking map[*types.Func]string
}

// directBlockReason classifies a single call expression, ignoring
// package-local propagation (handled by the fixed point).
func (sl *shardlockChecker) directBlockReason(call *ast.CallExpr) string {
	fn := staticCallee(sl.pass.Info, call)
	if fn == nil {
		return ""
	}
	pkg := calleePkgPath(fn)
	switch {
	case blockingPkgs[pkg]:
		return "calls into " + pkg
	case pkg == "time" && fn.Name() == "Sleep":
		return "calls time.Sleep"
	case pkg == "sync" && FuncKey(fn) == "sync.WaitGroup.Wait":
		return "waits on a sync.WaitGroup"
	case pkg == "io" && (fn.Name() == "Copy" || fn.Name() == "CopyN" ||
		fn.Name() == "CopyBuffer" || fn.Name() == "ReadAll"):
		return "performs io." + fn.Name() + " (reader may block)"
	}
	return ""
}

// buildBlockingSet marks package-local functions that block, directly
// or through other package-local calls.
func (sl *shardlockChecker) buildBlockingSet() {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range sl.pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, isFn := sl.pass.Info.Defs[fd.Name].(*types.Func); isFn {
					decls[fn] = fd
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			if sl.blocking[fn] != "" {
				continue
			}
			reason := sl.funcBlockReason(fd)
			if reason != "" {
				sl.blocking[fn] = reason
				changed = true
			}
		}
	}
}

// funcBlockReason scans one function body for direct blocking
// operations or calls to already-known-blocking local functions.
// Goroutine bodies and func literals are skipped: what a spawned
// goroutine does is its own timeline.
func (sl *shardlockChecker) funcBlockReason(fd *ast.FuncDecl) string {
	reason := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.SendStmt:
			reason = "sends on a channel"
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				reason = "receives from a channel"
				return false
			}
		case *ast.SelectStmt:
			reason = "selects on channels"
			return false
		case *ast.CallExpr:
			if r := sl.directBlockReason(x); r != "" {
				reason = r
				return false
			}
			if fn := staticCallee(sl.pass.Info, x); fn != nil && fn.Pkg() == sl.pass.Pkg {
				if r := sl.blocking[fn]; r != "" {
					reason = fn.Name() + " " + r
					return false
				}
			}
		}
		return true
	})
	return reason
}

// --- per-function lock-state walk ----------------------------------------

// lockState maps a mutex expression (rendered as source text, e.g.
// "sh.mu") to the position where it was locked.
type lockState map[string]token.Pos

func (ls lockState) clone() lockState {
	c := make(lockState, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

func (sl *shardlockChecker) checkFunc(fd *ast.FuncDecl) {
	// Pre-pass: which mutexes have any Unlock (plain or deferred)
	// anywhere in the function? A Lock with none is a guaranteed leak.
	unlocked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if m, op := sl.mutexOp(call); m != "" && (op == "Unlock" || op == "RUnlock") {
				unlocked[m] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if m, op := sl.mutexOp(call); m != "" && (op == "Lock" || op == "RLock") && !unlocked[m] {
				sl.pass.Reportf(call.Pos(),
					"%s.%s has no matching Unlock anywhere in this function; add an unlock or defer", m, op)
			}
		}
		return true
	})

	sl.walkStmts(fd, fd.Body.List, lockState{})

	// Each func literal is its own timeline (goroutine body, callback,
	// deferred cleanup): walk it with a fresh lock state. The walker
	// itself never descends into literals, so each is visited once.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			sl.walkStmts(fd, lit.Body.List, lockState{})
		}
		return true
	})
}

// mutexOp recognizes m.Lock()/Unlock()/RLock()/RUnlock() where m's
// type is sync.Mutex or sync.RWMutex (possibly behind a pointer), and
// returns the rendered mutex expression and the operation name.
func (sl *shardlockChecker) mutexOp(call *ast.CallExpr) (mutex, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	t := sl.pass.Info.TypeOf(sel.X)
	if !isSyncMutex(t) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// walkStmts threads the held-lock set through a statement list.
// Branches get copies; at joins a lock is considered released if any
// branch released it (conservative toward fewer false positives).
// The returned state is the fall-through state.
func (sl *shardlockChecker) walkStmts(fd *ast.FuncDecl, stmts []ast.Stmt, held lockState) lockState {
	for _, s := range stmts {
		held = sl.walkStmt(fd, s, held)
	}
	return held
}

func (sl *shardlockChecker) walkStmt(fd *ast.FuncDecl, s ast.Stmt, held lockState) lockState {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
			if m, op := sl.mutexOp(call); m != "" {
				switch op {
				case "Lock", "RLock":
					held[m] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, m)
				}
				return held
			}
		}
		sl.scanBlocking(x, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to the end of the
		// function, which is fine; statements after it are still
		// "under the lock" for the blocking check, so do NOT release.
		// Defers of other calls: their bodies run at return time.
	case *ast.GoStmt:
		// The spawned goroutine runs on its own timeline; argument
		// evaluation is non-blocking for our operation set.
	case *ast.IfStmt:
		if x.Init != nil {
			held = sl.walkStmt(fd, x.Init, held)
		}
		sl.scanBlockingExpr(x.Cond, held, x.Cond.Pos())
		thenOut := sl.walkStmts(fd, x.Body.List, held.clone())
		elseOut := held.clone()
		switch alt := x.Else.(type) {
		case *ast.BlockStmt:
			elseOut = sl.walkStmts(fd, alt.List, held.clone())
		case *ast.IfStmt:
			elseOut = sl.walkStmt(fd, alt, held.clone())
		}
		// Terminating branches (return/panic) drop out of the join.
		if terminates(x.Body) {
			return elseOut
		}
		if x.Else != nil && blockTerminates(x.Else) {
			return thenOut
		}
		return joinStates(thenOut, elseOut)
	case *ast.ForStmt:
		if x.Init != nil {
			held = sl.walkStmt(fd, x.Init, held)
		}
		if x.Cond != nil {
			sl.scanBlockingExpr(x.Cond, held, x.Cond.Pos())
		}
		body := sl.walkStmts(fd, x.Body.List, held.clone())
		return joinStates(held, body)
	case *ast.RangeStmt:
		sl.scanBlockingExpr(x.X, held, x.X.Pos())
		body := sl.walkStmts(fd, x.Body.List, held.clone())
		return joinStates(held, body)
	case *ast.BlockStmt:
		return sl.walkStmts(fd, x.List, held)
	case *ast.LabeledStmt:
		return sl.walkStmt(fd, x.Stmt, held)
	case *ast.SwitchStmt:
		if x.Init != nil {
			held = sl.walkStmt(fd, x.Init, held)
		}
		if x.Tag != nil {
			sl.scanBlockingExpr(x.Tag, held, x.Tag.Pos())
		}
		return sl.walkCases(fd, x.Body, held)
	case *ast.TypeSwitchStmt:
		return sl.walkCases(fd, x.Body, held)
	case *ast.SelectStmt:
		if len(held) > 0 {
			m, pos := anyLock(held)
			sl.pass.Reportf(x.Pos(),
				"select while holding %s (locked at %s); blocking channel ops under a shard lock serialize the shard", m, sl.pass.Fset.Position(pos))
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sl.walkStmts(fd, cc.Body, held.clone())
			}
		}
	default:
		sl.scanBlocking(s, held)
	}
	return held
}

// walkCases handles switch bodies: each case starts from the incoming
// state; a lock released in every non-terminating case is released
// after the switch.
func (sl *shardlockChecker) walkCases(fd *ast.FuncDecl, body *ast.BlockStmt, held lockState) lockState {
	out := held.clone()
	first := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		caseOut := sl.walkStmts(fd, cc.Body, held.clone())
		if terminatesStmts(cc.Body) {
			continue
		}
		if first {
			out = caseOut
			first = false
		} else {
			out = joinStates(out, caseOut)
		}
	}
	return out
}

// joinStates keeps only locks held on both paths (a lock released on
// either side is treated as released, biasing toward no false
// positives after joins).
func joinStates(a, b lockState) lockState {
	out := lockState{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func anyLock(held lockState) (string, token.Pos) {
	for k, v := range held {
		return k, v
	}
	return "", token.NoPos
}

func terminates(b *ast.BlockStmt) bool { return terminatesStmts(b.List) }

func blockTerminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return terminates(x)
	case *ast.IfStmt:
		return terminates(x.Body) && x.Else != nil && blockTerminates(x.Else)
	}
	return false
}

// terminatesStmts reports whether a statement list always transfers
// control out (return, panic, break/continue/goto). Approximate: only
// the last statement is examined.
func terminatesStmts(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch x := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(x)
	case *ast.IfStmt:
		return terminates(x.Body) && x.Else != nil && blockTerminates(x.Else)
	}
	return false
}

// scanBlocking inspects one statement (not descending into nested
// statements with their own control flow — the walker handles those,
// and walkStmt only calls this for leaf statements) for blocking
// operations while locks are held, and for guarded-field writes.
func (sl *shardlockChecker) scanBlocking(n ast.Node, held lockState) {
	if as, ok := n.(*ast.AssignStmt); ok {
		sl.checkGuardedWrites(as, held)
	}
	if inc, ok := n.(*ast.IncDecStmt); ok {
		sl.checkGuardedWrite(inc.X, inc.Pos(), held)
	}
	if len(held) == 0 {
		return
	}
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false // deferred execution
		case *ast.SendStmt:
			m, pos := anyLock(held)
			sl.pass.Reportf(x.Pos(),
				"channel send while holding %s (locked at %s)", m, sl.pass.Fset.Position(pos))
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				m, pos := anyLock(held)
				sl.pass.Reportf(x.Pos(),
					"channel receive while holding %s (locked at %s)", m, sl.pass.Fset.Position(pos))
			}
		case *ast.CallExpr:
			if r := sl.directBlockReason(x); r != "" {
				m, pos := anyLock(held)
				sl.pass.Reportf(x.Pos(),
					"blocking call (%s) while holding %s (locked at %s); release the lock before blocking", r, m, sl.pass.Fset.Position(pos))
				return true
			}
			if fn := staticCallee(sl.pass.Info, x); fn != nil && fn.Pkg() == sl.pass.Pkg {
				if r := sl.blocking[fn]; r != "" {
					m, pos := anyLock(held)
					sl.pass.Reportf(x.Pos(),
						"call to %s, which %s, while holding %s (locked at %s); release the lock before blocking", fn.Name(), r, m, sl.pass.Fset.Position(pos))
				}
			}
		}
		return true
	})
}

func (sl *shardlockChecker) scanBlockingExpr(e ast.Expr, held lockState, _ token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	sl.scanBlocking(&ast.ExprStmt{X: e}, held)
}

// --- guarded-field writes -------------------------------------------------

// checkGuardedWrites enforces "cross-shard state through atomics":
// writing a field of a struct that declares a sync.Mutex/RWMutex field
// requires holding one of that struct's mutexes (any expression ending
// in the mutex field name), except inside constructor functions that
// return the struct type.
func (sl *shardlockChecker) checkGuardedWrites(as *ast.AssignStmt, held lockState) {
	for _, lhs := range as.Lhs {
		sl.checkGuardedWrite(lhs, as.Pos(), held)
	}
}

func (sl *shardlockChecker) checkGuardedWrite(lhs ast.Expr, pos token.Pos, held lockState) {
	lhs = ast.Unparen(lhs)
	// Unwrap index expressions: m[k] = v writes through the map/slice
	// field m, which is the guarded object.
	for {
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			lhs = ast.Unparen(idx.X)
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selInfo, ok := sl.pass.Info.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return
	}
	recvT := selInfo.Recv()
	mutexField := guardMutexField(recvT)
	if mutexField == "" || sel.Sel.Name == mutexField {
		return
	}
	// Writes in a constructor of the guarded type are initialization.
	if sl.inConstructorOf(sel, recvT) {
		return
	}
	// Is some held lock rooted at the same receiver (e.g. holding
	// "sh.mu" while writing sh.inflight)? Match on receiver text.
	recvText := types.ExprString(sel.X)
	for m := range held {
		if m == recvText+"."+mutexField {
			return
		}
	}
	sl.pass.Reportf(pos,
		"write to %s.%s without holding %s.%s; guarded state must be written under its mutex (atomics for cross-shard counters)", recvText, sel.Sel.Name, recvText, mutexField)
}

// guardMutexField returns the name of the first sync.Mutex/RWMutex
// field of the (possibly pointer-to) struct type, or "".
func guardMutexField(t types.Type) string {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isSyncMutex(f.Type()) {
			return f.Name()
		}
	}
	return ""
}

// inConstructorOf reports whether the enclosing function declaration
// returns (a pointer to) the named type of t — the constructor
// exemption for initialization writes.
func (sl *shardlockChecker) inConstructorOf(at ast.Node, t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, file := range sl.pass.Files {
		for _, decl := range file.Decls {
			fd, isFd := decl.(*ast.FuncDecl)
			if !isFd || fd.Body == nil {
				continue
			}
			if at.Pos() < fd.Pos() || at.Pos() >= fd.End() {
				continue
			}
			if fd.Type.Results == nil {
				return false
			}
			for _, res := range fd.Type.Results.List {
				rt := sl.pass.Info.TypeOf(res.Type)
				if rt == nil {
					continue
				}
				if p, isP := rt.(*types.Pointer); isP {
					rt = p.Elem()
				}
				if n, isN := rt.(*types.Named); isN && n.Obj() == named.Obj() {
					return true
				}
			}
			return false
		}
	}
	return false
}

package analysis

// All returns the full mediavet analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, Hotpath, Shardlock, Rowsink}
}

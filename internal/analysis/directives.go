package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Directive syntax:
//
//	//mediavet:hotpath
//	    on (or in) a function's doc comment: the function is part of a
//	    zero-allocation hot path and the hotpath analyzer checks its body.
//
//	//mediavet:ignore <analyzer> <reason...>
//	    suppresses <analyzer>'s findings on the directive's own line and
//	    on the line directly below it (so it works both as a trailing
//	    comment and as a comment line above the offending statement).
//	    The reason is mandatory; the meta-test in ignore_test.go and the
//	    standalone driver both reject ignores with no reason or an
//	    unknown analyzer name.
const (
	hotpathDirective = "//mediavet:hotpath"
	ignoreDirective  = "//mediavet:ignore"
)

// An Ignore is one parsed //mediavet:ignore directive.
type Ignore struct {
	Analyzer string
	Reason   string
	File     string
	Line     int
	Pos      token.Pos
	Malformed string // non-empty if the directive could not be parsed
}

// parseIgnore parses the text of a single comment. Returns nil if the
// comment is not an ignore directive at all.
func parseIgnore(text string) *Ignore {
	if !strings.HasPrefix(text, ignoreDirective) {
		return nil
	}
	rest := strings.TrimPrefix(text, ignoreDirective)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. //mediavet:ignoreX
	}
	fields := strings.Fields(rest)
	ig := &Ignore{}
	if len(fields) == 0 {
		ig.Malformed = "missing analyzer name and reason"
		return ig
	}
	ig.Analyzer = fields[0]
	if len(fields) < 2 {
		ig.Malformed = "missing reason"
		return ig
	}
	ig.Reason = strings.Join(fields[1:], " ")
	return ig
}

// collectIgnores walks every comment in files and returns the parsed
// ignore directives with their file/line positions resolved.
func collectIgnores(fset *token.FileSet, files []*ast.File) []*Ignore {
	var out []*Ignore
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ig := parseIgnore(c.Text)
				if ig == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				ig.File = pos.Filename
				ig.Line = pos.Line
				ig.Pos = c.Pos()
				out = append(out, ig)
			}
		}
	}
	return out
}

// isHotpathDecl reports whether a function declaration carries the
// //mediavet:hotpath directive in its doc comment.
func isHotpathDecl(d *ast.FuncDecl) bool {
	if d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		if c.Text == hotpathDirective ||
			strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// CollectHotpathFacts records every //mediavet:hotpath-annotated
// function in files under its declKey. It needs only parsed syntax,
// so it also works in go vet's VetxOnly (facts-only) mode.
func CollectHotpathFacts(pkgPath string, files []*ast.File) *Facts {
	facts := NewFacts()
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotpathDecl(fd) {
				continue
			}
			facts.Hotpath[declKey(pkgPath, fd)] = true
		}
	}
	return facts
}

// suppressor answers "is this diagnostic covered by an ignore?" and
// tracks which ignores were actually used so the standalone driver can
// flag stale ones.
type suppressor struct {
	fset    *token.FileSet
	byKey   map[string][]*Ignore // "analyzer\x00file:line" -> directives
	used    map[*Ignore]bool
	all     []*Ignore
}

func newSuppressor(fset *token.FileSet, files []*ast.File) *suppressor {
	s := &suppressor{
		fset:  fset,
		byKey: map[string][]*Ignore{},
		used:  map[*Ignore]bool{},
		all:   collectIgnores(fset, files),
	}
	for _, ig := range s.all {
		if ig.Malformed != "" {
			continue
		}
		// A directive covers its own line (trailing comment) and the
		// line below (standalone comment above the statement).
		for _, line := range []int{ig.Line, ig.Line + 1} {
			key := ig.Analyzer + "\x00" + ig.File + ":" + strconv.Itoa(line)
			s.byKey[key] = append(s.byKey[key], ig)
		}
	}
	return s
}

// suppressed reports whether a diagnostic from analyzer at pos is
// covered by an ignore directive, marking the directive used.
func (s *suppressor) suppressed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	key := analyzer + "\x00" + p.Filename + ":" + strconv.Itoa(p.Line)
	igs := s.byKey[key]
	if len(igs) == 0 {
		return false
	}
	for _, ig := range igs {
		s.used[ig] = true
	}
	return true
}

// unused returns well-formed directives that suppressed nothing, plus
// all malformed ones. The standalone driver reports both so ignores
// cannot rot.
func (s *suppressor) unused() (stale, malformed []*Ignore) {
	for _, ig := range s.all {
		switch {
		case ig.Malformed != "":
			malformed = append(malformed, ig)
		case !s.used[ig]:
			stale = append(stale, ig)
		}
	}
	return stale, malformed
}

package analysis

import "testing"

func TestRowsinkAnalyzer(t *testing.T) {
	runTestdata(t, Rowsink, "rowsink", ModulePath+"/internal/experiments")
}

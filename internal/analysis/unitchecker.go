package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"
)

// vetConfig mirrors the JSON config file cmd/go writes for a vettool
// (see $GOROOT/src/cmd/go/internal/work/exec.go). go vet invokes the
// tool once per package as `mediavet <objdir>/vet.cfg`, after first
// querying `mediavet -flags` and `mediavet -V=full`.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool

	PackageVetx map[string]string // dep import path -> fact file
	VetxOnly    bool              // facts only, no diagnostics wanted
	VetxOutput  string            // where to write this package's facts

	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Unitchecker handles one `go vet -vettool` invocation for the config
// file at cfgPath and returns the process exit code: 0 clean, 1 hard
// error, 2 findings (printed to stderr as file:line:col lines, which
// go vet relays verbatim).
func Unitchecker(cfgPath string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "mediavet: reading config: %v\n", err)
		return 1
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(stderr, "mediavet: parsing config %s: %v\n", cfgPath, err)
		return 1
	}

	// Test variants arrive as "pkg [pkg.test]"; the invariants are
	// scoped by the real package path.
	pkgPath := cfg.ImportPath
	if i := strings.Index(pkgPath, " ["); i >= 0 {
		pkgPath = pkgPath[:i]
	}

	// Facts from already-vetted dependencies.
	facts := NewFacts()
	for _, vetx := range cfg.PackageVetx {
		b, err := os.ReadFile(vetx)
		if err != nil {
			continue // missing facts degrade coverage, not correctness
		}
		dep := new(Facts)
		if json.Unmarshal(b, dep) == nil {
			facts.Merge(dep)
		}
	}

	writeVetx := func(own *Facts) {
		if cfg.VetxOutput == "" {
			return
		}
		// Export merged facts so transitive annotations survive even
		// if cmd/go only wires direct deps into PackageVetx.
		merged := NewFacts()
		merged.Merge(facts)
		merged.Merge(own)
		b, err := json.Marshal(merged)
		if err != nil {
			return
		}
		_ = os.WriteFile(cfg.VetxOutput, b, 0o644)
	}

	if cfg.VetxOnly {
		// Facts need only syntax: parse, collect annotations, exit.
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range cfg.GoFiles {
			f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				if cfg.SucceedOnTypecheckFailure {
					writeVetx(NewFacts())
					return 0
				}
				fmt.Fprintf(stderr, "mediavet: %v\n", err)
				return 1
			}
			files = append(files, f)
		}
		writeVetx(CollectHotpathFacts(pkgPath, files))
		return 0
	}

	loader := NewLoader(cfg.PackageFile, cfg.ImportMap)
	pkg, err := loader.Check(pkgPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx(NewFacts())
			return 0
		}
		fmt.Fprintf(stderr, "mediavet: %v\n", err)
		return 1
	}

	ent, err := analyzePackage(pkg, loader.Fset, analyzers, facts)
	if err != nil {
		fmt.Fprintf(stderr, "mediavet: %v\n", err)
		return 1
	}
	writeVetx(ent.Facts)

	// In vettool mode the same package is analyzed repeatedly (plain
	// and test variants), so stale-ignore findings from the pseudo
	// analyzer "mediavet" are dropped here; the standalone driver and
	// the ignore meta-test own that check.
	var real []Finding
	for _, f := range ent.Findings {
		if f.Analyzer == "mediavet" {
			continue
		}
		real = append(real, f)
	}
	if len(real) == 0 {
		return 0
	}
	sortFindings(real)
	for _, f := range real {
		fmt.Fprintf(stderr, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	return 2
}

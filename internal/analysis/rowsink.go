package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Rowsink guards the tabular-output schema: a table's Header and the
// rows emitted against it must agree on column count (a mismatch
// silently misaligns every CSV the sweep produces), and schema-bearing
// strings — header cells, record Type tags, fingerprint formats — must
// be compile-time constants so the Scale fingerprint that journal
// resume and shard merge compare never drifts at runtime.
var Rowsink = &Analyzer{
	Name: "rowsink",
	Doc: "header/row emitters agree on column count; schema strings " +
		"(header cells, *Record Type tags, Fingerprint formats) are constants",
	Run: runRowsink,
}

var rowsinkPackages = map[string]bool{
	ModulePath + "/internal/experiments": true,
	ModulePath + "/internal/load":        true,
	ModulePath + "/internal/merge":       true,
}

func runRowsink(pass *Pass) error {
	if !rowsinkPackages[pass.PkgPath] {
		return nil
	}
	rs := &rowsinkChecker{pass: pass, pkgHeaders: map[types.Object]*ast.CompositeLit{}}
	rs.collectPackageHeaders()
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			rs.checkFunc(fd)
		}
		rs.checkRecordLits(file)
	}
	return nil
}

type rowsinkChecker struct {
	pass *Pass
	// pkgHeaders maps package-level vars with []string literal
	// initializers and Header-suffixed names to their literals, so
	// `Header: scheduleHeader` pairs with rows in other functions.
	pkgHeaders map[types.Object]*ast.CompositeLit
}

func isStringSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return ok && isStringType(sl.Elem())
}

func isStringSliceSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	return ok && isStringSlice(sl.Elem())
}

func (rs *rowsinkChecker) collectPackageHeaders() {
	for _, file := range rs.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) || !strings.HasSuffix(strings.ToLower(name.Name), "header") {
						continue
					}
					lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok || !isStringSlice(rs.pass.Info.TypeOf(lit)) {
						continue
					}
					if obj := rs.pass.Info.Defs[name]; obj != nil {
						rs.pkgHeaders[obj] = lit
					}
					// Header cells are schema: must be constants.
					rs.checkConstElems(lit, "header cell")
				}
			}
		}
	}
}

func (rs *rowsinkChecker) checkConstElems(lit *ast.CompositeLit, what string) {
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		if !isConstExpr(rs.pass, el) {
			rs.pass.Reportf(el.Pos(),
				"%s is not a compile-time constant; schema strings must be constants so fingerprints stay stable", what)
		}
	}
}

// headerLitLen resolves a Header-position expression to a column
// count: a []string literal inline, or an identifier bound to a
// package-level []string literal.
func (rs *rowsinkChecker) headerLitLen(e ast.Expr) (int, bool) {
	e = ast.Unparen(e)
	if lit, ok := e.(*ast.CompositeLit); ok && isStringSlice(rs.pass.Info.TypeOf(lit)) {
		return len(lit.Elts), true
	}
	if id, ok := e.(*ast.Ident); ok {
		if lit, ok := rs.pkgHeaders[rs.pass.Info.Uses[id]]; ok {
			return len(lit.Elts), true
		}
	}
	return 0, false
}

// checkFunc pairs the header literal(s) a function binds with the row
// literals it emits.
func (rs *rowsinkChecker) checkFunc(fd *ast.FuncDecl) {
	// Fingerprint methods: format strings must be constants.
	if fd.Name.Name == "Fingerprint" {
		rs.checkFingerprintFormats(fd)
	}

	type headerUse struct {
		n   int
		pos ast.Expr
	}
	var headers []headerUse
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.KeyValueExpr:
			if id, ok := x.Key.(*ast.Ident); ok && id.Name == "Header" {
				if n, ok := rs.headerLitLen(x.Value); ok {
					headers = append(headers, headerUse{n, x.Value})
					if lit, isLit := ast.Unparen(x.Value).(*ast.CompositeLit); isLit {
						rs.checkConstElems(lit, "header cell")
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Header" || i >= len(x.Rhs) {
					continue
				}
				if n, ok := rs.headerLitLen(x.Rhs[i]); ok {
					headers = append(headers, headerUse{n, x.Rhs[i]})
					if lit, isLit := ast.Unparen(x.Rhs[i]).(*ast.CompositeLit); isLit {
						rs.checkConstElems(lit, "header cell")
					}
				}
			}
		}
		return true
	})
	if len(headers) == 0 {
		return
	}
	want := headers[0].n
	for _, h := range headers[1:] {
		if h.n != want {
			// Several tables with different schemas in one function:
			// ambiguous, skip row pairing.
			return
		}
	}

	report := func(lit *ast.CompositeLit, got int, how string) {
		if got != want {
			rs.pass.Reportf(lit.Pos(),
				"row %s has %d columns but the table header declares %d; header and row emitter must agree", how, got, want)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// sink.Row(...) / sink.IndexedRow(i, ...) with a []string literal arg.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Row" || sel.Sel.Name == "IndexedRow") {
				for _, arg := range x.Args {
					if lit, isLit := ast.Unparen(arg).(*ast.CompositeLit); isLit &&
						isStringSlice(rs.pass.Info.TypeOf(lit)) {
						report(lit, len(lit.Elts), "passed to "+sel.Sel.Name)
					}
				}
			}
			// append(rows, []string{...}) where rows is [][]string.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, isB := rs.pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "append" &&
					len(x.Args) > 0 && isStringSliceSlice(rs.pass.Info.TypeOf(x.Args[0])) {
					for _, arg := range x.Args[1:] {
						if lit, isLit := ast.Unparen(arg).(*ast.CompositeLit); isLit &&
							isStringSlice(rs.pass.Info.TypeOf(lit)) {
							report(lit, len(lit.Elts), "appended to the row set")
						}
					}
				}
			}
		case *ast.CompositeLit:
			// [][]string{{...}, {...}} table literals.
			if isStringSliceSlice(rs.pass.Info.TypeOf(x)) {
				for _, el := range x.Elts {
					if lit, isLit := el.(*ast.CompositeLit); isLit {
						report(lit, len(lit.Elts), "in the table literal")
					}
				}
			}
		case *ast.FuncLit:
			// Row-renderer closures returning []string.
			res := x.Type.Results
			if res == nil || len(res.List) != 1 || !isStringSlice(rs.pass.Info.TypeOf(res.List[0].Type)) {
				return true
			}
			ast.Inspect(x.Body, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit && m != x {
					return false
				}
				ret, isRet := m.(*ast.ReturnStmt)
				if !isRet || len(ret.Results) != 1 {
					return true
				}
				if lit, isLit := ast.Unparen(ret.Results[0]).(*ast.CompositeLit); isLit &&
					isStringSlice(rs.pass.Info.TypeOf(lit)) {
					report(lit, len(lit.Elts), "returned by the row renderer")
				}
				return true
			})
		}
		return true
	})
}

func (rs *rowsinkChecker) checkFingerprintFormats(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(rs.pass.Info, call)
		if fn == nil || calleePkgPath(fn) != "fmt" || !strings.HasPrefix(fn.Name(), "Sprint") {
			return true
		}
		if len(call.Args) > 0 && fn.Name() == "Sprintf" && !isConstExpr(rs.pass, call.Args[0]) {
			rs.pass.Reportf(call.Args[0].Pos(),
				"Fingerprint format string is not a constant; a runtime-built format destabilizes journal/merge compatibility checks")
		}
		return true
	})
}

// checkRecordLits enforces constant Type tags on journal/merge record
// structs (types whose name ends in "Record").
func (rs *rowsinkChecker) checkRecordLits(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := rs.pass.Info.TypeOf(lit)
		if t == nil {
			return true
		}
		named, ok := t.(*types.Named)
		if !ok || !strings.HasSuffix(named.Obj().Name(), "Record") {
			return true
		}
		if rs.pass.InTestFile(lit.Pos()) {
			return true
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Type" {
				continue
			}
			if !isConstExpr(rs.pass, kv.Value) {
				rs.pass.Reportf(kv.Value.Pos(),
					"%s.Type is not a compile-time constant; record type tags are schema and must be constants", named.Obj().Name())
			}
		}
		return true
	})
}

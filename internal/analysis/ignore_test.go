package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreDirectivesWellFormed walks the whole module and checks
// every //mediavet:ignore in tree: it must name a real analyzer and
// carry a non-empty justification. This keeps suppressions honest —
// an ignore with no reason is indistinguishable from a silenced bug.
func TestIgnoreDirectivesWellFormed(t *testing.T) {
	valid := map[string]bool{}
	for _, a := range All() {
		valid[a.Name] = true
	}

	root := filepath.Join("..", "..")
	count := 0
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == ".cache" || name == "testdata" || name == "bin" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				count++
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignoreDirective))
				if len(fields) == 0 {
					t.Errorf("%s:%d: //mediavet:ignore names no analyzer", path, pos.Line)
					continue
				}
				if !valid[fields[0]] {
					t.Errorf("%s:%d: //mediavet:ignore names unknown analyzer %q", path, pos.Line, fields[0])
				}
				if len(fields) < 2 {
					t.Errorf("%s:%d: //mediavet:ignore %s has no justification", path, pos.Line, fields[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("walked the module without seeing a single //mediavet:ignore; wrong root?")
	}
	t.Logf("checked %d //mediavet:ignore directives", count)
}

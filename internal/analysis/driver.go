package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Finding is a diagnostic that survived suppression, with its
// position resolved for printing.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// A Result summarises one standalone run.
type Result struct {
	Findings   []Finding
	Suppressed int // diagnostics silenced by //mediavet:ignore
	Packages   int
	CacheHits  int
}

// A Runner drives the analyzers over a module tree (standalone mode;
// the vettool path lives in unitchecker.go).
type Runner struct {
	Dir       string   // module directory; "" means current
	Patterns  []string // package patterns; default ./...
	Analyzers []*Analyzer
	FactsDir  string    // optional cache directory; "" disables caching
	Log       io.Writer // verbose progress; nil disables
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// cacheEntry is what the facts-dir stores per package: the key it was
// computed under, the package's exported facts, suppressed-diagnostic
// count, and the findings to replay on a hit.
type cacheEntry struct {
	Key        string    `json:"key"`
	Facts      *Facts    `json:"facts"`
	Suppressed int       `json:"suppressed"`
	Findings   []Finding `json:"findings"`
}

// Run analyzes the requested packages in dependency order, threading
// hotpath facts from imports to importers, applying //mediavet:ignore
// suppression, and reporting stale or malformed ignore directives as
// findings of the pseudo-analyzer "mediavet".
func (r *Runner) Run() (*Result, error) {
	patterns := r.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	module, exports, err := loadModulePackages(r.Dir, patterns)
	if err != nil {
		return nil, err
	}
	loader := NewLoader(exports, nil)
	facts := NewFacts()
	res := &Result{Packages: len(module)}

	for _, lp := range module {
		pkgPath := lp.ImportPath
		key := r.cacheKey(lp, exports)
		if ent := r.readCache(pkgPath, key); ent != nil {
			facts.Merge(ent.Facts)
			res.Findings = append(res.Findings, ent.Findings...)
			res.Suppressed += ent.Suppressed
			res.CacheHits++
			r.logf("mediavet: %s (cached, %d findings)", pkgPath, len(ent.Findings))
			continue
		}
		pkg, err := loader.Check(pkgPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		ent, err := analyzePackage(pkg, loader.Fset, r.Analyzers, facts)
		if err != nil {
			return nil, err
		}
		ent.Key = key
		facts.Merge(ent.Facts)
		res.Findings = append(res.Findings, ent.Findings...)
		res.Suppressed += ent.Suppressed
		r.logf("mediavet: %s (%d findings, %d suppressed)", pkgPath, len(ent.Findings), ent.Suppressed)
		r.writeCache(pkgPath, ent)
	}
	sortFindings(res.Findings)
	return res, nil
}

// analyzePackage runs every analyzer over one type-checked package.
// depFacts holds facts from already-analyzed dependencies; the
// package's own annotations are merged in before analyzers run. The
// returned entry's Facts contains only this package's own annotations
// (what it exports to dependents).
func analyzePackage(pkg *Package, fset *token.FileSet, analyzers []*Analyzer, depFacts *Facts) (*cacheEntry, error) {
	own := CollectHotpathFacts(pkg.Path, pkg.Files)
	merged := NewFacts()
	merged.Merge(depFacts)
	merged.Merge(own)

	sup := newSuppressor(fset, pkg.Files)
	ent := &cacheEntry{Facts: own}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			PkgPath:  pkg.Path,
			Info:     pkg.Info,
			Facts:    merged,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if sup.suppressed(a.Name, d.Pos) {
				ent.Suppressed++
				continue
			}
			p := fset.Position(d.Pos)
			ent.Findings = append(ent.Findings, Finding{
				Analyzer: a.Name, File: p.Filename, Line: p.Line, Col: p.Column, Message: d.Message,
			})
		}
	}
	stale, malformed := sup.unused()
	for _, ig := range malformed {
		ent.Findings = append(ent.Findings, Finding{
			Analyzer: "mediavet", File: ig.File, Line: ig.Line, Col: 1,
			Message: fmt.Sprintf("malformed //mediavet:ignore directive: %s", ig.Malformed),
		})
	}
	for _, ig := range stale {
		if !knownAnalyzer(analyzers, ig.Analyzer) {
			ent.Findings = append(ent.Findings, Finding{
				Analyzer: "mediavet", File: ig.File, Line: ig.Line, Col: 1,
				Message: fmt.Sprintf("//mediavet:ignore names unknown analyzer %q", ig.Analyzer),
			})
			continue
		}
		ent.Findings = append(ent.Findings, Finding{
			Analyzer: "mediavet", File: ig.File, Line: ig.Line, Col: 1,
			Message: fmt.Sprintf("stale //mediavet:ignore %s (%s): no diagnostic here to suppress", ig.Analyzer, ig.Reason),
		})
	}
	return ent, nil
}

func knownAnalyzer(analyzers []*Analyzer, name string) bool {
	for _, a := range analyzers {
		if a.Name == name {
			return true
		}
	}
	return false
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Message < b.Message
	})
}

// cacheKey fingerprints everything a package's result depends on: the
// analyzer suite version, its own source bytes, and the export data
// paths of its dependencies (go's build cache makes those paths
// content-addressed, so a dep change changes the key).
func (r *Runner) cacheKey(lp *listedPackage, exports map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "version %s\n", Version)
	for _, name := range lp.GoFiles {
		path := filepath.Join(lp.Dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(h, "unreadable %s\n", path)
			continue
		}
		fmt.Fprintf(h, "file %s %d\n", name, len(data))
		h.Write(data)
	}
	deps := append([]string(nil), lp.Deps...)
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintf(h, "dep %s %s\n", d, exports[d])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (r *Runner) cachePath(pkgPath string) string {
	if r.FactsDir == "" {
		return ""
	}
	name := strings.NewReplacer("/", "__", " ", "_").Replace(pkgPath) + ".json"
	return filepath.Join(r.FactsDir, name)
}

func (r *Runner) readCache(pkgPath, key string) *cacheEntry {
	path := r.cachePath(pkgPath)
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	ent := new(cacheEntry)
	if json.Unmarshal(data, ent) != nil || ent.Key != key {
		return nil
	}
	if ent.Facts == nil {
		ent.Facts = NewFacts()
	}
	return ent
}

func (r *Runner) writeCache(pkgPath string, ent *cacheEntry) {
	path := r.cachePath(pkgPath)
	if path == "" {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	data, err := json.Marshal(ent)
	if err != nil {
		return
	}
	_ = os.WriteFile(path, data, 0o644)
}

package analysis

import "testing"

func TestDeterminismAnalyzer(t *testing.T) {
	runTestdata(t, Determinism, "determinism", ModulePath+"/internal/sim")
}

func TestDeterminismLoadCallGraph(t *testing.T) {
	runTestdata(t, Determinism, "determinism_load", ModulePath+"/internal/load")
}

func TestDeterminismSkipsUnscopedPackages(t *testing.T) {
	// The same fixture type-checked under a non-deterministic package
	// path must produce zero findings: scoping is the contract.
	loader := NewLoader(stdlibExports(t, []string{"math/rand", "sort", "time"}), nil)
	pkg, err := loader.Check(ModulePath+"/internal/par", "testdata/determinism", []string{"determinism.go"})
	if err != nil {
		t.Fatal(err)
	}
	ent, err := analyzePackage(pkg, loader.Fset, []*Analyzer{Determinism}, NewFacts())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ent.Findings {
		if f.Analyzer == Determinism.Name {
			t.Errorf("unexpected finding outside deterministic scope: %s", f)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath turns the AllocsPerRun regression tests into prevention:
// any function annotated //mediavet:hotpath is checked for the
// allocation-causing constructs those tests exist to catch. The
// annotation is also a contract edge — a hot function may only call
// module functions that are themselves annotated, so the zero-alloc
// property is closed under the static call graph.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid allocation-causing constructs (closures, interface " +
		"conversions, fmt, string concat, unsized append, calls to " +
		"unannotated module functions) in //mediavet:hotpath functions",
	Run: runHotpath,
}

func runHotpath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathDecl(fd) || pass.InTestFile(fd.Pos()) {
				continue
			}
			h := &hotChecker{pass: pass, fn: fd}
			h.prescan(fd.Body)
			h.check(fd.Body)
		}
	}
	return nil
}

type hotChecker struct {
	pass *Pass
	fn   *ast.FuncDecl
	// presized holds locals created with 3-arg make: appending to them
	// is the sanctioned pattern because capacity was budgeted up front.
	presized map[types.Object]bool
	// callFuns marks expressions in call-function position, so method
	// calls are distinguished from allocation-causing method values.
	callFuns map[ast.Expr]bool
	// panicRanges are the source extents of panic(...) arguments —
	// cold by definition, so fmt et al. are tolerated inside them.
	panicRanges [][2]token.Pos
}

func (h *hotChecker) prescan(body *ast.BlockStmt) {
	h.presized = map[types.Object]bool{}
	h.callFuns = map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		h.callFuns[ast.Unparen(call.Fun)] = true
		if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID {
			if b, isB := h.pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
				h.panicRanges = append(h.panicRanges, [2]token.Pos{call.Pos(), call.End()})
			}
		}
		return true
	})
	// 3-arg make assignments.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" || len(call.Args) != 3 {
				continue
			}
			if b, isB := h.pass.Info.Uses[id].(*types.Builtin); !isB || b.Name() != "make" {
				continue
			}
			if lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := h.pass.Info.Defs[lhs]; obj != nil {
					h.presized[obj] = true
				} else if obj := h.pass.Info.Uses[lhs]; obj != nil {
					h.presized[obj] = true
				}
			}
		}
		return true
	})
}

func (h *hotChecker) inPanicArg(pos token.Pos) bool {
	for _, r := range h.panicRanges {
		if r[0] <= pos && pos < r[1] {
			return true
		}
	}
	return false
}

func (h *hotChecker) check(body *ast.BlockStmt) {
	pass := h.pass
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if caps := capturedVars(pass, h.fn, x); len(caps) > 0 {
				pass.Reportf(x.Pos(),
					"closure captures %s by reference and escapes to the heap; hoist the state or pass it as a parameter", caps[0])
			}
			return true // closure body runs on the hot path too
		case *ast.CallExpr:
			h.checkCall(x)
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if i < len(x.Lhs) {
					h.checkIfaceConv(rhs, pass.Info.TypeOf(x.Lhs[i]))
				}
			}
			if x.Tok == token.ADD_ASSIGN && isStringType(pass.Info.TypeOf(x.Lhs[0])) {
				pass.Reportf(x.Pos(), "string += allocates a new string per call; use a pre-sized []byte or strconv.Append*")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(pass.Info.TypeOf(x)) &&
				!isConstExpr(pass, x) && !h.inPanicArg(x.Pos()) {
				pass.Reportf(x.Pos(), "string concatenation allocates; use a pre-sized []byte or strconv.Append*")
			}
		case *ast.ReturnStmt:
			h.checkReturn(x)
		case *ast.SelectorExpr:
			// A method value (passing x.Method as a callback)
			// allocates a bound closure each time.
			if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.MethodVal && !h.callFuns[x] {
				pass.Reportf(x.Pos(),
					"method value %s allocates a bound closure per use; restructure or hoist it", x.Sel.Name)
			}
		}
		return true
	})
}

func (h *hotChecker) checkCall(call *ast.CallExpr) {
	pass := h.pass
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := pass.Info.Uses[id].(*types.Builtin); isB {
			if b.Name() == "append" {
				h.checkAppend(call)
			}
			return // other builtins (len, cap, panic, copy, ...) are fine
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion T(x); interface targets surface via assignment/return checks
	}

	fn := staticCallee(pass.Info, call)
	if fn == nil {
		return // func value or interface dispatch: dynamic, assumed budgeted
	}
	pkgPath := calleePkgPath(fn)
	switch {
	case pkgPath == "fmt":
		if !h.inPanicArg(call.Pos()) {
			pass.Reportf(call.Pos(),
				"fmt.%s formats through reflection and allocates; use strconv or a pre-rendered string", fn.Name())
		}
	case isModulePath(pkgPath):
		if !pass.Facts.Hotpath[FuncKey(fn)] {
			pass.Reportf(call.Pos(),
				"call to %s which is not //mediavet:hotpath-annotated; annotate it (and keep it alloc-free) or move the call off the hot path", FuncKey(fn))
		}
	}

	// Interface-typed parameters force boxing of concrete args.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (!sig.Variadic() && i < params.Len()):
			pt = params.At(i).Type()
		case sig.Variadic() && call.Ellipsis == token.NoPos && params.Len() > 0:
			if sl, isSl := params.At(params.Len() - 1).Type().(*types.Slice); isSl {
				pt = sl.Elem()
			}
		case params.Len() > 0:
			pt = params.At(params.Len() - 1).Type()
		}
		h.checkIfaceConv(arg, pt)
	}
}

// checkAppend flags append whose destination is a local slice not
// created with 3-arg make: growth reallocates on the hot path.
// Parameters, struct fields, and package vars are the caller's (or an
// amortized buffer's) budget and left to the AllocsPerRun tests.
func (h *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := h.pass.Info.Uses[dst]
	if obj == nil {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return
	}
	if obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
		return // package-level var
	}
	if h.fn.Body == nil || obj.Pos() < h.fn.Body.Pos() || obj.Pos() >= h.fn.End() {
		return // parameter, named result, or declared outside this function
	}
	if !h.presized[obj] {
		h.pass.Reportf(call.Pos(),
			"append to %s, which was not pre-sized with a 3-arg make; growth reallocates on the hot path", dst.Name)
	}
}

func (h *hotChecker) checkReturn(ret *ast.ReturnStmt) {
	obj := h.pass.Info.Defs[h.fn.Name]
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	results := sig.Results()
	if results.Len() != len(ret.Results) {
		return // naked return or single multi-value call
	}
	for i, r := range ret.Results {
		h.checkIfaceConv(r, results.At(i).Type())
	}
}

// checkIfaceConv reports when expr (a concrete, non-pointer-shaped,
// non-constant value) is implicitly converted to an interface target:
// that boxes the value on the heap.
func (h *hotChecker) checkIfaceConv(expr ast.Expr, target types.Type) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	tv, ok := h.pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil {
		return // constants convert via static runtime symbols
	}
	src := tv.Type
	if _, isTuple := src.(*types.Tuple); isTuple {
		return // multi-value rhs (call, comma-ok); not a conversion
	}
	if types.IsInterface(src) {
		return
	}
	if b, isB := src.Underlying().(*types.Basic); isB && b.Kind() == types.UntypedNil {
		return
	}
	if pointerShaped(src) {
		return // pointers, chans, maps, funcs box without allocating
	}
	if h.inPanicArg(expr.Pos()) {
		return
	}
	h.pass.Reportf(expr.Pos(),
		"implicit conversion of %s to %s boxes the value on the heap", src.String(), target.String())
}

func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// capturedVars lists variables referenced inside lit but declared in
// the enclosing function outside it — the captures that force the
// closure (and captured vars) to the heap.
func capturedVars(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, isVar := pass.Info.Uses[id].(*types.Var)
		if !isVar || seen[obj] || obj.IsField() {
			return true
		}
		// Declared inside the enclosing function but outside the literal.
		if obj.Pos() >= fn.Pos() && obj.Pos() < fn.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			seen[obj] = true
			names = append(names, obj.Name())
		}
		return true
	})
	return names
}

package analysis

import "testing"

func TestShardlockAnalyzer(t *testing.T) {
	runTestdata(t, Shardlock, "shardlock", ModulePath+"/internal/proxy")
}

func TestShardlockScopedToProxy(t *testing.T) {
	// The identical fixture outside internal/proxy must stay silent.
	loader := NewLoader(stdlibExports(t, []string{"net/http", "sync"}), nil)
	pkg, err := loader.Check(ModulePath+"/internal/core", "testdata/shardlock", []string{"shardlock.go"})
	if err != nil {
		t.Fatal(err)
	}
	ent, err := analyzePackage(pkg, loader.Fset, []*Analyzer{Shardlock}, NewFacts())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range ent.Findings {
		if f.Analyzer == Shardlock.Name {
			t.Errorf("unexpected finding outside internal/proxy: %s", f)
		}
	}
}

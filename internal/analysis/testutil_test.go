package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The test harness mirrors x/tools' analysistest: each testdata/<name>
// directory is one synthetic package, type-checked under a caller
// chosen import path (so package-scoped analyzers see the paths they
// guard), and every `// want "regexp"` comment asserts a diagnostic on
// its line. Diagnostics without a want, and wants without a
// diagnostic, both fail the test. Suppression via //mediavet:ignore is
// applied before matching, so the suites also cover the directive
// machinery.

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantSpec struct {
	re   *regexp.Regexp
	line int
	hit  bool
}

// stdlibExports runs `go list -export` over the named stdlib imports
// (plus transitive deps) and returns the export-data map.
func stdlibExports(t *testing.T, imports []string) map[string]string {
	t.Helper()
	if len(imports) == 0 {
		return map[string]string{}
	}
	pkgs, err := goList(".", imports)
	if err != nil {
		t.Fatalf("listing stdlib deps: %v", err)
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

// runTestdata analyzes testdata/<dir> as package pkgPath with one
// analyzer and checks findings against the // want comments.
func runTestdata(t *testing.T, a *Analyzer, dir, pkgPath string) {
	t.Helper()
	root := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading %s: %v", root, err)
	}
	var goFiles []string
	importSet := map[string]bool{}
	impFset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		goFiles = append(goFiles, e.Name())
		f, err := parser.ParseFile(impFset, filepath.Join(root, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	sort.Strings(goFiles)
	var imports []string
	for imp := range importSet {
		imports = append(imports, imp)
	}
	sort.Strings(imports)

	loader := NewLoader(stdlibExports(t, imports), nil)
	pkg, err := loader.Check(pkgPath, root, goFiles)
	if err != nil {
		t.Fatalf("type-checking %s: %v", root, err)
	}

	ent, err := analyzePackage(pkg, loader.Fset, []*Analyzer{a}, NewFacts())
	if err != nil {
		t.Fatal(err)
	}

	// Collect want expectations per file:line.
	wants := map[string][]*wantSpec{} // file base name -> specs
	for _, name := range goFiles {
		path := filepath.Join(root, name)
		data, _ := os.ReadFile(path)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(arg[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				wants[name] = append(wants[name], &wantSpec{re: re, line: i + 1})
			}
		}
	}

	for _, f := range ent.Findings {
		base := filepath.Base(f.File)
		matched := false
		for _, w := range wants[base] {
			if w.line == f.Line && !w.hit && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding %s:%d:%d: %s: %s", base, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	for name, specs := range wants {
		for _, w := range specs {
			if !w.hit {
				t.Errorf("%s:%d: no finding matched want %q", name, w.line, w.re)
			}
		}
	}
}


package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader gives mediavet fully type-checked packages without
// depending on golang.org/x/tools: `go list -export -deps -json`
// compiles (or reuses from the build cache) export data for every
// dependency, and go/importer's gc importer reads that export data via
// a lookup function. This is the same information go vet hands a
// vettool in its .cfg file; standalone mode just derives it itself.

// listedPackage is the subset of `go list -json` output mediavet needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	Deps       []string
	Standard   bool
	Module     *struct {
		Path string
	}
	Incomplete bool
	Error      *struct {
		Err string
	}
}

// goList runs `go list -export -deps -json` for patterns in dir.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Imports,Deps,Standard,Module,Incomplete,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// A Loader type-checks packages against a map of export-data files.
type Loader struct {
	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	// importMap translates source-level import paths to the keys of
	// exports (go vet supplies one for vendoring/test variants).
	importMap map[string]string
	imp       types.Importer
}

// NewLoader builds a loader over the given export-data map. importMap
// may be nil.
func NewLoader(exports, importMap map[string]string) *Loader {
	l := &Loader{
		Fset:      token.NewFileSet(),
		exports:   exports,
		importMap: importMap,
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", l.lookup)
	return l
}

func (l *Loader) lookup(path string) (io.ReadCloser, error) {
	if mapped, ok := l.importMap[path]; ok {
		path = mapped
	}
	f, ok := l.exports[path]
	if !ok || f == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// A Package is one fully parsed and type-checked module package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Check parses and type-checks one package. goFiles are resolved
// relative to dir unless absolute. Files named *_test.go are parsed
// (so in-package test files don't break type checking when go vet
// hands us a test variant) but analyzers skip diagnostics in them.
func (l *Loader) Check(pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(l.Fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(error) {}, // collect-all; first error returned below
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", pkgPath, err)
	}
	return &Package{Path: pkgPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// loadModulePackages lists patterns in dir and returns (a) the module's
// own packages in dependency (topological) order and (b) the combined
// export map covering every dependency.
func loadModulePackages(dir string, patterns []string) ([]*listedPackage, map[string]string, error) {
	all, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := map[string]string{}
	byPath := map[string]*listedPackage{}
	var module []*listedPackage
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		byPath[p.ImportPath] = p
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.Standard && p.Module != nil && len(p.GoFiles) > 0 {
			module = append(module, p)
		}
	}
	sorted, err := topoSort(module, byPath)
	if err != nil {
		return nil, nil, err
	}
	return sorted, exports, nil
}

// topoSort orders module packages so every package comes after its
// module-internal imports, letting hotpath facts flow dep -> dependent.
func topoSort(module []*listedPackage, byPath map[string]*listedPackage) ([]*listedPackage, error) {
	inModule := map[string]bool{}
	for _, p := range module {
		inModule[p.ImportPath] = true
	}
	// Deterministic ordering independent of go list's output order.
	sort.Slice(module, func(i, j int) bool { return module[i].ImportPath < module[j].ImportPath })

	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := map[string]int{}
	var out []*listedPackage
	var visit func(p *listedPackage) error
	visit = func(p *listedPackage) error {
		switch state[p.ImportPath] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("import cycle through %s", p.ImportPath)
		}
		state[p.ImportPath] = grey
		for _, imp := range p.Imports {
			if inModule[imp] {
				if err := visit(byPath[imp]); err != nil {
					return err
				}
			}
		}
		state[p.ImportPath] = black
		out = append(out, p)
		return nil
	}
	for _, p := range module {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

package analysis

import "testing"

func TestHotpathAnalyzer(t *testing.T) {
	runTestdata(t, Hotpath, "hotpath", ModulePath+"/internal/core")
}

func TestHotpathFactsCrossPackage(t *testing.T) {
	// A dependency's //mediavet:hotpath annotations arrive via Facts;
	// calling an annotated cross-package function must not be flagged,
	// while an unannotated one is. Simulated by seeding facts by hand.
	facts := NewFacts()
	facts.Hotpath[ModulePath+"/internal/core.hotAnnotatedHelper"] = true
	if !facts.Hotpath[ModulePath+"/internal/core.hotAnnotatedHelper"] {
		t.Fatal("fact merge lost the annotation")
	}
	other := NewFacts()
	other.Merge(facts)
	if !other.Hotpath[ModulePath+"/internal/core.hotAnnotatedHelper"] {
		t.Fatal("Merge dropped a hotpath fact")
	}
}

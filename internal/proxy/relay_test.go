package proxy

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamcache/internal/core"
	"streamcache/internal/units"
)

// TestRelayRingBoundsMemory pins the tentpole's memory bound: no matter
// how large the transfer, the relay never holds more than the ring
// capacity, a reader left behind the window is told it was lapped, and
// a reader inside the window still gets exact bytes.
func TestRelayRingBoundsMemory(t *testing.T) {
	const ringBytes = relayRingSegments * segmentSize
	rl := newRelay(0, 0, nil)
	if !rl.attach() {
		t.Fatal("fresh relay refused attach")
	}
	defer rl.detach()

	const total = 4 << 20 // 4x the ring capacity
	data := Content(1, 0, total)
	const chunk = 32 * 1024
	for off := 0; off < total; off += chunk {
		rl.append(data[off : off+chunk])
		if got := rl.buffered(); got > ringBytes {
			t.Fatalf("relay holds %d bytes after %d appended, bound is %d", got, off+chunk, ringBytes)
		}
	}
	rl.finish(nil)
	if got := rl.buffered(); got != ringBytes {
		t.Fatalf("relay holds %d bytes at end, want a full ring %d", got, ringBytes)
	}

	// A reader that never consumed anything is now behind the window.
	buf := make([]byte, 8192)
	n, done, err := rl.next(context.Background(), 0, buf)
	if err != errRelayLapped || !done || n != 0 {
		t.Fatalf("lapped reader got (n=%d, done=%v, err=%v), want (0, true, errRelayLapped)", n, done, err)
	}

	// A reader inside the window reads the exact published bytes.
	off := rl.tailOffset()
	if off != total-ringBytes {
		t.Fatalf("tail = %d, want %d", off, total-ringBytes)
	}
	for off < total {
		n, _, err := rl.next(context.Background(), off, buf)
		if err != nil {
			t.Fatalf("in-window read at %d: %v", off, err)
		}
		if n == 0 {
			break
		}
		if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
			t.Fatalf("in-window read at %d returned wrong bytes", off)
		}
		off += int64(n)
	}
	if off != total {
		t.Fatalf("in-window reader stopped at %d, want %d", off, total)
	}
}

// TestRelayLockstepDeliversExactBytes runs a paced appender against a
// concurrent reader that never falls a full ring behind, and demands
// the reader observe the byte stream exactly — slot reuse and wrap
// arithmetic included (the transfer spans the ring many times over).
func TestRelayLockstepDeliversExactBytes(t *testing.T) {
	const start = 100 // nonzero start exercises the offset mapping
	const total = 3 << 20
	want := Content(2, start, total)

	rl := newRelay(start, 0, nil)
	if !rl.attach() {
		t.Fatal("attach refused")
	}
	defer rl.detach()

	var consumed atomic.Int64
	consumed.Store(start)
	go func() {
		const chunk = 7000 // deliberately unaligned with segmentSize
		for off := 0; off < total; {
			// Stay at most half a ring ahead of the reader so it is
			// never lapped.
			if int64(start+off)-consumed.Load() > relayRingSegments*segmentSize/2 {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			n := min(chunk, total-off)
			rl.append(want[off : off+n])
			off += n
		}
		rl.finish(nil)
	}()

	var got bytes.Buffer
	buf := make([]byte, 4096)
	off := int64(start)
	for {
		n, done, err := rl.next(context.Background(), off, buf)
		if err != nil {
			t.Fatalf("next at %d: %v", off, err)
		}
		if n > 0 {
			got.Write(buf[:n])
			off += int64(n)
			consumed.Store(off)
		}
		if done && n == 0 {
			break
		}
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("reader saw %d bytes, diverged from the %d appended", got.Len(), total)
	}
}

// stallFirstOrigin wraps an Origin, counts requests so tests can assert
// how many origin transfers a scenario cost, and stalls the FIRST
// response after stallAfter bytes until gate is closed. Holding the
// first transfer inside the ring window until the client is provably
// parked is what makes the lap test deterministic: without it, kernel
// socket buffers let the origin burst ahead and on GOMAXPROCS=1 the
// fetch goroutine can lap a client that has not yet been scheduled.
type stallFirstOrigin struct {
	inner      http.Handler
	requests   atomic.Int64
	stallAfter int64
	gate       chan struct{}
}

func (o *stallFirstOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if o.requests.Add(1) == 1 {
		w = &gatedResponseWriter{inner: w, stallAfter: o.stallAfter, gate: o.gate}
	}
	o.inner.ServeHTTP(w, r)
}

// gatedResponseWriter passes writes through until stallAfter bytes,
// then blocks each write until gate is closed.
type gatedResponseWriter struct {
	inner      http.ResponseWriter
	n          int64
	stallAfter int64
	gate       chan struct{}
}

func (w *gatedResponseWriter) Header() http.Header { return w.inner.Header() }
func (w *gatedResponseWriter) WriteHeader(c int)   { w.inner.WriteHeader(c) }
func (w *gatedResponseWriter) Write(p []byte) (int, error) {
	if w.n >= w.stallAfter {
		<-w.gate
	}
	w.n += int64(len(p))
	return w.inner.Write(p)
}

// gatedDigestWriter is an http.ResponseWriter that digests everything
// written to it but blocks after stallAfter bytes until gate is closed,
// closing parked (if set) just before the first block so the test knows
// the client is committed. Driving ServeHTTP with it makes a lap
// deterministic: no kernel socket buffer absorbs bytes behind the
// test's back.
type gatedDigestWriter struct {
	h          http.Header
	sum        hash.Hash
	n          int64
	stallAfter int64
	gate       chan struct{}
	parked     chan struct{}
}

func (w *gatedDigestWriter) Header() http.Header { return w.h }
func (w *gatedDigestWriter) WriteHeader(int)     {}
func (w *gatedDigestWriter) Write(p []byte) (int, error) {
	if w.n >= w.stallAfter {
		if w.parked != nil {
			close(w.parked)
			w.parked = nil
		}
		<-w.gate
	}
	w.sum.Write(p)
	w.n += int64(len(p))
	return len(p), nil
}

// TestSlowReaderDemotedStillCorrect is the end-to-end bound: a client
// that stalls while the origin fetch races ahead gets lapped by the
// ring, is demoted to a private origin fetch, and still receives the
// complete, byte-correct object. The demotion costs exactly one extra
// origin request; the ring bound itself is pinned by
// TestRelayRingBoundsMemory.
func TestSlowReaderDemotedStillCorrect(t *testing.T) {
	const size = 4 * units.MB // 4x the ring capacity
	catalog, err := NewCatalog([]Meta{{ID: 1, Size: size, Rate: units.KBps(512), Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	origin, err := NewOrigin(catalog, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The shared fetch is held after 256 KB — well inside the 1 MiB ring
	// — until the client is provably parked, so the client can never be
	// lapped before its first read no matter how goroutines schedule.
	counting := &stallFirstOrigin{
		inner:      origin,
		stallAfter: 256 * units.KB,
		gate:       make(chan struct{}),
	}
	releaseOrigin := sync.OnceFunc(func() { close(counting.gate) })
	defer releaseOrigin()
	originSrv := httptest.NewServer(counting)
	defer originSrv.Close()

	// A tiny cache keeps the stored prefix negligible: essentially the
	// whole object flows through the relay.
	px, err := New(Config{
		Catalog:    catalog,
		OriginURL:  originSrv.URL,
		CacheBytes: 64 * units.KB,
		NewPolicy:  core.NewIB,
	})
	if err != nil {
		t.Fatal(err)
	}

	// stallAfter 0: the client parks on its very first body write and
	// signals parked, so there is no window in which it must keep pace
	// with the fetcher. Both releases are deferred so a failing
	// assertion below can never strand the serve goroutine (and the
	// origin server's Close) behind an unopened gate.
	parked := make(chan struct{})
	w := &gatedDigestWriter{
		h:          make(http.Header),
		sum:        sha256.New(),
		stallAfter: 0,
		gate:       make(chan struct{}),
		parked:     parked,
	}
	releaseGate := sync.OnceFunc(func() { close(w.gate) })
	defer releaseGate()
	done := make(chan struct{})
	go func() {
		defer close(done)
		px.ServeHTTP(w, httptest.NewRequest("GET", "/objects/1", nil))
	}()

	// Handshake: wait until the client has copied its first chunk out of
	// the ring and parked, THEN let the origin stream the rest.
	select {
	case <-parked:
	case <-time.After(30 * time.Second):
		t.Fatal("client never parked on its first write")
	}
	releaseOrigin()

	// The parked client stays attached, so the shared fetch runs to
	// completion regardless — wait for it, by which time the ring has
	// wrapped far past the client's near-zero offset.
	deadline := time.Now().Add(30 * time.Second)
	for px.Snapshot().BytesFetched < size {
		if time.Now().After(deadline) {
			t.Fatalf("origin fetch did not complete; bytesFetched=%d", px.Snapshot().BytesFetched)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Release the client: its next relay read discovers the lap and the
	// stream must continue seamlessly through relayDirect.
	releaseGate()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("request did not finish after demotion")
	}

	if w.n != size {
		t.Fatalf("client received %d bytes, want %d", w.n, size)
	}
	if got, want := hex.EncodeToString(w.sum.Sum(nil)), ContentSHA256(1, size); got != want {
		t.Fatalf("content digest mismatch after demotion:\n got %s\nwant %s", got, want)
	}
	px.Quiesce()
	// The shared fetch plus the demoted reader's private refetch. (If the
	// reader was never lapped this would be 1 and the test proved
	// nothing, so pin exactly 2.)
	if got := counting.requests.Load(); got != 2 {
		t.Fatalf("origin saw %d requests, want 2 (shared fetch + demotion refetch)", got)
	}
}

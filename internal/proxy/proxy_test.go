package proxy

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"streamcache/internal/core"
	"streamcache/internal/units"
)

func testCatalog(t *testing.T) *Catalog {
	t.Helper()
	// Small objects so rate-limited tests stay fast: 256 KB at 512 KB/s
	// playback (0.5 s streams).
	objects := []Meta{
		{ID: 1, Size: 256 * units.KB, Rate: units.KBps(512), Value: 5},
		{ID: 2, Size: 128 * units.KB, Rate: units.KBps(512), Value: 2},
		{ID: 3, Size: 64 * units.KB, Rate: units.KBps(256), Value: 9},
	}
	c, err := NewCatalog(objects)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCatalogValidation(t *testing.T) {
	if _, err := NewCatalog([]Meta{{ID: 1, Size: 0, Rate: 1}}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewCatalog([]Meta{{ID: 1, Size: 1, Rate: 0}}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewCatalog([]Meta{{ID: 1, Size: 1, Rate: 1}, {ID: 1, Size: 2, Rate: 1}}); err == nil {
		t.Error("duplicate ID accepted")
	}
	// The cache's dense ID tables require small non-negative IDs; a bad
	// ID must fail at catalog construction, not panic on first request.
	if _, err := NewCatalog([]Meta{{ID: -1, Size: 1, Rate: 1}}); err == nil {
		t.Error("negative ID accepted")
	}
	if _, err := NewCatalog([]Meta{{ID: 1 << 31, Size: 1, Rate: 1}}); err == nil {
		t.Error("ID above 2^31 accepted")
	}
}

func TestCatalogDerivesDuration(t *testing.T) {
	c, err := NewCatalog([]Meta{{ID: 7, Size: 1000, Rate: 100}})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := c.Get(7)
	if !ok {
		t.Fatal("object 7 missing")
	}
	if m.Duration != 10 {
		t.Errorf("Duration = %v, want 10", m.Duration)
	}
	if got := c.Len(); got != 1 {
		t.Errorf("Len = %d, want 1", got)
	}
	if ids := c.IDs(); len(ids) != 1 || ids[0] != 7 {
		t.Errorf("IDs = %v, want [7]", ids)
	}
}

func TestContentDeterministic(t *testing.T) {
	a := Content(5, 0, 10000)
	b := Content(5, 0, 10000)
	if !bytes.Equal(a, b) {
		t.Error("Content not deterministic")
	}
	other := Content(6, 0, 10000)
	if bytes.Equal(a, other) {
		t.Error("different objects produced identical content")
	}
}

func TestContentRangeConsistency(t *testing.T) {
	// Content(id, off, n) must equal the corresponding slice of the full
	// object regardless of block alignment.
	full := Content(9, 0, 20000)
	for _, tt := range []struct{ off, n int64 }{
		{0, 1}, {1, 4095}, {4095, 2}, {4096, 4096}, {5000, 10000}, {19999, 1},
	} {
		part := Content(9, tt.off, tt.n)
		if !bytes.Equal(part, full[tt.off:tt.off+tt.n]) {
			t.Errorf("Content(9, %d, %d) differs from full slice", tt.off, tt.n)
		}
	}
	if Content(9, 0, 0) != nil {
		t.Error("zero-length content not nil")
	}
}

func TestParseObjectPath(t *testing.T) {
	tests := []struct {
		path   string
		wantID int
		wantOK bool
	}{
		{"/objects/12", 12, true},
		{"/objects/0", 0, true},
		{"/objects/-1", 0, false},
		{"/objects/abc", 0, false},
		{"/other/12", 0, false},
		{"/objects/", 0, false},
	}
	for _, tt := range tests {
		id, ok := parseObjectPath(tt.path)
		if id != tt.wantID || ok != tt.wantOK {
			t.Errorf("parseObjectPath(%q) = (%d, %v), want (%d, %v)", tt.path, id, ok, tt.wantID, tt.wantOK)
		}
	}
}

func TestParseRangeStart(t *testing.T) {
	tests := []struct {
		header  string
		want    int64
		wantErr bool
	}{
		{"", 0, false},
		{"bytes=0-", 0, false},
		{"bytes=100-", 100, false},
		{"bytes=100-200", 0, true},
		{"bytes=-100", 0, true},
		{"chunks=1-", 0, true},
		{"bytes=99999-", 0, true}, // beyond size
	}
	for _, tt := range tests {
		got, err := parseRangeStart(tt.header, 1000)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseRangeStart(%q) err = %v, wantErr %v", tt.header, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseRangeStart(%q) = %d, want %d", tt.header, got, tt.want)
		}
	}
}

func TestPrefixStoreBasics(t *testing.T) {
	s := NewPrefixStore()
	if s.Prefix(1) != nil || s.Len(1) != 0 {
		t.Error("empty store not empty")
	}
	n := s.AppendAt(1, 0, []byte("hello"), 10)
	if n != 5 || s.Len(1) != 5 {
		t.Errorf("AppendAt = %d, Len = %d; want 5, 5", n, s.Len(1))
	}
	// Limit clips the append.
	n = s.AppendAt(1, 5, []byte("worldworld"), 8)
	if n != 3 || s.Len(1) != 8 {
		t.Errorf("clipped AppendAt = %d, Len = %d; want 3, 8", n, s.Len(1))
	}
	if got := string(s.Prefix(1)); got != "hellowor" {
		t.Errorf("Prefix = %q, want \"hellowor\"", got)
	}
	s.Truncate(1, 5)
	if got := string(s.Prefix(1)); got != "hello" {
		t.Errorf("after Truncate Prefix = %q, want \"hello\"", got)
	}
	s.Truncate(1, 0)
	if s.Prefix(1) != nil {
		t.Error("Truncate(0) did not delete")
	}
	s.Truncate(99, 5) // no-op on unknown id
	if s.TotalBytes() != 0 {
		t.Errorf("TotalBytes = %d, want 0", s.TotalBytes())
	}
}

func TestPrefixStoreAppendAtOverlap(t *testing.T) {
	s := NewPrefixStore()
	s.AppendAt(1, 0, []byte("hello"), 100)
	// Overlapping write: first 5 bytes already present, only " world"
	// is appended.
	n := s.AppendAt(1, 3, []byte("lo world"), 100)
	if n != 6 {
		t.Errorf("overlap AppendAt = %d, want 6", n)
	}
	if got := string(s.Prefix(1)); got != "hello world" {
		t.Errorf("Prefix = %q, want \"hello world\"", got)
	}
	// Fully-contained write is a no-op.
	if n := s.AppendAt(1, 2, []byte("llo"), 100); n != 0 {
		t.Errorf("contained AppendAt = %d, want 0", n)
	}
	// A gap write is dropped.
	if n := s.AppendAt(1, 50, []byte("xyz"), 100); n != 0 {
		t.Errorf("gap AppendAt = %d, want 0", n)
	}
	if got := string(s.Prefix(1)); got != "hello world" {
		t.Errorf("Prefix corrupted: %q", got)
	}
}

func TestPrefixStoreCopies(t *testing.T) {
	s := NewPrefixStore()
	s.AppendAt(1, 0, []byte("abc"), 10)
	p := s.Prefix(1)
	p[0] = 'z'
	if got := string(s.Prefix(1)); got != "abc" {
		t.Errorf("store mutated through returned slice: %q", got)
	}
}

func TestRateLimitedWriterThrottles(t *testing.T) {
	var buf bytes.Buffer
	w := newRateLimitedWriter(&buf, 64*1024) // 64 KB/s
	var slept time.Duration
	now := time.Unix(0, 0)
	w.now = func() time.Time { return now }
	w.sleep = func(d time.Duration) {
		slept += d
		now = now.Add(d)
	}
	data := make([]byte, 64*1024)
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	// 64 KB at 64 KB/s with an 8 KB initial bucket: ~0.875 s of sleeping.
	if slept < 700*time.Millisecond || slept > 1100*time.Millisecond {
		t.Errorf("slept %v for 64 KB at 64 KB/s, want ~0.875s", slept)
	}
	if buf.Len() != len(data) {
		t.Errorf("wrote %d bytes, want %d", buf.Len(), len(data))
	}
}

func TestRateLimitedWriterUnlimited(t *testing.T) {
	var buf bytes.Buffer
	w := newRateLimitedWriter(&buf, 0)
	w.sleep = func(time.Duration) { t.Error("unlimited writer slept") }
	if _, err := w.Write(make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 1<<20 {
		t.Errorf("wrote %d, want %d", buf.Len(), 1<<20)
	}
}

func TestNewOriginValidation(t *testing.T) {
	if _, err := NewOrigin(nil, 0); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := NewOrigin(testCatalog(t), -1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestOriginServesFullObject(t *testing.T) {
	origin, err := NewOrigin(testCatalog(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(origin)
	defer srv.Close()

	res, err := Fetch(srv.URL + "/objects/2")
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 128*units.KB {
		t.Errorf("fetched %d bytes, want %d", res.Bytes, 128*units.KB)
	}
	if want := ContentSHA256(2, 128*units.KB); res.SHA256 != want {
		t.Errorf("digest mismatch: got %s, want %s", res.SHA256, want)
	}
}

func TestOriginServesRange(t *testing.T) {
	origin, err := NewOrigin(testCatalog(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(origin)
	defer srv.Close()

	req := httptest.NewRequest("GET", "/objects/3", nil)
	req.Header.Set("Range", "bytes=1000-")
	rec := httptest.NewRecorder()
	origin.ServeHTTP(rec, req)
	if rec.Code != 206 {
		t.Fatalf("status = %d, want 206", rec.Code)
	}
	want := Content(3, 1000, 64*units.KB-1000)
	if !bytes.Equal(rec.Body.Bytes(), want) {
		t.Error("range response content mismatch")
	}
}

func TestOriginErrors(t *testing.T) {
	origin, err := NewOrigin(testCatalog(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name     string
		method   string
		path     string
		rangeHdr string
		want     int
	}{
		{name: "unknown object", method: "GET", path: "/objects/404", want: 404},
		{name: "bad path", method: "GET", path: "/nope", want: 404},
		{name: "bad method", method: "POST", path: "/objects/1", want: 405},
		{name: "bad range", method: "GET", path: "/objects/1", rangeHdr: "bytes=5-10", want: 416},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req := httptest.NewRequest(tt.method, tt.path, nil)
			if tt.rangeHdr != "" {
				req.Header.Set("Range", tt.rangeHdr)
			}
			rec := httptest.NewRecorder()
			origin.ServeHTTP(rec, req)
			if rec.Code != tt.want {
				t.Errorf("status = %d, want %d", rec.Code, tt.want)
			}
		})
	}
}

func TestNewProxyValidation(t *testing.T) {
	cache, err := core.New(units.GBytes(1), core.NewPB())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProxy(nil, cache, "http://x"); err == nil {
		t.Error("nil catalog accepted")
	}
	if _, err := NewProxy(testCatalog(t), nil, "http://x"); err == nil {
		t.Error("nil cache accepted")
	}
	if _, err := NewProxy(testCatalog(t), cache, ""); err == nil {
		t.Error("empty origin URL accepted")
	}
}

func TestStartupDelayComputation(t *testing.T) {
	r := &FetchResult{samples: []arrivalSample{
		{t: 1 * time.Second, cum: 100},
		{t: 2 * time.Second, cum: 200},
		{t: 3 * time.Second, cum: 300},
	}}
	// Playback at 100 B/s: byte 100 needed at w+1s, arrives at 1s ->
	// w=0 works for every sample.
	if got := r.StartupDelay(100); got != 0 {
		t.Errorf("StartupDelay(100) = %v, want 0", got)
	}
	// Playback at 200 B/s: byte 200 needed at w+1s but arrives at 2s ->
	// w >= 1s; byte 300 needs w >= 1.5s.
	if got := r.StartupDelay(200); got != 1500*time.Millisecond {
		t.Errorf("StartupDelay(200) = %v, want 1.5s", got)
	}
	if got := r.StartupDelay(0); got != 0 {
		t.Errorf("StartupDelay(0) = %v, want 0", got)
	}
}

package proxy

import (
	"fmt"
	"io"
	"math"
	"time"
)

// rateLimitedWriter throttles writes to the given rate (bytes/s) with a
// token bucket, simulating a constrained cache-origin path. A zero or
// negative rate means unlimited.
type rateLimitedWriter struct {
	w      io.Writer
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
	sleep  func(time.Duration)
}

// newRateLimitedWriter wraps w with a token bucket of the given rate and
// a burst of 1/8 second's worth of bytes (at least 4 KB).
func newRateLimitedWriter(w io.Writer, rate float64) *rateLimitedWriter {
	burst := rate / 8
	if burst < 4096 {
		burst = 4096
	}
	return &rateLimitedWriter{
		w:      w,
		rate:   rate,
		burst:  burst,
		tokens: burst,
		now:    time.Now,
		sleep:  time.Sleep,
	}
}

// Write throttles then forwards p, chunk by chunk.
func (r *rateLimitedWriter) Write(p []byte) (int, error) {
	if r.rate <= 0 {
		return r.w.Write(p)
	}
	written := 0
	for written < len(p) {
		chunk := len(p) - written
		if max := int(r.burst); chunk > max {
			chunk = max
		}
		r.waitFor(float64(chunk))
		n, err := r.w.Write(p[written : written+chunk])
		written += n
		if err != nil {
			return written, fmt.Errorf("proxy: rate-limited write: %w", err)
		}
		if f, ok := r.w.(interface{ Flush() }); ok {
			f.Flush()
		}
	}
	return written, nil
}

// waitFor consumes `need` tokens, sleeping off any debt. The bucket is
// allowed to go negative and each sleep is credited with the time that
// actually elapsed, not the time requested: timers routinely oversleep,
// and zeroing the bucket on wake-up — as an earlier version did —
// discarded the tokens accrued during the overshoot on every chunk,
// pinning delivered throughput systematically below the configured
// rate. The burst cap still bounds a positive balance (idle accrual and
// retained oversleep credit alike), so burstiness stays limited.
func (r *rateLimitedWriter) waitFor(need float64) {
	now := r.now()
	if r.last.IsZero() {
		r.last = now
	}
	r.tokens += now.Sub(r.last).Seconds() * r.rate
	r.last = now
	if r.tokens > r.burst {
		r.tokens = r.burst
	}
	r.tokens -= need
	for r.tokens < 0 {
		// Round the wait up to a whole nanosecond: truncation would ask
		// for slightly less time than the debt, leaving a sub-ns deficit
		// whose next wait truncates to zero — a busy spin until the
		// clock happens to advance.
		r.sleep(time.Duration(math.Ceil(-r.tokens / r.rate * float64(time.Second))))
		now = r.now()
		r.tokens += now.Sub(r.last).Seconds() * r.rate
		r.last = now
		if r.tokens > r.burst {
			r.tokens = r.burst
		}
	}
}

package proxy

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
)

// ErrBadProxy reports an invalid proxy construction.
var ErrBadProxy = errors.New("proxy: invalid proxy")

// Proxy is the accelerating cache of Figure 1. For each client request it
// serves the cached prefix immediately (the fast cache-client path) and
// concurrently relays the remainder from the origin over the constrained
// path, growing or shrinking its cached prefix as the policy dictates.
// Origin throughput is observed passively (Section 2.7) to feed the
// policy's bandwidth estimate.
type Proxy struct {
	catalog   *Catalog
	originURL string // default origin for objects without Meta.Origin
	client    *http.Client

	mu         sync.Mutex
	cache      *core.Cache
	store      *PrefixStore
	estimators map[string]bandwidth.Estimator // per-origin b_i estimates
	start      time.Time
	stats      Stats
	inflight   sync.WaitGroup
}

var _ http.Handler = (*Proxy)(nil)

// Stats counts proxy activity; exposed at GET /stats.
type Stats struct {
	Requests     int64 `json:"requests"`
	PrefixHits   int64 `json:"prefixHits"`
	BytesFromHit int64 `json:"bytesFromCache"`
	BytesFetched int64 `json:"bytesFromOrigin"`
	UsedBytes    int64 `json:"usedBytes"`
	Objects      int   `json:"objects"`
	// EstimatesBps maps each origin base URL to the current passive
	// bandwidth estimate of its path (bytes/s).
	EstimatesBps map[string]int64 `json:"estimatesBps"`
	// DefaultOrigin is the base URL misses without an explicit
	// Meta.Origin are fetched from; it anchors EstimateBps("").
	DefaultOrigin string `json:"defaultOrigin"`
}

// EstimateBps returns the path estimate for the given origin. An empty
// origin asks for "the" path estimate, which is resolved
// deterministically: the default origin's estimate if one exists, else
// the estimate of the first origin in sorted key order. Unknown
// non-empty origins (and an empty estimate map) return 0.
func (s Stats) EstimateBps(origin string) int64 {
	if v, ok := s.EstimatesBps[origin]; ok {
		return v
	}
	if origin != "" {
		return 0
	}
	if v, ok := s.EstimatesBps[s.DefaultOrigin]; ok {
		return v
	}
	keys := make([]string, 0, len(s.EstimatesBps))
	for k := range s.EstimatesBps {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return 0
	}
	sort.Strings(keys)
	return s.EstimatesBps[keys[0]]
}

// NewProxy builds a proxy over catalog that fetches misses from
// originURL (e.g. "http://127.0.0.1:8080") and manages placement with
// cache. The estimator defaults to a passive EWMA with alpha 0.3.
func NewProxy(catalog *Catalog, cache *core.Cache, originURL string) (*Proxy, error) {
	if catalog == nil {
		return nil, fmt.Errorf("%w: nil catalog", ErrBadProxy)
	}
	if cache == nil {
		return nil, fmt.Errorf("%w: nil cache", ErrBadProxy)
	}
	if originURL == "" {
		return nil, fmt.Errorf("%w: empty origin URL", ErrBadProxy)
	}
	return &Proxy{
		catalog:    catalog,
		originURL:  originURL,
		client:     &http.Client{},
		cache:      cache,
		store:      NewPrefixStore(),
		estimators: make(map[string]bandwidth.Estimator),
		start:      time.Now(),
	}, nil
}

// originFor returns the base URL of the origin storing meta.
func (p *Proxy) originFor(meta Meta) string {
	if meta.Origin != "" {
		return meta.Origin
	}
	return p.originURL
}

// estimatorFor returns (creating on first use) the passive bandwidth
// estimator of the path to the given origin. Callers must hold p.mu.
func (p *Proxy) estimatorFor(origin string) bandwidth.Estimator {
	est := p.estimators[origin]
	if est == nil {
		e, err := bandwidth.NewEWMA(0.3)
		if err != nil {
			// 0.3 is a valid constant alpha; NewEWMA cannot fail on it.
			panic(fmt.Sprintf("proxy: estimator: %v", err))
		}
		est = e
		p.estimators[origin] = est
	}
	return est
}

// ServeHTTP routes /objects/<id> to the joint-delivery path and /stats to
// the counters.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/stats" {
		p.serveStats(w)
		return
	}
	id, ok := parseObjectPath(req.URL.Path)
	if !ok {
		http.NotFound(w, req)
		return
	}
	meta, ok := p.catalog.Get(id)
	if !ok {
		http.NotFound(w, req)
		return
	}
	p.serveObject(w, meta)
}

func (p *Proxy) serveStats(w http.ResponseWriter) {
	stats := p.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(stats); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Quiesce blocks until every in-flight object request has finished,
// including post-relay cache reconciliation. Use it before shutdown or
// before inspecting cache state from outside the request path.
func (p *Proxy) Quiesce() { p.inflight.Wait() }

// serveObject implements joint delivery: cached prefix first, origin
// remainder streamed behind it, with opportunistic prefix growth.
func (p *Proxy) serveObject(w http.ResponseWriter, meta Meta) {
	p.inflight.Add(1)
	defer p.inflight.Done()
	obj := core.Object{
		ID:       meta.ID,
		Size:     meta.Size,
		Duration: meta.Duration,
		Rate:     meta.Rate,
		Value:    meta.Value,
	}

	origin := p.originFor(meta)
	p.mu.Lock()
	now := time.Since(p.start).Seconds()
	res := p.cache.Access(obj, p.estimatorFor(origin).Estimate(), now)
	// Release byte storage for whatever the cache evicted.
	for _, v := range res.Victims {
		p.store.Truncate(v.ID, p.cache.CachedBytes(v.ID))
	}
	if res.CachedAfter < p.store.Len(meta.ID) {
		p.store.Truncate(meta.ID, res.CachedAfter)
	}
	retainTarget := res.CachedAfter
	p.stats.Requests++
	p.mu.Unlock()

	prefix := p.store.Prefix(meta.ID)
	if int64(len(prefix)) > meta.Size {
		prefix = prefix[:meta.Size]
	}

	w.Header().Set("Content-Length", strconv.FormatInt(meta.Size, 10))
	w.Header().Set("Content-Type", "video/mpeg")
	if len(prefix) > 0 {
		w.Header().Set("X-Cache", fmt.Sprintf("HIT-PREFIX; bytes=%d", len(prefix)))
	} else {
		w.Header().Set("X-Cache", "MISS")
	}

	// Phase 1: the cached prefix flows at cache-client speed.
	if len(prefix) > 0 {
		if _, err := w.Write(prefix); err != nil {
			return
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		p.mu.Lock()
		p.stats.PrefixHits++
		p.stats.BytesFromHit += int64(len(prefix))
		p.mu.Unlock()
	}

	// Phase 2: relay the remainder from the origin, observing throughput
	// and retaining bytes the cache granted.
	remainderStart := int64(len(prefix))
	if remainderStart >= meta.Size {
		return
	}
	fetched, err := p.relayRemainder(w, meta, origin, remainderStart, retainTarget)
	p.mu.Lock()
	p.stats.BytesFetched += fetched
	// If the relay died before materializing the granted prefix bytes,
	// give the un-materialized accounting back to the cache.
	if stored := p.store.Len(meta.ID); stored < p.cache.CachedBytes(meta.ID) {
		p.cache.Truncate(meta.ID, stored)
	}
	p.mu.Unlock()
	_ = err // client disconnects and origin failures both just end the response
}

// relayRemainder streams bytes [start, meta.Size) from the given origin
// to w, appending to the prefix store up to retainTarget bytes. It
// returns the number of bytes relayed.
func (p *Proxy) relayRemainder(w http.ResponseWriter, meta Meta, origin string, start, retainTarget int64) (int64, error) {
	url := fmt.Sprintf("%s/objects/%d", origin, meta.ID)
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, fmt.Errorf("proxy: build origin request: %w", err)
	}
	if start > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", start))
	}
	fetchStart := time.Now()
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("proxy: origin fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
		return 0, fmt.Errorf("proxy: origin status %s", resp.Status)
	}

	var relayed int64
	buf := make([]byte, 16*1024)
	offset := start
	for {
		n, readErr := resp.Body.Read(buf)
		if n > 0 {
			if _, err := w.Write(buf[:n]); err != nil {
				return relayed, fmt.Errorf("proxy: client write: %w", err)
			}
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			if offset < retainTarget {
				p.store.AppendAt(meta.ID, offset, buf[:n], retainTarget)
			}
			offset += int64(n)
			relayed += int64(n)
		}
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			return relayed, fmt.Errorf("proxy: origin read: %w", readErr)
		}
	}
	// Passive measurement: throughput of this completed transfer on this
	// origin's path.
	if elapsed := time.Since(fetchStart).Seconds(); elapsed > 0 && relayed > 0 {
		p.mu.Lock()
		p.estimatorFor(origin).Observe(float64(relayed) / elapsed)
		p.mu.Unlock()
	}
	return relayed, nil
}

// Snapshot returns the current stats (test and tooling hook).
func (p *Proxy) Snapshot() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.UsedBytes = p.cache.Used()
	s.Objects = p.cache.Len()
	s.EstimatesBps = make(map[string]int64, len(p.estimators))
	for origin, est := range p.estimators {
		s.EstimatesBps[origin] = int64(est.Estimate())
	}
	s.DefaultOrigin = p.originURL
	return s
}

package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
)

// ErrBadProxy reports an invalid proxy construction.
var ErrBadProxy = errors.New("proxy: invalid proxy")

// Prerendered header values: assigning a shared []string into the
// response header map is the only allocation-free way to set a header,
// and these values never vary.
var (
	contentTypeMPEG = []string{"video/mpeg"}
	missHeader      = []string{"MISS"}
)

// Proxy is the accelerating cache of Figure 1. For each client request
// it serves the cached prefix immediately (the fast cache-client path)
// and concurrently relays the remainder from the origin over the
// constrained path, growing or shrinking its cached prefix as the
// policy dictates. Origin throughput is observed passively
// (Section 2.7) to feed the policy's bandwidth estimate.
//
// Concurrency model: objects are partitioned across shards by ID hash.
// Each shard owns an independent core.Cache over its slice of the byte
// budget, a PrefixStore, and a per-origin estimator table, all guarded
// by the shard's lock — requests for objects on different shards never
// contend. Global counters are atomics, and concurrent misses for the
// same object coalesce onto one origin transfer (see relay), so a
// thundering herd costs a single constrained-path fetch.
type Proxy struct {
	catalog   *Catalog
	originURL string
	client    *http.Client
	start     time.Time

	// origins lists every distinct origin base URL the catalog can route
	// to (default origin first, rest sorted); originIndex inverts it.
	// The set is fixed at construction — per-origin estimator state is
	// dense slices indexed by origin, never a growing map.
	origins     []string
	originIndex map[string]int

	shards   []*shard
	stats    counters
	inflight sync.WaitGroup
}

var _ http.Handler = (*Proxy)(nil)

// shard owns one partition of the object space. All fields are guarded
// by mu except store, which has its own internal lock so prefix reads
// and relay appends proceed without holding the shard lock.
type shard struct {
	mu       sync.Mutex
	cache    *core.Cache
	store    *PrefixStore
	est      []pathEstimator // indexed by origin index
	inflight map[int]*relay  // object ID -> in-flight origin transfer
}

// pathEstimator pairs a passive bandwidth estimator with whether it has
// observed at least one completed transfer (so /stats can skip paths
// that were never exercised).
type pathEstimator struct {
	est      bandwidth.Estimator
	observed bool
}

// counters are the proxy-global atomic statistics; Snapshot folds them
// into the exported Stats.
type counters struct {
	requests     atomic.Int64
	prefixHits   atomic.Int64
	bytesFromHit atomic.Int64
	bytesFetched atomic.Int64
	coalesced    atomic.Int64
}

// Stats counts proxy activity; exposed at GET /stats.
type Stats struct {
	Requests     int64 `json:"requests"`
	PrefixHits   int64 `json:"prefixHits"`
	BytesFromHit int64 `json:"bytesFromCache"`
	BytesFetched int64 `json:"bytesFromOrigin"`
	// CoalescedRequests counts requests that attached to another
	// request's in-flight origin transfer instead of opening their own —
	// the thundering-herd savings of the relay singleflight.
	CoalescedRequests int64 `json:"coalescedRequests"`
	UsedBytes         int64 `json:"usedBytes"`
	Objects           int   `json:"objects"`
	Shards            int   `json:"shards"`
	// EstimatesBps maps each origin base URL to the current passive
	// bandwidth estimate of its path (bytes/s), averaged over the shards
	// that have observed a completed transfer on it.
	EstimatesBps map[string]int64 `json:"estimatesBps"`
	// DefaultOrigin is the base URL misses without an explicit
	// Meta.Origin are fetched from; it anchors EstimateBps("").
	DefaultOrigin string `json:"defaultOrigin"`
}

// EstimateBps returns the path estimate for the given origin. An empty
// origin asks for "the" path estimate, which is resolved
// deterministically: the default origin's estimate if one exists, else
// the estimate of the first origin in sorted key order. Unknown
// non-empty origins (and an empty estimate map) return 0.
func (s Stats) EstimateBps(origin string) int64 {
	if v, ok := s.EstimatesBps[origin]; ok {
		return v
	}
	if origin != "" {
		return 0
	}
	if v, ok := s.EstimatesBps[s.DefaultOrigin]; ok {
		return v
	}
	keys := make([]string, 0, len(s.EstimatesBps))
	for k := range s.EstimatesBps {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return 0
	}
	sort.Strings(keys)
	return s.EstimatesBps[keys[0]]
}

// Config parameterizes a sharded proxy built with New.
type Config struct {
	// Catalog is the shared object directory (required).
	Catalog *Catalog
	// OriginURL is the default origin base URL (required).
	OriginURL string
	// Shards partitions the object space; 0 means 1.
	Shards int
	// CacheBytes is the total capacity, split evenly across shards via
	// core.SplitCapacity.
	CacheBytes int64
	// NewPolicy builds one policy per shard cache (required); stateful
	// policies such as the GreedyDual-Size family must not be shared.
	NewPolicy func() core.Policy
	// CacheOptions are applied to every shard cache.
	CacheOptions []core.Option
	// Client performs origin fetches; nil means a default http.Client.
	Client *http.Client
}

// New builds a sharded proxy from cfg.
func New(cfg Config) (*Proxy, error) {
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("%w: shards=%d, want >= 0", ErrBadProxy, cfg.Shards)
	}
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if cfg.NewPolicy == nil {
		return nil, fmt.Errorf("%w: nil NewPolicy", ErrBadProxy)
	}
	caps := core.SplitCapacity(cfg.CacheBytes, n)
	if caps == nil {
		return nil, fmt.Errorf("%w: CacheBytes=%d", ErrBadProxy, cfg.CacheBytes)
	}
	caches := make([]*core.Cache, n)
	for i := range caches {
		policy := cfg.NewPolicy()
		if policy == nil {
			return nil, fmt.Errorf("%w: NewPolicy returned nil", ErrBadProxy)
		}
		c, err := core.New(caps[i], policy, cfg.CacheOptions...)
		if err != nil {
			return nil, err
		}
		caches[i] = c
	}
	return newProxy(cfg.Catalog, caches, cfg.OriginURL, cfg.Client)
}

// NewProxy builds a single-shard proxy over catalog that fetches misses
// from originURL (e.g. "http://127.0.0.1:8080") and manages placement
// with the given cache — the pre-sharding constructor, kept for tests
// and embedders that want to own the cache instance. Use New for a
// sharded deployment.
func NewProxy(catalog *Catalog, cache *core.Cache, originURL string) (*Proxy, error) {
	if cache == nil {
		return nil, fmt.Errorf("%w: nil cache", ErrBadProxy)
	}
	return newProxy(catalog, []*core.Cache{cache}, originURL, nil)
}

func newProxy(catalog *Catalog, caches []*core.Cache, originURL string, client *http.Client) (*Proxy, error) {
	if catalog == nil {
		return nil, fmt.Errorf("%w: nil catalog", ErrBadProxy)
	}
	if originURL == "" {
		return nil, fmt.Errorf("%w: empty origin URL", ErrBadProxy)
	}
	if client == nil {
		client = &http.Client{}
	}

	// The estimator table is fixed at construction: the default origin
	// plus every origin named by the (immutable) catalog. It can never
	// grow at runtime, so per-origin state is bounded and lock-free to
	// index.
	origins := []string{originURL}
	for _, o := range catalog.Origins() {
		if o != originURL {
			origins = append(origins, o)
		}
	}
	originIndex := make(map[string]int, len(origins))
	for i, o := range origins {
		originIndex[o] = i
	}

	p := &Proxy{
		catalog:     catalog,
		originURL:   originURL,
		client:      client,
		start:       time.Now(),
		origins:     origins,
		originIndex: originIndex,
		shards:      make([]*shard, len(caches)),
	}
	for i, c := range caches {
		est := make([]pathEstimator, len(origins))
		for j := range est {
			e, err := bandwidth.NewEWMA(0.3)
			if err != nil {
				// 0.3 is a valid constant alpha; NewEWMA cannot fail on it.
				panic(fmt.Sprintf("proxy: estimator: %v", err))
			}
			est[j] = pathEstimator{est: e}
		}
		p.shards[i] = &shard{
			cache:    c,
			store:    NewPrefixStore(),
			est:      est,
			inflight: make(map[int]*relay),
		}
	}
	return p, nil
}

// Shards returns the configured shard count.
func (p *Proxy) Shards() int { return len(p.shards) }

// shardFor maps an object ID to its owning shard. IDs are dense and
// popularity-ordered (hot objects have low IDs), so a Fibonacci hash
// spreads neighbors across shards instead of clustering the hot set.
//mediavet:hotpath
func (p *Proxy) shardFor(id int) *shard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return p.shards[h%uint64(len(p.shards))]
}

// originFor returns the base URL of the origin storing meta.
//mediavet:hotpath
func (p *Proxy) originFor(meta Meta) string {
	if meta.Origin != "" {
		return meta.Origin
	}
	return p.originURL
}

// estimate returns the shard's current bandwidth estimate for an origin
// path. Callers must hold sh.mu.
//mediavet:hotpath
func (sh *shard) estimate(originIdx int) float64 {
	return sh.est[originIdx].est.Estimate()
}

// observe feeds one completed-transfer throughput sample into the
// shard's estimator for an origin path. Callers must hold sh.mu.
//mediavet:hotpath
func (sh *shard) observe(originIdx int, sample float64) {
	sh.est[originIdx].est.Observe(sample)
	sh.est[originIdx].observed = true
}

// ServeHTTP routes /objects/<id> to the joint-delivery path and /stats
// to the counters.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/stats" {
		p.serveStats(w)
		return
	}
	id, ok := parseObjectPath(req.URL.Path)
	if !ok {
		http.NotFound(w, req)
		return
	}
	meta, ok := p.catalog.Get(id)
	if !ok {
		http.NotFound(w, req)
		return
	}
	p.serveObject(w, req, meta)
}

func (p *Proxy) serveStats(w http.ResponseWriter) {
	stats := p.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(stats); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Quiesce blocks until every in-flight object request and origin
// transfer has finished, including post-relay cache reconciliation. Use
// it before shutdown or before inspecting cache state from outside the
// request path.
func (p *Proxy) Quiesce() { p.inflight.Wait() }

// serveObject implements joint delivery: cached prefix first, origin
// remainder streamed behind it, with opportunistic prefix growth.
//mediavet:hotpath
func (p *Proxy) serveObject(w http.ResponseWriter, req *http.Request, meta Meta) {
	p.inflight.Add(1)
	defer p.inflight.Done()
	obj := core.Object{
		ID:       meta.ID,
		Size:     meta.Size,
		Duration: meta.Duration,
		Rate:     meta.Rate,
		Value:    meta.Value,
	}

	origin := p.originFor(meta)
	originIdx := p.originIndex[origin]
	sh := p.shardFor(meta.ID)

	sh.mu.Lock()
	now := time.Since(p.start).Seconds()
	res := sh.cache.Access(obj, sh.estimate(originIdx), now)
	// Release byte storage for whatever the cache evicted.
	for _, v := range res.Victims {
		sh.store.Truncate(v.ID, sh.cache.CachedBytes(v.ID))
	}
	if res.CachedAfter < sh.store.Len(meta.ID) {
		sh.store.Truncate(meta.ID, res.CachedAfter)
	}
	retainTarget := res.CachedAfter
	sh.mu.Unlock()
	p.stats.requests.Add(1)

	// Zero-copy snapshot of the cached prefix: a view over immutable
	// segments, byte-stable without holding any lock while we write it
	// to the client.
	v := sh.store.View(meta.ID, meta.Size)

	h := w.Header()
	if meta.sizeHeader != nil {
		h["Content-Length"] = meta.sizeHeader
	} else {
		// Meta built outside NewCatalog (tests): render on the spot.
		h["Content-Length"] = []string{strconv.FormatInt(meta.Size, 10)}
	}
	h["Content-Type"] = contentTypeMPEG
	if v.Len() > 0 {
		if v.hdr != nil {
			h["X-Cache"] = v.hdr
		} else {
			// The stored prefix outgrew the object size and the view was
			// clamped — a transient reconciliation state, not the steady
			// hit path.
			//mediavet:ignore hotpath clamped-view header renders only while store and cache accounting disagree mid-eviction
			h["X-Cache"] = []string{"HIT-PREFIX; bytes=" + strconv.FormatInt(v.Len(), 10)}
		}
	} else {
		h["X-Cache"] = missHeader
	}

	// Phase 1: the cached prefix flows at cache-client speed, written
	// straight from the aliased segments — no per-request copy.
	if v.Len() > 0 {
		n, err := v.WriteTo(w)
		if err != nil {
			return
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		p.stats.prefixHits.Add(1)
		p.stats.bytesFromHit.Add(n)
	}

	// Phase 2: the remainder comes over the constrained origin path —
	// through the object's in-flight relay when one covers our offset,
	// else through a new relay other requests can attach to. A reader
	// the bounded ring laps (more than the ring capacity behind the
	// fetch) is demoted to a private origin fetch from where it left
	// off, so it still receives correct bytes.
	start := v.Len()
	if start >= meta.Size {
		return
	}
	sh.mu.Lock()
	rl := sh.inflight[meta.ID]
	switch {
	case rl != nil && rl.start <= start && rl.attach():
		sh.mu.Unlock()
		rl.raiseRetain(retainTarget)
		p.stats.coalesced.Add(1)
		off, lapped := p.streamFromRelay(req.Context(), w, rl, start)
		rl.detach()
		if lapped {
			//mediavet:ignore hotpath ring-lap demotion runs once per slow client, not per request
			p.relayDirect(req.Context(), w, sh, meta, origin, originIdx, off)
		}
	case rl != nil:
		// The in-flight transfer began past our offset (the prefix
		// shrank since it started) or is already being torn down: relay
		// privately, leaving the store to the active fetch.
		sh.mu.Unlock()
		//mediavet:ignore hotpath cold path: the racing-relay fallback runs once per lost race, not per request
		p.relayDirect(req.Context(), w, sh, meta, origin, originIdx, start)
	default:
		ctx, cancel := context.WithCancel(context.Background())
		//mediavet:ignore hotpath cold miss path: relay construction happens once per origin fetch and is amortized over every coalesced follower
		rl = newRelay(start, retainTarget, cancel)
		rl.attach() // the leader; a fresh relay never refuses
		sh.inflight[meta.ID] = rl
		p.inflight.Add(1)
		//mediavet:ignore hotpath cold miss path: one relay goroutine per origin fetch, torn down when the transfer ends
		go p.runRelay(ctx, sh, meta, origin, originIdx, rl)
		sh.mu.Unlock()
		off, lapped := p.streamFromRelay(req.Context(), w, rl, start)
		rl.detach()
		if lapped {
			//mediavet:ignore hotpath ring-lap demotion runs once per slow client, not per request
			p.relayDirect(req.Context(), w, sh, meta, origin, originIdx, off)
		}
	}
}

// streamFromRelay copies relay bytes from object offset off to the
// client until the transfer ends or the client goes away (detected by
// write failure or the request context, whichever fires first). It
// returns the next unserved offset and whether the ring lapped this
// reader — in which case the caller must finish the transfer with a
// private origin fetch from that offset.
//
//mediavet:hotpath
func (p *Proxy) streamFromRelay(ctx context.Context, w http.ResponseWriter, rl *relay, off int64) (int64, bool) {
	//mediavet:ignore hotpath the bound rl.wake closure is the price of prompt cancel wakeups; one per streaming response
	stop := context.AfterFunc(ctx, rl.wake)
	defer stop()
	fl, _ := w.(http.Flusher)
	bp := fetchBufPool.Get().(*[]byte)
	defer fetchBufPool.Put(bp)
	buf := *bp
	for {
		n, done, err := rl.next(ctx, off, buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return off, false // client went away; detach may cancel the fetch
			}
			if fl != nil {
				fl.Flush()
			}
			off += int64(n)
		}
		if err == errRelayLapped {
			return off, true // demote: continue via relayDirect
		}
		if done && n == 0 {
			return off, false // transfer ended (cleanly or not): truncate here
		}
	}
}

// runRelay is the fetch goroutine behind one relay: it pulls the
// remainder from the origin exactly once, publishes it to every
// attached client and the prefix store, then reconciles cache
// accounting with what was actually materialized. ctx is canceled by
// the last detaching client, aborting a transfer nobody reads anymore.
func (p *Proxy) runRelay(ctx context.Context, sh *shard, meta Meta, origin string, originIdx int, rl *relay) {
	defer p.inflight.Done()
	fetched, elapsed, err := p.fetchOrigin(ctx, sh, meta, origin, rl)
	rl.finish(err)
	p.stats.bytesFetched.Add(fetched)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.inflight, meta.ID)
	// Passive measurement: throughput of this transfer on this path.
	if elapsed > 0 && fetched > 0 {
		sh.observe(originIdx, float64(fetched)/elapsed)
	}
	// Reconcile accounting and materialization: an aborted transfer can
	// leave the cache granting bytes the store never received, and an
	// eviction racing the relay can leave store bytes the cache no
	// longer accounts for. Either way the store and the cache agree once
	// no transfer is in flight.
	stored := sh.store.Len(meta.ID)
	if acct := sh.cache.CachedBytes(meta.ID); stored < acct {
		sh.cache.Truncate(meta.ID, stored)
	} else if stored > acct {
		sh.store.Truncate(meta.ID, acct)
	}
}

// fetchOrigin streams object bytes [rl.start, meta.Size) from the
// origin into the relay, retaining up to the relay's (possibly still
// rising) retention limit in the shard's store. It returns the bytes
// fetched and the transfer duration in seconds.
func (p *Proxy) fetchOrigin(ctx context.Context, sh *shard, meta Meta, origin string, rl *relay) (int64, float64, error) {
	fetchStart := time.Now()
	resp, err := p.originRequest(ctx, meta, origin, rl.start)
	if err != nil {
		return 0, time.Since(fetchStart).Seconds(), err
	}
	defer resp.Body.Close()

	var fetched int64
	bp := fetchBufPool.Get().(*[]byte)
	defer fetchBufPool.Put(bp)
	buf := *bp
	offset := rl.start
	for {
		n, readErr := resp.Body.Read(buf)
		if n > 0 {
			// Materialize before publishing: a client that has consumed
			// every published byte is then guaranteed the store was
			// offered them too.
			if limit := rl.retainLimit(); offset < limit {
				sh.store.AppendAt(meta.ID, offset, buf[:n], limit)
			}
			rl.append(buf[:n])
			offset += int64(n)
			fetched += int64(n)
		}
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			return fetched, time.Since(fetchStart).Seconds(), fmt.Errorf("proxy: origin read: %w", readErr)
		}
	}
	return fetched, time.Since(fetchStart).Seconds(), nil
}

// relayDirect streams [start, meta.Size) from the origin straight to
// one client, bypassing the store — the fallback when an in-flight
// relay exists but began past this client's offset.
func (p *Proxy) relayDirect(ctx context.Context, w http.ResponseWriter, sh *shard, meta Meta, origin string, originIdx int, start int64) {
	fetchStart := time.Now()
	resp, err := p.originRequest(ctx, meta, origin, start)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	fl, _ := w.(http.Flusher)
	var fetched int64
	bp := fetchBufPool.Get().(*[]byte)
	defer fetchBufPool.Put(bp)
	buf := *bp
	for {
		n, readErr := resp.Body.Read(buf)
		if n > 0 {
			if _, err := w.Write(buf[:n]); err != nil {
				break
			}
			if fl != nil {
				fl.Flush()
			}
			fetched += int64(n)
		}
		if readErr != nil {
			break
		}
	}
	p.stats.bytesFetched.Add(fetched)
	if elapsed := time.Since(fetchStart).Seconds(); elapsed > 0 && fetched > 0 {
		sh.mu.Lock()
		sh.observe(originIdx, float64(fetched)/elapsed)
		sh.mu.Unlock()
	}
}

// originRequest opens a ranged GET for meta's content from the given
// origin starting at the given byte offset. A ranged request demands a
// 206: an origin that ignores Range and replies 200 would deliver byte
// 0 at offset `start`, corrupting the shared relay and prefix store,
// so it is rejected here.
func (p *Proxy) originRequest(ctx context.Context, meta Meta, origin string, start int64) (*http.Response, error) {
	url := fmt.Sprintf("%s/objects/%d", origin, meta.ID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("proxy: build origin request: %w", err)
	}
	if start > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", start))
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("proxy: origin fetch: %w", err)
	}
	want := http.StatusOK
	if start > 0 {
		want = http.StatusPartialContent
	}
	if resp.StatusCode != want {
		resp.Body.Close()
		return nil, fmt.Errorf("proxy: origin status %s for offset %d (want %d)", resp.Status, start, want)
	}
	return resp, nil
}

// StoredBytes returns the materialized prefix length of object id (a
// test and tooling hook; the owning shard is found by ID hash).
func (p *Proxy) StoredBytes(id int) int64 {
	return p.shardFor(id).store.Len(id)
}

// StoredTotal returns the total bytes materialized across all shard
// stores.
func (p *Proxy) StoredTotal() int64 {
	var total int64
	for _, sh := range p.shards {
		total += sh.store.TotalBytes()
	}
	return total
}

// Snapshot aggregates the current stats across shards. Shard snapshots
// are taken one shard at a time under that shard's own lock — no
// stop-the-world pause — so the result is a consistent-per-shard,
// slightly time-smeared view, which is what a /stats endpoint wants.
func (p *Proxy) Snapshot() Stats {
	s := Stats{
		Requests:          p.stats.requests.Load(),
		PrefixHits:        p.stats.prefixHits.Load(),
		BytesFromHit:      p.stats.bytesFromHit.Load(),
		BytesFetched:      p.stats.bytesFetched.Load(),
		CoalescedRequests: p.stats.coalesced.Load(),
		Shards:            len(p.shards),
		DefaultOrigin:     p.originURL,
	}
	// Dense accumulators indexed by origin keep the aggregation to two
	// small allocations regardless of shard count.
	sums := make([]float64, len(p.origins))
	counts := make([]int, len(p.origins))
	for _, sh := range p.shards {
		sh.mu.Lock()
		snap := sh.cache.Snapshot()
		s.UsedBytes += snap.Used
		s.Objects += snap.Objects
		for i := range sh.est {
			if sh.est[i].observed {
				sums[i] += sh.est[i].est.Estimate()
				counts[i]++
			}
		}
		sh.mu.Unlock()
	}
	s.EstimatesBps = make(map[string]int64, len(p.origins))
	for i, o := range p.origins {
		if counts[i] > 0 {
			s.EstimatesBps[o] = int64(sums[i] / float64(counts[i]))
		}
	}
	return s
}

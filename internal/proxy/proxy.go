package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
)

// ErrBadProxy reports an invalid proxy construction.
var ErrBadProxy = errors.New("proxy: invalid proxy")

// Prerendered header values: assigning a shared []string into the
// response header map is the only allocation-free way to set a header,
// and these values never vary.
var (
	contentTypeMPEG = []string{"video/mpeg"}
	missHeader      = []string{"MISS"}
)

// Proxy is the accelerating cache of Figure 1. For each client request
// it serves the cached prefix immediately (the fast cache-client path)
// and concurrently relays the remainder from the origin over the
// constrained path, growing or shrinking its cached prefix as the
// policy dictates. Origin throughput is observed passively
// (Section 2.7) to feed the policy's bandwidth estimate.
//
// Concurrency model: objects are partitioned across shards by ID hash.
// Each shard owns an independent core.Cache over its slice of the byte
// budget, a PrefixStore, and a per-origin estimator table, all guarded
// by the shard's lock — requests for objects on different shards never
// contend. Global counters are atomics, and concurrent misses for the
// same object coalesce onto one origin transfer (see relay), so a
// thundering herd costs a single constrained-path fetch.
type Proxy struct {
	catalog   *Catalog
	originURL string
	client    *http.Client
	now       func() time.Time
	start     time.Time
	tier      string

	// origins lists every distinct upstream base URL misses can be
	// fetched over: the default origin first, then the catalog's origins
	// sorted, then configured cluster upstreams (peers, parent) in
	// declaration order; originIndex inverts it. The set is fixed at
	// construction — per-upstream estimator state is dense slices
	// indexed by origin, never a growing map.
	origins     []string
	originIndex map[string]int

	// router maps an object to the upstream its misses should be
	// fetched over (nil: always the object's own origin). tierOf maps
	// each origin index to a slot in tierNames/tierBytes, splitting
	// BytesFetched by cluster tier for /stats.
	router    func(Meta) Route
	tierOf    []int
	tierNames []string
	tierBytes []atomic.Int64

	shards   []*shard
	stats    counters
	inflight sync.WaitGroup
}

var _ http.Handler = (*Proxy)(nil)

// shard owns one partition of the object space. All fields are guarded
// by mu except store, which has its own internal lock so prefix reads
// and relay appends proceed without holding the shard lock.
type shard struct {
	mu       sync.Mutex
	cache    *core.Cache
	store    *PrefixStore
	est      []pathEstimator // indexed by origin index
	inflight map[int]*relay  // object ID -> in-flight origin transfer
}

// pathEstimator pairs a passive bandwidth estimator with whether it has
// observed at least one completed transfer (so /stats can skip paths
// that were never exercised).
type pathEstimator struct {
	est      bandwidth.Estimator
	observed bool
}

// counters are the proxy-global atomic statistics; Snapshot folds them
// into the exported Stats.
type counters struct {
	requests     atomic.Int64
	prefixHits   atomic.Int64
	bytesFromHit atomic.Int64
	bytesFetched atomic.Int64
	coalesced    atomic.Int64
}

// Upstream names one non-origin fetch target (a peer or parent proxy
// in a cluster) the Router may direct misses to. Each upstream gets its
// own passive bandwidth estimator, and its fetched bytes are accounted
// under its Tier label in Stats.TierBytes.
type Upstream struct {
	// URL is the upstream's base URL (e.g. "http://peer-2:8080").
	URL string
	// Tier labels the upstream for per-tier accounting: "peer",
	// "parent", ... Empty means "origin".
	Tier string
}

// Route is a Router's decision for one object: where its misses are
// fetched from, and what to do when that upstream fails.
type Route struct {
	// URL is the primary upstream base URL; empty means the object's
	// own origin. It must be the default origin, a catalog origin, or a
	// configured Upstream — unknown URLs fall back to the object's
	// origin.
	URL string
	// Fallback is tried (once, with no header timeout) when the primary
	// fails before delivering any byte — connection refused, header
	// timeout, bad status. Empty means no fallback.
	Fallback string
	// HeaderTimeout bounds how long the primary may take to produce
	// response headers before the fetch is abandoned (and the Fallback
	// tried). Zero means no bound. It never cuts an in-progress body.
	HeaderTimeout time.Duration
}

// Stats counts proxy activity; exposed at GET /stats.
type Stats struct {
	Requests     int64 `json:"requests"`
	PrefixHits   int64 `json:"prefixHits"`
	BytesFromHit int64 `json:"bytesFromCache"`
	BytesFetched int64 `json:"bytesFromOrigin"`
	// CoalescedRequests counts requests that attached to another
	// request's in-flight origin transfer instead of opening their own —
	// the thundering-herd savings of the relay singleflight.
	CoalescedRequests int64 `json:"coalescedRequests"`
	UsedBytes         int64 `json:"usedBytes"`
	Objects           int   `json:"objects"`
	Shards            int   `json:"shards"`
	// EstimatesBps maps each origin base URL to the current passive
	// bandwidth estimate of its path (bytes/s), averaged over the shards
	// that have observed a completed transfer on it.
	EstimatesBps map[string]int64 `json:"estimatesBps"`
	// DefaultOrigin is the base URL misses without an explicit
	// Meta.Origin are fetched from; it anchors EstimateBps("").
	DefaultOrigin string `json:"defaultOrigin"`
	// Tier is this node's own label in its cluster ("edge", "parent");
	// empty for a standalone proxy.
	Tier string `json:"tier,omitempty"`
	// TierBytes splits BytesFetched by the tier of the upstream the
	// bytes came over: "origin" plus every configured Upstream tier.
	// Together with BytesFromCache (the edge-served share) it yields
	// the per-tier hit ratios the hierarchy experiments report.
	TierBytes map[string]int64 `json:"tierBytes"`
}

// EstimateBps returns the path estimate for the given origin. An empty
// origin asks for "the" path estimate, which is resolved
// deterministically: the default origin's estimate if one exists, else
// the estimate of the first origin in sorted key order. Unknown
// non-empty origins (and an empty estimate map) return 0.
func (s Stats) EstimateBps(origin string) int64 {
	if v, ok := s.EstimatesBps[origin]; ok {
		return v
	}
	if origin != "" {
		return 0
	}
	if v, ok := s.EstimatesBps[s.DefaultOrigin]; ok {
		return v
	}
	keys := make([]string, 0, len(s.EstimatesBps))
	for k := range s.EstimatesBps {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return 0
	}
	sort.Strings(keys)
	return s.EstimatesBps[keys[0]]
}

// Config parameterizes a sharded proxy built with New.
type Config struct {
	// Catalog is the shared object directory (required).
	Catalog *Catalog
	// OriginURL is the default origin base URL (required).
	OriginURL string
	// Shards partitions the object space; 0 means 1.
	Shards int
	// CacheBytes is the total capacity, split evenly across shards via
	// core.SplitCapacity.
	CacheBytes int64
	// NewPolicy builds one policy per shard cache (required); stateful
	// policies such as the GreedyDual-Size family must not be shared.
	NewPolicy func() core.Policy
	// CacheOptions are applied to every shard cache.
	CacheOptions []core.Option
	// Client performs origin fetches; nil means a default http.Client.
	Client *http.Client
	// Upstreams names the cluster fetch targets (peers, parent) Router
	// may route misses to, beyond the catalog's origins.
	Upstreams []Upstream
	// Router picks the upstream each object's misses are fetched over;
	// nil routes every miss to the object's own origin.
	Router func(Meta) Route
	// Now supplies the proxy's clock (policy aging, passive throughput
	// timing); nil means time.Now. Injectable for deterministic
	// multi-node tests.
	Now func() time.Time
	// Tier labels this node in its cluster; surfaced in Stats.
	Tier string
}

// New builds a sharded proxy from cfg.
func New(cfg Config) (*Proxy, error) {
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("%w: shards=%d, want >= 0", ErrBadProxy, cfg.Shards)
	}
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if cfg.NewPolicy == nil {
		return nil, fmt.Errorf("%w: nil NewPolicy", ErrBadProxy)
	}
	caps := core.SplitCapacity(cfg.CacheBytes, n)
	if caps == nil {
		return nil, fmt.Errorf("%w: CacheBytes=%d", ErrBadProxy, cfg.CacheBytes)
	}
	caches := make([]*core.Cache, n)
	for i := range caches {
		policy := cfg.NewPolicy()
		if policy == nil {
			return nil, fmt.Errorf("%w: NewPolicy returned nil", ErrBadProxy)
		}
		c, err := core.New(caps[i], policy, cfg.CacheOptions...)
		if err != nil {
			return nil, err
		}
		caches[i] = c
	}
	return newProxy(cfg, caches)
}

// NewProxy builds a single-shard proxy over catalog that fetches misses
// from originURL (e.g. "http://127.0.0.1:8080") and manages placement
// with the given cache — the pre-sharding constructor, kept for tests
// and embedders that want to own the cache instance. Use New for a
// sharded deployment.
func NewProxy(catalog *Catalog, cache *core.Cache, originURL string) (*Proxy, error) {
	if cache == nil {
		return nil, fmt.Errorf("%w: nil cache", ErrBadProxy)
	}
	return newProxy(Config{Catalog: catalog, OriginURL: originURL}, []*core.Cache{cache})
}

func newProxy(cfg Config, caches []*core.Cache) (*Proxy, error) {
	catalog, originURL := cfg.Catalog, cfg.OriginURL
	if catalog == nil {
		return nil, fmt.Errorf("%w: nil catalog", ErrBadProxy)
	}
	if originURL == "" {
		return nil, fmt.Errorf("%w: empty origin URL", ErrBadProxy)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}

	// The estimator table is fixed at construction: the default origin,
	// every origin named by the (immutable) catalog, and every
	// configured cluster upstream. It can never grow at runtime, so
	// per-upstream state is bounded and lock-free to index. Each slot
	// carries the tier its fetched bytes are accounted under.
	origins := []string{originURL}
	tiers := []string{"origin"}
	for _, o := range catalog.Origins() {
		if o != originURL {
			origins = append(origins, o)
			tiers = append(tiers, "origin")
		}
	}
	originIndex := make(map[string]int, len(origins)+len(cfg.Upstreams))
	for i, o := range origins {
		originIndex[o] = i
	}
	for _, u := range cfg.Upstreams {
		if u.URL == "" {
			return nil, fmt.Errorf("%w: upstream with empty URL", ErrBadProxy)
		}
		if _, dup := originIndex[u.URL]; dup {
			continue // already an origin (or listed twice): first tier wins
		}
		tier := u.Tier
		if tier == "" {
			tier = "origin"
		}
		originIndex[u.URL] = len(origins)
		origins = append(origins, u.URL)
		tiers = append(tiers, tier)
	}

	// Dense per-tier byte counters: tierOf maps an origin index to its
	// slot in tierNames/tierBytes.
	tierIndex := map[string]int{}
	tierOf := make([]int, len(origins))
	var tierNames []string
	for i, t := range tiers {
		idx, ok := tierIndex[t]
		if !ok {
			idx = len(tierNames)
			tierIndex[t] = idx
			tierNames = append(tierNames, t)
		}
		tierOf[i] = idx
	}

	p := &Proxy{
		catalog:     catalog,
		originURL:   originURL,
		client:      client,
		now:         now,
		start:       now(),
		tier:        cfg.Tier,
		origins:     origins,
		originIndex: originIndex,
		router:      cfg.Router,
		tierOf:      tierOf,
		tierNames:   tierNames,
		tierBytes:   make([]atomic.Int64, len(tierNames)),
		shards:      make([]*shard, len(caches)),
	}
	for i, c := range caches {
		est := make([]pathEstimator, len(origins))
		for j := range est {
			e, err := bandwidth.NewEWMA(0.3)
			if err != nil {
				// 0.3 is a valid constant alpha; NewEWMA cannot fail on it.
				panic(fmt.Sprintf("proxy: estimator: %v", err))
			}
			est[j] = pathEstimator{est: e}
		}
		p.shards[i] = &shard{
			cache:    c,
			store:    NewPrefixStore(),
			est:      est,
			inflight: make(map[int]*relay),
		}
	}
	return p, nil
}

// Shards returns the configured shard count.
func (p *Proxy) Shards() int { return len(p.shards) }

// shardFor maps an object ID to its owning shard. IDs are dense and
// popularity-ordered (hot objects have low IDs), so a Fibonacci hash
// spreads neighbors across shards instead of clustering the hot set.
//mediavet:hotpath
func (p *Proxy) shardFor(id int) *shard {
	h := uint64(id) * 0x9E3779B97F4A7C15
	h ^= h >> 32
	return p.shards[h%uint64(len(p.shards))]
}

// originFor returns the base URL of the origin storing meta.
//mediavet:hotpath
func (p *Proxy) originFor(meta Meta) string {
	if meta.Origin != "" {
		return meta.Origin
	}
	return p.originURL
}

// resolvedRoute is a Router decision resolved against the fixed
// upstream table: URLs paired with their estimator indices, so the
// fetch path never consults the map again. fbIdx is -1 when there is
// no fallback.
type resolvedRoute struct {
	url           string
	idx           int
	fbURL         string
	fbIdx         int
	headerTimeout time.Duration
}

// routeFor resolves where meta's misses are fetched from. With no
// router (or a router answer naming an unknown upstream) that is the
// object's own origin; otherwise the router's primary, with its
// fallback resolved alongside. The primary's estimator index is what
// the cache policy prices — per-tier utility reflects the
// actually-constrained hop.
//
//mediavet:hotpath
func (p *Proxy) routeFor(meta Meta) resolvedRoute {
	origin := p.originFor(meta)
	rt := resolvedRoute{url: origin, idx: p.originIndex[origin], fbIdx: -1}
	if p.router == nil {
		return rt
	}
	r := p.router(meta)
	if r.URL == "" || r.URL == rt.url {
		return rt
	}
	idx, ok := p.originIndex[r.URL]
	if !ok {
		return rt // unknown upstream: keep the object's own origin
	}
	rt.url, rt.idx = r.URL, idx
	rt.headerTimeout = r.HeaderTimeout
	if r.Fallback != "" && r.Fallback != r.URL {
		if fbIdx, ok := p.originIndex[r.Fallback]; ok {
			rt.fbURL, rt.fbIdx = r.Fallback, fbIdx
		}
	}
	return rt
}

// addTierBytes accounts n fetched bytes to the tier of upstream
// originIdx.
func (p *Proxy) addTierBytes(originIdx int, n int64) {
	if n > 0 {
		p.tierBytes[p.tierOf[originIdx]].Add(n)
	}
}

// estimate returns the shard's current bandwidth estimate for an origin
// path. Callers must hold sh.mu.
//mediavet:hotpath
func (sh *shard) estimate(originIdx int) float64 {
	return sh.est[originIdx].est.Estimate()
}

// observe feeds one completed-transfer throughput sample into the
// shard's estimator for an origin path. Callers must hold sh.mu.
//mediavet:hotpath
func (sh *shard) observe(originIdx int, sample float64) {
	sh.est[originIdx].est.Observe(sample)
	sh.est[originIdx].observed = true
}

// ServeHTTP routes /objects/<id> to the joint-delivery path and /stats
// to the counters.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Path == "/stats" {
		p.serveStats(w)
		return
	}
	id, ok := parseObjectPath(req.URL.Path)
	if !ok {
		http.NotFound(w, req)
		return
	}
	meta, ok := p.catalog.Get(id)
	if !ok {
		http.NotFound(w, req)
		return
	}
	p.serveObject(w, req, meta)
}

func (p *Proxy) serveStats(w http.ResponseWriter) {
	stats := p.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(stats); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Quiesce blocks until every in-flight object request and origin
// transfer has finished, including post-relay cache reconciliation. Use
// it before shutdown or before inspecting cache state from outside the
// request path.
func (p *Proxy) Quiesce() { p.inflight.Wait() }

// serveObject implements joint delivery: cached prefix first, upstream
// remainder streamed behind it, with opportunistic prefix growth. It
// honors "Range: bytes=N-" requests (status 206) so one proxy can act
// as another's upstream — a peer resuming a transfer past its own
// cached prefix asks for exactly the missing suffix.
//mediavet:hotpath
func (p *Proxy) serveObject(w http.ResponseWriter, req *http.Request, meta Meta) {
	p.inflight.Add(1)
	defer p.inflight.Done()

	//mediavet:ignore hotpath parseRangeStart allocates only on its reject path; ranged requests come from peers, not the per-client steady path
	reqStart, rerr := parseRangeStart(req.Header.Get("Range"), meta.Size)
	if rerr != nil {
		http.Error(w, rerr.Error(), http.StatusRequestedRangeNotSatisfiable)
		return
	}

	obj := core.Object{
		ID:       meta.ID,
		Size:     meta.Size,
		Duration: meta.Duration,
		Rate:     meta.Rate,
		Value:    meta.Value,
	}

	rt := p.routeFor(meta)
	sh := p.shardFor(meta.ID)

	sh.mu.Lock()
	now := p.now().Sub(p.start).Seconds()
	res := sh.cache.Access(obj, sh.estimate(rt.idx), now)
	// Release byte storage for whatever the cache evicted.
	for _, v := range res.Victims {
		sh.store.Truncate(v.ID, sh.cache.CachedBytes(v.ID))
	}
	if res.CachedAfter < sh.store.Len(meta.ID) {
		sh.store.Truncate(meta.ID, res.CachedAfter)
	}
	retainTarget := res.CachedAfter
	sh.mu.Unlock()
	p.stats.requests.Add(1)

	// Zero-copy snapshot of the cached prefix: a view over immutable
	// segments, byte-stable without holding any lock while we write it
	// to the client.
	v := sh.store.View(meta.ID, meta.Size)
	// cacheServed is what the store can deliver past the requested
	// offset; a ranged request starting beyond the prefix serves nothing
	// from cache and relays the whole remainder.
	cacheServed := v.Len() - reqStart
	if cacheServed < 0 {
		cacheServed = 0
	}

	h := w.Header()
	if reqStart == 0 {
		if meta.sizeHeader != nil {
			h["Content-Length"] = meta.sizeHeader
		} else {
			// Meta built outside NewCatalog (tests): render on the spot.
			h["Content-Length"] = []string{strconv.FormatInt(meta.Size, 10)}
		}
	} else {
		// Ranged responses serve peer resumes, not the per-client steady
		// path: render headers on the spot.
		h["Content-Length"] = []string{strconv.FormatInt(meta.Size-reqStart, 10)}
		//mediavet:ignore hotpath ranged response headers render once per peer resume, not on the steady client path
		h["Content-Range"] = []string{fmt.Sprintf("bytes %d-%d/%d", reqStart, meta.Size-1, meta.Size)}
	}
	h["Content-Type"] = contentTypeMPEG
	if cacheServed > 0 {
		if reqStart == 0 && v.hdr != nil {
			h["X-Cache"] = v.hdr
		} else {
			// Ranged request, or the stored prefix outgrew the object size
			// and the view was clamped — not the steady hit path.
			//mediavet:ignore hotpath clamped-view and ranged headers render off the steady hit path
			h["X-Cache"] = []string{"HIT-PREFIX; bytes=" + strconv.FormatInt(cacheServed, 10)}
		}
	} else {
		h["X-Cache"] = missHeader
	}
	if reqStart > 0 {
		w.WriteHeader(http.StatusPartialContent)
	}

	// Phase 1: the cached prefix flows at cache-client speed, written
	// straight from the aliased segments — no per-request copy.
	if cacheServed > 0 {
		n, err := v.WriteRangeTo(w, reqStart)
		if err != nil {
			return
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		p.stats.prefixHits.Add(1)
		p.stats.bytesFromHit.Add(n)
	}

	// Phase 2: the remainder comes over the constrained upstream path —
	// through the object's in-flight relay when one covers our offset,
	// else through a new relay other requests can attach to. A reader
	// the bounded ring laps (more than the ring capacity behind the
	// fetch) is demoted to a private upstream fetch from where it left
	// off, so it still receives correct bytes.
	start := v.Len()
	if start < reqStart {
		start = reqStart
	}
	if start >= meta.Size {
		return
	}
	sh.mu.Lock()
	rl := sh.inflight[meta.ID]
	switch {
	case rl != nil && rl.start <= start && rl.attach():
		sh.mu.Unlock()
		rl.raiseRetain(retainTarget)
		p.stats.coalesced.Add(1)
		off, lapped := p.streamFromRelay(req.Context(), w, rl, start)
		rl.detach()
		if lapped {
			//mediavet:ignore hotpath ring-lap demotion runs once per slow client, not per request
			p.relayDirect(req.Context(), w, sh, meta, rt, off)
		}
	case rl != nil:
		// The in-flight transfer began past our offset (the prefix
		// shrank since it started) or is already being torn down: relay
		// privately, leaving the store to the active fetch.
		sh.mu.Unlock()
		//mediavet:ignore hotpath cold path: the racing-relay fallback runs once per lost race, not per request
		p.relayDirect(req.Context(), w, sh, meta, rt, start)
	default:
		ctx, cancel := context.WithCancel(context.Background())
		//mediavet:ignore hotpath cold miss path: relay construction happens once per upstream fetch and is amortized over every coalesced follower
		rl = newRelay(start, retainTarget, cancel)
		rl.attach() // the leader; a fresh relay never refuses
		sh.inflight[meta.ID] = rl
		p.inflight.Add(1)
		//mediavet:ignore hotpath cold miss path: one relay goroutine per upstream fetch, torn down when the transfer ends
		go p.runRelay(ctx, sh, meta, rt, rl)
		sh.mu.Unlock()
		off, lapped := p.streamFromRelay(req.Context(), w, rl, start)
		rl.detach()
		if lapped {
			//mediavet:ignore hotpath ring-lap demotion runs once per slow client, not per request
			p.relayDirect(req.Context(), w, sh, meta, rt, off)
		}
	}
}

// streamFromRelay copies relay bytes from object offset off to the
// client until the transfer ends or the client goes away (detected by
// write failure or the request context, whichever fires first). It
// returns the next unserved offset and whether the ring lapped this
// reader — in which case the caller must finish the transfer with a
// private origin fetch from that offset.
//
//mediavet:hotpath
func (p *Proxy) streamFromRelay(ctx context.Context, w http.ResponseWriter, rl *relay, off int64) (int64, bool) {
	//mediavet:ignore hotpath the bound rl.wake closure is the price of prompt cancel wakeups; one per streaming response
	stop := context.AfterFunc(ctx, rl.wake)
	defer stop()
	fl, _ := w.(http.Flusher)
	bp := fetchBufPool.Get().(*[]byte)
	defer fetchBufPool.Put(bp)
	buf := *bp
	for {
		n, done, err := rl.next(ctx, off, buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return off, false // client went away; detach may cancel the fetch
			}
			if fl != nil {
				fl.Flush()
			}
			off += int64(n)
		}
		if err == errRelayLapped {
			return off, true // demote: continue via relayDirect
		}
		if done && n == 0 {
			return off, false // transfer ended (cleanly or not): truncate here
		}
	}
}

// runRelay is the fetch goroutine behind one relay: it pulls the
// remainder from the routed upstream exactly once, publishes it to
// every attached client and the prefix store, then reconciles cache
// accounting with what was actually materialized. ctx is canceled by
// the last detaching client, aborting a transfer nobody reads anymore.
func (p *Proxy) runRelay(ctx context.Context, sh *shard, meta Meta, rt resolvedRoute, rl *relay) {
	defer p.inflight.Done()
	fetched, elapsed, usedIdx, err := p.fetchOrigin(ctx, sh, meta, rt, rl)
	rl.finish(err)
	p.stats.bytesFetched.Add(fetched)
	p.addTierBytes(usedIdx, fetched)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.inflight, meta.ID)
	// Passive measurement: throughput of this transfer on the path that
	// actually carried it (the fallback's, if the primary was demoted).
	if elapsed > 0 && fetched > 0 {
		sh.observe(usedIdx, float64(fetched)/elapsed)
	}
	// Reconcile accounting and materialization: an aborted transfer can
	// leave the cache granting bytes the store never received, and an
	// eviction racing the relay can leave store bytes the cache no
	// longer accounts for. Either way the store and the cache agree once
	// no transfer is in flight.
	stored := sh.store.Len(meta.ID)
	if acct := sh.cache.CachedBytes(meta.ID); stored < acct {
		sh.cache.Truncate(meta.ID, stored)
	} else if stored > acct {
		sh.store.Truncate(meta.ID, acct)
	}
}

// fetchOrigin streams object bytes [rl.start, meta.Size) from the
// routed upstream into the relay, retaining up to the relay's (possibly
// still rising) retention limit in the shard's store. It returns the
// bytes fetched, the transfer duration in seconds, and the upstream
// index that actually carried the transfer (the fallback's when the
// primary failed before its first byte).
func (p *Proxy) fetchOrigin(ctx context.Context, sh *shard, meta Meta, rt resolvedRoute, rl *relay) (int64, float64, int, error) {
	fetchStart := p.now()
	resp, release, usedIdx, err := p.openUpstream(ctx, meta, rt, rl.start)
	if err != nil {
		return 0, p.now().Sub(fetchStart).Seconds(), usedIdx, err
	}
	defer release()
	defer resp.Body.Close()

	var fetched int64
	bp := fetchBufPool.Get().(*[]byte)
	defer fetchBufPool.Put(bp)
	buf := *bp
	offset := rl.start
	for {
		n, readErr := resp.Body.Read(buf)
		if n > 0 {
			// Materialize before publishing: a client that has consumed
			// every published byte is then guaranteed the store was
			// offered them too.
			if limit := rl.retainLimit(); offset < limit {
				sh.store.AppendAt(meta.ID, offset, buf[:n], limit)
			}
			rl.append(buf[:n])
			offset += int64(n)
			fetched += int64(n)
		}
		if readErr == io.EOF {
			break
		}
		if readErr != nil {
			return fetched, p.now().Sub(fetchStart).Seconds(), usedIdx, fmt.Errorf("proxy: upstream read: %w", readErr)
		}
	}
	return fetched, p.now().Sub(fetchStart).Seconds(), usedIdx, nil
}

// relayDirect streams [start, meta.Size) from the routed upstream
// straight to one client, bypassing the store — the fallback when an
// in-flight relay exists but began past this client's offset.
func (p *Proxy) relayDirect(ctx context.Context, w http.ResponseWriter, sh *shard, meta Meta, rt resolvedRoute, start int64) {
	fetchStart := p.now()
	resp, release, usedIdx, err := p.openUpstream(ctx, meta, rt, start)
	if err != nil {
		return
	}
	defer release()
	defer resp.Body.Close()
	fl, _ := w.(http.Flusher)
	var fetched int64
	bp := fetchBufPool.Get().(*[]byte)
	defer fetchBufPool.Put(bp)
	buf := *bp
	for {
		n, readErr := resp.Body.Read(buf)
		if n > 0 {
			if _, err := w.Write(buf[:n]); err != nil {
				break
			}
			if fl != nil {
				fl.Flush()
			}
			fetched += int64(n)
		}
		if readErr != nil {
			break
		}
	}
	p.stats.bytesFetched.Add(fetched)
	p.addTierBytes(usedIdx, fetched)
	if elapsed := p.now().Sub(fetchStart).Seconds(); elapsed > 0 && fetched > 0 {
		sh.mu.Lock()
		sh.observe(usedIdx, float64(fetched)/elapsed)
		sh.mu.Unlock()
	}
}

// openUpstream opens the transfer for meta over rt's primary upstream,
// demoting to rt's fallback when the primary fails before delivering
// any byte — connection refused, header timeout, bad status. The
// demotion happens here, before the first byte reaches a relay or
// client, so a mid-stream upstream death still truncates cleanly (the
// next request recovers over the fallback path instead). It returns
// the response, a release func the caller must invoke once the body is
// consumed, and the upstream index that will carry the transfer.
func (p *Proxy) openUpstream(ctx context.Context, meta Meta, rt resolvedRoute, start int64) (*http.Response, func(), int, error) {
	resp, release, err := p.openOne(ctx, meta, rt.url, start, rt.headerTimeout)
	if err == nil {
		return resp, release, rt.idx, nil
	}
	if rt.fbIdx < 0 || ctx.Err() != nil {
		return nil, nil, rt.idx, err
	}
	resp, release, ferr := p.openOne(ctx, meta, rt.fbURL, start, 0)
	if ferr != nil {
		return nil, nil, rt.fbIdx, fmt.Errorf("proxy: primary upstream: %v; fallback: %w", err, ferr)
	}
	return resp, release, rt.fbIdx, nil
}

// openOne opens one upstream request, optionally bounding how long the
// upstream may take to produce response headers. The timeout never
// cuts an in-progress body: the timer is disarmed the moment headers
// arrive, and the returned release only frees the derived context.
func (p *Proxy) openOne(ctx context.Context, meta Meta, url string, start int64, timeout time.Duration) (*http.Response, func(), error) {
	if timeout <= 0 {
		resp, err := p.originRequest(ctx, meta, url, start)
		return resp, func() {}, err
	}
	hctx, cancel := context.WithCancel(ctx)
	timer := time.AfterFunc(timeout, cancel)
	resp, err := p.originRequest(hctx, meta, url, start)
	timer.Stop()
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

// originRequest opens a ranged GET for meta's content from the given
// upstream starting at the given byte offset. A ranged request demands
// a 206: an upstream that ignores Range and replies 200 would deliver
// byte 0 at offset `start`, corrupting the shared relay and prefix
// store, so it is rejected here.
func (p *Proxy) originRequest(ctx context.Context, meta Meta, origin string, start int64) (*http.Response, error) {
	url := fmt.Sprintf("%s/objects/%d", origin, meta.ID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("proxy: build origin request: %w", err)
	}
	if start > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", start))
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("proxy: origin fetch: %w", err)
	}
	want := http.StatusOK
	if start > 0 {
		want = http.StatusPartialContent
	}
	if resp.StatusCode != want {
		resp.Body.Close()
		return nil, fmt.Errorf("proxy: origin status %s for offset %d (want %d)", resp.Status, start, want)
	}
	return resp, nil
}

// StoredBytes returns the materialized prefix length of object id (a
// test and tooling hook; the owning shard is found by ID hash).
func (p *Proxy) StoredBytes(id int) int64 {
	return p.shardFor(id).store.Len(id)
}

// StoredTotal returns the total bytes materialized across all shard
// stores.
func (p *Proxy) StoredTotal() int64 {
	var total int64
	for _, sh := range p.shards {
		total += sh.store.TotalBytes()
	}
	return total
}

// AccountedBytes returns the cache-accounted prefix bytes of object id
// (a test hook: after Quiesce it must equal StoredBytes — the
// cluster-wide reconciliation invariant).
func (p *Proxy) AccountedBytes(id int) int64 {
	sh := p.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.cache.CachedBytes(id)
}

// InflightRelays returns the number of in-flight upstream transfers
// across all shards (a test hook: zero after Quiesce, or a relay
// leaked).
func (p *Proxy) InflightRelays() int {
	var n int
	for _, sh := range p.shards {
		sh.mu.Lock()
		n += len(sh.inflight)
		sh.mu.Unlock()
	}
	return n
}

// Snapshot aggregates the current stats across shards. Shard snapshots
// are taken one shard at a time under that shard's own lock — no
// stop-the-world pause — so the result is a consistent-per-shard,
// slightly time-smeared view, which is what a /stats endpoint wants.
func (p *Proxy) Snapshot() Stats {
	s := Stats{
		Requests:          p.stats.requests.Load(),
		PrefixHits:        p.stats.prefixHits.Load(),
		BytesFromHit:      p.stats.bytesFromHit.Load(),
		BytesFetched:      p.stats.bytesFetched.Load(),
		CoalescedRequests: p.stats.coalesced.Load(),
		Shards:            len(p.shards),
		DefaultOrigin:     p.originURL,
		Tier:              p.tier,
	}
	s.TierBytes = make(map[string]int64, len(p.tierNames))
	for i, t := range p.tierNames {
		s.TierBytes[t] = p.tierBytes[i].Load()
	}
	// Dense accumulators indexed by origin keep the aggregation to two
	// small allocations regardless of shard count.
	sums := make([]float64, len(p.origins))
	counts := make([]int, len(p.origins))
	for _, sh := range p.shards {
		sh.mu.Lock()
		snap := sh.cache.Snapshot()
		s.UsedBytes += snap.Used
		s.Objects += snap.Objects
		for i := range sh.est {
			if sh.est[i].observed {
				sums[i] += sh.est[i].est.Estimate()
				counts[i]++
			}
		}
		sh.mu.Unlock()
	}
	s.EstimatesBps = make(map[string]int64, len(p.origins))
	for i, o := range p.origins {
		if counts[i] > 0 {
			s.EstimatesBps[o] = int64(sums[i] / float64(counts[i]))
		}
	}
	return s
}

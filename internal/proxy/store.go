package proxy

import "sync"

// PrefixStore holds the actual bytes of cached object prefixes. The
// core.Cache accounts for space and decides placement; the store
// materializes the data. It is safe for concurrent use.
type PrefixStore struct {
	mu   sync.RWMutex
	data map[int][]byte
}

// NewPrefixStore returns an empty store.
func NewPrefixStore() *PrefixStore {
	return &PrefixStore{data: make(map[int][]byte)}
}

// Prefix returns a copy of object id's cached prefix (nil when absent).
//mediavet:hotpath
func (s *PrefixStore) Prefix(id int) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := s.data[id]
	if len(p) == 0 {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// Len returns the stored prefix length of object id.
//mediavet:hotpath
func (s *PrefixStore) Len(id int) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.data[id]))
}

// AppendAt extends object id's prefix with data that belongs at the
// given object offset, but never beyond limit bytes total. Because
// object content at a given offset is immutable, overlapping writes from
// concurrent relays are deduplicated: bytes already present are skipped,
// and data arriving beyond the current prefix end (a gap) is dropped.
// It returns the number of bytes retained.
func (s *PrefixStore) AppendAt(id int, offset int64, data []byte, limit int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.data[id]
	curLen := int64(len(cur))
	if offset > curLen {
		return 0 // non-contiguous: would leave a hole
	}
	skip := curLen - offset
	if skip >= int64(len(data)) {
		return 0 // entirely already present
	}
	data = data[skip:]
	room := limit - curLen
	if room <= 0 {
		return 0
	}
	take := int64(len(data))
	if take > room {
		take = room
	}
	s.data[id] = append(cur, data[:take]...)
	return take
}

// Truncate shrinks object id's prefix to at most n bytes, deleting it
// entirely at zero.
//mediavet:hotpath
func (s *PrefixStore) Truncate(id int, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.data[id]
	if !ok {
		return
	}
	if n <= 0 {
		delete(s.data, id)
		return
	}
	if int64(len(cur)) > n {
		s.data[id] = cur[:n:n]
	}
}

// TotalBytes returns the sum of all stored prefix lengths.
func (s *PrefixStore) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, p := range s.data {
		total += int64(len(p))
	}
	return total
}

package proxy

import (
	"bytes"
	"io"
	"math"
	"strconv"
	"sync"
)

// PrefixStore holds the actual bytes of cached object prefixes. The
// core.Cache accounts for space and decides placement; the store
// materializes the data. It is safe for concurrent use.
//
// Storage is a chain of fixed-size segments per object rather than one
// growing []byte: appends fill the tail segment and open new ones,
// truncation drops whole segments plus a logical tail limit, and reads
// are zero-copy — a prefixView captured under the lock aliases the
// segment chain and stays valid after the lock is released, because
// published segment bytes are immutable (see segment).
type PrefixStore struct {
	mu   sync.RWMutex
	data map[int]*prefixEntry
	// total is the running sum of all entry lengths, so TotalBytes is
	// O(1) instead of an O(objects) scan under the lock per /stats.
	total int64
}

// prefixEntry is one object's segment chain. Invariants (under the
// store lock):
//
//   - Segments are contiguous in object-offset order, and segs[i+1].off
//     is exactly the count of valid bytes ever published through
//     segs[i] — so a lock-free reader derives every non-tail segment's
//     valid range from the (immutable) next segment's off.
//   - length is the logical prefix length. After a mid-segment
//     truncation the tail segment still holds stale bytes beyond
//     length; they are sealed, never overwritten — the next append
//     opens a fresh segment at offset length instead. That is what
//     keeps views captured before the truncation byte-stable.
type prefixEntry struct {
	segs   []*segment
	length int64
	// hdr is the prebuilt X-Cache response header value for the current
	// length, rebuilt on append/truncate (the cold paths) so the warmed
	// prefix-hit serve path assigns it without allocating.
	hdr []string
}

func (e *prefixEntry) tail() *segment {
	if len(e.segs) == 0 {
		return nil
	}
	return e.segs[len(e.segs)-1]
}

// rebuildHeader re-renders the cached X-Cache value after the prefix
// length changed.
func (e *prefixEntry) rebuildHeader() {
	e.hdr = []string{"HIT-PREFIX; bytes=" + strconv.FormatInt(e.length, 10)}
}

// NewPrefixStore returns an empty store.
func NewPrefixStore() *PrefixStore {
	return &PrefixStore{data: make(map[int]*prefixEntry)}
}

// prefixView is a consistent point-in-time snapshot of an object's
// prefix: at most n bytes, readable without the store lock. The view
// aliases immutable segment memory, so it remains byte-stable even if
// the store concurrently truncates or extends the object.
type prefixView struct {
	segs []*segment
	n    int64
	// hdr is the store's prebuilt X-Cache value when the view covers
	// the full stored prefix; nil when the caller's clamp cut it short
	// (the caller renders its own header then).
	hdr []string
}

// Len returns the byte length of the view.
//
//mediavet:hotpath
func (v prefixView) Len() int64 { return v.n }

// WriteTo streams the snapshot to w without copying: each write aliases
// a segment's published bytes directly.
//
//mediavet:hotpath
func (v prefixView) WriteTo(w io.Writer) (int64, error) {
	var written int64
	for i, seg := range v.segs {
		if seg.off >= v.n {
			break
		}
		end := v.n
		if i+1 < len(v.segs) && v.segs[i+1].off < end {
			end = v.segs[i+1].off
		}
		n, err := w.Write(seg.buf[:end-seg.off])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// WriteRangeTo streams the snapshot's bytes at object offsets
// [from, Len()) to w without copying — the ranged variant of WriteTo
// used when a peer or a ranged client resumes mid-prefix. A from at or
// past the view length writes nothing.
//
//mediavet:hotpath
func (v prefixView) WriteRangeTo(w io.Writer, from int64) (int64, error) {
	if from <= 0 {
		return v.WriteTo(w)
	}
	var written int64
	for i, seg := range v.segs {
		if seg.off >= v.n {
			break
		}
		end := v.n
		if i+1 < len(v.segs) && v.segs[i+1].off < end {
			end = v.segs[i+1].off
		}
		if end <= from {
			continue
		}
		lo := seg.off
		if from > lo {
			lo = from
		}
		n, err := w.Write(seg.buf[lo-seg.off : end-seg.off])
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}

// View captures a zero-copy snapshot of object id's prefix, clamped to
// max bytes. The empty view has Len() 0.
//
//mediavet:hotpath
func (s *PrefixStore) View(id int, max int64) prefixView {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e := s.data[id]
	if e == nil || e.length == 0 || max <= 0 {
		return prefixView{}
	}
	v := prefixView{segs: e.segs, n: e.length}
	if v.n > max {
		v.n = max
	} else {
		v.hdr = e.hdr
	}
	return v
}

// Prefix returns a copy of object id's cached prefix (nil when absent).
// It is a test and tooling hook; the serve path uses View for zero-copy
// access.
func (s *PrefixStore) Prefix(id int) []byte {
	v := s.View(id, math.MaxInt64)
	if v.n == 0 {
		return nil
	}
	var buf bytes.Buffer
	buf.Grow(int(v.n))
	if _, err := v.WriteTo(&buf); err != nil {
		return nil // bytes.Buffer does not fail; keep the linter honest
	}
	return buf.Bytes()
}

// Len returns the stored prefix length of object id.
//
//mediavet:hotpath
func (s *PrefixStore) Len(id int) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e := s.data[id]; e != nil {
		return e.length
	}
	return 0
}

// AppendAt extends object id's prefix with data that belongs at the
// given object offset, but never beyond limit bytes total. Because
// object content at a given offset is immutable, overlapping writes from
// concurrent relays are deduplicated: bytes already present are skipped,
// and data arriving beyond the current prefix end (a gap) is dropped.
// It returns the number of bytes retained.
func (s *PrefixStore) AppendAt(id int, offset int64, data []byte, limit int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.data[id]
	var curLen int64
	if e != nil {
		curLen = e.length
	}
	if offset > curLen {
		return 0 // non-contiguous: would leave a hole
	}
	skip := curLen - offset
	if skip >= int64(len(data)) {
		return 0 // entirely already present
	}
	data = data[skip:]
	room := limit - curLen
	if room <= 0 {
		return 0
	}
	take := int64(len(data))
	if take > room {
		take = room
	}
	if e == nil {
		e = &prefixEntry{}
		s.data[id] = e
	}
	for rem := data[:take]; len(rem) > 0; {
		seg := e.tail()
		if seg == nil || seg.used == segmentSize || seg.off+int64(seg.used) != e.length {
			// No tail, tail full, or tail sealed by a mid-segment
			// truncation: open a fresh segment at the logical end.
			seg = newSegment(e.length)
			e.segs = append(e.segs, seg)
		}
		n := copy(seg.buf[seg.used:], rem)
		seg.used += n
		e.length += int64(n)
		rem = rem[n:]
	}
	s.total += take
	e.rebuildHeader()
	return take
}

// Truncate shrinks object id's prefix to at most n bytes, deleting it
// entirely at zero. Dropped segments are left to the GC — an in-flight
// zero-copy view may still alias them.
//
//mediavet:hotpath
func (s *PrefixStore) Truncate(id int, n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.data[id]
	if e == nil {
		return
	}
	if n <= 0 {
		s.total -= e.length
		delete(s.data, id)
		return
	}
	if n >= e.length {
		return
	}
	s.total -= e.length - n
	e.length = n
	// Drop whole segments past the cut. The full-slice clip forces the
	// next append onto a fresh backing array, so slice headers captured
	// by in-flight views never observe a recycled slot.
	k := len(e.segs)
	for k > 0 && e.segs[k-1].off >= n {
		k--
	}
	if k < len(e.segs) {
		e.segs = e.segs[:k:k]
	}
	//mediavet:ignore hotpath header re-render runs only when bytes were actually dropped (the eviction path), never on the steady hit path
	e.rebuildHeader()
}

// TotalBytes returns the sum of all stored prefix lengths, maintained
// incrementally on append and truncate.
//
//mediavet:hotpath
func (s *PrefixStore) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// scanTotalBytes recomputes the total by walking every entry — the
// O(objects) reference the running counter is tested against.
func (s *PrefixStore) scanTotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, e := range s.data {
		total += e.length
	}
	return total
}

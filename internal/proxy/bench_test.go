package proxy

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"streamcache/internal/core"
	"streamcache/internal/units"
)

// BenchmarkProxyServe measures in-process proxy throughput on the
// warmed hot path (prefix hits) across the shard axis. shards=1 is the
// serialized baseline — every request crosses the same lock, as the
// pre-sharding proxy did — and on a GOMAXPROCS>=8 machine the 1→8
// curve is the concurrency win of the sharded tier. Request paths are
// precomputed and each goroutine reuses one discarding writer (reset
// between iterations), so the loop measures the serve path, not
// fmt.Sprintf and recorder construction.
func BenchmarkProxyServe(b *testing.B) {
	const nObjects = 64
	const objBytes = 32 * units.KB
	metas := make([]Meta, nObjects)
	for i := range metas {
		metas[i] = Meta{ID: i, Size: objBytes, Rate: units.KBps(512), Value: 1}
	}
	catalog, err := NewCatalog(metas)
	if err != nil {
		b.Fatal(err)
	}
	origin, err := NewOrigin(catalog, 0)
	if err != nil {
		b.Fatal(err)
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	reqs := make([]*http.Request, nObjects)
	for i := range reqs {
		reqs[i] = httptest.NewRequest("GET", fmt.Sprintf("/objects/%d", i), nil)
	}

	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			px, err := New(Config{
				Catalog:    catalog,
				OriginURL:  originSrv.URL,
				Shards:     shards,
				CacheBytes: units.GBytes(1),
				NewPolicy:  core.NewIB,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm every object so the measured loop is pure prefix
			// hits (cache-client speed, no origin traffic).
			warm := &nullResponseWriter{h: make(http.Header)}
			for i, req := range reqs {
				warm.n = 0
				px.ServeHTTP(warm, req)
				if warm.n != objBytes {
					b.Fatalf("warmup object %d: %d bytes", i, warm.n)
				}
			}
			px.Quiesce()

			var next atomic.Int64
			b.ReportAllocs()
			b.SetBytes(objBytes)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := &nullResponseWriter{h: make(http.Header)}
				for pb.Next() {
					id := int(next.Add(1)) % nObjects
					w.n = 0
					px.ServeHTTP(w, reqs[id])
					if w.n != objBytes {
						b.Fatalf("object %d: short response %d", id, w.n)
					}
				}
			})
		})
	}
}

// BenchmarkRelayCoalesce measures the bounded-ring relay data plane: a
// fetch publishes a 1 MiB remainder through the ring while N attached
// readers drain it concurrently — the thundering-herd shape the relay
// singleflight exists for. A reader the ring laps jumps forward to the
// live window instead of failing (in production it would demote to
// relayDirect); laps/op reports how often that happened.
func BenchmarkRelayCoalesce(b *testing.B) {
	const objBytes = 1 << 20
	const chunk = 16 * 1024
	data := Content(1, 0, objBytes)
	for _, readers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			var laps atomic.Int64
			b.ReportAllocs()
			b.SetBytes(objBytes)
			b.ResetTimer()
			for range b.N {
				rl := newRelay(0, 0, nil)
				var wg sync.WaitGroup
				for r := 0; r < readers; r++ {
					if !rl.attach() {
						b.Fatal("attach refused")
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						defer rl.detach()
						bp := fetchBufPool.Get().(*[]byte)
						defer fetchBufPool.Put(bp)
						buf := *bp
						var off int64
						for {
							n, done, err := rl.next(context.Background(), off, buf)
							if err == errRelayLapped {
								off = rl.tailOffset()
								laps.Add(1)
								continue
							}
							if err != nil {
								b.Errorf("next: %v", err)
								return
							}
							off += int64(n)
							if done && n == 0 {
								return
							}
						}
					}()
				}
				for off := 0; off < objBytes; off += chunk {
					rl.append(data[off : off+chunk])
				}
				rl.finish(nil)
				wg.Wait()
			}
			b.ReportMetric(float64(laps.Load())/float64(b.N), "laps/op")
		})
	}
}

package proxy

import (
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"streamcache/internal/core"
	"streamcache/internal/units"
)

// BenchmarkProxyServe measures in-process proxy throughput on the
// warmed hot path (prefix hits) at 1 vs 8 shards. shards=1 is the
// serialized baseline — every request crosses the same lock, as the
// pre-sharding proxy did — and shards=8 is the sharded tier; on a
// GOMAXPROCS>=8 machine the delta is the concurrency win of the PR 5
// refactor. Requests go straight to ServeHTTP with httptest recorders,
// so no sockets or origin round-trips pollute the measurement.
func BenchmarkProxyServe(b *testing.B) {
	const nObjects = 64
	metas := make([]Meta, nObjects)
	for i := range metas {
		metas[i] = Meta{ID: i, Size: 32 * units.KB, Rate: units.KBps(512), Value: 1}
	}
	catalog, err := NewCatalog(metas)
	if err != nil {
		b.Fatal(err)
	}
	origin, err := NewOrigin(catalog, 0)
	if err != nil {
		b.Fatal(err)
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			px, err := New(Config{
				Catalog:    catalog,
				OriginURL:  originSrv.URL,
				Shards:     shards,
				CacheBytes: units.GBytes(1),
				NewPolicy:  core.NewIB,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Warm every object so the measured loop is pure prefix
			// hits (cache-client speed, no origin traffic).
			for id := 0; id < nObjects; id++ {
				rec := httptest.NewRecorder()
				px.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/objects/%d", id), nil))
				if int64(rec.Body.Len()) != 32*units.KB {
					b.Fatalf("warmup object %d: %d bytes", id, rec.Body.Len())
				}
			}
			px.Quiesce()

			var next atomic.Int64
			b.ReportAllocs()
			b.SetBytes(32 * units.KB)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					id := int(next.Add(1)) % nObjects
					rec := httptest.NewRecorder()
					px.ServeHTTP(rec, httptest.NewRequest("GET", fmt.Sprintf("/objects/%d", id), nil))
					if int64(rec.Body.Len()) != 32*units.KB {
						b.Fatalf("object %d: short response %d", id, rec.Body.Len())
					}
				}
			})
		})
	}
}

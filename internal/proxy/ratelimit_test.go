package proxy

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// fakeClock drives a rateLimitedWriter with injected time: sleeps
// advance the clock by the requested duration times an oversleep
// factor plus a fixed overshoot, modeling timer slop.
type fakeClock struct {
	now       time.Time
	factor    float64       // multiplicative oversleep (1 = exact)
	overshoot time.Duration // additive oversleep per sleep
	sleeps    int
}

func newFakeClock(factor float64, overshoot time.Duration) *fakeClock {
	return &fakeClock{now: time.Unix(0, 0), factor: factor, overshoot: overshoot}
}

func (c *fakeClock) Now() time.Time { return c.now }

func (c *fakeClock) Sleep(d time.Duration) {
	c.sleeps++
	c.now = c.now.Add(time.Duration(float64(d)*c.factor) + c.overshoot)
}

// install wires the clock into w.
func (c *fakeClock) install(w *rateLimitedWriter) {
	w.now = c.Now
	w.sleep = c.Sleep
}

// TestRateLimitedWriterThroughputUnderOversleep is the regression test
// for the token-discard bug: waitFor used to zero the bucket after
// every sleep, so tokens accrued during timer oversleep were thrown
// away and long-run delivered throughput sat systematically below the
// configured rate. With elapsed-time crediting, throughput must stay
// within 1% of the configured rate whatever the oversleep profile.
func TestRateLimitedWriterThroughputUnderOversleep(t *testing.T) {
	const rate = 256 * 1024 // 256 KB/s
	scenarios := []struct {
		name      string
		factor    float64
		overshoot time.Duration
	}{
		{"exact timer", 1.0, 0},
		{"5% oversleep", 1.05, 0},
		{"fixed 2ms overshoot", 1.0, 2 * time.Millisecond},
		{"both", 1.10, 5 * time.Millisecond},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := newRateLimitedWriter(&buf, rate)
			clock := newFakeClock(sc.factor, sc.overshoot)
			clock.install(w)

			// A long run: 8 MB in 64 KB writes = 32 simulated seconds.
			const total = 8 << 20
			chunk := make([]byte, 64*1024)
			for written := 0; written < total; written += len(chunk) {
				if _, err := w.Write(chunk); err != nil {
					t.Fatal(err)
				}
			}
			elapsed := clock.now.Sub(time.Unix(0, 0)).Seconds()
			if elapsed <= 0 {
				t.Fatal("clock never advanced")
			}
			got := float64(total) / elapsed
			if rel := math.Abs(got-rate) / rate; rel > 0.01 {
				t.Errorf("delivered %.0f B/s vs configured %d B/s (%.2f%% off, want <1%%; slept %d times)",
					got, rate, rel*100, clock.sleeps)
			}
			if buf.Len() != total {
				t.Errorf("wrote %d bytes, want %d", buf.Len(), total)
			}
		})
	}
}

// TestRateLimitedWriterAwkwardRateTerminates guards the sleep
// rounding: at rates where deficit/rate truncates below a whole
// nanosecond, an exact timer repays slightly less than the debt and a
// zero-length follow-up sleep would spin forever on a clock that only
// advances by the requested amount.
func TestRateLimitedWriterAwkwardRateTerminates(t *testing.T) {
	var buf bytes.Buffer
	const rate = 300001 // deficit/rate is not ns-exact
	w := newRateLimitedWriter(&buf, rate)
	clock := newFakeClock(1.0, 0) // exact timer: sleeps advance exactly as asked
	clock.install(w)

	// Long enough that the free initial burst (rate/8 bytes) is noise.
	const total = 8 << 20
	if _, err := w.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	elapsed := clock.now.Sub(time.Unix(0, 0)).Seconds()
	got := float64(total) / elapsed
	if rel := math.Abs(got-rate) / rate; rel > 0.01 {
		t.Errorf("delivered %.0f B/s vs configured %d B/s (%.2f%% off)", got, rate, rel*100)
	}
}

// TestRateLimitedWriterCreditsActualElapsed pins the mechanism: after
// one oversleeping wait, the surplus tokens must survive into the next
// write instead of being zeroed.
func TestRateLimitedWriterCreditsActualElapsed(t *testing.T) {
	var buf bytes.Buffer
	w := newRateLimitedWriter(&buf, 64*1024) // burst = 8 KB
	clock := newFakeClock(2.0, 0)            // sleeps take twice as long as asked
	clock.install(w)

	// First write drains the initial burst and sleeps; the doubled sleep
	// banks surplus tokens (capped at one burst).
	if _, err := w.Write(make([]byte, 16*1024)); err != nil {
		t.Fatal(err)
	}
	if w.tokens <= 0 {
		t.Errorf("tokens = %v after oversleep, want surplus > 0 (oversleep credit discarded)", w.tokens)
	}
	if w.tokens > w.burst {
		t.Errorf("tokens = %v exceed burst %v", w.tokens, w.burst)
	}

	// The banked surplus pays for the next chunk without sleeping again.
	sleepsBefore := clock.sleeps
	if _, err := w.Write(make([]byte, 8*1024)); err != nil {
		t.Fatal(err)
	}
	if clock.sleeps != sleepsBefore {
		t.Errorf("writer slept despite banked oversleep credit")
	}
}

func TestStatsEstimateBps(t *testing.T) {
	tests := []struct {
		name   string
		stats  Stats
		origin string
		want   int64
	}{
		{
			name:   "no estimates",
			stats:  Stats{},
			origin: "",
			want:   0,
		},
		{
			name:   "single origin, empty query",
			stats:  Stats{EstimatesBps: map[string]int64{"http://a": 100}},
			origin: "",
			want:   100,
		},
		{
			name:   "single origin, named query",
			stats:  Stats{EstimatesBps: map[string]int64{"http://a": 100}},
			origin: "http://a",
			want:   100,
		},
		{
			name:   "unknown named origin",
			stats:  Stats{EstimatesBps: map[string]int64{"http://a": 100}},
			origin: "http://b",
			want:   0,
		},
		{
			name: "many origins, empty query prefers default",
			stats: Stats{
				EstimatesBps:  map[string]int64{"http://a": 100, "http://b": 200, "http://c": 300},
				DefaultOrigin: "http://b",
			},
			origin: "",
			want:   200,
		},
		{
			name: "many origins, no default estimate, sorted-key first",
			stats: Stats{
				EstimatesBps:  map[string]int64{"http://c": 300, "http://b": 200, "http://a": 100},
				DefaultOrigin: "http://never-fetched",
			},
			origin: "",
			want:   100,
		},
		{
			name: "many origins, named query",
			stats: Stats{
				EstimatesBps:  map[string]int64{"http://a": 100, "http://b": 200},
				DefaultOrigin: "http://a",
			},
			origin: "http://b",
			want:   200,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.stats.EstimateBps(tt.origin); got != tt.want {
				t.Errorf("EstimateBps(%q) = %d, want %d", tt.origin, got, tt.want)
			}
		})
	}
}

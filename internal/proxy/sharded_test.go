package proxy

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streamcache/internal/core"
	"streamcache/internal/units"
)

func TestNewShardedValidation(t *testing.T) {
	catalog := testCatalog(t)
	base := Config{
		Catalog:    catalog,
		OriginURL:  "http://x",
		CacheBytes: units.MB,
		NewPolicy:  core.NewLRU,
	}
	if _, err := New(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	cfg := base
	cfg.Catalog = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil catalog accepted")
	}
	cfg = base
	cfg.OriginURL = ""
	if _, err := New(cfg); err == nil {
		t.Error("empty origin accepted")
	}
	cfg = base
	cfg.Shards = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative shards accepted")
	}
	cfg = base
	cfg.NewPolicy = nil
	if _, err := New(cfg); err == nil {
		t.Error("nil policy factory accepted")
	}
	cfg = base
	cfg.CacheBytes = -1
	if _, err := New(cfg); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestShardedCapacitySplit(t *testing.T) {
	px, err := New(Config{
		Catalog:    testCatalog(t),
		OriginURL:  "http://x",
		Shards:     4,
		CacheBytes: 10,
		NewPolicy:  core.NewLRU,
	})
	if err != nil {
		t.Fatal(err)
	}
	if px.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", px.Shards())
	}
	var total int64
	for _, sh := range px.shards {
		total += sh.cache.Capacity()
	}
	if total != 10 {
		t.Errorf("shard capacities sum to %d, want 10", total)
	}
}

// startShardedStack brings up an origin and an n-shard proxy in front of
// it over the given catalog.
func startShardedStack(t *testing.T, catalog *Catalog, shards int, cacheBytes int64, newPolicy func() core.Policy, originRate float64) (*Proxy, string) {
	t.Helper()
	origin, err := NewOrigin(catalog, originRate)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)
	px, err := New(Config{
		Catalog:    catalog,
		OriginURL:  originSrv.URL,
		Shards:     shards,
		CacheBytes: cacheBytes,
		NewPolicy:  newPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(px)
	t.Cleanup(proxySrv.Close)
	return px, proxySrv.URL
}

func TestProxyShardedEndToEnd(t *testing.T) {
	catalog := testCatalog(t)
	px, proxyURL := startShardedStack(t, catalog, 8, units.GBytes(1), core.NewIB, 0)
	for round := 0; round < 3; round++ {
		for _, id := range []int{1, 2, 3} {
			meta, _ := catalog.Get(id)
			res, err := Fetch(fmt.Sprintf("%s/objects/%d", proxyURL, id))
			if err != nil {
				t.Fatal(err)
			}
			if res.Bytes != meta.Size {
				t.Fatalf("round %d object %d: %d bytes, want %d", round, id, res.Bytes, meta.Size)
			}
			if want := ContentSHA256(id, meta.Size); res.SHA256 != want {
				t.Fatalf("round %d object %d: digest mismatch", round, id)
			}
		}
	}
	px.Quiesce()
	stats := px.Snapshot()
	if stats.Shards != 8 {
		t.Errorf("stats.Shards = %d, want 8", stats.Shards)
	}
	if stats.Requests != 9 || stats.PrefixHits == 0 {
		t.Errorf("stats = %+v, want 9 requests with prefix hits", stats)
	}
	if want := int64(256+128+64) * units.KB; stats.UsedBytes != want {
		t.Errorf("UsedBytes = %d, want %d (all three objects cached)", stats.UsedBytes, want)
	}
	if stats.Objects != 3 {
		t.Errorf("Objects = %d, want 3", stats.Objects)
	}
}

// stressCatalog builds n objects with varied sizes so evictions hit
// objects of different weights across shards.
func stressCatalog(t *testing.T, n int) *Catalog {
	t.Helper()
	metas := make([]Meta, n)
	for i := range metas {
		size := int64(16+16*(i%4)) * units.KB
		metas[i] = Meta{ID: i, Size: size, Rate: units.KBps(512), Value: 1}
	}
	c, err := NewCatalog(metas)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestProxyShardedStress hammers one hot object and a spread of cold
// objects across shards with a cache small enough to force continuous
// hit/miss/evict interleavings, asserting every response is
// byte-correct and that store bytes and cache accounting agree once the
// proxy quiesces. Run under -race this is the concurrency regression
// test for the sharded tier.
func TestProxyShardedStress(t *testing.T) {
	const nObjects = 16
	catalog := stressCatalog(t, nObjects)
	// ~5 object-equivalents of capacity: constant eviction churn.
	px, proxyURL := startShardedStack(t, catalog, 4, 160*units.KB, core.NewLRU, 0)

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(worker)))
			for i := 0; i < perWorker; i++ {
				// Half the traffic hammers hot object 0 (coalescing,
				// same-shard contention); the rest spreads over the
				// cold tail (cross-shard misses and evictions).
				id := 0
				if rng.Intn(2) == 1 {
					id = 1 + rng.Intn(nObjects-1)
				}
				meta, _ := catalog.Get(id)
				res, err := Fetch(fmt.Sprintf("%s/objects/%d", proxyURL, id))
				if err != nil {
					errs <- fmt.Errorf("object %d: %w", id, err)
					continue
				}
				if res.Bytes != meta.Size {
					errs <- fmt.Errorf("object %d: %d bytes, want %d", id, res.Bytes, meta.Size)
					continue
				}
				if want := ContentSHA256(id, meta.Size); res.SHA256 != want {
					errs <- fmt.Errorf("object %d: digest mismatch under stress", id)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	px.Quiesce()
	stats := px.Snapshot()
	if stats.UsedBytes > 160*units.KB {
		t.Errorf("cache accounting %d exceeds capacity", stats.UsedBytes)
	}
	if got := px.StoredTotal(); got > 160*units.KB {
		t.Errorf("byte stores hold %d bytes, exceeds capacity", got)
	}
	// With no transfer in flight, every shard's store must agree with
	// its cache accounting byte-for-byte.
	for si, sh := range px.shards {
		sh.mu.Lock()
		for id := 0; id < nObjects; id++ {
			if px.shardFor(id) != sh {
				continue
			}
			if stored, acct := sh.store.Len(id), sh.cache.CachedBytes(id); stored != acct {
				t.Errorf("shard %d object %d: store %d bytes, cache accounts %d", si, id, stored, acct)
			}
		}
		if len(sh.inflight) != 0 {
			t.Errorf("shard %d: %d relays leaked past Quiesce", si, len(sh.inflight))
		}
		sh.mu.Unlock()
	}
}

// gatedOrigin serves the first firstBytes of each response, then blocks
// until released; if abort is set it kills the connection instead of
// completing, but only for the first `aborts` requests.
type gatedOrigin struct {
	catalog    *Catalog
	firstBytes int64
	release    chan struct{}
	aborts     int32
	requests   atomic.Int32
}

func (g *gatedOrigin) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	g.requests.Add(1)
	id, ok := parseObjectPath(req.URL.Path)
	if !ok {
		http.NotFound(w, req)
		return
	}
	meta, _ := g.catalog.Get(id)
	start, err := parseRangeStart(req.Header.Get("Range"), meta.Size)
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
		return
	}
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Size-start, 10))
	if start > 0 {
		w.WriteHeader(http.StatusPartialContent)
	}
	head := g.firstBytes
	if head > meta.Size-start {
		head = meta.Size - start
	}
	if _, err := w.Write(Content(id, start, head)); err != nil {
		return
	}
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	<-g.release
	if atomic.AddInt32(&g.aborts, -1) >= 0 {
		panic(http.ErrAbortHandler)
	}
	if _, err := w.Write(Content(id, start+head, meta.Size-start-head)); err != nil {
		return
	}
}

// startGatedStack wires a gated origin to a fresh single-shard proxy.
func startGatedStack(t *testing.T, catalog *Catalog, gate *gatedOrigin) (*Proxy, string) {
	t.Helper()
	originSrv := httptest.NewServer(gate)
	t.Cleanup(originSrv.Close)
	px, err := New(Config{
		Catalog:    catalog,
		OriginURL:  originSrv.URL,
		Shards:     1,
		CacheBytes: units.GBytes(1),
		NewPolicy:  core.NewIB,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(px)
	t.Cleanup(proxySrv.Close)
	return px, proxySrv.URL
}

// waitForCoalesced polls until n requests have attached to an in-flight
// relay (or times out).
func waitForCoalesced(t *testing.T, px *Proxy, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for px.Snapshot().CoalescedRequests < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d coalesced requests, want %d", px.Snapshot().CoalescedRequests, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalescedFetchSingleOriginTransfer pins the singleflight
// guarantee: a thundering herd of clients for one cold object costs
// exactly one transfer over the constrained origin path, and every
// client still receives the complete, byte-correct object.
func TestCoalescedFetchSingleOriginTransfer(t *testing.T) {
	catalog := testCatalog(t)
	meta, _ := catalog.Get(1)
	gate := &gatedOrigin{catalog: catalog, firstBytes: 32 * units.KB, release: make(chan struct{})}
	px, proxyURL := startGatedStack(t, catalog, gate)

	const herd = 6
	results := make([]*FetchResult, herd)
	fetchErrs := make([]error, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], fetchErrs[i] = Fetch(proxyURL + "/objects/1")
		}(i)
	}
	// Every late arrival must attach to the leader's stalled transfer
	// before the origin is released.
	waitForCoalesced(t, px, herd-1)
	close(gate.release)
	wg.Wait()

	for i := 0; i < herd; i++ {
		if fetchErrs[i] != nil {
			t.Fatalf("client %d: %v", i, fetchErrs[i])
		}
		if results[i].Bytes != meta.Size {
			t.Fatalf("client %d: %d bytes, want %d", i, results[i].Bytes, meta.Size)
		}
		if want := ContentSHA256(1, meta.Size); results[i].SHA256 != want {
			t.Fatalf("client %d: digest mismatch", i)
		}
	}
	px.Quiesce()
	if got := gate.requests.Load(); got != 1 {
		t.Errorf("origin saw %d requests for a %d-client herd, want 1", got, herd)
	}
	stats := px.Snapshot()
	if stats.BytesFetched != meta.Size {
		t.Errorf("BytesFetched = %d, want %d (one transfer)", stats.BytesFetched, meta.Size)
	}
	if stats.CoalescedRequests != herd-1 {
		t.Errorf("CoalescedRequests = %d, want %d", stats.CoalescedRequests, herd-1)
	}
}

// TestCoalescedRelayOriginAbort is the failure-path regression: the
// origin dies mid-transfer while a herd is attached to the relay. Every
// client gets a clean truncation, the cached prefix stays consistent
// with cache accounting, and the aborted transfer leaks neither relays
// nor stats.
func TestCoalescedRelayOriginAbort(t *testing.T) {
	catalog := testCatalog(t)
	meta, _ := catalog.Get(1)
	gate := &gatedOrigin{catalog: catalog, firstBytes: 32 * units.KB, release: make(chan struct{}), aborts: 1}
	px, proxyURL := startGatedStack(t, catalog, gate)

	const herd = 4
	results := make([]*FetchResult, herd)
	fetchErrs := make([]error, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], fetchErrs[i] = Fetch(proxyURL + "/objects/1")
		}(i)
	}
	waitForCoalesced(t, px, herd-1)
	close(gate.release)
	wg.Wait()
	px.Quiesce()

	// Clean truncation: no client may think it got the whole object.
	for i := 0; i < herd; i++ {
		if fetchErrs[i] == nil && results[i].Bytes >= meta.Size {
			t.Fatalf("client %d: full object delivered through an aborted transfer", i)
		}
	}
	// Prefix consistency: store and accounting agree, bounded by what
	// the origin actually sent.
	sh := px.shardFor(1)
	sh.mu.Lock()
	stored, acct := sh.store.Len(1), sh.cache.CachedBytes(1)
	leaked := len(sh.inflight)
	sh.mu.Unlock()
	if stored != acct {
		t.Errorf("store holds %d bytes, cache accounts %d", stored, acct)
	}
	if stored > 32*units.KB {
		t.Errorf("store holds %d bytes, origin only sent 32 KB", stored)
	}
	if leaked != 0 {
		t.Errorf("%d relays leaked past the abort", leaked)
	}
	// Stats must reflect the single truncated transfer, not the herd.
	stats := px.Snapshot()
	if stats.BytesFetched > 32*units.KB {
		t.Errorf("BytesFetched = %d, want <= 32 KB (single aborted transfer)", stats.BytesFetched)
	}
	if stats.CoalescedRequests != herd-1 {
		t.Errorf("CoalescedRequests = %d, want %d", stats.CoalescedRequests, herd-1)
	}

	// Recovery: the next fetch hits the healthy origin and completes the
	// object from wherever the abort left it.
	res, err := Fetch(proxyURL + "/objects/1")
	if err != nil {
		t.Fatal(err)
	}
	if want := ContentSHA256(1, meta.Size); res.SHA256 != want {
		t.Fatal("recovery fetch corrupted content")
	}
}

// TestRelayCanceledWhenClientsVanish pins the fetch-cancellation rule:
// when every client attached to a relay disconnects mid-transfer, the
// shared origin fetch is aborted instead of pulling the remainder over
// the constrained path for nobody, and the proxy still reconciles to a
// consistent state.
func TestRelayCanceledWhenClientsVanish(t *testing.T) {
	catalog := testCatalog(t)
	gate := &gatedOrigin{catalog: catalog, firstBytes: 32 * units.KB, release: make(chan struct{})}
	px, proxyURL := startGatedStack(t, catalog, gate)
	// Unblock the (aborted) origin handler at cleanup so the httptest
	// server can close.
	var releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(gate.release) }) })

	resp, err := http.Get(proxyURL + "/objects/1")
	if err != nil {
		t.Fatal(err)
	}
	// Read the first flushed bytes, then walk away mid-transfer.
	buf := make([]byte, 8*units.KB)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The sole client is gone: its detach must cancel the origin fetch,
	// so Quiesce returns without the origin ever being released.
	quiesced := make(chan struct{})
	go func() {
		px.Quiesce()
		close(quiesced)
	}()
	select {
	case <-quiesced:
	case <-time.After(10 * time.Second):
		t.Fatal("relay not canceled: Quiesce still blocked 10s after the last client left")
	}

	sh := px.shardFor(1)
	sh.mu.Lock()
	stored, acct := sh.store.Len(1), sh.cache.CachedBytes(1)
	leaked := len(sh.inflight)
	sh.mu.Unlock()
	if stored != acct {
		t.Errorf("store holds %d bytes, cache accounts %d", stored, acct)
	}
	if leaked != 0 {
		t.Errorf("%d relays leaked past cancellation", leaked)
	}
	if got := px.Snapshot().BytesFetched; got > 32*units.KB {
		t.Errorf("BytesFetched = %d, want <= 32 KB (fetch canceled, not drained)", got)
	}
}

// rangeBlindOrigin ignores Range headers and always answers 200 with
// the full object — the misbehaving-origin case for ranged refetches.
type rangeBlindOrigin struct {
	catalog *Catalog
}

func (o *rangeBlindOrigin) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	id, ok := parseObjectPath(req.URL.Path)
	if !ok {
		http.NotFound(w, req)
		return
	}
	meta, _ := o.catalog.Get(id)
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Size, 10))
	w.Write(Content(id, 0, meta.Size))
}

// TestRangedRefetchRejectsFullResponse pins the 206 requirement: an
// origin that ignores Range and replies 200 must not have its body
// spliced in at the requested offset — the refetch fails and the
// cached prefix stays uncorrupted.
func TestRangedRefetchRejectsFullResponse(t *testing.T) {
	catalog := testCatalog(t)
	meta, _ := catalog.Get(1)
	origin, err := NewOrigin(catalog, 0)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyOrigin{inner: origin, failures: 1, bytesToServe: 32 * units.KB, catalog: catalog}
	originSrv := httptest.NewServer(flaky)
	defer originSrv.Close()
	blindSrv := httptest.NewServer(&rangeBlindOrigin{catalog: catalog})
	defer blindSrv.Close()

	px, err := New(Config{
		Catalog:    catalog,
		OriginURL:  originSrv.URL,
		CacheBytes: units.GBytes(1),
		NewPolicy:  core.NewIB,
	})
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(px)
	defer proxySrv.Close()

	// Seed a 32 KB prefix via the aborting origin, so the next request
	// must refetch with a Range header.
	if res, err := Fetch(proxySrv.URL + "/objects/1"); err == nil && res.Bytes == meta.Size {
		t.Fatal("flaky origin unexpectedly delivered the full object")
	}
	px.Quiesce()
	if got := px.StoredBytes(1); got == 0 || got > 32*units.KB {
		t.Fatalf("seeded prefix = %d bytes, want in (0, 32 KB]", got)
	}
	prefix := px.StoredBytes(1)

	// Point the proxy at the range-blind origin for the refetch.
	px.originURL = blindSrv.URL
	px.origins[0] = blindSrv.URL
	res, err := Fetch(proxySrv.URL + "/objects/1")
	if err == nil && res.Bytes == meta.Size {
		t.Fatal("full object delivered through a 200 answer to a ranged request")
	}
	px.Quiesce()
	// The prefix must be untouched and still byte-correct.
	if got := px.StoredBytes(1); got != prefix {
		t.Errorf("prefix changed from %d to %d bytes after rejected refetch", prefix, got)
	}
	sh := px.shardFor(1)
	want := Content(1, 0, prefix)
	if got := sh.store.Prefix(1); string(got) != string(want) {
		t.Error("cached prefix corrupted by range-blind origin")
	}
}

func TestCatalogOrigins(t *testing.T) {
	c, err := NewCatalog([]Meta{
		{ID: 1, Size: 1, Rate: 1, Origin: "http://b"},
		{ID: 2, Size: 1, Rate: 1, Origin: "http://a"},
		{ID: 3, Size: 1, Rate: 1, Origin: "http://b"},
		{ID: 4, Size: 1, Rate: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Origins()
	if len(got) != 2 || got[0] != "http://a" || got[1] != "http://b" {
		t.Errorf("Origins = %v, want [http://a http://b]", got)
	}
}

func TestFetchResultHitBytes(t *testing.T) {
	tests := []struct {
		state string
		want  int64
	}{
		{"HIT-PREFIX; bytes=4096", 4096},
		{"MISS", 0},
		{"", 0},
		{"HIT-PREFIX; bytes=bogus", 0},
	}
	for _, tt := range tests {
		r := &FetchResult{CacheState: tt.state}
		if got := r.HitBytes(); got != tt.want {
			t.Errorf("HitBytes(%q) = %d, want %d", tt.state, got, tt.want)
		}
	}
}

// Package proxy is a working prototype of the paper's acceleration
// architecture (Figure 1, and the prototyping direction of Section 6):
// an HTTP origin server with rate-limited paths, a caching proxy that
// serves the cached prefix of a streaming object and *jointly delivers*
// the remainder fetched from the origin, a passive per-origin bandwidth
// estimator, and a client that measures startup delay.
//
// The proxy's cache decisions are made by a core.Policy, so any of the
// paper's algorithms (IF, PB, IB, ...) can drive a live deployment.
package proxy

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
)

// ErrBadCatalog reports an invalid catalog construction.
var ErrBadCatalog = errors.New("proxy: invalid catalog")

// Meta describes one streaming object served by an origin.
type Meta struct {
	ID       int
	Size     int64   // bytes
	Rate     float64 // playback rate, bytes/s
	Duration float64 // seconds (Size/Rate for CBR)
	Value    float64
	// Origin is the base URL of the origin server storing this object
	// (e.g. "http://origin-a:8080"). Empty means the proxy's default
	// origin. Distinct origins get independent bandwidth estimators,
	// mirroring the per-path b_i of the paper's Figure 1.
	Origin string

	// sizeHeader is the prerendered Content-Length value, built once in
	// NewCatalog so the serve path assigns it without formatting or
	// allocating per request.
	sizeHeader []string
}

// Catalog is the shared object directory: both the origin (to serve
// content) and the proxy (to make cache decisions) consult it.
type Catalog struct {
	objects map[int]Meta
}

// NewCatalog builds a catalog from object metadata.
func NewCatalog(objects []Meta) (*Catalog, error) {
	m := make(map[int]Meta, len(objects))
	for _, o := range objects {
		// The cache's dense ID-indexed tables require small non-negative
		// IDs (memory grows with the largest ID); reject violations here,
		// before a live request can reach core.Cache.Access.
		if o.ID < 0 || int64(o.ID) > math.MaxInt32 {
			return nil, fmt.Errorf("%w: object ID %d outside [0, 2^31)", ErrBadCatalog, o.ID)
		}
		if o.Size <= 0 {
			return nil, fmt.Errorf("%w: object %d size %d", ErrBadCatalog, o.ID, o.Size)
		}
		if o.Rate <= 0 {
			return nil, fmt.Errorf("%w: object %d rate %v", ErrBadCatalog, o.ID, o.Rate)
		}
		if _, dup := m[o.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate object ID %d", ErrBadCatalog, o.ID)
		}
		if o.Duration == 0 {
			o.Duration = float64(o.Size) / o.Rate
		}
		o.sizeHeader = []string{strconv.FormatInt(o.Size, 10)}
		m[o.ID] = o
	}
	return &Catalog{objects: m}, nil
}

// Get returns the metadata for object id.
func (c *Catalog) Get(id int) (Meta, bool) {
	o, ok := c.objects[id]
	return o, ok
}

// IDs returns all object IDs in ascending order.
func (c *Catalog) IDs() []int {
	out := make([]int, 0, len(c.objects))
	for id := range c.objects {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Len returns the number of objects.
func (c *Catalog) Len() int { return len(c.objects) }

// Origins returns the distinct non-empty origin base URLs named by the
// catalog, sorted. The catalog is immutable, so this set bounds the
// proxy's per-origin estimator state for the life of the deployment.
func (c *Catalog) Origins() []string {
	seen := make(map[string]bool)
	var out []string
	for _, o := range c.objects {
		if o.Origin != "" && !seen[o.Origin] {
			seen[o.Origin] = true
			out = append(out, o.Origin)
		}
	}
	sort.Strings(out)
	return out
}

// Content deterministically generates the byte content of object id:
// every byte of an object is reproducible from (id, offset), so the
// origin can serve arbitrary ranges and tests can verify integrity
// end-to-end without storing object data.
func Content(id int, offset, length int64) []byte {
	if length <= 0 {
		return nil
	}
	out := make([]byte, length)
	// Content is produced in fixed-size blocks, each seeded by
	// (id, blockIndex), so any range can be generated independently.
	const block = 4096
	start := offset / block
	end := (offset + length - 1) / block
	for b := start; b <= end; b++ {
		rng := rand.New(rand.NewSource(int64(id)<<20 ^ b))
		buf := make([]byte, block)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		blockStart := b * block
		for i := int64(0); i < block; i++ {
			pos := blockStart + i
			if pos >= offset && pos < offset+length {
				out[pos-offset] = buf[i]
			}
		}
	}
	return out
}

package proxy_test

import (
	"fmt"
	"math"
	"net/http/httptest"
	"testing"

	"streamcache/internal/core"
	"streamcache/internal/proxy"
	"streamcache/internal/sim"
	"streamcache/internal/workload"
)

// liveCatalog converts a generated workload's objects into a proxy
// catalog with identical IDs, sizes and rates, so the live tier serves
// exactly the object population the simulator models.
func liveCatalog(t *testing.T, wl *workload.Workload) *proxy.Catalog {
	t.Helper()
	metas := make([]proxy.Meta, len(wl.Objects))
	for i, o := range wl.Objects {
		metas[i] = proxy.Meta{ID: o.ID, Size: o.Size, Rate: o.Rate, Duration: o.Duration, Value: o.Value}
	}
	c, err := proxy.NewCatalog(metas)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLiveHitRatioMatchesSimulator is the live-vs-simulated measurement
// seam: replaying one Table 1-style trace through a running sharded
// proxy must reproduce the simulator's bandwidth-weighted hit ratio
// (the traffic reduction ratio) for the same (policy, cache-fraction)
// point within 10%. LRU keeps the comparison exact in expectation: its
// placement ignores bandwidth estimates, so live wall-clock timing and
// the simulator's logical clock produce the same eviction order for a
// sequential replay.
func TestLiveHitRatioMatchesSimulator(t *testing.T) {
	const baseSeed = 7
	// Tiny CBR objects (16 B/s) keep the replay to a few MB of local
	// HTTP traffic while preserving the lognormal size spread.
	wcfg := workload.Config{
		NumObjects:    60,
		NumRequests:   400,
		BytesPerFrame: 16,
		FramesPerSec:  1,
	}

	// The simulator derives run 0's workload seed from the base seed;
	// the live replay must follow the same trace.
	runCfg := wcfg
	runCfg.Seed = sim.SplitSeed(baseSeed, 0)
	wl, err := workload.Generate(runCfg)
	if err != nil {
		t.Fatal(err)
	}
	catalog := liveCatalog(t, wl)
	cacheBytes := wl.TotalUniqueBytes() / 4
	warm := len(wl.Requests) / 2

	simCfg := sim.Config{
		Workload:   wcfg,
		CacheBytes: cacheBytes,
		Policy:     core.NewLRU(),
		Runs:       1,
		Seed:       baseSeed,
	}
	predicted, err := sim.Run(simCfg)
	if err != nil {
		t.Fatal(err)
	}
	if predicted.TrafficReductionRatio <= 0 || predicted.TrafficReductionRatio >= 1 {
		t.Fatalf("degenerate simulator prediction %v; pick a different config", predicted.TrafficReductionRatio)
	}

	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			origin, err := proxy.NewOrigin(catalog, 0)
			if err != nil {
				t.Fatal(err)
			}
			originSrv := httptest.NewServer(origin)
			defer originSrv.Close()
			px, err := proxy.New(proxy.Config{
				Catalog:    catalog,
				OriginURL:  originSrv.URL,
				Shards:     shards,
				CacheBytes: cacheBytes,
				NewPolicy:  core.NewLRU,
			})
			if err != nil {
				t.Fatal(err)
			}
			proxySrv := httptest.NewServer(px)
			defer proxySrv.Close()

			// Closed-loop sequential replay of the simulator's trace,
			// measuring the paper's bandwidth-weighted hit ratio over
			// the post-warmup half.
			var cacheBytesServed, totalBytes float64
			for i, req := range wl.Requests {
				res, err := proxy.Fetch(fmt.Sprintf("%s/objects/%d", proxySrv.URL, req.ObjectID))
				if err != nil {
					t.Fatalf("request %d (object %d): %v", i, req.ObjectID, err)
				}
				if i < warm {
					continue
				}
				size := wl.Objects[req.ObjectID].Size
				hit := res.HitBytes()
				if hit > size {
					hit = size
				}
				cacheBytesServed += float64(hit)
				totalBytes += float64(size)
			}
			live := cacheBytesServed / totalBytes

			// A single shard replays the simulator's exact cache; more
			// shards partition capacity by ID hash, which perturbs
			// evictions slightly but must stay within the paper-point
			// tolerance.
			tolerance := 0.10
			if shards == 1 {
				tolerance = 0.02
			}
			if diff := math.Abs(live-predicted.TrafficReductionRatio) / predicted.TrafficReductionRatio; diff > tolerance {
				t.Errorf("live bandwidth-weighted hit ratio %.4f vs simulated %.4f (relative diff %.1f%%, tolerance %.0f%%)",
					live, predicted.TrafficReductionRatio, diff*100, tolerance*100)
			} else {
				t.Logf("live %.4f vs simulated %.4f (relative diff %.2f%%)",
					live, predicted.TrafficReductionRatio, diff*100)
			}
		})
	}
}

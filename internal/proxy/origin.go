package proxy

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Origin is an HTTP server for streaming objects. Each response is
// token-bucket rate-limited to PathRate bytes/s, simulating the
// constrained wide-area path between the proxy cache and the origin
// (Figure 1's bottleneck links). It serves GET /objects/<id> with
// optional single-range "Range: bytes=N-" headers, which is all the
// joint-delivery protocol needs.
type Origin struct {
	catalog  *Catalog
	pathRate float64
}

var _ http.Handler = (*Origin)(nil)

// NewOrigin builds an origin over catalog whose responses are limited to
// pathRate bytes/s (0 = unlimited).
func NewOrigin(catalog *Catalog, pathRate float64) (*Origin, error) {
	if catalog == nil {
		return nil, fmt.Errorf("%w: nil catalog", ErrBadCatalog)
	}
	if pathRate < 0 {
		return nil, fmt.Errorf("%w: negative path rate %v", ErrBadCatalog, pathRate)
	}
	return &Origin{catalog: catalog, pathRate: pathRate}, nil
}

// ServeHTTP serves object content, honoring prefix ranges.
func (o *Origin) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id, ok := parseObjectPath(req.URL.Path)
	if !ok {
		http.NotFound(w, req)
		return
	}
	meta, ok := o.catalog.Get(id)
	if !ok {
		http.NotFound(w, req)
		return
	}
	start, err := parseRangeStart(req.Header.Get("Range"), meta.Size)
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
		return
	}
	length := meta.Size - start
	w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
	w.Header().Set("Content-Type", "video/mpeg")
	w.Header().Set("Accept-Ranges", "bytes")
	if start > 0 {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, meta.Size-1, meta.Size))
		w.WriteHeader(http.StatusPartialContent)
	}
	limited := newRateLimitedWriter(w, o.pathRate)
	// Stream in 16 KB chunks so rate limiting and client pacing are smooth.
	const chunk = 16 * 1024
	for off := start; off < meta.Size; off += chunk {
		n := int64(chunk)
		if off+n > meta.Size {
			n = meta.Size - off
		}
		if _, err := limited.Write(Content(id, off, n)); err != nil {
			return // client went away
		}
	}
}

// parseObjectPath extracts the object ID from /objects/<id>.
func parseObjectPath(path string) (int, bool) {
	const prefix = "/objects/"
	if !strings.HasPrefix(path, prefix) {
		return 0, false
	}
	id, err := strconv.Atoi(strings.TrimPrefix(path, prefix))
	if err != nil || id < 0 {
		return 0, false
	}
	return id, true
}

// parseRangeStart parses a "bytes=N-" prefix range header; empty input
// means start at 0. Multi-range and suffix forms are rejected - the
// joint-delivery protocol only ever resumes from a byte offset.
func parseRangeStart(header string, size int64) (int64, error) {
	if header == "" {
		return 0, nil
	}
	spec, ok := strings.CutPrefix(header, "bytes=")
	if !ok {
		return 0, fmt.Errorf("proxy: unsupported range unit in %q", header)
	}
	startStr, end, ok := strings.Cut(spec, "-")
	if !ok || end != "" || startStr == "" {
		return 0, fmt.Errorf("proxy: unsupported range spec %q (want bytes=N-)", header)
	}
	start, err := strconv.ParseInt(startStr, 10, 64)
	if err != nil || start < 0 || start > size {
		return 0, fmt.Errorf("proxy: invalid range start %q for size %d", startStr, size)
	}
	return start, nil
}

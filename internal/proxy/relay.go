package proxy

import (
	"context"
	"errors"
	"sync"
)

// relayRingSegments bounds the per-relay buffer: the ring holds at most
// this many segments (16 x 64 KiB = 1 MiB), so one in-flight transfer
// pins a fixed amount of memory no matter how large the object
// remainder is or how slow its slowest reader.
const relayRingSegments = 16

// errRelayLapped reports that the fetch overwrote ring slots a reader
// had not consumed yet. The reader must leave the relay and continue
// with a private origin fetch (relayDirect) from its current offset.
var errRelayLapped = errors.New("proxy: relay reader lapped by the ring")

// relay is one in-flight origin transfer shared by every concurrent
// request for the same object — the singleflight of the sharded proxy.
// A thundering herd of clients asking for one cold object costs a
// single transfer over the constrained origin path: the first request
// starts a fetch goroutine that publishes bytes into the relay ring
// (and the shard's PrefixStore, up to the retention target), and every
// attached client streams from the ring at its own pace.
//
// Unlike the store's append-only chains, the ring is bounded: when it
// is full the fetch reclaims the oldest segment, advancing tail. A
// reader whose offset falls behind tail is told so (errRelayLapped)
// and demotes itself to a private origin fetch — one slow client can
// no longer pin an entire object remainder in memory. Because slots
// are overwritten in place, readers copy bytes out under the relay
// lock; nothing aliases ring memory, so segments are recycled to
// segPool when the last client detaches.
//
// Attached clients are refcounted: when the last one detaches before
// the transfer completes, the fetch is canceled so the constrained
// origin path is not spent on bytes nobody will receive.
type relay struct {
	start  int64              // object offset the transfer begins at
	cancel context.CancelFunc // aborts the origin fetch; set at construction

	mu   sync.Mutex
	cond sync.Cond
	// ring slots are lazily filled from segPool; slot for absolute
	// object offset off is ((off-start)/segmentSize) % relayRingSegments.
	ring [relayRingSegments]*segment
	// head is the absolute object offset one past the last published
	// byte; tail is the oldest offset still held. The fetch advances
	// tail by whole segments when the ring is full, keeping
	// head-tail <= relayRingSegments*segmentSize.
	head, tail int64
	retain     int64 // PrefixStore retention limit (max over attached requests)
	subs       int   // attached clients (leader included)
	canceled   bool  // last client left; fetch abort initiated
	released   bool  // ring segments returned to the pool; relay is dead
	done       bool
	err        error
}

// newRelay builds a relay for object bytes starting at start whose
// fetch can be aborted via cancel.
func newRelay(start, retain int64, cancel context.CancelFunc) *relay {
	r := &relay{
		start:  start,
		retain: retain,
		cancel: cancel,
		head:   start,
		tail:   start,
	}
	r.cond.L = &r.mu
	return r
}

// attach registers one client reader. It fails only when the relay's
// fetch has already been canceled (every previous reader left), in
// which case the caller must fetch on its own.
//
//mediavet:hotpath
func (r *relay) attach() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.canceled || r.released {
		return false
	}
	r.subs++
	return true
}

// detach unregisters one client reader; the last one out aborts an
// unfinished fetch and recycles the ring.
//
//mediavet:hotpath
func (r *relay) detach() {
	r.mu.Lock()
	abort := false
	r.subs--
	if r.subs == 0 {
		if !r.done && !r.canceled {
			r.canceled = true
			abort = true
		}
		// Recycle the ring to segPool. No reader remains, and ring
		// bytes are only ever read under r.mu (next copies out), so
		// nothing can alias a recycled segment.
		if !r.released {
			r.released = true
			for i, seg := range r.ring {
				if seg != nil {
					segPool.Put(seg)
					r.ring[i] = nil
				}
			}
		}
	}
	fn := r.cancel
	r.mu.Unlock()
	if abort && fn != nil {
		fn()
	}
}

// raiseRetain lifts the store-retention limit to at least n; attaching
// requests call it so a prefix target that grew mid-flight is still
// materialized by the shared fetch.
//
//mediavet:hotpath
func (r *relay) raiseRetain(n int64) {
	r.mu.Lock()
	if n > r.retain {
		r.retain = n
	}
	r.mu.Unlock()
}

// retainLimit returns the current store-retention limit.
//
//mediavet:hotpath
func (r *relay) retainLimit() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retain
}

// append publishes p to every attached reader, reclaiming the oldest
// ring segments when full. The fetch goroutine is the only appender.
//
//mediavet:hotpath
func (r *relay) append(p []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.released {
		return // every reader left; the abort is racing the last read
	}
	for len(p) > 0 {
		if r.head-r.tail == relayRingSegments*segmentSize {
			// Ring full: sacrifice the oldest segment. Any reader still
			// below the new tail will learn it was lapped on its next
			// call and demote itself.
			r.tail += segmentSize
		}
		rel := r.head - r.start
		slot := (rel / segmentSize) % relayRingSegments
		within := rel % segmentSize
		seg := r.ring[slot]
		if within == 0 || seg == nil {
			if seg == nil {
				seg = newSegment(0)
				r.ring[slot] = seg
			}
			seg.off = r.head
			seg.used = 0
		}
		n := copy(seg.buf[within:], p)
		seg.used = int(within) + n
		r.head += int64(n)
		p = p[n:]
	}
	r.cond.Broadcast()
}

// finish marks the transfer complete (err non-nil when it died early)
// and wakes every reader.
func (r *relay) finish(err error) {
	r.mu.Lock()
	r.done = true
	r.err = err
	r.cond.Broadcast()
	r.mu.Unlock()
}

// wake prods every blocked reader so it can re-check its own context;
// readers register it with context.AfterFunc.
func (r *relay) wake() {
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// next blocks until bytes past object offset off are published, the
// transfer ends, or ctx (the reader's own request context) is canceled,
// then copies published bytes starting at off into dst. Ring slots are
// overwritten in place, so the copy happens under the lock — dst never
// aliases ring memory. done reports that the reader should stop after
// consuming the returned bytes; err is errRelayLapped when the fetch
// reclaimed offset off before this reader consumed it (the reader must
// demote to a private fetch).
//
//mediavet:hotpath
func (r *relay) next(ctx context.Context, off int64, dst []byte) (n int, done bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.head <= off && !r.done && ctx.Err() == nil {
		r.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return 0, true, err
	}
	if off < r.tail {
		return 0, true, errRelayLapped
	}
	for n < len(dst) && off < r.head {
		rel := off - r.start
		slot := (rel / segmentSize) % relayRingSegments
		within := rel % segmentSize
		seg := r.ring[slot]
		avail := int64(seg.used) - within
		if rest := r.head - off; avail > rest {
			avail = rest
		}
		if avail <= 0 {
			break
		}
		c := copy(dst[n:], seg.buf[within:within+avail])
		n += c
		off += int64(c)
	}
	if n > 0 {
		return n, false, nil
	}
	return 0, r.done, r.err
}

// buffered returns the byte span currently held by the ring (a test
// hook pinning the memory bound).
func (r *relay) buffered() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head - r.tail
}

// tailOffset returns the oldest object offset still readable (a test
// hook).
func (r *relay) tailOffset() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tail
}

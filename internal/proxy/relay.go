package proxy

import (
	"context"
	"sync"
)

// relayBufSeed is the initial relay buffer capacity; the buffer grows
// on demand up to the remainder size, so a cold request for a huge
// object does not commit the whole object's memory up front.
const relayBufSeed = 256 * 1024

// relay is one in-flight origin transfer shared by every concurrent
// request for the same object — the singleflight of the sharded proxy.
// A thundering herd of clients asking for one cold object costs a
// single transfer over the constrained origin path: the first request
// starts a fetch goroutine that publishes bytes into the relay buffer
// (and the shard's PrefixStore, up to the retention target), and every
// attached client streams from the buffer at its own pace.
//
// The buffer is append-only: a published byte range is never mutated,
// so slices handed out by next stay valid even if a later append grows
// the buffer (growth copies forward and abandons the old array, it
// never writes into it). The buffer lives until the last attached
// client finishes; memory is therefore bounded by the remainder size
// times the number of distinct objects with in-flight fetches.
//
// Attached clients are refcounted: when the last one detaches before
// the transfer completes, the fetch is canceled so the constrained
// origin path is not spent on bytes nobody will receive.
type relay struct {
	start  int64              // object offset of buf[0]
	cancel context.CancelFunc // aborts the origin fetch; set at construction

	mu       sync.Mutex
	cond     sync.Cond
	buf      []byte
	retain   int64 // PrefixStore retention limit (max over attached requests)
	subs     int   // attached clients (leader included)
	canceled bool  // last client left; fetch abort initiated
	done     bool
	err      error
}

// newRelay builds a relay for object bytes [start, start+capacity)
// whose fetch can be aborted via cancel.
func newRelay(start, retain, capacity int64, cancel context.CancelFunc) *relay {
	r := &relay{
		start:  start,
		retain: retain,
		cancel: cancel,
		buf:    make([]byte, 0, min(capacity, relayBufSeed)),
	}
	r.cond.L = &r.mu
	return r
}

// attach registers one client reader. It fails only when the relay's
// fetch has already been canceled (every previous reader left), in
// which case the caller must fetch on its own.
//mediavet:hotpath
func (r *relay) attach() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.canceled {
		return false
	}
	r.subs++
	return true
}

// detach unregisters one client reader; the last one out aborts an
// unfinished fetch.
//mediavet:hotpath
func (r *relay) detach() {
	r.mu.Lock()
	abort := false
	r.subs--
	if r.subs == 0 && !r.done && !r.canceled {
		r.canceled = true
		abort = true
	}
	fn := r.cancel
	r.mu.Unlock()
	if abort && fn != nil {
		fn()
	}
}

// raiseRetain lifts the store-retention limit to at least n; attaching
// requests call it so a prefix target that grew mid-flight is still
// materialized by the shared fetch.
//mediavet:hotpath
func (r *relay) raiseRetain(n int64) {
	r.mu.Lock()
	if n > r.retain {
		r.retain = n
	}
	r.mu.Unlock()
}

// retainLimit returns the current store-retention limit.
//mediavet:hotpath
func (r *relay) retainLimit() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retain
}

// append publishes p to every attached reader. The fetch goroutine is
// the only appender.
//mediavet:hotpath
func (r *relay) append(p []byte) {
	r.mu.Lock()
	r.buf = append(r.buf, p...)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// finish marks the transfer complete (err non-nil when it died early)
// and wakes every reader.
func (r *relay) finish(err error) {
	r.mu.Lock()
	r.done = true
	r.err = err
	r.cond.Broadcast()
	r.mu.Unlock()
}

// wake prods every blocked reader so it can re-check its own context;
// readers register it with context.AfterFunc.
func (r *relay) wake() {
	r.mu.Lock()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// next blocks until bytes past object offset off are published, the
// transfer ends, or ctx (the reader's own request context) is
// canceled, then returns the contiguous published range starting at
// off. The returned slice aliases an immutable buffer region and stays
// valid after the lock is released. done reports that the reader
// should stop after consuming the returned chunk.
//mediavet:hotpath
func (r *relay) next(ctx context.Context, off int64) (chunk []byte, done bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rel := off - r.start
	for int64(len(r.buf)) <= rel && !r.done && ctx.Err() == nil {
		r.cond.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, true, err
	}
	if int64(len(r.buf)) > rel {
		chunk = r.buf[rel:len(r.buf):len(r.buf)]
	}
	return chunk, r.done, r.err
}

package proxy

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// FetchResult captures one client download: content digest, timing, and
// the arrival curve needed to compute startup delay.
type FetchResult struct {
	Bytes      int64
	SHA256     string
	TTFB       time.Duration // time to first byte
	Elapsed    time.Duration // total download time
	CacheState string        // X-Cache header from the proxy ("" from origin)

	samples []arrivalSample
}

type arrivalSample struct {
	t   time.Duration
	cum int64
}

// Fetch downloads url, recording the arrival curve as chunks land.
func Fetch(url string) (*FetchResult, error) { return FetchN(url, 0) }

// FetchN downloads url like Fetch but stops reading after limit bytes
// and closes the connection — a partial-viewing session that abandons
// the stream early (limit <= 0 downloads everything). The digest covers
// exactly the bytes read, so callers can only verify it against the
// full-object digest when the download ran to completion.
func FetchN(url string, limit int64) (*FetchResult, error) {
	start := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("proxy: fetch %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("proxy: fetch %s: status %s", url, resp.Status)
	}
	res := &FetchResult{CacheState: resp.Header.Get("X-Cache")}
	hash := sha256.New()
	buf := make([]byte, 16*1024)
	for {
		want := int64(len(buf))
		if limit > 0 {
			if remaining := limit - res.Bytes; remaining < want {
				want = remaining
			}
		}
		if want <= 0 {
			break // watched enough; hang up on the rest of the stream
		}
		n, readErr := resp.Body.Read(buf[:want])
		if n > 0 {
			if res.Bytes == 0 {
				res.TTFB = time.Since(start)
			}
			res.Bytes += int64(n)
			hash.Write(buf[:n])
			res.samples = append(res.samples, arrivalSample{t: time.Since(start), cum: res.Bytes})
		}
		if readErr != nil {
			if errors.Is(readErr, io.EOF) {
				break
			}
			return nil, fmt.Errorf("proxy: fetch %s: read: %w", url, readErr)
		}
	}
	res.Elapsed = time.Since(start)
	res.SHA256 = hex.EncodeToString(hash.Sum(nil))
	return res, nil
}

// HitBytes returns how many bytes of this fetch were served from the
// proxy's cached prefix, parsed from the X-Cache header (0 on a miss or
// a direct-origin fetch). Summing it across fetches and dividing by the
// total bytes downloaded yields the live bandwidth-weighted hit ratio —
// the paper's traffic reduction ratio measured at the client.
func (r *FetchResult) HitBytes() int64 {
	const marker = "HIT-PREFIX; bytes="
	i := strings.Index(r.CacheState, marker)
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(r.CacheState[i+len(marker):], 10, 64)
	if err != nil || n < 0 {
		return 0
	}
	return n
}

// StartupDelay returns the smallest playout start time w such that a
// client consuming playbackRate bytes/s from time w onward never
// underruns: w = max(0, max_i(t_i - c_i/rate)) over the arrival curve.
// This is the client-side realization of the paper's service delay.
func (r *FetchResult) StartupDelay(playbackRate float64) time.Duration {
	if playbackRate <= 0 || len(r.samples) == 0 {
		return 0
	}
	var worst time.Duration
	for _, s := range r.samples {
		// Byte s.cum is consumed at playback time s.cum/rate; it arrived
		// at s.t, so the start must be delayed to at least s.t - cum/rate.
		consumeAt := time.Duration(float64(s.cum) / playbackRate * float64(time.Second))
		if d := s.t - consumeAt; d > worst {
			worst = d
		}
	}
	if worst < 0 {
		return 0
	}
	return worst
}

// MeanThroughput returns the average download rate in bytes/s.
func (r *FetchResult) MeanThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds()
}

// ContentSHA256 returns the expected digest of object id with the given
// size, for end-to-end integrity checks.
func ContentSHA256(id int, size int64) string {
	hash := sha256.New()
	const chunk = 64 * 1024
	for off := int64(0); off < size; off += chunk {
		n := int64(chunk)
		if off+n > size {
			n = size - off
		}
		hash.Write(Content(id, off, n))
	}
	return hex.EncodeToString(hash.Sum(nil))
}

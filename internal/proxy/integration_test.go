package proxy

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"streamcache/internal/core"
	"streamcache/internal/units"
)

// startStack brings up a rate-limited origin and a proxy in front of it,
// returning the proxy, its base URL, and the origin URL.
func startStack(t *testing.T, policy core.Policy, cacheBytes int64, originRate float64) (*Proxy, string, string) {
	t.Helper()
	catalog := testCatalog(t)
	origin, err := NewOrigin(catalog, originRate)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(origin)
	t.Cleanup(originSrv.Close)

	cache, err := core.New(cacheBytes, policy)
	if err != nil {
		t.Fatal(err)
	}
	px, err := NewProxy(catalog, cache, originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(px)
	t.Cleanup(proxySrv.Close)
	return px, proxySrv.URL, originSrv.URL
}

func TestProxyEndToEndIntegrity(t *testing.T) {
	// Unlimited origin: verify joint delivery reassembles objects
	// byte-exactly across repeated (cached) fetches.
	_, proxyURL, _ := startStack(t, core.NewIB(), units.GBytes(1), 0)
	for round := 0; round < 3; round++ {
		for _, id := range []int{1, 2, 3} {
			res, err := Fetch(fmt.Sprintf("%s/objects/%d", proxyURL, id))
			if err != nil {
				t.Fatal(err)
			}
			var size int64
			switch id {
			case 1:
				size = 256 * units.KB
			case 2:
				size = 128 * units.KB
			case 3:
				size = 64 * units.KB
			}
			if res.Bytes != size {
				t.Fatalf("round %d object %d: %d bytes, want %d", round, id, res.Bytes, size)
			}
			if want := ContentSHA256(id, size); res.SHA256 != want {
				t.Fatalf("round %d object %d: digest mismatch (cache state %q)", round, id, res.CacheState)
			}
		}
	}
}

func TestProxyCachesAfterFirstAccess(t *testing.T) {
	px, proxyURL, _ := startStack(t, core.NewIB(), units.GBytes(1), 0)
	first, err := Fetch(proxyURL + "/objects/1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(first.CacheState, "MISS") {
		t.Errorf("first fetch X-Cache = %q, want MISS", first.CacheState)
	}
	second, err := Fetch(proxyURL + "/objects/1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.CacheState, "HIT-PREFIX") {
		t.Errorf("second fetch X-Cache = %q, want HIT-PREFIX", second.CacheState)
	}
	stats := px.Snapshot()
	if stats.Requests != 2 || stats.PrefixHits != 1 {
		t.Errorf("stats = %+v, want 2 requests, 1 prefix hit", stats)
	}
	if stats.UsedBytes != 256*units.KB {
		t.Errorf("cache holds %d bytes, want the whole 256 KB object", stats.UsedBytes)
	}
}

func TestProxyAcceleratesStartup(t *testing.T) {
	if testing.Short() {
		t.Skip("rate-limited transfer test")
	}
	// Origin limited to 256 KB/s; object 1 plays at 512 KB/s. Cold
	// fetches cannot sustain playback without delay; once the proxy has
	// cached the prefix, startup delay must drop substantially.
	_, proxyURL, _ := startStack(t, core.NewIB(), units.GBytes(1), units.KBps(256))
	url := proxyURL + "/objects/1"

	cold, err := Fetch(url)
	if err != nil {
		t.Fatal(err)
	}
	coldDelay := cold.StartupDelay(units.KBps(512))
	if coldDelay <= 0 {
		t.Fatalf("cold startup delay = %v, want > 0 (origin at half playback rate)", coldDelay)
	}
	warm, err := Fetch(url)
	if err != nil {
		t.Fatal(err)
	}
	warmDelay := warm.StartupDelay(units.KBps(512))
	if warmDelay >= coldDelay/2 {
		t.Errorf("warm startup delay %v, want < half of cold %v", warmDelay, coldDelay)
	}
	if want := ContentSHA256(1, 256*units.KB); warm.SHA256 != want {
		t.Error("warm fetch corrupted content")
	}
}

func TestProxyPartialCachingWithPB(t *testing.T) {
	if testing.Short() {
		t.Skip("rate-limited transfer test")
	}
	// PB policy with a passive estimator: after a cold fetch observes
	// ~256 KB/s to the origin, the policy should hold roughly the
	// bandwidth deficit of object 1 - (512-256 KB/s) * 0.5 s = 128 KB -
	// not the whole object.
	px, proxyURL, _ := startStack(t, core.NewPB(), units.GBytes(1), units.KBps(256))
	url := proxyURL + "/objects/1"
	if _, err := Fetch(url); err != nil {
		t.Fatal(err)
	}
	if _, err := Fetch(url); err != nil {
		t.Fatal(err)
	}
	stats := px.Snapshot()
	if stats.UsedBytes == 0 {
		t.Fatal("PB proxy cached nothing")
	}
	if stats.UsedBytes >= 256*units.KB {
		t.Errorf("PB proxy cached %d bytes, want a partial prefix < 256 KB", stats.UsedBytes)
	}
	if stats.EstimateBps("") <= 0 {
		t.Error("passive estimator never observed throughput")
	}
	// The estimate should be in the right ballpark of the origin rate.
	est := float64(stats.EstimateBps(""))
	if est < units.KBps(100) || est > units.KBps(600) {
		t.Errorf("estimate %v B/s implausible for a 256 KB/s path", est)
	}
}

func TestProxyConcurrentFetches(t *testing.T) {
	_, proxyURL, _ := startStack(t, core.NewIB(), units.GBytes(1), 0)
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 4; i++ {
		for _, id := range []int{1, 2, 3} {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				res, err := Fetch(fmt.Sprintf("%s/objects/%d", proxyURL, id))
				if err != nil {
					errs <- err
					return
				}
				var size int64
				switch id {
				case 1:
					size = 256 * units.KB
				case 2:
					size = 128 * units.KB
				case 3:
					size = 64 * units.KB
				}
				if want := ContentSHA256(id, size); res.SHA256 != want {
					errs <- fmt.Errorf("object %d digest mismatch under concurrency", id)
				}
			}(id)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestProxyEvictionReleasesStore(t *testing.T) {
	// Cache fits only ~one object: fetching all three must keep the
	// byte store in sync with cache accounting.
	px, proxyURL, _ := startStack(t, core.NewLRU(), 260*units.KB, 0)
	for round := 0; round < 2; round++ {
		for _, id := range []int{1, 2, 3} {
			if _, err := Fetch(fmt.Sprintf("%s/objects/%d", proxyURL, id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	px.Quiesce()
	stats := px.Snapshot()
	if stats.UsedBytes > 260*units.KB {
		t.Errorf("cache accounting %d exceeds capacity", stats.UsedBytes)
	}
	if got := px.StoredTotal(); got > 260*units.KB {
		t.Errorf("byte store holds %d bytes, exceeds capacity", got)
	}
}

func TestProxyStatsEndpoint(t *testing.T) {
	_, proxyURL, _ := startStack(t, core.NewIB(), units.GBytes(1), 0)
	if _, err := Fetch(proxyURL + "/objects/2"); err != nil {
		t.Fatal(err)
	}
	res, err := Fetch(proxyURL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes == 0 {
		t.Error("stats endpoint returned no body")
	}
}

func TestProxyUnknownObject(t *testing.T) {
	_, proxyURL, _ := startStack(t, core.NewIB(), units.GBytes(1), 0)
	if _, err := Fetch(proxyURL + "/objects/999"); err == nil {
		t.Error("unknown object did not error")
	}
}

func TestProxyMultiOriginPerPathEstimates(t *testing.T) {
	if testing.Short() {
		t.Skip("rate-limited transfer test")
	}
	// Figure 1's scenario: two origins, one fast (unlimited) and one slow
	// (128 KB/s). The proxy must keep independent bandwidth estimates per
	// origin path and PB must cache only the slow-path object.
	fastMeta := []Meta{{ID: 1, Size: 128 * units.KB, Rate: units.KBps(512)}}
	slowMeta := []Meta{{ID: 2, Size: 128 * units.KB, Rate: units.KBps(512)}}

	fastCatalog, err := NewCatalog(fastMeta)
	if err != nil {
		t.Fatal(err)
	}
	slowCatalog, err := NewCatalog(slowMeta)
	if err != nil {
		t.Fatal(err)
	}
	fastOrigin, err := NewOrigin(fastCatalog, 0)
	if err != nil {
		t.Fatal(err)
	}
	slowOrigin, err := NewOrigin(slowCatalog, units.KBps(128))
	if err != nil {
		t.Fatal(err)
	}
	fastSrv := httptest.NewServer(fastOrigin)
	t.Cleanup(fastSrv.Close)
	slowSrv := httptest.NewServer(slowOrigin)
	t.Cleanup(slowSrv.Close)

	// One combined catalog routing each object to its origin.
	combined, err := NewCatalog([]Meta{
		{ID: 1, Size: 128 * units.KB, Rate: units.KBps(512), Origin: fastSrv.URL},
		{ID: 2, Size: 128 * units.KB, Rate: units.KBps(512), Origin: slowSrv.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := core.New(units.GBytes(1), core.NewPB())
	if err != nil {
		t.Fatal(err)
	}
	px, err := NewProxy(combined, cache, fastSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(px)
	t.Cleanup(proxySrv.Close)

	// Two rounds so the second access acts on learned estimates.
	for round := 0; round < 2; round++ {
		for _, id := range []int{1, 2} {
			res, err := Fetch(fmt.Sprintf("%s/objects/%d", proxySrv.URL, id))
			if err != nil {
				t.Fatal(err)
			}
			if want := ContentSHA256(id, 128*units.KB); res.SHA256 != want {
				t.Fatalf("round %d object %d: digest mismatch", round, id)
			}
		}
	}

	px.Quiesce()
	stats := px.Snapshot()
	fast := stats.EstimatesBps[fastSrv.URL]
	slow := stats.EstimatesBps[slowSrv.URL]
	if fast == 0 || slow == 0 {
		t.Fatalf("missing per-origin estimates: %v", stats.EstimatesBps)
	}
	if fast <= 2*slow {
		t.Errorf("fast-path estimate %d should dwarf slow-path %d", fast, slow)
	}
	// Network awareness: PB keeps a prefix only for the slow-path object.
	// (Quiesce above guarantees no handler is still mutating the cache.)
	if got := cache.CachedBytes(1); got != 0 {
		t.Errorf("fast-path object cached %d bytes, want 0 (abundant bandwidth)", got)
	}
	if got := cache.CachedBytes(2); got == 0 {
		t.Error("slow-path object not cached; PB should hold its deficit")
	}
}

func TestFetchNStopsEarly(t *testing.T) {
	// A partial-viewing session reads only its watched prefix: FetchN
	// must stop at the limit and leave the connection behind, while a
	// non-positive limit downloads everything.
	_, proxyURL, _ := startStack(t, core.NewIB(), units.GBytes(1), 0)
	partial, err := FetchN(proxyURL+"/objects/1", 64*units.KB)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Bytes != 64*units.KB {
		t.Errorf("limited fetch read %d bytes, want %d", partial.Bytes, 64*units.KB)
	}
	full, err := FetchN(proxyURL+"/objects/1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Bytes != 256*units.KB {
		t.Errorf("unlimited fetch read %d bytes, want %d", full.Bytes, 256*units.KB)
	}
	if want := ContentSHA256(1, 256*units.KB); full.SHA256 != want {
		t.Error("unlimited FetchN digest mismatch")
	}
	// A limit beyond the object size behaves like a full download.
	over, err := FetchN(proxyURL+"/objects/1", units.GBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	if over.Bytes != 256*units.KB {
		t.Errorf("overlimit fetch read %d bytes, want %d", over.Bytes, 256*units.KB)
	}
}

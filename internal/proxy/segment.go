package proxy

import "sync"

// segmentSize is the fixed byte granularity of the proxy data plane.
// Both the PrefixStore and the relay ring are built from segments of
// this size, so the two sides of the data plane share one allocation
// currency (and one pool).
const segmentSize = 64 * 1024

// segment is one fixed-size chunk of object bytes.
//
// Aliasing contract (DESIGN.md "Segment memory model"): a byte of a
// segment, once published to a reader, is immutable — writers only ever
// extend `used` under their owner's lock, never rewrite below it. The
// PrefixStore hands out zero-copy views over its segments, so store
// segments are never recycled: truncation drops references and leaves
// reclamation to the GC. The relay ring is the opposite regime — its
// readers copy out under the relay lock, nothing aliases ring memory
// outside it, so ring segments are recycled in place and returned to
// segPool at relay teardown.
type segment struct {
	off  int64 // object offset of buf[0]; immutable after creation
	used int   // bytes written into buf; grows monotonically
	buf  [segmentSize]byte
}

// segPool recycles segments across relays (and seeds fresh store
// segments). Only the relay ring may Put: store segments can be aliased
// by in-flight zero-copy readers and must die to the GC instead.
var segPool = sync.Pool{New: func() any { return new(segment) }}

// newSegment takes a segment from the pool, reset to start at object
// offset off.
//
//mediavet:hotpath
func newSegment(off int64) *segment {
	s := segPool.Get().(*segment)
	s.off = off
	s.used = 0
	return s
}

// fetchBufSize is the copy granularity of origin fetches and relay
// reader drains.
const fetchBufSize = 16 * 1024

// fetchBufPool recycles the 16 KB scratch buffers used by fetchOrigin,
// relayDirect and streamFromRelay, so streaming a request allocates no
// per-request buffer on the warmed path.
var fetchBufPool = sync.Pool{New: func() any {
	b := make([]byte, fetchBufSize)
	return &b
}}

package proxy

import (
	"streamcache/internal/units"
	"streamcache/internal/workload"
)

// BuildCatalog derives a deterministic n-object catalog from the
// Table 1 lognormal size model, rescaled so the mean object is meanKB
// kilobytes with a playback rate of rateKBps KB/s. proxyd serves it and
// loadgen regenerates the identical catalog from the same parameters,
// so the load harness knows every object's exact size and playback rate
// without asking the server.
func BuildCatalog(n int, meanKB int64, rateKBps float64, seed int64) (*Catalog, error) {
	w, err := workload.Generate(workload.Config{NumObjects: n, NumRequests: 1, Seed: seed})
	if err != nil {
		return nil, err
	}
	meanBytes := float64(w.TotalUniqueBytes()) / float64(n)
	scale := float64(meanKB*units.KB) / meanBytes
	rate := units.KBps(rateKBps)
	metas := make([]Meta, n)
	for i, o := range w.Objects {
		size := int64(float64(o.Size) * scale)
		if size < 16*units.KB {
			size = 16 * units.KB
		}
		metas[i] = Meta{ID: o.ID, Size: size, Rate: rate, Value: o.Value}
	}
	return NewCatalog(metas)
}

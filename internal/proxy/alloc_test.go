package proxy

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"streamcache/internal/core"
	"streamcache/internal/units"
)

// nullResponseWriter is the cheapest possible http.ResponseWriter: it
// discards the body and reuses one header map, so AllocsPerRun measures
// the proxy's own serve path, not the recorder's.
type nullResponseWriter struct {
	h http.Header
	n int64
}

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(p []byte) (int, error) { w.n += int64(len(p)); return len(p), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}
func (w *nullResponseWriter) Flush()                      {}

// TestServePrefixHitAllocFree pins the tentpole: after warmup, serving
// a full prefix hit performs zero heap allocations — the prefix flows
// from aliased segments, the headers are prerendered slices, and the
// cache bookkeeping runs on core's zero-alloc tables.
func TestServePrefixHitAllocFree(t *testing.T) {
	const nObjects = 4
	const size = 3*segmentSize + 1000 // multi-segment with a partial tail
	metas := make([]Meta, nObjects)
	for i := range metas {
		metas[i] = Meta{ID: i, Size: size, Rate: units.KBps(512), Value: 1}
	}
	catalog, err := NewCatalog(metas)
	if err != nil {
		t.Fatal(err)
	}
	origin, err := NewOrigin(catalog, 0)
	if err != nil {
		t.Fatal(err)
	}
	originSrv := httptest.NewServer(origin)
	defer originSrv.Close()

	px, err := New(Config{
		Catalog:    catalog,
		OriginURL:  originSrv.URL,
		CacheBytes: units.GBytes(1),
		NewPolicy:  core.NewIB,
	})
	if err != nil {
		t.Fatal(err)
	}

	reqs := make([]*http.Request, nObjects)
	reqs[0] = httptest.NewRequest("GET", "/objects/0", nil)
	reqs[1] = httptest.NewRequest("GET", "/objects/1", nil)
	reqs[2] = httptest.NewRequest("GET", "/objects/2", nil)
	reqs[3] = httptest.NewRequest("GET", "/objects/3", nil)

	// Warm every object to a full prefix, then once more so policy state
	// is past any first-touch transients.
	w := &nullResponseWriter{h: make(http.Header)}
	for range 2 {
		for i, req := range reqs {
			w.n = 0
			px.ServeHTTP(w, req)
			if w.n != size {
				t.Fatalf("warmup object %d: wrote %d bytes, want %d", i, w.n, size)
			}
		}
		px.Quiesce()
	}
	if px.StoredBytes(0) != size {
		t.Fatalf("object 0 not fully cached after warmup: %d/%d", px.StoredBytes(0), size)
	}

	var i int
	allocs := testing.AllocsPerRun(200, func() {
		req := reqs[i%nObjects]
		i++
		w.n = 0
		px.ServeHTTP(w, req)
		if w.n != size {
			t.Fatalf("short response: %d bytes", w.n)
		}
	})
	if allocs != 0 {
		t.Errorf("warmed prefix-hit serve path allocates %.1f times per request, want 0", allocs)
	}
}

// TestRelayReaderLoopAllocFree pins the relay side: a reader draining
// an already-published ring through next with a pooled buffer performs
// zero allocations per iteration.
func TestRelayReaderLoopAllocFree(t *testing.T) {
	const total = relayRingSegments * segmentSize / 2 // half a ring: nothing dropped
	data := Content(3, 0, total)
	rl := newRelay(0, 0, nil)
	if !rl.attach() {
		t.Fatal("attach refused")
	}
	defer rl.detach()
	rl.append(data)
	rl.finish(nil)

	ctx := context.Background()
	buf := make([]byte, fetchBufSize)
	var off int64
	allocs := testing.AllocsPerRun(200, func() {
		if off >= total {
			off = 0 // rewind; everything is still inside the window
		}
		n, _, err := rl.next(ctx, off, buf)
		if err != nil || n == 0 {
			t.Fatalf("next at %d: n=%d err=%v", off, n, err)
		}
		off += int64(n)
	})
	if allocs != 0 {
		t.Errorf("relay reader loop allocates %.1f times per read, want 0", allocs)
	}
}

package proxy

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"streamcache/internal/core"
	"streamcache/internal/units"
)

// flakyOrigin wraps a real origin but aborts the connection after
// sending a configurable number of bytes, for the first `failures`
// requests it sees.
type flakyOrigin struct {
	inner        http.Handler
	failures     int32
	bytesToServe int64
	catalog      *Catalog
}

func (f *flakyOrigin) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if atomic.AddInt32(&f.failures, -1) < 0 {
		f.inner.ServeHTTP(w, req)
		return
	}
	id, ok := parseObjectPath(req.URL.Path)
	if !ok {
		http.NotFound(w, req)
		return
	}
	meta, _ := f.catalog.Get(id)
	start, err := parseRangeStart(req.Header.Get("Range"), meta.Size)
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
		return
	}
	// Claim the full remaining length, then cut the stream short so the
	// proxy sees a mid-transfer failure.
	w.Header().Set("Content-Length", strconv.FormatInt(meta.Size-start, 10))
	if start > 0 {
		w.WriteHeader(http.StatusPartialContent)
	}
	if _, err := w.Write(Content(id, start, f.bytesToServe)); err != nil {
		return
	}
	if f2, ok := w.(http.Flusher); ok {
		f2.Flush()
	}
	// Abort the connection without completing the body.
	panic(http.ErrAbortHandler)
}

func TestProxySurvivesOriginAbort(t *testing.T) {
	catalog := testCatalog(t)
	origin, err := NewOrigin(catalog, 0)
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyOrigin{inner: origin, failures: 1, bytesToServe: 32 * units.KB, catalog: catalog}
	originSrv := httptest.NewServer(flaky)
	defer originSrv.Close()

	cache, err := core.New(units.GBytes(1), core.NewIB())
	if err != nil {
		t.Fatal(err)
	}
	px, err := NewProxy(catalog, cache, originSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(px)
	defer proxySrv.Close()

	url := fmt.Sprintf("%s/objects/1", proxySrv.URL)
	// First fetch: origin aborts mid-stream; the client sees a short
	// body. The proxy must reconcile its cache accounting down to the
	// bytes actually materialized.
	if res, err := Fetch(url); err == nil && res.Bytes == 256*units.KB {
		t.Fatal("first fetch unexpectedly delivered the full object from a flaky origin")
	}
	px.Quiesce() // let the aborted relay finish its reconciliation
	if got, want := cache.CachedBytes(1), px.StoredBytes(1); got != want {
		t.Fatalf("after abort: cache accounts %d bytes, store has %d", got, want)
	}
	if cache.CachedBytes(1) > 32*units.KB {
		t.Fatalf("after abort: cache accounts %d bytes, origin only sent 32 KB", cache.CachedBytes(1))
	}

	// Second fetch hits the healthy origin: content must be complete and
	// intact, growing the prefix from wherever the abort left it.
	res, err := Fetch(url)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes != 256*units.KB {
		t.Fatalf("recovery fetch: %d bytes, want full object", res.Bytes)
	}
	if want := ContentSHA256(1, 256*units.KB); res.SHA256 != want {
		t.Fatal("recovery fetch corrupted content")
	}
	// Third fetch should now be a clean prefix hit.
	res, err = Fetch(url)
	if err != nil {
		t.Fatal(err)
	}
	if want := ContentSHA256(1, 256*units.KB); res.SHA256 != want {
		t.Fatal("post-recovery fetch corrupted content")
	}
}

func TestProxyOriginDown(t *testing.T) {
	catalog := testCatalog(t)
	cache, err := core.New(units.GBytes(1), core.NewIB())
	if err != nil {
		t.Fatal(err)
	}
	// Point the proxy at a dead origin.
	px, err := NewProxy(catalog, cache, "http://127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	proxySrv := httptest.NewServer(px)
	defer proxySrv.Close()

	res, err := Fetch(proxySrv.URL + "/objects/1")
	// The fetch must not hang or panic; it either errors or returns a
	// truncated body.
	if err == nil && res.Bytes == 256*units.KB {
		t.Fatal("full object delivered with no origin")
	}
	px.Quiesce()
	// Cache accounting must not leak bytes that never arrived.
	if got, want := cache.CachedBytes(1), px.StoredBytes(1); got != want {
		t.Fatalf("cache accounts %d bytes, store has %d", got, want)
	}
}

package proxy

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestPrefixStoreMatchesFlatModel drives the segmented store and a
// trivial one-[]byte-per-object reference model through the same random
// operation sequence and demands byte-identical state throughout. This
// pins the segmented rewrite to the exact semantics of the original
// flat store: overlap dedup, gap drop, limit clip, truncation.
func TestPrefixStoreMatchesFlatModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := NewPrefixStore()
	model := map[int][]byte{}

	modelAppend := func(id int, offset int64, data []byte, limit int64) int64 {
		cur := model[id]
		curLen := int64(len(cur))
		if offset > curLen {
			return 0
		}
		skip := curLen - offset
		if skip >= int64(len(data)) {
			return 0
		}
		data = data[skip:]
		room := limit - curLen
		if room <= 0 {
			return 0
		}
		take := int64(len(data))
		if take > room {
			take = room
		}
		model[id] = append(cur, data[:take]...)
		return take
	}
	modelTruncate := func(id int, n int64) {
		cur, ok := model[id]
		if !ok {
			return
		}
		if n <= 0 {
			delete(model, id)
			return
		}
		if n < int64(len(cur)) {
			model[id] = cur[:n]
		}
	}

	const nIDs = 8
	const limit = 5 * segmentSize
	for op := 0; op < 4000; op++ {
		id := rng.Intn(nIDs)
		switch rng.Intn(4) {
		case 0, 1: // append, biased contiguous but sometimes gapped/overlapped
			cur := int64(len(model[id]))
			offset := cur + int64(rng.Intn(3*segmentSize)) - int64(rng.Intn(3*segmentSize))
			if offset < 0 {
				offset = 0
			}
			n := rng.Intn(3*segmentSize) + 1
			data := Content(id, offset, int64(n))
			got := s.AppendAt(id, offset, data, limit)
			want := modelAppend(id, offset, data, limit)
			if got != want {
				t.Fatalf("op %d: AppendAt(id=%d, off=%d, n=%d) retained %d, model %d", op, id, offset, n, got, want)
			}
		case 2: // truncate, including mid-segment cuts and full deletes
			n := int64(rng.Intn(int(limit)+segmentSize)) - segmentSize/2
			s.Truncate(id, n)
			modelTruncate(id, n)
		case 3: // read back and compare
			if got, want := s.Prefix(id), model[id]; !bytes.Equal(got, want) {
				t.Fatalf("op %d: Prefix(%d) = %d bytes, model %d bytes, diverged", op, id, len(got), len(want))
			}
		}
		if got, want := s.Len(id), int64(len(model[id])); got != want {
			t.Fatalf("op %d: Len(%d) = %d, model %d", op, id, got, want)
		}
	}
	// Final full sweep.
	for id := 0; id < nIDs; id++ {
		if got, want := s.Prefix(id), model[id]; !bytes.Equal(got, want) {
			t.Fatalf("final: Prefix(%d) diverged from model", id)
		}
	}
	var wantTotal int64
	for _, b := range model {
		wantTotal += int64(len(b))
	}
	if got := s.TotalBytes(); got != wantTotal {
		t.Fatalf("TotalBytes = %d, model %d", got, wantTotal)
	}
}

// TestPrefixStoreTotalBytesRunning pins the satellite fix: the O(1)
// running total must agree with an O(objects) scan after any mix of
// appends, overlap-deduped appends, truncations, and deletions.
func TestPrefixStoreTotalBytesRunning(t *testing.T) {
	s := NewPrefixStore()
	check := func(stage string) {
		t.Helper()
		if got, want := s.TotalBytes(), s.scanTotalBytes(); got != want {
			t.Fatalf("%s: TotalBytes = %d, scan = %d", stage, got, want)
		}
	}
	check("empty")
	s.AppendAt(1, 0, Content(1, 0, 100_000), 1<<20)
	s.AppendAt(2, 0, Content(2, 0, 50_000), 1<<20)
	check("after appends")
	// Overlapping re-append retains nothing and must not inflate total.
	s.AppendAt(1, 0, Content(1, 0, 60_000), 1<<20)
	check("after overlap dedup")
	// Limit clip retains only part of the data.
	s.AppendAt(2, 50_000, Content(2, 50_000, 100_000), 80_000)
	check("after limit clip")
	s.Truncate(1, 30_000)
	check("after mid truncate")
	s.Truncate(2, 0)
	check("after delete")
	if got := s.TotalBytes(); got != 30_000 {
		t.Fatalf("TotalBytes = %d, want 30000", got)
	}
}

// TestPrefixViewStableUnderTruncate pins the aliasing contract that
// makes zero-copy serving safe: a view captured before a truncation
// (and the append that follows it) still reads the exact bytes that
// were published at capture time.
func TestPrefixViewStableUnderTruncate(t *testing.T) {
	s := NewPrefixStore()
	const size = 3*segmentSize + 1234 // tail is mid-segment
	want := Content(7, 0, size)
	s.AppendAt(7, 0, want, size)

	v := s.View(7, size)
	if v.Len() != size {
		t.Fatalf("view length %d, want %d", v.Len(), size)
	}

	// Mutate the store under the live view: cut mid-segment, then grow
	// back with different-offset content so the tail segment would be
	// corrupted if the store recycled or overwrote it.
	const cut = segmentSize + 100
	s.Truncate(7, cut)
	s.AppendAt(7, cut, Content(7, cut, 2*segmentSize), size)

	var got bytes.Buffer
	if _, err := v.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("view bytes changed after concurrent truncate+append")
	}

	// The store itself must serve the new state correctly.
	if fresh := s.Prefix(7); !bytes.Equal(fresh, Content(7, 0, cut+2*segmentSize)) {
		t.Fatal("store content wrong after truncate+append")
	}
}

// TestPrefixStoreSealedTailNotRewritten checks the mechanism behind the
// contract above: after a mid-segment truncation the next append must
// open a fresh segment rather than write into the sealed tail.
func TestPrefixStoreSealedTailNotRewritten(t *testing.T) {
	s := NewPrefixStore()
	s.AppendAt(3, 0, Content(3, 0, 1000), 1<<20)
	s.mu.RLock()
	tail0 := s.data[3].tail()
	s.mu.RUnlock()

	s.Truncate(3, 500)
	s.AppendAt(3, 500, Content(3, 500, 1000), 1<<20)

	s.mu.RLock()
	e := s.data[3]
	segs := e.segs
	s.mu.RUnlock()
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2 (sealed tail + fresh)", len(segs))
	}
	if segs[0] != tail0 {
		t.Fatal("first segment identity changed")
	}
	if segs[0].used != 1000 {
		t.Fatalf("sealed segment used = %d, want untouched 1000", segs[0].used)
	}
	if segs[1].off != 500 {
		t.Fatalf("fresh segment off = %d, want 500", segs[1].off)
	}
	if got := s.Prefix(3); !bytes.Equal(got, Content(3, 0, 1500)) {
		t.Fatal("content wrong after sealed-tail append")
	}
}

// TestPrefixViewClampedHasNoHeader: a view clamped below the stored
// length must not carry the full-length prebuilt header.
func TestPrefixViewClampedHasNoHeader(t *testing.T) {
	s := NewPrefixStore()
	s.AppendAt(4, 0, Content(4, 0, 2000), 1<<20)
	if v := s.View(4, 2000); v.hdr == nil {
		t.Fatal("full view lost its prebuilt header")
	} else if v.hdr[0] != "HIT-PREFIX; bytes=2000" {
		t.Fatalf("header = %q", v.hdr[0])
	}
	if v := s.View(4, 1500); v.hdr != nil {
		t.Fatalf("clamped view kept full-length header %q", v.hdr[0])
	}
}

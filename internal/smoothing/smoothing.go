// Package smoothing implements the optimal smoothing algorithm of Salehi,
// Zhang, Kurose and Towsley (SIGMETRICS 1996), which the paper relies on
// for variable-bit-rate content: "For variable bit-rate (VBR) objects, we
// assume the use of the optimal smoothing technique [29] to reduce the
// burstiness of transmission rate" (Section 2.2).
//
// Given per-frame sizes and a client buffer, the algorithm computes the
// shortest-path ("taut string") transmission schedule between the
// cumulative-consumption lower curve and the buffer-shifted upper curve.
// The resulting piecewise-CBR schedule provably minimizes both the peak
// transmission rate and the rate variability among all feasible schedules.
package smoothing

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadInput reports an invalid smoothing problem.
var ErrBadInput = errors.New("smoothing: invalid input")

// Segment is one constant-rate run of the schedule: during frame slots
// [Start, End) the sender transmits Rate bytes per slot.
type Segment struct {
	Start int     // first slot (inclusive)
	End   int     // last slot (exclusive)
	Rate  float64 // bytes per frame slot
}

// Schedule is a complete piecewise-CBR transmission plan for one object.
type Schedule struct {
	Segments []Segment
	total    float64
	slots    int
}

// Smooth computes the optimal transmission schedule for the given
// per-frame sizes (bytes) and client buffer (bytes). frames must be
// non-empty with non-negative sizes; buffer must be non-negative.
//
// The schedule starts with an empty buffer at slot 0 and delivers exactly
// the total object size by slot len(frames); at every slot k the
// cumulative bytes sent S(k) satisfies D(k) <= S(k) <= min(D(n), D(k)+B),
// where D is cumulative consumption (no underflow, no buffer overflow).
func Smooth(frames []float64, buffer float64) (*Schedule, error) {
	n := len(frames)
	if n == 0 {
		return nil, fmt.Errorf("%w: no frames", ErrBadInput)
	}
	if buffer < 0 || math.IsNaN(buffer) {
		return nil, fmt.Errorf("%w: buffer=%v, want >= 0", ErrBadInput, buffer)
	}
	// Cumulative consumption D[0..n] and the curve pair (L, U).
	d := make([]float64, n+1)
	for i, f := range frames {
		if f < 0 || math.IsNaN(f) {
			return nil, fmt.Errorf("%w: frame %d size %v, want >= 0", ErrBadInput, i, f)
		}
		d[i+1] = d[i] + f
	}
	total := d[n]
	lower := func(k int) float64 { return d[k] }
	upper := func(k int) float64 {
		if k == n {
			return total // the schedule must end exactly at the object size
		}
		u := d[k] + buffer
		if u > total {
			u = total
		}
		return u
	}

	const eps = 1e-9
	sched := &Schedule{total: total, slots: n}
	start, sv := 0, 0.0 // current anchor point (slot, cumulative bytes)
	for start < n {
		var (
			minSlope = math.Inf(-1)
			maxSlope = math.Inf(1)
			minAt    = -1
			maxAt    = -1
			bent     = false
		)
		for j := start + 1; j <= n; j++ {
			dj := float64(j - start)
			lo := (lower(j) - sv) / dj
			hi := (upper(j) - sv) / dj
			if lo > maxSlope+eps {
				// The lower curve now demands more than the upper curve
				// allowed earlier: bend on the upper curve at maxAt.
				sched.append(start, maxAt, maxSlope)
				sv += maxSlope * float64(maxAt-start)
				start = maxAt
				bent = true
				break
			}
			if hi < minSlope-eps {
				// The upper curve now allows less than the lower curve
				// demanded earlier: bend on the lower curve at minAt.
				sched.append(start, minAt, minSlope)
				sv += minSlope * float64(minAt-start)
				start = minAt
				bent = true
				break
			}
			if lo > minSlope {
				minSlope, minAt = lo, j
			}
			if hi < maxSlope {
				maxSlope, maxAt = hi, j
			}
		}
		if !bent {
			// No binding constraint: go straight to the endpoint.
			rate := (total - sv) / float64(n-start)
			sched.append(start, n, rate)
			start = n
		}
	}
	return sched, nil
}

// append adds a segment, merging with the previous one when the rate is
// unchanged.
func (s *Schedule) append(start, end int, rate float64) {
	if rate < 0 && rate > -1e-9 {
		rate = 0 // clamp numeric noise
	}
	if k := len(s.Segments); k > 0 && math.Abs(s.Segments[k-1].Rate-rate) < 1e-9 {
		s.Segments[k-1].End = end
		return
	}
	s.Segments = append(s.Segments, Segment{Start: start, End: end, Rate: rate})
}

// Slots returns the number of frame slots covered by the schedule.
func (s *Schedule) Slots() int { return s.slots }

// Total returns the total bytes transmitted.
func (s *Schedule) Total() float64 { return s.total }

// Cumulative returns the cumulative bytes sent by the end of slot k
// (k in [0, Slots()]).
func (s *Schedule) Cumulative(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > s.slots {
		k = s.slots
	}
	sum := 0.0
	for _, seg := range s.Segments {
		if k <= seg.Start {
			break
		}
		end := seg.End
		if k < end {
			end = k
		}
		sum += seg.Rate * float64(end-seg.Start)
	}
	return sum
}

// PeakRate returns the largest segment rate (bytes per slot).
func (s *Schedule) PeakRate() float64 {
	peak := 0.0
	for _, seg := range s.Segments {
		if seg.Rate > peak {
			peak = seg.Rate
		}
	}
	return peak
}

// MeanRate returns total bytes divided by the number of slots.
func (s *Schedule) MeanRate() float64 {
	if s.slots == 0 {
		return 0
	}
	return s.total / float64(s.slots)
}

// RateCoV returns the coefficient of variation of the per-slot rate, a
// measure of remaining burstiness (0 for a single CBR run).
func (s *Schedule) RateCoV() float64 {
	if s.slots == 0 {
		return 0
	}
	mean := s.MeanRate()
	if mean == 0 {
		return 0
	}
	sumSq := 0.0
	for _, seg := range s.Segments {
		d := seg.Rate - mean
		sumSq += d * d * float64(seg.End-seg.Start)
	}
	return math.Sqrt(sumSq/float64(s.slots)) / mean
}

// MinimalPeakBound returns the information-theoretic lower bound on the
// peak rate of any feasible schedule for the given problem: the maximum
// over slot pairs i < j of (D(j) - U(i)) / (j - i), with U(0) pinned to 0
// because every schedule starts empty. Smooth always achieves this bound;
// tests verify the equality.
func MinimalPeakBound(frames []float64, buffer float64) (float64, error) {
	n := len(frames)
	if n == 0 {
		return 0, fmt.Errorf("%w: no frames", ErrBadInput)
	}
	if buffer < 0 || math.IsNaN(buffer) {
		return 0, fmt.Errorf("%w: buffer=%v, want >= 0", ErrBadInput, buffer)
	}
	d := make([]float64, n+1)
	for i, f := range frames {
		if f < 0 || math.IsNaN(f) {
			return 0, fmt.Errorf("%w: frame %d size %v, want >= 0", ErrBadInput, i, f)
		}
		d[i+1] = d[i] + f
	}
	total := d[n]
	upper := func(i int) float64 {
		if i == 0 {
			return 0
		}
		u := d[i] + buffer
		if u > total {
			u = total
		}
		return u
	}
	bound := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j <= n; j++ {
			slope := (d[j] - upper(i)) / float64(j-i)
			if slope > bound {
				bound = slope
			}
		}
	}
	return bound, nil
}

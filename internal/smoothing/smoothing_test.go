package smoothing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSmoothValidation(t *testing.T) {
	if _, err := Smooth(nil, 10); err == nil {
		t.Error("empty frames accepted")
	}
	if _, err := Smooth([]float64{1}, -1); err == nil {
		t.Error("negative buffer accepted")
	}
	if _, err := Smooth([]float64{-1}, 10); err == nil {
		t.Error("negative frame accepted")
	}
	if _, err := Smooth([]float64{math.NaN()}, 10); err == nil {
		t.Error("NaN frame accepted")
	}
	if _, err := Smooth([]float64{1}, math.NaN()); err == nil {
		t.Error("NaN buffer accepted")
	}
}

func TestSmoothUniformFramesIsCBR(t *testing.T) {
	frames := []float64{10, 10, 10, 10, 10}
	s, err := Smooth(frames, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Segments) != 1 {
		t.Fatalf("segments = %d, want 1 (pure CBR)", len(s.Segments))
	}
	if got := s.Segments[0].Rate; math.Abs(got-10) > 1e-9 {
		t.Errorf("rate = %v, want 10", got)
	}
	if s.RateCoV() != 0 {
		t.Errorf("RateCoV = %v, want 0", s.RateCoV())
	}
}

func TestSmoothZeroBufferFollowsFrames(t *testing.T) {
	frames := []float64{5, 20, 1, 8}
	s, err := Smooth(frames, 0)
	if err != nil {
		t.Fatal(err)
	}
	// With no buffer, cumulative sent must equal cumulative consumed.
	want := 0.0
	for k := 0; k <= len(frames); k++ {
		if k > 0 {
			want += frames[k-1]
		}
		if got := s.Cumulative(k); math.Abs(got-want) > 1e-9 {
			t.Errorf("Cumulative(%d) = %v, want %v", k, got, want)
		}
	}
	if got := s.PeakRate(); math.Abs(got-20) > 1e-9 {
		t.Errorf("PeakRate = %v, want 20", got)
	}
}

func TestSmoothLargeBufferSingleSegmentWhenFeasible(t *testing.T) {
	// Increasing cumulative demand that stays below the straight line:
	// late-loaded content smooths to a single CBR run given enough buffer.
	frames := []float64{1, 1, 1, 37} // total 40, 4 slots, mean 10
	s, err := Smooth(frames, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Segments) != 1 {
		t.Fatalf("segments = %+v, want a single segment", s.Segments)
	}
	if got := s.Segments[0].Rate; math.Abs(got-10) > 1e-9 {
		t.Errorf("rate = %v, want 10", got)
	}
}

func TestSmoothFrontLoadedNeedsHighStart(t *testing.T) {
	// A huge first frame forces the schedule to deliver it by slot 1
	// regardless of buffer size.
	frames := []float64{100, 1, 1, 1}
	s, err := Smooth(frames, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Cumulative(1); got < 100-1e-9 {
		t.Errorf("Cumulative(1) = %v, want >= 100 (first frame deadline)", got)
	}
	if got := s.PeakRate(); got < 100-1e-9 {
		t.Errorf("PeakRate = %v, want >= 100", got)
	}
}

func TestSmoothKnownBend(t *testing.T) {
	// Demand: slots of 10,10,40,20 with buffer 20.
	frames := []float64{10, 10, 40, 20}
	s, err := Smooth(frames, 20)
	if err != nil {
		t.Fatal(err)
	}
	assertFeasible(t, frames, 20, s)
	// Peak must match the analytic lower bound.
	bound, err := MinimalPeakBound(frames, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PeakRate(); math.Abs(got-bound) > 1e-6 {
		t.Errorf("PeakRate = %v, want bound %v", got, bound)
	}
}

func TestScheduleAccessors(t *testing.T) {
	frames := []float64{4, 6}
	s, err := Smooth(frames, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s.Slots() != 2 {
		t.Errorf("Slots = %d, want 2", s.Slots())
	}
	if s.Total() != 10 {
		t.Errorf("Total = %v, want 10", s.Total())
	}
	if s.MeanRate() != 5 {
		t.Errorf("MeanRate = %v, want 5", s.MeanRate())
	}
	if got := s.Cumulative(-1); got != 0 {
		t.Errorf("Cumulative(-1) = %v, want 0", got)
	}
	if got := s.Cumulative(99); math.Abs(got-10) > 1e-9 {
		t.Errorf("Cumulative(beyond) = %v, want 10", got)
	}
}

func TestMinimalPeakBoundValidation(t *testing.T) {
	if _, err := MinimalPeakBound(nil, 1); err == nil {
		t.Error("empty frames accepted")
	}
	if _, err := MinimalPeakBound([]float64{1}, -1); err == nil {
		t.Error("negative buffer accepted")
	}
	if _, err := MinimalPeakBound([]float64{-2}, 1); err == nil {
		t.Error("negative frame accepted")
	}
}

func assertFeasible(t *testing.T, frames []float64, buffer float64, s *Schedule) {
	t.Helper()
	n := len(frames)
	d := make([]float64, n+1)
	for i, f := range frames {
		d[i+1] = d[i] + f
	}
	total := d[n]
	prev := 0.0
	for k := 0; k <= n; k++ {
		got := s.Cumulative(k)
		if got < prev-1e-6 {
			t.Fatalf("Cumulative(%d) = %v decreased from %v", k, got, prev)
		}
		prev = got
		if got < d[k]-1e-6 {
			t.Fatalf("underflow at slot %d: sent %v < consumed %v", k, got, d[k])
		}
		limit := d[k] + buffer
		if limit > total {
			limit = total
		}
		if k < n && got > limit+1e-6 {
			t.Fatalf("overflow at slot %d: sent %v > limit %v", k, got, limit)
		}
	}
	if math.Abs(s.Cumulative(n)-total) > 1e-6 {
		t.Fatalf("schedule ends at %v, want %v", s.Cumulative(n), total)
	}
}

func randomFrames(rng *rand.Rand) ([]float64, float64) {
	n := rng.Intn(30) + 1
	frames := make([]float64, n)
	for i := range frames {
		frames[i] = float64(rng.Intn(100))
	}
	buffer := float64(rng.Intn(200))
	return frames, buffer
}

func TestSmoothFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frames, buffer := randomFrames(rng)
		s, err := Smooth(frames, buffer)
		if err != nil {
			return false
		}
		n := len(frames)
		d := make([]float64, n+1)
		for i, fr := range frames {
			d[i+1] = d[i] + fr
		}
		total := d[n]
		prev := -1e-9
		for k := 0; k <= n; k++ {
			got := s.Cumulative(k)
			if got < prev-1e-6 || got < d[k]-1e-6 {
				return false
			}
			limit := d[k] + buffer
			if limit > total {
				limit = total
			}
			if k < n && got > limit+1e-6 {
				return false
			}
			prev = got
		}
		return math.Abs(s.Cumulative(n)-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSmoothAchievesMinimalPeakProperty(t *testing.T) {
	// The taut-string schedule's peak rate must equal the analytic lower
	// bound on every instance - this is the optimality guarantee.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frames, buffer := randomFrames(rng)
		s, err := Smooth(frames, buffer)
		if err != nil {
			return false
		}
		bound, err := MinimalPeakBound(frames, buffer)
		if err != nil {
			return false
		}
		return math.Abs(s.PeakRate()-bound) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSmoothLargerBufferNeverWorseProperty(t *testing.T) {
	// Peak rate is non-increasing in buffer size.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frames, buffer := randomFrames(rng)
		s1, err := Smooth(frames, buffer)
		if err != nil {
			return false
		}
		s2, err := Smooth(frames, buffer+50)
		if err != nil {
			return false
		}
		return s2.PeakRate() <= s1.PeakRate()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSmoothSegmentsCoverAllSlotsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frames, buffer := randomFrames(rng)
		s, err := Smooth(frames, buffer)
		if err != nil {
			return false
		}
		next := 0
		for _, seg := range s.Segments {
			if seg.Start != next || seg.End <= seg.Start || seg.Rate < 0 {
				return false
			}
			next = seg.End
		}
		return next == len(frames)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSmoothingReducesBurstiness(t *testing.T) {
	// A bursty VBR trace smoothed with a decent buffer must have lower
	// rate CoV than the raw trace.
	rng := rand.New(rand.NewSource(99))
	frames := make([]float64, 500)
	for i := range frames {
		frames[i] = 50 + 200*rng.Float64()
		if rng.Intn(20) == 0 {
			frames[i] += 2000 // I-frame spikes
		}
	}
	raw := rawCoV(frames)
	s, err := Smooth(frames, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.RateCoV(); got >= raw {
		t.Errorf("smoothed CoV %v, want < raw CoV %v", got, raw)
	}
}

func rawCoV(frames []float64) float64 {
	mean := 0.0
	for _, f := range frames {
		mean += f
	}
	mean /= float64(len(frames))
	ss := 0.0
	for _, f := range frames {
		ss += (f - mean) * (f - mean)
	}
	return math.Sqrt(ss/float64(len(frames))) / mean
}

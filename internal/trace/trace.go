// Package trace implements the proxy-log pipeline of Section 3.1: the
// paper derives its bandwidth models by analyzing NLANR proxy-cache
// access logs - taking every missed request for an object larger than
// 200 KB and computing a throughput sample as object size divided by
// connection duration, then studying the per-server sample-to-mean
// ratios.
//
// The original nine-day NLANR UC log is not publicly archived, so this
// package also synthesizes Squid-format logs whose miss throughput
// follows a configurable bandwidth model; the analyzer then re-derives
// the distribution from the log exactly as the paper does. See DESIGN.md
// ("Substitutions") for why this preserves the evaluation.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"streamcache/internal/bandwidth"
	"streamcache/internal/metrics"
	"streamcache/internal/units"
)

// Errors returned by this package.
var (
	ErrBadEntry  = errors.New("trace: malformed log entry")
	ErrBadConfig = errors.New("trace: invalid configuration")
)

// Cache result codes used in Squid access logs.
const (
	ActionMiss = "TCP_MISS"
	ActionHit  = "TCP_HIT"
)

// Entry is one Squid-native-format access log line:
//
//	time elapsed remotehost code/status bytes method URL rfc931 peerstatus/peerhost type
type Entry struct {
	Timestamp   float64 // unix seconds (millisecond precision)
	ElapsedMS   int64   // connection duration, milliseconds
	Client      string
	Action      string // TCP_MISS, TCP_HIT, ...
	Status      int    // HTTP status
	Bytes       int64
	Method      string
	URL         string
	Hierarchy   string // e.g. DIRECT/origin-7.example.com
	ContentType string
}

// Server extracts the origin host from the hierarchy field, or "" if the
// field is malformed.
func (e Entry) Server() string {
	if i := strings.IndexByte(e.Hierarchy, '/'); i >= 0 {
		return e.Hierarchy[i+1:]
	}
	return ""
}

// ThroughputBps returns the transfer throughput in bytes/s, or 0 when the
// duration is zero.
func (e Entry) ThroughputBps() float64 {
	if e.ElapsedMS <= 0 {
		return 0
	}
	return float64(e.Bytes) / (float64(e.ElapsedMS) / 1000)
}

// Format renders the entry as a Squid log line.
func (e Entry) Format() string {
	return fmt.Sprintf("%.3f %6d %s %s/%03d %d %s %s - %s %s",
		e.Timestamp, e.ElapsedMS, e.Client, e.Action, e.Status,
		e.Bytes, e.Method, e.URL, e.Hierarchy, e.ContentType)
}

// Parse parses one Squid log line.
func Parse(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) != 10 {
		return Entry{}, fmt.Errorf("%w: %d fields, want 10", ErrBadEntry, len(fields))
	}
	ts, err := strconv.ParseFloat(fields[0], 64)
	if err != nil || ts < 0 || math.IsNaN(ts) || math.IsInf(ts, 0) {
		return Entry{}, fmt.Errorf("%w: timestamp %q", ErrBadEntry, fields[0])
	}
	elapsed, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || elapsed < 0 {
		return Entry{}, fmt.Errorf("%w: elapsed %q", ErrBadEntry, fields[1])
	}
	actionStatus := strings.SplitN(fields[3], "/", 2)
	if len(actionStatus) != 2 || actionStatus[0] == "" {
		return Entry{}, fmt.Errorf("%w: action/status %q", ErrBadEntry, fields[3])
	}
	status, err := strconv.Atoi(actionStatus[1])
	if err != nil || status < 0 {
		return Entry{}, fmt.Errorf("%w: status %q", ErrBadEntry, actionStatus[1])
	}
	size, err := strconv.ParseInt(fields[4], 10, 64)
	if err != nil || size < 0 {
		return Entry{}, fmt.Errorf("%w: bytes %q", ErrBadEntry, fields[4])
	}
	return Entry{
		Timestamp:   ts,
		ElapsedMS:   elapsed,
		Client:      fields[2],
		Action:      actionStatus[0],
		Status:      status,
		Bytes:       size,
		Method:      fields[5],
		URL:         fields[6],
		Hierarchy:   fields[8],
		ContentType: fields[9],
	}, nil
}

// Write renders entries to w, one log line each.
func Write(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	for i, e := range entries {
		if _, err := bw.WriteString(e.Format()); err != nil {
			return fmt.Errorf("trace: write entry %d: %w", i, err)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("trace: write entry %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadAll parses every line of r. Blank lines are skipped; a malformed
// line aborts with its line number.
func ReadAll(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	return out, nil
}

// GenConfig parameterizes synthetic log generation.
type GenConfig struct {
	Entries       int                   // number of log lines
	Servers       int                   // number of distinct origin servers (paths)
	Base          bandwidth.Model       // per-server mean bandwidth
	Variation     bandwidth.Variability // per-request sample-to-mean ratio
	MinBytes      int64                 // smallest object (default 4 KB)
	MaxBytes      int64                 // largest object (default 8 MB)
	HitFraction   float64               // fraction of TCP_HIT lines (excluded by analysis)
	SmallFraction float64               // fraction of sub-200KB objects (excluded by analysis)
	RequestRate   float64               // requests/s for timestamps (default 10)
	StartTime     float64               // unix time of the first entry
	Seed          int64
}

// Generate synthesizes a Squid log. Each origin server is assigned a mean
// bandwidth from Base; each request to it observes mean x Variation ratio,
// and the logged elapsed time is size/throughput, so the analyzer recovers
// the configured distributions.
func Generate(cfg GenConfig) ([]Entry, error) {
	if cfg.Entries <= 0 {
		return nil, fmt.Errorf("%w: entries=%d, want > 0", ErrBadConfig, cfg.Entries)
	}
	if cfg.Servers <= 0 {
		return nil, fmt.Errorf("%w: servers=%d, want > 0", ErrBadConfig, cfg.Servers)
	}
	if cfg.Base == nil {
		return nil, fmt.Errorf("%w: nil Base model", ErrBadConfig)
	}
	if cfg.Variation == nil {
		return nil, fmt.Errorf("%w: nil Variation model", ErrBadConfig)
	}
	if cfg.HitFraction < 0 || cfg.HitFraction >= 1 {
		return nil, fmt.Errorf("%w: hit fraction=%v, want in [0,1)", ErrBadConfig, cfg.HitFraction)
	}
	if cfg.SmallFraction < 0 || cfg.SmallFraction >= 1 {
		return nil, fmt.Errorf("%w: small fraction=%v, want in [0,1)", ErrBadConfig, cfg.SmallFraction)
	}
	minBytes := cfg.MinBytes
	if minBytes <= 0 {
		minBytes = 4 * units.KB
	}
	maxBytes := cfg.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 8 * units.MB
	}
	if maxBytes <= AnalysisMinBytes || minBytes >= AnalysisMinBytes {
		return nil, fmt.Errorf("%w: byte range [%d,%d] must straddle the %d analysis threshold",
			ErrBadConfig, minBytes, maxBytes, AnalysisMinBytes)
	}
	rate := cfg.RequestRate
	if rate <= 0 {
		rate = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	paths := make([]bandwidth.Path, cfg.Servers)
	for i := range paths {
		paths[i] = bandwidth.Path{MeanRate: cfg.Base.Sample(rng), Variation: cfg.Variation}
	}
	entries := make([]Entry, 0, cfg.Entries)
	now := cfg.StartTime
	for i := 0; i < cfg.Entries; i++ {
		now += rng.ExpFloat64() / rate
		srv := rng.Intn(cfg.Servers)
		var size int64
		if rng.Float64() < cfg.SmallFraction {
			size = minBytes + rng.Int63n(AnalysisMinBytes-minBytes)
		} else {
			size = AnalysisMinBytes + rng.Int63n(maxBytes-AnalysisMinBytes)
		}
		action := ActionMiss
		throughput := paths[srv].Instant(rng)
		if rng.Float64() < cfg.HitFraction {
			action = ActionHit
			// Hits are served locally at LAN speed.
			throughput = units.KBps(10000)
		}
		elapsed := int64(float64(size) / throughput * 1000)
		if elapsed < 1 {
			elapsed = 1
		}
		entries = append(entries, Entry{
			Timestamp:   now,
			ElapsedMS:   elapsed,
			Client:      fmt.Sprintf("10.0.%d.%d", rng.Intn(16), rng.Intn(256)),
			Action:      action,
			Status:      200,
			Bytes:       size,
			Method:      "GET",
			URL:         fmt.Sprintf("http://origin-%d.example.com/media/obj-%d", srv, i),
			Hierarchy:   fmt.Sprintf("DIRECT/origin-%d.example.com", srv),
			ContentType: "video/mpeg",
		})
	}
	return entries, nil
}

// AnalysisMinBytes is the object-size threshold of Section 3.1: only
// requests larger than 200 KB yield bandwidth samples ("long duration of
// HTTP connections results in more accurate measurement").
const AnalysisMinBytes = 200 * units.KB

// Analysis holds the bandwidth samples extracted from a log.
type Analysis struct {
	// Samples are all qualifying throughput samples in bytes/s.
	Samples []float64
	// PerServer groups samples by origin server.
	PerServer map[string][]float64
}

// Analyze extracts bandwidth samples following Section 3.1: missed
// requests only (so the object was served by the origin, not the proxy),
// objects larger than minBytes (AnalysisMinBytes if 0), sample =
// bytes/duration.
func Analyze(entries []Entry, minBytes int64) (*Analysis, error) {
	if minBytes <= 0 {
		minBytes = AnalysisMinBytes
	}
	a := &Analysis{PerServer: make(map[string][]float64)}
	for _, e := range entries {
		if e.Action != ActionMiss || e.Bytes <= minBytes {
			continue
		}
		bps := e.ThroughputBps()
		if bps <= 0 {
			continue
		}
		a.Samples = append(a.Samples, bps)
		if srv := e.Server(); srv != "" {
			a.PerServer[srv] = append(a.PerServer[srv], bps)
		}
	}
	if len(a.Samples) == 0 {
		return nil, fmt.Errorf("%w: no qualifying samples (need %s misses > %d bytes)",
			ErrBadConfig, ActionMiss, minBytes)
	}
	return a, nil
}

// Histogram bins the bandwidth samples with the given bin width (the
// paper uses 4 KB/s slots) up to maxBW; samples beyond clamp into the
// last bin.
func (a *Analysis) Histogram(binWidth, maxBW float64) (*metrics.Histogram, error) {
	bins := int(maxBW / binWidth)
	if bins < 1 {
		bins = 1
	}
	h, err := metrics.NewHistogram(0, binWidth, bins)
	if err != nil {
		return nil, err
	}
	for _, s := range a.Samples {
		h.Add(s)
	}
	return h, nil
}

// SampleToMeanRatios computes the Figure 3 statistic: for every server
// with at least two samples, the mean bandwidth of its path, then each
// sample divided by that mean.
func (a *Analysis) SampleToMeanRatios() []float64 {
	var ratios []float64
	// Sorted server order: downstream consumers fold the ratios into
	// order-sensitive float accumulators (Welford), so the slice order
	// must not follow map iteration order.
	servers := make([]string, 0, len(a.PerServer))
	for srv := range a.PerServer {
		servers = append(servers, srv)
	}
	sort.Strings(servers)
	for _, srv := range servers {
		samples := a.PerServer[srv]
		if len(samples) < 2 {
			continue
		}
		sum := 0.0
		for _, s := range samples {
			sum += s
		}
		mean := sum / float64(len(samples))
		if mean <= 0 {
			continue
		}
		for _, s := range samples {
			ratios = append(ratios, s/mean)
		}
	}
	return ratios
}

// Distribution converts the analysis samples into a sampleable empirical
// bandwidth distribution, closing the loop from log to simulation input.
func (a *Analysis) Distribution() (*bandwidth.Empirical, error) {
	return bandwidth.FromSamples(a.Samples)
}

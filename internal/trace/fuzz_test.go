package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseMalformed hammers the Squid log parser with a corpus of
// malformed lines (bad field counts, negative and overflowing numbers,
// huge fields) beyond the well-formed-leaning seeds of FuzzParse. The
// contract: never panic, and anything that parses must reach a stable
// Format/Parse fixed point after one canonicalizing pass.
func FuzzParseMalformed(f *testing.F) {
	f.Add("968251387.642   1432 10.0.3.44 TCP_MISS/200 524288 GET http://origin-7.example.com/media/obj-1 - DIRECT/origin-7.example.com video/mpeg")
	f.Add("0.000 0 h TCP_HIT/000 0 GET u - D/ t")
	f.Add("")
	f.Add("   ")
	f.Add("not a log line")
	f.Add("968251387.642 1432 10.0.3.44 TCP_MISS 524288 GET u - DIRECT/o video/mpeg")    // missing /status
	f.Add("-1 1432 10.0.3.44 TCP_MISS/200 524288 GET u - DIRECT/o video/mpeg")           // negative timestamp
	f.Add("1 -5 10.0.3.44 TCP_MISS/200 524288 GET u - DIRECT/o video/mpeg")              // negative elapsed
	f.Add("1 5 10.0.3.44 TCP_MISS/200 99999999999999999999 GET u - DIRECT/o video/mpeg") // overflowing bytes
	f.Add("1 5 10.0.3.44 /200 1 GET u - DIRECT/o video/mpeg")                            // empty action
	f.Add("NaN 5 10.0.3.44 TCP_MISS/200 1 GET u - DIRECT/o video/mpeg")                  // NaN timestamp
	f.Add("1e308 5 10.0.3.44 TCP_MISS/200 1 GET u - DIRECT/o video/mpeg")                // huge timestamp
	f.Add("1 5 10.0.3.44 TCP_MISS/200 1 GET " + strings.Repeat("x", 4096) + " - D/o t")  // huge URL field
	f.Fuzz(func(t *testing.T, line string) {
		e, err := Parse(line)
		if err != nil {
			return
		}
		// Accessors must be safe on anything that parsed.
		_ = e.Server()
		if bps := e.ThroughputBps(); bps < 0 {
			t.Fatalf("negative throughput %v from %q", bps, line)
		}
		// One Format pass canonicalizes (timestamps quantize to
		// milliseconds); after that the round trip must be exact.
		canon, err := Parse(e.Format())
		if err != nil {
			t.Fatalf("formatted entry does not re-parse: %v\nentry: %+v\nformatted: %q", err, e, e.Format())
		}
		back, err := Parse(canon.Format())
		if err != nil {
			t.Fatalf("canonical entry does not re-parse: %v (entry %+v)", err, canon)
		}
		if back != canon {
			t.Fatalf("canonical round trip changed the entry:\n got %+v\nwant %+v", back, canon)
		}
	})
}

// FuzzReadAll feeds arbitrary multi-line input (malformed lines, huge
// fields, truncated/binary garbage) to the log reader; it must never
// panic, and on success every entry must have come through Parse.
func FuzzReadAll(f *testing.F) {
	f.Add([]byte("968251387.642 1432 10.0.3.44 TCP_MISS/200 524288 GET u - DIRECT/o video/mpeg\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte("garbage\nmore garbage"))
	f.Add([]byte{0xff, 0xfe, 0x00, 0x01})
	f.Add(bytes.Repeat([]byte("a"), 1<<16)) // one token larger than the scanner's initial buffer
	f.Add([]byte("1 1 h TCP_MISS/200 1 GET u - D/o t\ntruncated lin"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, e := range entries {
			if e.Timestamp < 0 || e.ElapsedMS < 0 || e.Bytes < 0 {
				t.Fatalf("ReadAll accepted invalid entry %+v", e)
			}
		}
	})
}

package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"streamcache/internal/bandwidth"
	"streamcache/internal/metrics"
	"streamcache/internal/units"
)

func sampleEntry() Entry {
	return Entry{
		Timestamp:   987654321.123,
		ElapsedMS:   2500,
		Client:      "10.0.1.44",
		Action:      ActionMiss,
		Status:      200,
		Bytes:       512000,
		Method:      "GET",
		URL:         "http://origin-3.example.com/media/obj-17",
		Hierarchy:   "DIRECT/origin-3.example.com",
		ContentType: "video/mpeg",
	}
}

func TestEntryFormatParseRoundTrip(t *testing.T) {
	e := sampleEntry()
	got, err := Parse(e.Format())
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, e)
	}
}

func TestEntryServer(t *testing.T) {
	e := sampleEntry()
	if got := e.Server(); got != "origin-3.example.com" {
		t.Errorf("Server() = %q, want origin-3.example.com", got)
	}
	e.Hierarchy = "NOHOST"
	if got := e.Server(); got != "" {
		t.Errorf("Server() = %q, want empty", got)
	}
}

func TestEntryThroughput(t *testing.T) {
	e := sampleEntry() // 512000 bytes in 2.5 s
	if got, want := e.ThroughputBps(), 204800.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("ThroughputBps() = %v, want %v", got, want)
	}
	e.ElapsedMS = 0
	if got := e.ThroughputBps(); got != 0 {
		t.Errorf("zero-elapsed throughput = %v, want 0", got)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	tests := []struct {
		name string
		line string
	}{
		{name: "empty", line: ""},
		{name: "too few fields", line: "1 2 3"},
		{name: "bad timestamp", line: "xx 100 c TCP_MISS/200 5 GET u - DIRECT/h t"},
		{name: "bad elapsed", line: "1.0 ms c TCP_MISS/200 5 GET u - DIRECT/h t"},
		{name: "bad action field", line: "1.0 100 c TCPMISS200 5 GET u - DIRECT/h t"},
		{name: "bad status", line: "1.0 100 c TCP_MISS/xx 5 GET u - DIRECT/h t"},
		{name: "bad size", line: "1.0 100 c TCP_MISS/200 x GET u - DIRECT/h t"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.line); err == nil {
				t.Errorf("Parse(%q) accepted malformed line", tt.line)
			}
		})
	}
}

func TestWriteReadAllRoundTrip(t *testing.T) {
	entries := []Entry{sampleEntry(), sampleEntry()}
	entries[1].URL = "http://origin-0.example.com/media/obj-1"
	entries[1].Action = ActionHit

	var buf bytes.Buffer
	if err := Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != entries[0] || got[1] != entries[1] {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestReadAllSkipsBlankLines(t *testing.T) {
	input := sampleEntry().Format() + "\n\n\n" + sampleEntry().Format() + "\n"
	got, err := ReadAll(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("len = %d, want 2", len(got))
	}
}

func TestReadAllReportsLineNumber(t *testing.T) {
	input := sampleEntry().Format() + "\ngarbage line here\n"
	_, err := ReadAll(strings.NewReader(input))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line-2 error", err)
	}
}

func validGenConfig() GenConfig {
	return GenConfig{
		Entries:       2000,
		Servers:       40,
		Base:          bandwidth.NLANR(),
		Variation:     bandwidth.NoVariation{},
		HitFraction:   0.2,
		SmallFraction: 0.3,
		Seed:          1,
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*GenConfig)
	}{
		{name: "zero entries", mutate: func(c *GenConfig) { c.Entries = 0 }},
		{name: "zero servers", mutate: func(c *GenConfig) { c.Servers = 0 }},
		{name: "nil base", mutate: func(c *GenConfig) { c.Base = nil }},
		{name: "nil variation", mutate: func(c *GenConfig) { c.Variation = nil }},
		{name: "hit fraction 1", mutate: func(c *GenConfig) { c.HitFraction = 1 }},
		{name: "negative hit fraction", mutate: func(c *GenConfig) { c.HitFraction = -0.1 }},
		{name: "small fraction 1", mutate: func(c *GenConfig) { c.SmallFraction = 1 }},
		{name: "bytes below threshold", mutate: func(c *GenConfig) { c.MaxBytes = 100 * units.KB }},
		{name: "min above threshold", mutate: func(c *GenConfig) { c.MinBytes = 300 * units.KB }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validGenConfig()
			tt.mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := validGenConfig()
	entries, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != cfg.Entries {
		t.Fatalf("len = %d, want %d", len(entries), cfg.Entries)
	}
	hits := 0
	prevTS := 0.0
	for i, e := range entries {
		if e.Timestamp <= prevTS {
			t.Fatalf("entry %d: timestamp %v not increasing", i, e.Timestamp)
		}
		prevTS = e.Timestamp
		if e.Bytes <= 0 || e.ElapsedMS <= 0 {
			t.Fatalf("entry %d: non-positive size/elapsed", i)
		}
		if e.Action == ActionHit {
			hits++
		}
	}
	hitFrac := float64(hits) / float64(len(entries))
	if math.Abs(hitFrac-cfg.HitFraction) > 0.05 {
		t.Errorf("hit fraction %v, want ~%v", hitFrac, cfg.HitFraction)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(validGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(validGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs for identical seeds", i)
		}
	}
}

func TestAnalyzeFiltersHitsAndSmallObjects(t *testing.T) {
	entries := []Entry{
		{Action: ActionMiss, Bytes: 500 * units.KB, ElapsedMS: 1000, Hierarchy: "DIRECT/a"},
		{Action: ActionHit, Bytes: 500 * units.KB, ElapsedMS: 1000, Hierarchy: "DIRECT/a"},
		{Action: ActionMiss, Bytes: 100 * units.KB, ElapsedMS: 1000, Hierarchy: "DIRECT/a"},
		{Action: ActionMiss, Bytes: 300 * units.KB, ElapsedMS: 1000, Hierarchy: "DIRECT/b"},
	}
	a, err := Analyze(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != 2 {
		t.Fatalf("samples = %d, want 2 (hit and small object excluded)", len(a.Samples))
	}
	if len(a.PerServer["a"]) != 1 || len(a.PerServer["b"]) != 1 {
		t.Errorf("PerServer = %v, want one sample each for a and b", a.PerServer)
	}
}

func TestAnalyzeEmptyFails(t *testing.T) {
	if _, err := Analyze(nil, 0); err == nil {
		t.Error("empty log accepted")
	}
	onlyHits := []Entry{{Action: ActionHit, Bytes: 500 * units.KB, ElapsedMS: 100}}
	if _, err := Analyze(onlyHits, 0); err == nil {
		t.Error("hit-only log accepted")
	}
}

func TestAnalyzeRecoversConfiguredDistribution(t *testing.T) {
	// End-to-end: generate a log from the NLANR model, analyze it, and
	// check the recovered distribution matches the Section 3.1 anchors.
	cfg := validGenConfig()
	cfg.Entries = 30000
	cfg.Servers = 500
	entries, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	var w metrics.Welford
	for _, s := range a.Samples {
		w.Add(s)
	}
	below50 := 0
	for _, s := range a.Samples {
		if s < units.KBps(50) {
			below50++
		}
	}
	frac := float64(below50) / float64(len(a.Samples))
	if math.Abs(frac-0.37) > 0.03 {
		t.Errorf("recovered P[bw<50KB/s] = %v, want ~0.37", frac)
	}
	srcMean := bandwidth.NLANR().Mean()
	if math.Abs(w.Mean()-srcMean)/srcMean > 0.1 {
		t.Errorf("recovered mean %v, want ~%v", w.Mean(), srcMean)
	}
}

func TestHistogram4KBSlots(t *testing.T) {
	cfg := validGenConfig()
	entries, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2 uses 4 KB/s slots up to 450 KB/s.
	h, err := a.Histogram(units.KBps(4), units.KBps(452))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBins() != 113 {
		t.Errorf("bins = %d, want 113", h.NumBins())
	}
	if h.Count() != int64(len(a.Samples)) {
		t.Errorf("histogram count %d, want %d", h.Count(), len(a.Samples))
	}
}

func TestSampleToMeanRatiosCenterOnOne(t *testing.T) {
	cfg := validGenConfig()
	cfg.Entries = 20000
	cfg.Servers = 50
	cfg.Variation = bandwidth.NLANRVariability()
	entries, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratios := a.SampleToMeanRatios()
	if len(ratios) == 0 {
		t.Fatal("no ratios computed")
	}
	var w metrics.Welford
	for _, r := range ratios {
		if r <= 0 {
			t.Fatalf("non-positive ratio %v", r)
		}
		w.Add(r)
	}
	if math.Abs(w.Mean()-1) > 0.05 {
		t.Errorf("mean ratio %v, want ~1", w.Mean())
	}
	// Under NLANR variability the ratios must spread noticeably.
	if w.CoV() < 0.3 {
		t.Errorf("ratio CoV %v, want >= 0.3 under NLANR variability", w.CoV())
	}
}

func TestSampleToMeanRatiosSkipsSingletons(t *testing.T) {
	a := &Analysis{PerServer: map[string][]float64{"solo": {100}}}
	if got := a.SampleToMeanRatios(); got != nil {
		t.Errorf("ratios = %v, want nil for singleton servers", got)
	}
}

func TestDistributionFromAnalysis(t *testing.T) {
	cfg := validGenConfig()
	entries, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(entries, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.Distribution()
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean() <= 0 {
		t.Errorf("distribution mean %v, want > 0", d.Mean())
	}
}

func TestFormatParseProperty(t *testing.T) {
	f := func(ts uint32, elapsed uint16, size uint32, srv uint8) bool {
		e := Entry{
			Timestamp:   float64(ts) + 0.5,
			ElapsedMS:   int64(elapsed) + 1,
			Client:      "10.1.2.3",
			Action:      ActionMiss,
			Status:      200,
			Bytes:       int64(size) + 1,
			Method:      "GET",
			URL:         "http://x.example.com/a",
			Hierarchy:   "DIRECT/x.example.com",
			ContentType: "video/mpeg",
		}
		got, err := Parse(e.Format())
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func FuzzParse(f *testing.F) {
	f.Add(sampleEntry().Format())
	f.Add("987654321.123   2500 10.0.1.44 TCP_MISS/200 512000 GET http://x/y - DIRECT/x video/mpeg")
	f.Add("")
	f.Add("1 2 3 4 5 6 7 8 9 10")
	f.Add("NaN NaN c TCP_MISS/200 5 GET u - DIRECT/h t")
	f.Fuzz(func(t *testing.T, line string) {
		e, err := Parse(line)
		if err != nil {
			return // malformed input must only produce an error
		}
		// Formatting a parsed entry must be stable: one Format pass
		// canonicalizes (e.g. quantizes the timestamp to milliseconds),
		// after which Format/Parse must be an exact fixed point.
		canon, err := Parse(e.Format())
		if err != nil {
			t.Fatalf("canonical re-parse failed: %v (entry %+v)", err, e)
		}
		again, err := Parse(canon.Format())
		if err != nil {
			t.Fatalf("second re-parse failed: %v (entry %+v)", err, canon)
		}
		if again != canon {
			t.Fatalf("canonical round trip unstable: %+v vs %+v", again, canon)
		}
	})
}

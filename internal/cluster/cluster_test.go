package cluster

import (
	"testing"

	"streamcache/internal/proxy"
)

func TestNodeConfigValidation(t *testing.T) {
	peers := []string{"http://a", "http://b"}
	tests := []struct {
		name string
		cfg  NodeConfig
	}{
		{"empty origin", NodeConfig{Peers: peers}},
		{"nothing to route to", NodeConfig{Origin: "http://o"}},
		{"self out of range", NodeConfig{Peers: peers, Self: 2, Origin: "http://o"}},
		{"negative self", NodeConfig{Peers: peers, Self: -1, Origin: "http://o"}},
		{"empty peer URL", NodeConfig{Peers: []string{"http://a", ""}, Origin: "http://o"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := tt.cfg.Router(); err == nil {
				t.Error("invalid node config accepted")
			}
		})
	}
}

func TestNodeConfigUpstreams(t *testing.T) {
	cfg := NodeConfig{
		Peers:  []string{"http://e0", "http://e1", "http://e2"},
		Self:   1,
		Parent: "http://parent",
		Origin: "http://origin",
	}
	ups, route, err := cfg.Router()
	if err != nil {
		t.Fatal(err)
	}
	if route == nil {
		t.Fatal("nil route function")
	}
	want := []proxy.Upstream{
		{URL: "http://e0", Tier: "peer"},
		{URL: "http://e2", Tier: "peer"},
		{URL: "http://parent", Tier: "parent"},
	}
	if len(ups) != len(want) {
		t.Fatalf("%d upstreams, want %d: %v", len(ups), len(want), ups)
	}
	for i := range want {
		if ups[i] != want[i] {
			t.Errorf("upstream %d = %+v, want %+v", i, ups[i], want[i])
		}
	}
}

// TestRouterMatchesRingPlacement: the compiled route function must
// agree byte-for-byte with the Ring the simulator consults — same
// owner for every object, peer URL by ring position, self-owned
// objects descending to the parent (or origin without one). This is
// the sim/live placement-agreement seam.
func TestRouterMatchesRingPlacement(t *testing.T) {
	peers := []string{"http://e0", "http://e1", "http://e2", "http://e3"}
	ring, err := NewRing(len(peers), 0)
	if err != nil {
		t.Fatal(err)
	}
	for self := 0; self < len(peers); self++ {
		cfg := NodeConfig{Peers: peers, Self: self, Parent: "http://parent", Origin: "http://origin"}
		_, route, err := cfg.Router()
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 5000; id++ {
			owner := ring.Owner(id)
			rt := route(proxy.Meta{ID: id})
			switch {
			case owner == self:
				if rt.URL != "http://parent" {
					t.Fatalf("self=%d id=%d (self-owned): routed to %q, want parent", self, id, rt.URL)
				}
			default:
				if rt.URL != peers[owner] {
					t.Fatalf("self=%d id=%d: routed to %q, want ring owner %d (%s)", self, id, rt.URL, owner, peers[owner])
				}
			}
			if rt.URL != "" && rt.Fallback != "http://origin" {
				t.Fatalf("self=%d id=%d: fallback %q, want the origin", self, id, rt.Fallback)
			}
		}
	}
}

// TestRouterWithoutParent: a flat peered cluster routes self-owned
// objects straight to the origin (the zero Route), remote objects to
// their owner.
func TestRouterWithoutParent(t *testing.T) {
	peers := []string{"http://e0", "http://e1"}
	ring, err := NewRing(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NodeConfig{Peers: peers, Self: 0, Origin: "http://origin"}
	_, route, err := cfg.Router()
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2000; id++ {
		rt := route(proxy.Meta{ID: id})
		if ring.Owner(id) == 0 {
			if rt != (proxy.Route{}) {
				t.Fatalf("id %d self-owned: route %+v, want zero Route (own origin)", id, rt)
			}
		} else if rt.URL != "http://e1" {
			t.Fatalf("id %d: routed to %q, want the owning peer", id, rt.URL)
		}
	}
}

// TestRouterPerObjectOrigin: an object with its own origin URL must
// keep that origin as the demotion target.
func TestRouterPerObjectOrigin(t *testing.T) {
	cfg := NodeConfig{
		Peers:  []string{"http://e0", "http://e1"},
		Self:   0,
		Origin: "http://origin",
	}
	_, route, err := cfg.Router()
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find a remote-owned id so the route carries a fallback at all.
	id := 0
	for ; ring.Owner(id) == 0; id++ {
	}
	rt := route(proxy.Meta{ID: id, Origin: "http://special"})
	if rt.Fallback != "http://special" {
		t.Errorf("fallback %q, want the object's own origin", rt.Fallback)
	}
}

package cluster

import "testing"

func TestNilTopologyStaticPreference(t *testing.T) {
	var topo *Topology
	if got := topo.Select(0, 1, true); got != HopPeer {
		t.Errorf("remote owner with parent: %v, want peer", got)
	}
	if got := topo.Select(0, 1, false); got != HopPeer {
		t.Errorf("remote owner without parent: %v, want peer", got)
	}
	if got := topo.Select(0, 0, true); got != HopParent {
		t.Errorf("local owner with parent: %v, want parent", got)
	}
	if got := topo.Select(0, 0, false); got != HopOrigin {
		t.Errorf("local owner without parent: %v, want origin", got)
	}
	if topo.HopBps(0, 1, HopPeer) != 0 {
		t.Error("nil topology must price hops as unconstrained")
	}
}

func TestTopologySelectsCheapestHop(t *testing.T) {
	// Fast peers, mid parent, slow origin: the usual deployment.
	topo := NewUniformTopology(3, 0.001, 100e6, 0.01, 20e6, 0.1, 1e6)
	if got := topo.Select(0, 2, true); got != HopPeer {
		t.Errorf("fast peer available: %v, want peer", got)
	}
	if got := topo.Select(0, 0, true); got != HopParent {
		t.Errorf("self-owned object: %v, want parent (peer hop not a candidate)", got)
	}

	// Constrained peer link: a peer behind a thin pipe must lose to a
	// fat origin path — topology-aware selection, not static preference.
	slowPeer := NewUniformTopology(3, 0.001, 10e3, 0, 0, 0.001, 100e6)
	if got := slowPeer.Select(0, 2, false); got != HopOrigin {
		t.Errorf("thin peer pipe vs fat origin: %v, want origin", got)
	}

	// Exact cost ties break toward the innermost tier: peer < parent <
	// origin.
	tie := NewUniformTopology(3, 0.01, 1e6, 0.01, 1e6, 0.01, 1e6)
	if got := tie.Select(0, 1, true); got != HopPeer {
		t.Errorf("tie: %v, want peer", got)
	}
	if got := tie.Select(0, 0, true); got != HopParent {
		t.Errorf("tie, self-owned: %v, want parent", got)
	}
}

func TestTopologyHopBps(t *testing.T) {
	topo := NewUniformTopology(2, 0.001, 100e6, 0.01, 20e6, 0.1, 1e6)
	if got := topo.HopBps(0, 1, HopPeer); got != 100e6 {
		t.Errorf("peer bps = %v, want 100e6", got)
	}
	if got := topo.HopBps(0, 1, HopParent); got != 20e6 {
		t.Errorf("parent bps = %v, want 20e6", got)
	}
	if got := topo.HopBps(0, 1, HopOrigin); got != 1e6 {
		t.Errorf("origin bps = %v, want 1e6", got)
	}
	// Sparse topologies degrade to "unconstrained", never panic.
	sparse := &Topology{}
	if got := sparse.HopBps(5, 9, HopPeer); got != 0 {
		t.Errorf("sparse peer bps = %v, want 0", got)
	}
	if got := sparse.Select(5, 9, true); got != HopPeer {
		t.Errorf("sparse select = %v, want peer (all links free, innermost tier wins)", got)
	}
}

func TestHopString(t *testing.T) {
	for hop, want := range map[Hop]string{HopPeer: "peer", HopParent: "parent", HopOrigin: "origin"} {
		if got := hop.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(hop), got, want)
		}
	}
}

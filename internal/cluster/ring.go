// Package cluster generalizes the single-proxy architecture of the
// paper into a multi-node cache hierarchy: a consistent-hash ring
// assigns each object an owning node, a topology matrix prices the
// links between nodes (and up to the parent tier and origin), and a
// per-node router turns both into the proxy's peer-aware fetch path —
// edge miss -> owning peer -> parent tier -> origin, each hop reusing
// the relay coalescer so a herd at N edges still costs one transfer
// over the constrained origin path.
//
// Placement is a pure function of (node count, virtual-node count,
// object ID): the simulator's hierarchy model and the live tier share
// the same Ring, so sim and live agree on ownership byte-for-byte.
package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadCluster reports an invalid cluster construction.
var ErrBadCluster = errors.New("cluster: invalid configuration")

// DefaultVirtualNodes is the ring granularity used when a config leaves
// VirtualNodes zero: enough points that ownership splits within a few
// percent of evenly at small node counts, few enough that building a
// ring stays trivially cheap.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over node indices [0, Nodes()). Each
// node contributes VirtualNodes points whose positions depend only on
// the node index, so adding or removing a node moves only the keys
// that land on the new (or vanished) node's points — roughly 1/N of
// them — and never reshuffles keys between surviving nodes.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	nodes  int
	points []ringPoint // sorted by hash, ties broken by node index
}

type ringPoint struct {
	hash uint64
	node int32
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer, so
// dense node indices and object IDs spread uniformly around the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// pointHash positions virtual point v of node n. It must not depend on
// the ring's node count: that independence is the consistent-hashing
// property (node churn only moves keys touching the changed node).
func pointHash(n, v int) uint64 {
	return mix64(uint64(n)<<32 | uint64(v)&0xFFFFFFFF)
}

// keyHash positions object id on the ring.
func keyHash(id int) uint64 {
	return mix64(uint64(id) * 0x9E3779B97F4A7C15)
}

// NewRing builds a ring over the given number of nodes with virtual
// points per node (0 means DefaultVirtualNodes).
func NewRing(nodes, virtual int) (*Ring, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("%w: ring over %d nodes", ErrBadCluster, nodes)
	}
	if virtual == 0 {
		virtual = DefaultVirtualNodes
	}
	if virtual < 0 {
		return nil, fmt.Errorf("%w: %d virtual nodes", ErrBadCluster, virtual)
	}
	r := &Ring{
		nodes:  nodes,
		points: make([]ringPoint, 0, nodes*virtual),
	}
	for n := 0; n < nodes; n++ {
		for v := 0; v < virtual; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, v), node: int32(n)})
		}
	}
	// The node-index tiebreak makes ownership deterministic even in the
	// (astronomically unlikely) event of a point-hash collision.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the ring's node count.
func (r *Ring) Nodes() int { return r.nodes }

// Owner returns the node index owning object id: the node of the first
// ring point at or clockwise of the object's hash.
func (r *Ring) Owner(id int) int {
	h := keyHash(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return int(r.points[i].node)
}

package cluster

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"streamcache/internal/core"
	"streamcache/internal/proxy"
)

// testCatalog builds a small catalog of known objects.
func testCatalog(t *testing.T, objects int, meanKB int64) *proxy.Catalog {
	t.Helper()
	c, err := proxy.BuildCatalog(objects, meanKB, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// remoteOwnedID returns an object id that edge `self` does not own on
// a ring of the given size, so fetching it from `self` exercises the
// peer hop.
func remoteOwnedID(t *testing.T, nodes, self, limit int) int {
	t.Helper()
	ring, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < limit; id++ {
		if ring.Owner(id) != self {
			return id
		}
	}
	t.Fatalf("no remote-owned object among %d ids", limit)
	return -1
}

// TestClusterHerdSingleOriginTransfer pins the acceptance criterion of
// the cross-node coalescer: a herd of clients at every edge, all cold
// on one object, costs exactly one transfer over the constrained
// origin path. Each edge coalesces its local herd, the edges coalesce
// at the consistent-hash owner, the owner coalesces at the parent, and
// the parent opens the only origin connection.
func TestClusterHerdSingleOriginTransfer(t *testing.T) {
	catalog := testCatalog(t, 8, 64)
	const id = 0
	meta, _ := catalog.Get(id)

	tc, err := NewTestCluster(TestClusterConfig{
		Edges:            3,
		WithParent:       true,
		Catalog:          catalog,
		EdgeCacheBytes:   12 * meta.Size,
		ParentCacheBytes: 4 * meta.Size,
		NewPolicy:        core.NewLRU,
		// The origin path is the bottleneck: one transfer takes about a
		// second, so the whole herd lands inside the relay window.
		OriginRate: float64(meta.Size),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	const clientsPerEdge = 3
	var wg sync.WaitGroup
	errs := make([]error, 3*clientsPerEdge)
	for c := 0; c < len(errs); c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = tc.FetchVerified(c%3, id)
		}(c)
	}
	wg.Wait()
	tc.Quiesce()

	for c, err := range errs {
		if err != nil {
			t.Errorf("herd client %d: %v", c, err)
		}
	}
	if got := tc.OriginRequests(); got != 1 {
		t.Errorf("origin saw %d requests, want exactly 1 for the whole herd", got)
	}
	if got := tc.OriginBytes(); got != meta.Size {
		t.Errorf("origin served %d bytes, want exactly one copy (%d)", got, meta.Size)
	}
	for i := 0; i < tc.Edges(); i++ {
		if n := tc.Edge(i).InflightRelays(); n != 0 {
			t.Errorf("edge %d: %d relays still in flight after quiesce", i, n)
		}
	}
	if n := tc.Parent().InflightRelays(); n != 0 {
		t.Errorf("parent: %d relays still in flight after quiesce", n)
	}
}

// TestClusterParentDeathMidRelay scripts the ugliest failure: the
// parent dies while a herd's only origin transfer is streaming through
// it. Every edge must truncate cleanly — store bytes equal to
// accounting, no leaked relays — and the next request must recover by
// demoting the fetch to the origin.
func TestClusterParentDeathMidRelay(t *testing.T) {
	catalog := testCatalog(t, 8, 64)
	const id = 0
	meta, _ := catalog.Get(id)

	tc, err := NewTestCluster(TestClusterConfig{
		Edges:            2,
		WithParent:       true,
		Catalog:          catalog,
		EdgeCacheBytes:   8 * meta.Size,
		ParentCacheBytes: 4 * meta.Size,
		NewPolicy:        core.NewLRU,
		OriginRate:       float64(meta.Size), // ~1s transfer: a wide kill window
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	var wg sync.WaitGroup
	herdErrs := make([]error, 4)
	for c := range herdErrs {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, herdErrs[c] = tc.FetchVerified(c%2, id)
		}(c)
	}

	// Wait until the transfer is demonstrably mid-relay at every edge —
	// each edge's store is materializing bytes that came through the
	// parent — then kill the parent under it. (Killing earlier is a
	// different, easier case: a death before the first byte demotes to
	// the fallback inside openUpstream and the herd never notices.)
	deadline := time.Now().Add(5 * time.Second)
	for tc.Edge(0).StoredBytes(id) == 0 || tc.Edge(1).StoredBytes(id) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("relayed transfer never started streaming at both edges")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Let every herd client attach to its edge's in-flight relay; the
	// paced transfer has hundreds of milliseconds left.
	time.Sleep(50 * time.Millisecond)
	tc.KillParent()
	wg.Wait()
	tc.Quiesce()

	// The herd saw a truncated stream — every client must have gotten a
	// clean error, not a hang or a corrupt full-length body.
	for c, err := range herdErrs {
		if err == nil {
			t.Errorf("herd client %d: fetch completed although the parent died mid-relay", c)
		}
	}
	// No leaks: stores reconcile to accounting, relay tables drain.
	for i := 0; i < tc.Edges(); i++ {
		e := tc.Edge(i)
		if s, a := e.StoredBytes(id), e.AccountedBytes(id); s != a {
			t.Errorf("edge %d: stored %d bytes but accounted %d after truncation", i, s, a)
		}
		if n := e.InflightRelays(); n != 0 {
			t.Errorf("edge %d: %d relays leaked", i, n)
		}
	}

	// Recovery: the dead parent demotes the fetch to the origin before
	// the first byte, so fresh requests complete verified.
	for i := 0; i < tc.Edges(); i++ {
		if _, err := tc.FetchVerified(i, id); err != nil {
			t.Errorf("recovery fetch from edge %d: %v", i, err)
		}
	}
	tc.Quiesce()
	if got := tc.OriginRequests(); got < 2 {
		t.Errorf("origin saw %d requests, want the recovery transfer on top of the aborted one", got)
	}
}

// TestClusterPeerTimeoutFallsBackToOrigin scripts a wedged peer: the
// owner accepts the connection but never produces headers. The
// header-timeout demotion must fall back to the origin with exactly
// one extra fetch — no retry storm — and the response must still
// verify.
func TestClusterPeerTimeoutFallsBackToOrigin(t *testing.T) {
	catalog := testCatalog(t, 16, 32)
	tc, err := NewTestCluster(TestClusterConfig{
		Edges:             2,
		Catalog:           catalog,
		EdgeCacheBytes:    1 << 22,
		NewPolicy:         core.NewLRU,
		PeerHeaderTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	id := remoteOwnedID(t, 2, 0, catalog.Len())
	meta, _ := catalog.Get(id)

	// The owner hangs until the request is abandoned.
	tc.ReplaceEdgeHandler(1, http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		<-req.Context().Done()
	}))

	before := tc.OriginRequests()
	start := time.Now()
	if _, err := tc.FetchVerified(0, id); err != nil {
		t.Fatalf("fetch through wedged peer: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Errorf("fetch took %v, before the header timeout could have fired", elapsed)
	}
	tc.Quiesce()
	if got := tc.OriginRequests() - before; got != 1 {
		t.Errorf("fallback cost %d origin fetches, want exactly 1", got)
	}
	st := tc.Edge(0).Snapshot()
	if st.TierBytes["peer"] != 0 {
		t.Errorf("edge 0 accounted %d peer bytes from a peer that never answered", st.TierBytes["peer"])
	}
	if st.TierBytes["origin"] != meta.Size {
		t.Errorf("edge 0 accounted %d origin bytes, want %d", st.TierBytes["origin"], meta.Size)
	}
	tc.RestoreEdge(1)
}

// TestClusterDeadPeerFallsBackToOrigin is the crashed-peer variant: a
// connection refused demotes immediately (no timeout needed) and costs
// exactly one origin fetch.
func TestClusterDeadPeerFallsBackToOrigin(t *testing.T) {
	catalog := testCatalog(t, 16, 32)
	tc, err := NewTestCluster(TestClusterConfig{
		Edges:          2,
		Catalog:        catalog,
		EdgeCacheBytes: 1 << 22,
		NewPolicy:      core.NewLRU,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	id := remoteOwnedID(t, 2, 0, catalog.Len())
	tc.KillEdge(1)

	before := tc.OriginRequests()
	if _, err := tc.FetchVerified(0, id); err != nil {
		t.Fatalf("fetch past dead peer: %v", err)
	}
	tc.Quiesce()
	if got := tc.OriginRequests() - before; got != 1 {
		t.Errorf("fallback cost %d origin fetches, want exactly 1", got)
	}
}

// TestClusterInvariantStress extends the sharded-proxy stress test
// across a 3-edge + parent cluster: a mixed hot/cold herd with ranged
// peer resumes, eviction pressure and relay truncation races, then the
// post-quiesce invariant on every node — the materialized store and
// the cache accounting must agree byte for byte, and no relay may
// leak. Run under -race this is the cluster's locking regression test.
func TestClusterInvariantStress(t *testing.T) {
	const objects = 40
	catalog := testCatalog(t, objects, 16)
	var total int64
	for id := 0; id < objects; id++ {
		meta, _ := catalog.Get(id)
		total += meta.Size
	}
	tc, err := NewTestCluster(TestClusterConfig{
		Edges:      3,
		WithParent: true,
		Catalog:    catalog,
		// Tight budgets force eviction churn under the herd.
		EdgeCacheBytes:   total / 3,
		ParentCacheBytes: total / 4,
		NewPolicy:        core.NewLRU,
		Shards:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	const (
		workers          = 12
		fetchesPerWorker = 25
	)
	var wg sync.WaitGroup
	errCh := make(chan error, workers*fetchesPerWorker)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < fetchesPerWorker; k++ {
				// Alternate a hot set (coalescing herds) with a cold
				// tail (eviction churn), deterministically per worker.
				id := (g*31 + k*17) % objects
				if k%2 == 0 {
					id %= 8
				}
				if _, err := tc.FetchVerified((g+k)%3, id); err != nil {
					errCh <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	tc.Quiesce()
	nodes := map[string]*proxy.Proxy{"edge0": tc.Edge(0), "edge1": tc.Edge(1), "edge2": tc.Edge(2), "parent": tc.Parent()}
	for name, node := range nodes {
		for id := 0; id < objects; id++ {
			if s, a := node.StoredBytes(id), node.AccountedBytes(id); s != a {
				t.Errorf("%s object %d: stored %d bytes, accounted %d", name, id, s, a)
			}
		}
		if n := node.InflightRelays(); n != 0 {
			t.Errorf("%s: %d relays still in flight after quiesce", name, n)
		}
	}
}

// TestClusterSmoke is the cluster-check gate: a 3-edge + parent
// cluster under a skewed sequential workload must serve every object
// verified, push a nonzero share of bytes through the peer tier, and
// drain cleanly.
func TestClusterSmoke(t *testing.T) {
	const objects = 24
	catalog := testCatalog(t, objects, 32)
	tc, err := NewTestCluster(TestClusterConfig{
		Edges:            3,
		WithParent:       true,
		Catalog:          catalog,
		EdgeCacheBytes:   3 << 21,
		ParentCacheBytes: 1 << 21,
		NewPolicy:        core.NewLRU,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	var watched, originBefore int64
	originBefore = tc.OriginBytes()
	for k := 0; k < 96; k++ {
		id := (k * k) % objects // skewed repeats: hot ids recur across edges
		meta, _ := catalog.Get(id)
		if _, err := tc.FetchVerified(k%3, id); err != nil {
			t.Fatalf("request %d (object %d): %v", k, id, err)
		}
		watched += meta.Size
	}
	tc.Quiesce()

	var peerBytes int64
	for i := 0; i < tc.Edges(); i++ {
		st := tc.Edge(i).Snapshot()
		peerBytes += st.TierBytes["peer"]
		if st.Tier != "edge" {
			t.Errorf("edge %d reports tier %q", i, st.Tier)
		}
	}
	if peerBytes == 0 {
		t.Error("no bytes traveled the peer tier under a skewed cross-edge workload")
	}
	if tc.Parent().Snapshot().Tier != "parent" {
		t.Error("parent node does not report its tier")
	}
	if saved := watched - (tc.OriginBytes() - originBefore); saved <= 0 {
		t.Errorf("cluster saved %d bytes over the origin path, want > 0", saved)
	}
	for i := 0; i < tc.Edges(); i++ {
		if n := tc.Edge(i).InflightRelays(); n != 0 {
			t.Errorf("edge %d: %d relays still in flight after quiesce", i, n)
		}
	}
}

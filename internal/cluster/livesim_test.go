// Cross-validation of the live cluster against the simulator: the sim
// predicts, the cluster measures, and the two must agree. This file is
// an external test package because it imports internal/sim, which
// itself imports internal/cluster for ring placement.
package cluster_test

import (
	"math"
	"testing"

	"streamcache/internal/cluster"
	"streamcache/internal/core"
	"streamcache/internal/proxy"
	"streamcache/internal/sim"
	"streamcache/internal/workload"
)

// liveWorkloadConfig is the shared trace both sides replay: small
// objects (16 B/s CBR) so a few hundred live HTTP fetches stay cheap,
// but the same Zipf popularity and lognormal durations as Table 1.
func liveWorkloadConfig() workload.Config {
	return workload.Config{
		NumObjects:    60,
		NumRequests:   400,
		BytesPerFrame: 16,
		FramesPerSec:  1,
	}
}

// generateLiveTrace replays what sim.Run's run 0 will generate: the
// engine derives run r's workload seed as SplitSeed(Seed, r), so the
// live side must generate from the same derived seed to see the same
// trace.
func generateLiveTrace(t *testing.T, baseSeed int64) (*workload.Workload, *proxy.Catalog) {
	t.Helper()
	gen := liveWorkloadConfig()
	gen.Seed = sim.SplitSeed(baseSeed, 0)
	wl, err := workload.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	metas := make([]proxy.Meta, len(wl.Objects))
	for i, o := range wl.Objects {
		metas[i] = proxy.Meta{ID: o.ID, Size: o.Size, Rate: o.Rate, Duration: o.Duration, Value: o.Value}
	}
	cat, err := proxy.NewCatalog(metas)
	if err != nil {
		t.Fatal(err)
	}
	return wl, cat
}

// TestClusterHitRatioMatchesSimulator is the sim-vs-live contract:
//
//   - A 1-node live cluster replaying the simulator's exact trace must
//     reproduce sim.Run's traffic reduction ratio EXACTLY (float
//     equality, no tolerance). Under LRU the policy ignores bandwidth,
//     so every cache decision is a pure function of the access
//     sequence — any drift means the proxy's serve path and the
//     simulator's cache model have diverged.
//   - A 2-tier, 2-edge peered cluster must land within 10% of
//     sim.RunHierarchy: the hierarchy model approximates ranged-relay
//     gap handling, so the bound is a tolerance, not equality.
func TestClusterHitRatioMatchesSimulator(t *testing.T) {
	const baseSeed = 7
	wl, cat := generateLiveTrace(t, baseSeed)
	cacheBytes := wl.TotalUniqueBytes() / 4
	warm := int(0.5 * float64(len(wl.Requests)))

	t.Run("flat-1node-exact", func(t *testing.T) {
		predicted, err := sim.Run(sim.Config{
			Workload:   liveWorkloadConfig(),
			CacheBytes: cacheBytes,
			Policy:     core.NewLRU(),
			Runs:       1,
			Seed:       baseSeed,
		})
		if err != nil {
			t.Fatal(err)
		}

		tc, err := cluster.NewTestCluster(cluster.TestClusterConfig{
			Edges:          1,
			Catalog:        cat,
			EdgeCacheBytes: cacheBytes,
			NewPolicy:      core.NewLRU,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tc.Close()

		// Sequential replay with a quiesce per request: each access must
		// observe the fully reconciled store state the simulator's
		// synchronous cache model assumes. The accumulation mirrors
		// sim.runOnce operation for operation (same float64 conversions,
		// same order) so equal inputs produce bitwise-equal ratios.
		var cacheSum, totalSum float64
		var hits, measured int
		for i := range wl.Requests {
			req := &wl.Requests[i]
			obj := &wl.Objects[req.ObjectID]
			res, err := tc.FetchVerified(0, req.ObjectID)
			if err != nil {
				t.Fatalf("request %d (object %d): %v", i, req.ObjectID, err)
			}
			tc.Quiesce()
			if i < warm {
				continue
			}
			measured++
			watched := obj.Size
			served := res.HitBytes()
			if served > watched {
				served = watched
			}
			cacheSum += float64(served)
			totalSum += float64(watched)
			if res.HitBytes() > 0 {
				hits++
			}
		}
		if measured != predicted.Requests {
			t.Fatalf("live measured %d requests, sim measured %d", measured, predicted.Requests)
		}
		liveTRR := cacheSum / totalSum
		if liveTRR != predicted.TrafficReductionRatio {
			t.Errorf("live TRR %v != sim TRR %v (must be exact: same trace, same LRU decisions)",
				liveTRR, predicted.TrafficReductionRatio)
		}
		liveHit := float64(hits) / float64(measured)
		if liveHit != predicted.HitRatio {
			t.Errorf("live hit ratio %v != sim hit ratio %v", liveHit, predicted.HitRatio)
		}
		if liveTRR <= 0 || liveTRR >= 1 {
			t.Errorf("degenerate live TRR %v: the trace exercises neither hits nor misses", liveTRR)
		}
	})

	t.Run("hierarchy-2tier-tolerance", func(t *testing.T) {
		const parentFraction = 0.5
		want, err := sim.RunHierarchy(sim.HierarchyConfig{
			Config: sim.Config{
				Workload:   liveWorkloadConfig(),
				CacheBytes: cacheBytes,
				Policy:     core.NewLRU(),
				Runs:       1,
				Seed:       baseSeed,
			},
			Edges:          2,
			Levels:         2,
			ParentFraction: parentFraction,
			Peering:        sim.PeeringOwner,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want.TrafficReductionRatio <= 0 {
			t.Fatalf("sim predicts TRR %v; the tolerance check needs a nonzero baseline", want.TrafficReductionRatio)
		}

		// Identical capacity split to hierarchyRunOnce: the parent takes
		// its fraction off the top, the edges split the rest.
		parentBytes := int64(parentFraction * float64(cacheBytes))
		tc, err := cluster.NewTestCluster(cluster.TestClusterConfig{
			Edges:            2,
			WithParent:       true,
			Catalog:          cat,
			EdgeCacheBytes:   cacheBytes - parentBytes,
			ParentCacheBytes: parentBytes,
			NewPolicy:        core.NewLRU,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer tc.Close()

		// Request i goes to edge i%2 — the simulator's assignment and
		// cmd/loadgen's round-robin. The live TRR is measured where the
		// paper measures it: bytes crossing the origin link during the
		// measurement phase versus bytes clients watched.
		var originStart, totB int64
		for i := range wl.Requests {
			req := &wl.Requests[i]
			if i == warm {
				originStart = tc.OriginBytes() // prior request already quiesced
			}
			if _, err := tc.FetchVerified(i%2, req.ObjectID); err != nil {
				t.Fatalf("request %d (object %d, edge %d): %v", i, req.ObjectID, i%2, err)
			}
			tc.Quiesce()
			if i >= warm {
				totB += wl.Objects[req.ObjectID].Size
			}
		}
		originDelta := tc.OriginBytes() - originStart
		liveTRR := 1 - float64(originDelta)/float64(totB)
		rel := math.Abs(liveTRR-want.TrafficReductionRatio) / want.TrafficReductionRatio
		if rel > 0.10 {
			t.Errorf("live 2-tier TRR %v vs sim %v: relative difference %.3f exceeds 10%%",
				liveTRR, want.TrafficReductionRatio, rel)
		}
	})
}

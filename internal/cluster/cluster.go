package cluster

import (
	"fmt"
	"time"

	"streamcache/internal/proxy"
)

// NodeConfig describes one node's place in a cluster and compiles into
// the proxy's routing seam.
type NodeConfig struct {
	// Peers lists every edge node's base URL in ring order, self
	// included. Every node of the cluster must be configured with the
	// identical list: placement is positional (index on the ring), so a
	// reordered list silently splits ownership. Empty means no peering
	// tier (requires Parent or pure edge->origin).
	Peers []string
	// Self is this node's index in Peers (ignored when Peers is empty).
	Self int
	// Parent is the parent tier's base URL; empty means no parent.
	Parent string
	// Origin is the default origin base URL — the fallback target when
	// a peer or parent hop fails (must match the proxy's OriginURL).
	Origin string
	// VirtualNodes is the ring granularity; 0 means
	// DefaultVirtualNodes.
	VirtualNodes int
	// Topology prices the hops; nil means the static preference
	// peer < parent < origin.
	Topology *Topology
	// PeerHeaderTimeout bounds how long a peer or parent may take to
	// produce response headers before the fetch is demoted to the
	// origin. Zero means no bound.
	PeerHeaderTimeout time.Duration
}

// Router compiles the node config into the proxy's cluster seam: the
// fixed upstream set (peers and parent, with tier labels) and the
// per-object route function. The route for an object this node does
// not own is its ring owner's URL (or the parent, or the origin —
// whatever the topology prices cheapest); the fallback is always the
// object's true origin, so a dead peer or parent demotes the fetch
// rather than failing it.
func (cfg NodeConfig) Router() ([]proxy.Upstream, func(proxy.Meta) proxy.Route, error) {
	if cfg.Origin == "" {
		return nil, nil, fmt.Errorf("%w: empty origin URL", ErrBadCluster)
	}
	if len(cfg.Peers) == 0 && cfg.Parent == "" {
		return nil, nil, fmt.Errorf("%w: no peers and no parent (nothing to route to)", ErrBadCluster)
	}
	var ring *Ring
	if len(cfg.Peers) > 0 {
		if cfg.Self < 0 || cfg.Self >= len(cfg.Peers) {
			return nil, nil, fmt.Errorf("%w: self index %d outside peers[0,%d)", ErrBadCluster, cfg.Self, len(cfg.Peers))
		}
		var err error
		ring, err = NewRing(len(cfg.Peers), cfg.VirtualNodes)
		if err != nil {
			return nil, nil, err
		}
	}

	var ups []proxy.Upstream
	for i, u := range cfg.Peers {
		if u == "" {
			return nil, nil, fmt.Errorf("%w: empty peer URL at index %d", ErrBadCluster, i)
		}
		if i != cfg.Self {
			ups = append(ups, proxy.Upstream{URL: u, Tier: "peer"})
		}
	}
	if cfg.Parent != "" {
		ups = append(ups, proxy.Upstream{URL: cfg.Parent, Tier: "parent"})
	}

	topo, self, hasParent := cfg.Topology, cfg.Self, cfg.Parent != ""
	route := func(meta proxy.Meta) proxy.Route {
		owner := self
		if ring != nil {
			owner = ring.Owner(meta.ID)
		}
		var url string
		switch topo.Select(self, owner, hasParent) {
		case HopPeer:
			url = cfg.Peers[owner]
		case HopParent:
			url = cfg.Parent
		default:
			return proxy.Route{} // the object's own origin; no demotion needed
		}
		fallback := meta.Origin
		if fallback == "" {
			fallback = cfg.Origin
		}
		return proxy.Route{URL: url, Fallback: fallback, HeaderTimeout: cfg.PeerHeaderTimeout}
	}
	return ups, route, nil
}

package cluster

// Hop identifies which upstream a node fetches a missed object from.
type Hop int

const (
	// HopOrigin fetches over the constrained origin path.
	HopOrigin Hop = iota
	// HopPeer forwards to the consistent-hash owner of the object.
	HopPeer
	// HopParent forwards to the parent tier.
	HopParent
)

func (h Hop) String() string {
	switch h {
	case HopPeer:
		return "peer"
	case HopParent:
		return "parent"
	default:
		return "origin"
	}
}

// refTransferBytes is the transfer size used to price a hop: latency
// alone would always pick the lowest-RTT link even when its bandwidth
// is a tenth of the alternative, and bandwidth alone ignores that a
// peer one switch away beats a parent across the continent for small
// objects. One megabyte is the scale of a prefix transfer here.
const refTransferBytes = 1 << 20

// Topology prices the links of a cluster: peer-to-peer RTT/bandwidth
// matrices indexed [from][to] over ring node indices, per-node links to
// the parent tier, and per-node links to the origin. RTTs are in
// seconds, bandwidths in bytes/sec; a bandwidth <= 0 means
// unconstrained (the hop costs only its RTT). A nil *Topology is valid
// and yields the default static preference peer < parent < origin.
type Topology struct {
	PeerRTT [][]float64
	PeerBps [][]float64

	ParentRTT []float64
	ParentBps []float64

	OriginRTT []float64
	OriginBps []float64
}

// NewUniformTopology builds a symmetric topology where every peer link,
// every parent link, and every origin link share one RTT/bandwidth
// each — the common case for local experiments and the hierarchy
// simulator, where tiers differ but nodes within a tier do not.
func NewUniformTopology(nodes int, peerRTT, peerBps, parentRTT, parentBps, originRTT, originBps float64) *Topology {
	t := &Topology{
		PeerRTT:   make([][]float64, nodes),
		PeerBps:   make([][]float64, nodes),
		ParentRTT: make([]float64, nodes),
		ParentBps: make([]float64, nodes),
		OriginRTT: make([]float64, nodes),
		OriginBps: make([]float64, nodes),
	}
	for i := 0; i < nodes; i++ {
		t.PeerRTT[i] = make([]float64, nodes)
		t.PeerBps[i] = make([]float64, nodes)
		for j := 0; j < nodes; j++ {
			t.PeerRTT[i][j] = peerRTT
			t.PeerBps[i][j] = peerBps
		}
		t.ParentRTT[i] = parentRTT
		t.ParentBps[i] = parentBps
		t.OriginRTT[i] = originRTT
		t.OriginBps[i] = originBps
	}
	return t
}

// hopCost is the estimated seconds to move refTransferBytes over a
// link: rtt + bytes/bandwidth, or rtt alone when unconstrained.
func hopCost(rtt, bps float64) float64 {
	if bps > 0 {
		return rtt + refTransferBytes/bps
	}
	return rtt
}

// matrixAt reads m[i][j] treating missing rows/columns as zero, so a
// partially filled Topology degrades to "free link" rather than
// panicking.
func matrixAt(m [][]float64, i, j int) float64 {
	if i < len(m) && j < len(m[i]) {
		return m[i][j]
	}
	return 0
}

func vectorAt(v []float64, i int) float64 {
	if i < len(v) {
		return v[i]
	}
	return 0
}

// Select picks the hop node `from` should fetch a missed object over,
// given that node `owner` owns it on the ring and whether a parent
// tier exists. The peer hop is only a candidate when the owner is a
// different node (forwarding to yourself is just a local miss). Costs
// are compared with a static tiebreak of peer < parent < origin, which
// is also the entire policy when the topology is nil: prefer the
// cheapest copy that is still inside the cluster.
func (t *Topology) Select(from, owner int, hasParent bool) Hop {
	if t == nil {
		if owner != from {
			return HopPeer
		}
		if hasParent {
			return HopParent
		}
		return HopOrigin
	}
	// Candidates are considered in ascending preference (origin, parent,
	// peer) and a tie goes to the later candidate, which realizes the
	// peer < parent < origin tiebreak.
	best := HopOrigin
	bestCost := hopCost(vectorAt(t.OriginRTT, from), vectorAt(t.OriginBps, from))
	if hasParent {
		if c := hopCost(vectorAt(t.ParentRTT, from), vectorAt(t.ParentBps, from)); c <= bestCost {
			best, bestCost = HopParent, c
		}
	}
	if owner != from {
		if c := hopCost(matrixAt(t.PeerRTT, from, owner), matrixAt(t.PeerBps, from, owner)); c <= bestCost {
			best, bestCost = HopPeer, c
		}
	}
	return best
}

// HopBps returns the bandwidth (bytes/sec) of the link node `from`
// would use for the given hop, 0 when unconstrained or unknown. The
// router feeds it to the proxy's utility estimator so per-tier utility
// prices the actually-constrained hop.
func (t *Topology) HopBps(from, owner int, hop Hop) float64 {
	if t == nil {
		return 0
	}
	switch hop {
	case HopPeer:
		return matrixAt(t.PeerBps, from, owner)
	case HopParent:
		return vectorAt(t.ParentBps, from)
	default:
		return vectorAt(t.OriginBps, from)
	}
}

package cluster

import "testing"

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewRing(-1, 0); err == nil {
		t.Error("negative nodes accepted")
	}
	if _, err := NewRing(3, -1); err == nil {
		t.Error("negative virtual nodes accepted")
	}
	r, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.points) != 3*DefaultVirtualNodes {
		t.Errorf("default ring has %d points, want %d", len(r.points), 3*DefaultVirtualNodes)
	}
}

// TestRingDeterministic: placement is a pure function of (node count,
// virtual count, id) — two independently built rings agree on every
// owner, which is what lets separate proxyd processes (and the
// simulator) share ownership without coordination.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 20000; id++ {
		oa, ob := a.Owner(id), b.Owner(id)
		if oa != ob {
			t.Fatalf("id %d: owners %d vs %d across identical rings", id, oa, ob)
		}
		if oa < 0 || oa >= 5 {
			t.Fatalf("id %d: owner %d outside [0,5)", id, oa)
		}
	}
}

// TestRingGoldenPlacement pins concrete owner assignments so placement
// survives refactors and process restarts byte-for-byte: a silent
// change here would strand every object cached under the old mapping.
func TestRingGoldenPlacement(t *testing.T) {
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	golden := map[int]int{
		0: 0, 1: 2, 2: 0, 3: 2, 4: 0,
		5: 1, 100: 1, 1000: 1, 123456: 2,
	}
	for id, want := range golden {
		if got := r.Owner(id); got != want {
			t.Errorf("Owner(%d) = %d, want %d (placement changed!)", id, got, want)
		}
	}
}

// TestRingChurn is the consistent-hashing contract: growing N nodes to
// N+1 moves roughly 1/(N+1) of the keys, and every key that moves lands
// on the new node — no key ever reshuffles between surviving nodes.
func TestRingChurn(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 4, 8} {
		small, err := NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		big, err := NewRing(n+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for id := 0; id < keys; id++ {
			before, after := small.Owner(id), big.Owner(id)
			if before == after {
				continue
			}
			moved++
			if after != n {
				t.Fatalf("n=%d: id %d moved from node %d to surviving node %d, want only moves to the new node %d",
					n, id, before, after, n)
			}
		}
		frac := float64(moved) / keys
		ideal := 1 / float64(n+1)
		if frac < ideal/2 || frac > ideal*2 {
			t.Errorf("n=%d->%d: moved fraction %.4f, want ~%.4f (within 2x)", n, n+1, frac, ideal)
		}
	}
}

// TestRingBalance: with the default virtual-node count no node owns a
// wildly disproportionate key share.
func TestRingBalance(t *testing.T) {
	const keys = 20000
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for id := 0; id < keys; id++ {
		counts[r.Owner(id)]++
	}
	for n, c := range counts {
		share := float64(c) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %d owns %.1f%% of keys, want roughly balanced (10%%-45%%)", n, share*100)
		}
	}
}

package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"time"

	"streamcache/internal/core"
	"streamcache/internal/proxy"
)

// TestClusterConfig parameterizes an in-process cluster built with
// NewTestCluster.
type TestClusterConfig struct {
	// Edges is the number of edge nodes (required, > 0).
	Edges int
	// WithParent inserts a parent-tier proxy between the edges and the
	// origin.
	WithParent bool
	// Catalog is the shared object directory (required).
	Catalog *proxy.Catalog
	// EdgeCacheBytes is the total edge-tier capacity, split evenly
	// across edges via core.SplitCapacity.
	EdgeCacheBytes int64
	// ParentCacheBytes is the parent proxy's capacity (ignored without
	// WithParent).
	ParentCacheBytes int64
	// NewPolicy builds each cache's eviction policy (required).
	NewPolicy func() core.Policy
	// CacheOptions are applied to every cache.
	CacheOptions []core.Option
	// Shards is the per-node shard count (0 = 1).
	Shards int
	// OriginHandler overrides the origin (e.g. a gated or flaky origin
	// for fault tests); nil serves the catalog via proxy.NewOrigin at
	// OriginRate bytes/s.
	OriginHandler http.Handler
	// OriginRate limits the default origin's path (0 = unlimited).
	OriginRate float64
	// Topology prices the hops; nil = static peer < parent < origin.
	Topology *Topology
	// VirtualNodes is the ring granularity (0 = DefaultVirtualNodes).
	VirtualNodes int
	// PeerHeaderTimeout bounds peer/parent header latency before a
	// fetch demotes to the origin.
	PeerHeaderTimeout time.Duration
	// Now injects the nodes' clock (policy aging, throughput timing);
	// nil means time.Now. A frozen clock makes policy state
	// wall-clock-independent across runs.
	Now func() time.Time
}

// TestCluster is a deterministic in-process cluster: one counting
// origin, an optional parent proxy, and N edge proxies wired through
// consistent-hash routing — every node a real HTTP server, so the
// peer fetch path is exercised end to end. Peer and parent handlers
// sit behind swappable delegates for scripted failure injection.
type TestCluster struct {
	cfg TestClusterConfig

	originSrv  *httptest.Server
	originReqs atomic.Int64
	originByts atomic.Int64

	parent    *proxy.Proxy
	parentSrv *httptest.Server
	parentSwp *swapHandler

	edges    []*proxy.Proxy
	edgeSrvs []*httptest.Server
	edgeSwps []*swapHandler
}

// swapHandler delegates to an atomically replaceable handler: the
// cluster can stand up listeners (whose URLs the proxies need at
// construction) before the proxies behind them exist, and tests can
// script failures by swapping a node's handler mid-run.
type swapHandler struct {
	h atomic.Pointer[http.Handler]
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if h := s.h.Load(); h != nil {
		(*h).ServeHTTP(w, req)
		return
	}
	http.Error(w, "cluster: node not wired yet", http.StatusServiceUnavailable)
}

func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }

// countingWriter tallies origin response bytes (headers excluded).
type countingWriter struct {
	http.ResponseWriter
	n *atomic.Int64
}

func (c countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (c countingWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// NewTestCluster builds and wires the cluster. Callers own Close.
func NewTestCluster(cfg TestClusterConfig) (*TestCluster, error) {
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("%w: %d edges", ErrBadCluster, cfg.Edges)
	}
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("%w: nil catalog", ErrBadCluster)
	}
	tc := &TestCluster{cfg: cfg}

	originInner := cfg.OriginHandler
	if originInner == nil {
		og, err := proxy.NewOrigin(cfg.Catalog, cfg.OriginRate)
		if err != nil {
			return nil, err
		}
		originInner = og
	}
	tc.originSrv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		tc.originReqs.Add(1)
		originInner.ServeHTTP(countingWriter{w, &tc.originByts}, req)
	}))

	// Listeners first (the proxies need each other's URLs), proxies
	// second, handlers wired last.
	if cfg.WithParent {
		tc.parentSwp = &swapHandler{}
		tc.parentSrv = httptest.NewServer(tc.parentSwp)
	}
	tc.edgeSwps = make([]*swapHandler, cfg.Edges)
	tc.edgeSrvs = make([]*httptest.Server, cfg.Edges)
	peerURLs := make([]string, cfg.Edges)
	for i := range tc.edgeSwps {
		tc.edgeSwps[i] = &swapHandler{}
		tc.edgeSrvs[i] = httptest.NewServer(tc.edgeSwps[i])
		peerURLs[i] = tc.edgeSrvs[i].URL
	}

	if cfg.WithParent {
		p, err := proxy.New(proxy.Config{
			Catalog:      cfg.Catalog,
			OriginURL:    tc.originSrv.URL,
			Shards:       cfg.Shards,
			CacheBytes:   cfg.ParentCacheBytes,
			NewPolicy:    cfg.NewPolicy,
			CacheOptions: cfg.CacheOptions,
			Now:          cfg.Now,
			Tier:         "parent",
		})
		if err != nil {
			tc.Close()
			return nil, err
		}
		tc.parent = p
		tc.parentSwp.set(p)
	}

	edgeCaps := core.SplitCapacity(cfg.EdgeCacheBytes, cfg.Edges)
	if edgeCaps == nil {
		tc.Close()
		return nil, fmt.Errorf("%w: edge cache bytes %d", ErrBadCluster, cfg.EdgeCacheBytes)
	}
	tc.edges = make([]*proxy.Proxy, cfg.Edges)
	for i := range tc.edges {
		node := NodeConfig{
			Self:              i,
			Origin:            tc.originSrv.URL,
			VirtualNodes:      cfg.VirtualNodes,
			Topology:          cfg.Topology,
			PeerHeaderTimeout: cfg.PeerHeaderTimeout,
		}
		if cfg.Edges > 1 {
			node.Peers = peerURLs
		}
		if cfg.WithParent {
			node.Parent = tc.parentSrv.URL
		}
		pcfg := proxy.Config{
			Catalog:      cfg.Catalog,
			OriginURL:    tc.originSrv.URL,
			Shards:       cfg.Shards,
			CacheBytes:   edgeCaps[i],
			NewPolicy:    cfg.NewPolicy,
			CacheOptions: cfg.CacheOptions,
			Now:          cfg.Now,
			Tier:         "edge",
		}
		if len(node.Peers) > 0 || node.Parent != "" {
			ups, route, err := node.Router()
			if err != nil {
				tc.Close()
				return nil, err
			}
			pcfg.Upstreams = ups
			pcfg.Router = route
		}
		p, err := proxy.New(pcfg)
		if err != nil {
			tc.Close()
			return nil, err
		}
		tc.edges[i] = p
		tc.edgeSwps[i].set(p)
	}
	return tc, nil
}

// Close shuts every listener down. It does not drain: call Quiesce
// first when the test needs post-run invariants.
func (tc *TestCluster) Close() {
	for _, s := range tc.edgeSrvs {
		if s != nil {
			s.Close()
		}
	}
	if tc.parentSrv != nil {
		tc.parentSrv.Close()
	}
	if tc.originSrv != nil {
		tc.originSrv.Close()
	}
}

// Quiesce waits for every node's in-flight requests and relays,
// draining edges before the parent (an edge relay can hold a parent
// request open).
func (tc *TestCluster) Quiesce() {
	for _, e := range tc.edges {
		e.Quiesce()
	}
	if tc.parent != nil {
		tc.parent.Quiesce()
	}
}

// Edges returns the number of edge nodes.
func (tc *TestCluster) Edges() int { return len(tc.edges) }

// Edge returns edge i's proxy (for stats and invariant hooks).
func (tc *TestCluster) Edge(i int) *proxy.Proxy { return tc.edges[i] }

// EdgeURL returns edge i's base URL.
func (tc *TestCluster) EdgeURL(i int) string { return tc.edgeSrvs[i].URL }

// Parent returns the parent proxy (nil without WithParent).
func (tc *TestCluster) Parent() *proxy.Proxy { return tc.parent }

// ParentURL returns the parent's base URL ("" without WithParent).
func (tc *TestCluster) ParentURL() string {
	if tc.parentSrv == nil {
		return ""
	}
	return tc.parentSrv.URL
}

// OriginURL returns the counting origin's base URL.
func (tc *TestCluster) OriginURL() string { return tc.originSrv.URL }

// OriginRequests returns how many requests reached the origin.
func (tc *TestCluster) OriginRequests() int64 { return tc.originReqs.Load() }

// OriginBytes returns how many body bytes the origin served — the
// numerator of the cluster-wide traffic reduction ratio.
func (tc *TestCluster) OriginBytes() int64 { return tc.originByts.Load() }

// ReplaceParentHandler swaps the parent listener's handler — e.g. for
// a handler that aborts mid-stream. RestoreParent undoes it.
func (tc *TestCluster) ReplaceParentHandler(h http.Handler) { tc.parentSwp.set(h) }

// RestoreParent re-wires the real parent proxy behind its listener.
func (tc *TestCluster) RestoreParent() { tc.parentSwp.set(tc.parent) }

// ReplaceEdgeHandler swaps edge i's listener handler. RestoreEdge
// undoes it.
func (tc *TestCluster) ReplaceEdgeHandler(i int, h http.Handler) { tc.edgeSwps[i].set(h) }

// RestoreEdge re-wires edge i's real proxy behind its listener.
func (tc *TestCluster) RestoreEdge(i int) { tc.edgeSwps[i].set(tc.edges[i]) }

// KillParent closes the parent's listener outright: subsequent peer
// fetches see a connection error (the crashed-node case, as opposed to
// the hanging-node case ReplaceParentHandler scripts).
func (tc *TestCluster) KillParent() { tc.parentSrv.CloseClientConnections(); tc.parentSrv.Close() }

// KillEdge closes edge i's listener outright.
func (tc *TestCluster) KillEdge(i int) { tc.edgeSrvs[i].CloseClientConnections(); tc.edgeSrvs[i].Close() }

// FetchVerified downloads object id from edge i and checks the digest
// against the catalog content — the end-to-end integrity probe.
func (tc *TestCluster) FetchVerified(i, id int) (*proxy.FetchResult, error) {
	meta, ok := tc.cfg.Catalog.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: unknown object %d", ErrBadCluster, id)
	}
	res, err := proxy.Fetch(fmt.Sprintf("%s/objects/%d", tc.EdgeURL(i), id))
	if err != nil {
		return nil, err
	}
	if res.Bytes != meta.Size {
		return nil, fmt.Errorf("cluster: object %d from edge %d: got %d bytes, want %d", id, i, res.Bytes, meta.Size)
	}
	if want := proxy.ContentSHA256(id, meta.Size); res.SHA256 != want {
		return nil, fmt.Errorf("cluster: object %d from edge %d: digest mismatch", id, i)
	}
	return res, nil
}

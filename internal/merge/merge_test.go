package merge

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testObj is a 100-second stream at 1000 B/s.
var testObj = Object{Size: 100000, Rate: 1000}

func TestValidation(t *testing.T) {
	if _, err := Unicast([]float64{1}, Object{}); err == nil {
		t.Error("zero object accepted")
	}
	if _, err := Unicast([]float64{2, 1}, testObj); err == nil {
		t.Error("unsorted times accepted")
	}
	if _, err := Unicast([]float64{math.NaN()}, testObj); err == nil {
		t.Error("NaN time accepted")
	}
	if _, err := Batch([]float64{1}, testObj, -1); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := Patch([]float64{1}, testObj, -1, 0); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := Patch([]float64{1}, testObj, 1, -5); err == nil {
		t.Error("negative cached bytes accepted")
	}
}

func TestUnicastCost(t *testing.T) {
	res, err := Unicast([]float64{0, 1, 2}, testObj)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginBytes != 300000 || res.FullStreams != 3 {
		t.Errorf("unicast: %+v, want 3 full streams / 300000 bytes", res)
	}
	if res.SavingsRatio(testObj) != 0 {
		t.Errorf("unicast savings = %v, want 0", res.SavingsRatio(testObj))
	}
}

func TestEmptyRequests(t *testing.T) {
	for _, f := range []func() (Result, error){
		func() (Result, error) { return Unicast(nil, testObj) },
		func() (Result, error) { return Batch(nil, testObj, 5) },
		func() (Result, error) { return Patch(nil, testObj, 5, 0) },
	} {
		res, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if res.OriginBytes != 0 || res.Requests != 0 {
			t.Errorf("empty input produced work: %+v", res)
		}
	}
}

func TestBatchGroupsWithinWindow(t *testing.T) {
	// Requests at 0, 3, 9; window 5: {0,3} batch (stream at 5), {9} alone.
	res, err := Batch([]float64{0, 3, 9}, testObj, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullStreams != 2 {
		t.Errorf("full streams = %d, want 2", res.FullStreams)
	}
	if res.OriginBytes != 200000 {
		t.Errorf("origin bytes = %v, want 200000", res.OriginBytes)
	}
	// Delays: leader 5, follower 2, second leader 5 -> mean 4.
	if math.Abs(res.AvgAddedDelay-4) > 1e-9 {
		t.Errorf("avg added delay = %v, want 4", res.AvgAddedDelay)
	}
}

func TestBatchZeroWindowIsUnicast(t *testing.T) {
	times := []float64{0, 1, 2, 3}
	batch, err := Batch(times, testObj, 0)
	if err != nil {
		t.Fatal(err)
	}
	unicast, err := Unicast(times, testObj)
	if err != nil {
		t.Fatal(err)
	}
	if batch.OriginBytes != unicast.OriginBytes {
		t.Errorf("zero-window batch bytes %v != unicast %v", batch.OriginBytes, unicast.OriginBytes)
	}
	if batch.AvgAddedDelay != 0 {
		t.Errorf("zero-window delay = %v, want 0", batch.AvgAddedDelay)
	}
}

func TestBatchSimultaneousRequests(t *testing.T) {
	res, err := Batch([]float64{5, 5, 5}, testObj, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullStreams != 1 {
		t.Errorf("full streams = %d, want 1 for simultaneous arrivals", res.FullStreams)
	}
}

func TestPatchBasics(t *testing.T) {
	// Requests at 0 and 10, threshold 50: second request patches 10s of
	// content = 10000 bytes.
	res, err := Patch([]float64{0, 10}, testObj, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullStreams != 1 || res.Patches != 1 {
		t.Errorf("streams/patches = %d/%d, want 1/1", res.FullStreams, res.Patches)
	}
	if res.OriginBytes != 110000 {
		t.Errorf("origin bytes = %v, want 110000", res.OriginBytes)
	}
	if got := res.SavingsRatio(testObj); math.Abs(got-0.45) > 1e-9 {
		t.Errorf("savings = %v, want 0.45", got)
	}
}

func TestPatchThresholdRestartsStream(t *testing.T) {
	// Threshold 5: request at 10 is beyond it, so a new full stream starts.
	res, err := Patch([]float64{0, 10}, testObj, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullStreams != 2 || res.Patches != 0 {
		t.Errorf("streams/patches = %d/%d, want 2/0", res.FullStreams, res.Patches)
	}
}

func TestPatchAfterStreamEndsRestarts(t *testing.T) {
	// Even with a huge threshold, a request after the stream finished
	// (duration 100s) cannot join it.
	res, err := Patch([]float64{0, 150}, testObj, 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FullStreams != 2 {
		t.Errorf("full streams = %d, want 2 (stream ended)", res.FullStreams)
	}
}

func TestPatchWithCachedPrefix(t *testing.T) {
	// 20 KB cached prefix: the full stream saves 20 KB from the origin
	// and a 10 s patch (10 KB) is served entirely from the cache.
	res, err := Patch([]float64{0, 10}, testObj, 50, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginBytes != 80000 {
		t.Errorf("origin bytes = %v, want 80000", res.OriginBytes)
	}
	if res.CacheBytes != 30000 {
		t.Errorf("cache bytes = %v, want 30000 (20K head + 10K patch)", res.CacheBytes)
	}
}

func TestPatchCachedPrefixClampedToObject(t *testing.T) {
	res, err := Patch([]float64{0}, testObj, 50, testObj.Size*10)
	if err != nil {
		t.Fatal(err)
	}
	if res.OriginBytes != 0 {
		t.Errorf("origin bytes = %v, want 0 (fully cached)", res.OriginBytes)
	}
}

func TestOptimalPatchThreshold(t *testing.T) {
	// lambda=1 req/s, duration 100 s: N=100, T* = (sqrt(201)-1)/1.
	got, err := OptimalPatchThreshold(1, testObj)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(201) - 1
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("T* = %v, want %v", got, want)
	}
	if _, err := OptimalPatchThreshold(0, testObj); err == nil {
		t.Error("zero lambda accepted")
	}
	if _, err := OptimalPatchThreshold(1, Object{}); err == nil {
		t.Error("zero object accepted")
	}
}

func TestOptimalThresholdNearMinimumEmpirically(t *testing.T) {
	// The analytic T* should be within a factor of the empirical best
	// over a sweep, for Poisson arrivals.
	rng := rand.New(rand.NewSource(5))
	const lambda = 0.5
	var times []float64
	now := 0.0
	for i := 0; i < 4000; i++ {
		now += rng.ExpFloat64() / lambda
		times = append(times, now)
	}
	tStar, err := OptimalPatchThreshold(lambda, testObj)
	if err != nil {
		t.Fatal(err)
	}
	atT := func(threshold float64) float64 {
		res, err := Patch(times, testObj, threshold, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.OriginBytes
	}
	best := math.Inf(1)
	for th := 5.0; th <= 100; th += 5 {
		if b := atT(th); b < best {
			best = b
		}
	}
	if got := atT(tStar); got > best*1.05 {
		t.Errorf("bytes at T*=%.1f (%.0f) exceed empirical best (%.0f) by >5%%", tStar, got, best)
	}
}

func TestSplitByObject(t *testing.T) {
	times := []float64{1, 2, 3, 4}
	ids := []int{7, 8, 7, 8}
	groups, err := SplitByObject(times, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[7]) != 2 || groups[8][1] != 4 {
		t.Errorf("groups = %v", groups)
	}
	if _, err := SplitByObject(times, ids[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMergeNeverWorseThanUnicastProperty(t *testing.T) {
	f := func(seed int64, windowRaw, thresholdRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		times := make([]float64, n)
		now := 0.0
		for i := range times {
			now += rng.ExpFloat64() * 10
			times[i] = now
		}
		window := float64(windowRaw)
		threshold := float64(thresholdRaw)
		unicast, err := Unicast(times, testObj)
		if err != nil {
			return false
		}
		batch, err := Batch(times, testObj, window)
		if err != nil {
			return false
		}
		patch, err := Patch(times, testObj, threshold, 0)
		if err != nil {
			return false
		}
		return batch.OriginBytes <= unicast.OriginBytes+1e-9 &&
			patch.OriginBytes <= unicast.OriginBytes+1e-9 &&
			batch.FullStreams+patch.FullStreams >= 2 // both serve someone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPatchCacheMonotoneProperty(t *testing.T) {
	// More cached prefix never increases origin bytes.
	f := func(seed int64, cacheRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		times := make([]float64, n)
		now := 0.0
		for i := range times {
			now += rng.ExpFloat64() * 20
			times[i] = now
		}
		c1 := int64(cacheRaw)
		c2 := c1 + 10000
		r1, err := Patch(times, testObj, 30, c1)
		if err != nil {
			return false
		}
		r2, err := Patch(times, testObj, 30, c2)
		if err != nil {
			return false
		}
		return r2.OriginBytes <= r1.OriginBytes+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConservationProperty(t *testing.T) {
	// Origin bytes + cache bytes must equal the bytes actually delivered
	// (full streams + patches).
	f := func(seed int64, cacheRaw uint16, thresholdRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		times := make([]float64, n)
		now := 0.0
		for i := range times {
			now += rng.ExpFloat64() * 15
			times[i] = now
		}
		cached := int64(cacheRaw)
		res, err := Patch(times, testObj, float64(thresholdRaw), cached)
		if err != nil {
			return false
		}
		delivered := res.OriginBytes + res.CacheBytes
		// Recompute delivered bytes independently.
		want := 0.0
		lastFull := math.Inf(-1)
		duration := testObj.duration()
		for _, tm := range times {
			elapsed := tm - lastFull
			if elapsed > float64(thresholdRaw) || elapsed >= duration {
				want += float64(testObj.Size)
				lastFull = tm
				continue
			}
			pb := int64(elapsed * testObj.Rate)
			if pb > testObj.Size {
				pb = testObj.Size
			}
			want += float64(pb)
		}
		return math.Abs(delivered-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Package merge implements the stream-merging techniques the paper's
// Section 6 proposes combining with partial caching: batching and
// patching at the caching proxy.
//
// With plain unicast, every request for an object costs a full stream
// from the origin. Batching delays a request by up to a window W so it
// can share the stream of a concurrent request. Patching lets a client
// join an ongoing stream immediately and fetch only the missed prefix
// (the "patch") as a separate unicast; a threshold T bounds patch length
// by periodically restarting a full stream.
//
// The proxy's cached prefix composes naturally with patching: the first
// cachedBytes of any patch are served by the cache, not the origin, so
// partial caching and stream merging save origin bandwidth
// multiplicatively.
package merge

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadInput reports an invalid merge simulation input.
var ErrBadInput = errors.New("merge: invalid input")

// Object is the stream being merged: Size bytes played at Rate bytes/s
// (duration Size/Rate seconds).
type Object struct {
	Size int64
	Rate float64
}

func (o Object) duration() float64 { return float64(o.Size) / o.Rate }

// Result summarizes one merging simulation.
type Result struct {
	// Requests is the number of client requests served.
	Requests int
	// OriginBytes is the total bytes streamed from the origin.
	OriginBytes float64
	// CacheBytes is the total patch bytes served from the cached prefix.
	CacheBytes float64
	// FullStreams counts complete origin transmissions.
	FullStreams int
	// Patches counts partial (patch) transmissions.
	Patches int
	// AvgAddedDelay is the mean extra startup delay imposed by batching
	// (0 for unicast and patching).
	AvgAddedDelay float64
}

// UnicastBytes returns the origin bytes plain unicast would use for the
// same request sequence - the baseline for merging gains.
func (r Result) UnicastBytes(obj Object) float64 {
	return float64(r.Requests) * float64(obj.Size)
}

// SavingsRatio is the fraction of unicast origin traffic avoided.
func (r Result) SavingsRatio(obj Object) float64 {
	unicast := r.UnicastBytes(obj)
	if unicast == 0 {
		return 0
	}
	return 1 - r.OriginBytes/unicast
}

func validate(times []float64, obj Object) error {
	if obj.Size <= 0 || obj.Rate <= 0 || math.IsNaN(obj.Rate) {
		return fmt.Errorf("%w: object %+v", ErrBadInput, obj)
	}
	for i, t := range times {
		if math.IsNaN(t) {
			return fmt.Errorf("%w: request %d time NaN", ErrBadInput, i)
		}
		if i > 0 && t < times[i-1] {
			return fmt.Errorf("%w: request times not sorted at %d", ErrBadInput, i)
		}
	}
	return nil
}

// Unicast serves every request with a dedicated full stream.
func Unicast(times []float64, obj Object) (Result, error) {
	if err := validate(times, obj); err != nil {
		return Result{}, err
	}
	return Result{
		Requests:    len(times),
		OriginBytes: float64(len(times)) * float64(obj.Size),
		FullStreams: len(times),
	}, nil
}

// Batch groups requests arriving within a window of the batch leader:
// the leader waits `window` seconds, then one full stream serves the
// whole batch. Followers incur less added delay the later they arrive;
// the leader incurs the full window.
func Batch(times []float64, obj Object, window float64) (Result, error) {
	if err := validate(times, obj); err != nil {
		return Result{}, err
	}
	if window < 0 || math.IsNaN(window) {
		return Result{}, fmt.Errorf("%w: window=%v", ErrBadInput, window)
	}
	res := Result{Requests: len(times)}
	if len(times) == 0 {
		return res, nil
	}
	totalDelay := 0.0
	i := 0
	for i < len(times) {
		leader := times[i]
		streamStart := leader + window
		j := i
		for j < len(times) && times[j] <= streamStart {
			totalDelay += streamStart - times[j]
			j++
		}
		res.OriginBytes += float64(obj.Size)
		res.FullStreams++
		i = j
	}
	res.AvgAddedDelay = totalDelay / float64(len(times))
	return res, nil
}

// Patch implements threshold-based patching: the first request (and any
// request arriving more than `threshold` seconds after the last full
// stream started) triggers a full stream; every other request joins the
// ongoing full stream and fetches only the missed prefix of t_elapsed
// seconds as a patch. A cached prefix of cachedBytes serves the head of
// every patch (and of every full stream) from the cache.
func Patch(times []float64, obj Object, threshold float64, cachedBytes int64) (Result, error) {
	if err := validate(times, obj); err != nil {
		return Result{}, err
	}
	if threshold < 0 || math.IsNaN(threshold) {
		return Result{}, fmt.Errorf("%w: threshold=%v", ErrBadInput, threshold)
	}
	if cachedBytes < 0 {
		return Result{}, fmt.Errorf("%w: cachedBytes=%d", ErrBadInput, cachedBytes)
	}
	if cachedBytes > obj.Size {
		cachedBytes = obj.Size
	}
	res := Result{Requests: len(times)}
	if len(times) == 0 {
		return res, nil
	}
	duration := obj.duration()
	lastFull := math.Inf(-1)
	for _, t := range times {
		elapsed := t - lastFull
		if elapsed > threshold || elapsed >= duration {
			// Start a fresh full stream; the cache covers its head.
			res.OriginBytes += float64(obj.Size - cachedBytes)
			res.CacheBytes += float64(cachedBytes)
			res.FullStreams++
			lastFull = t
			continue
		}
		// Join the ongoing stream; patch the missed prefix.
		patchBytes := int64(elapsed * obj.Rate)
		if patchBytes > obj.Size {
			patchBytes = obj.Size
		}
		fromCache := cachedBytes
		if fromCache > patchBytes {
			fromCache = patchBytes
		}
		res.OriginBytes += float64(patchBytes - fromCache)
		res.CacheBytes += float64(fromCache)
		res.Patches++
	}
	return res, nil
}

// OptimalPatchThreshold returns the threshold minimizing expected origin
// bandwidth for Poisson arrivals of rate lambda (Gao & Towsley): the
// classic result T* = (sqrt(2*N+1)-1)/lambda with N = lambda*duration
// expected arrivals per stream duration.
func OptimalPatchThreshold(lambda float64, obj Object) (float64, error) {
	if lambda <= 0 || math.IsNaN(lambda) {
		return 0, fmt.Errorf("%w: lambda=%v", ErrBadInput, lambda)
	}
	if obj.Size <= 0 || obj.Rate <= 0 {
		return 0, fmt.Errorf("%w: object %+v", ErrBadInput, obj)
	}
	n := lambda * obj.duration()
	return (math.Sqrt(2*n+1) - 1) / lambda, nil
}

// SplitByObject groups a request trace (time, objectID pairs must be
// time-sorted) into per-object arrival-time slices for merge analysis.
func SplitByObject(times []float64, objectIDs []int) (map[int][]float64, error) {
	if len(times) != len(objectIDs) {
		return nil, fmt.Errorf("%w: %d times vs %d object IDs", ErrBadInput, len(times), len(objectIDs))
	}
	out := make(map[int][]float64)
	for i, t := range times {
		out[objectIDs[i]] = append(out[objectIDs[i]], t)
	}
	for _, ts := range out {
		if !sort.Float64sAreSorted(ts) {
			return nil, fmt.Errorf("%w: request times not sorted", ErrBadInput)
		}
	}
	return out, nil
}

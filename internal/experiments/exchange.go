package experiments

import "sync/atomic"

// Shard-aware adaptive scheduling: a sharded refinement round needs the
// metric of every point in the round — owned and foreign alike — to
// rank the next intervals, but only the owner should pay for the
// simulation. A MetricExchange closes that loop: each shard publishes
// the metrics of its owned points through its sinks (the collector
// service of internal/collect, in production), and resolves the foreign
// ones through the exchange instead of re-simulating them. The
// determinism contract makes this a pure optimization: every shard
// would compute bit-for-bit the same float64 for any point, so a fetch
// that fails (collector down, owner dead) falls back to local
// evaluation and the refined point set — and the emitted rows — are
// unchanged. With a healthy exchange, an N-shard refined sweep runs
// O(total/N) simulations per shard instead of O(total) on each.

// MetricExchange resolves the refinement metrics of points owned by
// other shards. ForeignMetric may block (bounded by the
// implementation's own timeout) until the owning shard has published
// the metric for (table, index); ok=false means the metric is
// unavailable and the caller must evaluate the point locally. An
// implementation must return exactly the float64 the owning shard
// computed — rows and refinement decisions are byte-identical whether a
// metric was fetched or recomputed.
type MetricExchange interface {
	ForeignMetric(table string, index int) (metric float64, ok bool)
}

// Counters accumulates scheduler telemetry for one run. Attach one via
// Scale.Counters to observe how much simulation work this process
// actually performed — the benchmark metric behind the O(total/N)
// sharded-refinement contract. All fields are safe for concurrent use.
type Counters struct {
	// Evaluations counts sweep points this process simulated (journal
	// replays and exchange fetches are not evaluations).
	Evaluations atomic.Int64
	// ExchangeHits counts foreign points resolved through the
	// MetricExchange instead of being re-simulated locally.
	ExchangeHits atomic.Int64
}

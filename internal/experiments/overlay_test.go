package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestOverlayTables pins the join: shared columns in live-header order,
// source-tagged rows live-first, unique columns dropped, missing cells
// blank.
func TestOverlayTables(t *testing.T) {
	live := &Table{
		Name:   "live-capacity",
		Header: []string{"offered_rps", "bw_hit_ratio", "delay_p50_ms", "wall_seconds"},
		Rows: [][]string{
			{"10", "0.61", "120", "30.1"},
			{"20", "0.58"}, // ragged row: missing cells overlay as blanks
		},
	}
	sim := &Table{
		Name:   "hierarchy sweep",
		Header: []string{"cache_pct", "bw_hit_ratio", "offered_rps"},
		Rows: [][]string{
			{"10", "0.64", "10"},
		},
	}
	got, err := OverlayTables(live, sim)
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := []string{"source", "offered_rps", "bw_hit_ratio"}
	if strings.Join(got.Header, ",") != strings.Join(wantHeader, ",") {
		t.Fatalf("header = %v, want %v (shared columns in live order)", got.Header, wantHeader)
	}
	wantRows := [][]string{
		{"live", "10", "0.61"},
		{"live", "20", "0.58"},
		{"sim", "10", "0.64"},
	}
	if len(got.Rows) != len(wantRows) {
		t.Fatalf("rows = %v, want %v", got.Rows, wantRows)
	}
	for i := range wantRows {
		if strings.Join(got.Rows[i], ",") != strings.Join(wantRows[i], ",") {
			t.Errorf("row %d = %v, want %v", i, got.Rows[i], wantRows[i])
		}
	}

	// The overlay streams as a regular table.
	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	if err := sink.Begin(TableMeta{Name: got.Name, Note: got.Note, Header: got.Header}); err != nil {
		t.Fatal(err)
	}
	for _, row := range got.Rows {
		if err := sink.Row(row); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(buf.String(), "live,10,0.61") {
		t.Errorf("overlay CSV missing live row:\n%s", buf.String())
	}

	if _, err := OverlayTables(live, &Table{Header: []string{"unrelated"}}); err == nil {
		t.Error("overlay of disjoint headers returned no error")
	}
}

// TestOverlayLiveCapacityAgainstLoadgenLive: the two real schemas the
// overlay exists for do share columns, so the join is never vacuous.
func TestOverlayLiveCapacityAgainstLoadgenLive(t *testing.T) {
	live := &Table{Name: "live", Header: LiveCapacityHeader}
	sim := &Table{Name: "sim", Header: LiveClassHeader}
	got, err := OverlayTables(live, sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Header) < 5 {
		t.Errorf("capacity/class overlay shares only %v", got.Header)
	}
}

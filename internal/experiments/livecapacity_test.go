package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestFindKnee(t *testing.T) {
	table := &Table{
		Header: LiveCapacityHeader,
		Rows: [][]string{
			make([]string, len(LiveCapacityHeader)),
			make([]string, len(LiveCapacityHeader)),
			make([]string, len(LiveCapacityHeader)),
		},
	}
	col := -1
	for i, h := range LiveCapacityHeader {
		if h == "slo_violation_frac" {
			col = i
		}
	}
	if col < 0 {
		t.Fatal("LiveCapacityHeader lost slo_violation_frac")
	}
	for i, v := range []string{"0.0100", "0.0500", "0.7200"} {
		for j := range table.Rows[i] {
			table.Rows[i][j] = "0"
		}
		table.Rows[i][col] = v
	}
	if got := FindKnee(table, 0.1); got != 2 {
		t.Errorf("FindKnee(0.1) = %d, want 2", got)
	}
	if got := FindKnee(table, 0.03); got != 1 {
		t.Errorf("FindKnee(0.03) = %d, want 1", got)
	}
	if got := FindKnee(table, 0.9); got != -1 {
		t.Errorf("FindKnee(0.9) = %d, want -1 (never crosses)", got)
	}
	if got := FindKnee(&Table{Header: []string{"x"}}, 0.1); got != -1 {
		t.Errorf("FindKnee without the column = %d, want -1", got)
	}
}

func TestReadCSVTableRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	meta := TableMeta{Name: "live-capacity", Note: "a note", Header: []string{"a", "b"}}
	if err := sink.Begin(meta); err != nil {
		t.Fatal(err)
	}
	rows := [][]string{{"1", "2.5"}, {"3", "4.5"}}
	for _, r := range rows {
		if err := sink.Row(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.End(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadCSVTable(&buf)
	if err != nil {
		t.Fatalf("ReadCSVTable: %v", err)
	}
	if got.Name != meta.Name || got.Note != meta.Note {
		t.Errorf("identity = (%q, %q), want (%q, %q)", got.Name, got.Note, meta.Name, meta.Note)
	}
	if len(got.Header) != 2 || got.Header[0] != "a" || got.Header[1] != "b" {
		t.Errorf("header = %v", got.Header)
	}
	if len(got.Rows) != 2 || got.Rows[1][1] != "4.5" {
		t.Errorf("rows = %v", got.Rows)
	}

	if _, err := ReadCSVTable(strings.NewReader("")); err == nil {
		t.Error("ReadCSVTable accepted an empty stream")
	}
}

package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"testing"
)

// journaledStream runs one experiment with a journal at path attached
// (and optionally consulted for resume), returning the CSV bytes.
func journaledStream(t *testing.T, key string, s Scale, path string, resume bool) []byte {
	t.Helper()
	var j *Journal
	var err error
	if resume {
		j, err = ResumeJournal(path, s.Fingerprint())
	} else {
		j, err = CreateJournal(path, s.Fingerprint())
	}
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if resume {
		s.Resume = j
	}
	var csv bytes.Buffer
	if err := Stream(key, s, MultiSink{NewCSVSink(&csv), NewJournalSink(j)}); err != nil {
		t.Fatal(err)
	}
	return csv.Bytes()
}

// countJournalRows parses a journal file, failing on duplicate
// (table, index) keys, and returns the number of row records.
func countJournalRows(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seen := map[string]bool{}
	sc := bufio.NewScanner(f)
	n := 0
	for sc.Scan() {
		line := sc.Text()
		var rec journalRowRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("corrupt journal line %q: %v", line, err)
		}
		if rec.Type != "row" {
			continue
		}
		key := fmt.Sprintf("%s#%d", rec.Table, rec.Index)
		if seen[key] {
			t.Fatalf("journal holds duplicate row %s", key)
		}
		seen[key] = true
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestJournalResumeAfterTruncation is the resumability acceptance
// contract: a journal cut off mid-sweep (including mid-line, as a kill
// would leave it) resumes to the byte-identical final output, and the
// resumed journal holds every row exactly once. Covers a fixed grid and
// an adaptive refinement sweep, whose resumed refinement decisions rank
// on journaled full-precision metrics.
func TestJournalResumeAfterTruncation(t *testing.T) {
	for _, key := range []string{"figure5", "refined-e"} {
		t.Run(key, func(t *testing.T) {
			s := tinyScale()
			s.RefineBudget = 3
			dir := t.TempDir()
			path := filepath.Join(dir, "journal.jsonl")

			want := journaledStream(t, key, s, path, false)
			total := countJournalRows(t, path)
			if total == 0 {
				t.Fatal("journal recorded no rows")
			}

			// Kill simulation: chop the journal mid-file, leaving a
			// partial trailing line.
			full, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cut := len(full) * 3 / 5
			if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}

			j, err := ResumeJournal(path, s.Fingerprint())
			if err != nil {
				t.Fatal(err)
			}
			completed := 0
			for name := range j.tables {
				completed += j.CompletedRows(name)
			}
			j.Close()
			if completed == 0 || completed >= total {
				t.Fatalf("truncated journal holds %d of %d rows; want a strict mid-sweep prefix", completed, total)
			}

			got := journaledStream(t, key, s, path, true)
			if !bytes.Equal(got, want) {
				t.Errorf("resumed output differs from the uninterrupted run:\n%s\nwant:\n%s", got, want)
			}
			if n := countJournalRows(t, path); n != total {
				t.Errorf("resumed journal holds %d rows, want %d", n, total)
			}
		})
	}
}

// TestResumeSkipsCompletedTasks proves resume actually skips work: a
// synthetic sweep journals half its rows, and the resumed run executes
// only the other half.
func TestResumeSkipsCompletedTasks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	const n = 10

	var executed atomic.Int64
	build := func() *taskSweep {
		sw := &taskSweep{meta: TableMeta{Name: "resume probe", Header: []string{"i"}}}
		for i := 0; i < n; i++ {
			sw.tasks = append(sw.tasks, func() ([]string, error) {
				executed.Add(1)
				return []string{strconv.Itoa(i)}, nil
			})
		}
		return sw
	}

	s := tinyScale()
	fp := s.Fingerprint()

	// First run: journal rows but fail the sink after 6 rows, as a
	// mid-sweep crash would.
	j, err := CreateJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	boom := errors.New("crash")
	err = stream(s, build(), MultiSink{NewJournalSink(j), sinkFunc(func(row []string) error {
		rows++
		if rows > 6 {
			return boom
		}
		return nil
	})})
	j.Close()
	if !errors.Is(err, boom) {
		t.Fatalf("stream error = %v, want the injected crash", err)
	}
	if executed.Load() == 0 {
		t.Fatal("no tasks executed before the crash")
	}

	// Resume: journaled rows replay, only the remainder executes.
	j, err = ResumeJournal(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	journaled := j.CompletedRows("resume probe")
	if journaled == 0 || journaled >= n {
		t.Fatalf("journal holds %d rows, want a strict prefix of %d", journaled, n)
	}
	executed.Store(0)
	s.Resume = j
	var ts TableSink
	if err := stream(s, build(), MultiSink{NewJournalSink(j), &ts}); err != nil {
		t.Fatal(err)
	}
	if got := int(executed.Load()); got != n-journaled {
		t.Errorf("resume executed %d tasks, want %d (journal already held %d)", got, n-journaled, journaled)
	}
	tbl := ts.Table()
	if len(tbl.Rows) != n {
		t.Fatalf("resumed table has %d rows, want %d", len(tbl.Rows), n)
	}
	for i, row := range tbl.Rows {
		if row[0] != strconv.Itoa(i) {
			t.Errorf("row %d = %q, want %q", i, row[0], strconv.Itoa(i))
		}
	}
}

// TestCreateRefusesExistingJournal: re-running a crashed sweep without
// -resume must not truncate the checkpoint.
func TestCreateRefusesExistingJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	s := tinyScale()
	journaledStream(t, "figure5", s, path, false)
	before := countJournalRows(t, path)
	if before == 0 {
		t.Fatal("journal recorded no rows")
	}
	if _, err := CreateJournal(path, s.Fingerprint()); err == nil {
		t.Fatal("CreateJournal overwrote a non-empty journal")
	}
	if after := countJournalRows(t, path); after != before {
		t.Errorf("refused create still changed the journal: %d -> %d rows", before, after)
	}
}

// TestResumeRejectsScaleMismatch guards against splicing journals from
// incompatible runs.
func TestResumeRejectsScaleMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	s := tinyScale()
	j, err := CreateJournal(path, s.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	other := s
	other.Seed = 99
	if _, err := ResumeJournal(path, other.Fingerprint()); !errors.Is(err, ErrJournalMismatch) {
		t.Errorf("resume at a different scale returned %v, want ErrJournalMismatch", err)
	}
	if _, err := ResumeJournal(path, s.Fingerprint()); err != nil {
		t.Errorf("resume at the same scale failed: %v", err)
	}
}

// TestJournalAndShardCompose: each shard journals and resumes
// independently; the merged union still matches the unsharded stream.
func TestJournalAndShardCompose(t *testing.T) {
	key := "figure5"
	base := tinyScale()
	var want bytes.Buffer
	if err := Stream(key, base, NewCSVSink(&want)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const count = 2
	paths := make([]string, count)
	for idx := 0; idx < count; idx++ {
		s := tinyScale()
		s.Shard = Shard{Index: idx, Count: count}
		paths[idx] = filepath.Join(dir, fmt.Sprintf("journal-%d.jsonl", idx))
		journaledStream(t, key, s, paths[idx], false)
		// Truncate and resume this shard's journal mid-way.
		full, err := os.ReadFile(paths[idx])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(paths[idx], full[:len(full)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		journaledStream(t, key, s, paths[idx], true)
	}

	// The resumed journals themselves are valid merge inputs.
	in := make([]io.Reader, count)
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		in[i] = f
	}
	var got bytes.Buffer
	if err := MergeShards(in, NewCSVSink(&got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("merged resumed-shard journals differ from the unsharded stream:\n%s\nwant:\n%s",
			got.String(), want.String())
	}
}

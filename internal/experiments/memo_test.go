package experiments

import (
	"bytes"
	"testing"
)

// streamCSV renders one experiment to CSV bytes at the given scale.
func streamCSV(t *testing.T, key string, s Scale) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Stream(key, s, NewCSVSink(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMemoizedSweepByteIdentical is the workload-arena acceptance
// contract: a sweep that reuses memoized workloads and path assignments
// must stream byte-identical output to one that regenerates everything
// per point, at every Parallelism.
func TestMemoizedSweepByteIdentical(t *testing.T) {
	// Cover a fixed grid with variability (figure9), the estimator x
	// sigma x policy matrix (stateful EWMA estimators), and an adaptive
	// refinement driver (refined-e).
	for _, key := range []string{"figure9", "scenarios", "refined-e"} {
		t.Run(key, func(t *testing.T) {
			s := tinyScale()
			s.RefineBudget = 2
			s.NoWorkloadReuse = true
			fresh := streamCSV(t, key, s)

			for _, par := range []int{1, 2, 8} {
				m := tinyScale()
				m.RefineBudget = 2
				m.Parallelism = par
				got := streamCSV(t, key, m)
				if !bytes.Equal(got, fresh) {
					t.Errorf("memoized sweep (Parallelism=%d) diverged from fresh sweep:\n%s\nwant:\n%s",
						par, got, fresh)
				}
			}
		})
	}
}

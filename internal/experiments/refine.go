package experiments

import (
	"cmp"
	"slices"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/metrics"
	"streamcache/internal/sim"
)

// Adaptive sweep refinement: after a coarse pass over one numeric axis
// (underestimation factor e, variability sigma, cache fraction), the
// driver repeatedly bisects the axis intervals with the steepest metric
// gradient until a point budget is exhausted, so sweep points
// concentrate where the response surface bends instead of where the
// grid happened to fall.
//
// Determinism contract: refinement decisions are keyed exclusively on
// completed rows — the coarse pass is a full barrier, and each round
// selects a fixed number of intervals (refineRoundPoints, independent
// of Parallelism) from the deterministic point set, evaluates them over
// the worker pool, and re-ranks. Every simulated point derives its
// randomness from the scale seed via the existing SplitMix64 scheme
// (sim.Run splits cfg.Seed per run), so the selected points and the
// streamed rows are byte-identical at any Parallelism.

// refineRoundPoints is the number of intervals bisected per refinement
// round. It is a constant, never the worker count: a round's selections
// may not depend on how many points could run concurrently, or the
// refined point set would vary with Parallelism.
const refineRoundPoints = 2

// minGapDivisor bounds refinement depth: an interval narrower than
// 2 * span/minGapDivisor is never bisected.
const minGapDivisor = 256

// pointFn evaluates one axis point: the rendered row (without the
// trailing source cell) plus the scalar metric refinement ranks by.
// innerParallelism is the worker bound left over for parallelism
// inside the point (e.g. sim.Run's replication pool): wide when few
// points are in flight (refinement rounds), 1 when the outer pool is
// already saturated (the coarse pass). Results must not depend on it.
type pointFn func(x float64, innerParallelism int) (row []string, metric float64, err error)

// adaptiveSweep is a runner that streams a coarse axis pass followed by
// gradient-guided refinement rounds. Rows carry a trailing "source"
// cell ("coarse" or "refined"); meta.Header must already include it.
type adaptiveSweep struct {
	meta   TableMeta
	axis   []float64 // ascending coarse grid
	budget int       // extra points beyond the coarse pass
	point  pointFn
}

func (a *adaptiveSweep) tableMeta() TableMeta { return a.meta }

// axisPoint is one completed sweep point.
type axisPoint struct {
	x      float64
	metric float64
}

// evalRound evaluates one refinement round's points (global indices
// base..base+n-1) over the worker pool, emitting each owned row (tagged
// with source) in index order and returning every point's metric in
// index order — the full curve the next refinement decision needs.
//
// Scheduling is shard-aware: a shard simulates its owned points
// (replaying rows-with-metrics from the resume journal when present)
// and resolves foreign points without simulating them — first from
// journaled metric checkpoints, then through the MetricExchange. Only
// when both miss (no exchange configured, collector down, owner dead)
// does a shard fall back to simulating a foreign point locally; the
// determinism contract makes the fallback metric bit-identical to the
// owner's, so the refined point set and the emitted rows never depend
// on which path produced a metric — the exchange purely removes the
// N-fold duplicate compute. Fail-fast semantics match streamTasks.
func evalRound(x exec, n, base int,
	point func(i, innerParallelism int) (row []string, metric float64, err error),
	source string, emit func(e emitted) error) ([]float64, error) {

	type eval struct {
		row    []string
		metric float64
		owned  bool
	}
	// Split the worker budget between the outer point pool and each
	// point's inner pool so a phase with few locally evaluated points (a
	// refinement round, or an exchange-served shard's slice of the
	// coarse pass) still keeps the cores busy, while a wide phase does
	// not oversubscribe them P x P. Pure scheduling: rows are identical
	// for any split.
	local := n
	if x.exchange != nil && x.shard.enabled() {
		local = 0
		for g := base; g < base+n; g++ {
			if x.shard.owns(g) {
				local++
			}
		}
	}
	inner := 1
	if local > 0 {
		if inner = x.parallelism / local; inner < 1 {
			inner = 1
		}
	}
	metrics := make([]float64, 0, n)
	err := streamOrdered(x.parallelism, n, func(i int) (eval, error) {
		g := base + i
		owned := x.shard.owns(g)
		if owned {
			// Journaled rows carry the rendered payload (source cell
			// included) and the exact metric; nothing to recompute.
			if r, ok := x.replay(g); ok && r.hasMetric {
				return eval{row: r.row, metric: r.metric, owned: true}, nil
			}
		} else if m, ok := x.foreignMetric(g); ok {
			return eval{metric: m}, nil
		}
		x.evaluated()
		row, metric, err := point(i, inner)
		if err != nil {
			return eval{}, err
		}
		return eval{row: append(row, source), metric: metric, owned: owned}, nil
	}, func(i int, v eval) error {
		if v.owned {
			e := emitted{index: base + i, row: v.row, metric: v.metric, hasMetric: true}
			if err := emit(e); err != nil {
				return err
			}
		}
		metrics = append(metrics, v.metric)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return metrics, nil
}

// evalOrdered evaluates the given axis values through evalRound,
// pairing each returned metric with its axis position.
func (a *adaptiveSweep) evalOrdered(x exec, xs []float64, base int, source string,
	emit func(e emitted) error) ([]axisPoint, error) {

	metrics, err := evalRound(x, len(xs), base, func(i, inner int) ([]string, float64, error) {
		return a.point(xs[i], inner)
	}, source, emit)
	if err != nil {
		return nil, err
	}
	pts := make([]axisPoint, len(xs))
	for i, m := range metrics {
		pts[i] = axisPoint{x: xs[i], metric: m}
	}
	return pts, nil
}

func (a *adaptiveSweep) run(x exec, emit func(e emitted) error) error {
	// Coarse pass: the full axis, streamed in grid order. Refinement
	// cannot begin before every coarse row has landed (its decisions are
	// keyed on the complete coarse response curve).
	points, err := a.evalOrdered(x, a.axis, 0, "coarse", emit)
	if err != nil {
		return err
	}
	nextIndex := len(a.axis)
	if len(a.axis) < 2 || a.budget <= 0 {
		return nil
	}
	minGap := 2 * (a.axis[len(a.axis)-1] - a.axis[0]) / minGapDivisor

	remaining := a.budget
	for remaining > 0 {
		xs := make([]float64, len(points))
		ys := make([]float64, len(points))
		for i, p := range points {
			xs[i], ys[i] = p.x, p.metric
		}
		grads, err := metrics.Gradients(xs, ys)
		if err != nil {
			return err
		}
		// Rank intervals by gradient, ties broken toward the left end of
		// the axis; both keys are pure functions of completed rows.
		type interval struct {
			left int // index into points
			grad float64
		}
		var candidates []interval
		for i, g := range grads {
			if xs[i+1]-xs[i] > minGap {
				candidates = append(candidates, interval{left: i, grad: g})
			}
		}
		slices.SortStableFunc(candidates, func(a, b interval) int {
			if a.grad != b.grad {
				return cmp.Compare(b.grad, a.grad)
			}
			return cmp.Compare(xs[a.left], xs[b.left])
		})
		k := refineRoundPoints
		if k > remaining {
			k = remaining
		}
		if k > len(candidates) {
			k = len(candidates)
		}
		if k == 0 {
			return nil // axis fully resolved before the budget ran out
		}
		mids := make([]float64, k)
		for i := 0; i < k; i++ {
			mids[i] = (xs[candidates[i].left] + xs[candidates[i].left+1]) / 2
		}
		refined, err := a.evalOrdered(x, mids, nextIndex, "refined", emit)
		if err != nil {
			return err
		}
		nextIndex += k
		points = append(points, refined...)
		slices.SortFunc(points, func(a, b axisPoint) int { return cmp.Compare(a.x, b.x) })
		remaining -= k
	}
	return nil
}

// refinedSimSweep assembles the common single-axis adaptive experiment:
// one simulation per axis point at the scale's middle cache fraction.
func refinedSimSweep(s Scale, meta TableMeta, axis []float64,
	point pointFn) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return &adaptiveSweep{meta: meta, axis: axis, budget: s.RefineBudget, point: point}, nil
}

// RefinedESweep is Figure 9's underestimation axis made adaptive: a
// coarse pass over ESweep at the middle cache fraction, then
// RefineBudget extra points bisecting the steepest service-delay
// gradients — resolving the delay-minimizing e the paper reads off a
// fixed grid.
func RefinedESweep(s Scale) (*Table, error) { return tableOf(s, refinedESweepRunner) }

func refinedESweepRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	frac := s.midFraction()
	return refinedSimSweep(s, TableMeta{
		Name:   "Refined sweep: underestimation factor e, adaptive (delay objective)",
		Note:   "coarse ESweep pass, then gradient-guided bisection of avg_delay_s; mid-size cache, NLANR variability",
		Header: []string{"e", "cache_pct", "traffic_reduction", "avg_delay_s", "avg_quality", "source"},
	}, s.ESweep, func(e float64, innerPar int) ([]string, float64, error) {
		p, err := core.NewHybrid(e)
		if err != nil {
			return nil, 0, err
		}
		m, err := sim.Run(sim.Config{
			Workload:    s.workload(),
			CacheBytes:  int64(frac * float64(total)),
			Policy:      p,
			Variation:   bandwidth.NLANRVariability(),
			Runs:        s.Runs,
			Seed:        s.Seed,
			Parallelism: innerPar,
			Arena:       arena,
		})
		if err != nil {
			return nil, 0, err
		}
		return []string{
			f3(e), f3(frac * 100),
			f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.AvgStreamQuality),
		}, m.AvgServiceDelay, nil
	})
}

// RefinedSigmaSweep sweeps the lognormal bandwidth-variability sigma
// adaptively for the PB policy, zooming into the variability levels
// where service delay bends fastest.
func RefinedSigmaSweep(s Scale) (*Table, error) { return tableOf(s, refinedSigmaSweepRunner) }

func refinedSigmaSweepRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	frac := s.midFraction()
	return refinedSimSweep(s, TableMeta{
		Name:   "Refined sweep: bandwidth-variability sigma, adaptive (PB policy)",
		Note:   "coarse SigmaSweep pass, then gradient-guided bisection of avg_delay_s; mid-size cache",
		Header: []string{"sigma", "cache_pct", "traffic_reduction", "avg_delay_s", "avg_quality", "source"},
	}, s.sigmas(), func(sigma float64, innerPar int) ([]string, float64, error) {
		variation, err := bandwidth.NewLognormalRatio(sigma)
		if err != nil {
			return nil, 0, err
		}
		m, err := sim.Run(sim.Config{
			Workload:    s.workload(),
			CacheBytes:  int64(frac * float64(total)),
			Policy:      core.NewPB(),
			Variation:   variation,
			Runs:        s.Runs,
			Seed:        s.Seed,
			Parallelism: innerPar,
			Arena:       arena,
		})
		if err != nil {
			return nil, 0, err
		}
		return []string{
			f3(sigma), f3(frac * 100),
			f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.AvgStreamQuality),
		}, m.AvgServiceDelay, nil
	})
}

// RefinedCacheSweep sweeps the cache fraction adaptively for the PB
// policy under constant bandwidth, concentrating points where the
// traffic-reduction curve has the steepest knee (Figure 5's x axis).
func RefinedCacheSweep(s Scale) (*Table, error) { return tableOf(s, refinedCacheSweepRunner) }

func refinedCacheSweepRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	return refinedSimSweep(s, TableMeta{
		Name:   "Refined sweep: cache fraction, adaptive (PB policy, constant bandwidth)",
		Note:   "coarse CacheFractions pass, then gradient-guided bisection of traffic_reduction",
		Header: []string{"cache_pct", "traffic_reduction", "avg_delay_s", "avg_quality", "source"},
	}, s.CacheFractions, func(frac float64, innerPar int) ([]string, float64, error) {
		m, err := sim.Run(sim.Config{
			Workload:    s.workload(),
			CacheBytes:  int64(frac * float64(total)),
			Policy:      core.NewPB(),
			Runs:        s.Runs,
			Seed:        s.Seed,
			Parallelism: innerPar,
			Arena:       arena,
		})
		if err != nil {
			return nil, 0, err
		}
		return []string{
			f3(frac * 100),
			f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.AvgStreamQuality),
		}, m.TrafficReductionRatio, nil
	})
}

package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/metrics"
	"streamcache/internal/sim"
	"streamcache/internal/trace"
	"streamcache/internal/units"
	"streamcache/internal/workload"
)

// ErrBadScale reports an invalid experiment scale.
var ErrBadScale = errors.New("experiments: invalid scale")

// Table is one regenerated table or figure.
type Table struct {
	Name   string
	Note   string
	Header []string
	Rows   [][]string
}

// Scale sets the experiment size. The paper's full scale (5000 objects,
// 100k requests, 10 runs) takes minutes; the small scale preserves every
// shape at a fraction of the cost and is the default for benchmarks and
// tests.
type Scale struct {
	Objects        int
	Requests       int
	Runs           int
	Seed           int64
	CacheFractions []float64 // of total unique object bytes
	AlphaSweep     []float64 // Figure 6
	ESweep         []float64 // Figures 9 and 12
	SigmaSweep     []float64 // scenario matrix variability levels
	TraceEntries   int       // Figures 2-3 synthetic log size
	TraceServers   int
	// Parallelism bounds the concurrent sweep-point simulations (default
	// runtime.GOMAXPROCS(0)). Tables are bit-identical for every value.
	Parallelism int
	// RefineBudget is the number of extra points the adaptive axis
	// sweeps (refined-e, refined-sigma, refined-cache) may add beyond
	// their coarse grid, bisecting the intervals with the steepest
	// metric gradient. 0 disables refinement.
	RefineBudget int
	// NoWorkloadReuse disables the sweep-wide workload/path arena, so
	// every sweep point regenerates its inputs from scratch. Rows are
	// byte-identical either way (regression-tested); the knob exists
	// for A/B validation and memory-constrained paper-scale runs.
	NoWorkloadReuse bool
	// Shard restricts a run to the subset of rows whose global index
	// this shard owns (index mod Shard.Count == Shard.Index), so N
	// independent processes split one sweep. The union of the shards'
	// rows is bit-identical to the unsharded stream for any Count,
	// mirroring the Parallelism guarantee; MergeShards reassembles it.
	// The zero value means unsharded.
	Shard Shard
	// Resume replays rows recorded in a prior (interrupted) run's
	// journal instead of recomputing them. Open the journal with
	// ResumeJournal and also attach it as a JournalSink so fresh rows
	// keep checkpointing. Nil disables resumption.
	Resume *Journal
	// Exchange, when non-nil, lets a sharded adaptive sweep resolve the
	// refinement metrics of foreign points (owned by other shards)
	// instead of re-simulating them, so each shard runs O(total/N)
	// simulations per refined sweep. A metric the exchange cannot
	// produce is evaluated locally — the determinism contract makes the
	// result identical either way, so Exchange is deliberately excluded
	// from Fingerprint: it cannot change any row.
	Exchange MetricExchange
	// Counters, when non-nil, accumulates scheduler telemetry (points
	// actually simulated, exchange hits) for this process. Excluded
	// from Fingerprint: observation only.
	Counters *Counters
	// Arena, when non-nil, is shared by every experiment run at this
	// scale, so sizing workloads, full request traces, and synthetic
	// logs are generated once per distinct config across the whole
	// figure set instead of once per experiment (cmd/figures sets it).
	// Nil gives each experiment a private arena. Deliberately excluded
	// from Fingerprint: memoization cannot change any row.
	Arena *sim.Arena
}

// SmallScale returns the fast configuration (~1/10 of the paper).
func SmallScale() Scale {
	return Scale{
		Objects:        500,
		Requests:       10000,
		Runs:           2,
		Seed:           1,
		CacheFractions: []float64{0.005, 0.02, 0.05, 0.1, 0.169},
		AlphaSweep:     []float64{0.5, 0.73, 1.0, 1.2},
		ESweep:         []float64{0, 0.2, 0.4, 0.6, 0.8, 1},
		SigmaSweep:     []float64{0, 0.25, 0.55},
		TraceEntries:   20000,
		TraceServers:   200,
		RefineBudget:   4,
	}
}

// PaperScale returns the paper's full Table 1 configuration.
func PaperScale() Scale {
	return Scale{
		Objects:        5000,
		Requests:       100000,
		Runs:           10,
		Seed:           1,
		CacheFractions: []float64{0.005, 0.02, 0.05, 0.1, 0.169},
		AlphaSweep:     []float64{0.5, 0.6, 0.73, 0.8, 0.9, 1.0, 1.1, 1.2},
		ESweep:         []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1},
		SigmaSweep:     []float64{0, 0.15, 0.25, 0.4, 0.55},
		TraceEntries:   100000,
		TraceServers:   1000,
		RefineBudget:   8,
	}
}

func (s Scale) validate() error {
	if s.Objects <= 0 || s.Requests <= 0 || s.Runs <= 0 {
		return fmt.Errorf("%w: objects/requests/runs = %d/%d/%d",
			ErrBadScale, s.Objects, s.Requests, s.Runs)
	}
	if len(s.CacheFractions) == 0 {
		return fmt.Errorf("%w: no cache fractions", ErrBadScale)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("%w: Parallelism=%d", ErrBadScale, s.Parallelism)
	}
	if s.RefineBudget < 0 {
		return fmt.Errorf("%w: RefineBudget=%d", ErrBadScale, s.RefineBudget)
	}
	return s.Shard.validate()
}

// Fingerprint summarizes every scale field that determines the row
// stream — everything except Parallelism, which by the determinism
// contract cannot change any row. Journals are stamped with it so a
// resume at a different scale (which would silently splice two
// incompatible row sets) fails instead.
func (s Scale) Fingerprint() string {
	return fmt.Sprintf(
		"objects=%d requests=%d runs=%d seed=%d fractions=%v alpha=%v e=%v sigma=%v trace=%d/%d refine=%d noreuse=%v shard=%s",
		s.Objects, s.Requests, s.Runs, s.Seed, s.CacheFractions, s.AlphaSweep,
		s.ESweep, s.SigmaSweep, s.TraceEntries, s.TraceServers,
		s.RefineBudget, s.NoWorkloadReuse, s.Shard)
}

// RunFingerprint is Fingerprint with the shard identity erased: the
// identity of the whole distributed run, shared by all of its shards.
// The collector session is stamped with it — shards of different runs
// cannot mix — while each shard's journal keeps the shard-specific
// Fingerprint.
func (s Scale) RunFingerprint() string {
	s.Shard = Shard{}
	return s.Fingerprint()
}

func (s Scale) workload() workload.Config {
	return workload.Config{NumObjects: s.Objects, NumRequests: s.Requests}
}

// totalBytes estimates the unique-object volume for cache sizing. The
// sizing workload uses the seed of run 0 (sim.SplitSeed, matching what
// sim.Run derives internally) so the cache_pct axis is a fraction of an
// object population the simulations actually realize. Generation is
// memoized through the arena (nil generates fresh, identically): every
// runner at one scale sizes against the same workload, so a shared
// arena pays for it once.
func (s Scale) totalBytes(arena *sim.Arena) (int64, error) {
	w, _, err := arena.Workload(workload.Config{
		NumObjects:  s.Objects,
		NumRequests: 1,
		Seed:        sim.SplitSeed(s.Seed, 0),
	})
	if err != nil {
		return 0, err
	}
	return w.TotalUniqueBytes(), nil
}

func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
func f1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// policySweep builds the common grid: one simulation per (cache
// fraction, policy), a row per combination.
func policySweep(s Scale, meta TableMeta, policies []core.Policy, variation bandwidth.Variability) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: meta}
	sw.meta.Header = []string{"cache_pct", "policy", "traffic_reduction", "avg_delay_s", "avg_quality", "total_value", "hit_ratio"}
	for _, frac := range s.CacheFractions {
		for _, p := range policies {
			sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
				Workload:   s.workload(),
				CacheBytes: int64(frac * float64(total)),
				Policy:     p,
				Variation:  variation,
				Runs:       s.Runs,
				Seed:       s.Seed,
			}, func(m sim.Metrics) []string {
				return []string{
					f3(frac * 100), p.Name(),
					f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay),
					f3(m.AvgStreamQuality), f1(m.TotalAddedValue), f3(m.HitRatio),
				}
			}))
		}
	}
	return sw, nil
}

// Table1 reports the generated workload's characteristics against the
// paper's Table 1 targets.
func Table1(s Scale) (*Table, error) { return tableOf(s, table1Runner) }

func table1Runner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	w, _, err := s.newArena().Workload(workload.Config{
		NumObjects:  s.Objects,
		NumRequests: s.Requests,
		Seed:        s.Seed,
	})
	if err != nil {
		return nil, err
	}
	counts := w.RequestCounts()
	top10 := int64(0)
	for i := 0; i < 10 && i < len(counts); i++ {
		top10 += counts[i]
	}
	rate := w.Config.Rate()
	return &staticTable{
		meta: TableMeta{
			Name:   "Table 1: Characteristics of the Synthetic Workload",
			Note:   "paper targets: 5000 objects, 100000 requests, Zipf 0.73, ~55 min mean duration, 48 KB/s, ~790 GB total",
			Header: []string{"characteristic", "value"},
		},
		rows: [][]string{
			{"objects", strconv.Itoa(len(w.Objects))},
			{"requests", strconv.Itoa(len(w.Requests))},
			{"zipf_alpha", f3(w.Config.ZipfAlpha)},
			{"object_bitrate_KBps", f1(units.ToKBps(rate))},
			{"mean_duration_min", f1(w.MeanDurationSeconds() / 60)},
			{"total_unique_GB", f1(units.ToGBytes(w.TotalUniqueBytes()))},
			{"mean_request_rate_per_s", f3(float64(len(w.Requests)) / w.Span())},
			{"top10_request_share", f3(float64(top10) / float64(len(w.Requests)))},
		},
	}, nil
}

// Figure2 regenerates the NLANR bandwidth distribution: a synthetic
// Squid log is produced from the reconstructed model, then analyzed
// exactly as Section 3.1 describes (missed requests > 200 KB), yielding
// the histogram (4 KB/s slots) and CDF of Figure 2.
func Figure2(s Scale) (*Table, error) { return tableOf(s, figure2Runner) }

func figure2Runner(s Scale) (runner, error) {
	analysis, err := analyzeSyntheticLog(s, bandwidth.NoVariation{})
	if err != nil {
		return nil, err
	}
	hist, err := analysis.Histogram(units.KBps(4), units.KBps(452))
	if err != nil {
		return nil, err
	}
	t := &staticTable{
		meta: TableMeta{
			Name:   "Figure 2: Internet bandwidth distribution observed in (synthetic) NLANR cache logs",
			Note:   "anchors: 37% of requests below 50 KB/s, 56% below 100 KB/s",
			Header: []string{"bw_KBps", "samples", "cdf"},
		},
	}
	cdf := hist.CDF()
	for i := 0; i < hist.NumBins(); i++ {
		t.rows = append(t.rows, []string{
			f1(units.ToKBps(hist.BinStart(i))),
			strconv.FormatInt(hist.Bin(i), 10),
			f3(cdf[i]),
		})
	}
	return t, nil
}

// Figure3 regenerates the sample-to-mean bandwidth variability of the
// NLANR logs: per-server means, then the ratio histogram and CDF.
func Figure3(s Scale) (*Table, error) { return tableOf(s, figure3Runner) }

func figure3Runner(s Scale) (runner, error) {
	analysis, err := analyzeSyntheticLog(s, bandwidth.NLANRVariability())
	if err != nil {
		return nil, err
	}
	ratios := analysis.SampleToMeanRatios()
	h, err := metrics.NewHistogram(0, 0.1, 31) // 0..3.1 in 0.1 steps
	if err != nil {
		return nil, err
	}
	for _, r := range ratios {
		h.Add(r)
	}
	t := &staticTable{
		meta: TableMeta{
			Name:   "Figure 3: Variation of bandwidth observed in the (synthetic) NLANR cache logs",
			Note:   "paper: ~70% of samples fall within 0.5-1.5x the path mean",
			Header: []string{"ratio", "samples", "cdf"},
		},
	}
	cdf := h.CDF()
	for i := 0; i < h.NumBins(); i++ {
		t.rows = append(t.rows, []string{
			f3(h.BinStart(i)), strconv.FormatInt(h.Bin(i), 10), f3(cdf[i]),
		})
	}
	return t, nil
}

func analyzeSyntheticLog(s Scale, v bandwidth.Variability) (*trace.Analysis, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	entries, err := s.newArena().Trace(trace.GenConfig{
		Entries:       s.TraceEntries,
		Servers:       s.TraceServers,
		Base:          bandwidth.NLANR(),
		Variation:     v,
		HitFraction:   0.2,
		SmallFraction: 0.3,
		Seed:          s.Seed,
	})
	if err != nil {
		return nil, err
	}
	return trace.Analyze(entries, 0)
}

// Figure4 regenerates the measured-path bandwidth time series: 4-minute
// samples over 30-45 hours for the three modeled paths, plus each path's
// sample-to-mean CoV (the paper's variability comparison).
func Figure4(s Scale) (*Table, error) { return tableOf(s, figure4Runner) }

func figure4Runner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	t := &staticTable{
		meta: TableMeta{
			Name:   "Figure 4: Bandwidth variation of (modeled) real paths",
			Note:   "INRIA has much lower variability than the Far-East paths; all are below the NLANR-log level",
			Header: []string{"path", "t_hours", "bw_KBps"},
		},
	}
	rng := rand.New(rand.NewSource(s.Seed))
	hours := []float64{45, 40, 30} // per Figure 4's spans
	for i, p := range []bandwidth.PresetPath{bandwidth.PathINRIA, bandwidth.PathTaiwan, bandwidth.PathHongKong} {
		cfg, err := bandwidth.PresetSeriesConfig(p)
		if err != nil {
			return nil, err
		}
		n := int(time.Duration(hours[i]*float64(time.Hour)) / cfg.Step)
		series, err := bandwidth.GenerateSeries(cfg, rng, n)
		if err != nil {
			return nil, err
		}
		for _, sample := range series {
			t.rows = append(t.rows, []string{
				p.String(), f3(sample.T.Hours()), f1(units.ToKBps(sample.Rate)),
			})
		}
	}
	return t, nil
}

// Figure5 compares IF, PB and IB under the constant-bandwidth
// assumption across cache sizes.
func Figure5(s Scale) (*Table, error) { return tableOf(s, figure5Runner) }

func figure5Runner(s Scale) (runner, error) {
	return policySweep(s, TableMeta{
		Name: "Figure 5: IF vs PB vs IB under constant bandwidth",
		Note: "expect: IF best traffic reduction, PB best delay/quality, IB between",
	}, []core.Policy{core.NewIF(), core.NewPB(), core.NewIB()}, bandwidth.NoVariation{})
}

// Figure6 sweeps the Zipf popularity skew for IB and PB under constant
// bandwidth.
func Figure6(s Scale) (*Table, error) { return tableOf(s, figure6Runner) }

func figure6Runner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: TableMeta{
		Name:   "Figure 6: Effect of Zipf parameter alpha (IB and PB, constant bandwidth)",
		Note:   "expect: all metrics improve with alpha; orderings preserved",
		Header: []string{"alpha", "cache_pct", "policy", "traffic_reduction", "avg_delay_s", "avg_quality"},
	}}
	for _, alpha := range s.AlphaSweep {
		for _, frac := range s.CacheFractions {
			for _, p := range []core.Policy{core.NewIB(), core.NewPB()} {
				sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
					Workload: workload.Config{
						NumObjects:  s.Objects,
						NumRequests: s.Requests,
						ZipfAlpha:   alpha,
					},
					CacheBytes: int64(frac * float64(total)),
					Policy:     p,
					Runs:       s.Runs,
					Seed:       s.Seed,
				}, func(m sim.Metrics) []string {
					return []string{
						f3(alpha), f3(frac * 100), p.Name(),
						f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.AvgStreamQuality),
					}
				}))
			}
		}
	}
	return sw, nil
}

// Figure7 repeats Figure 5 under the high (NLANR-log) variability model.
func Figure7(s Scale) (*Table, error) { return tableOf(s, figure7Runner) }

func figure7Runner(s Scale) (runner, error) {
	return policySweep(s, TableMeta{
		Name: "Figure 7: IF vs PB vs IB under NLANR-level bandwidth variability",
		Note: "expect: delays rise for all; IB no worse than PB",
	}, []core.Policy{core.NewIF(), core.NewPB(), core.NewIB()}, bandwidth.NLANRVariability())
}

// Figure8 repeats Figure 5 under the lower measured-path variability.
func Figure8(s Scale) (*Table, error) { return tableOf(s, figure8Runner) }

func figure8Runner(s Scale) (runner, error) {
	return policySweep(s, TableMeta{
		Name: "Figure 8: IF vs PB vs IB under measured-path bandwidth variability",
		Note: "expect: PB regains the best delay/quality",
	}, []core.Policy{core.NewIF(), core.NewPB(), core.NewIB()}, bandwidth.MeasuredVariability())
}

// Figure9 sweeps the bandwidth under-estimation factor e between IB
// (e=0) and PB (e=1) under NLANR variability.
func Figure9(s Scale) (*Table, error) { return tableOf(s, figure9Runner) }

func figure9Runner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: TableMeta{
		Name:   "Figure 9: Effect of partial caching based on bandwidth estimation (delay objective)",
		Note:   "expect: traffic reduction decreases in e; delay minimized at moderate e",
		Header: []string{"e", "cache_pct", "traffic_reduction", "avg_delay_s", "avg_quality"},
	}}
	for _, e := range s.ESweep {
		p, err := core.NewHybrid(e)
		if err != nil {
			return nil, err
		}
		for _, frac := range s.CacheFractions {
			sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
				Workload:   s.workload(),
				CacheBytes: int64(frac * float64(total)),
				Policy:     p,
				Variation:  bandwidth.NLANRVariability(),
				Runs:       s.Runs,
				Seed:       s.Seed,
			}, func(m sim.Metrics) []string {
				return []string{
					f3(e), f3(frac * 100),
					f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.AvgStreamQuality),
				}
			}))
		}
	}
	return sw, nil
}

// Figure10 compares IF, PB-V and IB-V on the revenue objective under
// constant bandwidth.
func Figure10(s Scale) (*Table, error) { return tableOf(s, figure10Runner) }

func figure10Runner(s Scale) (runner, error) {
	return policySweep(s, TableMeta{
		Name: "Figure 10: IF vs PB-V vs IB-V under constant bandwidth (value objective)",
		Note: "expect: IF best traffic but worst value; PB-V best value; IB-V balanced",
	}, []core.Policy{core.NewIF(), core.NewPBV(), core.NewIBV()}, bandwidth.NoVariation{})
}

// Figure11 repeats Figure 10 under measured-path variability.
func Figure11(s Scale) (*Table, error) { return tableOf(s, figure11Runner) }

func figure11Runner(s Scale) (runner, error) {
	return policySweep(s, TableMeta{
		Name: "Figure 11: IF vs PB-V vs IB-V under measured-path variability (value objective)",
		Note: "expect: IB-V the best compromise (and top value) once bandwidth varies",
	}, []core.Policy{core.NewIF(), core.NewPBV(), core.NewIBV()}, bandwidth.MeasuredVariability())
}

// Figure12 sweeps the under-estimation factor e for the value objective
// under NLANR variability.
func Figure12(s Scale) (*Table, error) { return tableOf(s, figure12Runner) }

func figure12Runner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: TableMeta{
		Name:   "Figure 12: Effect of partial caching based on bandwidth estimation (value objective)",
		Note:   "expect: total value maximized at a moderate e",
		Header: []string{"e", "cache_pct", "traffic_reduction", "total_value"},
	}}
	for _, e := range s.ESweep {
		p, err := core.NewHybridV(e)
		if err != nil {
			return nil, err
		}
		for _, frac := range s.CacheFractions {
			sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
				Workload:   s.workload(),
				CacheBytes: int64(frac * float64(total)),
				Policy:     p,
				Variation:  bandwidth.NLANRVariability(),
				Runs:       s.Runs,
				Seed:       s.Seed,
			}, func(m sim.Metrics) []string {
				return []string{
					f3(e), f3(frac * 100), f3(m.TrafficReductionRatio), f1(m.TotalAddedValue),
				}
			}))
		}
	}
	return sw, nil
}

// AblationEvictionGranularity compares byte-granular (partial) eviction
// with whole-object eviction for the PB policy - the design choice
// called out in DESIGN.md section 6.
func AblationEvictionGranularity(s Scale) (*Table, error) { return tableOf(s, ablationEvictionRunner) }

func ablationEvictionRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: TableMeta{
		Name:   "Ablation: byte-granular vs whole-object eviction (PB policy, constant bandwidth)",
		Header: []string{"cache_pct", "eviction", "traffic_reduction", "avg_delay_s", "avg_quality"},
	}}
	for _, frac := range s.CacheFractions {
		for _, mode := range []struct {
			label string
			whole bool
		}{{"partial", false}, {"whole", true}} {
			sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
				Workload:     s.workload(),
				CacheBytes:   int64(frac * float64(total)),
				Policy:       core.NewPB(),
				CacheOptions: []core.Option{core.WithWholeObjectEviction(mode.whole)},
				Runs:         s.Runs,
				Seed:         s.Seed,
			}, func(m sim.Metrics) []string {
				return []string{
					f3(frac * 100), mode.label,
					f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.AvgStreamQuality),
				}
			}))
		}
	}
	return sw, nil
}

// AblationEstimators compares the oracle-mean estimator with the passive
// EWMA estimator of Section 2.7 under measured-path variability.
func AblationEstimators(s Scale) (*Table, error) { return tableOf(s, ablationEstimatorsRunner) }

func ablationEstimatorsRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: TableMeta{
		Name:   "Ablation: oracle vs passive EWMA bandwidth estimation (PB policy, measured variability)",
		Header: []string{"cache_pct", "estimator", "traffic_reduction", "avg_delay_s", "avg_quality"},
	}}
	estimators := []struct {
		label   string
		factory sim.EstimatorFactory
	}{
		{"oracle", sim.OracleEstimator},
		{"ewma_0.3", sim.EWMAEstimator(0.3)},
		{"underestimate_0.5", sim.UnderestimatingOracle(0.5)},
	}
	for _, frac := range s.CacheFractions {
		for _, est := range estimators {
			sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
				Workload:   s.workload(),
				CacheBytes: int64(frac * float64(total)),
				Policy:     core.NewPB(),
				Variation:  bandwidth.MeasuredVariability(),
				Estimators: est.factory,
				Runs:       s.Runs,
				Seed:       s.Seed,
			}, func(m sim.Metrics) []string {
				return []string{
					f3(frac * 100), est.label,
					f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.AvgStreamQuality),
				}
			}))
		}
	}
	return sw, nil
}

// All returns every experiment in paper order, followed by the
// ablations, the Section 6 extensions, the scenario matrix, and the
// adaptively refined axis sweeps.
func All(s Scale) ([]*Table, error) {
	exps := Experiments()
	out := make([]*Table, 0, len(exps))
	for _, e := range exps {
		t, err := e.Table(s)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", e.Key, err)
		}
		out = append(out, t)
	}
	return out, nil
}

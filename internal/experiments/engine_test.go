package experiments

import (
	"bytes"
	"errors"
	"strconv"
	"testing"
	"time"
)

// tableEqual reports whether two tables have identical rows.
func tableEqual(a, b *Table) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// TestTablesIdenticalAcrossParallelism is the tentpole determinism
// contract at the experiment level: the same scale regenerates
// bit-identical tables whether the sweep runs on 1, 2 or 8 workers.
func TestTablesIdenticalAcrossParallelism(t *testing.T) {
	builders := map[string]func(Scale) (*Table, error){
		"Figure5":        Figure5,
		"Figure6":        Figure6,
		"Figure9":        Figure9,
		"Baselines":      ExtensionBaselines,
		"ScenarioMatrix": ScenarioMatrix,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			var ref *Table
			for _, par := range []int{1, 2, 8} {
				s := tinyScale()
				s.Parallelism = par
				tbl, err := build(s)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = tbl
					continue
				}
				if !tableEqual(ref, tbl) {
					t.Fatalf("parallelism %d produced a different table than parallelism 1", par)
				}
			}
		})
	}
}

// TestStreamedBytesIdenticalAcrossParallelism pins the streaming
// determinism contract end to end: the exact CSV and JSONL byte
// streams of a fixed sweep and an adaptively refined sweep are
// identical at Parallelism 1, 2 and 8.
func TestStreamedBytesIdenticalAcrossParallelism(t *testing.T) {
	for _, key := range []string{"figure5", "scenarios", "refined-e", "refined-cache"} {
		t.Run(key, func(t *testing.T) {
			var refCSV, refJSONL []byte
			for _, par := range []int{1, 2, 8} {
				s := tinyScale()
				s.Parallelism = par
				s.RefineBudget = 3
				var csv, jsonl bytes.Buffer
				err := Stream(key, s, MultiSink{NewCSVSink(&csv), NewJSONLSink(&jsonl)})
				if err != nil {
					t.Fatal(err)
				}
				if refCSV == nil {
					refCSV, refJSONL = csv.Bytes(), jsonl.Bytes()
					continue
				}
				if !bytes.Equal(refCSV, csv.Bytes()) {
					t.Errorf("parallelism %d streamed different CSV bytes than parallelism 1", par)
				}
				if !bytes.Equal(refJSONL, jsonl.Bytes()) {
					t.Errorf("parallelism %d streamed different JSONL bytes than parallelism 1", par)
				}
			}
		})
	}
}

// recordingSink notes the arrival of every row and signals the first.
type recordingSink struct {
	meta     TableMeta
	rows     [][]string
	firstRow chan struct{}
	ended    bool
}

func newRecordingSink() *recordingSink {
	return &recordingSink{firstRow: make(chan struct{})}
}

func (r *recordingSink) Begin(meta TableMeta) error {
	r.meta = meta
	return nil
}

func (r *recordingSink) Row(row []string) error {
	if len(r.rows) == 0 {
		close(r.firstRow)
	}
	r.rows = append(r.rows, row)
	return nil
}

func (r *recordingSink) End() error {
	r.ended = true
	return nil
}

// TestSinkReceivesRowsBeforeSweepCompletes proves the pipeline streams:
// a later task blocks until the sink has observed the first row, which
// is impossible under the old collect-then-return contract (rows only
// reached consumers after every task finished).
func TestSinkReceivesRowsBeforeSweepCompletes(t *testing.T) {
	sink := newRecordingSink()
	sw := &taskSweep{
		meta: TableMeta{Name: "streaming probe", Header: []string{"i"}},
		tasks: []rowTask{
			func() ([]string, error) { return []string{"0"}, nil },
			func() ([]string, error) {
				select {
				case <-sink.firstRow:
					return []string{"1"}, nil
				case <-time.After(10 * time.Second):
					return nil, errors.New("sink never saw row 0 while the sweep was still running")
				}
			},
		},
	}
	s := tinyScale()
	s.Parallelism = 2
	if err := stream(s, sw, sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.rows) != 2 || sink.rows[0][0] != "0" || sink.rows[1][0] != "1" {
		t.Fatalf("rows = %v, want [[0] [1]]", sink.rows)
	}
	if !sink.ended {
		t.Error("End never called")
	}
}

func TestStreamTasksOrderAndErrors(t *testing.T) {
	// Rows arrive in task order however many workers run them.
	n := 100
	tasks := make([]rowTask, n)
	for i := range tasks {
		tasks[i] = func() ([]string, error) {
			return []string{strconv.Itoa(i)}, nil
		}
	}
	var rows [][]string
	if err := streamTasks(8, tasks, func(row []string) error {
		rows = append(rows, row)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("rows = %d, want %d", len(rows), n)
	}
	for i, row := range rows {
		if row[0] != strconv.Itoa(i) {
			t.Fatalf("row %d = %q, want %q", i, row[0], strconv.Itoa(i))
		}
	}

	// The first failing task (in task order) surfaces as the error, and
	// only rows before it were emitted.
	boom := errors.New("boom")
	tasks[37] = func() ([]string, error) { return nil, boom }
	rows = nil
	err := streamTasks(4, tasks, func(row []string) error {
		rows = append(rows, row)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if len(rows) != 37 {
		t.Fatalf("emitted %d rows before the failure at 37, want 37", len(rows))
	}

	// A sink error aborts the sweep.
	tasks[37] = func() ([]string, error) { return []string{"37"}, nil }
	sinkErr := errors.New("disk full")
	if err := streamTasks(4, tasks, func([]string) error { return sinkErr }); !errors.Is(err, sinkErr) {
		t.Fatalf("error = %v, want sink error", err)
	}

	// Degenerate pools still work.
	if err := streamTasks(0, nil, func([]string) error {
		t.Error("emit called with no tasks")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestScenarioMatrixShape(t *testing.T) {
	s := tinyScale()
	s.SigmaSweep = []float64{0, 0.55}
	tbl, err := ScenarioMatrix(s)
	checkTable(t, tbl, err)
	// 2 sigmas x 4 estimators x 3 policies.
	if len(tbl.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(tbl.Rows))
	}
	// Every metric cell parses and sits in a sane range.
	for _, row := range tbl.Rows {
		tr, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if tr < 0 || tr > 1 {
			t.Errorf("traffic reduction %v outside [0,1] in row %v", tr, row)
		}
	}
}

func TestScenarioMatrixDefaultsSigmaSweep(t *testing.T) {
	s := tinyScale() // tinyScale sets no SigmaSweep
	tbl, err := ScenarioMatrix(s)
	checkTable(t, tbl, err)
	// 3 default sigmas x 4 estimators x 3 policies.
	if len(tbl.Rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(tbl.Rows))
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Key == "" {
			t.Error("experiment with empty key")
		}
		if seen[e.Key] {
			t.Errorf("duplicate experiment key %q", e.Key)
		}
		seen[e.Key] = true
	}
	if _, ok := ExperimentByKey("figure5"); !ok {
		t.Error("figure5 missing from registry")
	}
	if _, ok := ExperimentByKey("nope"); ok {
		t.Error("unknown key resolved")
	}
	if err := Stream("nope", tinyScale(), &TableSink{}); err == nil {
		t.Error("Stream accepted an unknown key")
	}
}

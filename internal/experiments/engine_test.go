package experiments

import (
	"errors"
	"strconv"
	"testing"
)

// tableEqual reports whether two tables have identical rows.
func tableEqual(a, b *Table) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// TestTablesIdenticalAcrossParallelism is the tentpole determinism
// contract at the experiment level: the same scale regenerates
// bit-identical tables whether the sweep runs on 1, 2 or 8 workers.
func TestTablesIdenticalAcrossParallelism(t *testing.T) {
	builders := map[string]func(Scale) (*Table, error){
		"Figure5":        Figure5,
		"Figure6":        Figure6,
		"Figure9":        Figure9,
		"Baselines":      ExtensionBaselines,
		"ScenarioMatrix": ScenarioMatrix,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			var ref *Table
			for _, par := range []int{1, 2, 8} {
				s := tinyScale()
				s.Parallelism = par
				tbl, err := build(s)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = tbl
					continue
				}
				if !tableEqual(ref, tbl) {
					t.Fatalf("parallelism %d produced a different table than parallelism 1", par)
				}
			}
		})
	}
}

func TestRunTasksOrderAndErrors(t *testing.T) {
	// Rows come back in task order however many workers run them.
	n := 100
	tasks := make([]rowTask, n)
	for i := range tasks {
		tasks[i] = func() ([]string, error) {
			return []string{strconv.Itoa(i)}, nil
		}
	}
	rows, err := runTasks(8, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("rows = %d, want %d", len(rows), n)
	}
	for i, row := range rows {
		if row[0] != strconv.Itoa(i) {
			t.Fatalf("row %d = %q, want %q", i, row[0], strconv.Itoa(i))
		}
	}

	// The first failing task (in task order) surfaces as the error.
	boom := errors.New("boom")
	tasks[37] = func() ([]string, error) { return nil, boom }
	if _, err := runTasks(4, tasks); !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}

	// Degenerate pools still work.
	if rows, err := runTasks(0, nil); err != nil || len(rows) != 0 {
		t.Fatalf("empty task list: rows=%v err=%v", rows, err)
	}
}

func TestScenarioMatrixShape(t *testing.T) {
	s := tinyScale()
	s.SigmaSweep = []float64{0, 0.55}
	tbl, err := ScenarioMatrix(s)
	checkTable(t, tbl, err)
	// 2 sigmas x 4 estimators x 3 policies.
	if len(tbl.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(tbl.Rows))
	}
	// Every metric cell parses and sits in a sane range.
	for _, row := range tbl.Rows {
		tr, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if tr < 0 || tr > 1 {
			t.Errorf("traffic reduction %v outside [0,1] in row %v", tr, row)
		}
	}
}

func TestScenarioMatrixDefaultsSigmaSweep(t *testing.T) {
	s := tinyScale() // tinyScale sets no SigmaSweep
	tbl, err := ScenarioMatrix(s)
	checkTable(t, tbl, err)
	// 3 default sigmas x 4 estimators x 3 policies.
	if len(tbl.Rows) != 36 {
		t.Fatalf("rows = %d, want 36", len(tbl.Rows))
	}
}

package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The streaming results path: every experiment pushes its rows into a
// RowSink incrementally, in deterministic task order, as sweep workers
// finish out of order (a reorder buffer over the par pool sequences
// them). Long sweeps therefore produce consumable output from the first
// completed point; the in-memory Table of the old collect-then-return
// contract is just one sink among several.

// TableMeta identifies a streamed table before any of its rows arrive.
type TableMeta struct {
	Name   string
	Note   string
	Header []string
}

// RowSink consumes one experiment's rows incrementally. Begin is called
// exactly once before the first row, Row once per row in deterministic
// task order, and End exactly once after the last row (End is not
// called when the sweep aborts on an error). Implementations need not
// be safe for concurrent use: the engine serializes all calls.
//
// A sweep that fails mid-flight may already have delivered a prefix of
// its rows; sinks that require all-or-nothing semantics should buffer
// (see TableSink).
type RowSink interface {
	Begin(meta TableMeta) error
	Row(row []string) error
	End() error
}

// IndexedSink is an optional RowSink extension: sinks that implement it
// receive each row together with its global index — the row's position
// in the unsharded deterministic stream, which is the stable key of the
// sharding and journaling subsystems. The engine calls IndexedRow
// instead of Row when a sink implements it; in an unsharded run the
// indices are the contiguous sequence 0, 1, 2, ..., while a sharded run
// delivers only the shard-owned subset (with gaps MergeShards later
// closes).
type IndexedSink interface {
	RowSink
	IndexedRow(index int, row []string) error
}

// MetricRow is the full engine-side view of one emitted row: the global
// index and payload of IndexedSink plus the refinement metric of
// adaptive-sweep rows (HasMetric false for fixed-grid rows). It is the
// unit the streaming results plane (internal/collect) ships between
// shards: the metric must survive transport at full float64 precision
// so a foreign shard's refinement decisions are bit-identical to local
// evaluation.
type MetricRow struct {
	Index     int
	Row       []string
	Metric    float64
	HasMetric bool
}

// MetricSink is the richest exported RowSink extension: sinks that
// implement it receive each engine-emitted row with its global index
// and refinement metric. The engine prefers MetricRow over IndexedRow
// over Row.
type MetricSink interface {
	RowSink
	MetricRow(m MetricRow) error
}

// engineSink is the in-package superset of MetricSink: the journal
// additionally records the refinement metric of adaptive-sweep rows.
type engineSink interface {
	emitRow(e emitted) error
}

// sinkEmit delivers one engine-emitted row to a sink through the richest
// interface it implements.
func sinkEmit(sink RowSink, e emitted) error {
	switch t := sink.(type) {
	case engineSink:
		return t.emitRow(e)
	case MetricSink:
		return t.MetricRow(MetricRow{Index: e.index, Row: e.row, Metric: e.metric, HasMetric: e.hasMetric})
	case IndexedSink:
		return t.IndexedRow(e.index, e.row)
	default:
		return sink.Row(e.row)
	}
}

// TableSink buffers a streamed experiment into an in-memory Table — the
// old aggregate contract expressed as a sink. The zero value is ready
// to use.
type TableSink struct {
	table Table
}

// Begin records the table identity.
func (t *TableSink) Begin(meta TableMeta) error {
	t.table = Table{Name: meta.Name, Note: meta.Note, Header: meta.Header}
	return nil
}

// Row appends one row.
func (t *TableSink) Row(row []string) error {
	t.table.Rows = append(t.table.Rows, row)
	return nil
}

// End is a no-op; the table is complete.
func (t *TableSink) End() error { return nil }

// Table returns the accumulated table.
func (t *TableSink) Table() *Table {
	tbl := t.table
	return &tbl
}

// CSVSink streams a table as CSV: two leading comment lines (name and
// note), the header, then one line per row, flushed row by row so a
// consumer tailing the file sees points as they complete.
type CSVSink struct {
	w    *bufio.Writer
	rows int
}

// NewCSVSink wraps w in a streaming CSV renderer.
func NewCSVSink(w io.Writer) *CSVSink {
	return &CSVSink{w: bufio.NewWriter(w)}
}

// Begin writes the comment preamble and header.
func (c *CSVSink) Begin(meta TableMeta) error {
	fmt.Fprintf(c.w, "# %s\n", meta.Name)
	if meta.Note != "" {
		fmt.Fprintf(c.w, "# %s\n", meta.Note)
	}
	fmt.Fprintln(c.w, strings.Join(meta.Header, ","))
	return c.w.Flush()
}

// Row writes and flushes one CSV line.
func (c *CSVSink) Row(row []string) error {
	c.rows++
	fmt.Fprintln(c.w, strings.Join(row, ","))
	return c.w.Flush()
}

// End flushes any buffered output.
func (c *CSVSink) End() error { return c.w.Flush() }

// Rows returns the number of rows streamed so far.
func (c *CSVSink) Rows() int { return c.rows }

// JSONLSink streams a table as JSON Lines: one "table" record carrying
// name/note/header, then one "row" record per row. Field order is fixed
// by the record structs, so the byte stream is deterministic for a
// deterministic row stream. Engine-streamed rows carry their global
// index (see IndexedSink), which makes per-shard JSONL files the merge
// units of sharded sweeps; rows pushed via plain Row are numbered by a
// local counter.
type JSONLSink struct {
	w     *bufio.Writer
	table string
	index int
}

// NewJSONLSink wraps w in a streaming JSONL renderer.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

type jsonlTableRecord struct {
	Type   string   `json:"type"`
	Name   string   `json:"name"`
	Note   string   `json:"note,omitempty"`
	Header []string `json:"header"`
}

type jsonlRowRecord struct {
	Type  string   `json:"type"`
	Table string   `json:"table"`
	Index int      `json:"index"`
	Row   []string `json:"row"`
}

func (j *JSONLSink) writeLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("experiments: jsonl sink: %w", err)
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}

// Begin writes the table record.
func (j *JSONLSink) Begin(meta TableMeta) error {
	j.table = meta.Name
	j.index = 0
	return j.writeLine(jsonlTableRecord{Type: "table", Name: meta.Name, Note: meta.Note, Header: meta.Header})
}

// Row writes one row record under the next locally counted index.
func (j *JSONLSink) Row(row []string) error {
	rec := jsonlRowRecord{Type: "row", Table: j.table, Index: j.index, Row: row}
	j.index++
	return j.writeLine(rec)
}

// IndexedRow writes one row record under its global index.
func (j *JSONLSink) IndexedRow(index int, row []string) error {
	return j.writeLine(jsonlRowRecord{Type: "row", Table: j.table, Index: index, Row: row})
}

// End flushes any buffered output.
func (j *JSONLSink) End() error { return j.w.Flush() }

// MultiSink fans every call out to several sinks (e.g. CSV to disk plus
// a live JSONL feed). The first error aborts the fan-out.
type MultiSink []RowSink

// Begin forwards to every sink.
func (m MultiSink) Begin(meta TableMeta) error {
	for _, s := range m {
		if err := s.Begin(meta); err != nil {
			return err
		}
	}
	return nil
}

// Row forwards to every sink.
func (m MultiSink) Row(row []string) error {
	for _, s := range m {
		if err := s.Row(row); err != nil {
			return err
		}
	}
	return nil
}

// emitRow forwards an engine-emitted row to every sink through the
// richest interface each implements, so one fan-out can mix plain,
// indexed and journaling sinks.
func (m MultiSink) emitRow(e emitted) error {
	for _, s := range m {
		if err := sinkEmit(s, e); err != nil {
			return err
		}
	}
	return nil
}

// End forwards to every sink.
func (m MultiSink) End() error {
	for _, s := range m {
		if err := s.End(); err != nil {
			return err
		}
	}
	return nil
}
